package wsnloc_test

import (
	"fmt"

	"wsnloc"
)

// Localize a default network with the paper's algorithm and score it.
func ExampleLocalize() {
	problem, err := wsnloc.Scenario{N: 120, Field: 90, Seed: 7}.Build()
	if err != nil {
		panic(err)
	}
	result, err := wsnloc.Localize(problem, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), 42)
	if err != nil {
		panic(err)
	}
	e := wsnloc.Evaluate(problem, result)
	fmt.Printf("coverage %.0f%%, median error %.1f m\n", 100*e.Coverage(), e.MedianErr())
	// Output: coverage 100%, median error 1.3 m
}

// Compare two algorithms on the same problem.
func ExampleBaseline() {
	problem, _ := wsnloc.Scenario{N: 120, Field: 90, Seed: 7}.Build()
	dvhop, err := wsnloc.Baseline("dv-hop")
	if err != nil {
		panic(err)
	}
	rBNCL, _ := wsnloc.Localize(problem, wsnloc.BNCLGrid(wsnloc.AllPreKnowledge()), 1)
	rDV, _ := wsnloc.Localize(problem, dvhop, 1)
	better := wsnloc.Evaluate(problem, rBNCL).MedianErr() < wsnloc.Evaluate(problem, rDV).MedianErr()
	fmt.Println("bncl beats dv-hop:", better)
	// Output: bncl beats dv-hop: true
}

// Monte-Carlo evaluation over several seeded trials.
func ExampleRunTrials() {
	alg := wsnloc.BNCLGrid(wsnloc.AllPreKnowledge())
	eval, err := wsnloc.RunTrials(wsnloc.Scenario{N: 80, Field: 75, Seed: 3}, alg, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d trials pooled, %d node errors\n", eval.Trials, len(eval.Errors))
	// Output: 3 trials pooled, 216 node errors
}

// Compute the Cramér-Rao lower bound of a scenario.
func ExampleComputeCRLB() {
	problem, _ := wsnloc.Scenario{N: 100, Field: 85, AnchorFrac: 0.25, Seed: 4}.Build()
	bound, err := wsnloc.ComputeCRLB(problem)
	if err != nil {
		panic(err)
	}
	fmt.Printf("localizable nodes: %d\n", bound.Localizable)
	// Output: localizable nodes: 74
}

// Track a mobile node through a known corridor with the Bayesian filter.
func ExampleNewTracker() {
	ranger := wsnloc.TOARanger(20, 0.05)
	bounds := wsnloc.NewRect(0, 0, 100, 100)
	tracker, err := wsnloc.NewTracker(nil, bounds, 50, 3, ranger)
	if err != nil {
		panic(err)
	}
	stream := wsnloc.NewStream(5)
	truth := wsnloc.V2(40, 60)
	refs := []wsnloc.Vec2{wsnloc.V2(10, 10), wsnloc.V2(90, 10), wsnloc.V2(50, 90)}
	var est wsnloc.Vec2
	for step := 0; step < 8; step++ {
		var obs []wsnloc.RangeObs
		for _, ref := range refs {
			obs = append(obs, wsnloc.RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		est, _ = tracker.Step(obs)
	}
	fmt.Println("converged within 2 m:", est.Dist(truth) < 2)
	// Output: converged within 2 m: true
}
