package expt

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"wsnloc/internal/core"
	"wsnloc/internal/crlb"
	"wsnloc/internal/geom"
	"wsnloc/internal/metrics"
	"wsnloc/internal/mobile"
)

// Experiment regenerates one table or figure of the evaluation.
type Experiment struct {
	ID    string
	Ref   string // which table/figure of DESIGN.md §4 this regenerates
	Title string
	build func(ctx context.Context, q Quality) (*table, error)
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Table 1", "Summary at the default configuration", runE1},
		{"E2", "Fig 2", "Error vs anchor fraction", runE2},
		{"E3", "Fig 3", "Error vs ranging noise", runE3},
		{"E4", "Fig 4", "Error vs connectivity (radio range)", runE4},
		{"E5", "Fig 5", "Error vs network size (constant density)", runE5},
		{"E6", "Fig 6", "Error CDF at the default configuration", runE6},
		{"E7", "Fig 7", "Convergence: error vs BP rounds", runE7},
		{"E8", "Fig 8", "Message cost vs network size", runE8},
		{"E9", "Fig 9", "Pre-knowledge ablation", runE9},
		{"E10", "Fig 10", "Irregular deployment shapes", runE10},
		{"E11", "Fig 11", "Radio irregularity", runE11},
		{"E12", "Fig 12", "Resolution/particle-count trade-off", runE12},
		{"E13", "Fig 13 (ext)", "Mobile networks: MCL vs MCL with map pre-knowledge", runE13},
		{"E14", "Fig 14 (ext)", "Anchor placement and range-free operation", runE14},
		{"E15", "Fig 15 (ext)", "Statistical efficiency: RMSE vs the Cramér-Rao bound", runE15},
	}
}

// Run regenerates the experiment at the given quality and writes it as a
// fixed-width text table.
func (e Experiment) Run(w io.Writer, q Quality) error {
	return e.RunCtx(context.Background(), w, q)
}

// RunCtx is Run bounded by a context: a cancel or deadline aborts the
// in-flight Monte-Carlo series and returns ctx's error.
func (e Experiment) RunCtx(ctx context.Context, w io.Writer, q Quality) error {
	t, err := e.build(ctx, q)
	if err != nil {
		return err
	}
	t.write(w)
	return nil
}

// RunCSV regenerates the experiment and writes it as CSV: a `# title`
// comment line, a header row, then data rows.
func (e Experiment) RunCSV(w io.Writer, q Quality) error {
	return e.RunCSVCtx(context.Background(), w, q)
}

// RunCSVCtx is RunCSV bounded by a context.
func (e Experiment) RunCSVCtx(ctx context.Context, w io.Writer, q Quality) error {
	t, err := e.build(ctx, q)
	if err != nil {
		return err
	}
	return t.writeCSV(w)
}

// ByID looks an experiment up by its id (case-sensitive, e.g. "E3").
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("expt: unknown experiment %q (have %v)", id, ids)
}

// base returns the default scenario at the given quality scale. Scaling
// shrinks the field with the node count so the network density (and thus
// connectivity) matches the paper-scale configuration.
func base(q Quality) Scenario {
	n := q.scaleN(150)
	s := Scenario{N: n, Seed: 1}.Defaults()
	s.Field = 100 * math.Sqrt(float64(n)/150)
	return s
}

// runSeries evaluates one algorithm over the scenario and formats the error
// cell (normalized mean, or "-" on failure). The quality's tracer (if any)
// is attached unless the caller set one explicitly.
func runSeries(ctx context.Context, s Scenario, name string, opts AlgOpts, q Quality) (metrics.Eval, error) {
	if opts.Tracer == nil {
		opts.Tracer = q.Tracer
	}
	if opts.Workers == 0 {
		opts.Workers = q.SimWorkers
	}
	if opts.Conv == "" {
		opts.Conv = q.Conv
	}
	if opts.Censor == 0 {
		opts.Censor = q.Censor
	}
	if opts.Prune == 0 {
		opts.Prune = q.Prune
	}
	return RunNamedCtx(ctx, s, name, opts, q.trials())
}

func runE1(ctx context.Context, q Quality) (*table, error) {
	s := base(q)
	algs := []string{
		"bncl-grid", "bncl-particle", "bncl-grid-nopk",
		"dv-hop", "dv-distance", "centroid", "w-centroid",
		"min-max", "ls-multilat", "mds-map",
	}
	t := newTable(
		fmt.Sprintf("E1 (Table 1): summary — n=%d, %.0f%% anchors, R=%.0fm, σ=%.0f%%R, %d trials",
			s.N, 100*s.AnchorFrac, s.R, 100*s.NoiseFrac, q.trials()),
		"algorithm", "mean/R", "median/R", "rmse/R", "cov", "cov@.5R", "msgs/node", "bytes/node",
	)
	for _, name := range algs {
		e, err := runSeries(ctx, s, name, AlgOpts{}, q)
		if err != nil {
			return nil, err
		}
		t.addf(name, e.NormMean(), e.NormMedian(), e.NormRMSE(),
			e.Coverage(), e.CoverageWithin(0.5*e.R),
			e.MsgsPerNode()/float64(q.trials()), e.BytesPerNode()/float64(q.trials()))
	}
	return t, nil
}

func runE2(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "bncl-grid-nopk", "dv-hop", "w-centroid", "min-max", "ls-multilat"}
	t := newTable(
		fmt.Sprintf("E2 (Fig 2): mean error / R vs anchor fraction (%d trials)", q.trials()),
		append([]string{"anchors"}, algs...)...)
	for _, frac := range []float64{0.05, 0.10, 0.15, 0.20, 0.30} {
		s := base(q)
		s.AnchorFrac = frac
		cells := []interface{}{fmt.Sprintf("%.0f%%", 100*frac)}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE3(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "bncl-grid-nopk", "ls-multilat", "dv-distance", "dv-hop", "mds-map"}
	t := newTable(
		fmt.Sprintf("E3 (Fig 3): mean error / R vs ranging noise σ/R (%d trials)", q.trials()),
		append([]string{"sigma/R"}, algs...)...)
	for _, noise := range []float64{0.05, 0.10, 0.20, 0.30, 0.50} {
		s := base(q)
		s.NoiseFrac = noise
		cells := []interface{}{fmt.Sprintf("%.0f%%", 100*noise)}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE4(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "dv-hop", "mds-map", "w-centroid"}
	t := newTable(
		fmt.Sprintf("E4 (Fig 4): mean error / R vs radio range (connectivity) (%d trials)", q.trials()),
		append([]string{"R(m)", "avg-deg"}, algs...)...)
	for _, r := range []float64{11, 13, 15, 18, 21} {
		s := base(q)
		s.R = r
		// Report the average degree of the first trial's topology.
		p, err := s.Build()
		if err != nil {
			return nil, err
		}
		cells := []interface{}{fmt.Sprintf("%.0f", r), p.Graph.AvgDegree()}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE5(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "dv-hop", "ls-multilat"}
	t := newTable(
		fmt.Sprintf("E5 (Fig 5): mean error / R vs network size at constant density (%d trials)", q.trials()),
		append([]string{"n", "field(m)"}, algs...)...)
	for _, n := range []int{100, 150, 200, 300} {
		s := base(q)
		s.N = q.scaleN(n)
		// Keep density constant: field side scales with sqrt(n).
		s.Field = 100 * sqrtRatio(s.N, q.scaleN(150))
		cells := []interface{}{s.N, fmt.Sprintf("%.0f", s.Field)}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

func sqrtRatio(a, b int) float64 {
	return math.Sqrt(float64(a) / float64(b))
}

func runE6(ctx context.Context, q Quality) (*table, error) {
	s := base(q)
	algs := []string{"bncl-grid", "bncl-grid-nopk", "dv-hop", "ls-multilat"}
	evals := map[string]metrics.Eval{}
	for _, name := range algs {
		e, err := runSeries(ctx, s, name, AlgOpts{}, q)
		if err != nil {
			return nil, err
		}
		evals[name] = e
	}
	t := newTable(
		fmt.Sprintf("E6 (Fig 6): error CDF, P(err <= x·R) (%d trials)", q.trials()),
		append([]string{"x=err/R"}, algs...)...)
	for _, x := range []float64{0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0} {
		cells := []interface{}{fmt.Sprintf("%.3f", x)}
		for _, name := range algs {
			e := evals[name]
			cells = append(cells, e.CDF([]float64{x * e.R})[0])
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE7(ctx context.Context, q Quality) (*table, error) {
	variants := []struct {
		label string
		name  string
	}{
		{"grid+pk", "bncl-grid"},
		{"grid-nopk", "bncl-grid-nopk"},
		{"particle+pk", "bncl-particle"},
	}
	labels := make([]string, len(variants))
	for i, v := range variants {
		labels[i] = v.label
	}
	t := newTable(
		fmt.Sprintf("E7 (Fig 7): mean error / R vs BP round cap (%d trials)", q.trials()),
		append([]string{"rounds"}, labels...)...)
	for _, rounds := range []int{1, 2, 3, 5, 8, 12, 20} {
		cells := []interface{}{rounds}
		for _, v := range variants {
			e, err := runSeries(ctx, base(q), v.name, AlgOpts{BPRounds: rounds}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE8(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "dv-hop", "ls-multilat"}
	t := newTable(
		fmt.Sprintf("E8 (Fig 8): communication cost vs network size (%d trials)", q.trials()),
		"n", "bncl msgs/node", "bncl bytes/node", "dv-hop msgs/node", "dv-hop bytes/node", "ls msgs/node", "ls bytes/node")
	for _, n := range []int{100, 150, 200, 300} {
		s := base(q)
		s.N = q.scaleN(n)
		s.Field = 100 * sqrtRatio(s.N, q.scaleN(150))
		cells := []interface{}{s.N}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells,
				e.MsgsPerNode()/float64(q.trials()),
				e.BytesPerNode()/float64(q.trials()))
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE9(ctx context.Context, q Quality) (*table, error) {
	variants := []struct {
		label string
		pk    core.PreKnowledge
	}{
		{"none", core.NoPreKnowledge()},
		{"+region", core.PreKnowledge{UseRegion: true}},
		{"+annuli", core.PreKnowledge{UseHopAnnuli: true}},
		{"+negEvid", core.PreKnowledge{UseNegativeEvidence: true}},
		{"region+annuli", core.PreKnowledge{UseRegion: true, UseHopAnnuli: true}},
		{"all", core.AllPreKnowledge()},
	}
	s := base(q)
	s.AnchorFrac = 0.07 // sparse anchors: where pre-knowledge matters most
	t := newTable(
		fmt.Sprintf("E9 (Fig 9): pre-knowledge ablation at %.0f%% anchors (%d trials)",
			100*s.AnchorFrac, q.trials()),
		"variant", "mean/R", "median/R", "cov@.5R")
	for _, v := range variants {
		e, err := runSeries(ctx, s, "bncl-grid", AlgOpts{PK: v.pk, PKSet: true}, q)
		if err != nil {
			return nil, err
		}
		t.addf(v.label, e.NormMean(), e.NormMedian(), e.CoverageWithin(0.5*e.R))
	}
	return t, nil
}

func runE10(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "bncl-grid-nopk", "dv-hop", "mds-map"}
	t := newTable(
		fmt.Sprintf("E10 (Fig 10): mean error / R by deployment shape (%d trials)", q.trials()),
		append([]string{"shape"}, algs...)...)
	for _, shape := range []string{"square", "c", "o", "x", "corridor"} {
		s := base(q)
		s.Shape = shape
		// Irregular shapes shrink the usable area; raise the range a touch
		// so the network stays connected.
		if shape != "square" {
			s.R = 18
		}
		cells := []interface{}{shape}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE11(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "dv-hop", "ls-multilat"}
	configs := []struct {
		label string
		mut   func(*Scenario)
	}{
		{"unitdisk", func(*Scenario) {}},
		{"doi=0.05", func(s *Scenario) { s.Prop = "doi"; s.DOI = 0.05 }},
		{"doi=0.10", func(s *Scenario) { s.Prop = "doi"; s.DOI = 0.10 }},
		{"qudg", func(s *Scenario) { s.Prop = "qudg" }},
		{"shadow 4dB", func(s *Scenario) { s.Prop = "shadow"; s.ShadowSigmaDB = 4 }},
		{"shadow 6dB", func(s *Scenario) { s.Prop = "shadow"; s.ShadowSigmaDB = 6 }},
	}
	t := newTable(
		fmt.Sprintf("E11 (Fig 11): mean error / R vs radio irregularity (%d trials)", q.trials()),
		append([]string{"model"}, algs...)...)
	for _, c := range configs {
		s := base(q)
		c.mut(&s)
		cells := []interface{}{c.label}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

func runE12(ctx context.Context, q Quality) (*table, error) {
	t := newTable(
		fmt.Sprintf("E12 (Fig 12): accuracy/cost vs belief resolution (%d trials)", q.trials()),
		"variant", "mean/R", "cov@.5R", "sec/trial")
	type cfg struct {
		label string
		name  string
		opts  AlgOpts
	}
	var cfgs []cfg
	for _, g := range []int{20, 30, 40, 60} {
		cfgs = append(cfgs, cfg{fmt.Sprintf("grid %dx%d", g, g), "bncl-grid", AlgOpts{GridN: g}})
	}
	for _, g := range []int{20, 40} {
		cfgs = append(cfgs, cfg{fmt.Sprintf("grid %dx%d+refine", g, g), "bncl-grid", AlgOpts{GridN: g, Refine: true}})
	}
	for _, m := range []int{50, 100, 200, 400} {
		cfgs = append(cfgs, cfg{fmt.Sprintf("particles %d", m), "bncl-particle", AlgOpts{Particles: m}})
	}
	for _, c := range cfgs {
		start := time.Now()
		e, err := runSeries(ctx, base(q), c.name, c.opts, q)
		if err != nil {
			return nil, err
		}
		sec := time.Since(start).Seconds() / float64(q.trials())
		t.addf(c.label, e.NormMean(), e.CoverageWithin(0.5*e.R), sec)
	}
	return t, nil
}

// runE13 is the mobile-network extension experiment: Monte-Carlo
// Localization error vs node speed on a corridor map, with and without the
// map pre-knowledge (the paper's idea carried to the mobile setting). The
// corridor is the informative-map case; on fragmenting maps like the
// O-shape the constraint can cost particle diversity faster than it adds
// information (see EXPERIMENTS.md for that negative result).
func runE13(ctx context.Context, q Quality) (*table, error) {
	n := q.scaleN(120)
	field := 100 * math.Sqrt(float64(n)/120)
	region := geom.Corridor(geom.NewRect(0, 0, field, field), 0.22)
	t := newTable(
		fmt.Sprintf("E13 (Fig 13, extension): mobile MCL mean error / R vs max speed, corridor map (%d trials)", q.trials()),
		"vmax(m/step)", "mcl", "mcl-pk")
	const steps, burnIn = 30, 10
	for _, vmax := range []float64{1, 2, 3, 5, 8} {
		cells := []interface{}{fmt.Sprintf("%.0f", vmax)}
		for _, loc := range []mobile.Localizer{mobile.MCL{}, mobile.MCL{UseMap: true}} {
			sum := 0.0
			for trial := 0; trial < q.trials(); trial++ {
				sim, err := mobile.NewSim(mobile.Scenario{
					N: n, Field: field, Region: region,
					MaxSpeed: vmax, Steps: steps,
					Seed: 1 + uint64(trial)*0x9E37,
				})
				if err != nil {
					return nil, err
				}
				_, mean := mobile.Evaluate(sim, loc, burnIn, 7+uint64(trial))
				sum += mean / sim.Cfg.R
			}
			cells = append(cells, sum/float64(q.trials()))
		}
		t.addf(cells...)
	}
	return t, nil
}

// runE14 probes two deployment-planning questions the library answers: how
// much anchor placement matters (random vs perimeter vs even grid), and how
// BNCL degrades when ranging hardware is absent entirely (connectivity-only
// "hop" ranging — the range-free regime).
func runE14(ctx context.Context, q Quality) (*table, error) {
	t := newTable(
		fmt.Sprintf("E14 (Fig 14, extension): anchor placement × ranging modality, mean error / R (%d trials)", q.trials()),
		"placement", "bncl toa", "bncl range-free", "dv-hop")
	for _, placement := range []string{"random", "perimeter", "grid"} {
		cells := []interface{}{placement}
		for _, mod := range []struct {
			alg    string
			ranger string
		}{
			{"bncl-grid", "toa"},
			{"bncl-grid", "hop"},
			{"dv-hop", "toa"},
		} {
			s := base(q)
			s.Anchors = placement
			s.Ranger = mod.ranger
			e, err := runSeries(ctx, s, mod.alg, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.NormMean())
		}
		t.addf(cells...)
	}
	return t, nil
}

// runE15 compares every algorithm's RMSE against the Cramér-Rao lower
// bound across anchor densities — the statistical-efficiency view of the
// evaluation. Cells report RMSE/CRLB. The bound counts ranging information
// only, so an unbiased ranging-only estimator cannot go below 1.0 — but a
// Bayesian estimator with pre-knowledge legitimately can, and BNCL's
// sub-1.0 ratios at sparse anchors are exactly the paper's thesis made
// quantitative: the priors carry information the measurements do not.
func runE15(ctx context.Context, q Quality) (*table, error) {
	algs := []string{"bncl-grid", "bncl-grid-nopk", "dv-hop", "ls-multilat"}
	t := newTable(
		fmt.Sprintf("E15 (Fig 15, extension): RMSE / ranging-only CRLB (<1 possible only via pre-knowledge; %d trials)", q.trials()),
		append([]string{"anchors", "crlb(m)"}, algs...)...)
	for _, frac := range []float64{0.10, 0.20, 0.30} {
		s := base(q)
		s.AnchorFrac = frac
		// The bound is a property of the scenario geometry: average it over
		// the same trial seeds RunTrials uses.
		boundSum, boundTrials := 0.0, 0
		for trial := 0; trial < q.trials(); trial++ {
			cfg := s
			cfg.Seed = s.Seed + uint64(trial)*0x9E37
			p, err := cfg.Build()
			if err != nil {
				return nil, err
			}
			b, err := crlb.Compute(p)
			if err != nil || b.Localizable == 0 {
				continue
			}
			boundSum += b.MeanRMSE
			boundTrials++
		}
		if boundTrials == 0 {
			continue
		}
		bound := boundSum / float64(boundTrials)
		cells := []interface{}{fmt.Sprintf("%.0f%%", 100*frac), bound}
		for _, name := range algs {
			e, err := runSeries(ctx, s, name, AlgOpts{}, q)
			if err != nil {
				return nil, err
			}
			cells = append(cells, e.RMSE()/bound)
		}
		t.addf(cells...)
	}
	return t, nil
}
