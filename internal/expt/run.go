package expt

import (
	"fmt"
	"runtime"
	"sync"

	"wsnloc/internal/core"
	"wsnloc/internal/metrics"
	"wsnloc/internal/rng"
)

// Quality scales every experiment between a fast smoke run and the full
// evaluation.
type Quality struct {
	// Trials is the Monte-Carlo repetition count per configuration.
	Trials int
	// Scale multiplies node counts (1.0 = paper-scale).
	Scale float64
}

// Quick is the CI-friendly quality: few trials, smaller networks.
func Quick() Quality { return Quality{Trials: 2, Scale: 0.6} }

// Full is the evaluation quality used for EXPERIMENTS.md.
func Full() Quality { return Quality{Trials: 8, Scale: 1.0} }

func (q Quality) trials() int {
	if q.Trials <= 0 {
		return 2
	}
	return q.Trials
}

func (q Quality) scaleN(n int) int {
	s := q.Scale
	if s <= 0 {
		s = 0.6
	}
	out := int(float64(n) * s)
	if out < 20 {
		out = 20
	}
	return out
}

// RunTrials executes `trials` Monte-Carlo repetitions of the scenario with
// the algorithm and returns the pooled evaluation. Trial t uses scenario
// seed base+t and an algorithm stream split from the same seed, so adding
// trials never perturbs earlier ones.
func RunTrials(s Scenario, alg core.Algorithm, trials int) (metrics.Eval, error) {
	if trials <= 0 {
		trials = 1
	}
	var pooled []metrics.Eval
	for t := 0; t < trials; t++ {
		cfg := s
		cfg.Seed = s.Seed + uint64(t)*0x9E37
		p, err := cfg.Build()
		if err != nil {
			return metrics.Eval{}, fmt.Errorf("trial %d: %w", t, err)
		}
		res, err := alg.Localize(p, rng.New(cfg.Seed^0xBEEF))
		if err != nil {
			return metrics.Eval{}, fmt.Errorf("trial %d (%s): %w", t, alg.Name(), err)
		}
		pooled = append(pooled, metrics.Evaluate(p, res))
	}
	return metrics.Merge(pooled...), nil
}

// RunTrialsParallel is RunTrials with the trials fanned out over a worker
// pool. Results are bit-identical to the sequential version: each trial is
// fully determined by its own derived seed and its own algorithm instance,
// and evaluations are merged in trial order.
//
// newAlg must return a fresh algorithm per call — algorithm values are not
// required to be safe for concurrent use.
func RunTrialsParallel(s Scenario, newAlg func() core.Algorithm, trials, workers int) (metrics.Eval, error) {
	if trials <= 0 {
		trials = 1
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > trials {
		workers = trials
	}

	evals := make([]metrics.Eval, trials)
	errs := make([]error, trials)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			alg := newAlg()
			for t := range jobs {
				cfg := s
				cfg.Seed = s.Seed + uint64(t)*0x9E37
				p, err := cfg.Build()
				if err != nil {
					errs[t] = fmt.Errorf("trial %d: %w", t, err)
					continue
				}
				res, err := alg.Localize(p, rng.New(cfg.Seed^0xBEEF))
				if err != nil {
					errs[t] = fmt.Errorf("trial %d (%s): %w", t, alg.Name(), err)
					continue
				}
				evals[t] = metrics.Evaluate(p, res)
			}
		}()
	}
	for t := 0; t < trials; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return metrics.Eval{}, err
		}
	}
	return metrics.Merge(evals...), nil
}

// RunNamed is RunTrials with registry lookup.
func RunNamed(s Scenario, name string, opts AlgOpts, trials int) (metrics.Eval, error) {
	alg, err := NewAlgorithm(name, opts)
	if err != nil {
		return metrics.Eval{}, err
	}
	return RunTrials(s, alg, trials)
}
