package expt

import (
	"context"
	"fmt"
	"runtime"

	"wsnloc/internal/core"
	"wsnloc/internal/exec"
	"wsnloc/internal/metrics"
	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
	"wsnloc/internal/wsnerr"
)

// Quality scales every experiment between a fast smoke run and the full
// evaluation.
type Quality struct {
	// Trials is the Monte-Carlo repetition count per configuration.
	Trials int
	// Scale multiplies node counts (1.0 = paper-scale).
	Scale float64
	// Tracer, when non-nil and enabled, receives the trial/round/phase
	// events of every algorithm the experiments run.
	Tracer obs.Tracer
	// SimWorkers sets the simulator worker-pool size inside each BNCL
	// localization (0 = GOMAXPROCS, 1 = sequential). Purely a wall-clock
	// knob: results are bit-identical for every value. Distinct from
	// RunOpts.Workers, which parallelizes across Monte-Carlo trials.
	SimWorkers int
	// Conv selects BNCL's message-convolution path ("auto"/""/ "sparse"/
	// "fft"); unlike SimWorkers this is part of the algorithm.
	Conv string
	// Censor sets BNCL's message-censoring threshold (0 = off) and Prune its
	// belief support-pruning floor (0 = off, < 1). Like Conv, these are part
	// of the algorithm, not wall-clock knobs.
	Censor float64
	Prune  float64
}

// Quick is the CI-friendly quality: few trials, smaller networks.
func Quick() Quality { return Quality{Trials: 2, Scale: 0.6} }

// Full is the evaluation quality used for EXPERIMENTS.md.
func Full() Quality { return Quality{Trials: 8, Scale: 1.0} }

func (q Quality) trials() int {
	if q.Trials <= 0 {
		return 2
	}
	return q.Trials
}

func (q Quality) scaleN(n int) int {
	s := q.Scale
	if s <= 0 {
		s = 0.6
	}
	out := int(float64(n) * s)
	if out < 20 {
		out = 20
	}
	return out
}

// RunOpts tunes RunTrialsOpts beyond the trial count.
type RunOpts struct {
	// Workers bounds how many trials run concurrently; 0 or 1 runs trials
	// sequentially on the calling goroutine.
	Workers int
	// Tracer, when non-nil and enabled, receives one "trial" event per
	// Monte-Carlo trial and is injected into algorithms that support it
	// (core.TracerSetter), so per-round BNCL events flow to the same sink.
	// The sink must be safe for concurrent use when Workers > 1 — every
	// tracer in internal/obs is.
	Tracer obs.Tracer
	// Pool, when non-nil, is the shared execution plane trials fan out on
	// (the daemon passes its request pool here so one bounded set of
	// workers serves every layer). Nil runs on a transient pool scoped to
	// this call. Either way results are bit-identical: trials are
	// self-contained and evaluations merge in trial order.
	Pool *exec.Pool
}

// RunTrials executes `trials` Monte-Carlo repetitions of the scenario with
// the algorithm and returns the pooled evaluation. Trial t uses scenario
// seed base+t and an algorithm stream split from the same seed, so adding
// trials never perturbs earlier ones.
func RunTrials(s Scenario, alg core.Algorithm, trials int) (metrics.Eval, error) {
	return RunTrialsCtx(context.Background(), s, alg, trials)
}

// RunTrialsCtx is RunTrials bounded by a context: a cancel or deadline stops
// the in-flight trials at round granularity, drains the worker pool, and
// returns ctx's error. An uncanceled run is identical to RunTrials. A nil
// algorithm or a non-positive trial count wraps wsnerr.ErrBadConfig.
func RunTrialsCtx(ctx context.Context, s Scenario, alg core.Algorithm, trials int) (metrics.Eval, error) {
	if alg == nil {
		return metrics.Eval{}, fmt.Errorf("expt: %w: nil algorithm", wsnerr.ErrBadConfig)
	}
	return RunTrialsOpts(ctx, s, func() core.Algorithm { return alg }, trials, RunOpts{})
}

// RunTrialsParallel is RunTrials with the trials fanned out over a worker
// pool. Results are bit-identical to the sequential version: each trial is
// fully determined by its own derived seed and its own algorithm instance,
// and evaluations are merged in trial order.
//
// newAlg must return a fresh algorithm per call — algorithm values are not
// required to be safe for concurrent use.
func RunTrialsParallel(s Scenario, newAlg func() core.Algorithm, trials, workers int) (metrics.Eval, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return RunTrialsOpts(context.Background(), s, newAlg, trials, RunOpts{Workers: workers})
}

// RunTrialsOpts is the general Monte-Carlo runner behind RunTrials and
// RunTrialsParallel: trials fan out over the shared execution plane
// (internal/exec) with optional observability, bounded by ctx. Evaluations
// merge in trial order, so the pooled result is independent of scheduling
// and identical at every worker count. On cancellation no further trials
// start, the in-flight ones abort at round granularity, the fan-out is
// fully joined, and ctx's error is returned.
func RunTrialsOpts(ctx context.Context, s Scenario, newAlg func() core.Algorithm, trials int, opts RunOpts) (metrics.Eval, error) {
	// A zero-trial run used to be silently promoted to one trial, which let
	// configuration bugs (an unset flag, a bad quality struct) masquerade as
	// real — if oddly small — evaluations. Reject it loudly instead.
	if trials <= 0 {
		return metrics.Eval{}, fmt.Errorf("expt: %w: trials must be >= 1, got %d", wsnerr.ErrBadConfig, trials)
	}
	if newAlg == nil {
		return metrics.Eval{}, fmt.Errorf("expt: %w: nil algorithm factory", wsnerr.ErrBadConfig)
	}
	if opts.Workers < 0 {
		return metrics.Eval{}, fmt.Errorf("expt: %w: workers must be >= 0, got %d", wsnerr.ErrBadConfig, opts.Workers)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > trials {
		workers = trials
	}
	traced := obs.Enabled(opts.Tracer)

	pool := opts.Pool
	if pool == nil {
		// No shared plane supplied: run on a transient pool scoped to this
		// call, closed and fully joined before returning (no goroutines
		// outlive the fan-out, preserving the leak guarantees of the
		// cancellation tests).
		var err error
		pool, err = exec.NewPool(exec.Config{Workers: workers})
		if err != nil {
			return metrics.Eval{}, err
		}
		defer func() {
			pool.Close()
			pool.Drain(context.Background())
		}()
	}

	evals := make([]metrics.Eval, trials)
	runTrial := func(ctx context.Context, t int) error {
		// Each trial runs under its own span (trial.start/trial.done), and
		// the span's tracer is injected into the algorithm, so every bncl.*
		// event of the solve is parented to its trial.
		alg := newAlg()
		var tsp *obs.Span
		if traced {
			tsp = obs.StartSpan(opts.Tracer, "trial", map[string]interface{}{
				"trial": t,
				"alg":   alg.Name(),
			})
			if ts, ok := alg.(core.TracerSetter); ok {
				ts.SetTracer(tsp.Tracer())
			}
		}
		cfg := s
		cfg.Seed = s.Seed + uint64(t)*0x9E37
		p, err := cfg.Build()
		if err != nil {
			tsp.EndAs("error", map[string]interface{}{"err": err.Error()})
			return fmt.Errorf("trial %d: %w", t, err)
		}
		res, err := core.LocalizeContext(ctx, alg, p, rng.New(cfg.Seed^0xBEEF))
		if err != nil {
			tsp.EndAs("error", map[string]interface{}{"err": err.Error()})
			return fmt.Errorf("trial %d (%s): %w", t, alg.Name(), err)
		}
		e := metrics.Evaluate(p, res)
		evals[t] = e
		tsp.EndWith(map[string]interface{}{
			"mean_err":  e.MeanErr(),
			"localized": e.LocalizedCount,
			"unknowns":  e.Unknowns,
			"msgs":      e.Messages,
			"bytes":     e.Bytes,
			"rounds":    e.Rounds,
		})
		return nil
	}
	if err := pool.ForEach(ctx, trials, workers, runTrial); err != nil {
		return metrics.Eval{}, err
	}
	return metrics.Merge(evals...), nil
}

// RunNamed is RunTrials with registry lookup. A tracer set in opts also
// receives the per-trial events.
func RunNamed(s Scenario, name string, opts AlgOpts, trials int) (metrics.Eval, error) {
	return RunNamedCtx(context.Background(), s, name, opts, trials)
}

// RunNamedCtx is RunNamed bounded by a context.
func RunNamedCtx(ctx context.Context, s Scenario, name string, opts AlgOpts, trials int) (metrics.Eval, error) {
	alg, err := NewAlgorithm(name, opts)
	if err != nil {
		return metrics.Eval{}, err
	}
	return RunTrialsOpts(ctx, s, func() core.Algorithm { return alg }, trials, RunOpts{Tracer: opts.Tracer})
}
