package expt

import (
	"wsnloc/internal/alg"
	"wsnloc/internal/core"

	// The comparison algorithms self-register into the shared registry;
	// importing them here guarantees every expt consumer sees the full set.
	_ "wsnloc/internal/baseline"
)

// AlgOpts tunes algorithm construction per experiment. It is the shared
// option set of the algorithm registry (see internal/alg.Opts).
type AlgOpts = alg.Opts

// NewAlgorithm builds the named algorithm from the shared registry (see
// AlgorithmNames). With an enabled opts.Tracer, the algorithm is wrapped so
// each Localize emits an "algorithm" timing event. Unknown names wrap
// wsnerr.ErrUnknownAlgorithm, invalid options wsnerr.ErrBadConfig.
func NewAlgorithm(name string, opts AlgOpts) (core.Algorithm, error) {
	return alg.New(name, opts)
}

// AlgorithmNames lists the registered algorithm names, sorted.
func AlgorithmNames() []string {
	return alg.Names()
}
