package expt

import (
	"fmt"
	"sort"

	"wsnloc/internal/baseline"
	"wsnloc/internal/core"
	"wsnloc/internal/obs"
)

// AlgOpts tunes algorithm construction per experiment.
type AlgOpts struct {
	// GridN overrides BNCL's grid resolution (0 = default).
	GridN int
	// Particles overrides BNCL's particle count (0 = default).
	Particles int
	// BPRounds overrides BNCL's BP-round cap (0 = default).
	BPRounds int
	// PK overrides BNCL's pre-knowledge selection when PKSet is true.
	PK    core.PreKnowledge
	PKSet bool
	// Refine enables BNCL's local grid refinement.
	Refine bool
	// Workers sets the simulator worker-pool size for BNCL runs
	// (0 = GOMAXPROCS, 1 = sequential). Results are bit-identical for
	// every value; this is purely a wall-clock knob.
	Workers int
	// Tracer, when non-nil and enabled, is plumbed into the constructed
	// algorithm: every Localize call emits an "algorithm" timing event, and
	// algorithms with internal instrumentation (BNCL rounds/phases, DV and
	// MDS-MAP phases) emit their structured events to the same sink.
	Tracer obs.Tracer
}

// algBuilder constructs a named algorithm.
type algBuilder func(AlgOpts) core.Algorithm

var registry = map[string]algBuilder{
	"bncl-grid": func(o AlgOpts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.GridMode, pkOf(o, core.AllPreKnowledge()), o)}
	},
	"bncl-particle": func(o AlgOpts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.ParticleMode, pkOf(o, core.AllPreKnowledge()), o)}
	},
	"bncl-grid-nopk": func(o AlgOpts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.GridMode, core.NoPreKnowledge(), o)}
	},
	"bncl-particle-nopk": func(o AlgOpts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.ParticleMode, core.NoPreKnowledge(), o)}
	},
	"centroid":    func(AlgOpts) core.Algorithm { return baseline.Centroid{} },
	"w-centroid":  func(AlgOpts) core.Algorithm { return baseline.WeightedCentroid{} },
	"min-max":     func(AlgOpts) core.Algorithm { return baseline.MinMax{} },
	"dv-hop":      func(o AlgOpts) core.Algorithm { return baseline.DVHop{Tracer: o.Tracer} },
	"dv-distance": func(o AlgOpts) core.Algorithm { return baseline.DVDistance{Tracer: o.Tracer} },
	"ls-multilat": func(AlgOpts) core.Algorithm { return baseline.IterativeMultilateration{} },
	"mds-map":     func(o AlgOpts) core.Algorithm { return baseline.MDSMAP{Tracer: o.Tracer} },
}

func bnclCfg(mode core.Mode, pk core.PreKnowledge, o AlgOpts) core.Config {
	return core.Config{
		Mode:      mode,
		GridNX:    o.GridN,
		GridNY:    o.GridN,
		Particles: o.Particles,
		BPRounds:  o.BPRounds,
		PK:        pk,
		Refine:    o.Refine,
		Workers:   o.Workers,
		Tracer:    o.Tracer,
	}
}

func pkOf(o AlgOpts, def core.PreKnowledge) core.PreKnowledge {
	if o.PKSet {
		return o.PK
	}
	return def
}

// NewAlgorithm builds the named algorithm (see AlgorithmNames). With an
// enabled opts.Tracer, the algorithm is wrapped so each Localize emits an
// "algorithm" timing event.
func NewAlgorithm(name string, opts AlgOpts) (core.Algorithm, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("expt: unknown algorithm %q (have %v)", name, AlgorithmNames())
	}
	alg := b(opts)
	if obs.Enabled(opts.Tracer) {
		alg = core.Traced(alg, opts.Tracer)
	}
	return alg, nil
}

// AlgorithmNames lists the registered algorithm names, sorted.
func AlgorithmNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
