package expt

import (
	"context"
	"errors"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/wsnerr"
)

// The trial runners and the benchmark summarizer must reject degenerate
// inputs — zero or negative trials, nil algorithms, negative pool sizes,
// negative qualities — with wsnerr.ErrBadConfig rather than silently
// running a defaulted experiment the caller never asked for.

func mkMinMax() core.Algorithm {
	a, _ := NewAlgorithm("min-max", AlgOpts{})
	return a
}

func TestRunTrialsBadConfig(t *testing.T) {
	s := Scenario{N: 25, Field: 50, Seed: 3}
	cases := []struct {
		name string
		run  func() error
	}{
		{"zero trials", func() error {
			_, err := RunTrials(s, mkMinMax(), 0)
			return err
		}},
		{"negative trials", func() error {
			_, err := RunTrials(s, mkMinMax(), -4)
			return err
		}},
		{"nil algorithm", func() error {
			_, err := RunTrialsCtx(context.Background(), s, nil, 2)
			return err
		}},
		{"nil factory", func() error {
			_, err := RunTrialsOpts(context.Background(), s, nil, 2, RunOpts{})
			return err
		}},
		{"negative workers", func() error {
			_, err := RunTrialsOpts(context.Background(), s, mkMinMax, 2, RunOpts{Workers: -1})
			return err
		}},
		{"named zero trials", func() error {
			_, err := RunNamed(s, "min-max", AlgOpts{}, 0)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.run(); !errors.Is(err, wsnerr.ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestSummarizeBadConfig(t *testing.T) {
	cases := []struct {
		name string
		q    Quality
	}{
		{"negative trials", Quality{Trials: -1, Scale: 0.5}},
		{"negative scale", Quality{Trials: 2, Scale: -0.5}},
		{"negative sim workers", Quality{Trials: 2, Scale: 0.5, SimWorkers: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Summarize(tc.q, []string{"min-max"}, nil); !errors.Is(err, wsnerr.ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

// A zero-value Quality still means "smoke defaults" — only explicit
// negatives are rejected — and a nil tracer stays legal everywhere.
func TestSummarizeZeroQualityStillDefaults(t *testing.T) {
	sum, err := Summarize(Quality{}, []string{"min-max"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 2 {
		t.Errorf("default trials = %d, want 2", sum.Trials)
	}
}
