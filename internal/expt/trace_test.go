package expt

import (
	"context"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/obs"
)

// TestRunTrialsTracedParallel runs a traced multi-trial experiment over a
// worker pool: the shared sink must collect exactly one trial event per
// repetition plus the per-run algorithm events, and results must stay
// bit-identical to an untraced run. Run under -race this doubles as the
// concurrency audit of the tracer sinks.
func TestRunTrialsTracedParallel(t *testing.T) {
	s := Scenario{N: 60, Field: 70, Seed: 21}
	const trials = 6
	mk := func() core.Algorithm {
		alg, err := NewAlgorithm("bncl-grid", AlgOpts{GridN: 20, BPRounds: 5})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}

	plain, err := RunTrialsOpts(context.Background(), s, mk, trials, RunOpts{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	mem := obs.NewMemory()
	traced, err := RunTrialsOpts(context.Background(), s, mk, trials, RunOpts{Workers: 3, Tracer: mem})
	if err != nil {
		t.Fatal(err)
	}

	// Tracing must not perturb the results.
	if len(plain.Errors) != len(traced.Errors) {
		t.Fatalf("error pools differ: %d vs %d", len(plain.Errors), len(traced.Errors))
	}
	for i := range plain.Errors {
		if plain.Errors[i] != traced.Errors[i] {
			t.Fatalf("error %d differs: %v vs %v", i, plain.Errors[i], traced.Errors[i])
		}
	}
	if plain.Messages != traced.Messages {
		t.Errorf("traffic differs: %d vs %d", plain.Messages, traced.Messages)
	}

	trialEvents := mem.ByName("trial.done")
	if len(trialEvents) != trials {
		t.Fatalf("got %d trial.done events, want %d", len(trialEvents), trials)
	}
	if got := len(mem.ByName("trial.start")); got != trials {
		t.Fatalf("got %d trial.start events, want %d", got, trials)
	}
	seen := map[int]bool{}
	var msgsSum int
	for _, e := range trialEvents {
		v, ok := e.Float("trial")
		if !ok {
			t.Fatalf("trial event missing index: %v", e.Fields)
		}
		seen[int(v)] = true
		if m, ok := e.Float("msgs"); ok {
			msgsSum += int(m)
		}
	}
	if len(seen) != trials {
		t.Errorf("trial indices not unique: %v", seen)
	}
	if msgsSum != traced.Messages {
		t.Errorf("trial events carry %d msgs total, pooled eval has %d", msgsSum, traced.Messages)
	}

	// The tracer was injected into the worker algorithms, so per-run BNCL
	// events flow to the same sink, parented to their trial spans.
	runs := mem.ByName("bncl.run.done")
	if got := len(runs); got != trials {
		t.Errorf("got %d bncl.run.done events, want %d", got, trials)
	}
	trialSpans := map[string]bool{}
	for _, e := range trialEvents {
		if id, _ := e.Fields["span_id"].(string); id != "" {
			trialSpans[id] = true
		}
	}
	if len(trialSpans) != trials {
		t.Fatalf("trial.done span_ids not unique: %v", trialSpans)
	}
	for _, e := range runs {
		pid, _ := e.Fields["parent_id"].(string)
		if !trialSpans[pid] {
			t.Errorf("bncl.run.done parent_id %q is not a trial span", pid)
		}
	}
}

// TestSummarize checks the machine-readable benchmark summary producer.
func TestSummarize(t *testing.T) {
	q := Quality{Trials: 1, Scale: 0.2}
	sum, err := Summarize(q, []string{"centroid", "dv-hop"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 1 || len(sum.Algorithms) != 2 {
		t.Fatalf("summary shape wrong: trials=%d algs=%d", sum.Trials, len(sum.Algorithms))
	}
	for _, a := range sum.Algorithms {
		if a.Algorithm == "" {
			t.Error("empty algorithm name")
		}
		if a.Coverage < 0 || a.Coverage > 1 {
			t.Errorf("%s coverage %v out of range", a.Algorithm, a.Coverage)
		}
		if a.WallSec < 0 {
			t.Errorf("%s negative wall time", a.Algorithm)
		}
	}
	if defaults := SummaryAlgorithms(); len(defaults) < 5 {
		t.Errorf("default summary set too small: %v", defaults)
	}

	if _, err := Summarize(q, []string{"no-such-alg"}, nil); err == nil {
		t.Error("unknown algorithm must error")
	}
}

// TestQualityTracerFlowsToExperiments checks the -trace path of wsnloc-bench:
// a tracer on Quality reaches the algorithms the experiment tables run.
func TestQualityTracerFlowsToExperiments(t *testing.T) {
	mem := obs.NewMemory()
	s := Scenario{N: 40, Field: 60, Seed: 9}
	q := Quality{Trials: 2, Scale: 0.2, Tracer: mem}
	if _, err := runSeries(context.Background(), s, "centroid", AlgOpts{}, q); err != nil {
		t.Fatal(err)
	}
	if got := len(mem.ByName("trial.done")); got != 2 {
		t.Errorf("got %d trial.done events, want 2", got)
	}
	if got := len(mem.ByName("algorithm")); got != 2 {
		t.Errorf("got %d algorithm events, want 2", got)
	}
}
