// Package expt is the evaluation harness: it builds scenarios from compact
// configurations, runs Monte-Carlo trials of any registered algorithm, and
// regenerates every table and figure of the (reconstructed) evaluation as
// plain-text tables. See DESIGN.md §4 for the experiment index.
package expt

import (
	"fmt"

	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// Scenario describes one simulated network configuration compactly enough
// to print in a table header. The zero value is completed by Defaults.
type Scenario struct {
	// N is the node count; AnchorFrac the fraction that are anchors.
	N          int
	AnchorFrac float64
	// Field is the side length of the square deployment area in meters.
	Field float64
	// Shape selects the deployment region: square, c, o, x, h, corridor.
	Shape string
	// Gen selects the generator: uniform, grid, clusters.
	Gen string
	// Anchors selects placement: random, perimeter, grid.
	Anchors string
	// R is the nominal radio range in meters.
	R float64
	// Prop selects propagation: unitdisk, qudg, shadow, doi.
	Prop string
	// DOI is the irregularity coefficient for Prop == "doi".
	DOI float64
	// ShadowSigmaDB is the shadowing std for Prop == "shadow".
	ShadowSigmaDB float64
	// Ranger selects ranging: toa, rssi, nlos, hop.
	Ranger string
	// NoiseFrac is the TOA ranging noise as a fraction of R.
	NoiseFrac float64
	// NLOSProb/NLOSBias parameterize Ranger == "nlos".
	NLOSProb float64
	NLOSBias float64
	// Loss is the packet-loss probability protocols face.
	Loss float64
	// Jitter is the per-delivery probability a message slips a round.
	Jitter float64
	// Seed drives all scenario randomness.
	Seed uint64
}

// Defaults fills zero fields with the canonical configuration of DESIGN.md:
// 150 nodes, 100×100 m field, R = 15 m, 10% anchors, unit disk + 10% TOA.
func (s Scenario) Defaults() Scenario {
	if s.N <= 0 {
		s.N = 150
	}
	if s.AnchorFrac < 0 {
		s.AnchorFrac = 0
	}
	if s.AnchorFrac == 0 {
		s.AnchorFrac = 0.10
	}
	if s.Field <= 0 {
		s.Field = 100
	}
	if s.Shape == "" {
		s.Shape = "square"
	}
	if s.Gen == "" {
		s.Gen = "uniform"
	}
	if s.Anchors == "" {
		s.Anchors = "random"
	}
	if s.R <= 0 {
		s.R = 15
	}
	if s.Prop == "" {
		s.Prop = "unitdisk"
	}
	if s.Ranger == "" {
		s.Ranger = "toa"
	}
	if s.NoiseFrac <= 0 {
		s.NoiseFrac = 0.10
	}
	if s.NLOSBias <= 0 {
		s.NLOSBias = 0.3 * s.R
	}
	return s
}

// Region materializes the deployment region.
func (s Scenario) Region() (geom.Region, error) {
	base := geom.NewRect(0, 0, s.Field, s.Field)
	switch s.Shape {
	case "square", "":
		return base, nil
	case "c":
		return geom.CShape(base), nil
	case "o":
		return geom.OShape(base), nil
	case "x":
		return geom.XShape(base), nil
	case "h":
		return geom.HShape(base), nil
	case "corridor":
		return geom.Corridor(base, 0.2), nil
	default:
		return nil, fmt.Errorf("expt: unknown shape %q", s.Shape)
	}
}

// Propagation materializes the propagation model.
func (s Scenario) Propagation() (radio.Propagation, error) {
	switch s.Prop {
	case "unitdisk", "":
		return radio.UnitDisk{R: s.R}, nil
	case "qudg":
		return radio.QuasiUDG{RMin: 0.7 * s.R, RMax: 1.1 * s.R}, nil
	case "shadow":
		sig := s.ShadowSigmaDB
		if sig <= 0 {
			sig = 4
		}
		return radio.LogNormalShadow{R: s.R, Eta: 3, SigmaDB: sig}, nil
	case "doi":
		return radio.DOI{R: s.R, DOI: s.DOI}, nil
	default:
		return nil, fmt.Errorf("expt: unknown propagation %q", s.Prop)
	}
}

// Ranging materializes the ranging model.
func (s Scenario) Ranging() (radio.Ranger, error) {
	switch s.Ranger {
	case "toa", "":
		return radio.TOAGaussian{R: s.R, SigmaFrac: s.NoiseFrac}, nil
	case "rssi":
		// Map the noise fraction onto a dB spread: σdB ≈ 10·η·noise/ln10·…
		// — in practice 4 dB at η=3 gives ~30% distance spread; scale
		// proportionally so NoiseFrac stays the experiment's knob.
		return radio.RSSILogNormal{Eta: 3, SigmaDB: 13 * s.NoiseFrac}, nil
	case "nlos":
		prob := s.NLOSProb
		if prob <= 0 {
			prob = 0.2
		}
		return radio.NLOS{
			Base:     radio.TOAGaussian{R: s.R, SigmaFrac: s.NoiseFrac},
			Prob:     prob,
			MeanBias: s.NLOSBias,
		}, nil
	case "hop":
		return radio.HopRanger{R: s.R}, nil
	default:
		return nil, fmt.Errorf("expt: unknown ranger %q", s.Ranger)
	}
}

// generator materializes the deployment generator.
func (s Scenario) generator() (topology.Generator, error) {
	switch s.Gen {
	case "uniform", "":
		return topology.UniformGen{}, nil
	case "grid":
		return topology.GridJitterGen{Jitter: 0.2}, nil
	case "clusters":
		return topology.ClusterGen{}, nil
	default:
		return nil, fmt.Errorf("expt: unknown generator %q", s.Gen)
	}
}

// anchorPolicy materializes the anchor-placement policy.
func (s Scenario) anchorPolicy() (topology.AnchorPolicy, error) {
	switch s.Anchors {
	case "random", "":
		return topology.AnchorsRandom, nil
	case "perimeter":
		return topology.AnchorsPerimeter, nil
	case "grid":
		return topology.AnchorsGrid, nil
	default:
		return 0, fmt.Errorf("expt: unknown anchor policy %q", s.Anchors)
	}
}

// Build materializes the full problem: deployment, connectivity graph with
// measurements, and radio models. Deterministic in Seed.
func (s Scenario) Build() (*core.Problem, error) {
	s = s.Defaults()
	region, err := s.Region()
	if err != nil {
		return nil, err
	}
	gen, err := s.generator()
	if err != nil {
		return nil, err
	}
	policy, err := s.anchorPolicy()
	if err != nil {
		return nil, err
	}
	prop, err := s.Propagation()
	if err != nil {
		return nil, err
	}
	ranger, err := s.Ranging()
	if err != nil {
		return nil, err
	}
	stream := rng.New(s.Seed ^ 0xA11CE5)
	numAnchors := int(float64(s.N)*s.AnchorFrac + 0.5)
	dep, err := topology.Deploy(s.N, numAnchors, gen, region, policy, stream.Split(1))
	if err != nil {
		return nil, err
	}
	graph := topology.BuildGraph(dep, prop, ranger, stream.Split(2))
	return &core.Problem{
		Deploy: dep,
		Graph:  graph,
		R:      s.R,
		Prop:   prop,
		Ranger: ranger,
		Loss:   s.Loss,
		Jitter: s.Jitter,
	}, nil
}
