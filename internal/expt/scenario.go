// Package expt is the evaluation harness: it builds scenarios from compact
// configurations, runs Monte-Carlo trials of any registered algorithm, and
// regenerates every table and figure of the (reconstructed) evaluation as
// plain-text tables. See DESIGN.md §4 for the experiment index.
//
// The declarative run descriptions themselves — Scenario, Spec, and the
// algorithm registry — live in internal/alg, shared with the facade and the
// CLIs; expt re-exports the names its historical API carried.
package expt

import "wsnloc/internal/alg"

// Scenario describes one simulated network configuration compactly enough
// to print in a table header. The zero value of each field means "use the
// default"; invalid values are rejected by Build/Validate with errors
// wrapping wsnerr.ErrBadScenario. See internal/alg.Scenario.
type Scenario = alg.Scenario

// Spec fully describes one run — scenario, algorithm, tuning, seed — as a
// versioned, JSON-round-trippable job unit. See internal/alg.Spec.
type Spec = alg.Spec
