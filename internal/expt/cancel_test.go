package expt

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wsnloc/internal/core"
	"wsnloc/internal/obs"
)

// cancelOnTrial cancels the run's context once the first per-trial event
// lands, so cancellation deterministically hits a pool with trials still
// queued.
type cancelOnTrial struct {
	cancel context.CancelFunc
	fired  atomic.Bool
}

func (c *cancelOnTrial) Enabled() bool { return true }

func (c *cancelOnTrial) Emit(e obs.Event) {
	if e.Name == "trial.done" && c.fired.CompareAndSwap(false, true) {
		c.cancel()
	}
}

func TestRunTrialsCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Scenario{N: 40, Field: 60, Seed: 2}
	alg, err := NewAlgorithm("centroid", AlgOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrialsCtx(ctx, s, alg, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunTrialsOptsCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancelOnTrial{cancel: cancel}

	s := Scenario{N: 60, Field: 70, Seed: 13}
	mk := func() core.Algorithm {
		alg, err := NewAlgorithm("bncl-grid", AlgOpts{GridN: 20, BPRounds: 5})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	_, err := RunTrialsOpts(ctx, s, mk, 16, RunOpts{Workers: 2, Tracer: tr})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}
