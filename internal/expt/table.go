package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// table accumulates a fixed-width text table, the output format of every
// experiment (the rows/series a paper figure would plot).
type table struct {
	title   string
	header  []string
	rows    [][]string
	minWide int
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header, minWide: 9}
}

func (t *table) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// rowf formats each value with its verb; float64 NaN/Inf print as "-".
func (t *table) addf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case int:
			out[i] = fmt.Sprintf("%d", v)
		case float64:
			if math.IsNaN(v) || math.IsInf(v, 0) {
				out[i] = "-"
			} else {
				out[i] = fmt.Sprintf("%.3f", v)
			}
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.row(out...)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = max(len(h), t.minWide)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n%s\n", t.title)
	var line strings.Builder
	for i, h := range t.header {
		fmt.Fprintf(&line, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
	for _, r := range t.rows {
		line.Reset()
		for i, c := range r {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&line, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
}

// writeCSV emits the table as CSV with the title as a leading comment.
func (t *table) writeCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func lineWidth(widths []int) int {
	s := 0
	for _, w := range widths {
		s += w + 2
	}
	if s >= 2 {
		s -= 2
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
