package expt

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/wsnerr"
)

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{}.Defaults()
	if s.N != 150 || s.Field != 100 || s.R != 15 || s.AnchorFrac != 0.10 ||
		s.Shape != "square" || s.Prop != "unitdisk" || s.Ranger != "toa" {
		t.Errorf("defaults = %+v", s)
	}
	// Overrides survive.
	s2 := Scenario{N: 40, R: 9, Shape: "c"}.Defaults()
	if s2.N != 40 || s2.R != 9 || s2.Shape != "c" {
		t.Error("overrides clobbered")
	}
}

func TestScenarioBuild(t *testing.T) {
	p, err := Scenario{N: 60, Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Deploy.N() != 60 {
		t.Errorf("N = %d", p.Deploy.N())
	}
	if p.Deploy.NumAnchors() != 6 {
		t.Errorf("anchors = %d", p.Deploy.NumAnchors())
	}
	// Deterministic in seed.
	p2, _ := Scenario{N: 60, Seed: 3}.Build()
	for i := range p.Deploy.Pos {
		if p.Deploy.Pos[i] != p2.Deploy.Pos[i] {
			t.Fatal("build not deterministic")
		}
	}
	p3, _ := Scenario{N: 60, Seed: 4}.Build()
	same := true
	for i := range p.Deploy.Pos {
		if p.Deploy.Pos[i] != p3.Deploy.Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical deployment")
	}
}

func TestScenarioAllVariants(t *testing.T) {
	shapes := []string{"square", "c", "o", "x", "h", "corridor"}
	for _, shape := range shapes {
		s := Scenario{N: 40, Shape: shape, Seed: 1}
		if _, err := s.Build(); err != nil {
			t.Errorf("shape %s: %v", shape, err)
		}
	}
	for _, prop := range []string{"unitdisk", "qudg", "shadow", "doi"} {
		s := Scenario{N: 40, Prop: prop, DOI: 0.1, Seed: 1}
		if _, err := s.Build(); err != nil {
			t.Errorf("prop %s: %v", prop, err)
		}
	}
	for _, rg := range []string{"toa", "rssi", "nlos", "hop"} {
		s := Scenario{N: 40, Ranger: rg, Seed: 1}
		if _, err := s.Build(); err != nil {
			t.Errorf("ranger %s: %v", rg, err)
		}
	}
	for _, gen := range []string{"uniform", "grid", "clusters"} {
		s := Scenario{N: 40, Gen: gen, Seed: 1}
		if _, err := s.Build(); err != nil {
			t.Errorf("gen %s: %v", gen, err)
		}
	}
	for _, a := range []string{"random", "perimeter", "grid"} {
		s := Scenario{N: 40, Anchors: a, Seed: 1}
		if _, err := s.Build(); err != nil {
			t.Errorf("anchors %s: %v", a, err)
		}
	}
}

func TestScenarioUnknownVariantsError(t *testing.T) {
	bad := []Scenario{
		{N: 10, Shape: "pentagon"},
		{N: 10, Prop: "magic"},
		{N: 10, Ranger: "sonar"},
		{N: 10, Gen: "fractal"},
		{N: 10, Anchors: "best"},
	}
	for i, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	names := AlgorithmNames()
	if len(names) != 11 {
		t.Fatalf("registry has %d algorithms: %v", len(names), names)
	}
	for _, n := range names {
		alg, err := NewAlgorithm(n, AlgOpts{})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if alg.Name() == "" {
			t.Errorf("%s has empty Name()", n)
		}
	}
	if _, err := NewAlgorithm("nope", AlgOpts{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgOptsPropagate(t *testing.T) {
	alg, err := NewAlgorithm("bncl-grid", AlgOpts{GridN: 17, BPRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := alg.(*core.BNCL)
	if b.Cfg.GridNX != 17 || b.Cfg.BPRounds != 3 {
		t.Errorf("opts not propagated: %+v", b.Cfg)
	}
	// PKSet overrides the default.
	alg2, _ := NewAlgorithm("bncl-grid", AlgOpts{PK: core.NoPreKnowledge(), PKSet: true})
	b2 := alg2.(*core.BNCL)
	if b2.Cfg.PK.UseRegion {
		t.Error("PK override ignored")
	}
}

func TestRunTrialsPoolsAndIsDeterministic(t *testing.T) {
	s := Scenario{N: 50, Seed: 9}
	alg, _ := NewAlgorithm("centroid", AlgOpts{})
	e1, err := RunTrials(s, alg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Trials != 3 {
		t.Fatalf("trials = %d", e1.Trials)
	}
	e2, _ := RunTrials(s, alg, 3)
	if e1.MeanErr() != e2.MeanErr() || len(e1.Errors) != len(e2.Errors) {
		t.Error("RunTrials not deterministic")
	}
	// Trial prefix property: the first trial of a 3-trial run equals a
	// 1-trial run.
	e3, _ := RunTrials(s, alg, 1)
	if e3.Errors[0] != e1.Errors[0] {
		t.Error("adding trials perturbed earlier trials")
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("%d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Ref == "" || e.build == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("E7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestExperimentE9Smoke runs the ablation experiment end-to-end at tiny
// scale and sanity-checks the output table.
func TestExperimentE9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	e, err := ByID("E9")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, Quality{Trials: 1, Scale: 0.4}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E9", "none", "all", "mean/R"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestQualityHelpers(t *testing.T) {
	if Quick().trials() != 2 || Full().trials() != 8 {
		t.Error("trial defaults wrong")
	}
	var zero Quality
	if zero.trials() != 2 {
		t.Error("zero quality trials")
	}
	if zero.scaleN(100) != 60 {
		t.Errorf("zero scale: %d", zero.scaleN(100))
	}
	if Full().scaleN(100) != 100 {
		t.Error("full scale wrong")
	}
	if (Quality{Scale: 0.1}).scaleN(100) != 20 {
		t.Error("scale floor wrong")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := newTable("Demo", "col-a", "b")
	tb.addf("x", 1.23456)
	tb.addf("longer-cell", 7)
	var buf bytes.Buffer
	tb.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "col-a") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Errorf("float not formatted:\n%s", out)
	}
	// NaN prints as "-".
	tb2 := newTable("N", "v")
	tb2.addf(strings.Repeat("w", 3), nan())
	buf.Reset()
	tb2.write(&buf)
	if !strings.Contains(buf.String(), "-") {
		t.Error("NaN not dashed")
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestTableCSV(t *testing.T) {
	tb := newTable("My Title", "a", "b")
	tb.addf("x", 1.5)
	tb.addf("y, with comma", 2)
	var buf bytes.Buffer
	if err := tb.writeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# My Title\n") {
		t.Errorf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, "a,b\n") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, `"y, with comma",2`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
}

func TestRunTrialsParallelMatchesSequential(t *testing.T) {
	s := Scenario{N: 60, Field: 70, Seed: 21}
	mk := func() core.Algorithm {
		alg, err := NewAlgorithm("bncl-grid", AlgOpts{GridN: 20, BPRounds: 5})
		if err != nil {
			t.Fatal(err)
		}
		return alg
	}
	seq, err := RunTrials(s, mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTrialsParallel(s, mk, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Errors) != len(par.Errors) {
		t.Fatalf("error pools differ: %d vs %d", len(seq.Errors), len(par.Errors))
	}
	for i := range seq.Errors {
		if seq.Errors[i] != par.Errors[i] {
			t.Fatalf("trial result %d differs: %v vs %v (order or determinism broken)",
				i, seq.Errors[i], par.Errors[i])
		}
	}
	if seq.Messages != par.Messages || seq.Trials != par.Trials {
		t.Error("aggregates differ between sequential and parallel")
	}
}

func TestRunTrialsParallelErrorPropagation(t *testing.T) {
	bad := Scenario{N: 10, Shape: "pentagon", Seed: 1}
	mk := func() core.Algorithm {
		alg, _ := NewAlgorithm("centroid", AlgOpts{})
		return alg
	}
	if _, err := RunTrialsParallel(bad, mk, 3, 2); err == nil {
		t.Error("build failure not propagated")
	}
}

func TestRunTrialsParallelDefaults(t *testing.T) {
	s := Scenario{N: 30, Field: 55, Seed: 5}
	mk := func() core.Algorithm {
		alg, _ := NewAlgorithm("min-max", AlgOpts{})
		return alg
	}
	// Zero workers falls back to the CPU count; zero trials is a
	// configuration error (it used to be silently promoted to one trial).
	if _, err := RunTrialsParallel(s, mk, 0, 0); !errors.Is(err, wsnerr.ErrBadConfig) {
		t.Errorf("zero trials: err = %v, want ErrBadConfig", err)
	}
	e, err := RunTrialsParallel(s, mk, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Trials != 1 {
		t.Errorf("trials = %d", e.Trials)
	}
}

// TestAllExperimentsSmoke runs every registered experiment end-to-end at
// tiny scale: tables must render with at least one data row and no errors.
func TestAllExperimentsSmoke(t *testing.T) {
	if os.Getenv("WSNLOC_SLOW_TESTS") == "" {
		t.Skip("set WSNLOC_SLOW_TESTS=1 to run every experiment end-to-end (minutes)")
	}
	q := Quality{Trials: 1, Scale: 0.2}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, q); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s: title missing:\n%s", e.ID, out)
			}
			if strings.Count(out, "\n") < 4 {
				t.Errorf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			// CSV path too.
			buf.Reset()
			if err := e.RunCSV(&buf, q); err != nil {
				t.Fatalf("%s csv: %v", e.ID, err)
			}
			if !strings.HasPrefix(buf.String(), "# "+e.ID) {
				t.Errorf("%s: csv title missing", e.ID)
			}
		})
	}
}
