package expt

import (
	"context"
	"reflect"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/exec"
)

// TestRunTrialsSharedPoolIdentical pins the execution-plane refactor's core
// guarantee: trials fanned out on a caller-supplied shared pool produce the
// exact evaluation of a transient per-call pool, at any worker count.
func TestRunTrialsSharedPoolIdentical(t *testing.T) {
	s := Scenario{N: 40, Field: 60, AnchorFrac: 0.25, Seed: 3}
	newAlg := func() core.Algorithm { return core.NewGrid(core.AllPreKnowledge()) }
	const trials = 4

	want, err := RunTrialsOpts(context.Background(), s, newAlg, trials, RunOpts{Workers: 2})
	if err != nil {
		t.Fatalf("transient-pool run: %v", err)
	}

	pool, err := exec.NewPool(exec.Config{Workers: 3, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		pool.Close()
		pool.Drain(context.Background())
	}()
	for _, workers := range []int{1, 2, 4} {
		got, err := RunTrialsOpts(context.Background(), s, newAlg, trials, RunOpts{Workers: workers, Pool: pool})
		if err != nil {
			t.Fatalf("shared-pool run (workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shared-pool eval differs from transient at workers=%d:\nwant %+v\ngot  %+v", workers, want, got)
		}
	}
}
