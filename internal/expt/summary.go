package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"wsnloc/internal/core"
	"wsnloc/internal/obs"
	"wsnloc/internal/sim"
	"wsnloc/internal/wsnerr"
)

// Machine-readable benchmark summary: the stable JSON producer behind
// `wsnloc-bench -json`, so error/latency/traffic trajectories can be tracked
// across commits without scraping the human tables.

// finiteOr keeps the summary JSON-encodable: error statistics are +Inf when
// an algorithm localizes nothing, which encoding/json rejects.
func finiteOr(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}

// AlgSummary is one algorithm's pooled Monte-Carlo outcome on the summary
// scenario. Errors are reported in meters and normalized by R; error fields
// are -1 when nothing was localized (+Inf is not JSON-encodable).
type AlgSummary struct {
	Algorithm    string  `json:"algorithm"`
	MeanErr      float64 `json:"mean_err_m"`
	MedianErr    float64 `json:"median_err_m"`
	P95Err       float64 `json:"p95_err_m"`
	NormMean     float64 `json:"mean_err_r"`
	Coverage     float64 `json:"coverage"`
	MsgsPerNode  float64 `json:"msgs_per_node"`
	BytesPerNode float64 `json:"bytes_per_node"`
	Messages     int     `json:"messages_total"`
	Bytes        int     `json:"bytes_total"`
	// MessagesCensored counts broadcasts suppressed by message censoring
	// across all trials. omitempty keeps the knobs-off document byte-identical
	// to the pre-censoring schema.
	MessagesCensored int     `json:"messages_censored,omitempty"`
	AvgRounds        float64 `json:"avg_rounds"`
	WallSec          float64 `json:"wall_sec"`
}

// BenchSummary is the top-level document `wsnloc-bench -json` writes.
type BenchSummary struct {
	Scenario Scenario `json:"scenario"`
	Trials   int      `json:"trials"`
	// SimWorkers is the resolved simulator worker-pool size the BNCL runs
	// used. Recorded so wall_sec numbers can be compared across machines;
	// it never affects the error/traffic columns.
	SimWorkers int          `json:"sim_workers"`
	Algorithms []AlgSummary `json:"algorithms"`
}

// SummaryAlgorithms is the default algorithm set of the JSON summary (the
// E1 table's set).
func SummaryAlgorithms() []string {
	return []string{
		"bncl-grid", "bncl-particle", "bncl-grid-nopk",
		"dv-hop", "dv-distance", "centroid", "w-centroid",
		"min-max", "ls-multilat", "mds-map",
	}
}

// Summarize runs every named algorithm on the default scenario at quality q
// and returns the machine-readable summary. A non-nil tracer receives the
// underlying trial/algorithm events.
func Summarize(q Quality, algs []string, tr obs.Tracer) (*BenchSummary, error) {
	return SummarizeCtx(context.Background(), q, algs, tr)
}

// SummarizeCtx is Summarize bounded by a context: a cancel or deadline
// aborts the in-flight algorithm's trials at round granularity and returns
// ctx's error. A negative trial count, scale, or worker count wraps
// wsnerr.ErrBadConfig instead of being silently defaulted (zero still means
// "use the quality's default").
func SummarizeCtx(ctx context.Context, q Quality, algs []string, tr obs.Tracer) (*BenchSummary, error) {
	switch {
	case q.Trials < 0:
		return nil, fmt.Errorf("expt: %w: trials must be >= 0, got %d", wsnerr.ErrBadConfig, q.Trials)
	case q.Scale < 0:
		return nil, fmt.Errorf("expt: %w: scale must be >= 0, got %g", wsnerr.ErrBadConfig, q.Scale)
	case q.SimWorkers < 0:
		return nil, fmt.Errorf("expt: %w: sim workers must be >= 0, got %d", wsnerr.ErrBadConfig, q.SimWorkers)
	case q.Censor < 0:
		return nil, fmt.Errorf("expt: %w: censor must be >= 0, got %g", wsnerr.ErrBadConfig, q.Censor)
	case q.Prune < 0 || q.Prune >= 1:
		return nil, fmt.Errorf("expt: %w: prune must be in [0,1), got %g", wsnerr.ErrBadConfig, q.Prune)
	}
	if len(algs) == 0 {
		algs = SummaryAlgorithms()
	}
	s := base(q)
	out := &BenchSummary{
		Scenario:   s,
		Trials:     q.trials(),
		SimWorkers: sim.ResolveWorkers(q.SimWorkers, s.N),
	}
	for _, name := range algs {
		alg, err := NewAlgorithm(name, AlgOpts{
			Tracer: tr, Workers: q.SimWorkers,
			Conv: q.Conv, Censor: q.Censor, Prune: q.Prune,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		e, err := RunTrialsOpts(ctx, s, func() core.Algorithm { return alg }, q.trials(), RunOpts{Tracer: tr})
		if err != nil {
			return nil, err
		}
		trials := float64(q.trials())
		out.Algorithms = append(out.Algorithms, AlgSummary{
			Algorithm:        name,
			MeanErr:          finiteOr(e.MeanErr(), -1),
			MedianErr:        finiteOr(e.MedianErr(), -1),
			P95Err:           finiteOr(e.P95Err(), -1),
			NormMean:         finiteOr(e.NormMean(), -1),
			Coverage:         e.Coverage(),
			MsgsPerNode:      e.MsgsPerNode() / trials,
			BytesPerNode:     e.BytesPerNode() / trials,
			Messages:         e.Messages,
			Bytes:            e.Bytes,
			MessagesCensored: e.Censored,
			AvgRounds:        e.AvgRounds(),
			WallSec:          time.Since(start).Seconds(),
		})
	}
	return out, nil
}

// WriteJSON writes the summary as one indented JSON document.
func (b *BenchSummary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
