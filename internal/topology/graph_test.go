package topology

import (
	"math"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
)

// lineDeployment puts n nodes on a line with the given spacing.
func lineDeployment(n int, spacing float64) *Deployment {
	d := &Deployment{
		Pos:    make([]mathx.Vec2, n),
		Anchor: make([]bool, n),
		Region: geom.NewRect(0, 0, float64(n)*spacing, 1),
	}
	for i := range d.Pos {
		d.Pos[i] = mathx.V2(float64(i)*spacing, 0)
	}
	return d
}

func exactRanger(r float64) radio.Ranger {
	return radio.TOAGaussian{R: r, SigmaAbs: 1e-9}
}

func TestBuildGraphLine(t *testing.T) {
	// Nodes 10 apart, range 15: each connects only to immediate neighbors.
	d := lineDeployment(5, 10)
	g := BuildGraph(d, radio.UnitDisk{R: 15}, exactRanger(15), rng.New(1))
	if len(g.Links) != 4 {
		t.Fatalf("links = %d, want 4", len(g.Links))
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("degrees wrong: %d, %d", g.Degree(0), g.Degree(2))
	}
	if got := g.AvgDegree(); !mathx.AlmostEqual(got, 8.0/5, 1e-12) {
		t.Errorf("avg degree = %v", got)
	}
	// Measured distances are near the truth for a near-noiseless ranger.
	for _, l := range g.Links {
		if math.Abs(l.Meas-l.TrueDist) > 1e-6 {
			t.Errorf("link %d-%d meas %v vs true %v", l.A, l.B, l.Meas, l.TrueDist)
		}
		if !mathx.AlmostEqual(l.TrueDist, 10, 1e-12) {
			t.Errorf("true dist = %v", l.TrueDist)
		}
	}
}

func TestBuildGraphMatchesBruteForce(t *testing.T) {
	// The spatial hash must find exactly the pairs a brute-force scan finds.
	d, err := Deploy(120, 0, UniformGen{}, geom.NewRect(0, 0, 100, 100), AnchorsRandom, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	prop := radio.UnitDisk{R: 18}
	g := BuildGraph(d, prop, exactRanger(18), rng.New(3))
	type pair struct{ a, b int }
	got := map[pair]bool{}
	for _, l := range g.Links {
		got[pair{l.A, l.B}] = true
	}
	want := map[pair]bool{}
	for i := 0; i < d.N(); i++ {
		for j := i + 1; j < d.N(); j++ {
			if d.Pos[i].Dist(d.Pos[j]) <= 18 {
				want[pair{i, j}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("link count %d vs brute force %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing link %v", p)
		}
	}
}

func TestGraphDeterministicGivenSeed(t *testing.T) {
	d, _ := Deploy(80, 8, UniformGen{}, geom.NewRect(0, 0, 100, 100), AnchorsRandom, rng.New(4))
	g1 := BuildGraph(d, radio.LogNormalShadow{R: 15, Eta: 3, SigmaDB: 4}, radio.TOAGaussian{R: 15, SigmaFrac: 0.1}, rng.New(5))
	g2 := BuildGraph(d, radio.LogNormalShadow{R: 15, Eta: 3, SigmaDB: 4}, radio.TOAGaussian{R: 15, SigmaFrac: 0.1}, rng.New(5))
	if len(g1.Links) != len(g2.Links) {
		t.Fatal("nondeterministic link count")
	}
	for i := range g1.Links {
		if g1.Links[i] != g2.Links[i] {
			t.Fatal("nondeterministic links")
		}
	}
}

func TestHopCountsLine(t *testing.T) {
	d := lineDeployment(6, 10)
	g := BuildGraph(d, radio.UnitDisk{R: 12}, exactRanger(12), rng.New(6))
	hops := g.HopCounts([]int{0, 5})
	for i := 0; i < 6; i++ {
		if hops[i][0] != i {
			t.Errorf("hops[%d][0] = %d", i, hops[i][0])
		}
		if hops[i][1] != 5-i {
			t.Errorf("hops[%d][1] = %d", i, hops[i][1])
		}
	}
}

func TestHopCountsUnreachable(t *testing.T) {
	// Two clusters far apart.
	d := &Deployment{
		Pos: []mathx.Vec2{
			{X: 0, Y: 0}, {X: 5, Y: 0},
			{X: 100, Y: 0}, {X: 105, Y: 0},
		},
		Anchor: make([]bool, 4),
		Region: geom.NewRect(0, 0, 110, 1),
	}
	g := BuildGraph(d, radio.UnitDisk{R: 10}, exactRanger(10), rng.New(7))
	hops := g.HopCounts([]int{0})
	if hops[1][0] != 1 {
		t.Errorf("hops[1] = %d", hops[1][0])
	}
	if hops[2][0] != -1 || hops[3][0] != -1 {
		t.Error("unreachable nodes should be -1")
	}
}

func TestShortestPathDist(t *testing.T) {
	d := lineDeployment(5, 10)
	g := BuildGraph(d, radio.UnitDisk{R: 12}, exactRanger(12), rng.New(8))
	dist := g.ShortestPathDist([]int{0})
	for i := 0; i < 5; i++ {
		want := float64(i) * 10
		if math.Abs(dist[i][0]-want) > 1e-5 {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i][0], want)
		}
	}
}

func TestShortestPathUnreachableInf(t *testing.T) {
	d := &Deployment{
		Pos:    []mathx.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}},
		Anchor: make([]bool, 2),
		Region: geom.NewRect(0, 0, 110, 1),
	}
	g := BuildGraph(d, radio.UnitDisk{R: 10}, exactRanger(10), rng.New(9))
	dist := g.ShortestPathDist([]int{0})
	if !math.IsInf(dist[1][0], 1) {
		t.Errorf("unreachable dist = %v", dist[1][0])
	}
}

func TestComponents(t *testing.T) {
	d := &Deployment{
		Pos: []mathx.Vec2{
			{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 10, Y: 0}, // component of 3
			{X: 100, Y: 0}, {X: 105, Y: 0}, // component of 2
			{X: 200, Y: 0}, // isolated
		},
		Anchor: make([]bool, 6),
		Region: geom.NewRect(0, 0, 210, 1),
	}
	g := BuildGraph(d, radio.UnitDisk{R: 7}, exactRanger(7), rng.New(10))
	comps, compOf := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	if compOf[0] != compOf[1] || compOf[0] == compOf[3] {
		t.Error("compOf labeling wrong")
	}
}

func TestMeasBetween(t *testing.T) {
	d := lineDeployment(3, 10)
	g := BuildGraph(d, radio.UnitDisk{R: 12}, exactRanger(12), rng.New(11))
	if m, ok := g.MeasBetween(0, 1); !ok || math.Abs(m-10) > 1e-5 {
		t.Errorf("MeasBetween(0,1) = %v, %v", m, ok)
	}
	if _, ok := g.MeasBetween(0, 2); ok {
		t.Error("non-link reported as measured")
	}
}

func TestNeighborsAndTwoHop(t *testing.T) {
	d := lineDeployment(5, 10)
	g := BuildGraph(d, radio.UnitDisk{R: 12}, exactRanger(12), rng.New(12))
	nbrs := g.Neighbors(2)
	if len(nbrs) != 2 {
		t.Fatalf("neighbors of 2 = %v", nbrs)
	}
	two := g.TwoHopNonNeighbors(2)
	if len(two) != 2 {
		t.Fatalf("two-hop of 2 = %v", two)
	}
	seen := map[int]bool{}
	for _, v := range two {
		seen[v] = true
	}
	if !seen[0] || !seen[4] {
		t.Errorf("two-hop of 2 = %v, want {0,4}", two)
	}
	// End node: one neighbor, one two-hop.
	if got := g.TwoHopNonNeighbors(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("two-hop of 0 = %v", got)
	}
}

func TestEmptyGraphSafe(t *testing.T) {
	d := lineDeployment(3, 1000) // no links at range 10
	g := BuildGraph(d, radio.UnitDisk{R: 10}, exactRanger(10), rng.New(13))
	if len(g.Links) != 0 {
		t.Fatal("unexpected links")
	}
	if g.AvgDegree() != 0 {
		t.Error("avg degree of empty graph")
	}
	comps, _ := g.Components()
	if len(comps) != 3 {
		t.Errorf("components = %d", len(comps))
	}
	hops := g.HopCounts([]int{0})
	if hops[1][0] != -1 {
		t.Error("isolated hop count wrong")
	}
}

// Property: for random scenarios, every link respects the propagation
// model's max range, endpoints are ordered, adjacency is symmetric, and no
// pair appears twice.
func TestBuildGraphInvariantsProperty(t *testing.T) {
	root := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		s := root.Split(uint64(trial))
		n := 20 + s.Intn(60)
		r := 8 + s.Uniform(0, 20)
		d, err := Deploy(n, 1+s.Intn(n/2), UniformGen{}, geom.NewRect(0, 0, 100, 100), AnchorsRandom, s.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		prop := radio.LogNormalShadow{R: r, Eta: 3, SigmaDB: 3}
		g := BuildGraph(d, prop, radio.TOAGaussian{R: r, SigmaFrac: 0.1}, s.Split(2))

		type pair struct{ a, b int }
		seen := map[pair]bool{}
		for _, l := range g.Links {
			if l.A >= l.B {
				t.Fatalf("trial %d: unordered link %d-%d", trial, l.A, l.B)
			}
			if seen[pair{l.A, l.B}] {
				t.Fatalf("trial %d: duplicate link %d-%d", trial, l.A, l.B)
			}
			seen[pair{l.A, l.B}] = true
			if l.TrueDist > prop.MaxRange()+1e-9 {
				t.Fatalf("trial %d: link longer than max range: %.2f", trial, l.TrueDist)
			}
			if l.Meas < 0 {
				t.Fatalf("trial %d: negative measurement", trial)
			}
		}
		// Adjacency symmetric: j in N(i) iff i in N(j).
		for i := 0; i < g.N; i++ {
			for _, j := range g.Neighbors(i) {
				found := false
				for _, k := range g.Neighbors(j) {
					if k == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: asymmetric adjacency %d-%d", trial, i, j)
				}
			}
		}
		// Degree sum equals twice the link count.
		degSum := 0
		for i := 0; i < g.N; i++ {
			degSum += g.Degree(i)
		}
		if degSum != 2*len(g.Links) {
			t.Fatalf("trial %d: handshake lemma violated", trial)
		}
	}
}

// Property: hop counts satisfy the triangle property along any link — two
// neighbors' hop counts to the same anchor differ by at most 1.
func TestHopCountsLipschitzProperty(t *testing.T) {
	root := rng.New(78)
	for trial := 0; trial < 10; trial++ {
		s := root.Split(uint64(trial))
		d, err := Deploy(60, 8, UniformGen{}, geom.NewRect(0, 0, 100, 100), AnchorsRandom, s.Split(1))
		if err != nil {
			t.Fatal(err)
		}
		g := BuildGraph(d, radio.UnitDisk{R: 20}, radio.TOAGaussian{R: 20, SigmaFrac: 0.1}, s.Split(2))
		anchors := d.AnchorIDs()
		hops := g.HopCounts(anchors)
		for _, l := range g.Links {
			for k := range anchors {
				ha, hb := hops[l.A][k], hops[l.B][k]
				if ha < 0 || hb < 0 {
					if ha != hb {
						t.Fatalf("trial %d: one endpoint reachable, other not", trial)
					}
					continue
				}
				if ha-hb > 1 || hb-ha > 1 {
					t.Fatalf("trial %d: neighbors with hop gap %d", trial, ha-hb)
				}
			}
		}
	}
}

// TestSpatialHashMatchesBruteForce is the property test for the pair
// enumeration behind BuildGraph: on a large random deployment, the link set
// produced through the spatial hash must equal a brute-force O(n²) scan
// exactly. UnitDisk keeps connectivity deterministic (no RNG in Connected),
// so any asymmetry between the two enumerations — a pair visited twice, a
// cross-bucket pair missed — shows up as a set difference.
func TestSpatialHashMatchesBruteForce(t *testing.T) {
	const n = 2000
	const r = 9.0
	stream := rng.New(4242)
	region := geom.NewRect(0, 0, 250, 250)
	dep, err := Deploy(n, 40, UniformGen{}, region, AnchorsRandom, stream.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesBruteForce(t, dep, r, stream.Split(2))
}

// TestSpatialHashBoundaryAlignment stresses the hash's cell boundaries:
// nodes on an exact lattice with spacing equal to the radio range place
// every link precisely on a bucket edge, where an off-by-one in the
// neighborhood scan or a floor-rounding slip would lose pairs.
func TestSpatialHashBoundaryAlignment(t *testing.T) {
	const r = 10.0
	var dep Deployment
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			dep.Pos = append(dep.Pos, mathx.Vec2{X: float64(i) * r, Y: float64(j) * r})
			dep.Anchor = append(dep.Anchor, false)
		}
	}
	dep.Anchor[0] = true
	dep.Region = geom.NewRect(0, 0, 11*r, 11*r)
	assertMatchesBruteForce(t, &dep, r, rng.New(7))
}

func assertMatchesBruteForce(t *testing.T, dep *Deployment, r float64, stream *rng.Stream) {
	t.Helper()
	prop := radio.UnitDisk{R: r}
	ranger := radio.TOAGaussian{R: r, SigmaFrac: 0.1}
	g := BuildGraph(dep, prop, ranger, stream)

	type pair struct{ a, b int }
	got := make(map[pair]bool, len(g.Links))
	for _, l := range g.Links {
		if l.A >= l.B {
			t.Fatalf("link (%d,%d) not ordered A < B", l.A, l.B)
		}
		p := pair{l.A, l.B}
		if got[p] {
			t.Fatalf("link (%d,%d) enumerated twice", l.A, l.B)
		}
		got[p] = true
	}

	n := dep.N()
	want := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !prop.Connected(dep.Pos[i], dep.Pos[j], nil) {
				continue
			}
			want++
			if !got[pair{i, j}] {
				t.Errorf("brute-force pair (%d,%d) at dist %.4f missing from spatial-hash graph",
					i, j, dep.Pos[i].Dist(dep.Pos[j]))
			}
		}
	}
	if len(got) != want {
		t.Errorf("spatial hash produced %d links, brute force %d", len(got), want)
	}
}
