package topology

import (
	"container/heap"
	"math"

	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
)

// Link is one measured radio link between nodes A and B (A < B).
type Link struct {
	A, B int
	// TrueDist is the ground-truth distance (not visible to algorithms).
	TrueDist float64
	// Meas is the noisy range estimate delivered to algorithms.
	Meas float64
}

// Graph is the connectivity structure of a deployment plus its range
// measurements — everything a localization algorithm may legitimately see.
type Graph struct {
	N     int
	Links []Link
	// Adj[i] lists the link indices incident to node i.
	Adj [][]int
}

// BuildGraph evaluates the propagation model on every node pair and draws a
// range measurement for each connected pair. The stream is split so that
// link existence and measurement noise come from separate substreams:
// changing the ranging model never changes the topology.
func BuildGraph(d *Deployment, prop radio.Propagation, ranger radio.Ranger, stream *rng.Stream) *Graph {
	connStream := stream.Split(0x11)
	measStream := stream.Split(0x22)

	n := d.N()
	g := &Graph{N: n, Adj: make([][]int, n)}

	// Spatial hashing keeps pair enumeration O(n · neighbors) instead of
	// O(n²): only pairs within MaxRange can connect.
	maxR := prop.MaxRange()
	if maxR <= 0 {
		return g
	}
	cell := maxR
	type cellKey struct{ i, j int }
	buckets := make(map[cellKey][]int, n)
	keyOf := func(idx int) cellKey {
		p := d.Pos[idx]
		return cellKey{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
	}
	for i := 0; i < n; i++ {
		k := keyOf(i)
		buckets[k] = append(buckets[k], i)
	}

	for i := 0; i < n; i++ {
		ki := keyOf(i)
		for di := -1; di <= 1; di++ {
			for dj := -1; dj <= 1; dj++ {
				for _, j := range buckets[cellKey{ki.i + di, ki.j + dj}] {
					if j <= i {
						continue
					}
					if d.Pos[i].Dist(d.Pos[j]) > maxR {
						continue
					}
					if !prop.Connected(d.Pos[i], d.Pos[j], connStream) {
						continue
					}
					td := d.Pos[i].Dist(d.Pos[j])
					g.addLink(Link{
						A: i, B: j,
						TrueDist: td,
						Meas:     ranger.Measure(td, measStream),
					})
				}
			}
		}
	}
	return g
}

func (g *Graph) addLink(l Link) {
	idx := len(g.Links)
	g.Links = append(g.Links, l)
	g.Adj[l.A] = append(g.Adj[l.A], idx)
	g.Adj[l.B] = append(g.Adj[l.B], idx)
}

// Neighbors returns the node ids adjacent to i.
func (g *Graph) Neighbors(i int) []int {
	out := make([]int, 0, len(g.Adj[i]))
	for _, li := range g.Adj[i] {
		out = append(out, g.other(li, i))
	}
	return out
}

// other returns the endpoint of link li that is not node i.
func (g *Graph) other(li, i int) int {
	l := g.Links[li]
	if l.A == i {
		return l.B
	}
	return l.A
}

// Degree returns the number of links incident to node i.
func (g *Graph) Degree(i int) int { return len(g.Adj[i]) }

// AvgDegree returns the mean node degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return 2 * float64(len(g.Links)) / float64(g.N)
}

// MeasBetween returns the measured distance between i and j and whether a
// link exists.
func (g *Graph) MeasBetween(i, j int) (float64, bool) {
	for _, li := range g.Adj[i] {
		if g.other(li, i) == j {
			return g.Links[li].Meas, true
		}
	}
	return 0, false
}

// HopCounts runs a multi-source BFS from sources and returns the hop count
// from each node to each source: hops[nodeID][k] is the distance in hops to
// sources[k], or -1 if unreachable.
func (g *Graph) HopCounts(sources []int) [][]int {
	hops := make([][]int, g.N)
	for i := range hops {
		hops[i] = make([]int, len(sources))
		for k := range hops[i] {
			hops[i][k] = -1
		}
	}
	queue := make([]int, 0, g.N)
	for k, src := range sources {
		// BFS per source: simple and O(S·(V+E)), fine at our scales.
		for i := range hops {
			hops[i][k] = -1
		}
		hops[src][k] = 0
		queue = queue[:0]
		queue = append(queue, src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, li := range g.Adj[u] {
				v := g.other(li, u)
				if hops[v][k] == -1 {
					hops[v][k] = hops[u][k] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return hops
}

// ShortestPathDist runs Dijkstra from each source over measured link
// lengths, returning dist[nodeID][k] = the shortest measured-distance path
// to sources[k], or +Inf if unreachable. Used by DV-distance and MDS-MAP.
func (g *Graph) ShortestPathDist(sources []int) [][]float64 {
	dist := make([][]float64, g.N)
	for i := range dist {
		dist[i] = make([]float64, len(sources))
	}
	for k, src := range sources {
		d := g.dijkstra(src)
		for i := range d {
			dist[i][k] = d[i]
		}
	}
	return dist
}

type pqItem struct {
	node int
	d    float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// dijkstra returns shortest measured-path distances from src; unreachable
// nodes get +Inf. Non-positive measured lengths are floored at a small
// epsilon to keep the metric valid.
func (g *Graph) dijkstra(src int) []float64 {
	const minLen = 1e-9
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := &pq{{src, 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, li := range g.Adj[it.node] {
			v := g.other(li, it.node)
			w := g.Links[li].Meas
			if w < minLen {
				w = minLen
			}
			if nd := it.d + w; nd < dist[v] {
				dist[v] = nd
				heap.Push(h, pqItem{v, nd})
			}
		}
	}
	return dist
}

// Components returns the connected components as slices of node ids, largest
// first, plus a per-node component index.
func (g *Graph) Components() (comps [][]int, compOf []int) {
	compOf = make([]int, g.N)
	for i := range compOf {
		compOf[i] = -1
	}
	for i := 0; i < g.N; i++ {
		if compOf[i] >= 0 {
			continue
		}
		id := len(comps)
		var comp []int
		stack := []int{i}
		compOf[i] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, li := range g.Adj[u] {
				v := g.other(li, u)
				if compOf[v] == -1 {
					compOf[v] = id
					stack = append(stack, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	// Sort components by size descending (stable by first id).
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			if len(comps[j]) > len(comps[i]) {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
	}
	// Rebuild compOf to match the sorted order.
	for idx, comp := range comps {
		for _, u := range comp {
			compOf[u] = idx
		}
	}
	return comps, compOf
}

// TwoHopNonNeighbors returns, for each node, the ids of nodes that are
// exactly two hops away (a neighbor's neighbor but not a neighbor). These
// pairs carry the negative evidence "we are probably farther apart than the
// radio range" exploited by the pre-knowledge model.
func (g *Graph) TwoHopNonNeighbors(i int) []int {
	direct := map[int]bool{i: true}
	for _, li := range g.Adj[i] {
		direct[g.other(li, i)] = true
	}
	seen := map[int]bool{}
	var out []int
	for _, li := range g.Adj[i] {
		n1 := g.other(li, i)
		for _, lj := range g.Adj[n1] {
			n2 := g.other(lj, n1)
			if !direct[n2] && !seen[n2] {
				seen[n2] = true
				out = append(out, n2)
			}
		}
	}
	return out
}
