// Package topology generates sensor deployments and builds their
// connectivity graphs. It is the substrate that stands in for the paper's
// (unavailable) topology generator: uniform fields, perturbed grids,
// clustered drops, and the irregular C/O/X/corridor shapes that stress
// localization algorithms.
package topology

import (
	"errors"
	"fmt"
	"math"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// Deployment holds the ground truth of one simulated network: node
// positions, which nodes are anchors, and the region they were deployed in.
type Deployment struct {
	// Pos[i] is the true position of node i.
	Pos []mathx.Vec2
	// Anchor[i] reports whether node i knows its own position.
	Anchor []bool
	// Region is the deployment area (pre-knowledge for the Bayesian model).
	Region geom.Region
}

// N returns the number of nodes.
func (d *Deployment) N() int { return len(d.Pos) }

// NumAnchors returns how many nodes are anchors.
func (d *Deployment) NumAnchors() int {
	c := 0
	for _, a := range d.Anchor {
		if a {
			c++
		}
	}
	return c
}

// AnchorIDs returns the indices of all anchor nodes in ascending order.
func (d *Deployment) AnchorIDs() []int {
	out := make([]int, 0, d.NumAnchors())
	for i, a := range d.Anchor {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// UnknownIDs returns the indices of all non-anchor nodes in ascending order.
func (d *Deployment) UnknownIDs() []int {
	out := make([]int, 0, d.N()-d.NumAnchors())
	for i, a := range d.Anchor {
		if !a {
			out = append(out, i)
		}
	}
	return out
}

// Generator produces node positions inside a region.
type Generator interface {
	// Generate returns n positions inside region.
	Generate(n int, region geom.Region, stream *rng.Stream) ([]mathx.Vec2, error)
	// Name identifies the generator in experiment tables.
	Name() string
}

// UniformGen scatters nodes independently and uniformly over the region —
// the standard "random deployment" of the WSN literature.
type UniformGen struct{}

// Name implements Generator.
func (UniformGen) Name() string { return "uniform" }

// Generate implements Generator.
func (UniformGen) Generate(n int, region geom.Region, stream *rng.Stream) ([]mathx.Vec2, error) {
	return geom.SampleN(region, n, stream)
}

// GridJitterGen places nodes on a regular grid perturbed by Gaussian jitter —
// a planned deployment with placement error. Jitter is the standard
// deviation as a fraction of the grid pitch.
type GridJitterGen struct {
	Jitter float64
}

// Name implements Generator.
func (GridJitterGen) Name() string { return "grid-jitter" }

// Generate implements Generator.
func (g GridJitterGen) Generate(n int, region geom.Region, stream *rng.Stream) ([]mathx.Vec2, error) {
	if n <= 0 {
		return nil, errors.New("topology: need n > 0")
	}
	bb := region.Bounds()
	// Choose grid dimensions proportional to the bounding box aspect ratio.
	aspect := bb.Width() / bb.Height()
	ny := int(math.Max(1, math.Round(math.Sqrt(float64(n)/aspect))))
	nx := (n + ny - 1) / ny
	pitchX := bb.Width() / float64(nx)
	pitchY := bb.Height() / float64(ny)
	sigmaX := g.Jitter * pitchX
	sigmaY := g.Jitter * pitchY

	out := make([]mathx.Vec2, 0, n)
	for j := 0; j < ny && len(out) < n; j++ {
		for i := 0; i < nx && len(out) < n; i++ {
			base := mathx.V2(
				bb.Min.X+(float64(i)+0.5)*pitchX,
				bb.Min.Y+(float64(j)+0.5)*pitchY,
			)
			// Re-draw jitter until inside the region (bounded attempts),
			// falling back to the clamped base point.
			placed := false
			for try := 0; try < 50; try++ {
				p := mathx.V2(base.X+stream.Normal(0, sigmaX), base.Y+stream.Normal(0, sigmaY))
				if region.Contains(p) {
					out = append(out, p)
					placed = true
					break
				}
			}
			if !placed {
				if region.Contains(base) {
					out = append(out, base)
				} else {
					p, err := geom.SampleIn(region, stream)
					if err != nil {
						return nil, fmt.Errorf("topology: grid-jitter fallback: %w", err)
					}
					out = append(out, p)
				}
			}
		}
	}
	return out, nil
}

// ClusterGen drops nodes in Gaussian clusters around k uniformly chosen
// centers — an airdropped deployment.
type ClusterGen struct {
	K     int     // number of clusters (default 5)
	Sigma float64 // cluster spread as a fraction of the bounding-box diagonal (default 0.08)
}

// Name implements Generator.
func (ClusterGen) Name() string { return "clusters" }

// Generate implements Generator.
func (c ClusterGen) Generate(n int, region geom.Region, stream *rng.Stream) ([]mathx.Vec2, error) {
	k := c.K
	if k <= 0 {
		k = 5
	}
	sigFrac := c.Sigma
	if sigFrac <= 0 {
		sigFrac = 0.08
	}
	centers, err := geom.SampleN(region, k, stream)
	if err != nil {
		return nil, err
	}
	bb := region.Bounds()
	sigma := sigFrac * mathx.V2(bb.Width(), bb.Height()).Norm()
	out := make([]mathx.Vec2, 0, n)
	for len(out) < n {
		ctr := centers[stream.Intn(k)]
		placed := false
		for try := 0; try < 100; try++ {
			p := mathx.V2(ctr.X+stream.Normal(0, sigma), ctr.Y+stream.Normal(0, sigma))
			if region.Contains(p) {
				out = append(out, p)
				placed = true
				break
			}
		}
		if !placed {
			p, err := geom.SampleIn(region, stream)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Deploy generates a deployment of n nodes with the given anchor selection.
type AnchorPolicy int

const (
	// AnchorsRandom picks anchors uniformly at random.
	AnchorsRandom AnchorPolicy = iota
	// AnchorsPerimeter prefers nodes near the region boundary, the common
	// surveyed-perimeter setup.
	AnchorsPerimeter
	// AnchorsGrid picks the nodes closest to a virtual anchor grid, giving
	// even coverage.
	AnchorsGrid
)

// Deploy generates positions with gen and marks numAnchors anchors per
// policy. It returns an error for invalid sizes or an unsatisfiable region.
func Deploy(n, numAnchors int, gen Generator, region geom.Region, policy AnchorPolicy, stream *rng.Stream) (*Deployment, error) {
	if n <= 0 {
		return nil, errors.New("topology: need at least one node")
	}
	if numAnchors < 0 || numAnchors > n {
		return nil, fmt.Errorf("topology: numAnchors %d out of [0,%d]", numAnchors, n)
	}
	pos, err := gen.Generate(n, region, stream)
	if err != nil {
		return nil, err
	}
	d := &Deployment{Pos: pos, Anchor: make([]bool, n), Region: region}
	switch policy {
	case AnchorsRandom:
		for _, id := range stream.SampleK(n, numAnchors) {
			d.Anchor[id] = true
		}
	case AnchorsPerimeter:
		markByScore(d, numAnchors, func(p mathx.Vec2) float64 {
			bb := region.Bounds()
			// Negative distance to the nearest boundary: closest first.
			dx := math.Min(p.X-bb.Min.X, bb.Max.X-p.X)
			dy := math.Min(p.Y-bb.Min.Y, bb.Max.Y-p.Y)
			return -math.Min(dx, dy)
		})
	case AnchorsGrid:
		markNearestToGrid(d, numAnchors)
	default:
		return nil, fmt.Errorf("topology: unknown anchor policy %d", policy)
	}
	return d, nil
}

// markByScore marks the k nodes with the highest score as anchors.
func markByScore(d *Deployment, k int, score func(mathx.Vec2) float64) {
	type cand struct {
		id int
		s  float64
	}
	cands := make([]cand, d.N())
	for i, p := range d.Pos {
		cands[i] = cand{i, score(p)}
	}
	// Selection by partial sort (n is small).
	for picked := 0; picked < k; picked++ {
		best := picked
		for j := picked + 1; j < len(cands); j++ {
			if cands[j].s > cands[best].s {
				best = j
			}
		}
		cands[picked], cands[best] = cands[best], cands[picked]
		d.Anchor[cands[picked].id] = true
	}
}

// markNearestToGrid marks, for each point of a ⌈√k⌉×⌈√k⌉ virtual grid over
// the region bounds, the nearest unmarked node.
func markNearestToGrid(d *Deployment, k int) {
	if k == 0 {
		return
	}
	bb := d.Region.Bounds()
	side := int(math.Ceil(math.Sqrt(float64(k))))
	marked := 0
	for j := 0; j < side && marked < k; j++ {
		for i := 0; i < side && marked < k; i++ {
			target := mathx.V2(
				bb.Min.X+(float64(i)+0.5)*bb.Width()/float64(side),
				bb.Min.Y+(float64(j)+0.5)*bb.Height()/float64(side),
			)
			best, bestD := -1, math.Inf(1)
			for id, p := range d.Pos {
				if d.Anchor[id] {
					continue
				}
				if dd := p.Dist2(target); dd < bestD {
					best, bestD = id, dd
				}
			}
			if best >= 0 {
				d.Anchor[best] = true
				marked++
			}
		}
	}
	// If grid points collided with already-marked nodes, top up randomly.
	for id := 0; marked < k && id < d.N(); id++ {
		if !d.Anchor[id] {
			d.Anchor[id] = true
			marked++
		}
	}
}
