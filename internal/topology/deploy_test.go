package topology

import (
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

func unitField() geom.Region { return geom.NewRect(0, 0, 100, 100) }

func TestDeployUniform(t *testing.T) {
	d, err := Deploy(200, 20, UniformGen{}, unitField(), AnchorsRandom, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 200 {
		t.Fatalf("N = %d", d.N())
	}
	if d.NumAnchors() != 20 {
		t.Fatalf("anchors = %d", d.NumAnchors())
	}
	if len(d.AnchorIDs())+len(d.UnknownIDs()) != 200 {
		t.Fatal("anchor/unknown partition broken")
	}
	for _, p := range d.Pos {
		if !d.Region.Contains(p) {
			t.Fatalf("node at %v outside region", p)
		}
	}
}

func TestDeployDeterministic(t *testing.T) {
	d1, _ := Deploy(50, 5, UniformGen{}, unitField(), AnchorsRandom, rng.New(7))
	d2, _ := Deploy(50, 5, UniformGen{}, unitField(), AnchorsRandom, rng.New(7))
	for i := range d1.Pos {
		if d1.Pos[i] != d2.Pos[i] || d1.Anchor[i] != d2.Anchor[i] {
			t.Fatal("same seed gave different deployments")
		}
	}
}

func TestDeployErrors(t *testing.T) {
	if _, err := Deploy(0, 0, UniformGen{}, unitField(), AnchorsRandom, rng.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Deploy(10, 11, UniformGen{}, unitField(), AnchorsRandom, rng.New(1)); err == nil {
		t.Error("too many anchors accepted")
	}
	if _, err := Deploy(10, 2, UniformGen{}, unitField(), AnchorPolicy(99), rng.New(1)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestGridJitterGen(t *testing.T) {
	g := GridJitterGen{Jitter: 0.1}
	pts, err := g.Generate(100, unitField(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	region := unitField()
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("point %v outside", p)
		}
	}
	// Grid-ness: with small jitter, min pairwise distance should be well
	// above what a uniform scatter would produce.
	minD := 1e18
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < minD {
				minD = d
			}
		}
	}
	if minD < 1.0 { // pitch is 10, jitter sigma 1 → min spacing ≫ 1
		t.Errorf("grid spacing collapsed: min pair distance %v", minD)
	}
	if _, err := g.Generate(0, unitField(), rng.New(2)); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestGridJitterInIrregularRegion(t *testing.T) {
	region := geom.OShape(geom.NewRect(0, 0, 100, 100))
	pts, err := GridJitterGen{Jitter: 0.2}.Generate(80, region, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("point %v escaped O-shape", p)
		}
	}
}

func TestClusterGen(t *testing.T) {
	c := ClusterGen{K: 3, Sigma: 0.05}
	pts, err := c.Generate(150, unitField(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 150 {
		t.Fatalf("got %d", len(pts))
	}
	region := unitField()
	for _, p := range pts {
		if !region.Contains(p) {
			t.Fatalf("point %v outside", p)
		}
	}
	// Clustering: mean nearest-neighbor distance should be small relative to
	// a uniform deployment of the same size.
	mnnCluster := meanNN(pts)
	uni, _ := UniformGen{}.Generate(150, region, rng.New(5))
	mnnUniform := meanNN(uni)
	if mnnCluster >= mnnUniform {
		t.Errorf("cluster mean-NN %v not below uniform %v", mnnCluster, mnnUniform)
	}
}

func meanNN(pts []mathx.Vec2) float64 {
	total := 0.0
	for i := range pts {
		best := 1e18
		for j := range pts {
			if i == j {
				continue
			}
			if d := pts[i].Dist(pts[j]); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(pts))
}

func TestAnchorPolicies(t *testing.T) {
	// Perimeter anchors must be nearer the boundary than average.
	d, err := Deploy(200, 20, UniformGen{}, unitField(), AnchorsPerimeter, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	boundaryDist := func(p mathx.Vec2) float64 {
		dx := p.X
		if 100-p.X < dx {
			dx = 100 - p.X
		}
		dy := p.Y
		if 100-p.Y < dy {
			dy = 100 - p.Y
		}
		if dy < dx {
			return dy
		}
		return dx
	}
	var anchorSum, unknownSum float64
	for i, p := range d.Pos {
		if d.Anchor[i] {
			anchorSum += boundaryDist(p)
		} else {
			unknownSum += boundaryDist(p)
		}
	}
	anchorMean := anchorSum / float64(d.NumAnchors())
	unknownMean := unknownSum / float64(d.N()-d.NumAnchors())
	if anchorMean >= unknownMean {
		t.Errorf("perimeter anchors not near boundary: %v vs %v", anchorMean, unknownMean)
	}

	// Grid anchors must spread across all four quadrants.
	d2, err := Deploy(200, 16, UniformGen{}, unitField(), AnchorsGrid, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumAnchors() != 16 {
		t.Fatalf("grid policy marked %d anchors", d2.NumAnchors())
	}
	quad := [4]int{}
	for _, id := range d2.AnchorIDs() {
		p := d2.Pos[id]
		q := 0
		if p.X > 50 {
			q |= 1
		}
		if p.Y > 50 {
			q |= 2
		}
		quad[q]++
	}
	for q, c := range quad {
		if c == 0 {
			t.Errorf("quadrant %d has no grid anchor", q)
		}
	}
}

func TestRandomWaypointStaysInside(t *testing.T) {
	region := geom.NewRect(0, 0, 50, 50)
	rw := RandomWaypoint{Region: region, SpeedMin: 1, SpeedMax: 3, PauseSteps: 2}
	trace := rw.Trace(mathx.V2(25, 25), 500, rng.New(8))
	if len(trace) != 500 {
		t.Fatalf("trace length %d", len(trace))
	}
	for step, p := range trace {
		if !region.Contains(p) {
			t.Fatalf("step %d at %v escaped region", step, p)
		}
	}
	// Speed bound: consecutive positions at most SpeedMax apart.
	prev := mathx.V2(25, 25)
	for step, p := range trace {
		if p.Dist(prev) > 3+1e-9 {
			t.Fatalf("step %d moved %v > SpeedMax", step, p.Dist(prev))
		}
		prev = p
	}
}
