package topology

import (
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// RandomWaypoint generates a random-waypoint mobility trace inside a region:
// the node repeatedly picks a uniform destination and speed, walks there in
// straight-line steps, and pauses. Used by the mobile-tracking extension.
type RandomWaypoint struct {
	Region     geom.Region
	SpeedMin   float64 // meters per step
	SpeedMax   float64
	PauseSteps int // steps to dwell at each waypoint
}

// Trace returns a trace of `steps` positions starting from start. The first
// entry is the position after one step (start itself is not included).
func (rw RandomWaypoint) Trace(start mathx.Vec2, steps int, stream *rng.Stream) []mathx.Vec2 {
	out := make([]mathx.Vec2, 0, steps)
	cur := start
	var dest mathx.Vec2
	var speed float64
	pause := 0
	haveDest := false

	for len(out) < steps {
		if pause > 0 {
			pause--
			out = append(out, cur)
			continue
		}
		if !haveDest {
			p, err := geom.SampleIn(rw.Region, stream)
			if err != nil {
				// Degenerate region: stand still.
				out = append(out, cur)
				continue
			}
			dest = p
			lo, hi := rw.SpeedMin, rw.SpeedMax
			if lo <= 0 {
				lo = 0.5
			}
			if hi < lo {
				hi = lo
			}
			speed = stream.Uniform(lo, hi)
			haveDest = true
		}
		gap := dest.Sub(cur)
		if gap.Norm() <= speed {
			cur = dest
			haveDest = false
			pause = rw.PauseSteps
		} else {
			cur = cur.Add(gap.Unit().Scale(speed))
		}
		out = append(out, cur)
	}
	return out
}
