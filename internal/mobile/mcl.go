package mobile

import (
	"math"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// MCL is Hu & Evans' Monte-Carlo Localization for mobile sensor networks:
// each node maintains a particle cloud; per step it predicts (each particle
// moves at most MaxSpeed in a random direction) and filters (a particle
// survives only if it is consistent with the anchor observations: within R
// of every one-hop anchor, within (R, 2R] of every two-hop anchor),
// resampling until the cloud is refilled.
//
// UseMap enables the pre-knowledge variant (MCL-PK): particles must also lie
// inside the deployment region — the paper's pre-knowledge idea applied to
// the mobile setting.
type MCL struct {
	// Particles per node (default 50, as in the original paper).
	Particles int
	// UseMap filters particles with the deployment region.
	UseMap bool
}

// Name implements Localizer.
func (m MCL) Name() string {
	if m.UseMap {
		return "mcl-pk"
	}
	return "mcl"
}

// NewNode implements Localizer.
func (m MCL) NewNode(sim *Sim, stream *rng.Stream) NodeFilter {
	count := m.Particles
	if count <= 0 {
		count = 50
	}
	box := sim.Region.Bounds()
	var region geom.Region
	if m.UseMap {
		region = sim.Region
	}
	n := &mclNode{
		sim:    sim,
		region: region,
		box:    box,
		stream: stream,
		m:      count,
	}
	n.seedUniform()
	return n
}

type mclNode struct {
	sim    *Sim
	region geom.Region // nil unless UseMap
	box    geom.Rect
	stream *rng.Stream
	m      int
	pts    []mathx.Vec2
}

func (n *mclNode) seedUniform() {
	n.pts = n.pts[:0]
	for len(n.pts) < n.m {
		p := n.randomPoint()
		n.pts = append(n.pts, p)
	}
}

// randomPoint draws from the map if available (bounded rejection), else the
// bounding box.
func (n *mclNode) randomPoint() mathx.Vec2 {
	for try := 0; try < 64; try++ {
		p := mathx.V2(n.stream.Uniform(n.box.Min.X, n.box.Max.X), n.stream.Uniform(n.box.Min.Y, n.box.Max.Y))
		if n.region == nil || n.region.Contains(p) {
			return p
		}
	}
	return n.box.Center()
}

// valid checks a particle against the observation (and the map).
func (n *mclNode) valid(p mathx.Vec2, obs Obs) bool {
	if n.region != nil && !n.region.Contains(p) {
		return false
	}
	r := n.sim.Cfg.R
	for _, a := range obs.OneHop {
		if p.Dist(a) > r {
			return false
		}
	}
	for _, a := range obs.TwoHop {
		d := p.Dist(a)
		if d <= r || d > 2*r {
			return false
		}
	}
	return true
}

// Step implements NodeFilter.
func (n *mclNode) Step(obs Obs) mathx.Vec2 {
	vmax := n.sim.Cfg.MaxSpeed

	// Predict: every particle moves up to vmax in a random direction.
	for i, p := range n.pts {
		theta := n.stream.Uniform(0, 2*math.Pi)
		d := vmax * math.Sqrt(n.stream.Float64()) // uniform over the disk
		n.pts[i] = mathx.V2(p.X+d*math.Cos(theta), p.Y+d*math.Sin(theta))
	}

	// Filter.
	kept := n.pts[:0]
	for _, p := range n.pts {
		if n.valid(p, obs) {
			kept = append(kept, p)
		}
	}

	// Resample: refill the cloud by jittering survivors; if nothing
	// survived, draw fresh samples consistent with the strongest
	// observation (the classic MCL recovery step).
	out := make([]mathx.Vec2, 0, n.m)
	out = append(out, kept...)
	attempts := 0
	for len(out) < n.m && attempts < 50*n.m {
		attempts++
		var cand mathx.Vec2
		switch {
		case len(kept) > 0:
			src := kept[n.stream.Intn(len(kept))]
			jitter := vmax / 2
			cand = mathx.V2(src.X+n.stream.Normal(0, jitter), src.Y+n.stream.Normal(0, jitter))
		case len(obs.OneHop) > 0:
			// Sample inside a heard anchor's disk.
			a := obs.OneHop[n.stream.Intn(len(obs.OneHop))]
			theta := n.stream.Uniform(0, 2*math.Pi)
			d := n.sim.Cfg.R * math.Sqrt(n.stream.Float64())
			cand = mathx.V2(a.X+d*math.Cos(theta), a.Y+d*math.Sin(theta))
		default:
			cand = n.randomPoint()
		}
		if n.valid(cand, obs) {
			out = append(out, cand)
		}
	}
	if len(out) == 0 {
		// Pathological: restart from scratch rather than report garbage.
		n.seedUniform()
	} else {
		n.pts = out
	}
	return mathx.Centroid(n.pts)
}
