package mobile

import (
	"math"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{}.Defaults()
	if s.N != 120 || s.Field != 100 || s.R != 20 || s.MaxSpeed != 3 || s.Steps != 40 {
		t.Errorf("defaults = %+v", s)
	}
	s2 := Scenario{N: 50, MaxSpeed: 7}.Defaults()
	if s2.N != 50 || s2.MaxSpeed != 7 {
		t.Error("overrides clobbered")
	}
}

func TestNewSimTraces(t *testing.T) {
	sim, err := NewSim(Scenario{N: 40, Steps: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Pos) != 30 || len(sim.Pos[0]) != 40 {
		t.Fatalf("trace dims %dx%d", len(sim.Pos), len(sim.Pos[0]))
	}
	// Nodes stay inside the region and respect the speed bound.
	for ti := 1; ti < len(sim.Pos); ti++ {
		for i := range sim.Pos[ti] {
			if !sim.Region.Contains(sim.Pos[ti][i]) {
				t.Fatalf("node %d escaped at step %d", i, ti)
			}
			if d := sim.Pos[ti][i].Dist(sim.Pos[ti-1][i]); d > sim.Cfg.MaxSpeed+1e-9 {
				t.Fatalf("node %d moved %.2f > max speed", i, d)
			}
		}
	}
	anchors := 0
	for _, a := range sim.Anchor {
		if a {
			anchors++
		}
	}
	if anchors != 6 { // 15% of 40
		t.Errorf("anchors = %d", anchors)
	}
}

func TestNewSimDeterministic(t *testing.T) {
	a, _ := NewSim(Scenario{N: 20, Steps: 10, Seed: 5})
	b, _ := NewSim(Scenario{N: 20, Steps: 10, Seed: 5})
	for t2 := range a.Pos {
		for i := range a.Pos[t2] {
			if a.Pos[t2][i] != b.Pos[t2][i] {
				t.Fatal("sim not deterministic")
			}
		}
	}
}

func TestNewSimNeedsAnchors(t *testing.T) {
	if _, err := NewSim(Scenario{N: 3, AnchorFrac: 0.01, Steps: 5, Seed: 1}); err == nil {
		t.Error("anchor-free scenario accepted")
	}
}

func TestObserveConsistency(t *testing.T) {
	sim, err := NewSim(Scenario{N: 60, Steps: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sim.Cfg.N; i++ {
		if sim.Anchor[i] {
			continue
		}
		obs := sim.Observe(0, i)
		self := sim.Pos[0][i]
		// Every one-hop anchor really is within R.
		for _, a := range obs.OneHop {
			if a.Dist(self) > sim.Cfg.R+1e-9 {
				t.Fatalf("one-hop anchor at distance %.2f", a.Dist(self))
			}
		}
		// Every two-hop anchor is not a direct neighbor but within 2R.
		for _, a := range obs.TwoHop {
			d := a.Dist(self)
			if d <= sim.Cfg.R {
				t.Fatalf("two-hop anchor at direct-neighbor distance %.2f", d)
			}
			if d > 2*sim.Cfg.R+1e-9 {
				t.Fatalf("two-hop anchor at distance %.2f > 2R", d)
			}
		}
	}
}

func TestMCLTracksMobileNodes(t *testing.T) {
	sim, err := NewSim(Scenario{N: 100, Steps: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	perStep, mean := Evaluate(sim, MCL{}, 10, 7)
	t.Logf("MCL mean error %.2f m (R=%v)", mean, sim.Cfg.R)
	if len(perStep) != 30 {
		t.Fatalf("perStep len %d", len(perStep))
	}
	// MCL should do clearly better than a stationary center guess (~38 m
	// mean in a 100 m field) and better than the radio range.
	if mean > sim.Cfg.R {
		t.Errorf("MCL mean error %.2f above R", mean)
	}
	// Error decreases from the cold start.
	if perStep[29] >= perStep[0] {
		t.Errorf("no convergence: step0 %.2f, step29 %.2f", perStep[0], perStep[29])
	}
}

func TestMCLMapPreKnowledgeHelpsOnCorridor(t *testing.T) {
	region := geom.Corridor(geom.NewRect(0, 0, 120, 120), 0.25)
	mk := func() *Sim {
		sim, err := NewSim(Scenario{N: 90, Field: 120, Region: region, Steps: 30, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	_, plain := Evaluate(mk(), MCL{}, 10, 9)
	_, withMap := Evaluate(mk(), MCL{UseMap: true}, 10, 9)
	t.Logf("corridor: mcl %.2f m vs mcl-pk %.2f m", plain, withMap)
	if withMap >= plain {
		t.Errorf("map pre-knowledge did not help: %.2f vs %.2f", withMap, plain)
	}
}

func TestMCLDeterministic(t *testing.T) {
	sim, _ := NewSim(Scenario{N: 40, Steps: 10, Seed: 6})
	_, m1 := Evaluate(sim, MCL{}, 3, 11)
	_, m2 := Evaluate(sim, MCL{}, 3, 11)
	if m1 != m2 {
		t.Errorf("MCL not deterministic: %v vs %v", m1, m2)
	}
}

func TestMCLSurvivesNoObservations(t *testing.T) {
	// A single unknown far from all anchors: the filter must keep producing
	// finite estimates from the motion/region prior alone.
	sim := &Sim{
		Cfg:    Scenario{N: 2, Field: 100, R: 5, MaxSpeed: 2, Steps: 10}.Defaults(),
		Region: geom.NewRect(0, 0, 100, 100),
		Anchor: []bool{true, false},
	}
	sim.Cfg.N = 2
	sim.Cfg.R = 5
	sim.Pos = make([][]mathx.Vec2, sim.Cfg.Steps)
	for t2 := range sim.Pos {
		sim.Pos[t2] = []mathx.Vec2{{X: 5, Y: 5}, {X: 90, Y: 90}}
	}
	f := MCL{}.NewNode(sim, rng.New(1))
	for step := 0; step < sim.Cfg.Steps; step++ {
		est := f.Step(sim.Observe(step, 1))
		if math.IsNaN(est.X) || math.IsNaN(est.Y) {
			t.Fatal("non-finite estimate")
		}
	}
}

func TestMCLNames(t *testing.T) {
	if (MCL{}).Name() != "mcl" || (MCL{UseMap: true}).Name() != "mcl-pk" {
		t.Error("names wrong")
	}
}

func TestEvaluateBurnIn(t *testing.T) {
	sim, _ := NewSim(Scenario{N: 30, Steps: 12, Seed: 8})
	perStep, mean := Evaluate(sim, MCL{}, 6, 3)
	// The reported mean covers steps >= burnIn only; recompute by hand.
	want := 0.0
	for _, v := range perStep[6:] {
		want += v
	}
	want /= 6
	if math.Abs(mean-want) > 1e-9 {
		t.Errorf("burn-in mean %v, want %v", mean, want)
	}
}
