// Package mobile extends the reproduction to networks where every node
// moves: the Monte-Carlo Localization (MCL) setting of Hu & Evans (2004).
// Nodes follow random-waypoint trajectories; at each step an unknown node
// observes which anchors it hears directly (one hop) and which it hears
// about through a neighbor (two hops), and filters a particle cloud with
// those constraints. The package provides classic MCL and a pre-knowledge
// variant (MCL-PK) that additionally filters with the deployment map — the
// paper's titular idea transplanted to the mobile setting.
package mobile

import (
	"errors"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// Scenario configures a mobile-network simulation.
type Scenario struct {
	// N is the node count, AnchorFrac the anchor fraction.
	N          int
	AnchorFrac float64
	// Field is the square side (meters); Region optionally restricts
	// movement to an irregular map (nil = the full square).
	Field  float64
	Region geom.Region
	// R is the radio range.
	R float64
	// MaxSpeed is the maximum node displacement per step (meters).
	MaxSpeed float64
	// Steps is the trace length.
	Steps int
	// Seed drives all randomness.
	Seed uint64
}

// Defaults fills zero fields: 120 nodes, 15% anchors, 100 m field, R=20,
// speed 3 m/step, 40 steps.
func (s Scenario) Defaults() Scenario {
	if s.N <= 0 {
		s.N = 120
	}
	if s.AnchorFrac <= 0 {
		s.AnchorFrac = 0.15
	}
	if s.Field <= 0 {
		s.Field = 100
	}
	if s.R <= 0 {
		s.R = 20
	}
	if s.MaxSpeed <= 0 {
		s.MaxSpeed = 3
	}
	if s.Steps <= 0 {
		s.Steps = 40
	}
	return s
}

// Sim holds the ground-truth trajectories of one mobile network.
type Sim struct {
	Cfg    Scenario
	Region geom.Region
	Anchor []bool
	// Pos[t][i] is node i's position at step t.
	Pos [][]mathx.Vec2
}

// NewSim generates trajectories for the scenario.
func NewSim(cfg Scenario) (*Sim, error) {
	cfg = cfg.Defaults()
	region := cfg.Region
	if region == nil {
		region = geom.NewRect(0, 0, cfg.Field, cfg.Field)
	}
	stream := rng.New(cfg.Seed ^ 0x30B11E)

	starts, err := geom.SampleN(region, cfg.N, stream.Split(1))
	if err != nil {
		return nil, err
	}
	sim := &Sim{Cfg: cfg, Region: region, Anchor: make([]bool, cfg.N)}
	numAnchors := int(float64(cfg.N)*cfg.AnchorFrac + 0.5)
	if numAnchors < 1 {
		return nil, errors.New("mobile: scenario has no anchors")
	}
	for _, id := range stream.Split(2).SampleK(cfg.N, numAnchors) {
		sim.Anchor[id] = true
	}

	rw := topology.RandomWaypoint{
		Region:   region,
		SpeedMin: cfg.MaxSpeed * 0.3,
		SpeedMax: cfg.MaxSpeed,
	}
	traces := make([][]mathx.Vec2, cfg.N)
	for i := range traces {
		traces[i] = rw.Trace(starts[i], cfg.Steps, stream.Split(uint64(100+i)))
	}
	// Transpose to per-step layout.
	sim.Pos = make([][]mathx.Vec2, cfg.Steps)
	for t := 0; t < cfg.Steps; t++ {
		sim.Pos[t] = make([]mathx.Vec2, cfg.N)
		for i := 0; i < cfg.N; i++ {
			sim.Pos[t][i] = traces[i][t]
		}
	}
	return sim, nil
}

// Obs is what an unknown node perceives in one step: the advertised
// positions of anchors heard directly and anchors relayed by a neighbor.
type Obs struct {
	OneHop []mathx.Vec2
	TwoHop []mathx.Vec2
}

// Observe computes node i's observation at step t (unit-disk connectivity,
// as in the original MCL evaluation).
func (s *Sim) Observe(t, i int) Obs {
	var obs Obs
	pos := s.Pos[t]
	self := pos[i]
	r2 := s.Cfg.R * s.Cfg.R

	oneHopSeen := map[int]bool{}
	var neighbors []int
	for j := range pos {
		if j == i {
			continue
		}
		if pos[j].Dist2(self) <= r2 {
			neighbors = append(neighbors, j)
			if s.Anchor[j] {
				obs.OneHop = append(obs.OneHop, pos[j])
				oneHopSeen[j] = true
			}
		}
	}
	twoHopSeen := map[int]bool{}
	for _, j := range neighbors {
		for k := range pos {
			if k == i || k == j || !s.Anchor[k] {
				continue
			}
			if oneHopSeen[k] || twoHopSeen[k] {
				continue
			}
			if pos[k].Dist2(pos[j]) <= r2 {
				twoHopSeen[k] = true
				obs.TwoHop = append(obs.TwoHop, pos[k])
			}
		}
	}
	return obs
}

// Localizer is a per-node sequential localization algorithm for mobile
// networks.
type Localizer interface {
	Name() string
	// NewNode returns fresh per-node state; stream is the node's private
	// randomness.
	NewNode(sim *Sim, stream *rng.Stream) NodeFilter
}

// NodeFilter is one node's sequential filter.
type NodeFilter interface {
	// Step consumes one observation and returns the position estimate.
	Step(obs Obs) mathx.Vec2
}

// Evaluate runs the localizer over every unknown node and returns the mean
// error per step (averaged over nodes), plus the overall mean after
// discarding `burnIn` initial steps.
func Evaluate(sim *Sim, loc Localizer, burnIn int, seed uint64) (perStep []float64, mean float64) {
	stream := rng.New(seed ^ 0xF117E2)
	var unknowns []int
	for i, a := range sim.Anchor {
		if !a {
			unknowns = append(unknowns, i)
		}
	}
	filters := make([]NodeFilter, len(unknowns))
	for k := range unknowns {
		filters[k] = loc.NewNode(sim, stream.Split(uint64(k)))
	}
	perStep = make([]float64, sim.Cfg.Steps)
	total, count := 0.0, 0
	for t := 0; t < sim.Cfg.Steps; t++ {
		sum := 0.0
		for k, id := range unknowns {
			est := filters[k].Step(sim.Observe(t, id))
			err := est.Dist(sim.Pos[t][id])
			sum += err
			if t >= burnIn {
				total += err
				count++
			}
		}
		perStep[t] = sum / float64(len(unknowns))
	}
	if count > 0 {
		mean = total / float64(count)
	}
	return perStep, mean
}
