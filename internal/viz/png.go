package viz

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"wsnloc/internal/bayes"
	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
)

// PNG rendering: publication-style figures from the same inputs as the
// ASCII renderers, written with the standard library's image/png.

var (
	colBackground = color.RGBA{245, 245, 245, 255}
	colRegion     = color.RGBA{225, 232, 238, 255}
	colAnchor     = color.RGBA{20, 90, 200, 255}
	colGood       = color.RGBA{30, 150, 60, 255}
	colMedium     = color.RGBA{240, 160, 20, 255}
	colBad        = color.RGBA{210, 40, 40, 255}
	colLost       = color.RGBA{120, 120, 120, 255}
	colResidual   = color.RGBA{180, 60, 60, 120}
)

// WriteFieldPNG renders the deployment (and result, if non-nil) as a PNG of
// the given pixel width. Nodes are dots colored by error bucket; residual
// lines connect estimates to truths.
func WriteFieldPNG(w io.Writer, p *core.Problem, res *core.Result, width int) error {
	if width < 64 {
		width = 64
	}
	bounds := p.Deploy.Region.Bounds()
	height := int(float64(width) * bounds.Height() / bounds.Width())
	if height < 64 {
		height = 64
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))

	toPix := func(pt mathx.Vec2) (int, int) {
		x := int((pt.X - bounds.Min.X) / bounds.Width() * float64(width-1))
		y := int((1 - (pt.Y-bounds.Min.Y)/bounds.Height()) * float64(height-1))
		return x, y
	}

	// Background + region shading.
	for py := 0; py < height; py++ {
		for px := 0; px < width; px++ {
			wx := bounds.Min.X + float64(px)/float64(width-1)*bounds.Width()
			wy := bounds.Min.Y + (1-float64(py)/float64(height-1))*bounds.Height()
			if p.Deploy.Region.Contains(mathx.V2(wx, wy)) {
				img.SetRGBA(px, py, colRegion)
			} else {
				img.SetRGBA(px, py, colBackground)
			}
		}
	}

	// Residual lines first so dots draw over them.
	if res != nil {
		for i, pos := range p.Deploy.Pos {
			if p.Deploy.Anchor[i] || !res.Localized[i] {
				continue
			}
			x0, y0 := toPix(pos)
			x1, y1 := toPix(res.Est[i])
			drawLine(img, x0, y0, x1, y1, colResidual)
		}
	}

	for i, pos := range p.Deploy.Pos {
		x, y := toPix(pos)
		switch {
		case p.Deploy.Anchor[i]:
			drawDot(img, x, y, 3, colAnchor)
		case res == nil:
			drawDot(img, x, y, 2, colLost)
		case !res.Localized[i]:
			drawDot(img, x, y, 2, colLost)
		default:
			err := res.Est[i].Dist(pos)
			c := colGood
			if err > p.R {
				c = colBad
			} else if err > 0.5*p.R {
				c = colMedium
			}
			drawDot(img, x, y, 2, c)
		}
	}
	return png.Encode(w, img)
}

// WriteHeatmapPNG renders a grid belief as a grayscale heat map (dark =
// more probability mass), with the same sqrt compression as Heatmap.
func WriteHeatmapPNG(w io.Writer, b *bayes.Belief, width int) error {
	if width < 64 {
		width = 64
	}
	g := b.Grid
	gb := g.Bounds()
	height := int(float64(width) * gb.Height() / gb.Width())
	if height < 64 {
		height = 64
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))

	maxW := 0.0
	for _, v := range b.W {
		if v > maxW {
			maxW = v
		}
	}
	for py := 0; py < height; py++ {
		for px := 0; px < width; px++ {
			wx := gb.Min.X + float64(px)/float64(width-1)*gb.Width()
			wy := gb.Min.Y + (1-float64(py)/float64(height-1))*gb.Height()
			v := 0.0
			if maxW > 0 {
				v = math.Sqrt(b.W[g.IndexOf(mathx.V2(wx, wy))] / maxW)
			}
			shade := uint8(255 - 230*mathx.Clamp(v, 0, 1))
			img.SetRGBA(px, py, color.RGBA{shade, shade, 255, 255})
		}
	}
	return png.Encode(w, img)
}

// drawDot fills a filled disk of radius r pixels at (x, y), clipped.
func drawDot(img *image.RGBA, x, y, r int, c color.RGBA) {
	b := img.Bounds()
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy > r*r {
				continue
			}
			px, py := x+dx, y+dy
			if px >= b.Min.X && px < b.Max.X && py >= b.Min.Y && py < b.Max.Y {
				img.SetRGBA(px, py, c)
			}
		}
	}
}

// drawLine draws a Bresenham line with alpha-over blending.
func drawLine(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	e := dx + dy
	b := img.Bounds()
	for {
		if x0 >= b.Min.X && x0 < b.Max.X && y0 >= b.Min.Y && y0 < b.Max.Y {
			blend(img, x0, y0, c)
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * e
		if e2 >= dy {
			e += dy
			x0 += sx
		}
		if e2 <= dx {
			e += dx
			y0 += sy
		}
	}
}

func blend(img *image.RGBA, x, y int, c color.RGBA) {
	dst := img.RGBAAt(x, y)
	a := float64(c.A) / 255
	mix := func(d, s uint8) uint8 {
		return uint8(float64(d)*(1-a) + float64(s)*a)
	}
	img.SetRGBA(x, y, color.RGBA{mix(dst.R, c.R), mix(dst.G, c.G), mix(dst.B, c.B), 255})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
