package viz

import (
	"strings"
	"testing"

	"wsnloc/internal/bayes"
	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

func vizProblem(t *testing.T) *core.Problem {
	t.Helper()
	dep, err := topology.Deploy(40, 6, topology.UniformGen{},
		geom.NewRect(0, 0, 100, 100), topology.AnchorsRandom, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	prop := radio.UnitDisk{R: 25}
	ranger := radio.TOAGaussian{R: 25, SigmaFrac: 0.1}
	g := topology.BuildGraph(dep, prop, ranger, rng.New(2))
	return &core.Problem{Deploy: dep, Graph: g, R: 25, Prop: prop, Ranger: ranger}
}

func TestFieldMapBareDeployment(t *testing.T) {
	p := vizProblem(t)
	out := FieldMap(p, nil, 60)
	if !strings.Contains(out, "A") {
		t.Error("no anchors rendered")
	}
	if !strings.Contains(out, "o") {
		t.Error("no nodes rendered")
	}
	if !strings.Contains(out, "A anchor   o node") {
		t.Error("bare legend missing")
	}
	// Bordered: every line starts and ends with | or +.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, "anchor") {
			continue
		}
		if line[0] != '+' && line[0] != '|' {
			t.Fatalf("unframed line %q", line)
		}
	}
}

func TestFieldMapWithResult(t *testing.T) {
	p := vizProblem(t)
	res := core.NewResult(p)
	ids := p.Deploy.UnknownIDs()
	// One accurate, one mediocre, one bad, one lost.
	res.Est[ids[0]] = p.Deploy.Pos[ids[0]].Add(mathx.V2(1, 0))
	res.Localized[ids[0]] = true
	res.Est[ids[1]] = p.Deploy.Pos[ids[1]].Add(mathx.V2(0.8*p.R, 0))
	res.Localized[ids[1]] = true
	res.Est[ids[2]] = p.Deploy.Pos[ids[2]].Add(mathx.V2(3*p.R, 0))
	res.Localized[ids[2]] = true
	out := FieldMap(p, res, 80)
	for _, marker := range []string{"o", "+", "x", "?"} {
		if !strings.Contains(out, marker) {
			t.Errorf("marker %q missing:\n%s", marker, out)
		}
	}
}

func TestFieldMapIrregularShapeShading(t *testing.T) {
	// The O-shape's bounding box is the full square but its center hole is
	// not part of the region: shading must appear on the ring and never in
	// the hole.
	region := geom.OShape(geom.NewRect(0, 0, 100, 100))
	dep, err := topology.Deploy(10, 2, topology.UniformGen{}, region, topology.AnchorsRandom, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	prop := radio.UnitDisk{R: 25}
	g := topology.BuildGraph(dep, prop, radio.TOAGaussian{R: 25, SigmaFrac: 0.1}, rng.New(4))
	p := &core.Problem{Deploy: dep, Graph: g, R: 25, Prop: prop, Ranger: radio.TOAGaussian{R: 25, SigmaFrac: 0.1}}
	out := FieldMap(p, nil, 64)
	lines := strings.Split(out, "\n")
	raster := lines[1 : len(lines)-3] // strip borders and legend
	h, w := len(raster), 64
	if !strings.Contains(raster[0], ".") && !strings.Contains(raster[1], ".") {
		t.Errorf("no shading on the ring:\n%s", out)
	}
	// The hole covers (0.3..0.7) of both axes; its strict interior must be
	// unshaded (nodes cannot be there either).
	for row := int(0.35 * float64(h)); row < int(0.65*float64(h)); row++ {
		seg := raster[row][1+int(0.35*float64(w)) : 1+int(0.65*float64(w))]
		if strings.ContainsAny(seg, ".oA") {
			t.Errorf("marks inside the O hole at row %d:\n%s", row, out)
		}
	}
}

func TestHeatmap(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 40, 40)
	b := bayes.NewDelta(g, mathx.V2(50, 50))
	out := Heatmap(b, 40)
	if !strings.Contains(out, "@") {
		t.Errorf("peak not rendered:\n%s", out)
	}
	// A delta: exactly few dark cells.
	if strings.Count(out, "@") > 4 {
		t.Errorf("delta smeared:\n%s", out)
	}
	// Zero belief renders an empty frame without panicking.
	z := &bayes.Belief{Grid: g, W: make([]float64, g.Cells())}
	if out := Heatmap(z, 40); strings.Contains(out, "@") {
		t.Error("zero belief rendered mass")
	}
}

func TestHeatmapUniformIsFlat(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 20, 20)
	b := bayes.NewUniform(g)
	out := Heatmap(b, 30)
	// Uniform: every interior cell gets the same (max) character.
	if strings.Contains(out, " .") && strings.Contains(out, "@") {
		// mixed shades would mean non-flat rendering
		t.Errorf("uniform belief not flat:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{1, 1, 1, 2, 2, 5}
	out := Histogram(vals, 5, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("bins = %d:\n%s", len(lines), out)
	}
	// The dominant bin (the three 1s) renders a full-width bar.
	full := false
	for _, l := range lines {
		if strings.Contains(l, strings.Repeat("#", 20)) {
			full = true
		}
	}
	if !full {
		t.Errorf("dominant bin not full width:\n%s", out)
	}
	if Histogram(nil, 5, 20) != "(no data)\n" {
		t.Error("empty histogram wrong")
	}
	// All-zero values: guard against division by zero.
	if out := Histogram([]float64{0, 0}, 3, 10); !strings.Contains(out, "#") {
		t.Errorf("zero-value histogram:\n%s", out)
	}
}

func TestCanvasBounds(t *testing.T) {
	c := newCanvas(geom.NewRect(0, 0, 10, 10), 4) // below minimum width
	if c.w != 8 {
		t.Errorf("width floor = %d", c.w)
	}
	if _, _, ok := c.at(mathx.V2(-1, 5)); ok {
		t.Error("out-of-bounds point accepted")
	}
	// Corners map inside the raster.
	for _, p := range []mathx.Vec2{{X: 0, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}, {X: 10, Y: 0}} {
		col, row, ok := c.at(p)
		if !ok || col < 0 || col >= c.w || row < 0 || row >= c.h {
			t.Errorf("corner %v mapped to (%d,%d,%v)", p, col, row, ok)
		}
	}
	// North-up orientation: y=10 maps to row 0.
	_, rowTop, _ := c.at(mathx.V2(5, 10))
	_, rowBot, _ := c.at(mathx.V2(5, 0))
	if rowTop >= rowBot {
		t.Error("Y axis not flipped")
	}
}

func TestCellRamp(t *testing.T) {
	if cell(-1) != ' ' || cell(0) != ' ' {
		t.Error("low clamp wrong")
	}
	if cell(1) != '@' || cell(2) != '@' {
		t.Error("high clamp wrong")
	}
	if mid := cell(0.5); mid == ' ' || mid == '@' {
		t.Errorf("mid ramp = %q, want an intermediate shade", mid)
	}
}
