// Package viz renders deployments, localization results, and beliefs as
// ASCII art for terminal inspection — the "figures" of a stdlib-only
// reproduction. All renderers are deterministic pure functions of their
// inputs.
package viz

import (
	"fmt"
	"math"
	"strings"

	"wsnloc/internal/bayes"
	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
)

// ramp maps intensities in [0, 1] to characters, light to dark.
const ramp = " .:-=+*#%@"

// cell returns the ramp character for intensity v in [0,1].
func cell(v float64) byte {
	if v <= 0 {
		return ramp[0]
	}
	if v >= 1 {
		return ramp[len(ramp)-1]
	}
	return ramp[int(v*float64(len(ramp)-1)+0.5)]
}

// canvas is a character raster mapped onto a world rectangle.
type canvas struct {
	w, h   int
	bounds geom.Rect
	rows   [][]byte
}

func newCanvas(bounds geom.Rect, width int) *canvas {
	if width < 8 {
		width = 8
	}
	aspect := bounds.Height() / bounds.Width()
	// Terminal cells are ~2× taller than wide; halve the row count.
	h := int(float64(width)*aspect/2 + 0.5)
	if h < 4 {
		h = 4
	}
	c := &canvas{w: width, h: h, bounds: bounds, rows: make([][]byte, h)}
	for i := range c.rows {
		c.rows[i] = []byte(strings.Repeat(" ", width))
	}
	return c
}

// at maps a world point to raster coordinates.
func (c *canvas) at(p mathx.Vec2) (col, row int, ok bool) {
	fx := (p.X - c.bounds.Min.X) / c.bounds.Width()
	fy := (p.Y - c.bounds.Min.Y) / c.bounds.Height()
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 {
		return 0, 0, false
	}
	col = mathx.ClampInt(int(fx*float64(c.w)), 0, c.w-1)
	// Row 0 is the top: flip Y so north is up.
	row = mathx.ClampInt(int((1-fy)*float64(c.h)), 0, c.h-1)
	return col, row, true
}

func (c *canvas) put(p mathx.Vec2, ch byte) {
	if col, row, ok := c.at(p); ok {
		c.rows[row][col] = ch
	}
}

func (c *canvas) String() string {
	var b strings.Builder
	border := "+" + strings.Repeat("-", c.w) + "+\n"
	b.WriteString(border)
	for _, r := range c.rows {
		b.WriteString("|")
		b.Write(r)
		b.WriteString("|\n")
	}
	b.WriteString(border)
	return b.String()
}

// FieldMap renders a deployment and (optionally) its localization result:
//
//	A  anchor
//	o  unknown localized to within 0.5 R
//	+  unknown localized to within 1 R
//	x  unknown with error above 1 R
//	?  unknown the algorithm could not localize
//	·  region interior (sparse shading)
//
// Pass res == nil to render the bare deployment.
func FieldMap(p *core.Problem, res *core.Result, width int) string {
	bounds := p.Deploy.Region.Bounds()
	c := newCanvas(bounds, width)

	// Shade the region interior sparsely so irregular shapes read.
	for row := 0; row < c.h; row += 2 {
		for col := 0; col < c.w; col += 4 {
			wx := bounds.Min.X + (float64(col)+0.5)/float64(c.w)*bounds.Width()
			wy := bounds.Min.Y + (1-(float64(row)+0.5)/float64(c.h))*bounds.Height()
			if p.Deploy.Region.Contains(mathx.V2(wx, wy)) {
				c.rows[row][col] = '.'
			}
		}
	}

	for i, pos := range p.Deploy.Pos {
		switch {
		case p.Deploy.Anchor[i]:
			c.put(pos, 'A')
		case res == nil:
			c.put(pos, 'o')
		case !res.Localized[i]:
			c.put(pos, '?')
		default:
			err := res.Est[i].Dist(pos)
			switch {
			case err <= 0.5*p.R:
				c.put(pos, 'o')
			case err <= p.R:
				c.put(pos, '+')
			default:
				c.put(pos, 'x')
			}
		}
	}
	legend := "A anchor   o err<=0.5R   + err<=R   x err>R   ? unlocalized\n"
	if res == nil {
		legend = "A anchor   o node\n"
	}
	return c.String() + legend
}

// Heatmap renders a grid belief as character shades, dark = more mass.
// Intensities are normalized to the belief's max cell.
func Heatmap(b *bayes.Belief, width int) string {
	g := b.Grid
	c := newCanvas(g.Bounds(), width)
	maxW := 0.0
	for _, w := range b.W {
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 0 {
		return c.String()
	}
	// Aggregate grid cells into canvas cells by max, so narrow peaks are
	// never lost to undersampling when the canvas is coarser than the grid.
	agg := make([]float64, c.w*c.h)
	for idx, w := range b.W {
		col, row, ok := c.at(g.CenterIdx(idx))
		if !ok {
			continue
		}
		if w > agg[row*c.w+col] {
			agg[row*c.w+col] = w
		}
	}
	for row := 0; row < c.h; row++ {
		for col := 0; col < c.w; col++ {
			// Sqrt compresses the dynamic range so rings stay visible.
			c.rows[row][col] = cell(math.Sqrt(agg[row*c.w+col] / maxW))
		}
	}
	return c.String()
}

// Histogram renders values as a horizontal-bar histogram with the given
// number of bins over [0, max(values)].
func Histogram(values []float64, bins, width int) string {
	if len(values) == 0 {
		return "(no data)\n"
	}
	if bins < 1 {
		bins = 10
	}
	if width < 10 {
		width = 10
	}
	_, maxV := mathx.MinMax(values)
	if maxV <= 0 {
		maxV = 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		i := mathx.ClampInt(int(v/maxV*float64(bins)), 0, bins-1)
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		lo := float64(i) / float64(bins) * maxV
		hi := float64(i+1) / float64(bins) * maxV
		bar := strings.Repeat("#", int(float64(c)/float64(maxC)*float64(width)+0.5))
		fmt.Fprintf(&b, "%7.2f–%-7.2f %5d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
