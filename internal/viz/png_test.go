package viz

import (
	"bytes"
	"image/png"
	"testing"

	"wsnloc/internal/bayes"
	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
)

func decodePNG(t *testing.T, buf *bytes.Buffer) (w, h int) {
	t.Helper()
	img, err := png.Decode(buf)
	if err != nil {
		t.Fatalf("invalid PNG: %v", err)
	}
	b := img.Bounds()
	return b.Dx(), b.Dy()
}

func TestWriteFieldPNG(t *testing.T) {
	p := vizProblem(t)
	var buf bytes.Buffer
	if err := WriteFieldPNG(&buf, p, nil, 200); err != nil {
		t.Fatal(err)
	}
	w, h := decodePNG(t, &buf)
	if w != 200 || h != 200 { // square region
		t.Errorf("dims %dx%d", w, h)
	}
}

func TestWriteFieldPNGWithResult(t *testing.T) {
	p := vizProblem(t)
	res := core.NewResult(p)
	for _, id := range p.Deploy.UnknownIDs() {
		res.Est[id] = p.Deploy.Pos[id].Add(mathx.V2(5, 0))
		res.Localized[id] = true
	}
	var buf bytes.Buffer
	if err := WriteFieldPNG(&buf, p, res, 150); err != nil {
		t.Fatal(err)
	}
	decodePNG(t, &buf)
	// Deterministic: same inputs, same bytes.
	var buf2 bytes.Buffer
	if err := WriteFieldPNG(&buf2, p, res, 150); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		// buf was consumed by decode; re-render.
		var buf3 bytes.Buffer
		WriteFieldPNG(&buf3, p, res, 150)
		if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
			t.Error("PNG rendering not deterministic")
		}
	}
}

func TestWriteFieldPNGMinWidth(t *testing.T) {
	p := vizProblem(t)
	var buf bytes.Buffer
	if err := WriteFieldPNG(&buf, p, nil, 1); err != nil {
		t.Fatal(err)
	}
	w, h := decodePNG(t, &buf)
	if w < 64 || h < 64 {
		t.Errorf("minimum size not enforced: %dx%d", w, h)
	}
}

func TestWriteHeatmapPNG(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 30, 30)
	b := bayes.NewDelta(g, mathx.V2(25, 75))
	var buf bytes.Buffer
	if err := WriteHeatmapPNG(&buf, b, 120); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The delta's pixel must be darker than a far corner.
	peakX, peakY := 120*25/100, 120-120*75/100
	r0, _, _, _ := img.At(peakX, peakY).RGBA()
	r1, _, _, _ := img.At(110, 110).RGBA()
	if r0 >= r1 {
		t.Errorf("peak (%d) not darker than background (%d)", r0, r1)
	}
	// Zero belief still encodes.
	z := &bayes.Belief{Grid: g, W: make([]float64, g.Cells())}
	buf.Reset()
	if err := WriteHeatmapPNG(&buf, z, 80); err != nil {
		t.Fatal(err)
	}
}
