package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeSamplerPopulatesRegistry(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Hour) // first sample is synchronous
	defer s.Stop()

	if got := reg.Gauge("wsnloc_goroutines").Value(); got < 1 {
		t.Errorf("wsnloc_goroutines = %g, want >= 1", got)
	}
	if got := reg.Gauge("wsnloc_heap_inuse_bytes").Value(); got <= 0 {
		t.Errorf("wsnloc_heap_inuse_bytes = %g, want > 0", got)
	}
	if got := reg.Gauge("wsnloc_heap_alloc_bytes").Value(); got <= 0 {
		t.Errorf("wsnloc_heap_alloc_bytes = %g, want > 0", got)
	}
	if got := reg.Counter("wsnloc_alloc_bytes_total").Value(); got <= 0 {
		t.Errorf("wsnloc_alloc_bytes_total = %g, want > 0", got)
	}
}

func TestRuntimeSamplerAllocCounterIsDelta(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Hour)
	defer s.Stop()
	first := reg.Counter("wsnloc_alloc_bytes_total").Value()

	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<14))
	}
	_ = sink
	s.Sample()
	second := reg.Counter("wsnloc_alloc_bytes_total").Value()
	if second < first {
		t.Errorf("alloc counter went backwards: %g -> %g", first, second)
	}
	// The counter accumulates deltas, not absolute TotalAlloc re-added each
	// sample: two samples must not double the total.
	s.Sample()
	third := reg.Counter("wsnloc_alloc_bytes_total").Value()
	if third >= 2*second && second > 0 {
		t.Errorf("alloc counter looks re-added, not delta'd: %g -> %g", second, third)
	}
}

func TestRuntimeSamplerObservesGCPauses(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeSampler(reg, time.Hour)
	defer s.Stop()
	runtime.GC()
	runtime.GC()
	s.Sample()
	if got := reg.Counter("wsnloc_gc_total").Value(); got < 2 {
		t.Errorf("wsnloc_gc_total = %g, want >= 2", got)
	}
	if got := reg.Histogram("wsnloc_gc_pause_seconds", GCPauseBuckets()).Count(); got < 2 {
		t.Errorf("gc pause observations = %d, want >= 2", got)
	}
}

func TestRuntimeSamplerStopJoins(t *testing.T) {
	reg := NewRegistry()
	before := runtime.NumGoroutine()
	s := StartRuntimeSampler(reg, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	s.Stop() // must join the loop goroutine
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("sampler goroutine leaked: %d before, %d after Stop", before, after)
	}
}
