package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
)

// Profiling helpers: thin wrappers that give the CLIs -cpuprofile /
// -memprofile flags and an optional live /debug/pprof endpoint without each
// command re-implementing the file and server plumbing.

// StartCPUProfile begins writing a CPU profile to path and returns the stop
// function. The returned stop closes the file and must be called exactly
// once (typically deferred from main).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live memory)
// and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	werr := runtimepprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: heap profile: %w", werr)
	}
	return cerr
}

// PprofMux returns a mux serving the standard net/http/pprof endpoints under
// /debug/pprof/, without touching http.DefaultServeMux.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartPprofServer serves PprofMux on addr (e.g. "localhost:6060"; port 0
// picks a free port) in a background goroutine. It returns the bound address
// and a shutdown function.
func StartPprofServer(addr string) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof server: %w", err)
	}
	srv := &http.Server{Handler: PprofMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
