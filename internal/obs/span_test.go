package obs

import (
	"testing"
)

func TestStartSpanEmitsStartAndDone(t *testing.T) {
	mem := NewMemory()
	sp := StartSpan(mem, "op", map[string]interface{}{"k": 1})
	if sp == nil {
		t.Fatal("StartSpan on enabled tracer returned nil")
	}
	sp.Set("extra", "v")
	sp.EndWith(map[string]interface{}{"n": 2})

	starts := mem.ByName("op.start")
	if len(starts) != 1 {
		t.Fatalf("got %d op.start events, want 1", len(starts))
	}
	if starts[0].Fields["k"] != 1 {
		t.Errorf("start missing field k: %v", starts[0].Fields)
	}
	id, _ := starts[0].Fields["span_id"].(string)
	if id == "" {
		t.Fatal("start missing span_id")
	}
	if id != sp.ID() {
		t.Errorf("start span_id %q != Span.ID() %q", id, sp.ID())
	}

	dones := mem.ByName("op.done")
	if len(dones) != 1 {
		t.Fatalf("got %d op.done events, want 1", len(dones))
	}
	d := dones[0]
	if d.Fields["span_id"] != id {
		t.Errorf("done span_id %v != start %q", d.Fields["span_id"], id)
	}
	// Start fields, Set annotations, and EndWith extras all merge in.
	if d.Fields["k"] != 1 || d.Fields["extra"] != "v" || d.Fields["n"] != 2 {
		t.Errorf("done fields incomplete: %v", d.Fields)
	}
	if v, ok := d.Float("dur_ms"); !ok || v < 0 {
		t.Errorf("done dur_ms = %v %v, want >= 0", v, ok)
	}
	// A root span has no parent.
	if _, ok := d.Fields["parent_id"]; ok {
		t.Errorf("root span carries parent_id: %v", d.Fields)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	mem := NewMemory()
	sp := StartSpan(mem, "op", nil)
	sp.End()
	sp.End()
	sp.EndAs("canceled", nil)
	if got := len(mem.ByName("op.done")); got != 1 {
		t.Errorf("got %d op.done events, want 1", got)
	}
	if got := len(mem.ByName("op.canceled")); got != 0 {
		t.Errorf("EndAs after End emitted %d events, want 0", got)
	}
}

func TestSpanEndAsOutcome(t *testing.T) {
	mem := NewMemory()
	sp := StartSpan(mem, "op", nil)
	sp.EndAs("canceled", map[string]interface{}{"err": "ctx"})
	evs := mem.ByName("op.canceled")
	if len(evs) != 1 {
		t.Fatalf("got %d op.canceled events, want 1", len(evs))
	}
	if evs[0].Fields["err"] != "ctx" {
		t.Errorf("canceled event fields: %v", evs[0].Fields)
	}
	if _, ok := evs[0].Float("dur_ms"); !ok {
		t.Error("canceled event missing dur_ms")
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	if got := StartSpan(nil, "op", nil); got != nil {
		t.Errorf("StartSpan(nil tracer) = %v, want nil", got)
	}
	if got := StartSpan(Nop(), "op", nil); got != nil {
		t.Errorf("StartSpan(Nop) = %v, want nil", got)
	}
	// Every method on a nil span must be a no-op, not a panic.
	sp.Set("k", 1)
	sp.End()
	sp.EndWith(nil)
	sp.EndAs("canceled", nil)
	if sp.ID() != "" {
		t.Errorf("nil span ID = %q, want empty", sp.ID())
	}
	if tr := sp.Tracer(); Enabled(tr) {
		t.Error("nil span Tracer() is enabled, want no-op")
	}
	mem := NewMemory()
	if got := sp.Wrap(mem); got != Tracer(mem) {
		t.Error("nil span Wrap should return the tracer unchanged")
	}
}

func TestSpanTracerParentsPlainEvents(t *testing.T) {
	mem := NewMemory()
	parent := StartSpan(mem, "parent", nil)
	tr := parent.Tracer()

	tr.Emit(Event{Name: "plain", Fields: map[string]interface{}{"x": 1}})
	evs := mem.ByName("plain")
	if len(evs) != 1 {
		t.Fatalf("got %d plain events, want 1", len(evs))
	}
	if evs[0].Fields["parent_id"] != parent.ID() {
		t.Errorf("plain event parent_id = %v, want %q", evs[0].Fields["parent_id"], parent.ID())
	}

	// Pre-tagged events pass through untouched.
	tr.Emit(Event{Name: "tagged", Fields: map[string]interface{}{"span_id": "zz"}})
	if _, ok := mem.ByName("tagged")[0].Fields["parent_id"]; ok {
		t.Error("event with span_id gained a parent_id")
	}
}

func TestChildSpansInheritParent(t *testing.T) {
	mem := NewMemory()
	parent := StartSpan(mem, "parent", nil)
	child := StartSpan(parent.Tracer(), "child", nil)
	child.End()
	parent.End()

	cs := mem.ByName("child.start")
	if len(cs) != 1 {
		t.Fatalf("got %d child.start events, want 1", len(cs))
	}
	if cs[0].Fields["parent_id"] != parent.ID() {
		t.Errorf("child.start parent_id = %v, want %q", cs[0].Fields["parent_id"], parent.ID())
	}
	cd := mem.ByName("child.done")
	if cd[0].Fields["parent_id"] != parent.ID() {
		t.Errorf("child.done parent_id = %v, want %q", cd[0].Fields["parent_id"], parent.ID())
	}
	if cd[0].Fields["span_id"] == parent.ID() {
		t.Error("child span_id equals parent span_id")
	}
}

func TestSpanWrapScopesForeignSink(t *testing.T) {
	journal := NewMemory()
	user := NewMemory()
	// The sweep-engine shape: the cell span journals, but trial events go to
	// the caller's (different) sink — yet still parented to the cell.
	cell := StartSpan(journal, "cell", nil)
	wrapped := cell.Wrap(user)
	wrapped.Emit(Event{Name: "trial.done", Fields: map[string]interface{}{}})
	cell.End()

	evs := user.ByName("trial.done")
	if len(evs) != 1 {
		t.Fatalf("got %d trial.done events on user sink, want 1", len(evs))
	}
	if evs[0].Fields["parent_id"] != cell.ID() {
		t.Errorf("wrapped event parent_id = %v, want %q", evs[0].Fields["parent_id"], cell.ID())
	}
	if got := len(journal.ByName("trial.done")); got != 0 {
		t.Errorf("wrapped event leaked to the span's own sink (%d events)", got)
	}
	if Enabled((*Span)(nil).Wrap(Nop())) {
		t.Error("Wrap of a disabled tracer should stay disabled")
	}
}

func TestSpanIDsUnique(t *testing.T) {
	mem := NewMemory()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		sp := StartSpan(mem, "op", nil)
		if seen[sp.ID()] {
			t.Fatalf("duplicate span ID %q", sp.ID())
		}
		seen[sp.ID()] = true
		sp.End()
	}
}
