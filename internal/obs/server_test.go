package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func opsTestServer(t *testing.T) (*httptest.Server, *Registry, *Broadcast) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("wsnloc_trials_total").Add(3)
	bc := NewBroadcast(16)
	ts := httptest.NewServer(NewOpsMux(reg, bc))
	t.Cleanup(ts.Close)
	return ts, reg, bc
}

func TestOpsEndpointsServe(t *testing.T) {
	ts, _, _ := opsTestServer(t)
	cases := []struct {
		path string
		want string
	}{
		{"/", "wsnloc ops plane"},
		{"/healthz", "ok"},
		{"/metrics", "wsnloc_trials_total 3"},
		{"/metrics.json", `"wsnloc_trials_total": 3`},
		{"/debug/pprof/cmdline", ""},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", tc.path, resp.StatusCode)
		}
		if tc.want != "" && !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s body missing %q:\n%s", tc.path, tc.want, body)
		}
	}
	resp, err := http.Get(ts.URL + "/no-such")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /no-such = %d, want 404", resp.StatusCode)
	}
}

func TestOpsBuildInfo(t *testing.T) {
	ts, _, _ := opsTestServer(t)
	resp, err := http.Get(ts.URL + "/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("buildinfo is not JSON: %v", err)
	}
	if v, _ := out["go_version"].(string); !strings.HasPrefix(v, "go") {
		t.Errorf("go_version = %q, want go*", v)
	}
}

func TestEventsStreamDeliversJSONL(t *testing.T) {
	ts, _, bc := opsTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", got)
	}

	// Wait for the subscription to register, then emit through it.
	waitFor(t, func() bool { return bc.Subscribers() == 1 })
	bc.Emit(Event{Time: time.Now(), Name: "hello", Fields: map[string]interface{}{"x": 1.0}})

	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	var obj map[string]interface{}
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("stream line is not JSON: %v\n%s", err, line)
	}
	if obj["event"] != "hello" || obj["x"] != 1.0 {
		t.Errorf("stream event = %v", obj)
	}
}

func TestEventsStreamSSE(t *testing.T) {
	ts, _, bc := opsTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events?sse=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", got)
	}
	waitFor(t, func() bool { return bc.Subscribers() == 1 })
	bc.Emit(Event{Time: time.Now(), Name: "hello"})
	line, err := bufio.NewReader(resp.Body).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Errorf("SSE frame = %q, want data: prefix", line)
	}
}

// TestEventsClientDisconnectUnsubscribes is the satellite regression: a
// client that goes away must terminate the handler and release its broadcast
// subscription, so abandoned streams cannot pile up.
func TestEventsClientDisconnectUnsubscribes(t *testing.T) {
	ts, _, bc := opsTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return bc.Subscribers() == 1 })

	cancel() // client disconnect
	resp.Body.Close()
	waitFor(t, func() bool { return bc.Subscribers() == 0 })

	// Emitting afterwards reaches no one and drops nothing.
	bc.Emit(Event{Name: "after"})
	if got := bc.Dropped(); got != 0 {
		t.Errorf("dropped = %d after disconnect, want 0", got)
	}
}

func TestEventsWithoutBroadcastIs503(t *testing.T) {
	ts := httptest.NewServer(NewOpsMux(NewRegistry(), nil))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /events without broadcast = %d, want 503", resp.StatusCode)
	}
}

func TestMetricsExposeBroadcastHealth(t *testing.T) {
	ts, _, bc := opsTestServer(t)
	bc.Emit(Event{Name: "e"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"wsnloc_events_subscribers 0",
		"wsnloc_events_emitted 1",
		"wsnloc_events_dropped 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestStartOpsServerServes(t *testing.T) {
	reg := NewRegistry()
	srv, err := StartOpsServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d, want 200", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOpsServerShutdownDrainsEventStreams pins the graceful-shutdown
// contract: Shutdown closes every /events subscription (clients read a
// clean EOF, not a connection reset) and stops the server within the
// deadline.
func TestOpsServerShutdownDrainsEventStreams(t *testing.T) {
	reg := NewRegistry()
	bc := NewBroadcast(4)
	srv, err := StartOpsServer("127.0.0.1:0", reg, bc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, func() bool { return bc.Subscribers() == 1 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// The stream must end cleanly: EOF, not a reset mid-read.
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Errorf("stream did not end cleanly: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if got := bc.Subscribers(); got != 0 {
		t.Errorf("subscribers after shutdown = %d, want 0", got)
	}
	// The broadcast itself stays usable for a later server.
	sub := bc.Subscribe()
	bc.Emit(Event{Name: "after"})
	select {
	case e := <-sub.Events():
		if e.Name != "after" {
			t.Errorf("post-shutdown event = %q, want after", e.Name)
		}
	case <-time.After(time.Second):
		t.Error("broadcast unusable after CloseSubscribers")
	}
	sub.Close()
}
