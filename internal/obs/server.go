package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strings"
)

// The ops server is the unified live observability plane the CLIs (and the
// future wsnlocd daemon) mount behind one -obs-http flag:
//
//	GET /              endpoint index (text)
//	GET /healthz       liveness probe ("ok")
//	GET /metrics       Prometheus text exposition of the registry
//	GET /metrics.json  JSON exposition of the registry
//	GET /events        live event stream off a Broadcast sink:
//	                   chunked JSONL by default, SSE with ?sse=1 or
//	                   Accept: text/event-stream; ends on client disconnect
//	GET /buildinfo     module path/version, VCS revision, Go version
//	GET /debug/pprof/  the standard pprof endpoints
//
// Everything served is read-only and allocation-light; the event stream is
// decoupled from the solver hot path by the Broadcast's bounded buffers, so
// any number of slow readers cost drops, never latency.

// NewOpsMux returns the ops-plane handler over a metrics registry and an
// optional broadcast sink (nil disables /events with 503).
func NewOpsMux(reg *Registry, bc *Broadcast) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "wsnloc ops plane\n\n"+
			"/healthz       liveness\n"+
			"/metrics       Prometheus exposition\n"+
			"/metrics.json  JSON exposition\n"+
			"/events        live event stream (JSONL; ?sse=1 for SSE)\n"+
			"/buildinfo     build / VCS metadata\n"+
			"/debug/pprof/  profiling\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		refreshOpsMetrics(reg, bc)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		refreshOpsMetrics(reg, bc)
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/events", serveEvents(bc))
	mux.HandleFunc("/buildinfo", serveBuildInfo)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// refreshOpsMetrics pushes the broadcast health gauges into the registry so
// scrapes see current subscriber and drop counts without a sampling loop.
func refreshOpsMetrics(reg *Registry, bc *Broadcast) {
	if bc == nil {
		return
	}
	reg.Gauge("wsnloc_events_subscribers").Set(float64(bc.Subscribers()))
	reg.Gauge("wsnloc_events_emitted").Set(float64(bc.Emitted()))
	reg.Gauge("wsnloc_events_dropped").Set(float64(bc.Dropped()))
}

// serveEvents streams broadcast events until the client disconnects (or the
// broadcast subscription is closed). Each event is one flattened JSON
// object; framing is newline-delimited JSON by default, or SSE "data:"
// frames when requested.
func serveEvents(bc *Broadcast) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if bc == nil {
			http.Error(w, "event streaming disabled (no broadcast sink)", http.StatusServiceUnavailable)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		sse := r.URL.Query().Get("sse") == "1" ||
			strings.Contains(r.Header.Get("Accept"), "text/event-stream")
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)
		fl.Flush()

		sub := bc.Subscribe()
		defer sub.Close()
		ctx := r.Context()
		for {
			select {
			case <-ctx.Done():
				return
			case e, ok := <-sub.Events():
				if !ok {
					return
				}
				data, err := json.Marshal(e)
				if err != nil {
					continue
				}
				if sse {
					if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
						return
					}
				} else {
					if _, err := w.Write(append(data, '\n')); err != nil {
						return
					}
				}
				fl.Flush()
			}
		}
	}
}

// buildInfoJSON is the /buildinfo response shape.
type buildInfoJSON struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	VCSRev    string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	VCSDirty  bool   `json:"vcs_dirty,omitempty"`
}

// serveBuildInfo reports the embedded module/VCS metadata of the running
// binary via runtime/debug.ReadBuildInfo.
func serveBuildInfo(w http.ResponseWriter, r *http.Request) {
	out := buildInfoJSON{}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out.GoVersion = bi.GoVersion
		out.Path = bi.Path
		out.Module = bi.Main.Path
		out.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				out.VCSRev = s.Value
			case "vcs.time":
				out.VCSTime = s.Value
			case "vcs.modified":
				out.VCSDirty = s.Value == "true"
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// Server is a running ops-plane HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
	bc  *Broadcast
}

// StartOpsServer serves the ops plane on addr (e.g. ":6060"; port 0 picks a
// free port) in a background goroutine. Close force-closes the listener and
// any in-flight /events streams; Shutdown drains them gracefully — the CLIs
// use Shutdown with a short deadline on SIGINT/SIGTERM.
func StartOpsServer(addr string, reg *Registry, bc *Broadcast) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: ops server: %w", err)
	}
	srv := &http.Server{Handler: NewOpsMux(reg, bc)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv, bc: bc}, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately, terminating open streams.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown drains the server gracefully: the listener closes, open /events
// streams end by their subscriptions closing (clients see a clean EOF, not
// a reset), and in-flight scrapes finish — all bounded by ctx. When ctx
// expires first, the remaining connections are force-closed and ctx's
// error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.bc != nil {
		s.bc.CloseSubscribers()
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
		return err
	}
	return nil
}
