package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventMarshalFlattens(t *testing.T) {
	e := Event{
		Time: time.Date(2026, 1, 2, 3, 4, 5, 600000000, time.UTC),
		Name: "bncl.round",
		Fields: map[string]interface{}{
			"round":         3,
			"residual_mean": 0.25,
			"phase":         "bp",
		},
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got map[string]interface{}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got["event"] != "bncl.round" {
		t.Errorf("event = %v, want bncl.round", got["event"])
	}
	if got["round"] != float64(3) || got["residual_mean"] != 0.25 || got["phase"] != "bp" {
		t.Errorf("fields not flattened: %v", got)
	}
	if _, err := time.Parse(time.RFC3339Nano, got["t"].(string)); err != nil {
		t.Errorf("t is not RFC3339Nano: %v", got["t"])
	}
}

func TestEventMarshalNonFinite(t *testing.T) {
	e := Event{
		Time: time.Now(),
		Name: "trial",
		Fields: map[string]interface{}{
			"mean_err": math.Inf(1),
			"nan":      math.NaN(),
			"ok":       1.5,
		},
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal with non-finite fields: %v", err)
	}
	var got map[string]interface{}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if _, isString := got["mean_err"].(string); !isString {
		t.Errorf("+Inf field should be stringified, got %T", got["mean_err"])
	}
	if got["ok"] != 1.5 {
		t.Errorf("finite field mangled: %v", got["ok"])
	}
}

func TestEventFloat(t *testing.T) {
	e := Event{Fields: map[string]interface{}{
		"f64": 2.5, "f32": float32(1.5), "i": 7, "i64": int64(9), "s": "x",
	}}
	for key, want := range map[string]float64{"f64": 2.5, "f32": 1.5, "i": 7, "i64": 9} {
		if v, ok := e.Float(key); !ok || v != want {
			t.Errorf("Float(%q) = %v, %v; want %v, true", key, v, ok, want)
		}
	}
	if _, ok := e.Float("s"); ok {
		t.Error("Float on a string field should report ok=false")
	}
	if _, ok := e.Float("missing"); ok {
		t.Error("Float on a missing field should report ok=false")
	}
}

func TestNopAndEnabled(t *testing.T) {
	if Nop().Enabled() {
		t.Error("Nop must not be enabled")
	}
	if Enabled(nil) {
		t.Error("Enabled(nil) must be false")
	}
	if Enabled(Nop()) {
		t.Error("Enabled(Nop()) must be false")
	}
	if !Enabled(NewMemory()) {
		t.Error("Enabled(Memory) must be true")
	}
	// Emit on nil/no-op tracers must be a silent no-op.
	Emit(nil, "x", nil)
	Emit(Nop(), "x", nil)
}

func TestJSONLValidLines(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	for i := 0; i < 5; i++ {
		Emit(j, "bncl.round", map[string]interface{}{"round": i})
	}
	if err := j.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var obj map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", n, err)
		}
		if obj["event"] != "bncl.round" || obj["round"] != float64(n) {
			t.Errorf("line %d: got %v", n, obj)
		}
		n++
	}
	if n != 5 {
		t.Errorf("got %d lines, want 5", n)
	}
}

type failWriter struct{ calls int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.calls++
	return 0, errors.New("disk full")
}

func TestJSONLStickyError(t *testing.T) {
	w := &failWriter{}
	j := NewJSONL(w)
	Emit(j, "a", nil)
	Emit(j, "b", nil)
	if err := j.Err(); err == nil {
		t.Fatal("expected a write error")
	}
	if w.calls != 1 {
		t.Errorf("writer called %d times after first error, want 1", w.calls)
	}
}

func TestMemorySink(t *testing.T) {
	m := NewMemory()
	Emit(m, "a", map[string]interface{}{"k": 1})
	Emit(m, "b", nil)
	Emit(m, "a", map[string]interface{}{"k": 2})
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	as := m.ByName("a")
	if len(as) != 2 {
		t.Fatalf("ByName(a) = %d events, want 2", len(as))
	}
	if v, _ := as[1].Float("k"); v != 2 {
		t.Errorf("events out of order: %v", as)
	}
	m.Reset()
	if m.Len() != 0 {
		t.Errorf("Len after Reset = %d", m.Len())
	}
}

func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog(&buf)
	Emit(l, "bncl.phase", map[string]interface{}{"phase": "bp", "dur_ms": 1.25})
	line := buf.String()
	if !strings.Contains(line, "bncl.phase") ||
		!strings.Contains(line, "phase=bp") ||
		!strings.Contains(line, "dur_ms=1.25") {
		t.Errorf("log line missing content: %q", line)
	}
}

func TestMultiCollapsesAndFansOut(t *testing.T) {
	if Enabled(Multi()) {
		t.Error("empty Multi should collapse to Nop")
	}
	if Enabled(Multi(nil, Nop())) {
		t.Error("Multi of disabled tracers should collapse to Nop")
	}
	m := NewMemory()
	if Multi(nil, m, Nop()) != Tracer(m) {
		t.Error("Multi with one live tracer should return it directly")
	}
	m2 := NewMemory()
	fan := Multi(m, m2)
	Emit(fan, "x", nil)
	if m.Len() != 1 || m2.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", m.Len(), m2.Len())
	}
}

func TestSinksConcurrent(t *testing.T) {
	var buf bytes.Buffer
	m := NewMemory()
	fan := Multi(m, NewJSONL(&buf))
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Emit(fan, "trial", map[string]interface{}{
					"trial": fmt.Sprintf("%d-%d", w, i),
				})
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != workers*per {
		t.Errorf("memory recorded %d events, want %d", m.Len(), workers*per)
	}
	if got := bytes.Count(buf.Bytes(), []byte{'\n'}); got != workers*per {
		t.Errorf("jsonl wrote %d lines, want %d", got, workers*per)
	}
}
