package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Spans give the flat event stream a hierarchy: StartSpan emits a
// "<name>.start" event carrying a fresh span ID (and the parent's ID when the
// tracer is span-scoped), and End emits the matching "<name>.done" event with
// the span's wall-clock duration. Every event emitted through a span's
// Tracer is tagged with the span's ID as "parent_id", so one JSONL stream (or
// one /events subscriber) can reconstruct the full sweep → cell → trial →
// run → round tree without any out-of-band state.
//
// The zero-cost rule of the package holds: StartSpan on a nil or no-op
// tracer returns a nil *Span, and every Span method is nil-safe, so call
// sites need no tracing guards of their own.

// spanSeq is the process-wide span ID source. IDs only need to be unique
// within one trace stream; a monotonic counter keeps them short, readable,
// and deterministic in tests.
var spanSeq atomic.Uint64

// nextSpanID returns a fresh short hex span ID.
func nextSpanID() string { return fmt.Sprintf("%08x", spanSeq.Add(1)) }

// Span is one in-flight traced operation. Create with StartSpan, finish with
// End / EndWith / EndAs (exactly one of them; later calls are no-ops). Safe
// for concurrent use, though typical spans live on one goroutine.
type Span struct {
	sink   Tracer // where events go (the tracer passed to StartSpan)
	name   string
	id     string
	parent string
	start  time.Time

	mu     sync.Mutex
	fields map[string]interface{} // start fields, replayed into the end event
	ended  bool
}

// StartSpan opens a span named name and emits its "<name>.start" event with
// the given fields plus "span_id" (and "parent_id" when tr is a span-scoped
// tracer obtained from an enclosing Span.Tracer or Span.Wrap). fields is
// owned by the span after the call. A nil or no-op tracer returns nil, which
// every Span method tolerates.
func StartSpan(tr Tracer, name string, fields map[string]interface{}) *Span {
	if !Enabled(tr) {
		return nil
	}
	sp := &Span{
		sink:   tr,
		name:   name,
		id:     nextSpanID(),
		start:  time.Now(),
		fields: fields,
	}
	if st, ok := tr.(*spanTracer); ok {
		sp.parent = st.span.id
	}
	ev := make(map[string]interface{}, len(fields)+2)
	for k, v := range fields {
		ev[k] = v
	}
	sp.stamp(ev)
	tr.Emit(Event{Time: sp.start, Name: name + ".start", Fields: ev})
	return sp
}

// stamp adds the span identity fields to an event payload.
func (s *Span) stamp(ev map[string]interface{}) {
	ev["span_id"] = s.id
	if s.parent != "" {
		ev["parent_id"] = s.parent
	}
}

// ID returns the span's ID ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Set annotates the span: the key/value is added to the end event. It is a
// no-op after End.
func (s *Span) Set(key string, value interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.fields == nil {
		s.fields = make(map[string]interface{}, 1)
	}
	s.fields[key] = value
}

// End finishes the span, emitting "<name>.done" with the start fields, any
// Set annotations, the span/parent IDs, and "dur_ms". Only the first of
// End / EndWith / EndAs has any effect.
func (s *Span) End() { s.EndAs("done", nil) }

// EndWith is End with extra fields merged into the end event (extra wins
// over same-named start fields).
func (s *Span) EndWith(extra map[string]interface{}) { s.EndAs("done", extra) }

// EndAs finishes the span under an alternative outcome suffix — e.g.
// EndAs("canceled", ...) emits "<name>.canceled" — so one span can resolve
// into distinct terminal events while keeping the start/end pairing.
func (s *Span) EndAs(outcome string, extra map[string]interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	fields := s.fields
	s.fields = nil
	s.mu.Unlock()

	now := time.Now()
	ev := make(map[string]interface{}, len(fields)+len(extra)+3)
	for k, v := range fields {
		ev[k] = v
	}
	for k, v := range extra {
		ev[k] = v
	}
	s.stamp(ev)
	ev["dur_ms"] = float64(now.Sub(s.start).Nanoseconds()) / 1e6
	s.sink.Emit(Event{Time: now, Name: s.name + "." + outcome, Fields: ev})
}

// Tracer returns a tracer that forwards to the span's sink, tagging every
// event that does not already carry span identity with this span's ID as
// "parent_id". Child spans started on the returned tracer inherit this span
// as their parent. A nil span returns the no-op tracer.
func (s *Span) Tracer() Tracer {
	if s == nil {
		return Nop()
	}
	return &spanTracer{span: s, sink: s.sink}
}

// Wrap scopes an arbitrary tracer to this span: events emitted through the
// result are tagged with this span as parent, and spans started on it become
// children — even when tr is a different sink than the span's own (the sweep
// engine journals cell spans but hands trial events to the caller's tracer
// only). A nil span or a disabled tracer returns tr unchanged.
func (s *Span) Wrap(tr Tracer) Tracer {
	if s == nil || !Enabled(tr) {
		return tr
	}
	return &spanTracer{span: s, sink: tr}
}

// spanTracer is a Tracer bound to an enclosing span.
type spanTracer struct {
	span *Span
	sink Tracer
}

// Enabled implements Tracer.
func (t *spanTracer) Enabled() bool { return Enabled(t.sink) }

// Emit implements Tracer: plain events gain "parent_id"; events that already
// carry span identity (span starts/ends, pre-tagged payloads) pass through.
func (t *spanTracer) Emit(e Event) {
	if e.Fields == nil {
		e.Fields = make(map[string]interface{}, 1)
	}
	if _, ok := e.Fields["span_id"]; !ok {
		if _, ok := e.Fields["parent_id"]; !ok {
			e.Fields["parent_id"] = t.span.id
		}
	}
	t.sink.Emit(e)
}
