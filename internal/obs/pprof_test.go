package obs

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

func TestCPUAndHeapProfiles(t *testing.T) {
	dir := t.TempDir()

	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
}

func TestStartPprofServer(t *testing.T) {
	bound, shutdown, err := StartPprofServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartPprofServer: %v", err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + bound + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof index: status %d, %d bytes", resp.StatusCode, len(body))
	}
}
