// Package obs is the zero-dependency observability layer of the repository:
// structured trace events with span-scoped hierarchy (span.go), a lightweight
// metrics registry with Prometheus-text and JSON exposition (registry.go), a
// bounded broadcast sink plus runtime sampler and HTTP ops server for live
// observation (broadcast.go, runtime.go, server.go), and CPU/heap/pprof
// profiling helpers (pprof.go).
//
// The design rule is that observability must cost nothing when unused: the
// default tracer is a no-op whose Enabled check is a single virtual call,
// instrumented hot paths gate all event construction behind it, and StartSpan
// on a disabled tracer returns a nil-safe no-op span. Sinks that do record
// (JSONL, Memory, Log, Broadcast) are safe for concurrent use, so one tracer
// can be shared across parallel Monte-Carlo trial workers.
//
// Event schema: every event is one flat JSON object with the reserved keys
// "t" (RFC3339Nano wall time) and "event" (the event name); all remaining
// keys are event-specific fields. Long-running operations are spans: a
// "<name>.start" event opens the span and a "<name>.done" event (or
// "<name>.canceled" / "<name>.error" on abnormal exit) closes it with the
// start fields replayed plus "dur_ms". Span events carry "span_id" (and
// "parent_id" under an enclosing span); plain events emitted inside a span
// carry the span's ID as "parent_id", so one stream reconstructs the full
// sweep → cell → trial → run tree. The events the pipeline emits today:
//
//	bncl.round        one BNCL belief-propagation round: round, residual_mean,
//	                  residual_max, nodes, done, msgs, bytes, dur_ms, and
//	                  ess_mean (particle mode). Emitted live as rounds finish.
//	bncl.phase        one protocol phase: phase (hopflood|bp|refine), rounds,
//	                  msgs, bytes, dur_ms.
//	bncl.run.*        span of one full BNCL solve. start: alg, nodes, workers.
//	                  done: + rounds, msgs, bytes, dur_ms. canceled/error:
//	                  + rounds, err.
//	algorithm         one Localize call of any (wrapped) algorithm: alg,
//	                  dur_ms, rounds, msgs, bytes, ok.
//	baseline.phase    one phase of an instrumented baseline: alg, phase, dur_ms.
//	trial.*           span of one Monte-Carlo trial. start: trial, alg.
//	                  done: + mean_err, localized, unknowns, msgs, bytes,
//	                  rounds, dur_ms. error: + err.
//	sweep.*           span of one sweep. start: name, cells, workers, resume,
//	                  engine_version. done: + executed, cached, dur_ms.
//	                  canceled/error on abnormal exit.
//	sweep.cell.*      span of one grid cell. start: cell, alg, key, trials.
//	                  done: + cached, mean_err, rmse, coverage, msgs, bytes,
//	                  dur_ms. error: + err.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// Event is one structured trace record.
type Event struct {
	// Time is the wall-clock emission time.
	Time time.Time
	// Name identifies the event kind (see the package schema).
	Name string
	// Fields carries the event payload. Values should be JSON-encodable
	// scalars (numbers, strings, bools).
	Fields map[string]interface{}
}

// MarshalJSON flattens the event into one object: {"t":..., "event":..., f...}.
// The reserved keys win over same-named fields. Non-finite floats (which
// encoding/json rejects) are stringified so one odd value cannot poison a
// trace stream.
func (e Event) MarshalJSON() ([]byte, error) {
	flat := make(map[string]interface{}, len(e.Fields)+2)
	for k, v := range e.Fields {
		if f, ok := v.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
			flat[k] = fmt.Sprint(f)
			continue
		}
		flat[k] = v
	}
	flat["t"] = e.Time.Format(time.RFC3339Nano)
	flat["event"] = e.Name
	return json.Marshal(flat)
}

// Float returns the named field as a float64 (handling the numeric types the
// pipeline emits), or ok=false when absent or non-numeric.
func (e Event) Float(key string) (float64, bool) {
	switch v := e.Fields[key].(type) {
	case float64:
		return v, true
	case float32:
		return float64(v), true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	default:
		return 0, false
	}
}

// Tracer consumes trace events. Implementations must be safe for concurrent
// Emit calls; Enabled lets hot paths skip event construction entirely.
type Tracer interface {
	// Enabled reports whether Emit does anything. Instrumented code must
	// check it before building an Event.
	Enabled() bool
	// Emit records one event.
	Emit(e Event)
}

// nop is the default tracer: never enabled, never records.
type nop struct{}

func (nop) Enabled() bool { return false }
func (nop) Emit(Event)    {}

// Nop returns the no-op tracer.
func Nop() Tracer { return nop{} }

// Enabled reports whether tr is a non-nil tracer that records. It is the
// nil-tolerant gate instrumented code calls on its hot path.
func Enabled(tr Tracer) bool { return tr != nil && tr.Enabled() }

// Emit timestamps and emits one event if the tracer records. fields is owned
// by the tracer after the call.
func Emit(tr Tracer, name string, fields map[string]interface{}) {
	if !Enabled(tr) {
		return
	}
	tr.Emit(Event{Time: time.Now(), Name: name, Fields: fields})
}

// sortedFieldKeys returns the field names in deterministic order (for the
// human-readable Log sink).
func sortedFieldKeys(fields map[string]interface{}) []string {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
