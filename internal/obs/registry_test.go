package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // negative deltas ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %g, want 3.5", got)
	}
	if r.Counter("x") != c {
		t.Error("Counter is not get-or-create")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("Value = %g, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(4)
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Errorf("Value = %g, want -2.5", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{1, 2, 1, 1} // (-inf,1], (1,10], (10,100], +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 560.5 {
		t.Errorf("count=%d sum=%g, want 5, 560.5", s.Count, s.Sum)
	}
	if got := h.Mean(); got != 560.5/5 {
		t.Errorf("Mean = %g", got)
	}
	// Second lookup ignores the (different) bucket argument.
	if r.Histogram("h", []float64{7}) != h {
		t.Error("Histogram is not get-or-create")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("wsnloc_messages_total").Add(12)
	r.Gauge("wsnloc_bncl_ess_last").Set(88.5)
	h := r.Histogram("wsnloc_trial_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE wsnloc_messages_total counter",
		"wsnloc_messages_total 12",
		"# TYPE wsnloc_bncl_ess_last gauge",
		"wsnloc_bncl_ess_last 88.5",
		"# TYPE wsnloc_trial_seconds histogram",
		`wsnloc_trial_seconds_bucket{le="1"} 1`,
		`wsnloc_trial_seconds_bucket{le="10"} 2`, // cumulative
		`wsnloc_trial_seconds_bucket{le="+Inf"} 3`,
		"wsnloc_trial_seconds_sum 55.5",
		"wsnloc_trial_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(3)
	r.Histogram("h", []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got struct {
		Counters   map[string]float64      `json:"counters"`
		Gauges     map[string]float64      `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.Counters["c"] != 2 || got.Gauges["g"] != 3 {
		t.Errorf("values wrong: %+v", got)
	}
	if h := got.Histograms["h"]; h.Count != 1 || h.Sum != 0.5 {
		t.Errorf("histogram wrong: %+v", got.Histograms)
	}
}

func TestMetricsSink(t *testing.T) {
	reg := NewRegistry()
	s := NewMetricsSink(reg)
	now := time.Now()
	emit := func(name string, fields map[string]interface{}) {
		s.Emit(Event{Time: now, Name: name, Fields: fields})
	}

	emit("bncl.round", map[string]interface{}{"residual_mean": 0.04, "ess_mean": 120.0})
	emit("bncl.round", map[string]interface{}{"residual_mean": 0.01})
	emit("bncl.phase", map[string]interface{}{"phase": "bp", "dur_ms": 2.0})
	emit("bncl.conv", map[string]interface{}{"path": "auto", "sparse": 30, "fft": 12, "sparse_ms": 1.5, "fft_ms": 0.0})
	emit("bncl.prune", map[string]interface{}{"rel": 1e-3, "mass": 0.25, "cells": 40})
	emit("bncl.run.done", map[string]interface{}{"dur_ms": 5.0, "censored": 17})
	emit("algorithm", map[string]interface{}{"dur_ms": 6.0, "msgs": 100, "bytes": 2000})
	emit("trial.done", map[string]interface{}{"dur_ms": 7.0, "msgs": 100, "bytes": 2000})
	emit("something.else", nil)

	checks := map[string]float64{
		"wsnloc_bncl_bp_rounds_total":    2,
		"wsnloc_bncl_runs_total":         1,
		"wsnloc_bncl_conv_sparse_total":  30,
		"wsnloc_bncl_conv_fft_total":     12,
		"wsnloc_bncl_pruned_mass_total":  0.25,
		"wsnloc_bncl_pruned_cells_total": 40,
		"wsnloc_bncl_censored_total":     17,
		"wsnloc_algorithm_runs_total":    1,
		"wsnloc_trials_total":            1,
		"wsnloc_events_other_total":      1,
		"wsnloc_messages_total":          100, // only the algorithm event feeds traffic
		"wsnloc_bytes_total":             2000,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if got := reg.Gauge("wsnloc_bncl_ess_last").Value(); got != 120 {
		t.Errorf("ess gauge = %g, want 120", got)
	}
	if got := reg.Histogram("wsnloc_bncl_round_residual", nil).Count(); got != 2 {
		t.Errorf("residual histogram count = %d, want 2", got)
	}
	if got := reg.Histogram("wsnloc_bncl_phase_seconds_bp", nil).Count(); got != 1 {
		t.Errorf("phase histogram count = %d, want 1", got)
	}
	// Per-path conv timing: only paths with nonzero wall time observe.
	if got := reg.Histogram("wsnloc_bncl_conv_seconds_sparse", nil).Count(); got != 1 {
		t.Errorf("sparse conv histogram count = %d, want 1", got)
	}
	// The fft path saw zero wall time, so its histogram was never created;
	// look it up with valid buckets (a nil-bucket create now panics).
	if got := reg.Histogram("wsnloc_bncl_conv_seconds_fft", DurationBuckets()).Count(); got != 0 {
		t.Errorf("fft conv histogram count = %d, want 0 (zero duration)", got)
	}
}

func TestHistogramBucketValidation(t *testing.T) {
	cases := []struct {
		name    string
		bounds  []float64
		wantErr string
	}{
		{"empty", nil, "non-empty"},
		{"nan", []float64{1, nan(), 3}, "not finite"},
		{"inf", []float64{1, inf()}, "not finite"},
		{"unsorted", []float64{1, 3, 2}, "strictly ascending"},
		{"duplicate", []float64{1, 2, 2}, "strictly ascending"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateBuckets(tc.bounds)
			if err == nil {
				t.Fatalf("ValidateBuckets(%v) = nil, want error containing %q", tc.bounds, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ValidateBuckets(%v) = %q, want substring %q", tc.bounds, err, tc.wantErr)
			}
			// Registry.Histogram surfaces the same diagnostic as a panic.
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Registry.Histogram(%v) did not panic", tc.bounds)
				}
				msg, _ := r.(string)
				if !strings.Contains(msg, tc.wantErr) || !strings.Contains(msg, "bad") {
					t.Errorf("panic = %q, want substrings %q and histogram name", msg, tc.wantErr)
				}
			}()
			NewRegistry().Histogram("bad", tc.bounds)
		})
	}
	if err := ValidateBuckets([]float64{0.1, 1, 10}); err != nil {
		t.Errorf("ValidateBuckets(valid) = %v, want nil", err)
	}
	for _, bs := range [][]float64{DurationBuckets(), ResidualBuckets(), GCPauseBuckets()} {
		if err := ValidateBuckets(bs); err != nil {
			t.Errorf("stock bucket set %v rejected: %v", bs, err)
		}
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }
