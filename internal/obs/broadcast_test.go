package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBroadcastDeliversToSubscribers(t *testing.T) {
	b := NewBroadcast(8)
	if !b.Enabled() {
		t.Fatal("Broadcast must always be enabled")
	}
	s1 := b.Subscribe()
	s2 := b.Subscribe()
	defer s1.Close()
	defer s2.Close()
	if got := b.Subscribers(); got != 2 {
		t.Fatalf("Subscribers = %d, want 2", got)
	}

	for i := 0; i < 3; i++ {
		b.Emit(Event{Name: "e", Fields: map[string]interface{}{"i": i}})
	}
	for _, s := range []*Subscription{s1, s2} {
		for i := 0; i < 3; i++ {
			select {
			case e := <-s.Events():
				if e.Fields["i"] != i {
					t.Errorf("event %d out of order: %v", i, e.Fields)
				}
			case <-time.After(time.Second):
				t.Fatal("event not delivered")
			}
		}
	}
	if b.Emitted() != 3 || b.Dropped() != 0 {
		t.Errorf("emitted=%d dropped=%d, want 3, 0", b.Emitted(), b.Dropped())
	}
}

// TestBroadcastSlowSubscriberDrops pins the central guarantee: a subscriber
// that never drains loses events — counted, not delivered late — and Emit
// never blocks.
func TestBroadcastSlowSubscriberDrops(t *testing.T) {
	const depth = 4
	b := NewBroadcast(depth)
	slow := b.Subscribe() // never reads: backs up after depth events
	fast := b.Subscribe()
	defer slow.Close()

	// Emit one at a time, draining fast after each, so only slow backs up.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < depth+10; i++ {
			b.Emit(Event{Name: "e"})
			select {
			case <-fast.Events():
			case <-time.After(time.Second):
				t.Error("event lost on the fast subscriber")
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on the slow subscriber")
	}
	fast.Close()

	if got := slow.Drops(); got != 10 {
		t.Errorf("slow subscriber drops = %d, want 10", got)
	}
	if got := fast.Drops(); got != 0 {
		t.Errorf("fast subscriber drops = %d, want 0", got)
	}
	if got := b.Dropped(); got != 10 {
		t.Errorf("broadcast dropped = %d, want 10", got)
	}
}

// TestBroadcastEmitNeverBlocks emits with zero subscribers draining and
// asserts the hot path completes promptly.
func TestBroadcastEmitNeverBlocks(t *testing.T) {
	b := NewBroadcast(1)
	sub := b.Subscribe() // full after one event, never drained
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			b.Emit(Event{Name: "e"})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked with a full subscriber buffer")
	}
}

// TestBroadcastUnsubscribeDuringEmit races concurrent Emit against
// Subscribe/Close churn; under -race this is the memory-safety audit, and the
// closed-channel semantics guarantee no send-on-closed panic.
func TestBroadcastUnsubscribeDuringEmit(t *testing.T) {
	b := NewBroadcast(2)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Emit(Event{Name: "e"})
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := b.Subscribe()
				// Sometimes drain one event, sometimes close immediately.
				if i%2 == 0 {
					select {
					case <-s.Events():
					default:
					}
				}
				s.Close()
				s.Close() // double Close is safe
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := b.Subscribers(); got != 0 {
		t.Errorf("Subscribers = %d after churn, want 0", got)
	}
}

// TestBroadcastClosedChannelTerminates checks a consumer ranging over Events
// observes termination when the subscription closes.
func TestBroadcastClosedChannelTerminates(t *testing.T) {
	b := NewBroadcast(0) // default depth
	s := b.Subscribe()
	b.Emit(Event{Name: "e"})
	s.Close()
	n := 0
	for range s.Events() {
		n++
	}
	if n != 1 {
		t.Errorf("drained %d events after Close, want 1 (the buffered one)", n)
	}
	// Emit after Close must not panic or count drops against s.
	b.Emit(Event{Name: "e"})
	if got := s.Drops(); got != 0 {
		t.Errorf("closed subscription accumulated %d drops", got)
	}
}
