package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// JSONL writes one JSON object per event to an io.Writer (the trace-file
// format: greppable, jq-able, append-only). Safe for concurrent use.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONL returns a JSONL tracer over w. The caller owns w's lifetime
// (close files after the traced run finishes).
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Enabled implements Tracer.
func (j *JSONL) Enabled() bool { return true }

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	data, err := json.Marshal(e)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		j.err = err
	}
}

// Err returns the first marshal/write error, if any. Emit goes quiet after
// the first error rather than corrupting the stream.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Memory buffers events in order of arrival — the sink unit tests assert
// against. Safe for concurrent use.
type Memory struct {
	mu     sync.Mutex
	events []Event
}

// NewMemory returns an empty in-memory tracer.
func NewMemory() *Memory { return &Memory{} }

// Enabled implements Tracer.
func (m *Memory) Enabled() bool { return true }

// Emit implements Tracer.
func (m *Memory) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// ByName returns the recorded events with the given name, in order.
func (m *Memory) ByName(name string) []Event {
	var out []Event
	for _, e := range m.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the number of recorded events.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Reset discards all recorded events.
func (m *Memory) Reset() {
	m.mu.Lock()
	m.events = m.events[:0]
	m.mu.Unlock()
}

// Log renders events as human-readable lines ("name k=v k=v ...") — the
// sink behind verbose CLI flags. Safe for concurrent use.
type Log struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLog returns a line-logging tracer over w.
func NewLog(w io.Writer) *Log { return &Log{w: w} }

// Enabled implements Tracer.
func (l *Log) Enabled() bool { return true }

// Emit implements Tracer.
func (l *Log) Emit(e Event) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", e.Time.Format("15:04:05.000"), e.Name)
	for _, k := range sortedFieldKeys(e.Fields) {
		switch v := e.Fields[k].(type) {
		case float64:
			fmt.Fprintf(&b, " %s=%.4g", k, v)
		default:
			fmt.Fprintf(&b, " %s=%v", k, v)
		}
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// multi fans events out to several tracers.
type multi struct {
	tracers []Tracer
}

// Multi combines tracers; events go to every enabled one. Nil and no-op
// entries are dropped; zero live entries collapses to Nop.
func Multi(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if Enabled(t) {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return Nop()
	case 1:
		return live[0]
	}
	return &multi{tracers: live}
}

// Enabled implements Tracer.
func (m *multi) Enabled() bool { return true }

// Emit implements Tracer.
func (m *multi) Emit(e Event) {
	for _, t := range m.tracers {
		t.Emit(e)
	}
}
