package obs

import (
	"sync"
	"sync/atomic"
)

// Broadcast fans trace events out to any number of live subscribers over
// fixed-depth buffered channels. It is the bridge between the synchronous
// tracer pipeline and asynchronous consumers (the /events HTTP stream): Emit
// never blocks — a subscriber whose buffer is full loses that event and has
// its drop counter incremented — so a slow or stuck client can never stall
// the solver hot path. Safe for concurrent use.
type Broadcast struct {
	depth int

	mu   sync.RWMutex
	subs map[*Subscription]struct{}

	emitted atomic.Uint64 // events offered to subscribers
	dropped atomic.Uint64 // events lost across all subscribers
}

// DefaultBroadcastDepth is the per-subscriber channel buffer used when
// NewBroadcast is given a non-positive depth.
const DefaultBroadcastDepth = 256

// NewBroadcast returns a broadcast sink whose subscribers each buffer up to
// depth events (<= 0 uses DefaultBroadcastDepth).
func NewBroadcast(depth int) *Broadcast {
	if depth <= 0 {
		depth = DefaultBroadcastDepth
	}
	return &Broadcast{depth: depth, subs: make(map[*Subscription]struct{})}
}

// Enabled implements Tracer. A Broadcast is always enabled: it is composed
// into the tracer fan-out at startup, before any subscriber exists, and
// subscribers come and go while the run executes.
func (b *Broadcast) Enabled() bool { return true }

// Emit implements Tracer: a non-blocking send to every current subscriber.
func (b *Broadcast) Emit(e Event) {
	b.emitted.Add(1)
	b.mu.RLock()
	for s := range b.subs {
		select {
		case s.ch <- e:
		default:
			s.drops.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.RUnlock()
}

// Subscribe registers a new subscriber and returns its subscription. The
// caller must Close it when done; events emitted while the subscription's
// buffer is full are dropped (and counted), never delivered late.
func (b *Broadcast) Subscribe() *Subscription {
	s := &Subscription{b: b, ch: make(chan Event, b.depth)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// Subscribers returns the current subscriber count.
func (b *Broadcast) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Emitted returns how many events have been offered to subscribers.
func (b *Broadcast) Emitted() uint64 { return b.emitted.Load() }

// Dropped returns the total events lost across all subscribers so far.
func (b *Broadcast) Dropped() uint64 { return b.dropped.Load() }

// CloseSubscribers closes every current subscription — each consumer sees
// its channel close and ends its stream. Part of graceful shutdown: it lets
// /events readers finish cleanly instead of being severed mid-connection.
// The Broadcast stays usable; later Subscribe calls work as before.
func (b *Broadcast) CloseSubscribers() {
	b.mu.RLock()
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.RUnlock()
	// Close outside the lock: Subscription.Close takes the write lock.
	for _, s := range subs {
		s.Close()
	}
}

// Subscription is one subscriber's view of a Broadcast.
type Subscription struct {
	b     *Broadcast
	ch    chan Event
	drops atomic.Uint64
	once  sync.Once
}

// Events returns the receive channel. It is closed by Close; a closed (not
// just empty) channel tells the consumer the subscription is over.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Drops returns how many events this subscriber has lost to a full buffer.
func (s *Subscription) Drops() uint64 { return s.drops.Load() }

// Close unregisters the subscription and closes its channel. Safe to call
// more than once, and safe concurrently with Emit: the write lock waits out
// any in-flight fan-out, after which no sender can reference the channel.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.b.mu.Lock()
		delete(s.b.subs, s)
		s.b.mu.Unlock()
		close(s.ch)
	})
}
