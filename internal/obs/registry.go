package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight process-metrics registry: counters, gauges and
// fixed-bucket histograms, with Prometheus text-format and JSON exposition.
// All operations are safe for concurrent use; instrument lookups are
// get-or-create so call sites need no registration ceremony.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given upper
// bucket bounds (strictly ascending and finite; a +Inf bucket is implicit)
// on first use. Later calls ignore buckets and return the existing
// instrument. Invalid bounds are a programmer error — bucket sets are
// compile-time constants at every call site — and panic with the
// ValidateBuckets diagnostic rather than silently misbinning observations.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if err := ValidateBuckets(buckets); err != nil {
			panic(fmt.Sprintf("obs: histogram %q: %v", name, err))
		}
		h = newHistogram(buckets)
		r.histograms[name] = h
	}
	return h
}

// ValidateBuckets reports whether bounds form a usable histogram bucket set:
// non-empty, every bound finite, strictly ascending. A NaN bound would
// poison the binary search that bins observations, a duplicate creates a
// dead bucket, and an unsorted set silently misbins — all are rejected with
// a descriptive error instead.
func ValidateBuckets(bounds []float64) error {
	if len(bounds) == 0 {
		return fmt.Errorf("bucket bounds must be non-empty")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("bucket bound %d is not finite: %v", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return fmt.Errorf("bucket bounds must be strictly ascending: bound %d (%v) <= bound %d (%v)",
				i, b, i-1, bounds[i-1])
		}
	}
	return nil
}

// Counter is a monotonically increasing float64 (float so byte/energy totals
// fit the same instrument as event counts).
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored — counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (either sign) — the in-flight-count idiom.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-style buckets and
// tracks sum/count — enough to expose Prometheus-compatible histograms and
// compute coarse quantiles. Timing histograms observe seconds.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	n      uint64
}

// DurationBuckets are the default upper bounds (seconds) for wall-time
// histograms: 100µs .. ~100s, log-spaced.
func DurationBuckets() []float64 {
	return []float64{1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100}
}

// ResidualBuckets are the default upper bounds for BP convergence residuals
// (dimensionless L1 belief change, compared against Config.Epsilon).
func ResidualBuckets() []float64 {
	return []float64{0.001, 0.003, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2}
}

func newHistogram(bounds []float64) *Histogram {
	// Bounds are validated (strictly ascending) by Registry.Histogram.
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx]++
	h.sum += v
	h.n++
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // per-bucket (non-cumulative); last is +Inf
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot returns a consistent copy of the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// snapshot returns the registry contents with deterministic name order.
func (r *Registry) snapshot() (names []string, kind map[string]byte) {
	kind = make(map[string]byte)
	for n := range r.counters {
		names = append(names, n)
		kind[n] = 'c'
	}
	for n := range r.gauges {
		names = append(names, n)
		kind[n] = 'g'
	}
	for n := range r.histograms {
		names = append(names, n)
		kind[n] = 'h'
	}
	sort.Strings(names)
	return names, kind
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	names, kind := r.snapshot()
	for _, name := range names {
		var err error
		switch kind[name] {
		case 'c':
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %g\n", name, name, r.counters[name].Value())
		case 'g':
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, r.gauges[name].Value())
		case 'h':
			err = writePromHistogram(w, name, r.histograms[name].Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Counts)-1]
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
		name, cum, name, s.Sum, name, s.Count)
	return err
}

// registryJSON is the JSON exposition shape.
type registryJSON struct {
	Counters   map[string]float64      `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// WriteJSON writes the registry as one indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	out := registryJSON{}
	if len(r.counters) > 0 {
		out.Counters = make(map[string]float64, len(r.counters))
		for n, c := range r.counters {
			out.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		out.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			out.Gauges[n] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		out.Histograms = make(map[string]HistSnapshot, len(r.histograms))
		for n, h := range r.histograms {
			out.Histograms[n] = h.Snapshot()
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// MetricsSink bridges the event stream into a Registry: it aggregates the
// pipeline's known events into counters and histograms so a traced run can
// be exposed as /metrics-style data without a second instrumentation path.
type MetricsSink struct {
	reg *Registry
}

// NewMetricsSink returns a tracer that aggregates events into reg.
func NewMetricsSink(reg *Registry) *MetricsSink { return &MetricsSink{reg: reg} }

// Registry returns the sink's backing registry.
func (s *MetricsSink) Registry() *Registry { return s.reg }

// Enabled implements Tracer.
func (s *MetricsSink) Enabled() bool { return true }

// Emit implements Tracer.
func (s *MetricsSink) Emit(e Event) {
	switch e.Name {
	case "bncl.round":
		s.reg.Counter("wsnloc_bncl_bp_rounds_total").Inc()
		if v, ok := e.Float("residual_mean"); ok {
			s.reg.Histogram("wsnloc_bncl_round_residual", ResidualBuckets()).Observe(v)
		}
		if v, ok := e.Float("ess_mean"); ok {
			s.reg.Gauge("wsnloc_bncl_ess_last").Set(v)
		}
	case "bncl.phase":
		phase, _ := e.Fields["phase"].(string)
		if v, ok := e.Float("dur_ms"); ok && phase != "" {
			s.reg.Histogram("wsnloc_bncl_phase_seconds_"+phase, DurationBuckets()).Observe(v / 1e3)
		}
	case "bncl.conv":
		if v, ok := e.Float("sparse"); ok {
			s.reg.Counter("wsnloc_bncl_conv_sparse_total").Add(v)
		}
		if v, ok := e.Float("fft"); ok {
			s.reg.Counter("wsnloc_bncl_conv_fft_total").Add(v)
		}
		if v, ok := e.Float("sparse_ms"); ok && v > 0 {
			s.reg.Histogram("wsnloc_bncl_conv_seconds_sparse", DurationBuckets()).Observe(v / 1e3)
		}
		if v, ok := e.Float("fft_ms"); ok && v > 0 {
			s.reg.Histogram("wsnloc_bncl_conv_seconds_fft", DurationBuckets()).Observe(v / 1e3)
		}
	case "bncl.prune":
		if v, ok := e.Float("mass"); ok {
			s.reg.Counter("wsnloc_bncl_pruned_mass_total").Add(v)
		}
		if v, ok := e.Float("cells"); ok {
			s.reg.Counter("wsnloc_bncl_pruned_cells_total").Add(v)
		}
	case "bncl.run.done":
		s.reg.Counter("wsnloc_bncl_runs_total").Inc()
		if v, ok := e.Float("dur_ms"); ok {
			s.reg.Histogram("wsnloc_bncl_run_seconds", DurationBuckets()).Observe(v / 1e3)
		}
		if v, ok := e.Float("censored"); ok {
			s.reg.Counter("wsnloc_bncl_censored_total").Add(v)
		}
	case "algorithm":
		s.reg.Counter("wsnloc_algorithm_runs_total").Inc()
		if v, ok := e.Float("dur_ms"); ok {
			s.reg.Histogram("wsnloc_algorithm_seconds", DurationBuckets()).Observe(v / 1e3)
		}
		s.addCommon(e)
	case "trial.done":
		s.reg.Counter("wsnloc_trials_total").Inc()
		if v, ok := e.Float("dur_ms"); ok {
			s.reg.Histogram("wsnloc_trial_seconds", DurationBuckets()).Observe(v / 1e3)
		}
	default:
		s.reg.Counter("wsnloc_events_other_total").Inc()
	}
}

// addCommon folds the shared traffic fields into the traffic counters.
func (s *MetricsSink) addCommon(e Event) {
	if v, ok := e.Float("msgs"); ok {
		s.reg.Counter("wsnloc_messages_total").Add(v)
	}
	if v, ok := e.Float("bytes"); ok {
		s.reg.Counter("wsnloc_bytes_total").Add(v)
	}
}
