package obs

import (
	"runtime"
	"time"
)

// RuntimeSampler periodically folds Go runtime statistics into a Registry,
// so /metrics exposes process health (goroutines, heap, GC) next to the
// domain metrics without any external collector. One sampler owns one
// background goroutine; Stop joins it.
//
// Metrics written:
//
//	wsnloc_goroutines            gauge    runtime.NumGoroutine
//	wsnloc_heap_inuse_bytes      gauge    MemStats.HeapInuse
//	wsnloc_heap_alloc_bytes      gauge    MemStats.HeapAlloc
//	wsnloc_alloc_bytes_total     counter  cumulative allocation volume
//	wsnloc_gc_total              counter  completed GC cycles
//	wsnloc_gc_pause_seconds      histogram  individual stop-the-world pauses
type RuntimeSampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	lastTotalAlloc uint64
	lastNumGC      uint32
}

// GCPauseBuckets are the upper bounds (seconds) for the GC pause histogram:
// 10µs .. ~100ms, log-spaced.
func GCPauseBuckets() []float64 {
	return []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1}
}

// StartRuntimeSampler samples the runtime into reg every interval (<= 0 uses
// 1s) until Stop is called. The first sample is taken synchronously, so the
// registry is populated before the first scrape.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &RuntimeSampler{
		reg:      reg,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.Sample()
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Stop halts and joins the sampling goroutine after one final sample, so the
// registry reflects the end-of-run state. Must be called exactly once.
func (s *RuntimeSampler) Stop() {
	close(s.stop)
	<-s.done
	s.Sample()
}

// Sample takes one observation. It is also safe to call directly (tests, or
// a final flush before exposition).
func (s *RuntimeSampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s.reg.Gauge("wsnloc_goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("wsnloc_heap_inuse_bytes").Set(float64(ms.HeapInuse))
	s.reg.Gauge("wsnloc_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.reg.Counter("wsnloc_alloc_bytes_total").Add(float64(ms.TotalAlloc - s.lastTotalAlloc))
	s.lastTotalAlloc = ms.TotalAlloc

	if n := ms.NumGC - s.lastNumGC; n > 0 {
		s.reg.Counter("wsnloc_gc_total").Add(float64(n))
		h := s.reg.Histogram("wsnloc_gc_pause_seconds", GCPauseBuckets())
		// PauseNs is a ring of the last 256 pauses, indexed by cycle count.
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := ms.NumGC - n; i < ms.NumGC; i++ {
			h.Observe(float64(ms.PauseNs[i%uint32(len(ms.PauseNs))]) / 1e9)
		}
		s.lastNumGC = ms.NumGC
	}
}
