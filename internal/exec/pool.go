// Package exec is the shared bounded execution plane: one worker pool that
// every layer of the system — the Monte-Carlo trial fan-out of
// internal/expt, the cell scheduler of internal/sweep, and the request
// handlers of internal/serve — submits work through instead of owning its
// own goroutines.
//
// The pool has two entry points with different contracts:
//
//   - Submit is the admission edge: a FIFO queue with a hard depth limit.
//     A full queue rejects immediately with ErrQueueFull (the caller turns
//     that into backpressure — the daemon's 429), and every accepted job
//     gets a cancellation-aware handle with per-job context deadlines.
//
//   - ForEach is the fan-out edge: N homogeneous tasks bounded at `limit`
//     in flight. The calling goroutine always participates in draining the
//     task counter, pool workers are recruited opportunistically, and the
//     final wait covers only helpers that actually started running, so a
//     ForEach issued from inside a pool job (a sweep request fanning out
//     its cells) can never deadlock: if every worker is busy the caller
//     simply runs all tasks itself, inline and in index order, and walks
//     away from helpers still stuck in the queue.
//
// Neither entry point affects results: tasks are self-contained, outputs
// are merged by index, and the node-id-order / trial-order determinism
// guarantees of the layers above hold at every worker count, including
// zero recruited helpers.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

// Typed errors of the execution plane.
var (
	// ErrQueueFull reports that the admission queue is at its depth limit.
	// It is the backpressure signal: callers retry later or shed load.
	ErrQueueFull = errors.New("exec: admission queue full")
	// ErrPoolClosed reports a Submit or ForEach against a closed pool.
	ErrPoolClosed = errors.New("exec: pool closed")
)

// DefaultQueueDepth is the admission-queue bound used when Config leaves
// QueueDepth zero.
const DefaultQueueDepth = 64

// Config tunes a pool.
type Config struct {
	// Workers is the worker-goroutine count (0 = NumCPU).
	Workers int
	// QueueDepth bounds how many accepted-but-not-started jobs the
	// admission queue holds (0 = DefaultQueueDepth). Submissions beyond it
	// fail fast with ErrQueueFull.
	QueueDepth int
	// Metrics, when non-nil, receives the pool's live instruments:
	// wsnloc_exec_queue_depth and wsnloc_exec_inflight gauges, the
	// wsnloc_exec_wait_seconds admission-latency histogram, and the
	// wsnloc_exec_{jobs,rejected}_total counters. Purely observational.
	Metrics *obs.Registry
}

// Func is the unit of work a pool executes. The context carries the job's
// deadline/cancellation; the tracer (never nil, possibly no-op) is the
// job's span-scoped sink, so events emitted through it parent to the
// exec.job span.
type Func func(ctx context.Context, tr obs.Tracer) error

// Pool is a bounded shared worker pool with a FIFO admission queue.
type Pool struct {
	workers int
	queue   chan *Job
	wg      sync.WaitGroup

	// completed counts jobs the workers have finished with (ran, failed, or
	// skipped on a dead context). It is the job-sharing proof instrument:
	// the serving layer coalesces N concurrent identical requests onto one
	// Job handle — Done and Wait support any number of waiters — and this
	// counter is how a test asserts the pool really executed once.
	completed atomic.Uint64

	mu     sync.RWMutex
	closed bool

	m *poolMetrics
}

// poolMetrics is the nil-safe instrumentation facade over Config.Metrics.
type poolMetrics struct {
	queueDepth *obs.Gauge
	inflight   *obs.Gauge
	wait       *obs.Histogram
	jobs       *obs.Counter
	rejected   *obs.Counter
}

func newPoolMetrics(reg *obs.Registry) *poolMetrics {
	if reg == nil {
		return nil
	}
	return &poolMetrics{
		queueDepth: reg.Gauge("wsnloc_exec_queue_depth"),
		inflight:   reg.Gauge("wsnloc_exec_inflight"),
		wait:       reg.Histogram("wsnloc_exec_wait_seconds", obs.DurationBuckets()),
		jobs:       reg.Counter("wsnloc_exec_jobs_total"),
		rejected:   reg.Counter("wsnloc_exec_rejected_total"),
	}
}

func (m *poolMetrics) enqueued() {
	if m != nil {
		m.queueDepth.Add(1)
	}
}

func (m *poolMetrics) dequeued(wait time.Duration) {
	if m != nil {
		m.queueDepth.Add(-1)
		m.wait.Observe(wait.Seconds())
	}
}

func (m *poolMetrics) started() {
	if m != nil {
		m.inflight.Add(1)
	}
}

func (m *poolMetrics) finished() {
	if m != nil {
		m.inflight.Add(-1)
		m.jobs.Inc()
	}
}

func (m *poolMetrics) reject() {
	if m != nil {
		m.rejected.Inc()
	}
}

// NewPool starts a pool. Invalid knobs wrap wsnerr.ErrBadConfig.
func NewPool(cfg Config) (*Pool, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("exec: %w: workers must be >= 0, got %d", wsnerr.ErrBadConfig, cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("exec: %w: queue depth must be >= 0, got %d", wsnerr.ErrBadConfig, cfg.QueueDepth)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	p := &Pool{
		workers: workers,
		queue:   make(chan *Job, depth),
		m:       newPoolMetrics(cfg.Metrics),
	}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

// Workers returns the worker-goroutine count.
func (p *Pool) Workers() int { return p.workers }

// QueueDepth returns the admission-queue bound.
func (p *Pool) QueueDepth() int { return cap(p.queue) }

// worker drains the admission queue until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.m.dequeued(time.Since(j.enqueued))
		j.run()
		p.completed.Add(1)
	}
}

// CompletedJobs reports how many jobs the pool's workers have finished
// with since construction (including jobs skipped because their context
// died while queued).
func (p *Pool) CompletedJobs() uint64 { return p.completed.Load() }

// Submit admits one job to the FIFO queue. It never blocks: a queue at its
// depth limit returns ErrQueueFull immediately (the backpressure signal),
// and a closed pool returns ErrPoolClosed. ctx bounds the job itself — a
// job canceled while still queued completes with ctx's error without
// running. tr (may be nil) parents the job's exec.job span; fn receives the
// span-scoped tracer so deeper events thread under it.
func (p *Pool) Submit(ctx context.Context, name string, tr obs.Tracer, fn Func) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &Job{
		name:     name,
		fn:       fn,
		ctx:      ctx,
		tr:       tr,
		m:        p.m,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	// The read lock holds Close's channel close at bay while we decide and
	// (maybe) send, so a send on a closed channel is impossible.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		p.m.reject()
		return nil, ErrPoolClosed
	}
	select {
	case p.queue <- j:
		p.m.enqueued()
		return j, nil
	default:
		p.m.reject()
		return nil, ErrQueueFull
	}
}

// Close stops admission: subsequent Submits fail with ErrPoolClosed, while
// jobs already accepted — queued or in flight — still run to completion
// (the drain semantics a graceful shutdown wants). Safe to call more than
// once. Use Drain to wait for the workers to finish.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.queue)
}

// Drain blocks until every accepted job has finished and the workers have
// exited, or ctx expires (returning its error with work still in flight).
// Call Close first; Drain on an open pool waits forever.
func (p *Pool) Drain(ctx context.Context) error {
	idle := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ForEach runs fn(ctx, i) for every i in [0, n), at most `limit` tasks in
// flight (limit <= 0 uses the pool's worker count). The caller's goroutine
// always participates — up to limit-1 pool workers are recruited
// best-effort, and a saturated or closed pool just means the caller runs
// everything itself — so nested fan-outs (a pool job issuing its own
// ForEach) cannot deadlock. Tasks are handed out in index order; an
// erroring task does not stop the others (matching the run-all semantics
// of the trial and cell schedulers). Returns ctx's error if canceled, else
// the lowest-index task error, else nil.
//
// The final wait covers only helpers that actually began executing. A
// helper still sitting in the admission queue when the caller's own drain
// finishes is abandoned, not awaited: when every worker is itself blocked
// inside a ForEach, queued helpers can never be dequeued, and blocking on
// their Done would wedge the whole pool (each worker waiting on work only
// another blocked worker could run). Abandonment is safe because a helper
// that starts after the caller's drain has returned finds the task counter
// already exhausted and claims no index — it touches nothing and exits.
func (p *Pool) ForEach(ctx context.Context, n, limit int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if limit <= 0 {
		limit = p.workers
	}
	if limit > n {
		limit = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	drain := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			// A cancellation stops work being started, not the accounting:
			// every remaining index records ctx's error, mirroring the old
			// per-layer pools.
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = fn(ctx, i)
		}
	}
	// Each helper flips its started flag before claiming any index, so
	// started == false after the caller's drain proves the helper cannot
	// claim one later (the counter is exhausted by then) and its Done need
	// not — must not — be awaited. started == true means the helper may
	// hold claimed indexes, and waiting on its Done is what publishes those
	// errs[i] writes to the caller.
	type helper struct {
		job     *Job
		started atomic.Bool
	}
	helpers := make([]*helper, 0, limit-1)
	for len(helpers) < limit-1 {
		h := &helper{}
		j, err := p.Submit(ctx, "exec.scatter", nil, func(context.Context, obs.Tracer) error {
			h.started.Store(true)
			drain()
			return nil
		})
		if err != nil {
			break // full or closed: less parallelism, never less progress
		}
		h.job = j
		helpers = append(helpers, h)
	}
	drain()
	for _, h := range helpers {
		if h.started.Load() {
			<-h.job.Done()
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Job is the handle of one submitted unit of work.
type Job struct {
	name     string
	fn       Func
	ctx      context.Context
	tr       obs.Tracer
	m        *poolMetrics
	enqueued time.Time

	done chan struct{}
	err  error
}

// run executes the job on the calling worker goroutine.
func (j *Job) run() {
	j.m.started()
	defer j.m.finished()
	defer close(j.done)
	// A job whose context died while it sat in the queue completes with
	// that error without running: the submitter's deadline still holds.
	if err := j.ctx.Err(); err != nil {
		j.err = err
		return
	}
	sp := obs.StartSpan(j.tr, "exec.job", map[string]interface{}{
		"job":     j.name,
		"wait_ms": time.Since(j.enqueued).Seconds() * 1e3,
	})
	err := j.invoke(sp.Tracer())
	j.err = err
	switch {
	case err == nil:
		sp.End()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		sp.EndAs("canceled", map[string]interface{}{"err": err.Error()})
	default:
		sp.EndAs("error", map[string]interface{}{"err": err.Error()})
	}
}

// invoke runs fn with panic containment. Pool workers execute arbitrary
// solver and encoder code on behalf of network requests, and moving that
// work off net/http's handler goroutines forfeits the stdlib's per-request
// recover — without one here, a single panicking spec would take down the
// daemon and every in-flight job with it. The panic surfaces as the job's
// error instead (the request's 500), stack attached.
func (j *Job) invoke(tr obs.Tracer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exec: job %q panicked: %v\n%s", j.name, r, debug.Stack())
		}
	}()
	return j.fn(j.ctx, tr)
}

// Done returns a channel closed when the job has finished (ran, failed, or
// was skipped by its dead context). A Job handle is shareable: any number
// of goroutines may select on Done or block in Wait — the coalescing layer
// in internal/serve fans one job's completion out to every request riding
// it.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the job's outcome. Valid only after Done is closed.
func (j *Job) Err() error {
	select {
	case <-j.done:
		return j.err
	default:
		return fmt.Errorf("exec: job %q still running", j.name)
	}
}

// Wait blocks until the job finishes (returning its error) or ctx expires
// (returning ctx's error while the job keeps running).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		return ctx.Err()
	}
}
