package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatalf("NewPool(%+v): %v", cfg, err)
	}
	t.Cleanup(func() {
		p.Close()
		if err := p.Drain(context.Background()); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	return p
}

func TestNewPoolValidation(t *testing.T) {
	for _, cfg := range []Config{{Workers: -1}, {QueueDepth: -3}} {
		if _, err := NewPool(cfg); !errors.Is(err, wsnerr.ErrBadConfig) {
			t.Errorf("NewPool(%+v) = %v, want ErrBadConfig", cfg, err)
		}
	}
	p := newTestPool(t, Config{})
	if p.Workers() != runtime.NumCPU() {
		t.Errorf("default Workers = %d, want NumCPU %d", p.Workers(), runtime.NumCPU())
	}
	if p.QueueDepth() != DefaultQueueDepth {
		t.Errorf("default QueueDepth = %d, want %d", p.QueueDepth(), DefaultQueueDepth)
	}
}

func TestSubmitRunsJob(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2})
	var ran atomic.Bool
	j, err := p.Submit(context.Background(), "t", nil, func(ctx context.Context, tr obs.Tracer) error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !ran.Load() {
		t.Fatal("job never ran")
	}
	if err := j.Err(); err != nil {
		t.Fatalf("Err after done: %v", err)
	}
}

func TestSubmitPropagatesError(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	boom := errors.New("boom")
	j, err := p.Submit(context.Background(), "t", nil, func(context.Context, obs.Tracer) error { return boom })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := j.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
}

func TestSubmitQueueFull(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := func(context.Context, obs.Tracer) error {
		close(started)
		<-release
		return nil
	}
	// Occupy the single worker…
	if _, err := p.Submit(context.Background(), "block", nil, blocker); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started
	// …fill the depth-1 queue…
	if _, err := p.Submit(context.Background(), "queued", nil, func(context.Context, obs.Tracer) error { return nil }); err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	// …and the next admission must reject, not block.
	if _, err := p.Submit(context.Background(), "reject", nil, func(context.Context, obs.Tracer) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over depth = %v, want ErrQueueFull", err)
	}
	close(release)
}

func TestSubmitAfterCloseRejects(t *testing.T) {
	p, err := NewPool(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := p.Submit(context.Background(), "late", nil, func(context.Context, obs.Tracer) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	p, err := NewPool(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := p.Submit(context.Background(), "block", nil, func(context.Context, obs.Tracer) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Int64
	for i := 0; i < 4; i++ {
		if _, err := p.Submit(context.Background(), "queued", nil, func(context.Context, obs.Tracer) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("queued jobs run after Close = %d, want 4 (drain semantics)", got)
	}
}

func TestQueuedJobSkippedOnCancel(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := p.Submit(context.Background(), "block", nil, func(context.Context, obs.Tracer) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	j, err := p.Submit(ctx, "doomed", nil, func(context.Context, obs.Tracer) error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	if err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("canceled-in-queue job must not run")
	}
}

func TestDrainDeadline(t *testing.T) {
	p, err := NewPool(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := p.Submit(context.Background(), "slow", nil, func(context.Context, obs.Tracer) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck job = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("final Drain: %v", err)
	}
}

func TestForEachRunsAllIndicesOnce(t *testing.T) {
	for _, limit := range []int{1, 2, 4, 0} {
		p := newTestPool(t, Config{Workers: 4})
		const n = 200
		counts := make([]atomic.Int32, n)
		if err := p.ForEach(context.Background(), n, limit, func(ctx context.Context, i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("limit=%d: ForEach: %v", limit, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("limit=%d: index %d ran %d times", limit, i, c)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	p := newTestPool(t, Config{Workers: 4})
	if err := p.ForEach(context.Background(), 50, 4, func(ctx context.Context, i int) error {
		if i == 7 || i == 31 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	}); err == nil || err.Error() != "task 7 failed" {
		t.Fatalf("ForEach = %v, want lowest-index error 'task 7 failed'", err)
	}
}

func TestForEachCancellation(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.ForEach(ctx, 1000, 2, func(ctx context.Context, i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancel did not stop the fan-out (ran %d)", got)
	}
}

// TestForEachNestedNoDeadlock is the deadlock regression the
// caller-participates design exists for: every worker is occupied by a job
// that itself fans out through the same saturated pool.
func TestForEachNestedNoDeadlock(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, QueueDepth: 1})
	var total atomic.Int64
	outer := func(ctx context.Context, tr obs.Tracer) error {
		return p.ForEach(ctx, 20, 4, func(ctx context.Context, i int) error {
			total.Add(1)
			return nil
		})
	}
	jobs := make([]*Job, 0, 2)
	for i := 0; i < 2; i++ {
		// The first outer may already be recruiting helpers into the depth-1
		// queue; retry admission — the scenario under test is saturation
		// deadlock, not admission backpressure.
		var j *Job
		var err error
		for {
			j, err = p.Submit(context.Background(), "outer", nil, outer)
			if !errors.Is(err, ErrQueueFull) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		if err != nil {
			t.Fatalf("Submit outer %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	deadline := time.After(10 * time.Second)
	for _, j := range jobs {
		select {
		case <-j.Done():
			if err := j.Err(); err != nil {
				t.Fatalf("outer job: %v", err)
			}
		case <-deadline:
			t.Fatal("nested ForEach deadlocked")
		}
	}
	if got := total.Load(); got != 40 {
		t.Fatalf("nested tasks ran %d times, want 40", got)
	}
}

// TestForEachSaturatedPoolNoDeadlock is the REVIEW regression: every
// worker is occupied by a job that fans out through ForEach, and the
// admission queue is deep enough to accept every recruited helper. The
// helpers can never be dequeued — both workers are busy inside ForEach —
// so an unconditional wait on helper Done would wedge the pool forever.
// The fix waits only on helpers that actually started.
func TestForEachSaturatedPoolNoDeadlock(t *testing.T) {
	p := newTestPool(t, Config{Workers: 2, QueueDepth: 16})
	var total atomic.Int64
	outer := func(ctx context.Context, tr obs.Tracer) error {
		return p.ForEach(ctx, 4, 2, func(ctx context.Context, i int) error {
			total.Add(1)
			return nil
		})
	}
	jobs := make([]*Job, 0, 2)
	for i := 0; i < 2; i++ {
		j, err := p.Submit(context.Background(), "outer", nil, outer)
		if err != nil {
			t.Fatalf("Submit outer %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	deadline := time.After(10 * time.Second)
	for _, j := range jobs {
		select {
		case <-j.Done():
			if err := j.Err(); err != nil {
				t.Fatalf("outer job: %v", err)
			}
		case <-deadline:
			t.Fatal("saturated nested ForEach deadlocked")
		}
	}
	if got := total.Load(); got != 8 {
		t.Fatalf("nested tasks ran %d times, want 8", got)
	}
}

// TestJobPanicRecovered pins panic containment: a panicking job surfaces
// as that job's error — stack attached — and the pool keeps serving.
func TestJobPanicRecovered(t *testing.T) {
	p := newTestPool(t, Config{Workers: 1})
	j, err := p.Submit(context.Background(), "boom", nil, func(context.Context, obs.Tracer) error {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panicking job error = %v, want the panic value in it", err)
	}
	// The worker that recovered must still be alive and serving.
	j2, err := p.Submit(context.Background(), "after", nil, func(context.Context, obs.Tracer) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("job after panic: %v", err)
	}
}

func TestForEachOnClosedPoolStillCompletes(t *testing.T) {
	p, err := NewPool(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	// No helpers can be recruited, but the caller drains everything inline.
	if err := p.ForEach(context.Background(), 10, 4, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("ForEach on closed pool: %v", err)
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d of 10 tasks", ran.Load())
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := newTestPool(t, Config{Workers: 1, QueueDepth: 1, Metrics: reg})
	release := make(chan struct{})
	started := make(chan struct{})
	if _, err := p.Submit(context.Background(), "block", nil, func(context.Context, obs.Tracer) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := p.Submit(context.Background(), "q", nil, func(context.Context, obs.Tracer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(context.Background(), "r", nil, func(context.Context, obs.Tracer) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatal("expected ErrQueueFull")
	}
	if got := reg.Gauge("wsnloc_exec_queue_depth").Value(); got != 1 {
		t.Errorf("queue_depth gauge = %v, want 1", got)
	}
	if got := reg.Gauge("wsnloc_exec_inflight").Value(); got != 1 {
		t.Errorf("inflight gauge = %v, want 1", got)
	}
	if got := reg.Counter("wsnloc_exec_rejected_total").Value(); got != 1 {
		t.Errorf("rejected counter = %v, want 1", got)
	}
	close(release)
	p.Close()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("wsnloc_exec_jobs_total").Value(); got != 2 {
		t.Errorf("jobs counter = %v, want 2", got)
	}
	if got := reg.Gauge("wsnloc_exec_inflight").Value(); got != 0 {
		t.Errorf("inflight gauge after drain = %v, want 0", got)
	}
}

func TestJobSpanThreading(t *testing.T) {
	mem := obs.NewMemory()
	p := newTestPool(t, Config{Workers: 1})
	j, err := p.Submit(context.Background(), "traced", mem, func(ctx context.Context, tr obs.Tracer) error {
		tr.Emit(obs.Event{Name: "inner"})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	events := mem.Events()
	var spanID string
	for _, e := range events {
		if e.Name == "exec.job.start" {
			spanID, _ = e.Fields["span_id"].(string)
		}
	}
	if spanID == "" {
		t.Fatalf("no exec.job.start span in %v", events)
	}
	foundInner := false
	for _, e := range events {
		if e.Name == "inner" {
			foundInner = true
			if pid, _ := e.Fields["parent_id"].(string); pid != spanID {
				t.Errorf("inner event parent_id = %q, want exec.job span %q", pid, spanID)
			}
		}
	}
	if !foundInner {
		t.Fatal("inner event never reached the tracer")
	}
}

// TestSubmitCloseRace exercises concurrent Submit/Close under -race.
func TestSubmitCloseRace(t *testing.T) {
	p, err := NewPool(Config{Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j, err := p.Submit(context.Background(), "race", nil, func(context.Context, obs.Tracer) error { return nil })
				if err != nil {
					return // closed or full: both fine
				}
				<-j.Done()
			}
		}()
	}
	time.Sleep(time.Millisecond)
	p.Close()
	wg.Wait()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
