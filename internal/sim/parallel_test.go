package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// meshGraph returns a denser random deployment than lineGraph, so the worker
// pool actually has contention to get wrong.
func meshGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	region := geom.NewRect(0, 0, 100, 100)
	d, err := topology.Deploy(n, 5, topology.UniformGen{}, region, topology.AnchorsRandom, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return topology.BuildGraph(d, radio.UnitDisk{R: 25}, radio.TOAGaussian{R: 25, SigmaFrac: 0.1}, rng.New(43))
}

// chatterNode stresses the engine's ordering guarantees: every node
// broadcasts for a few rounds and folds its inbox — including message ORDER —
// into a running digest. Any scheduling-dependent delivery order, loss/jitter
// RNG draw, or stats accumulation shows up as a digest or Stats mismatch
// across worker counts.
type chatterNode struct {
	id     int
	rounds int
	digest uint64
	recvd  int
}

func (c *chatterNode) Init(ctx *Context) {
	ctx.Broadcast("chatter", c.id+1, c.id)
}

func (c *chatterNode) Round(ctx *Context, round int, inbox []Message) {
	for _, m := range inbox {
		c.digest = c.digest*1099511628211 + uint64(m.From*31+m.Bytes)
		c.recvd++
	}
	if round < c.rounds {
		ctx.Broadcast("chatter", c.id%7+1, round)
	}
}

func (c *chatterNode) Done() bool { return true }

// runChatter executes a fresh chatter network and returns its stats and
// per-node digests.
func runChatter(t *testing.T, g *topology.Graph, workers int) (Stats, []uint64) {
	t.Helper()
	nodes := make([]Node, g.N)
	progs := make([]*chatterNode, g.N)
	for i := range nodes {
		progs[i] = &chatterNode{id: i, rounds: 8}
		nodes[i] = progs[i]
	}
	net, err := NewNetwork(g, nodes, Config{
		Workers:     workers,
		Loss:        0.2,
		DelayJitter: 0.15,
		Energy:      DefaultEnergy(),
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(14)
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]uint64, g.N)
	for i, p := range progs {
		digests[i] = p.digest
	}
	return stats, digests
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	g := meshGraph(t, 60)
	wantStats, wantDigests := runChatter(t, g, 1)
	if wantStats.Dropped == 0 || wantStats.Delayed == 0 {
		t.Fatalf("test scenario exercises no loss/jitter: %+v", wantStats)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		stats, digests := runChatter(t, g, workers)
		if !reflect.DeepEqual(stats, wantStats) {
			t.Errorf("workers=%d: stats diverged:\n got %+v\nwant %+v", workers, stats, wantStats)
		}
		if !reflect.DeepEqual(digests, wantDigests) {
			t.Errorf("workers=%d: per-node inbox digests diverged", workers)
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("ResolveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := ResolveWorkers(8, 3); got != 3 {
		t.Errorf("ResolveWorkers(8, 3) = %d, want 3", got)
	}
	if got := ResolveWorkers(1, 100); got != 1 {
		t.Errorf("ResolveWorkers(1, 100) = %d, want 1", got)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &floodNode{id: i, seed: i == 0}
	}
	if _, err := NewNetwork(g, nodes, Config{Workers: -1}); err == nil {
		t.Fatal("NewNetwork accepted negative Workers")
	}
}

// heavyNode burns CPU each round so BenchmarkNetworkRunSim measures the
// engine's parallel speedup rather than scheduling overhead.
type heavyNode struct {
	id  int
	out float64
}

func (h *heavyNode) Init(ctx *Context) { ctx.Broadcast("w", 4, nil) }

func (h *heavyNode) Round(ctx *Context, round int, inbox []Message) {
	s := 0.0
	for i := 0; i < 20000; i++ {
		s += mathx.NormalPDF(float64(i%100), 50, 10+float64(h.id%5))
	}
	h.out = s
	ctx.Broadcast("w", 4, nil)
}

func (h *heavyNode) Done() bool { return false }

func BenchmarkNetworkRunSim(b *testing.B) {
	region := geom.NewRect(0, 0, 100, 100)
	d, err := topology.Deploy(120, 5, topology.UniformGen{}, region, topology.AnchorsRandom, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	g := topology.BuildGraph(d, radio.UnitDisk{R: 20}, radio.TOAGaussian{R: 20, SigmaFrac: 0.1}, rng.New(2))
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nodes := make([]Node, g.N)
				for j := range nodes {
					nodes[j] = &heavyNode{id: j}
				}
				net, err := NewNetwork(g, nodes, Config{Workers: workers, Seed: 3})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := net.Run(10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
