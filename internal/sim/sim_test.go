package sim

import (
	"errors"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// lineGraph returns a 5-node path graph 0-1-2-3-4.
func lineGraph(t *testing.T) *topology.Graph {
	t.Helper()
	d := &topology.Deployment{
		Pos:    make([]mathx.Vec2, 5),
		Anchor: make([]bool, 5),
		Region: geom.NewRect(0, 0, 50, 1),
	}
	for i := range d.Pos {
		d.Pos[i] = mathx.V2(float64(i)*10, 0)
	}
	return topology.BuildGraph(d, radio.UnitDisk{R: 12}, radio.TOAGaussian{R: 12, SigmaAbs: 1e-9}, rng.New(1))
}

// floodNode floods a token across the network: it records the round it first
// heard the token and rebroadcasts once.
type floodNode struct {
	id        int
	seed      bool
	heardAt   int
	forwarded bool
}

func (f *floodNode) Init(ctx *Context) {
	f.heardAt = -1
	if f.seed {
		f.heardAt = 0
		ctx.Broadcast("token", 8, nil)
		f.forwarded = true
	}
}

func (f *floodNode) Round(ctx *Context, round int, inbox []Message) {
	if f.forwarded {
		return
	}
	for _, m := range inbox {
		if m.Kind == "token" {
			f.heardAt = round
			ctx.Broadcast("token", 8, nil)
			f.forwarded = true
			return
		}
	}
}

func (f *floodNode) Done() bool { return f.forwarded }

func TestFloodPropagationTiming(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	progs := make([]*floodNode, g.N)
	for i := range nodes {
		progs[i] = &floodNode{id: i, seed: i == 0}
		nodes[i] = progs[i]
	}
	net, err := NewNetwork(g, nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	// On a path, node i hears the token at round i-1... (sent in Init counts
	// for delivery at round 0; node 1 hears at round 0, node 2 at 1, ...).
	for i := 1; i < g.N; i++ {
		if progs[i].heardAt != i-1 {
			t.Errorf("node %d heard at %d, want %d", i, progs[i].heardAt, i-1)
		}
	}
	// Each node transmits exactly once: 5 transmissions of 8 bytes.
	if stats.MessagesSent != 5 || stats.BytesSent != 40 {
		t.Errorf("sent = %d msgs / %d bytes", stats.MessagesSent, stats.BytesSent)
	}
	// Early termination well before 20 rounds.
	if stats.Rounds >= 20 {
		t.Errorf("did not terminate early: %d rounds", stats.Rounds)
	}
	for i, txs := range stats.PerNodeTx {
		if txs != 1 {
			t.Errorf("node %d tx = %d", i, txs)
		}
	}
}

func TestMessageConservation(t *testing.T) {
	// Without loss, every broadcast is delivered to exactly deg(sender)
	// receivers: sum of deliveries = sum over senders of degree.
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &floodNode{id: i, seed: i == 0}
	}
	net, _ := NewNetwork(g, nodes, Config{})
	stats, err := net.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	wantRecvd := 0
	for i := 0; i < g.N; i++ {
		wantRecvd += g.Degree(i) // every node broadcasts exactly once
	}
	if stats.MessagesRecvd+stats.Dropped != wantRecvd {
		t.Errorf("recvd %d + dropped %d != %d", stats.MessagesRecvd, stats.Dropped, wantRecvd)
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d with loss=0", stats.Dropped)
	}
}

func TestPacketLossDropsDeliveries(t *testing.T) {
	g := lineGraph(t)
	// Every node broadcasts every round for 10 rounds; with 30% loss the
	// delivery count must fall well short of the lossless count.
	mk := func() []Node {
		nodes := make([]Node, g.N)
		for i := range nodes {
			nodes[i] = &chattyNode{}
		}
		return nodes
	}
	lossless, _ := NewNetwork(g, mk(), Config{Loss: 0})
	s0, err := lossless.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	lossy, _ := NewNetwork(g, mk(), Config{Loss: 0.3, Seed: 1})
	s1, err := lossy.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Dropped == 0 {
		t.Fatal("no drops at 30% loss")
	}
	if s1.MessagesRecvd >= s0.MessagesRecvd {
		t.Errorf("lossy deliveries %d not below lossless %d", s1.MessagesRecvd, s0.MessagesRecvd)
	}
	ratio := float64(s1.MessagesRecvd) / float64(s0.MessagesRecvd)
	if ratio < 0.6 || ratio > 0.8 {
		t.Errorf("delivery ratio %v not near 0.7", ratio)
	}
}

// chattyNode broadcasts every round and is never done.
type chattyNode struct{}

func (c *chattyNode) Init(ctx *Context)                          { ctx.Broadcast("x", 10, nil) }
func (c *chattyNode) Round(ctx *Context, round int, _ []Message) { ctx.Broadcast("x", 10, nil) }
func (c *chattyNode) Done() bool                                 { return false }

func TestEnergyAccounting(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &floodNode{id: i, seed: i == 0}
	}
	net, _ := NewNetwork(g, nodes, Config{Energy: DefaultEnergy()})
	stats, err := net.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	e := DefaultEnergy()
	want := float64(stats.MessagesSent)*e.TxFixed +
		float64(stats.BytesSent)*e.TxPerByte +
		float64(stats.BytesRecvd)*e.RxPerByte
	if !mathx.AlmostEqual(stats.EnergyMicroJ, want, 1e-9) {
		t.Errorf("energy = %v, want %v", stats.EnergyMicroJ, want)
	}
}

func TestUnicastSend(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	recv := &recorderNode{}
	nodes[0] = &unicastNode{target: 1}
	nodes[1] = recv
	for i := 2; i < g.N; i++ {
		nodes[i] = &idleNode{}
	}
	net, _ := NewNetwork(g, nodes, Config{})
	if _, err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	if recv.got != 1 {
		t.Errorf("unicast deliveries = %d", recv.got)
	}
}

type unicastNode struct{ target int }

func (u *unicastNode) Init(ctx *Context)              { ctx.Send(u.target, "hi", 4, "payload") }
func (u *unicastNode) Round(*Context, int, []Message) {}
func (u *unicastNode) Done() bool                     { return true }

type recorderNode struct{ got int }

func (r *recorderNode) Init(*Context) {}
func (r *recorderNode) Round(_ *Context, _ int, inbox []Message) {
	for _, m := range inbox {
		if m.Kind == "hi" && m.Payload == "payload" {
			r.got++
		}
	}
}
func (r *recorderNode) Done() bool { return true }

type idleNode struct{}

func (idleNode) Init(*Context)                  {}
func (idleNode) Round(*Context, int, []Message) {}
func (idleNode) Done() bool                     { return true }

func TestSendToNonNeighborPanics(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	nodes[0] = &unicastNode{target: 4} // 0 and 4 are not neighbors
	for i := 1; i < g.N; i++ {
		nodes[i] = &idleNode{}
	}
	net, _ := NewNetwork(g, nodes, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-neighbor send")
		}
	}()
	net.Run(2)
}

func TestConfigValidation(t *testing.T) {
	g := lineGraph(t)
	if _, err := NewNetwork(g, make([]Node, 2), Config{}); err == nil {
		t.Error("mismatched program count accepted")
	}
	if _, err := NewNetwork(g, make([]Node, g.N), Config{Loss: 1.0}); err == nil {
		t.Error("loss=1 accepted")
	}
	if _, err := NewNetwork(g, make([]Node, g.N), Config{Loss: -0.1}); err == nil {
		t.Error("negative loss accepted")
	}
}

func TestTrafficBudget(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &chattyNode{}
	}
	net, _ := NewNetwork(g, nodes, Config{MaxBytes: 100})
	_, err := net.Run(1000)
	if !errors.Is(err, ErrTrafficBudget) {
		t.Fatalf("err = %v, want ErrTrafficBudget", err)
	}
}

func TestLossDeterministicWithSeed(t *testing.T) {
	g := lineGraph(t)
	run := func() Stats {
		nodes := make([]Node, g.N)
		for i := range nodes {
			nodes[i] = &chattyNode{}
		}
		net, _ := NewNetwork(g, nodes, Config{Loss: 0.5, Seed: 99})
		s, _ := net.Run(10)
		return s
	}
	a, b := run(), run()
	if a.MessagesRecvd != b.MessagesRecvd || a.Dropped != b.Dropped {
		t.Error("packet loss not reproducible for fixed seed")
	}
}

func TestDelayJitterSlipsDeliveries(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	progs := make([]*floodNode, g.N)
	for i := range nodes {
		progs[i] = &floodNode{id: i, seed: i == 0}
		nodes[i] = progs[i]
	}
	net, err := NewNetwork(g, nodes, Config{DelayJitter: 0.6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delayed == 0 {
		t.Fatal("no deliveries delayed at 60% jitter")
	}
	// The flood must still reach everyone — just later than the hop count.
	late := false
	for i := 1; i < g.N; i++ {
		if progs[i].heardAt < 0 {
			t.Fatalf("node %d never heard the token", i)
		}
		if progs[i].heardAt > i-1 {
			late = true
		}
	}
	if !late {
		t.Error("jitter never slowed the flood")
	}
	// No deliveries may be lost to jitter: every transmission is eventually
	// delivered to every neighbor.
	wantRecvd := 0
	for i := 0; i < g.N; i++ {
		wantRecvd += g.Degree(i)
	}
	if stats.MessagesRecvd != wantRecvd {
		t.Errorf("recvd %d, want %d (jitter must delay, not drop)", stats.MessagesRecvd, wantRecvd)
	}
}

func TestDelayJitterValidation(t *testing.T) {
	g := lineGraph(t)
	if _, err := NewNetwork(g, make([]Node, g.N), Config{DelayJitter: 1.0}); err == nil {
		t.Error("jitter=1 accepted")
	}
	if _, err := NewNetwork(g, make([]Node, g.N), Config{DelayJitter: -0.1}); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestDelayedMessagesKeepNetworkAlive(t *testing.T) {
	// A two-node exchange where the reply is what completes node 0; with
	// heavy jitter the run must not halt while a delivery is pending.
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	progs := make([]*floodNode, g.N)
	for i := range nodes {
		progs[i] = &floodNode{id: i, seed: i == 0}
		nodes[i] = progs[i]
	}
	net, _ := NewNetwork(g, nodes, Config{DelayJitter: 0.8, Seed: 9})
	if _, err := net.Run(200); err != nil {
		t.Fatal(err)
	}
	for i := range progs {
		if progs[i].heardAt < 0 {
			t.Fatalf("node %d starved by jitter", i)
		}
	}
}

// censorNode broadcasts for the first two rounds, then suppresses (and
// counts) its transmission for two more before finishing.
type censorNode struct{ rounds int }

func (c *censorNode) Init(ctx *Context) {}

func (c *censorNode) Round(ctx *Context, round int, inbox []Message) {
	c.rounds++
	switch {
	case c.rounds <= 2:
		ctx.Broadcast("chat", 8, nil)
	case c.rounds <= 4:
		ctx.Censored()
	}
}

func (c *censorNode) Done() bool { return c.rounds > 4 }

func TestCensoredTransmissionsCounted(t *testing.T) {
	g := lineGraph(t)
	for _, workers := range []int{1, 4} {
		nodes := make([]Node, g.N)
		for i := range nodes {
			nodes[i] = &censorNode{}
		}
		net, err := NewNetwork(g, nodes, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := net.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		// Every node broadcasts twice and censors twice.
		if want := 2 * g.N; stats.MessagesSent != want {
			t.Errorf("workers=%d: MessagesSent = %d, want %d", workers, stats.MessagesSent, want)
		}
		if want := 2 * g.N; stats.MessagesCensored != want {
			t.Errorf("workers=%d: MessagesCensored = %d, want %d", workers, stats.MessagesCensored, want)
		}
		// Censored transmissions must not be charged as traffic or energy.
		if stats.BytesSent != 8*2*g.N {
			t.Errorf("workers=%d: BytesSent = %d, want %d", workers, stats.BytesSent, 8*2*g.N)
		}
	}
}

func TestNeighborsCachedPerNode(t *testing.T) {
	g := lineGraph(t)
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &censorNode{}
	}
	net, err := NewNetwork(g, nodes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The cached adjacency must match the graph's, per node.
	for i := 0; i < g.N; i++ {
		want := g.Neighbors(i)
		got := net.nbrs[i]
		if len(got) != len(want) {
			t.Fatalf("node %d: cached %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("node %d: cached %v, want %v", i, got, want)
			}
		}
	}
}
