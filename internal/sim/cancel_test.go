package sim

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most want
// (the runtime needs a moment to reap exited goroutines) and returns the last
// observed count.
func waitGoroutines(want int) int {
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestRunCtxPreCanceled(t *testing.T) {
	g := meshGraph(t, 30)
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &chatterNode{id: i, rounds: 8}
	}
	net, err := NewNetwork(g, nodes, Config{Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := net.RunCtx(ctx, 20)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Rounds != 0 || stats.MessagesSent != 0 {
		t.Errorf("pre-canceled run did work: %+v", stats)
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	g := meshGraph(t, 60)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &chatterNode{id: i, rounds: 40}
	}
	const cancelAt = 3
	net, err := NewNetwork(g, nodes, Config{
		Workers: 4,
		Seed:    3,
		OnRound: func(round int, _ Stats) {
			if round == cancelAt {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := net.RunCtx(ctx, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation lands at the next between-rounds check: the round that
	// invoked OnRound has completed, nothing beyond it has started.
	if stats.Rounds != cancelAt+1 {
		t.Errorf("stopped after %d rounds, want %d", stats.Rounds, cancelAt+1)
	}
	if after := waitGoroutines(before); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	g := meshGraph(t, 30)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	nodes := make([]Node, g.N)
	for i := range nodes {
		nodes[i] = &chatterNode{id: i, rounds: 8}
	}
	net, err := NewNetwork(g, nodes, Config{Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.RunCtx(ctx, 20); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxUncanceledMatchesRun pins the bit-identical guarantee: threading
// a live context through the engine must not perturb anything.
func TestRunCtxUncanceledMatchesRun(t *testing.T) {
	g := meshGraph(t, 40)
	run := func(useCtx bool) Stats {
		nodes := make([]Node, g.N)
		for i := range nodes {
			nodes[i] = &chatterNode{id: i, rounds: 8}
		}
		net, err := NewNetwork(g, nodes, Config{Workers: 3, Loss: 0.2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var stats Stats
		if useCtx {
			stats, err = net.RunCtx(context.Background(), 14)
		} else {
			stats, err = net.Run(14)
		}
		if err != nil {
			t.Fatal(err)
		}
		stats.PerNodeTx = nil
		return stats
	}
	if a, b := run(false), run(true); !reflect.DeepEqual(a, b) {
		t.Errorf("RunCtx diverged from Run:\n got %+v\nwant %+v", b, a)
	}
}
