// Package sim is a synchronous-round message-passing simulator for sensor
// networks. It is the substrate the distributed localization protocols run
// on, standing in for the paper's (ns-2-style) simulation environment.
//
// The model is the standard one for distributed WSN algorithms: execution
// proceeds in rounds; messages sent in round t are delivered at the start of
// round t+1 to every neighbor that survives packet loss; each message is
// charged to a byte-level energy and traffic account. The simulator is
// deliberately synchronous — the localization protocols of this literature
// are round-based gossip/flood algorithms, and a synchronous schedule makes
// experiments reproducible while still counting every message a real
// deployment would send.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
	"wsnloc/internal/wsnerr"
)

// Message is one radio transmission. Localization payloads are small Go
// values; Bytes is the size the message would occupy on air and is what the
// traffic/energy accounting uses.
type Message struct {
	From    int
	To      int // receiving node (set by the engine for broadcasts)
	Kind    string
	Bytes   int
	Payload interface{}
}

// EnergyModel charges transmissions and receptions. The defaults approximate
// a CC2420-class radio at 250 kb/s: cost is reported in microjoules.
type EnergyModel struct {
	TxPerByte float64 // µJ per transmitted byte
	RxPerByte float64 // µJ per received byte
	TxFixed   float64 // µJ fixed per transmission (preamble, turnaround)
}

// DefaultEnergy returns CC2420-flavored constants.
func DefaultEnergy() EnergyModel {
	return EnergyModel{TxPerByte: 0.6, RxPerByte: 0.67, TxFixed: 10}
}

// Stats accumulates the traffic and energy a run consumed.
type Stats struct {
	Rounds        int
	MessagesSent  int     // transmissions (one broadcast = one transmission)
	MessagesRecvd int     // deliveries (one per surviving receiver)
	BytesSent     int     // transmitted bytes
	BytesRecvd    int     // delivered bytes
	Dropped       int     // deliveries lost to packet loss
	Delayed       int     // deliveries slipped by MAC/clock jitter
	// MessagesCensored counts transmissions protocols suppressed via
	// Context.Censored — broadcasts a node had ready but judged redundant
	// (message censoring). They consume no traffic or energy; the counter
	// makes the savings observable rather than inferred.
	MessagesCensored int
	EnergyMicroJ     float64 // total energy across all nodes
	PerNodeTx        []int   // transmissions per node
}

// Node is a protocol running on one sensor. Implementations receive their
// inbox each round and send through the Context. A node signals completion
// via Done; the network halts early once every node is done and no messages
// are in flight.
type Node interface {
	// Init runs before round 0 with an empty inbox.
	Init(ctx *Context)
	// Round runs once per round with the messages delivered this round.
	Round(ctx *Context, round int, inbox []Message)
	// Done reports whether this node has converged / finished.
	Done() bool
}

// Context is a node's interface to the radio during Init/Round. It is only
// valid for the duration of the callback.
type Context struct {
	net *Network
	id  int
}

// ID returns the node's identifier.
func (c *Context) ID() int { return c.id }

// NumNodes returns the network size.
func (c *Context) NumNodes() int { return c.net.graph.N }

// Neighbors returns the ids of the node's radio neighbors. The slice is the
// engine's shared adjacency cache; callers must not mutate it.
func (c *Context) Neighbors() []int { return c.net.nbrs[c.id] }

// Censored records one suppressed transmission: the node had a broadcast to
// make but censored it (e.g. its belief has been quiescent for several
// rounds). Counted in Stats.MessagesCensored; each node's count is buffered
// per round like its sends, so the tally is safe under the worker pool.
func (c *Context) Censored() { c.net.nodeCensored[c.id]++ }

// MeasuredRange returns the range measurement to a neighbor, if the link
// exists.
func (c *Context) MeasuredRange(j int) (float64, bool) {
	return c.net.graph.MeasBetween(c.id, j)
}

// Broadcast queues a message to every neighbor (one transmission).
func (c *Context) Broadcast(kind string, bytes int, payload interface{}) {
	c.net.send(c.id, -1, kind, bytes, payload)
}

// Send queues a unicast message to neighbor j. Sending to a non-neighbor is
// a protocol bug and panics.
func (c *Context) Send(j int, kind string, bytes int, payload interface{}) {
	if _, ok := c.net.graph.MeasBetween(c.id, j); !ok {
		panic(fmt.Sprintf("sim: node %d sending to non-neighbor %d", c.id, j))
	}
	c.net.send(c.id, j, kind, bytes, payload)
}

// Network wires node programs onto a topology graph and runs them.
type Network struct {
	graph   *topology.Graph
	nodes   []Node
	workers int
	loss    float64
	jitter  float64
	energy  EnergyModel
	stream  *rng.Stream
	outbox  []Message // merged messages queued this round
	// nodeOut[i] buffers node i's sends until the round's merge; each slot
	// is touched only by the goroutine running node i, so buffering is safe
	// under the worker pool without locks.
	nodeOut [][]Message
	// nodeCensored[i] buffers node i's suppressed-transmission count the
	// same way; collect folds it into stats.MessagesCensored.
	nodeCensored []int
	// nbrs caches each node's neighbor list once: deliver fans every
	// broadcast out over it, and rebuilding the slice per broadcast per
	// round is the engine's dominant allocation at large n.
	nbrs     [][]int
	ctxs     []Context
	delayed  []Message // deliveries pushed to a later round by jitter
	inboxes  [][]Message
	stats    Stats
	maxBytes int64 // safety valve against runaway protocols
	onRound  func(round int, stats Stats)
}

// Config tunes a Network.
type Config struct {
	// Workers sets how many goroutines execute node programs within a
	// round: 0 uses GOMAXPROCS, 1 reproduces the sequential engine. Within
	// a round inboxes are fixed and sends are buffered per node, then
	// merged in node-id order before delivery, so every worker count yields
	// bit-identical results (traffic stats, RNG consumption, float
	// reduction orders). Node programs must not share mutable state for
	// Workers != 1.
	Workers int
	// Loss is the independent per-delivery packet-loss probability in [0,1).
	Loss float64
	// DelayJitter is the per-delivery probability that a message slips to
	// the following round (and again, geometrically), modeling MAC backoff
	// and clock skew — the asynchrony protocols must tolerate in practice.
	// Must be in [0, 1).
	DelayJitter float64
	// Energy is the energy model; zero value disables energy accounting.
	Energy EnergyModel
	// Seed drives packet-loss and jitter randomness.
	Seed uint64
	// MaxBytes aborts the run if total traffic exceeds it (0 = 1 GiB).
	MaxBytes int64
	// OnRound, if non-nil, is invoked after every executed round with the
	// round index and a snapshot of the cumulative stats — the observability
	// hook protocol tracers use to attribute traffic and wall time to
	// rounds. The callback must not retain or mutate the stats' slices.
	OnRound func(round int, stats Stats)
}

// NewNetwork builds a network of len(nodes) programs over graph. The number
// of programs must equal graph.N.
func NewNetwork(graph *topology.Graph, nodes []Node, cfg Config) (*Network, error) {
	if len(nodes) != graph.N {
		return nil, fmt.Errorf("sim: %w: %d programs for %d nodes", wsnerr.ErrBadConfig, len(nodes), graph.N)
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return nil, fmt.Errorf("sim: %w: loss must be in [0,1)", wsnerr.ErrBadConfig)
	}
	if cfg.DelayJitter < 0 || cfg.DelayJitter >= 1 {
		return nil, fmt.Errorf("sim: %w: delay jitter must be in [0,1)", wsnerr.ErrBadConfig)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sim: %w: workers must be >= 0", wsnerr.ErrBadConfig)
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	n := &Network{
		graph:        graph,
		nodes:        nodes,
		workers:      ResolveWorkers(cfg.Workers, graph.N),
		loss:         cfg.Loss,
		jitter:       cfg.DelayJitter,
		energy:       cfg.Energy,
		stream:       rng.New(cfg.Seed ^ 0x5151_C0DE),
		nodeOut:      make([][]Message, graph.N),
		nodeCensored: make([]int, graph.N),
		nbrs:         make([][]int, graph.N),
		inboxes:      make([][]Message, graph.N),
		stats:        Stats{PerNodeTx: make([]int, graph.N)},
		maxBytes:     maxBytes,
		onRound:      cfg.OnRound,
	}
	for i := range n.nbrs {
		n.nbrs[i] = graph.Neighbors(i)
	}
	n.ctxs = make([]Context, graph.N)
	for i := range n.ctxs {
		n.ctxs[i] = Context{net: n, id: i}
	}
	return n, nil
}

// ResolveWorkers maps a Config.Workers value to the pool size actually used
// for n nodes: 0 means GOMAXPROCS, and the pool never exceeds the node count.
func ResolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Workers returns the resolved worker-pool size of the engine.
func (n *Network) Workers() int { return n.workers }

// ErrTrafficBudget is returned when a run exceeds its byte budget, which
// indicates a protocol that never quiesces.
var ErrTrafficBudget = errors.New("sim: traffic budget exceeded")

func (n *Network) send(from, to int, kind string, bytes int, payload interface{}) {
	if bytes <= 0 {
		bytes = 1
	}
	n.nodeOut[from] = append(n.nodeOut[from], Message{From: from, To: to, Kind: kind, Bytes: bytes, Payload: payload})
}

// collect merges the per-node send buffers into the global outbox in node-id
// order and applies the traffic/energy accounting. Nodes execute in id order
// on the sequential engine, so merging in id order makes the outbox — and
// with it the delivery RNG consumption and every float accumulation order —
// identical for any worker count.
func (n *Network) collect() {
	for i := range n.nodeOut {
		for _, m := range n.nodeOut[i] {
			n.outbox = append(n.outbox, m)
			n.stats.MessagesSent++
			n.stats.BytesSent += m.Bytes
			n.stats.PerNodeTx[m.From]++
			n.stats.EnergyMicroJ += n.energy.TxFixed + n.energy.TxPerByte*float64(m.Bytes)
		}
		n.nodeOut[i] = n.nodeOut[i][:0]
	}
	for i, c := range n.nodeCensored {
		if c != 0 {
			n.stats.MessagesCensored += c
			n.nodeCensored[i] = 0
		}
	}
}

// runNodes invokes fn(i) for every node, fanning out over the worker pool
// when it has more than one goroutine. The pool hands out node indices via an
// atomic counter, so scheduling is load-balanced but the set of calls — and,
// because all cross-node effects are buffered per node, the observable
// outcome — is schedule-independent.
func (n *Network) runNodes(fn func(i int)) {
	if n.workers <= 1 {
		for i := range n.nodes {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n.workers)
	for w := 0; w < n.workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(n.nodes) {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// deliver moves the outbox (and any jitter-delayed deliveries that come due)
// into next-round inboxes, applying packet loss per receiver.
func (n *Network) deliver() {
	for i := range n.inboxes {
		n.inboxes[i] = n.inboxes[i][:0]
	}
	due := n.delayed
	n.delayed = nil
	for _, m := range due {
		n.deliverOne(m, m.To)
	}
	for _, m := range n.outbox {
		if m.To >= 0 {
			n.deliverOne(m, m.To)
			continue
		}
		for _, j := range n.nbrs[m.From] {
			n.deliverOne(m, j)
		}
	}
	n.outbox = n.outbox[:0]
}

func (n *Network) deliverOne(m Message, to int) {
	if n.loss > 0 && n.stream.Bool(n.loss) {
		n.stats.Dropped++
		return
	}
	if n.jitter > 0 && n.stream.Bool(n.jitter) {
		// Slip this delivery to the next round (possibly again, making the
		// extra delay geometric).
		m.To = to
		n.delayed = append(n.delayed, m)
		n.stats.Delayed++
		return
	}
	m.To = to
	n.inboxes[to] = append(n.inboxes[to], m)
	n.stats.MessagesRecvd++
	n.stats.BytesRecvd += m.Bytes
	n.stats.EnergyMicroJ += n.energy.RxPerByte * float64(m.Bytes)
}

// Run executes up to maxRounds rounds and returns the accumulated stats. It
// halts early when every node is Done and no messages are in flight.
func (n *Network) Run(maxRounds int) (Stats, error) {
	return n.RunCtx(context.Background(), maxRounds)
}

// RunCtx is Run bounded by a context: the engine checks ctx between rounds
// — never mid-round, so cancellation cannot perturb a round's deterministic
// schedule — and returns the stats accumulated so far plus ctx.Err() within
// one round of cancellation. The per-round worker pool is fully joined
// before every check, so a canceled run leaks no goroutines. An uncanceled
// run is bit-identical to Run for every worker count.
func (n *Network) RunCtx(ctx context.Context, maxRounds int) (Stats, error) {
	if err := ctx.Err(); err != nil {
		return n.stats, err
	}
	n.runNodes(func(i int) { n.nodes[i].Init(&n.ctxs[i]) })
	n.collect()
	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return n.stats, err
		}
		n.deliver()
		inFlight := len(n.delayed) > 0
		for i := range n.inboxes {
			if len(n.inboxes[i]) > 0 {
				inFlight = true
				break
			}
		}
		allDone := true
		for _, node := range n.nodes {
			if !node.Done() {
				allDone = false
				break
			}
		}
		if allDone && !inFlight && round > 0 {
			n.stats.Rounds = round
			return n.stats, nil
		}
		r := round
		n.runNodes(func(i int) { n.nodes[i].Round(&n.ctxs[i], r, n.inboxes[i]) })
		n.collect()
		n.stats.Rounds = round + 1
		if n.onRound != nil {
			n.onRound(round, n.stats)
		}
		if int64(n.stats.BytesSent) > n.maxBytes {
			return n.stats, ErrTrafficBudget
		}
	}
	return n.stats, nil
}
