// Package wsnerr defines the sentinel errors of the public wsnloc API.
//
// Every error a user can provoke through the facade — an invalid scenario, a
// bad algorithm configuration, an unknown registry name, a degenerate
// topology — wraps exactly one of these sentinels, so callers can classify
// failures with errors.Is without string matching. The package is a leaf
// (imported by sim, core, alg, expt and the facade alike) so the sentinels
// stay shared across layers without import cycles.
//
// Internal invariant violations (mathx shape mismatches, geom grid misuse,
// bayes cross-grid operations) intentionally remain panics: they indicate
// bugs in this repository, not bad user input.
package wsnerr

import "errors"

var (
	// ErrBadScenario reports an invalid Scenario field: a negative node
	// count, an anchor fraction outside [0,1], a non-positive radio range or
	// field size, or an unknown shape/propagation/ranging/generator name.
	ErrBadScenario = errors.New("invalid scenario")

	// ErrBadConfig reports an invalid algorithm or simulator configuration:
	// negative grid resolution, particle count or round caps, a loss or
	// jitter probability outside [0,1), or a malformed worker-pool size.
	ErrBadConfig = errors.New("invalid configuration")

	// ErrBadProblem reports an inconsistent Problem handed to an algorithm:
	// missing deployment, graph or radio models, or mismatched sizes.
	ErrBadProblem = errors.New("invalid problem")

	// ErrUnknownAlgorithm reports an algorithm name absent from the registry.
	ErrUnknownAlgorithm = errors.New("unknown algorithm")

	// ErrDisconnected reports a degenerate topology on which the requested
	// quantity is undefined — e.g. a CRLB information matrix made singular by
	// unlocalizable components.
	ErrDisconnected = errors.New("degenerate or disconnected topology")

	// ErrBadSpec reports an invalid run Spec: an unsupported version, an
	// unknown algorithm name, or an invalid embedded scenario.
	ErrBadSpec = errors.New("invalid run spec")
)
