package alg

import (
	"fmt"
	"math"

	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
	"wsnloc/internal/wsnerr"
)

// Scenario describes one simulated network configuration compactly enough
// to print in a table header or ship inside a Spec. The zero value of every
// field means "use the default" (see Defaults); explicitly out-of-range
// values — a negative node count, an anchor fraction above 1 — are rejected
// by Validate with errors wrapping wsnerr.ErrBadScenario rather than
// silently clamped.
type Scenario struct {
	// N is the node count; AnchorFrac the fraction that are anchors.
	N          int     `json:"N,omitempty"`
	AnchorFrac float64 `json:"AnchorFrac,omitempty"`
	// Field is the side length of the square deployment area in meters.
	Field float64 `json:"Field,omitempty"`
	// Shape selects the deployment region: square, c, o, x, h, corridor.
	Shape string `json:"Shape,omitempty"`
	// Gen selects the generator: uniform, grid, clusters.
	Gen string `json:"Gen,omitempty"`
	// Anchors selects placement: random, perimeter, grid.
	Anchors string `json:"Anchors,omitempty"`
	// R is the nominal radio range in meters.
	R float64 `json:"R,omitempty"`
	// Prop selects propagation: unitdisk, qudg, shadow, doi.
	Prop string `json:"Prop,omitempty"`
	// DOI is the irregularity coefficient for Prop == "doi".
	DOI float64 `json:"DOI,omitempty"`
	// ShadowSigmaDB is the shadowing std for Prop == "shadow".
	ShadowSigmaDB float64 `json:"ShadowSigmaDB,omitempty"`
	// Ranger selects ranging: toa, rssi, nlos, hop.
	Ranger string `json:"Ranger,omitempty"`
	// NoiseFrac is the TOA ranging noise as a fraction of R.
	NoiseFrac float64 `json:"NoiseFrac,omitempty"`
	// NLOSProb/NLOSBias parameterize Ranger == "nlos".
	NLOSProb float64 `json:"NLOSProb,omitempty"`
	NLOSBias float64 `json:"NLOSBias,omitempty"`
	// Loss is the packet-loss probability protocols face.
	Loss float64 `json:"Loss,omitempty"`
	// Jitter is the per-delivery probability a message slips a round.
	Jitter float64 `json:"Jitter,omitempty"`
	// Seed drives all scenario randomness.
	Seed uint64 `json:"Seed,omitempty"`
}

// Defaults fills zero fields with the canonical configuration of DESIGN.md:
// 150 nodes, 100×100 m field, R = 15 m, 10% anchors, unit disk + 10% TOA.
// Negative or otherwise out-of-range values are preserved so Validate can
// reject them instead of masking a caller bug with a default.
func (s Scenario) Defaults() Scenario {
	if s.N == 0 {
		s.N = 150
	}
	if s.AnchorFrac == 0 {
		s.AnchorFrac = 0.10
	}
	if s.Field == 0 {
		s.Field = 100
	}
	if s.Shape == "" {
		s.Shape = "square"
	}
	if s.Gen == "" {
		s.Gen = "uniform"
	}
	if s.Anchors == "" {
		s.Anchors = "random"
	}
	if s.R == 0 {
		s.R = 15
	}
	if s.Prop == "" {
		s.Prop = "unitdisk"
	}
	if s.Ranger == "" {
		s.Ranger = "toa"
	}
	if s.NoiseFrac == 0 {
		s.NoiseFrac = 0.10
	}
	if s.NLOSBias <= 0 {
		s.NLOSBias = 0.3 * s.R
	}
	return s
}

// MaxNodes caps the scenario node count. Scenarios arrive over the network
// (wsnlocd), so a request must not be able to size an allocation from an
// absurd N; the ceiling is 20× the largest scale benchmark (100k nodes).
const MaxNodes = 2_000_000

// Validate checks the scenario as Build would run it (zero fields count as
// their defaults) and reports the first invalid input. Every failure wraps
// wsnerr.ErrBadScenario.
func (s Scenario) Validate() error {
	s = s.Defaults()
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("scenario: %w: %s", wsnerr.ErrBadScenario, fmt.Sprintf(format, args...))
	}
	// NaN slips through every range comparison below (NaN < 0 and NaN > 1
	// are both false), so reject non-finite fields first.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"anchor fraction", s.AnchorFrac}, {"field side length", s.Field},
		{"radio range", s.R}, {"ranging noise fraction", s.NoiseFrac},
		{"NLOS probability", s.NLOSProb}, {"NLOS bias", s.NLOSBias},
		{"packet loss", s.Loss}, {"delay jitter", s.Jitter},
		{"DOI coefficient", s.DOI}, {"shadowing sigma", s.ShadowSigmaDB},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return bad("%s must be finite, got %g", f.name, f.v)
		}
	}
	switch {
	case s.N <= 0:
		return bad("node count must be positive, got %d", s.N)
	case s.N > MaxNodes:
		return bad("node count must be <= %d, got %d", MaxNodes, s.N)
	case s.AnchorFrac < 0 || s.AnchorFrac > 1:
		return bad("anchor fraction must be in [0,1], got %g", s.AnchorFrac)
	case s.Field <= 0:
		return bad("field side length must be positive, got %g m", s.Field)
	case s.R <= 0:
		return bad("radio range must be positive, got %g m", s.R)
	case s.NoiseFrac < 0:
		return bad("ranging noise fraction must be >= 0, got %g", s.NoiseFrac)
	case s.NLOSProb < 0 || s.NLOSProb > 1:
		return bad("NLOS probability must be in [0,1], got %g", s.NLOSProb)
	case s.Loss < 0 || s.Loss >= 1:
		return bad("packet loss must be in [0,1), got %g", s.Loss)
	case s.Jitter < 0 || s.Jitter >= 1:
		return bad("delay jitter must be in [0,1), got %g", s.Jitter)
	case s.DOI < 0:
		return bad("DOI coefficient must be >= 0, got %g", s.DOI)
	case s.ShadowSigmaDB < 0:
		return bad("shadowing sigma must be >= 0, got %g dB", s.ShadowSigmaDB)
	}
	if _, err := s.Region(); err != nil {
		return err
	}
	if _, err := s.generator(); err != nil {
		return err
	}
	if _, err := s.anchorPolicy(); err != nil {
		return err
	}
	if _, err := s.Propagation(); err != nil {
		return err
	}
	if _, err := s.Ranging(); err != nil {
		return err
	}
	return nil
}

// Region materializes the deployment region.
func (s Scenario) Region() (geom.Region, error) {
	base := geom.NewRect(0, 0, s.Field, s.Field)
	switch s.Shape {
	case "square", "":
		return base, nil
	case "c":
		return geom.CShape(base), nil
	case "o":
		return geom.OShape(base), nil
	case "x":
		return geom.XShape(base), nil
	case "h":
		return geom.HShape(base), nil
	case "corridor":
		return geom.Corridor(base, 0.2), nil
	default:
		return nil, fmt.Errorf("scenario: %w: unknown shape %q", wsnerr.ErrBadScenario, s.Shape)
	}
}

// Propagation materializes the propagation model.
func (s Scenario) Propagation() (radio.Propagation, error) {
	switch s.Prop {
	case "unitdisk", "":
		return radio.UnitDisk{R: s.R}, nil
	case "qudg":
		return radio.QuasiUDG{RMin: 0.7 * s.R, RMax: 1.1 * s.R}, nil
	case "shadow":
		sig := s.ShadowSigmaDB
		if sig <= 0 {
			sig = 4
		}
		return radio.LogNormalShadow{R: s.R, Eta: 3, SigmaDB: sig}, nil
	case "doi":
		return radio.DOI{R: s.R, DOI: s.DOI}, nil
	default:
		return nil, fmt.Errorf("scenario: %w: unknown propagation %q", wsnerr.ErrBadScenario, s.Prop)
	}
}

// Ranging materializes the ranging model.
func (s Scenario) Ranging() (radio.Ranger, error) {
	switch s.Ranger {
	case "toa", "":
		return radio.TOAGaussian{R: s.R, SigmaFrac: s.NoiseFrac}, nil
	case "rssi":
		// Map the noise fraction onto a dB spread: σdB ≈ 10·η·noise/ln10·…
		// — in practice 4 dB at η=3 gives ~30% distance spread; scale
		// proportionally so NoiseFrac stays the experiment's knob.
		return radio.RSSILogNormal{Eta: 3, SigmaDB: 13 * s.NoiseFrac}, nil
	case "nlos":
		prob := s.NLOSProb
		if prob <= 0 {
			prob = 0.2
		}
		return radio.NLOS{
			Base:     radio.TOAGaussian{R: s.R, SigmaFrac: s.NoiseFrac},
			Prob:     prob,
			MeanBias: s.NLOSBias,
		}, nil
	case "hop":
		return radio.HopRanger{R: s.R}, nil
	default:
		return nil, fmt.Errorf("scenario: %w: unknown ranger %q", wsnerr.ErrBadScenario, s.Ranger)
	}
}

// generator materializes the deployment generator.
func (s Scenario) generator() (topology.Generator, error) {
	switch s.Gen {
	case "uniform", "":
		return topology.UniformGen{}, nil
	case "grid":
		return topology.GridJitterGen{Jitter: 0.2}, nil
	case "clusters":
		return topology.ClusterGen{}, nil
	default:
		return nil, fmt.Errorf("scenario: %w: unknown generator %q", wsnerr.ErrBadScenario, s.Gen)
	}
}

// anchorPolicy materializes the anchor-placement policy.
func (s Scenario) anchorPolicy() (topology.AnchorPolicy, error) {
	switch s.Anchors {
	case "random", "":
		return topology.AnchorsRandom, nil
	case "perimeter":
		return topology.AnchorsPerimeter, nil
	case "grid":
		return topology.AnchorsGrid, nil
	default:
		return 0, fmt.Errorf("scenario: %w: unknown anchor policy %q", wsnerr.ErrBadScenario, s.Anchors)
	}
}

// Build materializes the full problem: deployment, connectivity graph with
// measurements, and radio models. Deterministic in Seed. Invalid inputs
// return errors wrapping wsnerr.ErrBadScenario instead of panicking
// downstream.
func (s Scenario) Build() (*core.Problem, error) {
	s = s.Defaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	region, err := s.Region()
	if err != nil {
		return nil, err
	}
	gen, err := s.generator()
	if err != nil {
		return nil, err
	}
	policy, err := s.anchorPolicy()
	if err != nil {
		return nil, err
	}
	prop, err := s.Propagation()
	if err != nil {
		return nil, err
	}
	ranger, err := s.Ranging()
	if err != nil {
		return nil, err
	}
	stream := rng.New(s.Seed ^ 0xA11CE5)
	numAnchors := int(float64(s.N)*s.AnchorFrac + 0.5)
	dep, err := topology.Deploy(s.N, numAnchors, gen, region, policy, stream.Split(1))
	if err != nil {
		return nil, fmt.Errorf("scenario: %w: %v", wsnerr.ErrBadScenario, err)
	}
	graph := topology.BuildGraph(dep, prop, ranger, stream.Split(2))
	return &core.Problem{
		Deploy: dep,
		Graph:  graph,
		R:      s.R,
		Prop:   prop,
		Ranger: ranger,
		Loss:   s.Loss,
		Jitter: s.Jitter,
	}, nil
}
