package alg

import (
	"context"
	"encoding/json"
	"fmt"

	"wsnloc/internal/core"
	"wsnloc/internal/rng"
	"wsnloc/internal/wsnerr"
)

// SpecVersion is the current Spec schema version. Encoded specs carry it so
// future schema changes can migrate or reject old documents explicitly.
const SpecVersion = 1

// Spec fully describes one localization run as a declarative, versioned,
// JSON-round-trippable job unit: the scenario to materialize, the algorithm
// to run on it, the algorithm's tuning, and the seed of the algorithm's
// random stream. It is the unit future batch/queue/sharding layers enqueue:
// two equal Specs produce bit-identical results on any machine.
type Spec struct {
	// Version is the schema version (SpecVersion). Zero is accepted as the
	// current version so hand-written specs stay terse.
	Version int `json:"version"`
	// Scenario is the simulated network to build. Its own Seed field drives
	// topology/measurement randomness.
	Scenario Scenario `json:"scenario"`
	// Algorithm names a registered algorithm (see Names).
	Algorithm string `json:"algorithm"`
	// AlgOpts tunes the algorithm's construction.
	AlgOpts Opts `json:"alg_opts"`
	// Seed drives the algorithm's random stream.
	Seed uint64 `json:"seed"`
}

// Normalize fills defaulted fields: the current Version and a default
// algorithm name.
func (sp Spec) Normalize() Spec {
	if sp.Version == 0 {
		sp.Version = SpecVersion
	}
	if sp.Algorithm == "" {
		sp.Algorithm = "bncl-grid"
	}
	return sp
}

// Validate reports whether the spec describes a runnable job. Failures wrap
// wsnerr.ErrBadSpec (plus the more specific sentinel of the failing part).
func (sp Spec) Validate() error {
	sp = sp.Normalize()
	if sp.Version != SpecVersion {
		return fmt.Errorf("spec: %w: unsupported version %d (current %d)",
			wsnerr.ErrBadSpec, sp.Version, SpecVersion)
	}
	if err := sp.Scenario.Validate(); err != nil {
		return fmt.Errorf("spec: %w: %v", wsnerr.ErrBadSpec, err)
	}
	if err := sp.AlgOpts.Validate(); err != nil {
		return fmt.Errorf("spec: %w: %v", wsnerr.ErrBadSpec, err)
	}
	regMu.RLock()
	_, known := registry[sp.Algorithm]
	regMu.RUnlock()
	if !known {
		return fmt.Errorf("spec: %w: %v: %q (have %v)",
			wsnerr.ErrBadSpec, wsnerr.ErrUnknownAlgorithm, sp.Algorithm, Names())
	}
	return nil
}

// MarshalJSON encodes the normalized spec, so round-tripping a zero-version
// spec yields an explicit Version.
func (sp Spec) MarshalJSON() ([]byte, error) {
	type plain Spec // shed the method set to avoid recursion
	return json.Marshal(plain(sp.Normalize()))
}

// ParseSpec decodes and validates one JSON spec document.
func ParseSpec(data []byte) (Spec, error) {
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return Spec{}, fmt.Errorf("spec: %w: %v", wsnerr.ErrBadSpec, err)
	}
	sp = sp.Normalize()
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// NewAlgorithm constructs the spec's algorithm from the shared registry.
func (sp Spec) NewAlgorithm() (core.Algorithm, error) {
	sp = sp.Normalize()
	return New(sp.Algorithm, sp.AlgOpts)
}

// Run validates the spec, materializes its scenario, and executes the
// algorithm under ctx. It returns the problem alongside the result so
// callers can evaluate against ground truth. Cancellation returns ctx's
// error within one protocol round.
func (sp Spec) Run(ctx context.Context) (*core.Problem, *core.Result, error) {
	sp = sp.Normalize()
	if err := sp.Validate(); err != nil {
		return nil, nil, err
	}
	a, err := sp.NewAlgorithm()
	if err != nil {
		return nil, nil, err
	}
	p, err := sp.Scenario.Build()
	if err != nil {
		return nil, nil, err
	}
	res, err := core.LocalizeContext(ctx, a, p, rng.New(sp.Seed))
	if err != nil {
		return nil, nil, err
	}
	return p, res, nil
}
