package alg

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"wsnloc/internal/core"
)

// Spec hashing: the content address of one run. Two specs that describe the
// same computation — regardless of JSON key order, of whether defaults are
// spelled out or left zero, or of wall-clock-only knobs like Workers — hash
// to the same digest, and any semantic change (scenario geometry, algorithm
// name, tuning, seed) changes it. The digest is the cache key of the sweep
// engine (internal/sweep) and of any future result store.

// hashDomain separates Spec digests from other SHA-256 uses and bumps with
// the Spec schema version, so a schema change can never silently alias an
// old cache entry.
const hashDomain = "wsnloc/alg.Spec/v1\n"

// Canonical returns the semantically-normalized form of the spec that
// hashing operates on: Normalize plus scenario defaults filled, algorithm
// option defaults spelled out, and execution-only fields (Workers, Tracer)
// cleared. Canonical is idempotent.
func (sp Spec) Canonical() Spec {
	sp = sp.Normalize()
	sp.Scenario = sp.Scenario.Defaults()
	sp.AlgOpts = sp.AlgOpts.canonical()
	return sp
}

// canonical fills the defaulted tuning knobs with their library values and
// strips everything that cannot change the computed result: Workers is a
// wall-clock knob (results are bit-identical for every value), Tracer is
// runtime wiring, and PK is meaningful only when PKSet. Censor and Prune
// need no filling: their default (0 = off) is their canonical form, and
// omitempty drops them from the JSON — which is what keeps every knobs-off
// hash (and sweep cache key) identical to the pre-knob schema.
func (o Opts) canonical() Opts {
	o.Workers = 0
	o.Tracer = nil
	if o.GridN == 0 {
		o.GridN = core.DefaultGridN
	}
	if o.Particles == 0 {
		o.Particles = core.DefaultParticles
	}
	if o.BPRounds == 0 {
		o.BPRounds = core.DefaultBPRounds
	}
	if o.Conv == "" {
		o.Conv = "auto"
	}
	if !o.PKSet {
		o.PK = core.PreKnowledge{}
	}
	return o
}

// CanonicalJSON encodes the canonical spec as one deterministic JSON
// document (struct field order, shortest float representation). Equal
// canonical specs produce byte-identical documents.
func (sp Spec) CanonicalJSON() ([]byte, error) {
	data, err := json.Marshal(sp.Canonical())
	if err != nil {
		return nil, fmt.Errorf("spec: canonical encoding: %w", err)
	}
	return data, nil
}

// Hash returns the content address of the spec: the hex SHA-256 of the
// domain-separated canonical JSON. Only valid specs get addresses; failures
// wrap wsnerr.ErrBadSpec.
func (sp Spec) Hash() (string, error) {
	if err := sp.Validate(); err != nil {
		return "", err
	}
	data, err := sp.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(hashDomain))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}
