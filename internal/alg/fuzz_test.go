package alg

import (
	"encoding/json"
	"errors"
	"testing"

	"wsnloc/internal/wsnerr"
)

// FuzzParseSpec feeds arbitrary JSON to ParseSpec. The contract under fuzz:
// never panic; every rejection wraps wsnerr.ErrBadSpec; every accepted spec
// re-validates, hashes, and round-trips through JSON to the same content
// address.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"algorithm":"bncl-grid","seed":7}`))
	f.Add([]byte(`{"version":1,"scenario":{"N":80,"AnchorFrac":0.2,"Seed":3},"algorithm":"dv-hop","alg_opts":{"grid_n":32},"seed":9}`))
	f.Add([]byte(`{"scenario":{"Shape":"c","Ranger":"nlos","NLOSProb":0.3}}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"algorithm":"not-registered"}`))
	f.Add([]byte(`{"scenario":{"N":-5}}`))
	f.Add([]byte(`{"alg_opts":{"particles":-1}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"scenario":{"AnchorFrac":1e999}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			if !errors.Is(err, wsnerr.ErrBadSpec) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v", err)
		}
		h1, err := sp.Hash()
		if err != nil {
			t.Fatalf("accepted spec fails Hash: %v", err)
		}
		enc, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted spec fails Marshal: %v", err)
		}
		rt, err := ParseSpec(enc)
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\n%s", err, enc)
		}
		h2, err := rt.Hash()
		if err != nil {
			t.Fatalf("round-tripped spec fails Hash: %v", err)
		}
		if h1 != h2 {
			t.Fatalf("round-trip changed the content address: %s vs %s\n%s", h1, h2, enc)
		}
	})
}

// FuzzScenarioBuild drives Scenario validation and materialization with
// arbitrary dimensions, probabilities, and model names. Validate must never
// panic and must reject with wsnerr.ErrBadScenario; valid (modest) scenarios
// must Build or fail typed.
func FuzzScenarioBuild(f *testing.F) {
	f.Add(150, 0.1, 100.0, 15.0, 0.1, 0.0, 0.0, "square", "uniform", "random", "unitdisk", "toa", uint64(1))
	f.Add(40, 0.25, 60.0, 12.0, 0.3, 0.1, 0.05, "c", "grid", "perimeter", "qudg", "rssi", uint64(7))
	f.Add(-3, 2.0, -1.0, 0.0, -0.5, 1.5, 0.99, "dodecahedron", "swarm", "center", "ether", "lidar", uint64(0))
	f.Add(25, 0.5, 45.0, 20.0, 0.0, 0.0, 0.0, "o", "clusters", "grid", "doi", "hop", uint64(42))
	f.Fuzz(func(t *testing.T, n int, anchorFrac, field, r, noise, loss, jitter float64,
		shape, gen, anchors, prop, ranger string, seed uint64) {
		s := Scenario{
			N: n, AnchorFrac: anchorFrac, Field: field, R: r,
			NoiseFrac: noise, Loss: loss, Jitter: jitter,
			Shape: shape, Gen: gen, Anchors: anchors, Prop: prop, Ranger: ranger,
			Seed: seed,
		}
		err := s.Validate()
		if err != nil {
			if !errors.Is(err, wsnerr.ErrBadScenario) {
				t.Fatalf("untyped rejection: %v", err)
			}
			// Build must agree with Validate and fail typed, never panic.
			if _, berr := s.Build(); !errors.Is(berr, wsnerr.ErrBadScenario) {
				t.Fatalf("Validate rejects but Build said: %v", berr)
			}
			return
		}
		// Bound the materialization cost: graph building is O(N²) and the
		// fuzzer will happily propose million-node fields.
		d := s.Defaults()
		if d.N > 300 || d.Field > 1e4 || d.R > 1e4 {
			return
		}
		p, err := s.Build()
		if err != nil {
			if !errors.Is(err, wsnerr.ErrBadScenario) {
				t.Fatalf("untyped Build failure: %v", err)
			}
			return
		}
		if p == nil || p.Deploy.N() != d.N {
			t.Fatalf("built problem inconsistent: %+v", p)
		}
	})
}
