package alg

import (
	"bytes"
	"errors"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

// Property: the spec hash is a function of the computation, not of its
// spelling. Normalized-equivalent documents — reordered JSON keys, defaults
// spelled out or left zero, wall-clock knobs — collide; any semantic change
// separates.

func mustHash(t *testing.T, sp Spec) string {
	t.Helper()
	h, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHashIgnoresJSONKeyOrder(t *testing.T) {
	a := []byte(`{"algorithm":"dv-hop","seed":9,"scenario":{"N":80,"Seed":4,"AnchorFrac":0.2}}`)
	b := []byte(`{"scenario":{"AnchorFrac":0.2,"N":80,"Seed":4},"seed":9,"algorithm":"dv-hop"}`)
	spA, err := ParseSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	spB, err := ParseSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha, hb := mustHash(t, spA), mustHash(t, spB); ha != hb {
		t.Errorf("reordered keys changed the hash: %s vs %s", ha, hb)
	}
}

func TestHashIgnoresDefaultFilling(t *testing.T) {
	zero := Spec{Algorithm: "bncl-grid", Scenario: Scenario{Seed: 7}, Seed: 1}
	cases := []struct {
		name string
		sp   Spec
	}{
		{"explicit version", func() Spec { s := zero; s.Version = SpecVersion; return s }()},
		{"scenario defaults spelled out", func() Spec {
			s := zero
			s.Scenario = zero.Scenario.Defaults()
			return s
		}()},
		{"grid default spelled out", func() Spec {
			s := zero
			s.AlgOpts.GridN = core.DefaultGridN
			return s
		}()},
		{"particles default spelled out", func() Spec {
			s := zero
			s.AlgOpts.Particles = core.DefaultParticles
			return s
		}()},
		{"bp rounds default spelled out", func() Spec {
			s := zero
			s.AlgOpts.BPRounds = core.DefaultBPRounds
			return s
		}()},
		{"conv default spelled out", func() Spec {
			s := zero
			s.AlgOpts.Conv = "auto"
			return s
		}()},
		{"unset pk payload ignored", func() Spec {
			s := zero
			s.AlgOpts.PK = core.AllPreKnowledge() // PKSet is false: not semantic
			return s
		}()},
	}
	want := mustHash(t, zero)
	for _, tc := range cases {
		if got := mustHash(t, tc.sp); got != want {
			t.Errorf("%s: hash changed: %s vs %s", tc.name, got, want)
		}
	}
}

func TestHashStableAcrossWorkersAndTracer(t *testing.T) {
	base := Spec{Algorithm: "bncl-grid", Scenario: Scenario{N: 60, Seed: 3}, Seed: 5}
	want := mustHash(t, base)
	for _, w := range []int{0, 1, 2, 8, 64} {
		sp := base
		sp.AlgOpts.Workers = w
		if got := mustHash(t, sp); got != want {
			t.Errorf("Workers=%d changed the hash", w)
		}
	}
	sp := base
	sp.AlgOpts.Tracer = obs.NewMemory()
	if got := mustHash(t, sp); got != want {
		t.Error("runtime tracer changed the hash")
	}
}

// mutate produces one semantic variant of the base spec per field the hash
// must be sensitive to.
func TestHashChangesOnSemanticFields(t *testing.T) {
	base := Spec{Algorithm: "bncl-grid", Scenario: Scenario{N: 60, Seed: 3}, Seed: 5}
	want := mustHash(t, base)
	muts := []struct {
		name string
		f    func(*Spec)
	}{
		{"algorithm", func(s *Spec) { s.Algorithm = "dv-hop" }},
		{"alg seed", func(s *Spec) { s.Seed++ }},
		{"scenario seed", func(s *Spec) { s.Scenario.Seed++ }},
		{"node count", func(s *Spec) { s.Scenario.N = 61 }},
		{"anchor fraction", func(s *Spec) { s.Scenario.AnchorFrac = 0.25 }},
		{"noise", func(s *Spec) { s.Scenario.NoiseFrac = 0.2 }},
		{"field", func(s *Spec) { s.Scenario.Field = 120 }},
		{"radio range", func(s *Spec) { s.Scenario.R = 18 }},
		{"shape", func(s *Spec) { s.Scenario.Shape = "c" }},
		{"ranger", func(s *Spec) { s.Scenario.Ranger = "rssi" }},
		{"loss", func(s *Spec) { s.Scenario.Loss = 0.1 }},
		{"grid resolution", func(s *Spec) { s.AlgOpts.GridN = 32 }},
		{"bp rounds", func(s *Spec) { s.AlgOpts.BPRounds = 9 }},
		{"refine", func(s *Spec) { s.AlgOpts.Refine = true }},
		{"conv path", func(s *Spec) { s.AlgOpts.Conv = "fft" }},
		{"censor threshold", func(s *Spec) { s.AlgOpts.Censor = 0.05 }},
		{"prune floor", func(s *Spec) { s.AlgOpts.Prune = 1e-3 }},
		{"pre-knowledge", func(s *Spec) { s.AlgOpts.PKSet = true; s.AlgOpts.PK = core.NoPreKnowledge() }},
	}
	seen := map[string]string{want: "base"}
	for _, m := range muts {
		sp := base
		m.f(&sp)
		got := mustHash(t, sp)
		if got == want {
			t.Errorf("%s: semantic change did not change the hash", m.name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s", m.name, prev)
		}
		seen[got] = m.name
	}
}

func TestHashRejectsInvalidSpec(t *testing.T) {
	if _, err := (Spec{Algorithm: "nope"}).Hash(); !errors.Is(err, wsnerr.ErrBadSpec) {
		t.Errorf("err = %v, want ErrBadSpec", err)
	}
	if _, err := (Spec{Algorithm: "dv-hop", Scenario: Scenario{N: -3}}).Hash(); !errors.Is(err, wsnerr.ErrBadSpec) {
		t.Errorf("err = %v, want ErrBadSpec", err)
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	sp := Spec{Algorithm: "bncl-particle", Scenario: Scenario{N: 44, Seed: 2}, Seed: 11}
	once, err := sp.Canonical().CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sp.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(direct) {
		t.Errorf("Canonical is not idempotent:\n%s\n%s", once, direct)
	}
}

// TestKnobsOffCanonicalJSONOmitsScaleKnobs pins cache-key compatibility:
// a spec that leaves Censor and Prune at their off default must canonicalize
// to JSON that does not mention them at all, so every sweep cache key minted
// before the knobs existed still addresses the same result.
func TestKnobsOffCanonicalJSONOmitsScaleKnobs(t *testing.T) {
	sp := Spec{Algorithm: "bncl-grid", Scenario: Scenario{Seed: 7}, Seed: 1}
	data, err := sp.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"censor", "prune"} {
		if bytes.Contains(data, []byte(key)) {
			t.Errorf("knobs-off canonical JSON mentions %q: %s", key, data)
		}
	}
	// And with a knob set, it must appear (it is semantic).
	sp.AlgOpts.Censor = 0.05
	sp.AlgOpts.Prune = 1e-3
	data, err = sp.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"censor", "prune"} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("knobs-on canonical JSON omits %q: %s", key, data)
		}
	}
}
