// Package alg is the shared algorithm and scenario registry: the single
// place a localization method name resolves to a constructor, and the home
// of the declarative run description (Scenario, Spec) every layer — the
// facade, the experiment harness, and both CLIs — consumes.
//
// Providers self-register: internal/baseline registers the comparison
// algorithms from an init function, and the BNCL builders are registered in
// bncl.go of this package (internal/core cannot import alg — alg depends on
// core's Algorithm contract — so its builders live here). Importing alg plus
// baseline yields the full registry; the expt package blank-imports baseline
// so every consumer above it sees all names.
package alg

import (
	"fmt"
	"sort"
	"sync"

	"wsnloc/internal/core"
	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

// Builder constructs one algorithm from the shared option set.
type Builder func(Opts) core.Algorithm

var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Register adds a named builder to the registry. It is intended to be called
// from init functions of provider packages; registering a duplicate name is
// a programming error and panics.
func Register(name string, b Builder) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || b == nil {
		panic("alg: Register with empty name or nil builder")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("alg: duplicate registration of %q", name))
	}
	registry[name] = b
}

// New builds the named algorithm (see Names). The name must be registered
// and the options valid; failures wrap wsnerr.ErrUnknownAlgorithm and
// wsnerr.ErrBadConfig respectively. With an enabled opts.Tracer the
// algorithm is wrapped so each Localize emits an "algorithm" timing event.
func New(name string, opts Opts) (core.Algorithm, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("alg: %w: %q (have %v)", wsnerr.ErrUnknownAlgorithm, name, Names())
	}
	a := b(opts)
	if obs.Enabled(opts.Tracer) {
		a = core.Traced(a, opts.Tracer)
	}
	return a, nil
}

// Names lists the registered algorithm names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
