package alg

import (
	"fmt"

	"wsnloc/internal/bayes"
	"wsnloc/internal/core"
	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

// Opts tunes algorithm construction. The zero value builds every algorithm
// at its defaults. Opts is JSON-round-trippable (runtime-only fields carry
// `json:"-"`) so a Spec can carry it as the declarative tuning record.
type Opts struct {
	// GridN overrides BNCL's grid resolution (0 = default).
	GridN int `json:"grid_n,omitempty"`
	// Particles overrides BNCL's particle count (0 = default).
	Particles int `json:"particles,omitempty"`
	// BPRounds overrides BNCL's BP-round cap (0 = default).
	BPRounds int `json:"bp_rounds,omitempty"`
	// PK overrides BNCL's pre-knowledge selection when PKSet is true.
	PK    core.PreKnowledge `json:"pk,omitempty"`
	PKSet bool              `json:"pk_set,omitempty"`
	// Refine enables BNCL's local grid refinement.
	Refine bool `json:"refine,omitempty"`
	// Conv selects BNCL's grid-mode message-convolution path: "auto" (or
	// empty) dispatches per message between the sparse scatter and the FFT
	// path, "sparse"/"fft" force one side. Part of the algorithm (the FFT
	// path perturbs floating point), so it participates in Spec hashing.
	Conv string `json:"conv,omitempty"`
	// Censor sets BNCL's message-censoring threshold: a node whose belief
	// change stays below it for two consecutive BP rounds stops
	// re-broadcasting until a fresh message moves it again (0 = off, the
	// default). Part of the algorithm, so it participates in Spec hashing;
	// 0 is omitted from the canonical JSON, keeping knobs-off hashes — and
	// every existing sweep cache key — unchanged.
	Censor float64 `json:"censor,omitempty"`
	// Prune sets BNCL's belief support-pruning floor: after each recompute,
	// cells below Prune·max are dropped and the survivors renormalized
	// (0 = off, the default; must be < 1). Hashed like Censor.
	Prune float64 `json:"prune,omitempty"`
	// Workers sets the simulator worker-pool size for BNCL runs
	// (0 = GOMAXPROCS, 1 = sequential). Results are bit-identical for
	// every value; this is purely a wall-clock knob.
	Workers int `json:"workers,omitempty"`
	// Tracer, when non-nil and enabled, is plumbed into the constructed
	// algorithm: every Localize call emits an "algorithm" timing event, and
	// algorithms with internal instrumentation (BNCL rounds/phases, DV and
	// MDS-MAP phases) emit their structured events to the same sink. Runtime
	// wiring, not part of the declarative spec.
	Tracer obs.Tracer `json:"-"`
}

// Resource ceilings on the tunable knobs. Specs arrive over the network
// (wsnlocd) as well as from the CLI, so absurd values must be rejected by
// validation — before any allocation is sized from them — not discovered as
// an out-of-memory kill. Each limit sits far above every legitimate
// configuration (the paper-scale grid is 50², the scale benchmarks run
// 100k-node networks) and far below what a single allocation attack needs.
const (
	// MaxGridN caps BNCL's per-node grid resolution (memory is O(GridN²)
	// per node).
	MaxGridN = 1024
	// MaxParticles caps BNCL's per-node particle count.
	MaxParticles = 1_000_000
	// MaxBPRounds caps the BP-round budget.
	MaxBPRounds = 100_000
	// MaxWorkers caps the simulator worker-pool size (a goroutine each).
	MaxWorkers = 16_384
)

// Validate rejects option values no algorithm can honor. Failures wrap
// wsnerr.ErrBadConfig. Zero means "use the default" throughout, so
// negative knobs and knobs past their Max* ceiling are invalid.
func (o Opts) Validate() error {
	bad := func(field string, v int) error {
		return fmt.Errorf("alg: %w: %s must be >= 0, got %d", wsnerr.ErrBadConfig, field, v)
	}
	tooBig := func(field string, v, max int) error {
		return fmt.Errorf("alg: %w: %s must be <= %d, got %d", wsnerr.ErrBadConfig, field, max, v)
	}
	switch {
	case o.GridN < 0:
		return bad("GridN", o.GridN)
	case o.GridN > MaxGridN:
		return tooBig("GridN", o.GridN, MaxGridN)
	case o.Particles < 0:
		return bad("Particles", o.Particles)
	case o.Particles > MaxParticles:
		return tooBig("Particles", o.Particles, MaxParticles)
	case o.BPRounds < 0:
		return bad("BPRounds", o.BPRounds)
	case o.BPRounds > MaxBPRounds:
		return tooBig("BPRounds", o.BPRounds, MaxBPRounds)
	case o.Workers < 0:
		return bad("Workers", o.Workers)
	case o.Workers > MaxWorkers:
		return tooBig("Workers", o.Workers, MaxWorkers)
	}
	if o.Censor < 0 {
		return fmt.Errorf("alg: %w: Censor must be >= 0, got %v", wsnerr.ErrBadConfig, o.Censor)
	}
	if o.Prune < 0 || o.Prune >= 1 {
		return fmt.Errorf("alg: %w: Prune must be in [0,1), got %v", wsnerr.ErrBadConfig, o.Prune)
	}
	if _, err := bayes.ParseConvPath(o.Conv); err != nil {
		return fmt.Errorf("alg: %w: %v", wsnerr.ErrBadConfig, err)
	}
	return nil
}
