package alg_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"testing"

	"wsnloc/internal/alg"
	"wsnloc/internal/wsnerr"

	// Self-registration under test: importing baseline must populate the
	// shared registry with every comparison algorithm.
	_ "wsnloc/internal/baseline"
)

func TestRegistryHasEveryAlgorithm(t *testing.T) {
	want := []string{
		"bncl-grid", "bncl-grid-nopk", "bncl-particle", "bncl-particle-nopk",
		"centroid", "dv-distance", "dv-hop", "ls-multilat", "mds-map",
		"min-max", "w-centroid",
	}
	got := alg.Names()
	if !sort.StringsAreSorted(got) {
		t.Errorf("Names() not sorted: %v", got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registry = %v, want %v", got, want)
	}
	for _, name := range got {
		a, err := alg.New(name, alg.Opts{})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if a.Name() == "" {
			t.Errorf("New(%q) built a nameless algorithm", name)
		}
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	_, err := alg.New("no-such-alg", alg.Opts{})
	if !errors.Is(err, wsnerr.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestOptsValidate(t *testing.T) {
	cases := []alg.Opts{
		{GridN: -1},
		{Particles: -8},
		{BPRounds: -2},
		{Workers: -1},
		{Conv: "simd"},
	}
	for _, o := range cases {
		if err := o.Validate(); !errors.Is(err, wsnerr.ErrBadConfig) {
			t.Errorf("Opts %+v: err = %v, want ErrBadConfig", o, err)
		}
		if _, err := alg.New("centroid", o); !errors.Is(err, wsnerr.ErrBadConfig) {
			t.Errorf("New with %+v: err = %v, want ErrBadConfig", o, err)
		}
	}
	if err := (alg.Opts{}).Validate(); err != nil {
		t.Errorf("zero Opts rejected: %v", err)
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		s    alg.Scenario
		ok   bool
	}{
		{"zero value defaults", alg.Scenario{}, true},
		{"explicit valid", alg.Scenario{N: 80, AnchorFrac: 0.2, Field: 50, R: 12}, true},
		{"anchor frac one", alg.Scenario{AnchorFrac: 1}, true},
		{"negative nodes", alg.Scenario{N: -5}, false},
		{"anchor frac negative", alg.Scenario{AnchorFrac: -0.1}, false},
		{"anchor frac above one", alg.Scenario{AnchorFrac: 1.5}, false},
		{"negative field", alg.Scenario{Field: -100}, false},
		{"negative range", alg.Scenario{R: -15}, false},
		{"negative noise", alg.Scenario{NoiseFrac: -0.1}, false},
		{"nlos prob above one", alg.Scenario{NLOSProb: 1.2}, false},
		{"loss at one", alg.Scenario{Loss: 1}, false},
		{"negative jitter", alg.Scenario{Jitter: -0.2}, false},
		{"unknown shape", alg.Scenario{Shape: "heptagon"}, false},
		{"unknown generator", alg.Scenario{Gen: "fractal"}, false},
		{"unknown anchors", alg.Scenario{Anchors: "everywhere"}, false},
		{"unknown propagation", alg.Scenario{Prop: "telepathy"}, false},
		{"unknown ranger", alg.Scenario{Ranger: "sonar"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if tc.ok && err != nil {
				t.Fatalf("valid scenario rejected: %v", err)
			}
			if !tc.ok {
				if !errors.Is(err, wsnerr.ErrBadScenario) {
					t.Fatalf("err = %v, want ErrBadScenario", err)
				}
				// Build must reject the same inputs, not panic downstream.
				if _, berr := tc.s.Build(); !errors.Is(berr, wsnerr.ErrBadScenario) {
					t.Fatalf("Build err = %v, want ErrBadScenario", berr)
				}
			}
		})
	}
}

// TestSpecJSONRoundTrip encodes and re-parses a spec for every registered
// algorithm: the parsed spec must be semantically identical and re-encode to
// the same bytes.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, name := range alg.Names() {
		t.Run(name, func(t *testing.T) {
			sp := alg.Spec{
				Scenario:  alg.Scenario{N: 60, Field: 70, R: 18, Seed: 9},
				Algorithm: name,
				AlgOpts:   alg.Opts{GridN: 24, BPRounds: 6, Workers: 2},
				Seed:      1234,
			}
			data, err := json.Marshal(sp)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got, err := alg.ParseSpec(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if !reflect.DeepEqual(got, sp.Normalize()) {
				t.Errorf("round trip changed the spec:\n got %+v\nwant %+v", got, sp.Normalize())
			}
			data2, err := json.Marshal(got)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if string(data) != string(data2) {
				t.Errorf("encoding not stable:\n first %s\n second %s", data, data2)
			}
		})
	}
}

func TestSpecValidate(t *testing.T) {
	base := alg.Spec{Algorithm: "centroid"}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		sp   alg.Spec
	}{
		{"future version", alg.Spec{Version: 99, Algorithm: "centroid"}},
		{"unknown algorithm", alg.Spec{Algorithm: "no-such-alg"}},
		{"bad scenario", alg.Spec{Algorithm: "centroid", Scenario: alg.Scenario{N: -1}}},
		{"bad opts", alg.Spec{Algorithm: "centroid", AlgOpts: alg.Opts{GridN: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.sp.Validate(); !errors.Is(err, wsnerr.ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
	if _, err := alg.ParseSpec([]byte("{not json")); !errors.Is(err, wsnerr.ErrBadSpec) {
		t.Errorf("malformed JSON: err = %v, want ErrBadSpec", err)
	}
}

func TestSpecRun(t *testing.T) {
	sp := alg.Spec{
		Scenario:  alg.Scenario{N: 40, Field: 60, Seed: 4},
		Algorithm: "centroid",
		Seed:      7,
	}
	p, res, err := sp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || res == nil {
		t.Fatal("nil problem or result from a successful run")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp.Algorithm = "bncl-grid"
	if _, _, err := sp.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: err = %v, want context.Canceled", err)
	}
}
