package alg

import (
	"wsnloc/internal/bayes"
	"wsnloc/internal/core"
)

// BNCL variant registration. These builders belong to internal/core, but
// core cannot import alg (alg depends on core's Algorithm contract), so the
// registry half of core's surface lives here; see the package comment.
func init() {
	Register("bncl-grid", func(o Opts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.GridMode, pkOf(o, core.AllPreKnowledge()), o)}
	})
	Register("bncl-particle", func(o Opts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.ParticleMode, pkOf(o, core.AllPreKnowledge()), o)}
	})
	Register("bncl-grid-nopk", func(o Opts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.GridMode, core.NoPreKnowledge(), o)}
	})
	Register("bncl-particle-nopk", func(o Opts) core.Algorithm {
		return &core.BNCL{Cfg: bnclCfg(core.ParticleMode, core.NoPreKnowledge(), o)}
	})
}

func bnclCfg(mode core.Mode, pk core.PreKnowledge, o Opts) core.Config {
	// New has already vetted the name via Opts.Validate; a builder called
	// with an unvalidated bad name degrades to the ConvAuto default.
	conv, _ := bayes.ParseConvPath(o.Conv)
	return core.Config{
		Mode:      mode,
		GridNX:    o.GridN,
		GridNY:    o.GridN,
		Particles: o.Particles,
		BPRounds:  o.BPRounds,
		PK:        pk,
		Refine:    o.Refine,
		Conv:      conv,
		Censor:    o.Censor,
		Prune:     o.Prune,
		Workers:   o.Workers,
		Tracer:    o.Tracer,
	}
}

func pkOf(o Opts, def core.PreKnowledge) core.PreKnowledge {
	if o.PKSet {
		return o.PK
	}
	return def
}
