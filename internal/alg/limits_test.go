package alg

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"wsnloc/internal/wsnerr"
)

// The size-guard satellite: specs arrive over the network (wsnlocd), so
// absurd resource knobs must be rejected by validation — before anything is
// allocated from them — and surface as ErrBadSpec through the ParseSpec
// path like every other invalid document.

func TestOptsValidateCeilings(t *testing.T) {
	cases := []struct {
		name string
		o    Opts
		ok   bool
	}{
		{"zero is default", Opts{}, true},
		{"grid at ceiling", Opts{GridN: MaxGridN}, true},
		{"grid over ceiling", Opts{GridN: MaxGridN + 1}, false},
		{"particles at ceiling", Opts{Particles: MaxParticles}, true},
		{"particles over ceiling", Opts{Particles: MaxParticles + 1}, false},
		{"bp rounds at ceiling", Opts{BPRounds: MaxBPRounds}, true},
		{"bp rounds over ceiling", Opts{BPRounds: MaxBPRounds + 1}, false},
		{"workers at ceiling", Opts{Workers: MaxWorkers}, true},
		{"workers over ceiling", Opts{Workers: MaxWorkers + 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.o.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want ErrBadConfig")
				}
				if !errors.Is(err, wsnerr.ErrBadConfig) {
					t.Fatalf("Validate() = %v, want ErrBadConfig", err)
				}
			}
		})
	}
}

func TestScenarioValidateNodeCeiling(t *testing.T) {
	if err := (Scenario{N: MaxNodes}).Validate(); err != nil {
		t.Fatalf("N = MaxNodes should validate, got %v", err)
	}
	err := (Scenario{N: MaxNodes + 1}).Validate()
	if !errors.Is(err, wsnerr.ErrBadScenario) {
		t.Fatalf("N over ceiling: err = %v, want ErrBadScenario", err)
	}
}

// TestParseSpecRejectsAbsurdSizes pins the network-facing contract: an
// oversized knob inside a spec document fails ParseSpec with ErrBadSpec —
// the daemon's 400 path — and never reaches allocation.
func TestParseSpecRejectsAbsurdSizes(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"huge n", fmt.Sprintf(`{"scenario":{"N":%d},"algorithm":"centroid"}`, MaxNodes+1)},
		{"huge grid", fmt.Sprintf(`{"algorithm":"bncl-grid","alg_opts":{"grid_n":%d}}`, MaxGridN+1)},
		{"huge particles", fmt.Sprintf(`{"algorithm":"bncl-particle","alg_opts":{"particles":%d}}`, MaxParticles+1)},
		{"huge bp rounds", fmt.Sprintf(`{"algorithm":"bncl-grid","alg_opts":{"bp_rounds":%d}}`, MaxBPRounds+1)},
		{"huge workers", fmt.Sprintf(`{"algorithm":"bncl-grid","alg_opts":{"workers":%d}}`, MaxWorkers+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !json.Valid([]byte(tc.doc)) {
				t.Fatalf("test document is not valid JSON: %s", tc.doc)
			}
			_, err := ParseSpec([]byte(tc.doc))
			if !errors.Is(err, wsnerr.ErrBadSpec) {
				t.Fatalf("ParseSpec(%s) = %v, want ErrBadSpec", tc.doc, err)
			}
		})
	}
}
