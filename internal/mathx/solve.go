package mathx

import (
	"errors"
	"math"
)

// ErrSingular is returned by the linear solvers when the system is singular
// or too ill-conditioned to solve at the working precision.
var ErrSingular = errors.New("mathx: matrix is singular or near-singular")

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix A such that L·Lᵀ = A. It returns ErrSingular if a
// non-positive pivot is encountered.
func Cholesky(a *Mat) (*Mat, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, errors.New("mathx: Cholesky requires a square matrix")
	}
	l := NewMat(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// CholeskySolve solves A·x = b given the Cholesky factor L of A (L·Lᵀ = A)
// via forward then backward substitution.
func CholeskySolve(l *Mat, b []float64) []float64 {
	n := l.Rows()
	if len(b) != n {
		panic("mathx: CholeskySolve dimension mismatch")
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive-definite A.
func SolveSPD(a *Mat, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// SolveLinear solves a general square system A·x = b by Gaussian elimination
// with partial pivoting. A and b are not modified.
func SolveLinear(a *Mat, b []float64) ([]float64, error) {
	n := a.Rows()
	if a.Cols() != n || len(b) != n {
		return nil, errors.New("mathx: SolveLinear requires square A and matching b")
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m.At(r, col)); a > pmax {
				pivot, pmax = r, a
			}
		}
		if pmax < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vi, vp := m.At(col, j), m.At(pivot, j)
				m.Set(col, j, vp)
				m.Set(pivot, j, vi)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// InvertSPD returns the inverse of a symmetric positive-definite matrix via
// its Cholesky factorization (n solves against unit vectors).
func InvertSPD(a *Mat) (*Mat, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	inv := NewMat(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := CholeskySolve(l, e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// LeastSquares solves min ‖A·x − b‖₂ for an over-determined system (rows ≥
// cols) via the normal equations with Tikhonov damping lambda ≥ 0:
// (AᵀA + λI)·x = Aᵀb. For the localization problems in this library the
// systems are tiny (cols = 2 or 3), so the normal equations are numerically
// adequate; pass a small lambda (e.g. 1e-9) to regularize degenerate anchor
// geometries.
func LeastSquares(a *Mat, b []float64, lambda float64) ([]float64, error) {
	if a.Rows() < a.Cols() {
		return nil, errors.New("mathx: LeastSquares requires rows >= cols")
	}
	if a.Rows() != len(b) {
		return nil, errors.New("mathx: LeastSquares dimension mismatch")
	}
	at := a.T()
	ata := at.Mul(a)
	for i := 0; i < ata.Rows(); i++ {
		ata.AddAt(i, i, lambda)
	}
	atb := at.MulVec(b)
	x, err := SolveSPD(ata, atb)
	if err != nil {
		// Fall back to pivoted elimination: AᵀA can fail Cholesky when the
		// geometry is degenerate but the damped system is still solvable.
		return SolveLinear(ata, atb)
	}
	return x, nil
}
