package mathx

import (
	"math"
	"testing"
)

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt wrong")
	}
}

func TestNormalPDF(t *testing.T) {
	// Peak of standard normal is 1/√(2π).
	if got := NormalPDF(0, 0, 1); !AlmostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("pdf(0) = %v", got)
	}
	// Symmetry.
	if NormalPDF(1.3, 0, 1) != NormalPDF(-1.3, 0, 1) {
		t.Error("pdf not symmetric")
	}
	// Scaling: N(mu, sigma) at mu equals N(0,1) at 0 divided by sigma.
	if got := NormalPDF(5, 5, 2); !AlmostEqual(got, NormalPDF(0, 0, 1)/2, 1e-12) {
		t.Errorf("scaled pdf = %v", got)
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); !AlmostEqual(got, 0.5, 1e-12) {
		t.Errorf("cdf(0) = %v", got)
	}
	if got := NormalCDF(1.96, 0, 1); !AlmostEqual(got, 0.975, 1e-3) {
		t.Errorf("cdf(1.96) = %v", got)
	}
	if NormalCDF(10, 0, 1) < 0.999999 {
		t.Error("tail cdf wrong")
	}
}

func TestLogNormalPDF(t *testing.T) {
	if LogNormalPDF(-1, 0, 1) != 0 || LogNormalPDF(0, 0, 1) != 0 {
		t.Error("lognormal must vanish for x <= 0")
	}
	// Mode of lognormal(mu, sigma) is exp(mu − sigma²).
	mode := math.Exp(0 - 1)
	if LogNormalPDF(mode, 0, 1) < LogNormalPDF(mode*1.2, 0, 1) ||
		LogNormalPDF(mode, 0, 1) < LogNormalPDF(mode*0.8, 0, 1) {
		t.Error("mode is not a local max")
	}
}

func TestLogistic(t *testing.T) {
	if got := Logistic(0); got != 0.5 {
		t.Errorf("logistic(0) = %v", got)
	}
	if Logistic(10) < 0.999 || Logistic(-10) > 0.001 {
		t.Error("logistic saturation wrong")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-13, 1e-12) {
		t.Error("tiny diff rejected")
	}
	if AlmostEqual(1.0, 1.1, 1e-12) {
		t.Error("large diff accepted")
	}
	if !AlmostEqual(1e9, 1e9+1, 1e-8) {
		t.Error("relative tolerance not applied")
	}
}

func TestSq(t *testing.T) {
	if Sq(-3) != 9 {
		t.Error("Sq wrong")
	}
}
