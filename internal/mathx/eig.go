package mathx

import (
	"errors"
	"math"
	"sort"
)

// EigSym computes the eigen-decomposition of a symmetric matrix A by the
// cyclic Jacobi method. It returns the eigenvalues in descending order and a
// matrix whose columns are the corresponding orthonormal eigenvectors.
//
// Jacobi is O(n³) per sweep but unconditionally stable and exact enough for
// the MDS-MAP baseline, whose Gram matrices are at most a few hundred rows.
func EigSym(a *Mat) (vals []float64, vecs *Mat, err error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, nil, errors.New("mathx: EigSym requires a square matrix")
	}
	if !a.IsSymmetric(1e-8 * (1 + a.MaxAbs())) {
		return nil, nil, errors.New("mathx: EigSym requires a symmetric matrix")
	}
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if math.Sqrt(2*off) <= 1e-12*(1+m.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{m.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	vals = make([]float64, n)
	vecs = NewMat(n, n)
	for k, p := range pairs {
		vals[k] = p.val
		for r := 0; r < n; r++ {
			vecs.Set(r, k, v.At(r, p.col))
		}
	}
	return vals, vecs, nil
}

// rotate applies the Jacobi rotation G(p,q,c,s) as m ← GᵀmG and accumulates
// v ← vG.
func rotate(m, v *Mat, p, q int, c, s float64) {
	n := m.Rows()
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// TopEig returns the k largest eigenvalues (clamped at zero from below) and
// their eigenvectors, as needed by classical multidimensional scaling.
func TopEig(a *Mat, k int) (vals []float64, vecs *Mat, err error) {
	allVals, allVecs, err := EigSym(a)
	if err != nil {
		return nil, nil, err
	}
	if k > len(allVals) {
		k = len(allVals)
	}
	vals = make([]float64, k)
	vecs = NewMat(a.Rows(), k)
	for j := 0; j < k; j++ {
		vals[j] = math.Max(allVals[j], 0)
		for i := 0; i < a.Rows(); i++ {
			vecs.Set(i, j, allVecs.At(i, j))
		}
	}
	return vals, vecs, nil
}
