package mathx

import (
	"math"
	"testing"
)

// rangeProblem is the multilateration test fixture: find p minimizing
// Σ (‖p − aᵢ‖ − dᵢ)².
type rangeProblem struct {
	anchors []Vec2
	dists   []float64
}

func (p *rangeProblem) Dims() (int, int) { return len(p.anchors), 2 }

func (p *rangeProblem) Eval(x []float64, r []float64, jac *Mat) {
	pos := V2(x[0], x[1])
	for i, a := range p.anchors {
		d := pos.Dist(a)
		r[i] = d - p.dists[i]
		if d < 1e-9 {
			jac.Set(i, 0, 0)
			jac.Set(i, 1, 0)
			continue
		}
		jac.Set(i, 0, (pos.X-a.X)/d)
		jac.Set(i, 1, (pos.Y-a.Y)/d)
	}
}

func TestGaussNewtonExactTrilateration(t *testing.T) {
	truth := V2(3, 4)
	anchors := []Vec2{V2(0, 0), V2(10, 0), V2(0, 10)}
	p := &rangeProblem{anchors: anchors}
	for _, a := range anchors {
		p.dists = append(p.dists, truth.Dist(a))
	}
	x, cost, iters, err := GaussNewton(p, []float64{5, 5}, GNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(x[0], truth.X, 1e-6) || !AlmostEqual(x[1], truth.Y, 1e-6) {
		t.Fatalf("solution = %v after %d iters (cost %g)", x, iters, cost)
	}
	if cost > 1e-10 {
		t.Fatalf("cost = %g for a consistent system", cost)
	}
}

func TestGaussNewtonNoisyOverdetermined(t *testing.T) {
	truth := V2(40, 60)
	anchors := []Vec2{V2(0, 0), V2(100, 0), V2(0, 100), V2(100, 100), V2(50, 0)}
	noise := []float64{0.5, -0.4, 0.3, -0.2, 0.6}
	p := &rangeProblem{anchors: anchors}
	for i, a := range anchors {
		p.dists = append(p.dists, truth.Dist(a)+noise[i])
	}
	x, _, _, err := GaussNewton(p, []float64{50, 50}, GNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est := V2(x[0], x[1]); est.Dist(truth) > 1.5 {
		t.Fatalf("estimate %v too far from truth %v", est, truth)
	}
}

func TestGaussNewtonDegenerateCollinearAnchors(t *testing.T) {
	// All anchors on the x-axis: y is ambiguous (±). The solver must still
	// terminate with a finite answer whose x matches and |y| matches.
	truth := V2(5, 3)
	anchors := []Vec2{V2(0, 0), V2(10, 0), V2(20, 0)}
	p := &rangeProblem{anchors: anchors}
	for _, a := range anchors {
		p.dists = append(p.dists, truth.Dist(a))
	}
	x, cost, _, err := GaussNewton(p, []float64{4, 1}, GNOptions{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(x[0]) || math.IsNaN(x[1]) {
		t.Fatalf("non-finite solution %v", x)
	}
	if !AlmostEqual(x[0], truth.X, 1e-3) || !AlmostEqual(math.Abs(x[1]), truth.Y, 1e-3) {
		t.Fatalf("solution = %v (cost %g), want x=5, |y|=3", x, cost)
	}
}

func TestGaussNewtonBadInputs(t *testing.T) {
	p := &rangeProblem{anchors: []Vec2{V2(0, 0)}, dists: []float64{1}}
	if _, _, _, err := GaussNewton(p, []float64{1, 2, 3}, GNOptions{}); err == nil {
		t.Error("accepted wrong-length initial point")
	}
	empty := &rangeProblem{}
	if _, _, _, err := GaussNewton(empty, []float64{1, 2}, GNOptions{}); err == nil {
		t.Error("accepted zero residuals")
	}
}

func TestGaussNewtonRespectsMaxIter(t *testing.T) {
	truth := V2(3, 4)
	anchors := []Vec2{V2(0, 0), V2(10, 0), V2(0, 10)}
	p := &rangeProblem{anchors: anchors}
	for _, a := range anchors {
		p.dists = append(p.dists, truth.Dist(a))
	}
	_, _, iters, err := GaussNewton(p, []float64{9, 9}, GNOptions{MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if iters > 2 {
		t.Fatalf("iters = %d exceeds MaxIter", iters)
	}
}
