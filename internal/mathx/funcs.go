package mathx

import "math"

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt restricts x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Sq returns x².
func Sq(x float64) float64 { return x * x }

// NormalPDF evaluates the Gaussian density N(mu, sigma²) at x. sigma must be
// positive.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF evaluates the Gaussian cumulative distribution Φ((x−mu)/sigma).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// LogNormalPDF evaluates the log-normal density with location mu and scale
// sigma (parameters of the underlying normal) at x > 0; it returns 0 for
// x ≤ 0.
func LogNormalPDF(x, mu, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - mu) / sigma
	return math.Exp(-0.5*z*z) / (x * sigma * math.Sqrt(2*math.Pi))
}

// Logistic is the standard sigmoid 1/(1+e^{−x}).
func Logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// AlmostEqual reports |a−b| ≤ tol·(1+max(|a|,|b|)), a mixed absolute and
// relative comparison used throughout the tests.
func AlmostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := 1 + math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
