package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if got := Std(xs); got != 2 {
		t.Errorf("Std = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/degenerate cases wrong")
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); !AlmostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
	if RMS(nil) != 0 {
		t.Error("empty RMS != 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	even := []float64{1, 2, 3, 4}
	if got := Median(even); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Percentile must not mutate its input.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestMinMaxStats(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("empty MinMax wrong")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !AlmostEqual(s.P90, 4.6, 1e-12) {
		t.Errorf("P90 = %v", s.P90)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := CDF(xs, []float64{0, 1, 2.5, 4, 10})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	Linspace(0, 1, 1)
}

// Property: percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, clampQC(v))
		}
		a := math.Abs(math.Mod(p1, 100))
		b := math.Abs(math.Mod(p2, 100))
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, qcCfg()); err != nil {
		t.Error(err)
	}
}

// Property: CDF is monotone non-decreasing for sorted thresholds.
func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64, rawT []float64) bool {
		if len(raw) == 0 || len(rawT) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, clampQC(v))
		}
		ts := make([]float64, 0, len(rawT))
		for _, v := range rawT {
			ts = append(ts, clampQC(v))
		}
		sort.Float64s(ts)
		cdf := CDF(xs, ts)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return cdf[0] >= 0 && cdf[len(cdf)-1] <= 1
	}
	if err := quick.Check(f, qcCfg()); err != nil {
		t.Error(err)
	}
}
