package mathx

import (
	"math"
	"sync"
)

// Radix-2 fast Fourier transforms. These back the dense convolution path of
// internal/bayes: a grid belief and a message kernel are zero-padded to
// power-of-two dimensions, transformed, multiplied pointwise, and transformed
// back — O(G log G) per message regardless of kernel support. The transforms
// are fully deterministic (fixed butterfly order, cached twiddle tables), so
// results are bit-identical across runs and worker counts.

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// twiddleCache memoizes the forward twiddle factors per transform length.
// Lengths are few (one or two padded grid sizes per process), so the table
// never grows meaningfully; the RWMutex keeps concurrent transforms on the
// read path.
var (
	twiddleMu    sync.RWMutex
	twiddleCache = map[int][]complex128{}
)

// twiddles returns w[k] = exp(-2πi·k/n) for k in [0, n/2).
func twiddles(n int) []complex128 {
	twiddleMu.RLock()
	tw, ok := twiddleCache[n]
	twiddleMu.RUnlock()
	if ok {
		return tw
	}
	tw = make([]complex128, n/2)
	for k := range tw {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		tw[k] = complex(c, s)
	}
	twiddleMu.Lock()
	if prev, ok := twiddleCache[n]; ok {
		tw = prev
	} else {
		twiddleCache[n] = tw
	}
	twiddleMu.Unlock()
	return tw
}

// FFT computes the in-place discrete Fourier transform of a. The length must
// be a power of two (panics otherwise). The inverse transform includes the
// 1/n scaling, so FFT(FFT(a, false), true) restores a up to rounding.
func FFT(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("mathx: FFT length must be a power of two")
	}
	if n < 2 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	tw := twiddles(n)
	for length := 2; length <= n; length <<= 1 {
		half, step := length/2, n/length
		for start := 0; start < n; start += length {
			for k := 0; k < half; k++ {
				w := tw[k*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
}

// FFT2D computes the in-place 2-D DFT of row-major data with nx columns and
// ny rows (both powers of two): a length-nx transform of every row followed
// by a length-ny transform of every column. The inverse direction carries the
// full 1/(nx·ny) scaling.
func FFT2D(data []complex128, nx, ny int, inverse bool) {
	if len(data) != nx*ny {
		panic("mathx: FFT2D data length does not match nx*ny")
	}
	for j := 0; j < ny; j++ {
		FFT(data[j*nx:(j+1)*nx], inverse)
	}
	if ny < 2 {
		return
	}
	col := make([]complex128, ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			col[j] = data[j*nx+i]
		}
		FFT(col, inverse)
		for j := 0; j < ny; j++ {
			data[j*nx+i] = col[j]
		}
	}
}
