package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVec2Basics(t *testing.T) {
	a := V2(3, 4)
	b := V2(-1, 2)

	if got := a.Add(b); got != V2(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V2(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V2(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 3*-1+4*2 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 3*2-4*-1 {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := a.Dist(b); !AlmostEqual(got, math.Hypot(4, 2), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	if got := a.Dist2(b); got != 20 {
		t.Errorf("Dist2 = %v", got)
	}
}

func TestVec2Unit(t *testing.T) {
	u := V2(3, 4).Unit()
	if !AlmostEqual(u.Norm(), 1, 1e-12) {
		t.Errorf("unit norm = %v", u.Norm())
	}
	if z := (Vec2{}).Unit(); z != (Vec2{}) {
		t.Errorf("zero unit = %v", z)
	}
}

func TestVec2Rotate(t *testing.T) {
	v := V2(1, 0)
	r := v.Rotate(math.Pi / 2)
	if !AlmostEqual(r.X, 0, 1e-12) || !AlmostEqual(r.Y, 1, 1e-12) {
		t.Errorf("rotate 90 = %v", r)
	}
	// Rotation preserves norm for arbitrary vectors.
	w := V2(-2.5, 7.1).Rotate(1.234)
	if !AlmostEqual(w.Norm(), V2(-2.5, 7.1).Norm(), 1e-12) {
		t.Errorf("rotation changed norm: %v", w.Norm())
	}
}

func TestVec2Lerp(t *testing.T) {
	a, b := V2(0, 0), V2(10, -4)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("lerp 0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("lerp 1 = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V2(5, -2) {
		t.Errorf("lerp 0.5 = %v", got)
	}
}

func TestVec2Angle(t *testing.T) {
	if got := V2(0, 1).Angle(); !AlmostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("angle = %v", got)
	}
}

func TestVec2IsFinite(t *testing.T) {
	if !V2(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V2(math.NaN(), 0).IsFinite() || V2(0, math.Inf(1)).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Vec2{}) {
		t.Errorf("empty centroid = %v", got)
	}
	pts := []Vec2{V2(0, 0), V2(2, 0), V2(2, 2), V2(0, 2)}
	if got := Centroid(pts); got != V2(1, 1) {
		t.Errorf("centroid = %v", got)
	}
}

func TestWeightedCentroid(t *testing.T) {
	pts := []Vec2{V2(0, 0), V2(10, 0)}
	got := WeightedCentroid(pts, []float64{1, 3})
	if !AlmostEqual(got.X, 7.5, 1e-12) || got.Y != 0 {
		t.Errorf("weighted centroid = %v", got)
	}
	// Zero total weight falls back to plain centroid.
	got = WeightedCentroid(pts, []float64{0, 0})
	if got != V2(5, 0) {
		t.Errorf("zero-weight fallback = %v", got)
	}
}

func TestWeightedCentroidMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	WeightedCentroid([]Vec2{V2(1, 1)}, []float64{1, 2})
}

// Property: the triangle inequality holds for Dist.
func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := V2(clampQC(ax), clampQC(ay)), V2(clampQC(bx), clampQC(by)), V2(clampQC(cx), clampQC(cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, qcCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Dot is bilinear in its first argument.
func TestDotBilinear(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, s float64) bool {
		a, b, c := V2(clampQC(ax), clampQC(ay)), V2(clampQC(bx), clampQC(by)), V2(clampQC(cx), clampQC(cy))
		s = clampQC(s)
		lhs := a.Scale(s).Add(b).Dot(c)
		rhs := s*a.Dot(c) + b.Dot(c)
		return AlmostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, qcCfg()); err != nil {
		t.Error(err)
	}
}

// clampQC maps arbitrary quick-generated floats into a tame range so the
// properties are tested away from overflow rather than at ±1e308.
func clampQC(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func qcCfg() *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(42))}
}
