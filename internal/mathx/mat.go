package mathx

import (
	"fmt"
	"math"
	"strings"
)

// Mat is a dense, row-major matrix of float64. The zero value is an empty
// matrix; use NewMat to allocate. Dimensions are fixed at construction.
type Mat struct {
	rows, cols int
	data       []float64
}

// NewMat allocates an r×c zero matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic("mathx: negative matrix dimension")
	}
	return &Mat{rows: r, cols: c, data: make([]float64, r*c)}
}

// MatFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func MatFromRows(rows [][]float64) *Mat {
	r := len(rows)
	if r == 0 {
		return NewMat(0, 0)
	}
	c := len(rows[0])
	m := NewMat(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("mathx: ragged rows in MatFromRows")
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// At returns m[i,j].
func (m *Mat) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns m[i,j] = v.
func (m *Mat) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// AddAt adds v to m[i,j].
func (m *Mat) AddAt(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Mat) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mathx: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := NewMat(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Mat) Mul(b *Mat) *Mat {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mathx: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMat(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Mat) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic("mathx: MulVec dimension mismatch")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b.
func (m *Mat) Add(b *Mat) *Mat {
	m.sameShape(b)
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Mat) Sub(b *Mat) *Mat {
	m.sameShape(b)
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Mat) Scale(s float64) *Mat {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

func (m *Mat) sameShape(b *Mat) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mathx: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Mat) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry of m (0 for an empty matrix).
func (m *Mat) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(Σ m[i,j]²).
func (m *Mat) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
