package mathx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At = %v", m.At(1, 2))
	}
	m.AddAt(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Errorf("AddAt result = %v", m.At(1, 2))
	}
}

func TestMatFromRowsAndClone(t *testing.T) {
	m := MatFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases the original")
	}
	if r := m.Row(1); r[0] != 3 || r[1] != 4 {
		t.Errorf("Row = %v", r)
	}
	if col := m.Col(1); col[0] != 2 || col[1] != 4 {
		t.Errorf("Col = %v", col)
	}
}

func TestMatRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MatFromRows([][]float64{{1, 2}, {3}})
}

func TestMatMul(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := MatFromRows([][]float64{{19, 22}, {43, 50}})
	if got.Sub(want).MaxAbs() > 1e-12 {
		t.Errorf("Mul =\n%v", got)
	}
}

func TestMatMulVec(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v", got)
		}
	}
}

func TestMatTranspose(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T dims = %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("T content wrong:\n%v", at)
	}
}

func TestIdentityAndScale(t *testing.T) {
	i3 := Identity(3)
	a := MatFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if a.Mul(i3).Sub(a).MaxAbs() != 0 {
		t.Error("A·I != A")
	}
	if got := i3.Scale(2).At(1, 1); got != 2 {
		t.Errorf("Scale = %v", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	s := MatFromRows([][]float64{{2, 1}, {1, 3}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	ns := MatFromRows([][]float64{{2, 1}, {0, 3}})
	if ns.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewMat(2, 3).IsSymmetric(0) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := MatFromRows([][]float64{{3, 0}, {0, 4}})
	if !AlmostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Errorf("Frobenius = %v", m.FrobeniusNorm())
	}
}

func TestMatIndexPanics(t *testing.T) {
	m := NewMat(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	m.At(2, 0)
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ on random small matrices.
func TestMulTransposeIdentity(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	randMat := func(r, c int) *Mat {
		m := NewMat(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rnd.NormFloat64())
			}
		}
		return m
	}
	for trial := 0; trial < 50; trial++ {
		r := 1 + rnd.Intn(6)
		k := 1 + rnd.Intn(6)
		c := 1 + rnd.Intn(6)
		a, b := randMat(r, k), randMat(k, c)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		if lhs.Sub(rhs).MaxAbs() > 1e-10 {
			t.Fatalf("transpose identity violated at trial %d", trial)
		}
	}
}

// Property: matrix addition commutes.
func TestAddCommutes(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		m1 := MatFromRows([][]float64{{clampQC(a), clampQC(b)}, {clampQC(c), clampQC(d)}})
		m2 := MatFromRows([][]float64{{clampQC(d), clampQC(c)}, {clampQC(b), clampQC(a)}})
		return m1.Add(m2).Sub(m2.Add(m1)).MaxAbs() == 0
	}
	if err := quick.Check(f, qcCfg()); err != nil {
		t.Error(err)
	}
}
