package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := MatFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(vals[0], 3, 1e-10) || !AlmostEqual(vals[1], 1, 1e-10) {
		t.Fatalf("vals = %v", vals)
	}
	// Eigenvector of λ=3 is (1,1)/√2 up to sign.
	v0 := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	if !AlmostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-8) || !AlmostEqual(v0[0], v0[1], 1e-8) {
		t.Fatalf("vec0 = %v", v0)
	}
}

func TestEigSymReconstruction(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rnd.Intn(10)
		// Random symmetric matrix.
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rnd.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check A·v = λ·v column by column.
		for k := 0; k < n; k++ {
			v := vecs.Col(k)
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if !AlmostEqual(av[i], vals[k]*v[i], 1e-7) {
					t.Fatalf("trial %d: A·v != λ·v at (%d,%d): %v vs %v", trial, i, k, av[i], vals[k]*v[i])
				}
			}
		}
		// Eigenvalues must be sorted descending.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
		// Eigenvectors must be orthonormal: VᵀV = I.
		vtv := vecs.T().Mul(vecs)
		if diff := vtv.Sub(Identity(n)).MaxAbs(); diff > 1e-8 {
			t.Fatalf("VᵀV deviates from I by %g", diff)
		}
	}
}

func TestEigSymTraceInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	n := 6
	a := NewMat(n, n)
	trace := 0.0
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rnd.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		trace += a.At(i, i)
	}
	vals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if !AlmostEqual(sum, trace, 1e-9) {
		t.Fatalf("Σλ = %v, trace = %v", sum, trace)
	}
}

func TestEigSymErrors(t *testing.T) {
	if _, _, err := EigSym(NewMat(2, 3)); err == nil {
		t.Error("accepted non-square matrix")
	}
	if _, _, err := EigSym(MatFromRows([][]float64{{1, 2}, {3, 4}})); err == nil {
		t.Error("accepted asymmetric matrix")
	}
}

func TestTopEigClampsNegative(t *testing.T) {
	// diag(5, −2): top-2 should report (5, 0) since negatives clamp to zero.
	a := MatFromRows([][]float64{{5, 0}, {0, -2}})
	vals, vecs, err := TopEig(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(vals[0], 5, 1e-10) || vals[1] != 0 {
		t.Fatalf("vals = %v", vals)
	}
	if vecs.Rows() != 2 || vecs.Cols() != 2 {
		t.Fatalf("vecs dims = %dx%d", vecs.Rows(), vecs.Cols())
	}
}

func TestTopEigTruncates(t *testing.T) {
	a := Identity(4)
	vals, vecs, err := TopEig(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 || vecs.Cols() != 4 {
		t.Fatalf("TopEig did not truncate k: %d vals", len(vals))
	}
}
