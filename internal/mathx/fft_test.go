package mathx

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference transform the FFT must agree with.
func naiveDFT(a []complex128, inverse bool) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += a[t] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randComplex(n int, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return a
}

func maxAbsDiff(a, b []complex128) float64 {
	mx := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 63: 64, 64: 64, 65: 128}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		a := randComplex(n, int64(n))
		got := append([]complex128(nil), a...)
		FFT(got, false)
		want := naiveDFT(a, false)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: forward FFT deviates from DFT by %g", n, d)
		}
		inv := append([]complex128(nil), a...)
		FFT(inv, true)
		wantInv := naiveDFT(a, true)
		if d := maxAbsDiff(inv, wantInv); d > 1e-9 {
			t.Errorf("n=%d: inverse FFT deviates from DFT by %g", n, d)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	a := randComplex(256, 7)
	b := append([]complex128(nil), a...)
	FFT(b, false)
	FFT(b, true)
	if d := maxAbsDiff(a, b); d > 1e-12 {
		t.Errorf("round trip deviates by %g", d)
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 12), false)
}

// naiveDFT2D transforms rows then columns with the reference DFT.
func naiveDFT2D(data []complex128, nx, ny int, inverse bool) []complex128 {
	out := append([]complex128(nil), data...)
	for j := 0; j < ny; j++ {
		copy(out[j*nx:(j+1)*nx], naiveDFT(out[j*nx:(j+1)*nx], inverse))
	}
	col := make([]complex128, ny)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			col[j] = out[j*nx+i]
		}
		for j, v := range naiveDFT(col, inverse) {
			out[j*nx+i] = v
		}
	}
	return out
}

func TestFFT2DMatchesNaiveDFT(t *testing.T) {
	nx, ny := 8, 16
	a := randComplex(nx*ny, 3)
	got := append([]complex128(nil), a...)
	FFT2D(got, nx, ny, false)
	want := naiveDFT2D(a, nx, ny, false)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Errorf("2-D FFT deviates from DFT by %g", d)
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	nx, ny := 32, 8
	a := randComplex(nx*ny, 9)
	b := append([]complex128(nil), a...)
	FFT2D(b, nx, ny, false)
	FFT2D(b, nx, ny, true)
	if d := maxAbsDiff(a, b); d > 1e-12 {
		t.Errorf("2-D round trip deviates by %g", d)
	}
}

// TestFFT2DConvolutionTheorem pins the property the convolution path relies
// on: pointwise spectrum product equals circular convolution.
func TestFFT2DConvolutionTheorem(t *testing.T) {
	nx, ny := 16, 16
	a := randComplex(nx*ny, 21)
	b := randComplex(nx*ny, 22)
	// Direct circular convolution.
	want := make([]complex128, nx*ny)
	for tj := 0; tj < ny; tj++ {
		for ti := 0; ti < nx; ti++ {
			var s complex128
			for sj := 0; sj < ny; sj++ {
				for si := 0; si < nx; si++ {
					dj := ((tj-sj)%ny + ny) % ny
					di := ((ti-si)%nx + nx) % nx
					s += a[sj*nx+si] * b[dj*nx+di]
				}
			}
			want[tj*nx+ti] = s
		}
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	FFT2D(fa, nx, ny, false)
	FFT2D(fb, nx, ny, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	FFT2D(fa, nx, ny, true)
	if d := maxAbsDiff(fa, want); d > 1e-8 {
		t.Errorf("convolution theorem violated by %g", d)
	}
}
