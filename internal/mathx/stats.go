package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), or 0 when
// len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RMS returns sqrt(mean(x²)), the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs (average of middle two for even length).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Summary bundles the descriptive statistics the experiment tables report.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	RMS    float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		RMS:    RMS(xs),
		Min:    min,
		Median: Median(xs),
		P90:    Percentile(xs, 90),
		Max:    max,
	}
}

// CDF returns the empirical cumulative distribution of xs evaluated at the
// given thresholds: out[i] = fraction of xs ≤ thresholds[i].
func CDF(xs, thresholds []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(t, math.Inf(1)))) / float64(len(s))
		if len(s) == 0 {
			out[i] = 0
		}
	}
	return out
}

// Linspace returns n evenly spaced values from a to b inclusive. n must be
// at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}
