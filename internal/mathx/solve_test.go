package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func randSPD(rnd *rand.Rand, n int) *Mat {
	// A = BᵀB + n·I is symmetric positive definite.
	b := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rnd.NormFloat64())
		}
	}
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.AddAt(i, i, float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rnd.Intn(8)
		a := randSPD(rnd, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L not lower triangular at (%d,%d)", i, j)
				}
			}
		}
		if diff := l.Mul(l.T()).Sub(a).MaxAbs(); diff > 1e-9*(1+a.MaxAbs()) {
			t.Fatalf("LLᵀ != A, diff = %g", diff)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := Cholesky(a); err == nil {
		t.Error("Cholesky accepted an indefinite matrix")
	}
	if _, err := Cholesky(NewMat(2, 3)); err == nil {
		t.Error("Cholesky accepted a non-square matrix")
	}
}

func TestSolveSPD(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rnd.Intn(8)
		a := randSPD(rnd, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rnd.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := SolveSPD(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !AlmostEqual(got[i], want[i], 1e-8) {
				t.Fatalf("solution mismatch at %d: got %v want %v", i, got[i], want[i])
			}
		}
	}
}

func TestSolveLinearGeneral(t *testing.T) {
	// A non-symmetric system with a known solution.
	a := MatFromRows([][]float64{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	got, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Inputs must be unmodified.
	if a.At(0, 0) != 0 || b[0] != a.MulVec(want)[0] {
		t.Error("SolveLinear modified its inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular system did not error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: the LS solution is the exact one.
	a := MatFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	want := []float64{2, -3}
	b := a.MulVec(want)
	got, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !AlmostEqual(got[i], want[i], 1e-10) {
			t.Fatalf("x = %v", got)
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// For the LS minimizer, Aᵀ(Ax − b) ≈ 0.
	rnd := rand.New(rand.NewSource(5))
	a := NewMat(12, 3)
	b := make([]float64, 12)
	for i := 0; i < 12; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rnd.NormFloat64())
		}
		b[i] = rnd.NormFloat64()
	}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	ax := a.MulVec(x)
	r := make([]float64, len(b))
	for i := range b {
		r[i] = ax[i] - b[i]
	}
	g := a.T().MulVec(r)
	for i, v := range g {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("gradient[%d] = %v, not orthogonal", i, v)
		}
	}
}

func TestLeastSquaresDegenerateGeometryDamped(t *testing.T) {
	// Collinear design matrix: undamped normal equations are singular, but a
	// small lambda must still produce a finite answer.
	a := MatFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	b := []float64{1, 2, 3}
	x, err := LeastSquares(a, b, 1e-6)
	if err != nil {
		t.Fatalf("damped LS failed: %v", err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solution %v", x)
		}
	}
}

func TestLeastSquaresShapeErrors(t *testing.T) {
	if _, err := LeastSquares(NewMat(2, 3), []float64{1, 2}, 0); err == nil {
		t.Error("accepted underdetermined system")
	}
	if _, err := LeastSquares(NewMat(3, 2), []float64{1, 2}, 0); err == nil {
		t.Error("accepted mismatched b")
	}
}

func TestInvertSPD(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rnd.Intn(10)
		a := randSPD(rnd, n)
		inv, err := InvertSPD(a)
		if err != nil {
			t.Fatal(err)
		}
		if diff := a.Mul(inv).Sub(Identity(n)).MaxAbs(); diff > 1e-8 {
			t.Fatalf("A·A⁻¹ deviates from I by %g", diff)
		}
		// The inverse of an SPD matrix is symmetric.
		if !inv.IsSymmetric(1e-8 * (1 + inv.MaxAbs())) {
			t.Fatal("inverse not symmetric")
		}
	}
	// Indefinite input rejected.
	if _, err := InvertSPD(MatFromRows([][]float64{{1, 2}, {2, 1}})); err == nil {
		t.Error("indefinite matrix accepted")
	}
}
