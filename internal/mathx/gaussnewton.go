package mathx

import (
	"errors"
	"math"
)

// Residualer describes a nonlinear least-squares problem: given parameters x
// it fills residuals r and the Jacobian J (rows = residuals, cols = params).
// Eval must tolerate any finite x and report residual count via Dims.
type Residualer interface {
	// Dims returns (number of residuals, number of parameters).
	Dims() (nr, np int)
	// Eval fills r (length nr) and jac (nr×np) at parameter vector x.
	Eval(x []float64, r []float64, jac *Mat)
}

// GNOptions tunes GaussNewton.
type GNOptions struct {
	// MaxIter caps the number of Gauss-Newton iterations (default 50).
	MaxIter int
	// Tol stops iterating when the step norm falls below it (default 1e-9).
	Tol float64
	// Damping is the initial Levenberg-Marquardt lambda (default 1e-3).
	// Set to 0 for pure Gauss-Newton.
	Damping float64
}

func (o GNOptions) withDefaults() GNOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.Damping < 0 {
		o.Damping = 0
	}
	return o
}

// GaussNewton minimizes ½‖r(x)‖² starting from x0 using the damped
// Gauss-Newton (Levenberg-Marquardt) method. It returns the solution, the
// final sum of squared residuals, and the number of iterations performed.
//
// The solve is robust to rank-deficient Jacobians (degenerate anchor
// geometries): damping is raised until a step reduces the cost, and the
// method returns the best point seen if no productive step exists.
func GaussNewton(p Residualer, x0 []float64, opt GNOptions) (x []float64, cost float64, iters int, err error) {
	opt = opt.withDefaults()
	nr, np := p.Dims()
	if len(x0) != np {
		return nil, 0, 0, errors.New("mathx: GaussNewton initial point has wrong length")
	}
	if nr < 1 {
		return nil, 0, 0, errors.New("mathx: GaussNewton needs at least one residual")
	}

	x = make([]float64, np)
	copy(x, x0)
	r := make([]float64, nr)
	jac := NewMat(nr, np)

	eval := func(at []float64) float64 {
		p.Eval(at, r, jac)
		s := 0.0
		for _, v := range r {
			s += v * v
		}
		return 0.5 * s
	}

	lambda := opt.Damping
	if lambda == 0 {
		lambda = 1e-12 // still regularize pivots minimally
	}
	cost = eval(x)

	trial := make([]float64, np)
	for iters = 0; iters < opt.MaxIter; iters++ {
		// Normal equations: (JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr.
		jt := jac.T()
		jtj := jt.Mul(jac)
		g := jt.MulVec(r)
		for i := range g {
			g[i] = -g[i]
		}

		stepTaken := false
		for attempt := 0; attempt < 12; attempt++ {
			h := jtj.Clone()
			for i := 0; i < np; i++ {
				d := h.At(i, i)
				h.AddAt(i, i, lambda*math.Max(d, 1e-9))
			}
			delta, serr := SolveSPD(h, g)
			if serr != nil {
				lambda *= 10
				continue
			}
			stepNorm := 0.0
			for i := range delta {
				trial[i] = x[i] + delta[i]
				stepNorm += delta[i] * delta[i]
			}
			stepNorm = math.Sqrt(stepNorm)
			newCost := eval(trial)
			if newCost < cost {
				copy(x, trial)
				cost = newCost
				lambda = math.Max(lambda*0.3, 1e-12)
				stepTaken = true
				if stepNorm < opt.Tol {
					// Re-evaluate at x so r/jac are consistent, then stop.
					cost = eval(x)
					return x, 2 * cost, iters + 1, nil
				}
				break
			}
			lambda *= 10
		}
		if !stepTaken {
			break
		}
		// eval(trial) left r/jac at the accepted point already.
	}
	cost = eval(x)
	return x, 2 * cost, iters, nil
}
