// Package mathx provides the small dense linear-algebra, geometry-adjacent
// and statistics kernels that the wsnloc library is built on.
//
// The package is deliberately self-contained (standard library only) and
// tuned for the problem sizes that show up in sensor-network localization:
// 2-D vectors, matrices up to a few hundred rows (multilateration design
// matrices, MDS double-centered Gram matrices), and summary statistics over
// a few thousand samples. Everything is allocation-conscious but favors
// clarity over micro-optimization; the hot loops of the localization solver
// itself live in internal/bayes.
package mathx

import (
	"fmt"
	"math"
)

// Vec2 is a point or displacement in the 2-D deployment plane. Units are
// meters throughout the library.
type Vec2 struct {
	X, Y float64
}

// V2 is shorthand for constructing a Vec2.
func V2(x, y float64) Vec2 { return Vec2{X: x, Y: y} }

// Add returns v + u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v − u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{s * v.X, s * v.Y} }

// Dot returns the inner product v·u.
func (v Vec2) Dot(u Vec2) float64 { return v.X*u.X + v.Y*u.Y }

// Cross returns the scalar (z-component) cross product v × u.
func (v Vec2) Cross(u Vec2) float64 { return v.X*u.Y - v.Y*u.X }

// Norm returns the Euclidean length ‖v‖.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length ‖v‖².
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance ‖v − u‖.
func (v Vec2) Dist(u Vec2) float64 { return math.Hypot(v.X-u.X, v.Y-u.Y) }

// Dist2 returns the squared Euclidean distance ‖v − u‖².
func (v Vec2) Dist2(u Vec2) float64 {
	dx, dy := v.X-u.X, v.Y-u.Y
	return dx*dx + dy*dy
}

// Unit returns v/‖v‖, or the zero vector if v is (numerically) zero.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n < 1e-300 {
		return Vec2{}
	}
	return Vec2{v.X / n, v.Y / n}
}

// Lerp linearly interpolates from v to u: (1−t)·v + t·u.
func (v Vec2) Lerp(u Vec2, t float64) Vec2 {
	return Vec2{v.X + t*(u.X-v.X), v.Y + t*(u.Y-v.Y)}
}

// Rotate returns v rotated by theta radians counter-clockwise about the
// origin.
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{c*v.X - s*v.Y, s*v.X + c*v.Y}
}

// Angle returns the angle of v in radians in (−π, π], measured from +X.
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// IsFinite reports whether both coordinates are finite numbers.
func (v Vec2) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0)
}

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.3f, %.3f)", v.X, v.Y) }

// Centroid returns the arithmetic mean of the given points. It returns the
// zero vector for an empty slice.
func Centroid(pts []Vec2) Vec2 {
	if len(pts) == 0 {
		return Vec2{}
	}
	var s Vec2
	for _, p := range pts {
		s = s.Add(p)
	}
	return s.Scale(1 / float64(len(pts)))
}

// WeightedCentroid returns Σ wᵢ·pᵢ / Σ wᵢ. Weights must be non-negative; if
// the total weight is zero it falls back to the unweighted centroid.
func WeightedCentroid(pts []Vec2, w []float64) Vec2 {
	if len(pts) == 0 {
		return Vec2{}
	}
	if len(pts) != len(w) {
		panic("mathx: WeightedCentroid length mismatch")
	}
	var s Vec2
	var tot float64
	for i, p := range pts {
		s = s.Add(p.Scale(w[i]))
		tot += w[i]
	}
	if tot <= 0 {
		return Centroid(pts)
	}
	return s.Scale(1 / tot)
}
