package radio

import (
	"math"
	"testing"

	"wsnloc/internal/rng"
)

func TestTOAGaussianMoments(t *testing.T) {
	g := TOAGaussian{R: 10, SigmaFrac: 0.1}
	stream := rng.New(1)
	const d, n = 8.0, 50000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		m := g.Measure(d, stream)
		if m < 0 {
			t.Fatal("negative measurement")
		}
		sum += m
		sum2 += m * m
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-d) > 0.02 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(sd-1.0) > 0.02 { // sigma = 0.1*10 = 1
		t.Errorf("sd = %v", sd)
	}
}

func TestTOALikelihoodPeaksAtTruth(t *testing.T) {
	g := TOAGaussian{R: 10, SigmaFrac: 0.1}
	meas := 7.0
	peak := g.Likelihood(meas, meas)
	for _, d := range []float64{5, 6, 8, 9, 12} {
		if g.Likelihood(meas, d) >= peak {
			t.Errorf("likelihood at %v not below peak", d)
		}
	}
}

func TestTOAZeroSigmaFloor(t *testing.T) {
	g := TOAGaussian{R: 10} // SigmaFrac and SigmaAbs zero → floor kicks in
	if g.Sigma(5) <= 0 {
		t.Error("sigma floor missing")
	}
	if l := g.Likelihood(5, 5); math.IsInf(l, 0) || math.IsNaN(l) {
		t.Error("degenerate likelihood not finite")
	}
}

func TestRSSILogNormal(t *testing.T) {
	r := RSSILogNormal{Eta: 3, SigmaDB: 4}
	stream := rng.New(2)
	const d, n = 10.0, 50000
	sumLog := 0.0
	for i := 0; i < n; i++ {
		m := r.Measure(d, stream)
		if m <= 0 {
			t.Fatal("non-positive RSSI distance")
		}
		sumLog += math.Log(m)
	}
	// ln d̂ is unbiased around ln d.
	if got := sumLog / n; math.Abs(got-math.Log(d)) > 0.01 {
		t.Errorf("mean log = %v, want %v", got, math.Log(d))
	}
	// Multiplicative noise: Sigma grows with distance.
	if r.Sigma(20) <= r.Sigma(10) {
		t.Error("RSSI sigma not increasing with distance")
	}
	// Likelihood integrates finite mass and peaks near the truth.
	if r.Likelihood(10, 10) <= r.Likelihood(10, 30) {
		t.Error("likelihood ordering wrong")
	}
	if r.Measure(0, stream) != 0 {
		t.Error("zero-distance measurement wrong")
	}
	if r.Likelihood(5, 0) != 0 || r.Likelihood(0, 0) != 1 {
		t.Error("degenerate likelihood wrong")
	}
}

func TestNLOSBiasIsPositive(t *testing.T) {
	base := TOAGaussian{R: 10, SigmaFrac: 0.05}
	n := NLOS{Base: base, Prob: 1.0, MeanBias: 3}
	stream := rng.New(3)
	const d, trials = 10.0, 20000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += n.Measure(d, stream)
	}
	mean := sum / trials
	if mean < d+2.5 || mean > d+3.5 { // bias mean 3
		t.Errorf("NLOS mean = %v, want ~13", mean)
	}
}

func TestNLOSLikelihoodMixture(t *testing.T) {
	base := TOAGaussian{R: 10, SigmaFrac: 0.05}
	n := NLOS{Base: base, Prob: 0.3, MeanBias: 3}
	// A measurement well above the true distance is far more plausible under
	// the NLOS mixture than under the pure Gaussian.
	meas, truth := 14.0, 10.0
	if n.Likelihood(meas, truth) <= base.Likelihood(meas, truth) {
		t.Error("mixture does not explain positive bias better")
	}
	// Prob = 0 must reduce exactly to the base likelihood.
	n0 := NLOS{Base: base, Prob: 0, MeanBias: 3}
	if n0.Likelihood(meas, truth) != base.Likelihood(meas, truth) {
		t.Error("zero-prob NLOS deviates from base")
	}
	if n0.Sigma(10) != base.Sigma(10) {
		t.Error("sigma passthrough wrong")
	}
}

func TestHopRanger(t *testing.T) {
	h := HopRanger{R: 10}
	if h.Measure(3, nil) != 10 {
		t.Error("hop ranger must report R")
	}
	// Flat within range, tiny beyond.
	if h.Likelihood(10, 5) != 1 || h.Likelihood(10, 9.99) != 1 {
		t.Error("in-range likelihood not flat")
	}
	if h.Likelihood(10, 12) > 1e-6 {
		t.Error("out-of-range likelihood too large")
	}
	if h.Sigma(5) <= 0 {
		t.Error("sigma must be positive")
	}
	// Soft edge is monotone.
	if h.Likelihood(10, 10.1) <= h.Likelihood(10, 10.4) {
		t.Error("edge not monotone")
	}
}

func TestRangersInterfaceContract(t *testing.T) {
	rangers := []Ranger{
		TOAGaussian{R: 10, SigmaFrac: 0.1},
		RSSILogNormal{Eta: 3, SigmaDB: 4},
		NLOS{Base: TOAGaussian{R: 10, SigmaFrac: 0.1}, Prob: 0.2, MeanBias: 2},
		HopRanger{R: 10},
	}
	stream := rng.New(4)
	for i, rg := range rangers {
		for trial := 0; trial < 200; trial++ {
			d := stream.Uniform(0, 20)
			m := rg.Measure(d, stream)
			if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
				t.Fatalf("ranger %d: bad measurement %v", i, m)
			}
			l := rg.Likelihood(m, d)
			if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("ranger %d: bad likelihood %v", i, l)
			}
		}
		if rg.Sigma(10) <= 0 {
			t.Fatalf("ranger %d: non-positive sigma", i)
		}
	}
}
