// Package radio models wireless propagation and ranging for the wsnloc
// simulator. The ICPP-2007-era evaluation testbeds this library substitutes
// for used CC1000/CC2420-class radios; per the reproduction's substitution
// rule we model them with the standard analytical families of that
// literature:
//
//   - Unit disk: perfect connectivity within range R (the textbook model).
//   - Quasi-UDG and DOI: irregular connectivity regions.
//   - Log-normal shadowing: probabilistic connectivity with dB-scale noise.
//
// Propagation models answer "are nodes i and j connected, and with what
// packet-reception rate?"; ranging models (ranging.go) answer "what distance
// estimate does a connected pair measure, and what is its likelihood?".
package radio

import (
	"math"

	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// Propagation decides link existence between node positions. Implementations
// must be deterministic given the same Stream state, so topologies are
// reproducible.
type Propagation interface {
	// Connected reports whether a link exists from a to b. Models with
	// random components draw from stream; deterministic models ignore it.
	// Connectivity is symmetric: implementations must return the same value
	// for (a, b) and (b, a) given equivalent stream state, and the topology
	// builder only evaluates each unordered pair once.
	Connected(a, b mathx.Vec2, stream *rng.Stream) bool
	// PRR returns the long-run packet reception rate at distance d, in
	// [0, 1]. It is the smooth curve behind Connected and doubles as the
	// negative-evidence likelihood P(link | distance) in the Bayesian model.
	PRR(d float64) float64
	// MaxRange returns a distance beyond which PRR is (numerically) zero.
	// The topology builder uses it to prune the candidate-pair search.
	MaxRange() float64
}

// UnitDisk is the classical binary disk model: connected iff distance ≤ R.
type UnitDisk struct {
	R float64
}

// Connected implements Propagation.
func (u UnitDisk) Connected(a, b mathx.Vec2, _ *rng.Stream) bool {
	return a.Dist2(b) <= u.R*u.R
}

// PRR implements Propagation: a step function at R. A narrow linear ramp
// (2% of R) keeps the negative-evidence potential Lipschitz so grid-based
// inference does not alias.
func (u UnitDisk) PRR(d float64) float64 {
	edge := 0.02 * u.R
	switch {
	case d <= u.R-edge:
		return 1
	case d >= u.R+edge:
		return 0
	default:
		return (u.R + edge - d) / (2 * edge)
	}
}

// MaxRange implements Propagation.
func (u UnitDisk) MaxRange() float64 { return u.R * 1.02 }

// QuasiUDG connects pairs closer than RMin always, farther than RMax never,
// and in between with probability falling linearly — the standard
// quasi-unit-disk graph.
type QuasiUDG struct {
	RMin, RMax float64
}

// Connected implements Propagation.
func (q QuasiUDG) Connected(a, b mathx.Vec2, stream *rng.Stream) bool {
	d := a.Dist(b)
	p := q.PRR(d)
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return stream.Bool(p)
}

// PRR implements Propagation.
func (q QuasiUDG) PRR(d float64) float64 {
	switch {
	case d <= q.RMin:
		return 1
	case d >= q.RMax:
		return 0
	default:
		return (q.RMax - d) / (q.RMax - q.RMin)
	}
}

// MaxRange implements Propagation.
func (q QuasiUDG) MaxRange() float64 { return q.RMax }

// LogNormalShadow is log-normal shadowing: received power at distance d is
// P(d) = P₀ − 10·η·log₁₀(d/d₀) + X, X ~ N(0, σdB²); a link exists when the
// power clears the receiver threshold. R is the nominal (median) range — the
// distance at which the mean power equals the threshold.
type LogNormalShadow struct {
	R       float64 // median connectivity range
	Eta     float64 // path-loss exponent (2 free space … 4 indoor)
	SigmaDB float64 // shadowing standard deviation in dB
}

// marginDB returns the mean link margin in dB at distance d (positive inside
// the nominal range).
func (l LogNormalShadow) marginDB(d float64) float64 {
	if d <= 0 {
		return math.Inf(1)
	}
	return -10 * l.Eta * math.Log10(d/l.R)
}

// Connected implements Propagation: the shadowing term is drawn per pair.
func (l LogNormalShadow) Connected(a, b mathx.Vec2, stream *rng.Stream) bool {
	d := a.Dist(b)
	if d == 0 {
		return true
	}
	x := stream.Normal(0, l.SigmaDB)
	return l.marginDB(d)+x >= 0
}

// PRR implements Propagation: P(margin + X ≥ 0) = Φ(margin/σ).
func (l LogNormalShadow) PRR(d float64) float64 {
	if l.SigmaDB <= 0 {
		if d <= l.R {
			return 1
		}
		return 0
	}
	return mathx.NormalCDF(l.marginDB(d), 0, l.SigmaDB)
}

// MaxRange implements Propagation: the distance at which PRR falls below
// 10⁻³ (about 3.1σ of margin).
func (l LogNormalShadow) MaxRange() float64 {
	if l.SigmaDB <= 0 {
		return l.R
	}
	// margin(d) = −3.1σ  ⇒  d = R·10^(3.1σ / (10η)).
	return l.R * math.Pow(10, 3.1*l.SigmaDB/(10*l.Eta))
}

// DOI is the "degree of irregularity" model: the effective range varies with
// the bearing from transmitter to receiver by up to ±DOI·R per degree of
// angular change, producing a jagged star-shaped coverage region. The
// per-node irregularity pattern is deterministic in the node's position so
// that connectivity remains symmetric and reproducible.
type DOI struct {
	R   float64 // nominal range
	DOI float64 // per-degree range variation coefficient (0 = unit disk)
}

// rangeAt returns the effective range for an (unordered) pair, derived from
// a hash of the pair's midpoint so both directions agree.
func (m DOI) rangeAt(a, b mathx.Vec2) float64 {
	if m.DOI <= 0 {
		return m.R
	}
	mid := a.Add(b).Scale(0.5)
	bearing := b.Sub(a).Angle()
	if bearing < 0 {
		bearing += math.Pi // fold so (a,b) and (b,a) agree
	}
	// Deterministic pseudo-noise from midpoint and bearing sector.
	sector := math.Floor(bearing / (math.Pi / 180)) // 1-degree sectors
	h := math.Sin(mid.X*12.9898+mid.Y*78.233+sector*0.01745) * 43758.5453
	u := h - math.Floor(h) // in [0,1)
	// Range varies within [R·(1−k), R·(1+k)] where k grows with DOI. The
	// classical model accumulates ±DOI per degree; a random walk over 360
	// degrees has spread ≈ DOI·√360 ≈ 19·DOI, which we cap at 40%.
	k := math.Min(19*m.DOI, 0.4)
	return m.R * (1 - k + 2*k*u)
}

// Connected implements Propagation.
func (m DOI) Connected(a, b mathx.Vec2, _ *rng.Stream) bool {
	r := m.rangeAt(a, b)
	return a.Dist2(b) <= r*r
}

// PRR implements Propagation: marginalizing the uniform range perturbation
// gives a linear ramp between R·(1−k) and R·(1+k).
func (m DOI) PRR(d float64) float64 {
	k := math.Min(19*m.DOI, 0.4)
	lo, hi := m.R*(1-k), m.R*(1+k)
	switch {
	case d <= lo:
		return 1
	case d >= hi:
		return 0
	default:
		return (hi - d) / (hi - lo)
	}
}

// MaxRange implements Propagation.
func (m DOI) MaxRange() float64 {
	k := math.Min(19*m.DOI, 0.4)
	return m.R * (1 + k)
}
