package radio

import (
	"math"
	"testing"

	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

func TestUnitDisk(t *testing.T) {
	u := UnitDisk{R: 10}
	a := mathx.V2(0, 0)
	if !u.Connected(a, mathx.V2(10, 0), nil) {
		t.Error("boundary not connected")
	}
	if u.Connected(a, mathx.V2(10.01, 0), nil) {
		t.Error("beyond range connected")
	}
	if u.PRR(5) != 1 || u.PRR(20) != 0 {
		t.Error("PRR plateau/floor wrong")
	}
	if u.MaxRange() < 10 {
		t.Error("MaxRange below R")
	}
}

func TestPRRMonotoneNonIncreasing(t *testing.T) {
	models := map[string]Propagation{
		"unitdisk": UnitDisk{R: 10},
		"qudg":     QuasiUDG{RMin: 7, RMax: 13},
		"shadow":   LogNormalShadow{R: 10, Eta: 3, SigmaDB: 4},
		"doi":      DOI{R: 10, DOI: 0.1},
	}
	for name, m := range models {
		prev := math.Inf(1)
		for d := 0.1; d < 30; d += 0.1 {
			p := m.PRR(d)
			if p < 0 || p > 1 {
				t.Fatalf("%s: PRR(%v) = %v out of [0,1]", name, d, p)
			}
			if p > prev+1e-12 {
				t.Fatalf("%s: PRR increased at d=%v", name, d)
			}
			prev = p
		}
		if m.PRR(m.MaxRange()+0.01) > 1e-3 {
			t.Errorf("%s: PRR beyond MaxRange = %v", name, m.PRR(m.MaxRange()+0.01))
		}
	}
}

func TestQuasiUDG(t *testing.T) {
	q := QuasiUDG{RMin: 5, RMax: 15}
	stream := rng.New(1)
	a := mathx.V2(0, 0)
	if !q.Connected(a, mathx.V2(4, 0), stream) {
		t.Error("inside RMin not connected")
	}
	if q.Connected(a, mathx.V2(16, 0), stream) {
		t.Error("beyond RMax connected")
	}
	// Midpoint should connect ~50% of the time.
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if q.Connected(a, mathx.V2(10, 0), stream) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.5) > 0.02 {
		t.Errorf("mid-zone connection rate = %v", p)
	}
}

func TestLogNormalShadow(t *testing.T) {
	l := LogNormalShadow{R: 10, Eta: 3, SigmaDB: 4}
	// At the median range, PRR must be 0.5.
	if p := l.PRR(10); !mathx.AlmostEqual(p, 0.5, 1e-9) {
		t.Errorf("PRR(R) = %v", p)
	}
	// Close in, almost certain; far out, almost never.
	if l.PRR(3) < 0.99 {
		t.Errorf("PRR(3) = %v", l.PRR(3))
	}
	if l.PRR(30) > 0.01 {
		t.Errorf("PRR(30) = %v", l.PRR(30))
	}
	// Empirical connection rate at distance d matches PRR(d).
	stream := rng.New(2)
	a, b := mathx.V2(0, 0), mathx.V2(12, 0)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if l.Connected(a, b, stream) {
			hits++
		}
	}
	want := l.PRR(12)
	if got := float64(hits) / n; math.Abs(got-want) > 0.02 {
		t.Errorf("empirical PRR = %v, analytic %v", got, want)
	}
	// Zero-sigma degenerates to unit disk.
	hard := LogNormalShadow{R: 10, Eta: 3, SigmaDB: 0}
	if hard.PRR(9.9) != 1 || hard.PRR(10.1) != 0 {
		t.Error("zero-sigma shadowing not a step")
	}
	if hard.MaxRange() != 10 {
		t.Error("zero-sigma MaxRange wrong")
	}
}

func TestDOISymmetricAndBounded(t *testing.T) {
	m := DOI{R: 10, DOI: 0.1}
	stream := rng.New(3)
	for i := 0; i < 500; i++ {
		a := mathx.V2(stream.Uniform(0, 100), stream.Uniform(0, 100))
		b := mathx.V2(stream.Uniform(0, 100), stream.Uniform(0, 100))
		if m.Connected(a, b, nil) != m.Connected(b, a, nil) {
			t.Fatalf("asymmetric connectivity for %v—%v", a, b)
		}
	}
	// Within the guaranteed inner disk, always connected.
	k := math.Min(19*0.1, 0.4)
	inner := 10 * (1 - k)
	if !m.Connected(mathx.V2(0, 0), mathx.V2(inner*0.99, 0), nil) {
		t.Error("inner disk not connected")
	}
	// Beyond the outer bound, never connected.
	outer := 10 * (1 + k)
	if m.Connected(mathx.V2(0, 0), mathx.V2(outer*1.01, 0), nil) {
		t.Error("outside outer bound connected")
	}
	// DOI=0 degenerates to unit disk.
	u := DOI{R: 10, DOI: 0}
	if !u.Connected(mathx.V2(0, 0), mathx.V2(10, 0), nil) || u.Connected(mathx.V2(0, 0), mathx.V2(10.01, 0), nil) {
		t.Error("DOI=0 is not a unit disk")
	}
}
