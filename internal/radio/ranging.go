package radio

import (
	"math"

	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// Ranger models a distance-measurement modality over an established link.
// Measure draws a noisy estimate for a true distance; Likelihood evaluates
// p(measured | hypothetical true distance), the pairwise evidence term of
// the Bayesian network.
type Ranger interface {
	// Measure returns a noisy distance estimate for true distance d ≥ 0.
	// Estimates are clamped to be non-negative.
	Measure(d float64, stream *rng.Stream) float64
	// Likelihood returns p(meas | trueDist), up to a constant factor shared
	// across hypotheses (beliefs are renormalized anyway).
	Likelihood(meas, trueDist float64) float64
	// Sigma returns the measurement standard deviation at distance d, used
	// by weighting heuristics in the least-squares baseline.
	Sigma(d float64) float64
}

// TOAGaussian is time-of-arrival ranging with additive Gaussian noise whose
// standard deviation is SigmaFrac·R + SigmaAbs (distance-independent).
type TOAGaussian struct {
	R         float64 // nominal radio range, scales the relative term
	SigmaFrac float64 // noise as a fraction of R (typical: 0.05–0.5)
	SigmaAbs  float64 // absolute noise floor in meters
}

// Sigma implements Ranger.
func (g TOAGaussian) Sigma(float64) float64 {
	s := g.SigmaFrac*g.R + g.SigmaAbs
	if s <= 0 {
		s = 1e-6
	}
	return s
}

// Measure implements Ranger.
func (g TOAGaussian) Measure(d float64, stream *rng.Stream) float64 {
	m := d + stream.Normal(0, g.Sigma(d))
	if m < 0 {
		m = 0
	}
	return m
}

// Likelihood implements Ranger.
func (g TOAGaussian) Likelihood(meas, trueDist float64) float64 {
	return mathx.NormalPDF(meas, trueDist, g.Sigma(trueDist))
}

// RSSILogNormal is received-signal-strength ranging: the dB error of the
// path-loss inversion is Gaussian, so the distance estimate is log-normally
// distributed around the true distance — multiplicative noise whose spread
// grows with distance, the realistic regime for RSSI localization.
type RSSILogNormal struct {
	Eta     float64 // path-loss exponent
	SigmaDB float64 // shadowing std in dB
}

// sigmaLog returns the standard deviation of ln(d̂/d).
func (r RSSILogNormal) sigmaLog() float64 {
	// d̂ = d·10^(X/(10η)), X ~ N(0, σdB²) ⇒ ln d̂ = ln d + X·ln10/(10η).
	s := r.SigmaDB * math.Ln10 / (10 * r.Eta)
	if s <= 0 {
		s = 1e-6
	}
	return s
}

// Sigma implements Ranger: the approximate linear-scale std at distance d.
func (r RSSILogNormal) Sigma(d float64) float64 {
	sl := r.sigmaLog()
	return d * math.Sqrt(math.Exp(sl*sl)-1) * math.Exp(sl*sl/2)
}

// Measure implements Ranger.
func (r RSSILogNormal) Measure(d float64, stream *rng.Stream) float64 {
	if d <= 0 {
		return 0
	}
	return d * math.Exp(stream.Normal(0, r.sigmaLog()))
}

// Likelihood implements Ranger.
func (r RSSILogNormal) Likelihood(meas, trueDist float64) float64 {
	if trueDist <= 0 {
		if meas <= 0 {
			return 1
		}
		return 0
	}
	return mathx.LogNormalPDF(meas, math.Log(trueDist), r.sigmaLog())
}

// NLOS wraps a base ranger with sporadic non-line-of-sight excess delay: with
// probability Prob a positive bias ~ Exponential(1/MeanBias) is added. Its
// Likelihood is the correct two-component mixture, so Bayesian algorithms
// that know the NLOS statistics stay calibrated while baselines that assume
// pure Gaussian noise suffer — one of the effects the pre-knowledge
// experiments probe.
type NLOS struct {
	Base     Ranger
	Prob     float64 // probability a measurement is NLOS-corrupted
	MeanBias float64 // mean of the exponential excess distance
}

// Sigma implements Ranger (the base spread; bias widens the true error but
// baselines have no better information).
func (n NLOS) Sigma(d float64) float64 { return n.Base.Sigma(d) }

// Measure implements Ranger.
func (n NLOS) Measure(d float64, stream *rng.Stream) float64 {
	m := n.Base.Measure(d, stream)
	if n.Prob > 0 && stream.Bool(n.Prob) {
		m += stream.Exponential(1 / n.MeanBias)
	}
	return m
}

// Likelihood implements Ranger: (1−p)·L₀(m|d) + p·∫ L₀(m−b|d)·Exp(b) db,
// with the convolution integral evaluated by 16-point quadrature.
func (n NLOS) Likelihood(meas, trueDist float64) float64 {
	l0 := n.Base.Likelihood(meas, trueDist)
	if n.Prob <= 0 {
		return l0
	}
	// Quadrature over the exponential bias b ∈ (0, 5·MeanBias].
	const k = 16
	sum := 0.0
	db := 5 * n.MeanBias / k
	for i := 0; i < k; i++ {
		b := (float64(i) + 0.5) * db
		w := math.Exp(-b/n.MeanBias) / n.MeanBias
		sum += n.Base.Likelihood(meas-b, trueDist) * w * db
	}
	return (1-n.Prob)*l0 + n.Prob*sum
}

// HopRanger is the degenerate "ranging" used by connectivity-only
// algorithms: every measured link reports the nominal range R (the expected
// distance bound), with a boxy likelihood that is flat within [0, R]. It
// lets the Bayesian machinery run in range-free mode.
type HopRanger struct {
	R float64
}

// Sigma implements Ranger.
func (h HopRanger) Sigma(float64) float64 { return h.R / math.Sqrt(12) }

// IsConnectivityOnly marks this ranger as range-free so inference code can
// widen its message kernels to the full radio range.
func (h HopRanger) IsConnectivityOnly() bool { return true }

// Measure implements Ranger.
func (h HopRanger) Measure(float64, *rng.Stream) float64 { return h.R }

// Likelihood implements Ranger: connected pairs are roughly uniformly
// distributed within range, with a soft edge of 5% R.
func (h HopRanger) Likelihood(_, trueDist float64) float64 {
	edge := 0.05 * h.R
	switch {
	case trueDist <= h.R:
		return 1
	case trueDist >= h.R+edge:
		return 1e-9
	default:
		return (h.R + edge - trueDist) / edge
	}
}
