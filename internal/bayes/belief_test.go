package bayes

import (
	"math"
	"testing"
	"testing/quick"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

func testGrid() *geom.Grid {
	return geom.NewGrid(geom.NewRect(0, 0, 100, 100), 20, 20)
}

func TestNewUniform(t *testing.T) {
	b := NewUniform(testGrid())
	if !mathx.AlmostEqual(b.Mass(), 1, 1e-12) {
		t.Fatalf("mass = %v", b.Mass())
	}
	// Mean of a uniform belief is the grid center.
	if m := b.Mean(); !mathx.AlmostEqual(m.X, 50, 1e-9) || !mathx.AlmostEqual(m.Y, 50, 1e-9) {
		t.Errorf("mean = %v", m)
	}
	if h := b.Entropy(); !mathx.AlmostEqual(h, math.Log(400), 1e-9) {
		t.Errorf("entropy = %v, want ln(400)", h)
	}
}

func TestNewDelta(t *testing.T) {
	g := testGrid()
	p := mathx.V2(33, 71)
	b := NewDelta(g, p)
	if !mathx.AlmostEqual(b.Mass(), 1, 1e-12) {
		t.Fatal("delta not normalized")
	}
	if b.Entropy() != 0 {
		t.Errorf("delta entropy = %v", b.Entropy())
	}
	// Mean is the containing cell center (within half a cell of p).
	if b.Mean().Dist(p) > g.CellDiag()/2 {
		t.Errorf("delta mean %v too far from %v", b.Mean(), p)
	}
	if b.MAP() != b.Mean() {
		t.Error("delta MAP != mean")
	}
	if b.Spread() != 0 {
		t.Errorf("delta spread = %v", b.Spread())
	}
}

func TestNewFromFunc(t *testing.T) {
	g := testGrid()
	mu := mathx.V2(40, 60)
	b, err := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return math.Exp(-p.Dist2(mu) / (2 * 25))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(b.Mass(), 1, 1e-12) {
		t.Fatal("not normalized")
	}
	if b.Mean().Dist(mu) > 2 {
		t.Errorf("gaussian mean = %v", b.Mean())
	}
	if b.MAP().Dist(mu) > g.CellDiag() {
		t.Errorf("gaussian MAP = %v", b.MAP())
	}
	// Zero-mass density errors.
	if _, err := NewFromFunc(g, func(mathx.Vec2) float64 { return 0 }); err == nil {
		t.Error("zero-mass density accepted")
	}
	// Negative/NaN values are sanitized.
	b2, err := NewFromFunc(g, func(p mathx.Vec2) float64 {
		if p.X < 50 {
			return -5
		}
		if p.X < 55 {
			return math.NaN()
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range b2.W {
		if w < 0 || math.IsNaN(w) {
			t.Fatal("sanitization failed")
		}
	}
}

func TestNormalizeFailure(t *testing.T) {
	b := NewUniform(testGrid())
	for i := range b.W {
		b.W[i] = 0
	}
	if b.Normalize() {
		t.Error("zero-mass normalize claimed success")
	}
}

func TestMulAndMulFunc(t *testing.T) {
	g := testGrid()
	left, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
		if p.X < 50 {
			return 1
		}
		return 0
	})
	bottom, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
		if p.Y < 50 {
			return 1
		}
		return 0
	})
	prod := left.Clone()
	prod.Mul(bottom)
	if !prod.Normalize() {
		t.Fatal("product has zero mass")
	}
	// All mass in lower-left quadrant.
	m := prod.Mean()
	if m.X >= 50 || m.Y >= 50 {
		t.Errorf("product mean = %v", m)
	}
	// MulFunc equivalent.
	prod2 := left.Clone()
	prod2.MulFunc(func(p mathx.Vec2) float64 {
		if p.Y < 50 {
			return 1
		}
		return 0
	})
	prod2.Normalize()
	if prod.L1Diff(prod2) > 1e-9 {
		t.Error("Mul and MulFunc disagree")
	}
}

func TestMulFloored(t *testing.T) {
	g := testGrid()
	b := NewUniform(g)
	// A message that is zero everywhere except one cell.
	msg := NewDelta(g, mathx.V2(10, 10))
	// Without flooring, the product would be a delta; with flooring the
	// other cells retain floor-scaled mass.
	floored := b.Clone()
	floored.MulFloored(msg, 0.01)
	floored.Normalize()
	nonzero := 0
	for _, w := range floored.W {
		if w > 0 {
			nonzero++
		}
	}
	if nonzero != g.Cells() {
		t.Errorf("flooring left %d nonzero cells", nonzero)
	}
	// But the delta cell still dominates.
	if floored.MAP().Dist(mathx.V2(10, 10)) > g.CellDiag() {
		t.Errorf("MAP = %v", floored.MAP())
	}
}

func TestSpreadAndEntropyOrdering(t *testing.T) {
	g := testGrid()
	u := NewUniform(g)
	concentrated, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return math.Exp(-p.Dist2(mathx.V2(50, 50)) / (2 * 16))
	})
	if concentrated.Entropy() >= u.Entropy() {
		t.Error("concentrated entropy not below uniform")
	}
	if concentrated.Spread() >= u.Spread() {
		t.Error("concentrated spread not below uniform")
	}
}

func TestL1Diff(t *testing.T) {
	g := testGrid()
	a := NewDelta(g, mathx.V2(10, 10))
	b := NewDelta(g, mathx.V2(90, 90))
	if got := a.L1Diff(b); !mathx.AlmostEqual(got, 2, 1e-12) {
		t.Errorf("disjoint L1 = %v, want 2", got)
	}
	if got := a.L1Diff(a.Clone()); got != 0 {
		t.Errorf("self L1 = %v", got)
	}
}

func TestSupportCoversMass(t *testing.T) {
	g := testGrid()
	b, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return math.Exp(-p.Dist2(mathx.V2(30, 30)) / (2 * 36))
	})
	sup := b.Support(1e-3)
	mass := 0.0
	for _, idx := range sup {
		mass += b.W[idx]
	}
	if mass < 0.999 {
		t.Errorf("support mass = %v", mass)
	}
	if len(sup) >= g.Cells() {
		t.Error("support did not sparsify a concentrated belief")
	}
	// All-zero belief has empty support.
	z := &Belief{Grid: g, W: make([]float64, g.Cells())}
	if len(z.Support(1e-3)) != 0 {
		t.Error("zero belief has support")
	}
}

// Property: for any normalized belief, the support captures at least
// (1−epsilon) of the probability mass — the contract documented on Support.
// Random beliefs mix diffuse noise with concentrated spikes so both regimes
// are pinned.
func TestSupportMassProperty(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 50, 50), 20, 20)
	stream := rng.New(77)
	for _, epsilon := range []float64{1e-1, 1e-2, 1e-3} {
		for trial := 0; trial < 50; trial++ {
			b := &Belief{Grid: g, W: make([]float64, g.Cells())}
			for i := range b.W {
				b.W[i] = stream.Float64()
			}
			for s := 0; s < int(stream.Uint64()%5); s++ {
				b.W[int(stream.Uint64()%uint64(g.Cells()))] += 100 * stream.Float64()
			}
			if !b.Normalize() {
				t.Fatal("random belief has zero mass")
			}
			mass := 0.0
			for _, idx := range b.Support(epsilon) {
				mass += b.W[idx]
			}
			if mass < 1-epsilon {
				t.Fatalf("eps=%g trial %d: support mass %v < %v", epsilon, trial, mass, 1-epsilon)
			}
		}
	}
}

// TestMulFlooredMaxBitIdentical: supplying the cached max must reproduce
// MulFloored exactly — the safety contract of the max-hoisting in
// core.gridNode.recompute.
func TestMulFlooredMaxBitIdentical(t *testing.T) {
	g := testGrid()
	stream := rng.New(13)
	for trial := 0; trial < 20; trial++ {
		msg := &Belief{Grid: g, W: make([]float64, g.Cells())}
		for i := range msg.W {
			msg.W[i] = stream.Float64()
		}
		a := NewUniform(g)
		b := a.Clone()
		a.MulFloored(msg, 2e-3)
		b.MulFlooredMax(msg, 2e-3, msg.Max())
		for i := range a.W {
			if a.W[i] != b.W[i] {
				t.Fatalf("trial %d cell %d: %v vs %v (bit-level)", trial, i, a.W[i], b.W[i])
			}
		}
	}
}

// Property: normalize-then-product-then-normalize keeps mass at 1 for random
// nonnegative beliefs.
func TestNormalizeProductProperty(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 10, 10), 8, 8)
	stream := rng.New(5)
	f := func(seed uint64) bool {
		s := stream.Split(seed)
		a := NewUniform(g)
		b := NewUniform(g)
		for i := range a.W {
			a.W[i] = s.Float64()
			b.W[i] = s.Float64()
		}
		if !a.Normalize() || !b.Normalize() {
			return false
		}
		a.Mul(b)
		if !a.Normalize() {
			return false
		}
		return mathx.AlmostEqual(a.Mass(), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGridMismatchPanics(t *testing.T) {
	a := NewUniform(testGrid())
	b := NewUniform(geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10))
	for i, f := range []func(){
		func() { a.Mul(b) },
		func() { a.MulFloored(b, 0.1) },
		func() { a.L1Diff(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
