package bayes

// FlooredMsg is the compact cached form of a convolved BP message. A node
// caches one convolved message per neighbor across BP rounds; storing those
// caches as dense grids is what dominates per-node memory at scale (degree ×
// cells × 8 bytes per node). FlooredMsg instead bakes MulFloored's damping
// floor in at build time and keeps only the support — the cells above the
// floor — as index/value pairs, falling back to a dense copy when the support
// is too large for the sparse form to pay off.
//
// MulInto(b) is bit-identical to b.MulFlooredMax(src, floor, src.Max()) on
// the source belief the message was compacted from: every cell below
// f = floor·max multiplies by exactly f (the clamp MulFloored applies), and
// every cell at or above f multiplies by its stored value.
type FlooredMsg struct {
	// floor is the absolute damping floor f = floorFrac·max(src): the factor
	// applied to every cell outside the stored support.
	floor float64
	// Sparse form: idx/val hold the cells with weight > floor, in ascending
	// index order.
	idx []int32
	val []float64
	// Dense form: the full weight vector with the floor clamp pre-applied.
	dense   []float64
	isDense bool
	valid   bool
}

// Valid reports whether the message has been compacted from a source belief.
func (m *FlooredMsg) Valid() bool { return m.valid }

// SupportLen returns the number of sparse support cells (0 in dense form) —
// a memory-accounting hook for tests and diagnostics.
func (m *FlooredMsg) SupportLen() int { return len(m.idx) }

// Dense reports whether the message fell back to the dense representation.
func (m *FlooredMsg) Dense() bool { return m.isDense }

// CompactFrom rebuilds m from src with damping floor fraction floorFrac,
// reusing m's buffers so steady-state recompaction is allocation-free once
// the buffers have grown to their working size. The sparse form is chosen
// when it is smaller than the dense copy (12 bytes per support cell versus 8
// per grid cell).
func (m *FlooredMsg) CompactFrom(src *Belief, floorFrac float64) {
	mx := src.Max()
	f := floorFrac * mx
	m.floor = f
	m.valid = true
	cells := len(src.W)
	n := 0
	for _, w := range src.W {
		if w > f {
			n++
		}
	}
	if 3*n > 2*cells {
		m.isDense = true
		m.idx, m.val = m.idx[:0], m.val[:0]
		if cap(m.dense) < cells {
			m.dense = make([]float64, cells)
		}
		m.dense = m.dense[:cells]
		for i, w := range src.W {
			if w < f {
				w = f
			}
			m.dense[i] = w
		}
		return
	}
	m.isDense = false
	m.dense = m.dense[:0]
	if cap(m.idx) < n {
		m.idx = make([]int32, 0, n)
		m.val = make([]float64, 0, n)
	}
	m.idx, m.val = m.idx[:0], m.val[:0]
	for i, w := range src.W {
		if w > f {
			m.idx = append(m.idx, int32(i))
			m.val = append(m.val, w)
		}
	}
}

// MulInto multiplies b pointwise by the floored message (see the type
// comment for the bit-identity contract). b must live on the grid the source
// belief was compacted from.
func (m *FlooredMsg) MulInto(b *Belief) {
	if !m.valid {
		panic("bayes: MulInto on an uncompacted FlooredMsg")
	}
	if m.isDense {
		if len(m.dense) != len(b.W) {
			panic("bayes: MulInto across different grids")
		}
		for i, v := range m.dense {
			b.W[i] *= v
		}
		return
	}
	f := m.floor
	prev := 0
	for k, i32 := range m.idx {
		i := int(i32)
		if i >= len(b.W) {
			panic("bayes: MulInto across different grids")
		}
		for j := prev; j < i; j++ {
			b.W[j] *= f
		}
		b.W[i] *= m.val[k]
		prev = i + 1
	}
	for j := prev; j < len(b.W); j++ {
		b.W[j] *= f
	}
}
