package bayes

import (
	"math"
	"strings"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// scatterReference is the historical per-offset scatter ConvolveInto
// implemented before the row-run compilation — the bit-identity baseline for
// the compiled sparse path, and the "current sparse scatter" side of the
// speedup benchmarks.
func scatterReference(k *RadialKernel, dst, src *Belief, support []int) []int {
	g := k.grid
	for i := range dst.W {
		dst.W[i] = 0
	}
	support = src.AppendSupport(support[:0], SupportEps)
	for _, sIdx := range support {
		ws := src.W[sIdx]
		si, sj := g.Coords(sIdx)
		for _, o := range k.offs {
			ti := si + o.di
			if ti < 0 || ti >= g.NX {
				continue
			}
			tj := sj + o.dj
			if tj < 0 || tj >= g.NY {
				continue
			}
			dst.W[tj*g.NX+ti] += ws * o.w
		}
	}
	return support
}

// randomBelief returns a normalized belief with strictly positive random
// weights plus a few concentrated spikes, so both diffuse mass and sharp
// peaks are exercised.
func randomBelief(g *geom.Grid, stream *rng.Stream) *Belief {
	b := &Belief{Grid: g, W: make([]float64, g.Cells())}
	for i := range b.W {
		b.W[i] = 1e-6 + stream.Float64()
	}
	for s := 0; s < 3; s++ {
		b.W[int(stream.Uint64()%uint64(g.Cells()))] += 50 * stream.Float64()
	}
	if !b.Normalize() {
		panic("random belief has zero mass")
	}
	return b
}

// TestCompiledScatterBitIdentical pins the tentpole's reproducibility
// contract: the row-run compiled sparse path must produce byte-for-byte the
// floats of the historical per-offset scatter, interior and border sources
// alike.
func TestCompiledScatterBitIdentical(t *testing.T) {
	stream := rng.New(41)
	for _, n := range []int{17, 40} {
		g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), n, n)
		k := ringKernel(g)
		for trial := 0; trial < 5; trial++ {
			src := randomBelief(g, stream)
			got := &Belief{Grid: g, W: make([]float64, g.Cells())}
			want := &Belief{Grid: g, W: make([]float64, g.Cells())}
			k.ConvolveInto(got, src, nil)
			scatterReference(k, want, src, nil)
			for i := range got.W {
				if got.W[i] != want.W[i] {
					t.Fatalf("n=%d trial %d: cell %d differs: %v vs %v (bit-level)",
						n, trial, i, got.W[i], want.W[i])
				}
			}
		}
		// A border delta exercises the clipped path specifically.
		src := NewDelta(g, mathx.V2(0.5, 0.5))
		got := &Belief{Grid: g, W: make([]float64, g.Cells())}
		want := &Belief{Grid: g, W: make([]float64, g.Cells())}
		k.ConvolveInto(got, src, nil)
		scatterReference(k, want, src, nil)
		for i := range got.W {
			if got.W[i] != want.W[i] {
				t.Fatalf("n=%d border delta: cell %d differs", n, i)
			}
		}
	}
}

// TestFFTAgreesWithDirect is the acceptance check of the dense path: FFT
// convolution within 1e-9 relative tolerance of the direct (sparse) result,
// cell by cell, relative to the message maximum.
func TestFFTAgreesWithDirect(t *testing.T) {
	stream := rng.New(42)
	for _, n := range []int{20, 40, 64} {
		g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), n, n)
		k := ringKernel(g)
		for trial := 0; trial < 3; trial++ {
			src := randomBelief(g, stream)
			direct := &Belief{Grid: g, W: make([]float64, g.Cells())}
			// The reference uses the full source, not just its support, so
			// the comparison isn't polluted by support-trim mass loss.
			scatterReference(k, direct, src, nil)
			fft := &Belief{Grid: g, W: make([]float64, g.Cells())}
			k.ConvolveFFTInto(fft, src, nil)
			mx := direct.Max()
			if mx <= 0 {
				t.Fatal("degenerate direct message")
			}
			for i := range fft.W {
				if rel := math.Abs(fft.W[i]-direct.W[i]) / mx; rel > 1e-9 {
					t.Fatalf("n=%d trial %d cell %d: |fft-direct|/max = %g > 1e-9",
						n, trial, i, rel)
				}
			}
		}
	}
}

// TestFFTDeterministic: the dense path must be bit-identical across repeated
// calls and across fresh kernels (spectrum rebuilds).
func TestFFTDeterministic(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 40, 40)
	src := randomBelief(g, rng.New(7))
	a := &Belief{Grid: g, W: make([]float64, g.Cells())}
	b := &Belief{Grid: g, W: make([]float64, g.Cells())}
	k1 := ringKernel(g)
	k2 := ringKernel(g)
	k1.ConvolveFFTInto(a, src, nil)
	k2.ConvolveFFTInto(b, src, &ConvScratch{})
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("cell %d differs across kernels/scratch: %v vs %v", i, a.W[i], b.W[i])
		}
	}
}

// TestChoosePathMonotone: the dispatcher is a pure function of support size —
// sparse for concentrated sources, FFT beyond a single crossover.
func TestChoosePathMonotone(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 64, 64)
	k := ringKernel(g)
	if p := k.ChoosePath(1); p != ConvSparse {
		t.Errorf("support 1 chose %v, want sparse", p)
	}
	if p := k.ChoosePath(g.Cells()); p != ConvFFT {
		t.Errorf("full support on 64x64 chose %v, want fft", p)
	}
	prev := ConvSparse
	for s := 1; s <= g.Cells(); s += 64 {
		p := k.ChoosePath(s)
		if prev == ConvFFT && p == ConvSparse {
			t.Fatalf("dispatch not monotone at support %d", s)
		}
		prev = p
	}
}

func TestConvolveWithDispatch(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 64, 64)
	k := ringKernel(g)
	sc := &ConvScratch{}
	dst := &Belief{Grid: g, W: make([]float64, g.Cells())}

	diffuse := NewUniform(g)
	if used := k.ConvolveWith(dst, diffuse, ConvAuto, sc); used != ConvFFT {
		t.Errorf("diffuse source dispatched to %v, want fft", used)
	}
	conc := NewDelta(g, mathx.V2(50, 50))
	if used := k.ConvolveWith(dst, conc, ConvAuto, sc); used != ConvSparse {
		t.Errorf("delta source dispatched to %v, want sparse", used)
	}
	// Forced paths are honored regardless of the cost model.
	if used := k.ConvolveWith(dst, diffuse, ConvSparse, sc); used != ConvSparse {
		t.Errorf("forced sparse ran %v", used)
	}
	if used := k.ConvolveWith(dst, conc, ConvFFT, sc); used != ConvFFT {
		t.Errorf("forced fft ran %v", used)
	}
}

// TestConvolveWithPathsAgree: the two paths the dispatcher switches between
// describe the same message up to FFT rounding.
func TestConvolveWithPathsAgree(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 32, 32)
	k := ringKernel(g)
	src := randomBelief(g, rng.New(5))
	sp := &Belief{Grid: g, W: make([]float64, g.Cells())}
	ff := &Belief{Grid: g, W: make([]float64, g.Cells())}
	k.ConvolveWith(sp, src, ConvSparse, nil)
	k.ConvolveWith(ff, src, ConvFFT, nil)
	sp.Normalize()
	ff.Normalize()
	if d := sp.L1Diff(ff); d > 1e-6 {
		t.Errorf("paths diverge by L1 %g", d)
	}
}

func TestConvPathParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ConvPath
	}{{"", ConvAuto}, {"auto", ConvAuto}, {"sparse", ConvSparse}, {"fft", ConvFFT}} {
		got, err := ParseConvPath(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseConvPath(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseConvPath("simd"); err == nil || !strings.Contains(err.Error(), "simd") {
		t.Errorf("bad path error = %v", err)
	}
	for _, p := range []ConvPath{ConvAuto, ConvSparse, ConvFFT} {
		rt, err := ParseConvPath(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip of %v failed: %v, %v", p, rt, err)
		}
		if !p.Valid() {
			t.Errorf("%v reported invalid", p)
		}
	}
	if ConvPath(9).Valid() {
		t.Error("out-of-range path reported valid")
	}
}

// TestConvolveEmptyBufferPanics is the regression test for the empty-weight
// guard: a zero-cell belief must fail with the explicit message, not an index
// panic from the alias check.
func TestConvolveEmptyBufferPanics(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 10, 10), 5, 5)
	k := ringKernel(g)
	check := func(name string, dst, src *Belief) {
		t.Helper()
		defer func() {
			r := recover()
			s, ok := r.(string)
			if !ok || !strings.Contains(s, "empty weight buffer") {
				t.Errorf("%s: panic = %v, want empty-weight message", name, r)
			}
		}()
		k.ConvolveInto(dst, src, nil)
	}
	empty := &Belief{Grid: g}
	full := NewUniform(g)
	check("empty dst", empty, full)
	check("empty src", &Belief{Grid: g, W: make([]float64, g.Cells())}, empty)
}

func TestKernelRunsCoverOffsets(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 40, 40)
	k := ringKernel(g)
	total := 0
	for _, r := range k.runs {
		total += len(r.w)
	}
	if total != k.Size() {
		t.Errorf("runs cover %d weights, kernel has %d offsets", total, k.Size())
	}
	if k.Runs() == 0 || k.Runs() > k.Size() {
		t.Errorf("suspicious run count %d for %d offsets", k.Runs(), k.Size())
	}
}
