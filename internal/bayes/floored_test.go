package bayes

import (
	"math"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// diffuseBelief is a broad mixture that keeps most of the grid above any
// reasonable damping floor, forcing FlooredMsg onto its dense fallback.
func diffuseBelief(g *geom.Grid) *Belief {
	b, err := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return 1 + 0.3*math.Sin(p.X/9)*math.Cos(p.Y/13)
	})
	if err != nil {
		panic(err)
	}
	return b
}

// heavyTailBelief returns a normalized belief where most cells are
// negligible and a few dominate — the shape pruning and sparse compaction
// are built for.
func heavyTailBelief(g *geom.Grid, stream *rng.Stream) *Belief {
	b := &Belief{Grid: g, W: make([]float64, g.Cells())}
	for i := range b.W {
		b.W[i] = math.Pow(stream.Float64(), 8)
	}
	if !b.Normalize() {
		panic("zero-mass heavy-tail belief")
	}
	return b
}

// TestFlooredMsgMatchesMulFlooredMax pins the bit-identity contract: for any
// message, multiplying through the compact form must equal MulFlooredMax on
// the dense original, bit for bit — sparse and dense fallback alike.
func TestFlooredMsgMatchesMulFlooredMax(t *testing.T) {
	g := testGrid()
	stream := rng.New(42)
	msgs := map[string]*Belief{
		"concentrated": concentratedBelief(g),
		"diffuse":      diffuseBelief(g),
		"uniform":      NewUniform(g),
		"zero":         {Grid: g, W: make([]float64, g.Cells())},
		"delta":        NewDelta(g, mathx.V2(33, 71)),
	}
	for i := 0; i < 8; i++ {
		msgs["random"] = heavyTailBelief(g, stream)
		for name, src := range msgs {
			for _, floor := range []float64{0, 2e-3, 0.1} {
				base := heavyTailBelief(g, stream)
				want := base.Clone()
				want.MulFlooredMax(src, floor, src.Max())

				var m FlooredMsg
				m.CompactFrom(src, floor)
				got := base.Clone()
				m.MulInto(got)

				for c := range want.W {
					if got.W[c] != want.W[c] {
						t.Fatalf("%s floor=%g: W[%d] = %g, want %g (dense=%v)",
							name, floor, c, got.W[c], want.W[c], m.Dense())
					}
				}
			}
		}
	}
}

// TestFlooredMsgForms checks the representation choice: a concentrated
// message compacts sparse, a diffuse one falls back to dense.
func TestFlooredMsgForms(t *testing.T) {
	g := testGrid()
	var m FlooredMsg
	if m.Valid() {
		t.Fatal("zero FlooredMsg reports Valid")
	}
	m.CompactFrom(concentratedBelief(g), 2e-3)
	if !m.Valid() || m.Dense() {
		t.Errorf("concentrated message: valid=%v dense=%v, want sparse", m.Valid(), m.Dense())
	}
	if s := m.SupportLen(); s == 0 || s > g.Cells()/2 {
		t.Errorf("concentrated support = %d of %d cells", s, g.Cells())
	}
	m.CompactFrom(diffuseBelief(g), 2e-3)
	if !m.Dense() {
		t.Error("diffuse message did not fall back to dense form")
	}
	// Recompacting back to sparse must drop the dense buffer's length.
	m.CompactFrom(concentratedBelief(g), 2e-3)
	if m.Dense() {
		t.Error("recompacted concentrated message stayed dense")
	}
}

func TestFlooredMsgInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MulInto on an uncompacted FlooredMsg did not panic")
		}
	}()
	var m FlooredMsg
	m.MulInto(NewUniform(testGrid()))
}

// TestPruneMassAndRenorm checks Prune's contract: removed mass and cell
// counts are reported, survivors renormalize to 1, and the peak survives.
func TestPruneMassAndRenorm(t *testing.T) {
	g := testGrid()
	stream := rng.New(7)
	for i := 0; i < 16; i++ {
		b := heavyTailBelief(g, stream)
		before := b.Clone()
		thr := 1e-2 * b.Max()
		wantMass, wantCells := 0.0, 0
		for _, w := range b.W {
			if w != 0 && w < thr {
				wantMass += w
				wantCells++
			}
		}
		mass, cells := b.Prune(1e-2)
		if mass != wantMass || cells != wantCells {
			t.Fatalf("Prune = (%g, %d), want (%g, %d)", mass, cells, wantMass, wantCells)
		}
		if !mathx.AlmostEqual(b.Mass(), 1, 1e-12) {
			t.Fatalf("pruned mass = %v, want 1", b.Mass())
		}
		if b.MAP() != before.MAP() {
			t.Error("Prune moved the MAP cell")
		}
		for c, w := range b.W {
			if w == 0 && before.W[c] >= thr && before.W[c] != 0 {
				t.Fatalf("cell %d above threshold was pruned", c)
			}
		}
	}
}

func TestPruneEdgeCases(t *testing.T) {
	g := testGrid()
	if mass, cells := NewUniform(g).Prune(0); mass != 0 || cells != 0 {
		t.Error("Prune(0) must be a no-op")
	}
	// Uniform belief: no cell is below rel·max for rel < 1.
	if mass, cells := NewUniform(g).Prune(0.5); mass != 0 || cells != 0 {
		t.Errorf("uniform Prune(0.5) removed (%g, %d)", mass, cells)
	}
	// Zero-mass belief: nothing to prune, nothing to renormalize.
	z := &Belief{Grid: g, W: make([]float64, g.Cells())}
	if mass, cells := z.Prune(0.5); mass != 0 || cells != 0 {
		t.Error("zero-mass Prune must be a no-op")
	}
	// A delta already has minimal support.
	d := NewDelta(g, mathx.V2(10, 10))
	if _, cells := d.Prune(0.9); cells != 0 {
		t.Error("delta Prune removed cells")
	}
	defer func() {
		if recover() == nil {
			t.Error("Prune(1) did not panic")
		}
	}()
	NewUniform(g).Prune(1)
}

// TestSteadyStateBPOpsZeroAlloc is the allocation-regression guard for the
// scale path: one steady-state BP round's worth of belief ops — convolve,
// compact, floored multiply, normalize, prune, reset — must stay at 0
// allocs/op once the node-local scratch has warmed up, pruning included.
func TestSteadyStateBPOpsZeroAlloc(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 40, 40)
	k := NewRadialKernel(g, func(d float64) float64 {
		return mathx.NormalPDF(d, 15, 1.5)
	}, 21, 0)
	src := concentratedBelief(g)
	prior := concentratedBelief(g)
	msg := &Belief{Grid: g, W: make([]float64, g.Cells())}
	post := &Belief{Grid: g, W: make([]float64, g.Cells())}
	var compact FlooredMsg
	var scratch ConvScratch

	round := func() {
		k.ConvolveWith(msg, src, ConvSparse, &scratch)
		compact.CompactFrom(msg, 2e-3)
		post.CopyFrom(prior)
		compact.MulInto(post)
		if !post.Normalize() {
			post.CopyFrom(prior)
		}
		post.Prune(1e-3)
		scratch.support = post.AppendSupport(scratch.support[:0], SupportEps)
	}
	round() // warm the scratch buffers
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Errorf("steady-state BP ops allocate %v allocs/op, want 0", allocs)
	}
}
