package bayes

import (
	"math"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
)

func gaussLik(d0, sigma float64) func(float64) float64 {
	return func(d float64) float64 { return mathx.NormalPDF(d, d0, sigma) }
}

func TestKernelRingFromDelta(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 50, 50)
	center := mathx.V2(50, 50)
	src := NewDelta(g, center)
	d0, sigma := 20.0, 2.0
	k := NewRadialKernel(g, gaussLik(d0, sigma), d0+4*sigma, 0)
	msg := k.Convolve(src)
	if !msg.Normalize() {
		t.Fatal("ring message has zero mass")
	}
	// The message must be a ring: mass concentrated near distance d0 from
	// the center, symmetric, with mean back at the center.
	if m := msg.Mean(); m.Dist(center) > 1.5 {
		t.Errorf("ring mean = %v", m)
	}
	// Expected distance from center ≈ d0.
	expDist := 0.0
	for idx, w := range msg.W {
		expDist += w * msg.Grid.CenterIdx(idx).Dist(center)
	}
	if math.Abs(expDist-d0) > 1.0 {
		t.Errorf("mean ring radius = %v, want %v", expDist, d0)
	}
	// Mass near the center must be negligible.
	nearMass := 0.0
	for idx, w := range msg.W {
		if msg.Grid.CenterIdx(idx).Dist(center) < d0/2 {
			nearMass += w
		}
	}
	if nearMass > 1e-6 {
		t.Errorf("center mass = %v", nearMass)
	}
}

func TestConvolveMatchesBruteForce(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 20, 20), 10, 10)
	b, _ := NewFromFunc(g, func(p mathx.Vec2) float64 { return 1 + p.X + 2*p.Y })
	lik := gaussLik(5, 2)
	maxD := 5 + 4*2.0
	k := NewRadialKernel(g, lik, maxD, 1e-12)
	got := k.Convolve(b)

	// Brute force over all cell pairs.
	want := &Belief{Grid: g, W: make([]float64, g.Cells())}
	for ti := 0; ti < g.Cells(); ti++ {
		tc := g.CenterIdx(ti)
		for si := 0; si < g.Cells(); si++ {
			d := g.CenterIdx(si).Dist(tc)
			if d > maxD {
				continue
			}
			want.W[ti] += b.W[si] * lik(d)
		}
	}
	got.Normalize()
	want.Normalize()
	if diff := got.L1Diff(want); diff > 1e-6 {
		t.Errorf("convolution deviates from brute force by %v", diff)
	}
}

func TestKernelTruncationControlsSize(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 50, 50)
	loose := NewRadialKernel(g, gaussLik(10, 2), 18, 1e-12)
	tight := NewRadialKernel(g, gaussLik(10, 2), 18, 1e-2)
	if tight.Size() >= loose.Size() {
		t.Errorf("trimming did not shrink kernel: %d vs %d", tight.Size(), loose.Size())
	}
	if tight.Size() == 0 {
		t.Error("over-trimmed kernel empty")
	}
}

func TestKernelDegenerateLikelihood(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 10, 10), 5, 5)
	k := NewRadialKernel(g, func(float64) float64 { return 0 }, 5, 0)
	if k.Size() != 1 {
		t.Fatalf("degenerate kernel size = %d", k.Size())
	}
	src := NewDelta(g, mathx.V2(5, 5))
	msg := k.Convolve(src)
	if !msg.Normalize() {
		t.Fatal("identity fallback produced zero message")
	}
	if msg.L1Diff(src) > 1e-12 {
		t.Error("identity kernel altered the belief")
	}
	// NaN likelihoods are sanitized too.
	kn := NewRadialKernel(g, func(float64) float64 { return math.NaN() }, 5, 0)
	if kn.Size() != 1 {
		t.Error("NaN kernel not collapsed to identity")
	}
}

func TestConvolveEdgeClipping(t *testing.T) {
	// A delta at the corner: the ring is clipped but mass must stay finite
	// and inside the grid.
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 25, 25)
	src := NewDelta(g, mathx.V2(2, 2))
	k := NewRadialKernel(g, gaussLik(15, 2), 23, 0)
	msg := k.Convolve(src)
	if !msg.Normalize() {
		t.Fatal("clipped message lost all mass")
	}
	for idx, w := range msg.W {
		if w < 0 || math.IsNaN(w) {
			t.Fatalf("bad mass at %d", idx)
		}
	}
}

func TestConvolveGridMismatchPanics(t *testing.T) {
	g1 := geom.NewGrid(geom.NewRect(0, 0, 10, 10), 5, 5)
	g2 := geom.NewGrid(geom.NewRect(0, 0, 10, 10), 6, 6)
	k := NewRadialKernel(g1, gaussLik(3, 1), 7, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Convolve(NewUniform(g2))
}
