package bayes

import (
	"math"

	"wsnloc/internal/geom"
)

// RadialKernel is a precomputed translation-invariant message kernel:
// k(Δ) = lik(‖Δ‖) tabulated on grid-cell offsets within a truncation radius.
// It implements the core BP message computation
//
//	m(x) = Σ_y b(y) · lik(‖x − y‖)
//
// through two interchangeable paths (see ConvPath): a sparse scatter from the
// sender belief's support — O(S·K), which collapses once beliefs concentrate
// — and a padded-FFT dense convolution — O(G log G) independent of support,
// which wins while beliefs are still diffuse. The sparse path runs over
// per-row contiguous runs compiled at construction so the inner loop is a
// slice-bounded multiply-add with clipping hoisted out of it.
type RadialKernel struct {
	grid *geom.Grid
	offs []kernelOffset
	// runs is the row-run compilation of offs: maximal sequences of
	// consecutive di at fixed dj, in the exact (dj, di) order of offs, so the
	// run-based scatter is bit-for-bit identical to the offset-based one.
	runs []kernelRun
	// Offset bounds; sources inside [−minDi, NX−1−maxDi]×[−minDj, NY−1−maxDj]
	// take the no-clip fast path.
	minDi, maxDi, minDj, maxDj int

	// Dense-path state: the padded kernel spectrum, built once on first use
	// (see spectrum in conv.go).
	spec spectrumCache
}

type kernelOffset struct {
	di, dj int
	w      float64
}

// kernelRun is one contiguous horizontal slice of the kernel: weights for
// offsets (di0, dj) … (di0+len(w)−1, dj).
type kernelRun struct {
	di0, dj int
	w       []float64
}

// NewRadialKernel tabulates lik on all cell offsets with ‖Δ‖ ≤ maxDist,
// discarding entries below relTrim of the kernel maximum (pass 0 for the
// 1e-4 default). The kernel always contains at least the zero offset so that
// degenerate likelihoods cannot produce empty messages.
func NewRadialKernel(g *geom.Grid, lik func(d float64) float64, maxDist float64, relTrim float64) *RadialKernel {
	if relTrim <= 0 {
		relTrim = 1e-4
	}
	ri := int(maxDist/g.CellW) + 1
	rj := int(maxDist/g.CellH) + 1

	type raw struct {
		di, dj int
		w      float64
	}
	var entries []raw
	maxW := 0.0
	for dj := -rj; dj <= rj; dj++ {
		for di := -ri; di <= ri; di++ {
			dx := float64(di) * g.CellW
			dy := float64(dj) * g.CellH
			d := dx*dx + dy*dy
			if d > maxDist*maxDist {
				continue
			}
			w := lik(math.Sqrt(d))
			if w < 0 || w != w { // negative or NaN
				w = 0
			}
			entries = append(entries, raw{di, dj, w})
			if w > maxW {
				maxW = w
			}
		}
	}
	k := &RadialKernel{grid: g}
	if maxW <= 0 {
		// Degenerate likelihood: identity kernel keeps messages harmless.
		k.offs = []kernelOffset{{0, 0, 1}}
		k.compile()
		return k
	}
	thr := relTrim * maxW
	for _, e := range entries {
		if e.w >= thr {
			k.offs = append(k.offs, kernelOffset{e.di, e.dj, e.w})
		}
	}
	if len(k.offs) == 0 {
		k.offs = []kernelOffset{{0, 0, 1}}
	}
	k.compile()
	return k
}

// compile groups the tabulated offsets into per-row contiguous runs and
// records the offset bounds. offs is laid out dj-major with ascending di, so
// a single pass recovers every maximal run in scatter order.
func (k *RadialKernel) compile() {
	k.runs = k.runs[:0]
	k.minDi, k.maxDi, k.minDj, k.maxDj = 0, 0, 0, 0
	for i := 0; i < len(k.offs); {
		o := k.offs[i]
		j := i + 1
		for j < len(k.offs) && k.offs[j].dj == o.dj && k.offs[j].di == k.offs[j-1].di+1 {
			j++
		}
		w := make([]float64, j-i)
		for t := i; t < j; t++ {
			w[t-i] = k.offs[t].w
		}
		k.runs = append(k.runs, kernelRun{di0: o.di, dj: o.dj, w: w})
		i = j
	}
	for i, o := range k.offs {
		if i == 0 {
			k.minDi, k.maxDi, k.minDj, k.maxDj = o.di, o.di, o.dj, o.dj
			continue
		}
		if o.di < k.minDi {
			k.minDi = o.di
		}
		if o.di > k.maxDi {
			k.maxDi = o.di
		}
		if o.dj < k.minDj {
			k.minDj = o.dj
		}
		if o.dj > k.maxDj {
			k.maxDj = o.dj
		}
	}
}

// Size returns the number of tabulated offsets (diagnostics and tests).
func (k *RadialKernel) Size() int { return len(k.offs) }

// Runs returns the number of compiled contiguous rows (diagnostics and tests).
func (k *RadialKernel) Runs() int { return len(k.runs) }

// Convolve computes the unnormalized message m = k ⊗ src. The source belief
// must live on the kernel's grid. The result is NOT normalized — messages
// multiply into beliefs that get renormalized afterwards.
func (k *RadialKernel) Convolve(src *Belief) *Belief {
	out := &Belief{Grid: k.grid, W: make([]float64, k.grid.Cells())}
	k.ConvolveInto(out, src, nil)
	return out
}

// ConvolveInto computes the unnormalized message k ⊗ src into dst on the
// sparse path, reusing dst's weight buffer. support is an optional scratch
// slice for the source support scan; the (possibly grown) slice is returned
// so steady-state BP rounds convolve without any allocation. dst must live on
// the kernel's grid, must not alias src, and both weight buffers must be
// non-empty.
func (k *RadialKernel) ConvolveInto(dst, src *Belief, support []int) []int {
	k.checkPair(dst, src)
	for i := range dst.W {
		dst.W[i] = 0
	}
	support = src.AppendSupport(support[:0], SupportEps)
	k.scatter(dst, src, support)
	return support
}

// checkPair validates the grid/buffer invariants shared by both paths.
func (k *RadialKernel) checkPair(dst, src *Belief) {
	if src.Grid != k.grid || dst.Grid != k.grid {
		panic("bayes: Convolve across different grids")
	}
	if len(dst.W) == 0 || len(src.W) == 0 {
		panic("bayes: Convolve on a belief with an empty weight buffer")
	}
	if &dst.W[0] == &src.W[0] {
		panic("bayes: ConvolveInto aliasing source and destination")
	}
}

// scatter accumulates the kernel rows of every support cell into dst. Interior
// sources skip clipping entirely; border sources clip each run to the grid.
// The accumulation order matches the historical per-offset scatter exactly,
// so results are bit-for-bit reproducible across both implementations and
// every worker count.
func (k *RadialKernel) scatter(dst, src *Belief, support []int) {
	g := k.grid
	nx, ny := g.NX, g.NY
	for _, sIdx := range support {
		ws := src.W[sIdx]
		si, sj := sIdx%nx, sIdx/nx
		if si+k.minDi >= 0 && si+k.maxDi < nx && sj+k.minDj >= 0 && sj+k.maxDj < ny {
			for _, run := range k.runs {
				row := dst.W[(sj+run.dj)*nx+si+run.di0:]
				row = row[:len(run.w)]
				for i, wv := range run.w {
					row[i] += ws * wv
				}
			}
			continue
		}
		for _, run := range k.runs {
			tj := sj + run.dj
			if tj < 0 || tj >= ny {
				continue
			}
			ti0 := si + run.di0
			lo, hi := 0, len(run.w)
			if ti0 < 0 {
				lo = -ti0
			}
			if ti0+hi > nx {
				hi = nx - ti0
			}
			if lo >= hi {
				continue
			}
			row := dst.W[tj*nx+ti0+lo : tj*nx+ti0+hi]
			wr := run.w[lo:hi]
			for i, wv := range wr {
				row[i] += ws * wv
			}
		}
	}
}
