package bayes

import (
	"math"

	"wsnloc/internal/geom"
)

// RadialKernel is a precomputed translation-invariant message kernel:
// k(Δ) = lik(‖Δ‖) tabulated on grid-cell offsets within a truncation radius.
// It implements the core BP message computation
//
//	m(x) = Σ_y b(y) · lik(‖x − y‖)
//
// as a sparse scatter from the sender belief's support, which is O(S·K)
// instead of O(cells²): S collapses to a handful of cells once beliefs
// concentrate, and K covers only the cells where the likelihood is
// non-negligible (a ring for ranging likelihoods).
type RadialKernel struct {
	grid *geom.Grid
	offs []kernelOffset
}

type kernelOffset struct {
	di, dj int
	w      float64
}

// NewRadialKernel tabulates lik on all cell offsets with ‖Δ‖ ≤ maxDist,
// discarding entries below relTrim of the kernel maximum (pass 0 for the
// 1e-4 default). The kernel always contains at least the zero offset so that
// degenerate likelihoods cannot produce empty messages.
func NewRadialKernel(g *geom.Grid, lik func(d float64) float64, maxDist float64, relTrim float64) *RadialKernel {
	if relTrim <= 0 {
		relTrim = 1e-4
	}
	ri := int(maxDist/g.CellW) + 1
	rj := int(maxDist/g.CellH) + 1

	type raw struct {
		di, dj int
		w      float64
	}
	var entries []raw
	maxW := 0.0
	for dj := -rj; dj <= rj; dj++ {
		for di := -ri; di <= ri; di++ {
			dx := float64(di) * g.CellW
			dy := float64(dj) * g.CellH
			d := dx*dx + dy*dy
			if d > maxDist*maxDist {
				continue
			}
			w := lik(math.Sqrt(d))
			if w < 0 || w != w { // negative or NaN
				w = 0
			}
			entries = append(entries, raw{di, dj, w})
			if w > maxW {
				maxW = w
			}
		}
	}
	k := &RadialKernel{grid: g}
	if maxW <= 0 {
		// Degenerate likelihood: identity kernel keeps messages harmless.
		k.offs = []kernelOffset{{0, 0, 1}}
		return k
	}
	thr := relTrim * maxW
	for _, e := range entries {
		if e.w >= thr {
			k.offs = append(k.offs, kernelOffset{e.di, e.dj, e.w})
		}
	}
	if len(k.offs) == 0 {
		k.offs = []kernelOffset{{0, 0, 1}}
	}
	return k
}

// Size returns the number of tabulated offsets (diagnostics and tests).
func (k *RadialKernel) Size() int { return len(k.offs) }

// Convolve computes the unnormalized message m = k ⊗ src. The source belief
// must live on the kernel's grid. The result is NOT normalized — messages
// multiply into beliefs that get renormalized afterwards.
func (k *RadialKernel) Convolve(src *Belief) *Belief {
	out := &Belief{Grid: k.grid, W: make([]float64, k.grid.Cells())}
	k.ConvolveInto(out, src, nil)
	return out
}

// ConvolveInto computes the unnormalized message k ⊗ src into dst, reusing
// dst's weight buffer. support is an optional scratch slice for the source
// support scan; the (possibly grown) slice is returned so steady-state BP
// rounds convolve without any allocation. dst must live on the kernel's grid
// and must not alias src.
func (k *RadialKernel) ConvolveInto(dst, src *Belief, support []int) []int {
	if src.Grid != k.grid || dst.Grid != k.grid {
		panic("bayes: Convolve across different grids")
	}
	if &dst.W[0] == &src.W[0] {
		panic("bayes: ConvolveInto aliasing source and destination")
	}
	g := k.grid
	for i := range dst.W {
		dst.W[i] = 0
	}
	support = src.AppendSupport(support[:0], 1e-3)
	for _, sIdx := range support {
		ws := src.W[sIdx]
		si, sj := g.Coords(sIdx)
		for _, o := range k.offs {
			ti := si + o.di
			if ti < 0 || ti >= g.NX {
				continue
			}
			tj := sj + o.dj
			if tj < 0 || tj >= g.NY {
				continue
			}
			dst.W[tj*g.NX+ti] += ws * o.w
		}
	}
	return support
}
