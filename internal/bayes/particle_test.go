package bayes

import (
	"math"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

func TestNewParticlesUniform(t *testing.T) {
	region := geom.NewRect(0, 0, 100, 100)
	p, err := NewParticlesUniform(region, 500, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.M() != 500 {
		t.Fatalf("M = %d", p.M())
	}
	for _, pt := range p.Pts {
		if !region.Contains(pt) {
			t.Fatalf("particle %v outside region", pt)
		}
	}
	// Mean near region center, ESS = m for uniform weights.
	if p.Mean().Dist(mathx.V2(50, 50)) > 5 {
		t.Errorf("mean = %v", p.Mean())
	}
	if !mathx.AlmostEqual(p.ESS(), 500, 1e-9) {
		t.Errorf("ESS = %v", p.ESS())
	}
}

func TestNewParticlesDelta(t *testing.T) {
	p := NewParticlesDelta(mathx.V2(3, 4), 100)
	if p.Mean().Dist(mathx.V2(3, 4)) > 1e-9 {
		t.Errorf("mean = %v", p.Mean())
	}
	if p.Spread() > 1e-9 {
		t.Errorf("spread = %v", p.Spread())
	}
}

func TestNormalizeCollapse(t *testing.T) {
	p := NewParticlesDelta(mathx.V2(0, 0), 10)
	for i := range p.W {
		p.W[i] = 0
	}
	if p.Normalize() {
		t.Error("zero-mass normalize claimed success")
	}
	// Fallback restored uniform weights.
	if !mathx.AlmostEqual(p.W[0], 0.1, 1e-12) {
		t.Errorf("fallback weight = %v", p.W[0])
	}
}

func TestResampleConcentrates(t *testing.T) {
	region := geom.NewRect(0, 0, 100, 100)
	p, _ := NewParticlesUniform(region, 1000, rng.New(2))
	// Weight mass onto particles near (20, 20).
	target := mathx.V2(20, 20)
	for i, pt := range p.Pts {
		p.W[i] = math.Exp(-pt.Dist2(target) / (2 * 25))
	}
	p.Normalize()
	essBefore := p.ESS()
	p.Resample(0, rng.New(3))
	if got := p.ESS(); !mathx.AlmostEqual(got, 1000, 1e-9) {
		t.Errorf("post-resample ESS = %v", got)
	}
	if essBefore >= 1000 {
		t.Error("test setup: weighting did not reduce ESS")
	}
	if p.Mean().Dist(target) > 3 {
		t.Errorf("resampled mean = %v", p.Mean())
	}
	if p.Spread() > 10 {
		t.Errorf("resampled spread = %v", p.Spread())
	}
}

func TestResampleJitterSpreads(t *testing.T) {
	p := NewParticlesDelta(mathx.V2(50, 50), 500)
	p.Resample(2.0, rng.New(4))
	if p.Spread() < 1 || p.Spread() > 5 {
		t.Errorf("jittered spread = %v, want ~2.8", p.Spread())
	}
}

func TestMakeRangeMessageRing(t *testing.T) {
	sender := NewParticlesDelta(mathx.V2(50, 50), 2000)
	meas, sigma := 20.0, 1.0
	msg := sender.MakeRangeMessage(meas, sigma, rng.New(5))
	// Message points lie on a noisy ring of radius meas around the sender.
	sumD := 0.0
	for _, pt := range msg.Pts {
		sumD += pt.Dist(mathx.V2(50, 50))
	}
	if got := sumD / float64(len(msg.Pts)); math.Abs(got-meas) > 0.5 {
		t.Errorf("mean ring radius = %v", got)
	}
	if msg.Bandwidth <= 0 {
		t.Error("bandwidth not positive")
	}
}

func TestParticleMessageEval(t *testing.T) {
	sender := NewParticlesDelta(mathx.V2(0, 0), 500)
	msg := sender.MakeRangeMessage(10, 0.5, rng.New(6))
	// Density on the ring must exceed density at the center and far away.
	onRing := msg.Eval(mathx.V2(10, 0))
	center := msg.Eval(mathx.V2(0, 0))
	far := msg.Eval(mathx.V2(50, 50))
	if onRing <= center || onRing <= far {
		t.Errorf("ring density %v not above center %v / far %v", onRing, center, far)
	}
}

func TestReweightBy(t *testing.T) {
	region := geom.NewRect(0, 0, 100, 100)
	p, _ := NewParticlesUniform(region, 1000, rng.New(7))
	target := mathx.V2(70, 30)
	ok := p.ReweightBy([]func(mathx.Vec2) float64{
		func(x mathx.Vec2) float64 { return math.Exp(-x.Dist2(target) / (2 * 100)) },
	}, 0)
	if !ok {
		t.Fatal("reweight collapsed")
	}
	if p.Mean().Dist(target) > 8 {
		t.Errorf("reweighted mean = %v", p.Mean())
	}
	// Empty factor list is a no-op.
	before := p.Clone()
	p.ReweightBy(nil, 0)
	for i := range p.W {
		if p.W[i] != before.W[i] {
			t.Fatal("empty reweight changed weights")
		}
	}
}

func TestReweightFlooring(t *testing.T) {
	p, _ := NewParticlesUniform(geom.NewRect(0, 0, 10, 10), 100, rng.New(8))
	// A factor that is zero at every particle except none — fully zero.
	ok := p.ReweightBy([]func(mathx.Vec2) float64{
		func(mathx.Vec2) float64 { return 0 },
	}, 0.01)
	// Flooring keeps mass alive only if the factor max is positive; here it
	// is zero, so the collapse fallback must kick in.
	if ok {
		t.Error("all-zero factor claimed success")
	}
	if !mathx.AlmostEqual(p.W[0], 0.01, 1e-12) {
		t.Errorf("fallback weight = %v", p.W[0])
	}

	// With one surviving particle and flooring, others keep floor mass.
	p2, _ := NewParticlesUniform(geom.NewRect(0, 0, 10, 10), 100, rng.New(9))
	winner := p2.Pts[0]
	p2.ReweightBy([]func(mathx.Vec2) float64{
		func(x mathx.Vec2) float64 {
			if x == winner {
				return 1
			}
			return 0
		},
	}, 0.001)
	zeroW := 0
	for _, w := range p2.W {
		if w == 0 {
			zeroW++
		}
	}
	if zeroW > 0 {
		t.Errorf("%d particles annihilated despite flooring", zeroW)
	}
}

func TestReweightSanitizesNaN(t *testing.T) {
	p, _ := NewParticlesUniform(geom.NewRect(0, 0, 10, 10), 50, rng.New(10))
	ok := p.ReweightBy([]func(mathx.Vec2) float64{
		func(x mathx.Vec2) float64 {
			if x.X < 5 {
				return math.NaN()
			}
			return 1
		},
	}, 0)
	if !ok {
		t.Fatal("sanitized reweight collapsed")
	}
	for _, w := range p.W {
		if math.IsNaN(w) {
			t.Fatal("NaN weight leaked")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p, _ := NewParticlesUniform(geom.NewRect(0, 0, 10, 10), 10, rng.New(11))
	c := p.Clone()
	c.Pts[0] = mathx.V2(-99, -99)
	c.W[0] = 99
	if p.Pts[0] == c.Pts[0] || p.W[0] == c.W[0] {
		t.Error("clone aliases original")
	}
}
