package bayes

import (
	"fmt"
	"math"
	"sync"

	"wsnloc/internal/mathx"
)

// Dual-path message convolution. The sparse path (kernel.go) scatters the
// compiled kernel rows from the source support — cheap once beliefs
// concentrate. The dense path below multiplies cached kernel spectra in the
// Fourier domain — cost independent of support, so it wins in the early BP
// rounds when every prior is still diffuse. ConvAuto picks per message from
// an operation-count model whose inputs depend only on the message itself,
// never on timing or worker count, keeping runs bit-identical across
// parallelism settings (the PR 2 invariant).

// ConvPath selects the convolution implementation for kernel messages.
type ConvPath int

const (
	// ConvAuto dispatches per message between the sparse and FFT paths via
	// the deterministic cost model (the default).
	ConvAuto ConvPath = iota
	// ConvSparse forces the compiled row-run scatter.
	ConvSparse
	// ConvFFT forces the cached-spectrum dense path.
	ConvFFT
)

// String returns the canonical spelling ("auto", "sparse", "fft").
func (p ConvPath) String() string {
	switch p {
	case ConvSparse:
		return "sparse"
	case ConvFFT:
		return "fft"
	default:
		return "auto"
	}
}

// ParseConvPath parses a convolution-path name. The empty string is accepted
// as "auto" so zero-valued configuration knobs stay terse.
func ParseConvPath(s string) (ConvPath, error) {
	switch s {
	case "", "auto":
		return ConvAuto, nil
	case "sparse":
		return ConvSparse, nil
	case "fft":
		return ConvFFT, nil
	}
	return ConvAuto, fmt.Errorf("bayes: unknown convolution path %q (want auto|sparse|fft)", s)
}

// Valid reports whether p is one of the three defined paths.
func (p ConvPath) Valid() bool { return p >= ConvAuto && p <= ConvFFT }

// ConvScratch carries one caller's reusable convolution buffers: the support
// scan of the sparse path and the complex workspace of the FFT path. The zero
// value is ready to use; a scratch must not be shared between goroutines.
type ConvScratch struct {
	support []int
	buf     []complex128
}

// spectrumCache lazily holds a kernel's padded 2-D spectrum. Build-once
// semantics make concurrent first use race-free and deterministic.
type spectrumCache struct {
	once sync.Once
	px   int // padded width  (power of two ≥ NX + max(maxDi, −minDi))
	py   int // padded height (power of two ≥ NY + max(maxDj, −minDj))
	f    []complex128
}

// spectrum returns the kernel's padded spectrum, building it on first use.
func (k *RadialKernel) spectrum() *spectrumCache {
	k.spec.once.Do(func() {
		g := k.grid
		exI := k.maxDi
		if -k.minDi > exI {
			exI = -k.minDi
		}
		exJ := k.maxDj
		if -k.minDj > exJ {
			exJ = -k.minDj
		}
		// px > NX−1+|di| for every kernel offset di kills circular aliasing
		// on the read-back window [0, NX) (same along Y), so the dense result
		// equals the border-clipped linear convolution exactly.
		px := mathx.NextPow2(g.NX + exI)
		py := mathx.NextPow2(g.NY + exJ)
		f := make([]complex128, px*py)
		for _, o := range k.offs {
			i := (o.di + px) % px
			j := (o.dj + py) % py
			f[j*px+i] += complex(o.w, 0)
		}
		mathx.FFT2D(f, px, py, false)
		k.spec.px, k.spec.py, k.spec.f = px, py, f
	})
	return &k.spec
}

// PrewarmSpectrum builds the kernel's FFT spectrum eagerly, so a concurrent
// BP phase runs against read-only spectra (mirrors the kernel prewarm in
// internal/core).
func (k *RadialKernel) PrewarmSpectrum() { k.spectrum() }

// ConvolveFFTInto computes the unnormalized message k ⊗ src into dst on the
// dense path: zero-pad, transform, multiply the cached kernel spectrum,
// transform back. Rounding can leave tiny negative weights; they are clamped
// to zero so downstream products stay valid densities. sc may be nil (the
// call then allocates its workspace).
func (k *RadialKernel) ConvolveFFTInto(dst, src *Belief, sc *ConvScratch) {
	k.checkPair(dst, src)
	sp := k.spectrum()
	n := sp.px * sp.py
	var buf []complex128
	if sc != nil {
		if cap(sc.buf) < n {
			sc.buf = make([]complex128, n)
		}
		buf = sc.buf[:n]
	} else {
		buf = make([]complex128, n)
	}
	g := k.grid
	for i := range buf {
		buf[i] = 0
	}
	for j := 0; j < g.NY; j++ {
		row := src.W[j*g.NX : (j+1)*g.NX]
		out := buf[j*sp.px:]
		for i, w := range row {
			out[i] = complex(w, 0)
		}
	}
	mathx.FFT2D(buf, sp.px, sp.py, false)
	for i := range buf {
		buf[i] *= sp.f[i]
	}
	mathx.FFT2D(buf, sp.px, sp.py, true)
	for j := 0; j < g.NY; j++ {
		row := dst.W[j*g.NX : (j+1)*g.NX]
		in := buf[j*sp.px:]
		for i := range row {
			w := real(in[i])
			if w < 0 {
				w = 0
			}
			row[i] = w
		}
	}
}

// fftOpFactor scales the FFT path's G·log₂G term onto the sparse path's
// per-offset multiply-add scale: two complex 2-D transforms plus the spectrum
// product cost roughly this many sparse-equivalent operations per padded
// cell and log₂ level. Calibrated against the convolution benchmark matrix
// (BenchmarkConvMatrix, amd64): 4.0 keeps every matrix cell on its faster
// side — below ~3 the dense path steals the 32×32-diffuse and
// 128×128-concentrated cells where the compiled scatter still wins, above
// ~10 it loses the 64×64-diffuse cell where it is 1.5× ahead. The exact
// value only moves the crossover, never correctness or determinism.
const fftOpFactor = 4.0

// ChoosePath returns the cheaper path for a source with the given support
// size. The decision is a pure function of (supportSize, kernel, grid) — no
// timing, no worker count — so dispatch is deterministic and results stay
// bit-identical across parallelism settings.
func (k *RadialKernel) ChoosePath(supportSize int) ConvPath {
	sp := k.spectrum()
	n := float64(sp.px * sp.py)
	fftOps := fftOpFactor * n * math.Log2(n)
	sparseOps := float64(supportSize) * float64(len(k.offs))
	if sparseOps <= fftOps {
		return ConvSparse
	}
	return ConvFFT
}

// ConvolveWith computes k ⊗ src into dst on the requested path, dispatching
// ConvAuto through ChoosePath, and returns the path actually used. sc may be
// nil; passing one makes steady-state calls allocation-free on both paths.
func (k *RadialKernel) ConvolveWith(dst, src *Belief, path ConvPath, sc *ConvScratch) ConvPath {
	if path == ConvAuto {
		path = k.ChoosePath(src.SupportSize(SupportEps))
	}
	if path == ConvFFT {
		k.ConvolveFFTInto(dst, src, sc)
		return ConvFFT
	}
	var support []int
	if sc != nil {
		support = sc.support
	}
	support = k.ConvolveInto(dst, src, support)
	if sc != nil {
		sc.support = support
	}
	return ConvSparse
}
