package bayes

import (
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// The hot kernels of grid-mode BNCL: convolution dominates run time, so its
// cost per message is tracked here across belief concentrations.

func benchGrid() *geom.Grid {
	return geom.NewGrid(geom.NewRect(0, 0, 100, 100), 40, 40)
}

func ringKernel(g *geom.Grid) *RadialKernel {
	return NewRadialKernel(g, func(d float64) float64 {
		return mathx.NormalPDF(d, 15, 1.5)
	}, 15+6, 0)
}

func BenchmarkConvolveUniformSource(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	src := NewUniform(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Convolve(src)
	}
}

func BenchmarkConvolveConcentratedSource(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	src, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return mathx.NormalPDF(p.Dist(mathx.V2(50, 50)), 0, 3)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Convolve(src)
	}
}

func BenchmarkBeliefProductAndNormalize(b *testing.B) {
	g := benchGrid()
	x := NewUniform(g)
	y, _ := NewFromFunc(g, func(p mathx.Vec2) float64 { return 1 + p.X })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.MulFloored(y, 1e-3)
		c.Normalize()
	}
}

// BenchmarkBPRound measures one steady-state grid-BP node iteration — prior
// copy, K neighbor message convolutions, product, renormalize — on the
// allocation-lean path (ConvolveInto + scratch reuse) that
// core.gridNode.recompute uses. Compare against BenchmarkBPRoundAlloc, the
// pre-pooling equivalent, to see the allocs/op the in-place ops remove.
func BenchmarkBPRound(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	prior := NewUniform(g)
	const neighbors = 6
	nbrs := make([]*Belief, neighbors)
	for i := range nbrs {
		src, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
			return mathx.NormalPDF(p.Dist(mathx.V2(20+float64(i)*10, 50)), 0, 4)
		})
		nbrs[i] = src
	}
	msgs := make([]*Belief, neighbors)
	for i := range msgs {
		msgs[i] = &Belief{Grid: g, W: make([]float64, g.Cells())}
	}
	post := &Belief{Grid: g, W: make([]float64, g.Cells())}
	var support []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post.CopyFrom(prior)
		for j, nb := range nbrs {
			support = k.ConvolveInto(msgs[j], nb, support)
			post.MulFloored(msgs[j], 2e-3)
			post.Normalize()
		}
	}
}

// BenchmarkBPRoundAlloc is the same iteration written the way the solver was
// before buffer pooling: every convolution and prior copy allocates a fresh
// grid-sized belief.
func BenchmarkBPRoundAlloc(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	prior := NewUniform(g)
	const neighbors = 6
	nbrs := make([]*Belief, neighbors)
	for i := range nbrs {
		src, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
			return mathx.NormalPDF(p.Dist(mathx.V2(20+float64(i)*10, 50)), 0, 4)
		})
		nbrs[i] = src
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post := prior.Clone()
		for _, nb := range nbrs {
			msg := k.Convolve(nb)
			post.MulFloored(msg, 2e-3)
			post.Normalize()
		}
	}
}

func BenchmarkKernelBuild(b *testing.B) {
	g := benchGrid()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ringKernel(g)
	}
}

func BenchmarkParticleReweightResample(b *testing.B) {
	region := geom.NewRect(0, 0, 100, 100)
	stream := rng.New(1)
	pb, _ := NewParticlesUniform(region, 150, stream)
	target := mathx.V2(40, 60)
	factor := func(x mathx.Vec2) float64 {
		return mathx.NormalPDF(x.Dist(target), 10, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := pb.Clone()
		c.ReweightBy([]func(mathx.Vec2) float64{factor}, 1e-3)
		c.Resample(1.0, stream)
	}
}

func BenchmarkRangeMessageEval(b *testing.B) {
	stream := rng.New(2)
	pb, _ := NewParticlesUniform(geom.NewRect(0, 0, 100, 100), 150, stream)
	msg := pb.MakeRangeMessage(15, 1.5, stream)
	pt := mathx.V2(50, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Eval(pt)
	}
}
