package bayes

import (
	"fmt"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// The hot kernels of grid-mode BNCL: convolution dominates run time, so its
// cost per message is tracked here across belief concentrations.

func benchGrid() *geom.Grid {
	return geom.NewGrid(geom.NewRect(0, 0, 100, 100), 40, 40)
}

func ringKernel(g *geom.Grid) *RadialKernel {
	return NewRadialKernel(g, func(d float64) float64 {
		return mathx.NormalPDF(d, 15, 1.5)
	}, 15+6, 0)
}

func BenchmarkConvolveUniformSource(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	src := NewUniform(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Convolve(src)
	}
}

func BenchmarkConvolveConcentratedSource(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	src, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return mathx.NormalPDF(p.Dist(mathx.V2(50, 50)), 0, 3)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Convolve(src)
	}
}

func BenchmarkBeliefProductAndNormalize(b *testing.B) {
	g := benchGrid()
	x := NewUniform(g)
	y, _ := NewFromFunc(g, func(p mathx.Vec2) float64 { return 1 + p.X })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.MulFloored(y, 1e-3)
		c.Normalize()
	}
}

// BenchmarkBPRound measures one steady-state grid-BP node iteration — prior
// copy, K neighbor message convolutions, product, renormalize — on the
// allocation-lean path (ConvolveInto + scratch reuse) that
// core.gridNode.recompute uses. Compare against BenchmarkBPRoundAlloc, the
// pre-pooling equivalent, to see the allocs/op the in-place ops remove.
func BenchmarkBPRound(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	prior := NewUniform(g)
	const neighbors = 6
	nbrs := make([]*Belief, neighbors)
	for i := range nbrs {
		src, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
			return mathx.NormalPDF(p.Dist(mathx.V2(20+float64(i)*10, 50)), 0, 4)
		})
		nbrs[i] = src
	}
	msgs := make([]*Belief, neighbors)
	for i := range msgs {
		msgs[i] = &Belief{Grid: g, W: make([]float64, g.Cells())}
	}
	post := &Belief{Grid: g, W: make([]float64, g.Cells())}
	var support []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post.CopyFrom(prior)
		for j, nb := range nbrs {
			support = k.ConvolveInto(msgs[j], nb, support)
			post.MulFloored(msgs[j], 2e-3)
			post.Normalize()
		}
	}
}

// BenchmarkBPRoundAlloc is the same iteration written the way the solver was
// before buffer pooling: every convolution and prior copy allocates a fresh
// grid-sized belief.
func BenchmarkBPRoundAlloc(b *testing.B) {
	g := benchGrid()
	k := ringKernel(g)
	prior := NewUniform(g)
	const neighbors = 6
	nbrs := make([]*Belief, neighbors)
	for i := range nbrs {
		src, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
			return mathx.NormalPDF(p.Dist(mathx.V2(20+float64(i)*10, 50)), 0, 4)
		})
		nbrs[i] = src
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post := prior.Clone()
		for _, nb := range nbrs {
			msg := k.Convolve(nb)
			post.MulFloored(msg, 2e-3)
			post.Normalize()
		}
	}
}

// BenchmarkConvMatrix is the dual-path engine's cost surface: grid size ×
// belief concentration × convolution path. "reference" is the historical
// per-offset scatter (the pre-run-compilation baseline); "sparse" the
// compiled row-run scatter; "fft" the cached-spectrum dense path; "auto" the
// dispatcher. BENCH_conv.json is generated from this matrix, and fftOpFactor
// (conv.go) is calibrated against it.
func BenchmarkConvMatrix(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), n, n)
		k := ringKernel(g)
		k.PrewarmSpectrum()
		diffuse, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
			return 1 + 0.1*mathx.NormalPDF(p.Dist(mathx.V2(50, 50)), 0, 30)
		})
		concentrated, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
			return mathx.NormalPDF(p.Dist(mathx.V2(50, 50)), 0, 3)
		})
		dst := &Belief{Grid: g, W: make([]float64, g.Cells())}
		sc := &ConvScratch{}
		for _, bel := range []struct {
			name string
			src  *Belief
		}{{"diffuse", diffuse}, {"concentrated", concentrated}} {
			for _, path := range []ConvPath{ConvSparse, ConvFFT, ConvAuto} {
				b.Run(fmt.Sprintf("grid=%d/belief=%s/path=%s", n, bel.name, path), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						k.ConvolveWith(dst, bel.src, path, sc)
					}
				})
			}
			b.Run(fmt.Sprintf("grid=%d/belief=%s/path=reference", n, bel.name), func(b *testing.B) {
				var support []int
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					support = scatterReference(k, dst, bel.src, support)
				}
			})
		}
	}
}

// BenchmarkMulFloored measures the damping-floor product with and without
// the cached-max hoist core.gridNode.recompute uses: "rescan" recomputes
// max(o) on every call, "cachedmax" supplies it precomputed.
func BenchmarkMulFloored(b *testing.B) {
	g := benchGrid()
	msg, _ := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return mathx.NormalPDF(p.Dist(mathx.V2(50, 50)), 15, 3)
	})
	u := NewUniform(g)
	dst := u.Clone()
	b.Run("rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst.CopyFrom(u)
			dst.MulFloored(msg, 2e-3)
		}
	})
	b.Run("cachedmax", func(b *testing.B) {
		mx := msg.Max()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst.CopyFrom(u)
			dst.MulFlooredMax(msg, 2e-3, mx)
		}
	})
}

func BenchmarkKernelBuild(b *testing.B) {
	g := benchGrid()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ringKernel(g)
	}
}

func BenchmarkParticleReweightResample(b *testing.B) {
	region := geom.NewRect(0, 0, 100, 100)
	stream := rng.New(1)
	pb, _ := NewParticlesUniform(region, 150, stream)
	target := mathx.V2(40, 60)
	factor := func(x mathx.Vec2) float64 {
		return mathx.NormalPDF(x.Dist(target), 10, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := pb.Clone()
		c.ReweightBy([]func(mathx.Vec2) float64{factor}, 1e-3)
		c.Resample(1.0, stream)
	}
}

func BenchmarkRangeMessageEval(b *testing.B) {
	stream := rng.New(2)
	pb, _ := NewParticlesUniform(geom.NewRect(0, 0, 100, 100), 150, stream)
	msg := pb.MakeRangeMessage(15, 1.5, stream)
	pt := mathx.V2(50, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Eval(pt)
	}
}
