// Package bayes implements the probabilistic machinery of wsnloc: discrete
// grid beliefs, radial-likelihood message kernels, and weighted-particle
// beliefs. These are the factors and messages of the Bayesian network that
// internal/core's cooperative localization algorithm passes between nodes.
package bayes

import (
	"errors"
	"math"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
)

// Belief is a discrete probability distribution over the cells of a grid:
// W[idx] is the probability mass attributed to the cell center. A valid
// belief is normalized (ΣW = 1); operations that can drive the total mass to
// zero report it so callers can recover (typically by resetting to the
// prior).
type Belief struct {
	Grid *geom.Grid
	W    []float64
}

// NewUniform returns the uniform belief over g.
func NewUniform(g *geom.Grid) *Belief {
	b := &Belief{Grid: g, W: make([]float64, g.Cells())}
	u := 1 / float64(g.Cells())
	for i := range b.W {
		b.W[i] = u
	}
	return b
}

// NewFromFunc evaluates f at every cell center and normalizes. It returns an
// error if f has (numerically) zero total mass on the grid.
func NewFromFunc(g *geom.Grid, f func(mathx.Vec2) float64) (*Belief, error) {
	b := &Belief{Grid: g, W: make([]float64, g.Cells())}
	for idx := range b.W {
		v := f(g.CenterIdx(idx))
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		b.W[idx] = v
	}
	if !b.Normalize() {
		return nil, errors.New("bayes: density has zero mass on grid")
	}
	return b, nil
}

// NewDelta returns a belief with all mass in the cell containing p (clamped
// to the grid).
func NewDelta(g *geom.Grid, p mathx.Vec2) *Belief {
	b := &Belief{Grid: g, W: make([]float64, g.Cells())}
	b.W[g.IndexOf(p)] = 1
	return b
}

// Clone returns a deep copy.
func (b *Belief) Clone() *Belief {
	w := make([]float64, len(b.W))
	copy(w, b.W)
	return &Belief{Grid: b.Grid, W: w}
}

// CopyFrom makes b a deep copy of o, reusing b's weight buffer when the
// sizes match — the in-place counterpart of Clone for steady-state BP
// rounds.
func (b *Belief) CopyFrom(o *Belief) {
	b.Grid = o.Grid
	if cap(b.W) < len(o.W) {
		b.W = make([]float64, len(o.W))
	}
	b.W = b.W[:len(o.W)]
	copy(b.W, o.W)
}

// CloneInto copies b into dst and returns it, allocating only when dst is
// nil (or its buffer is too small). Use it to recycle a scratch belief
// across iterations.
func (b *Belief) CloneInto(dst *Belief) *Belief {
	if dst == nil {
		return b.Clone()
	}
	dst.CopyFrom(b)
	return dst
}

// Mass returns the (pre-normalization) total mass ΣW.
func (b *Belief) Mass() float64 {
	s := 0.0
	for _, w := range b.W {
		s += w
	}
	return s
}

// Normalize scales W to sum to 1 and reports success. If the mass is zero or
// non-finite the belief is left unchanged and false is returned.
func (b *Belief) Normalize() bool {
	s := b.Mass()
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return false
	}
	inv := 1 / s
	for i := range b.W {
		b.W[i] *= inv
	}
	return true
}

// Mul multiplies b pointwise by o (which must share the grid) without
// normalizing; the caller decides how to handle zero mass.
func (b *Belief) Mul(o *Belief) {
	if b.Grid != o.Grid {
		panic("bayes: Mul across different grids")
	}
	for i := range b.W {
		b.W[i] *= o.W[i]
	}
}

// MulFloored multiplies b by max(o, floor·max(o)) pointwise. The floor keeps
// a single over-confident (or corrupted) message from annihilating posterior
// mass — the standard loopy-BP damping safeguard.
func (b *Belief) MulFloored(o *Belief, floor float64) {
	b.MulFlooredMax(o, floor, o.Max())
}

// MulFlooredMax is MulFloored with o's maximum supplied by the caller.
// Callers that cache a convolved message across BP rounds can cache its max
// alongside it (the max only changes when the message is re-convolved),
// hoisting the O(cells) rescan out of every product. Passing mx == o.Max()
// makes the result bit-identical to MulFloored.
func (b *Belief) MulFlooredMax(o *Belief, floor, mx float64) {
	if b.Grid != o.Grid {
		panic("bayes: MulFloored across different grids")
	}
	f := floor * mx
	for i := range b.W {
		w := o.W[i]
		if w < f {
			w = f
		}
		b.W[i] *= w
	}
}

// Max returns the largest weight (0 for an all-zero belief).
func (b *Belief) Max() float64 {
	mx := 0.0
	for _, w := range b.W {
		if w > mx {
			mx = w
		}
	}
	return mx
}

// MulFunc multiplies b pointwise by f evaluated at cell centers. Negative or
// NaN values of f are treated as zero. f is only evaluated where b has mass:
// zero cells stay zero, so f must be finite (an infinite factor cannot revive
// them anyway) and free of side effects the caller depends on.
func (b *Belief) MulFunc(f func(mathx.Vec2) float64) {
	for idx, w := range b.W {
		if w == 0 {
			// Zero-mass cells stay zero under any finite factor, so f is not
			// evaluated there (part of the contract: factors cannot revive a
			// cell). This is what makes factor evaluation cost support-sized
			// rather than grid-sized once a prior has hard zeros.
			continue
		}
		v := f(b.Grid.CenterIdx(idx))
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		b.W[idx] = w * v
	}
}

// Mean returns the probability-weighted mean position (the MMSE estimate).
func (b *Belief) Mean() mathx.Vec2 {
	var s mathx.Vec2
	for idx, w := range b.W {
		if w == 0 {
			continue
		}
		s = s.Add(b.Grid.CenterIdx(idx).Scale(w))
	}
	return s
}

// MAP returns the center of the highest-mass cell (the MAP estimate).
func (b *Belief) MAP() mathx.Vec2 {
	best, bestW := 0, b.W[0]
	for idx, w := range b.W[1:] {
		if w > bestW {
			best, bestW = idx+1, w
		}
	}
	return b.Grid.CenterIdx(best)
}

// Entropy returns the Shannon entropy in nats. Uniform beliefs score
// ln(cells); deltas score 0.
func (b *Belief) Entropy() float64 {
	h := 0.0
	for _, w := range b.W {
		if w > 0 {
			h -= w * math.Log(w)
		}
	}
	return h
}

// Spread returns the root-mean-squared distance of the belief from its mean
// — a physical-units confidence radius for the estimate.
func (b *Belief) Spread() float64 {
	m := b.Mean()
	s := 0.0
	for idx, w := range b.W {
		if w == 0 {
			continue
		}
		s += w * b.Grid.CenterIdx(idx).Dist2(m)
	}
	return math.Sqrt(s)
}

// Prune zeroes every cell whose mass lies strictly below rel·max(W) and
// renormalizes the survivors, returning the mass removed and the number of
// cells zeroed. It is the support-pruning primitive of large-network BP:
// dropping the negligible tail shrinks every subsequent support scan,
// convolution, and on-air message proportionally. rel must be in [0,1) —
// the peak cell always survives, so renormalization cannot fail on a belief
// with positive mass. rel <= 0 is a no-op.
func (b *Belief) Prune(rel float64) (mass float64, cells int) {
	if rel <= 0 {
		return 0, 0
	}
	if rel >= 1 {
		panic("bayes: Prune rel must be in [0,1)")
	}
	thr := rel * b.Max()
	if thr <= 0 {
		return 0, 0
	}
	for i, w := range b.W {
		if w != 0 && w < thr {
			mass += w
			cells++
			b.W[i] = 0
		}
	}
	if cells > 0 {
		b.Normalize()
	}
	return mass, cells
}

// L1Diff returns Σ|b−o|, the total-variation distance ×2, used as the BP
// convergence criterion.
func (b *Belief) L1Diff(o *Belief) float64 {
	if b.Grid != o.Grid {
		panic("bayes: L1Diff across different grids")
	}
	s := 0.0
	for i := range b.W {
		s += math.Abs(b.W[i] - o.W[i])
	}
	return s
}

// SupportEps is the default mass-loss tolerance of the support scans backing
// the sparse convolution path and on-air message sizing.
const SupportEps = 1e-3

// Support returns the indices of cells with non-negligible mass: cells are
// thresholded at epsilon·max/cells, so the scan stays O(cells) with no sort.
// For a normalized belief the cells left behind carry at most
// cells · epsilon·max/cells = epsilon·max ≤ epsilon of the total mass —
// i.e. the returned support holds at least (1−epsilon) of it. Used by the
// sparse convolution path.
func (b *Belief) Support(epsilon float64) []int {
	return b.AppendSupport(nil, epsilon)
}

// AppendSupport appends the support indices (see Support) to dst and returns
// the extended slice, so a caller-owned scratch buffer can make repeated
// support scans allocation-free.
func (b *Belief) AppendSupport(dst []int, epsilon float64) []int {
	thr, ok := b.supportThreshold(epsilon)
	if !ok {
		return dst
	}
	if dst == nil {
		dst = make([]int, 0, 64)
	}
	for idx, w := range b.W {
		if w > thr {
			dst = append(dst, idx)
		}
	}
	return dst
}

// SupportSize counts the support cells without materializing them (e.g. for
// message-size accounting).
func (b *Belief) SupportSize(epsilon float64) int {
	thr, ok := b.supportThreshold(epsilon)
	if !ok {
		return 0
	}
	c := 0
	for _, w := range b.W {
		if w > thr {
			c++
		}
	}
	return c
}

func (b *Belief) supportThreshold(epsilon float64) (float64, bool) {
	mx := 0.0
	for _, w := range b.W {
		if w > mx {
			mx = w
		}
	}
	if mx == 0 {
		return 0, false
	}
	// Threshold heuristic: cells below eps·max are negligible; with grids of
	// a few thousand cells, their total mass is bounded by cells·eps·max.
	return epsilon * mx / float64(len(b.W)), true
}
