package bayes

import (
	"math"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// ParticleBelief is a weighted-sample representation of a node's position
// posterior — the nonparametric-BP counterpart of the grid Belief. Particle
// beliefs trade the grid's fixed resolution for O(m²) messages, which wins
// on large areas and loses on multi-modal posteriors with few particles.
type ParticleBelief struct {
	Pts []mathx.Vec2
	W   []float64 // normalized weights
}

// NewParticlesUniform draws m particles uniformly from region.
func NewParticlesUniform(region geom.Region, m int, stream *rng.Stream) (*ParticleBelief, error) {
	pts, err := geom.SampleN(region, m, stream)
	if err != nil {
		return nil, err
	}
	return newEquallyWeighted(pts), nil
}

// NewParticlesDelta returns m copies of a known position (an anchor belief).
func NewParticlesDelta(p mathx.Vec2, m int) *ParticleBelief {
	pts := make([]mathx.Vec2, m)
	for i := range pts {
		pts[i] = p
	}
	return newEquallyWeighted(pts)
}

func newEquallyWeighted(pts []mathx.Vec2) *ParticleBelief {
	w := make([]float64, len(pts))
	u := 1 / float64(len(pts))
	for i := range w {
		w[i] = u
	}
	return &ParticleBelief{Pts: pts, W: w}
}

// Clone returns a deep copy.
func (p *ParticleBelief) Clone() *ParticleBelief {
	pts := make([]mathx.Vec2, len(p.Pts))
	copy(pts, p.Pts)
	w := make([]float64, len(p.W))
	copy(w, p.W)
	return &ParticleBelief{Pts: pts, W: w}
}

// M returns the particle count.
func (p *ParticleBelief) M() int { return len(p.Pts) }

// Normalize rescales weights to sum to 1, reporting false (and resetting to
// uniform weights) when the mass has collapsed to zero.
func (p *ParticleBelief) Normalize() bool {
	s := 0.0
	for _, w := range p.W {
		s += w
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1 / float64(len(p.W))
		for i := range p.W {
			p.W[i] = u
		}
		return false
	}
	inv := 1 / s
	for i := range p.W {
		p.W[i] *= inv
	}
	return true
}

// Mean returns the weighted mean position.
func (p *ParticleBelief) Mean() mathx.Vec2 {
	var s mathx.Vec2
	for i, pt := range p.Pts {
		s = s.Add(pt.Scale(p.W[i]))
	}
	return s
}

// Spread returns the weighted RMS distance from the mean.
func (p *ParticleBelief) Spread() float64 {
	m := p.Mean()
	s := 0.0
	for i, pt := range p.Pts {
		s += p.W[i] * pt.Dist2(m)
	}
	return math.Sqrt(s)
}

// ESS returns the effective sample size 1/Σw², the standard degeneracy
// diagnostic: m when weights are uniform, →1 as one particle dominates.
func (p *ParticleBelief) ESS() float64 {
	s := 0.0
	for _, w := range p.W {
		s += w * w
	}
	if s == 0 {
		return 0
	}
	return 1 / s
}

// Resample draws m particles proportionally to weight (systematic
// resampling, low variance) and resets weights to uniform. jitter > 0 adds
// Gaussian regularization noise to fight sample impoverishment.
func (p *ParticleBelief) Resample(jitter float64, stream *rng.Stream) {
	m := len(p.Pts)
	out := make([]mathx.Vec2, m)
	step := 1 / float64(m)
	u := stream.Uniform(0, step)
	acc := 0.0
	j := -1
	for i := 0; i < m; i++ {
		target := u + float64(i)*step
		for acc < target && j < m-1 {
			j++
			acc += p.W[j]
		}
		pt := p.Pts[mathx.ClampInt(j, 0, m-1)]
		if jitter > 0 {
			pt = mathx.V2(pt.X+stream.Normal(0, jitter), pt.Y+stream.Normal(0, jitter))
		}
		out[i] = pt
	}
	p.Pts = out
	uw := 1 / float64(m)
	for i := range p.W {
		p.W[i] = uw
	}
}

// ParticleMessage is the NBP message from a sender: samples of where the
// receiver could be, built by displacing each sender particle by the
// measured distance in a random direction with ranging noise.
type ParticleMessage struct {
	Pts []mathx.Vec2
	W   []float64
	// Bandwidth is the Gaussian KDE bandwidth used when the message is
	// evaluated at receiver particles.
	Bandwidth float64
}

// MakeRangeMessage builds the message induced by a measured distance meas
// with ranging noise sigma from the sender belief: xᵣ = xₛ + (meas+ε)·u(θ),
// θ uniform, ε ~ N(0, σ).
func (p *ParticleBelief) MakeRangeMessage(meas, sigma float64, stream *rng.Stream) *ParticleMessage {
	m := len(p.Pts)
	msg := &ParticleMessage{
		Pts: make([]mathx.Vec2, m),
		W:   make([]float64, m),
	}
	for i, pt := range p.Pts {
		theta := stream.Uniform(0, 2*math.Pi)
		d := meas + stream.Normal(0, sigma)
		if d < 0 {
			d = 0
		}
		msg.Pts[i] = pt.Add(mathx.V2(math.Cos(theta), math.Sin(theta)).Scale(d))
		msg.W[i] = p.W[i]
	}
	// Silverman-flavored bandwidth: scale with ranging noise; the angular
	// sampling already smears tangentially.
	msg.Bandwidth = math.Max(sigma, 1e-6)
	return msg
}

// Eval returns the KDE density of the message at x (unnormalized).
func (m *ParticleMessage) Eval(x mathx.Vec2) float64 {
	h2 := m.Bandwidth * m.Bandwidth
	s := 0.0
	for i, pt := range m.Pts {
		s += m.W[i] * math.Exp(-x.Dist2(pt)/(2*h2))
	}
	return s
}

// ReweightBy multiplies particle weights by each factor evaluated at the
// particle, flooring each factor at floor×its max over the particles so no
// single message annihilates the belief. It renormalizes and reports whether
// mass survived without hitting the collapse fallback.
func (p *ParticleBelief) ReweightBy(factors []func(mathx.Vec2) float64, floor float64) bool {
	if len(factors) == 0 {
		return true
	}
	vals := make([]float64, len(p.Pts))
	for _, f := range factors {
		mx := 0.0
		for i, pt := range p.Pts {
			v := f(pt)
			if v < 0 || math.IsNaN(v) {
				v = 0
			}
			vals[i] = v
			if v > mx {
				mx = v
			}
		}
		fl := floor * mx
		for i := range p.W {
			v := vals[i]
			if v < fl {
				v = fl
			}
			p.W[i] *= v
		}
	}
	return p.Normalize()
}
