package bayes

import (
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
)

// Tests for the allocation-lean in-place variants: they must be drop-in
// replacements for their allocating counterparts, bit for bit.

func concentratedBelief(g *geom.Grid) *Belief {
	b, err := NewFromFunc(g, func(p mathx.Vec2) float64 {
		return mathx.NormalPDF(p.Dist(mathx.V2(30, 70)), 0, 5)
	})
	if err != nil {
		panic(err)
	}
	return b
}

func TestCopyFromMatchesClone(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 20, 20)
	src := concentratedBelief(g)

	dst := NewUniform(g)
	buf := &dst.W[0]
	dst.CopyFrom(src)
	if &dst.W[0] != buf {
		t.Error("CopyFrom reallocated a buffer of matching size")
	}
	want := src.Clone()
	for i := range want.W {
		if dst.W[i] != want.W[i] {
			t.Fatalf("W[%d] = %g, want %g", i, dst.W[i], want.W[i])
		}
	}

	// Growing copy: a too-small destination must be resized, not truncated.
	small := &Belief{Grid: g, W: make([]float64, 3)}
	small.CopyFrom(src)
	if len(small.W) != len(src.W) {
		t.Fatalf("CopyFrom left %d cells, want %d", len(small.W), len(src.W))
	}
}

func TestCloneIntoNilAllocates(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	src := NewUniform(g)
	got := src.CloneInto(nil)
	if got == src || &got.W[0] == &src.W[0] {
		t.Fatal("CloneInto(nil) must return an independent copy")
	}
	reused := &Belief{Grid: g, W: make([]float64, g.Cells())}
	if src.CloneInto(reused) != reused {
		t.Error("CloneInto must return the reused destination")
	}
}

func TestAppendSupportMatchesSupport(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 25, 25)
	for name, b := range map[string]*Belief{
		"uniform":      NewUniform(g),
		"concentrated": concentratedBelief(g),
		"zero":         {Grid: g, W: make([]float64, g.Cells())},
	} {
		want := b.Support(1e-3)
		scratch := make([]int, 7) // non-empty: AppendSupport must reset it
		got := b.AppendSupport(scratch[:0], 1e-3)
		if len(got) != len(want) {
			t.Fatalf("%s: AppendSupport len %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: AppendSupport[%d] = %d, want %d", name, i, got[i], want[i])
			}
		}
		if n := b.SupportSize(1e-3); n != len(want) {
			t.Errorf("%s: SupportSize = %d, want %d", name, n, len(want))
		}
	}
}

func TestConvolveIntoMatchesConvolve(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 40, 40)
	k := NewRadialKernel(g, func(d float64) float64 {
		return mathx.NormalPDF(d, 15, 1.5)
	}, 21, 0)
	src := concentratedBelief(g)

	want := k.Convolve(src)
	// Dirty destination: ConvolveInto must fully overwrite it.
	dst := NewUniform(g)
	var scratch []int
	scratch = k.ConvolveInto(dst, src, scratch)
	for i := range want.W {
		if dst.W[i] != want.W[i] {
			t.Fatalf("W[%d] = %g, want %g", i, dst.W[i], want.W[i])
		}
	}
	if len(scratch) == 0 {
		t.Error("ConvolveInto returned an empty support scratch for a massive source")
	}
	// Second run with the returned scratch must give the same answer.
	k.ConvolveInto(dst, src, scratch)
	for i := range want.W {
		if dst.W[i] != want.W[i] {
			t.Fatalf("scratch reuse: W[%d] = %g, want %g", i, dst.W[i], want.W[i])
		}
	}
}

func TestConvolveIntoAliasPanics(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	k := NewRadialKernel(g, func(d float64) float64 { return 1 }, 15, 0)
	b := NewUniform(g)
	defer func() {
		if recover() == nil {
			t.Error("ConvolveInto(b, b) did not panic")
		}
	}()
	k.ConvolveInto(b, b, nil)
}
