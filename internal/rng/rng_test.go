package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := New(124)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	p2.Uint64() // consume some of p2
	p2.Float64()
	c1 := p1.Split(42)
	c2 := p2.Split(42)
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split depends on parent consumption")
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	p := New(7)
	a, b := p.Split(1), p.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams matched %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(2)
	n := 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v", variance)
	}
}

func TestIntnUnbiased(t *testing.T) {
	r := New(3)
	const n, draws = 7, 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(4)
	const n = 200000
	mu, sigma := 3.0, 2.0
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(mu, sigma)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-mu) > 0.03 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(sd-sigma) > 0.03 {
		t.Errorf("normal sd = %v", sd)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(5)
	const n = 100000
	rate := 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestRayleighMoments(t *testing.T) {
	r := New(6)
	const n = 100000
	sigma := 1.5
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Rayleigh(sigma)
		if x < 0 {
			t.Fatal("negative Rayleigh draw")
		}
		sum += x
	}
	want := sigma * math.Sqrt(math.Pi/2)
	if mean := sum / n; math.Abs(mean-want) > 0.02 {
		t.Errorf("rayleigh mean = %v, want %v", mean, want)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("non-positive lognormal draw")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestSampleK(t *testing.T) {
	r := New(11)
	s := r.SampleK(10, 4)
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[v] = true
	}
	if got := r.SampleK(3, 3); len(got) != 3 {
		t.Fatal("k == n failed")
	}
	if got := r.SampleK(3, 0); len(got) != 0 {
		t.Fatal("k == 0 failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	r.SampleK(2, 3)
}

func TestCategorical(t *testing.T) {
	r := New(12)
	w := []float64{0, 1, 3, 0}
	const n = 100000
	counts := make([]int, len(w))
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Error("zero-weight category drawn")
	}
	if p := float64(counts[2]) / n; math.Abs(p-0.75) > 0.01 {
		t.Errorf("category 2 frequency = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	r.Categorical([]float64{0, 0})
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(13)
	s := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	// Still a permutation of the original.
	seen := map[string]int{}
	for _, v := range s {
		seen[v]++
	}
	for _, v := range orig {
		if seen[v] != 1 {
			t.Fatalf("shuffle corrupted slice: %v", s)
		}
	}
}
