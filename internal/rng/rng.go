// Package rng provides the deterministic, splittable pseudo-random number
// streams that make every simulation in wsnloc reproducible.
//
// Monte-Carlo localization experiments need two properties that a single
// shared math/rand source does not give cleanly:
//
//  1. Stream independence — topology generation, radio noise, and algorithm
//     randomness must each consume their own stream so that, e.g., changing
//     the number of BP particles does not perturb which topology is drawn.
//  2. Hierarchical splitting — trial t of experiment E must get the same
//     randomness whether trials run sequentially or concurrently.
//
// The generator is PCG-XSH-RR-like on a 64-bit LCG state with a per-stream
// increment, which is small, fast, and passes the statistical checks that
// matter at our sample sizes. Seeds and stream labels combine through
// SplitMix64 so that nearby labels yield uncorrelated streams.
package rng

import "math"

// Stream is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; split one stream per goroutine instead.
type Stream struct {
	s   uint64 // LCG state
	inc uint64 // per-stream increment (odd)

	// Cached second Box-Muller variate.
	hasGauss bool
	gauss    float64
}

// New returns a Stream seeded by seed. Two streams with different seeds are
// statistically independent.
func New(seed uint64) *Stream {
	st := &Stream{}
	st.s = splitmix(seed + 0x9E3779B97F4A7C15)
	st.inc = splitmix(seed^0xDA442D24B0D11B37) | 1
	// Warm up so low-entropy seeds decorrelate.
	for i := 0; i < 4; i++ {
		st.Uint64()
	}
	return st
}

// Split derives an independent child stream identified by label. Splitting
// is deterministic: the same (parent seed, label) always yields the same
// child, regardless of how much the parent has been consumed.
func (r *Stream) Split(label uint64) *Stream {
	return New(splitmix(r.inc^splitmix(label)) ^ splitmix(label+0x632BE59BD9B4E019))
}

// splitmix is the SplitMix64 output function, used for seeding.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Stream) Uint64() uint64 {
	// Two dependent 32-bit PCG outputs glued together would bias the top
	// word, so run the 64-bit state twice through the permutation.
	hi := r.next32()
	lo := r.next32()
	return uint64(hi)<<32 | uint64(lo)
}

// next32 advances the underlying LCG and applies the XSH-RR output
// permutation, yielding 32 bits.
func (r *Stream) next32() uint32 {
	old := r.s
	r.s = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31))
}

// Float64 returns a uniform draw in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection to remove modulo bias.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Uniform returns a uniform draw in [a, b).
func (r *Stream) Uniform(a, b float64) float64 {
	return a + (b-a)*r.Float64()
}

// Bool returns true with probability p.
func (r *Stream) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a Gaussian draw with the given mean and standard deviation
// via the Box-Muller transform (one spare variate is cached).
func (r *Stream) Normal(mu, sigma float64) float64 {
	if r.hasGauss {
		r.hasGauss = false
		return mu + sigma*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return mu + sigma*u*f
}

// LogNormal returns exp(N(mu, sigma²)).
func (r *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponential draw with the given rate λ > 0.
func (r *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	u := r.Float64()
	// 1−u ∈ (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Rayleigh returns a Rayleigh draw with the given scale sigma > 0 (used for
// fading amplitudes).
func (r *Stream) Rayleigh(sigma float64) float64 {
	if sigma <= 0 {
		panic("rng: Rayleigh with non-positive sigma")
	}
	u := r.Float64()
	return sigma * math.Sqrt(-2*math.Log(1-u))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *Stream) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Stream) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK with k out of range")
	}
	p := r.Perm(n)
	return p[:k]
}

// Categorical draws an index with probability proportional to weights[i].
// Zero-weight entries are never drawn; it panics if all weights are
// non-positive.
func (r *Stream) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("rng: Categorical with no positive weights")
	}
	u := r.Float64() * total
	acc := 0.0
	last := -1
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if u < acc {
			return i
		}
	}
	return last // floating-point slack
}
