package geom

import (
	"math"
	"testing"

	"wsnloc/internal/mathx"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(10, 20, 0, 5) // reversed corners normalize
	if r.Min != mathx.V2(0, 5) || r.Max != mathx.V2(10, 20) {
		t.Fatalf("normalization failed: %+v", r)
	}
	if r.Width() != 10 || r.Height() != 15 || r.Area() != 150 {
		t.Error("dimensions wrong")
	}
	if !r.Contains(mathx.V2(5, 10)) || !r.Contains(r.Min) || !r.Contains(r.Max) {
		t.Error("containment wrong")
	}
	if r.Contains(mathx.V2(-0.1, 10)) || r.Contains(mathx.V2(5, 20.1)) {
		t.Error("outside point contained")
	}
	if r.Center() != mathx.V2(5, 12.5) {
		t.Errorf("center = %v", r.Center())
	}
}

func TestRectClampExpandUnion(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if got := r.Clamp(mathx.V2(-5, 20)); got != mathx.V2(0, 10) {
		t.Errorf("clamp = %v", got)
	}
	if got := r.Clamp(mathx.V2(3, 4)); got != mathx.V2(3, 4) {
		t.Errorf("interior clamp = %v", got)
	}
	e := r.Expand(2)
	if e.Min != mathx.V2(-2, -2) || e.Max != mathx.V2(12, 12) {
		t.Errorf("expand = %+v", e)
	}
	u := r.Union(NewRect(5, 5, 20, 8))
	if u.Min != mathx.V2(0, 0) || u.Max != mathx.V2(20, 10) {
		t.Errorf("union = %+v", u)
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: mathx.V2(5, 5), R: 3}
	if !c.Contains(mathx.V2(5, 8)) { // on boundary
		t.Error("boundary not contained")
	}
	if c.Contains(mathx.V2(5, 8.01)) {
		t.Error("outside contained")
	}
	bb := c.Bounds()
	if bb.Min != mathx.V2(2, 2) || bb.Max != mathx.V2(8, 8) {
		t.Errorf("bounds = %+v", bb)
	}
}

func TestPolygonContains(t *testing.T) {
	// L-shaped polygon.
	l := NewPolygon([]mathx.Vec2{
		{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 4}, {X: 0, Y: 4},
	})
	inside := []mathx.Vec2{{X: 1, Y: 1}, {X: 3, Y: 1}, {X: 1, Y: 3}, {X: 0, Y: 0}, {X: 2, Y: 2}}
	outside := []mathx.Vec2{{X: 3, Y: 3}, {X: 5, Y: 1}, {X: -1, Y: 2}, {X: 2.5, Y: 3.5}}
	for _, p := range inside {
		if !l.Contains(p) {
			t.Errorf("point %v should be inside", p)
		}
	}
	for _, p := range outside {
		if l.Contains(p) {
			t.Errorf("point %v should be outside", p)
		}
	}
}

func TestPolygonArea(t *testing.T) {
	sq := NewPolygon([]mathx.Vec2{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}})
	if got := sq.Area(); got != 4 {
		t.Errorf("square area = %v", got)
	}
	tri := NewPolygon([]mathx.Vec2{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 3}})
	if got := tri.Area(); got != 6 {
		t.Errorf("triangle area = %v", got)
	}
	// Winding order must not matter.
	triRev := NewPolygon([]mathx.Vec2{{X: 0, Y: 3}, {X: 4, Y: 0}, {X: 0, Y: 0}})
	if triRev.Area() != tri.Area() {
		t.Error("area depends on winding")
	}
}

func TestPolygonTooFewVertices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPolygon([]mathx.Vec2{{X: 0, Y: 0}, {X: 1, Y: 1}})
}

func TestUnionDifferenceIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)

	u := Union(a, b)
	if !u.Contains(mathx.V2(1, 1)) || !u.Contains(mathx.V2(14, 14)) {
		t.Error("union missing members")
	}
	if u.Contains(mathx.V2(14, 1)) {
		t.Error("union contains outside point")
	}
	if bb := u.Bounds(); bb.Min != mathx.V2(0, 0) || bb.Max != mathx.V2(15, 15) {
		t.Errorf("union bounds = %+v", bb)
	}

	d := Difference(a, b)
	if !d.Contains(mathx.V2(1, 1)) {
		t.Error("difference lost base point")
	}
	if d.Contains(mathx.V2(7, 7)) {
		t.Error("difference kept hole point")
	}

	x := Intersect(a, b)
	if !x.Contains(mathx.V2(7, 7)) {
		t.Error("intersection missing overlap point")
	}
	if x.Contains(mathx.V2(1, 1)) || x.Contains(mathx.V2(14, 14)) {
		t.Error("intersection contains non-overlap point")
	}
	if bb := x.Bounds(); bb.Min != mathx.V2(5, 5) || bb.Max != mathx.V2(10, 10) {
		t.Errorf("intersection bounds = %+v", bb)
	}
}

func TestEmptyCombinatorsPanic(t *testing.T) {
	for name, f := range map[string]func(){
		"Union":     func() { Union() },
		"Intersect": func() { Intersect() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of nothing did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAreaEstimate(t *testing.T) {
	r := NewRect(0, 0, 10, 4)
	if got := AreaEstimate(r, 100); !mathx.AlmostEqual(got, 40, 1e-9) {
		t.Errorf("rect area estimate = %v", got)
	}
	c := Circle{Center: mathx.V2(0, 0), R: 1}
	if got := AreaEstimate(c, 400); math.Abs(got-math.Pi) > 0.02 {
		t.Errorf("circle area estimate = %v, want ~π", got)
	}
	// Donut: outer 10×10 minus inner 4×4 hole = 84.
	o := OShape(NewRect(0, 0, 10, 10))
	if got := AreaEstimate(o, 500); math.Abs(got-84) > 0.5 {
		t.Errorf("O-shape area = %v, want ~84", got)
	}
}

func TestShapesStayInsideBase(t *testing.T) {
	base := NewRect(0, 0, 100, 100)
	shapes := map[string]Region{
		"C":        CShape(base),
		"O":        OShape(base),
		"X":        XShape(base),
		"H":        HShape(base),
		"Corridor": Corridor(base, 0.2),
	}
	for name, s := range shapes {
		area := AreaEstimate(s, 300)
		if area <= 0 {
			t.Errorf("%s-shape has zero area", name)
		}
		if area >= base.Area() {
			t.Errorf("%s-shape area %v not smaller than base", name, area)
		}
		// Spot check that shape points are within base bounds.
		bb := s.Bounds()
		if bb.Min.X < base.Min.X-1 || bb.Max.X > base.Max.X+1 {
			// XShape intersects with base so must be within; others too.
			if name != "C" { // C's bite extends past but Difference keeps base bounds
				t.Errorf("%s-shape bounds %+v escape base", name, bb)
			}
		}
	}
	// O-shape must exclude its hole and include its ring.
	o := shapes["O"]
	if o.Contains(mathx.V2(50, 50)) {
		t.Error("O-shape contains hole center")
	}
	if !o.Contains(mathx.V2(5, 50)) {
		t.Error("O-shape missing ring point")
	}
	// Corridor height check.
	cor := shapes["Corridor"]
	if cor.Contains(mathx.V2(50, 80)) || !cor.Contains(mathx.V2(50, 50)) {
		t.Error("corridor shape wrong")
	}
}

func TestCorridorBadFraction(t *testing.T) {
	c := Corridor(NewRect(0, 0, 10, 10), -1) // falls back to 0.2
	if !c.Contains(mathx.V2(5, 5)) {
		t.Error("fallback corridor wrong")
	}
}
