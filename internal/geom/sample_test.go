package geom

import (
	"testing"
	"testing/quick"

	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

func TestSampleInStaysInside(t *testing.T) {
	stream := rng.New(1)
	regions := []Region{
		NewRect(0, 0, 10, 10),
		Circle{Center: mathx.V2(5, 5), R: 2},
		OShape(NewRect(0, 0, 100, 100)),
		CShape(NewRect(0, 0, 100, 100)),
		XShape(NewRect(0, 0, 100, 100)),
	}
	for ri, r := range regions {
		for i := 0; i < 500; i++ {
			p, err := SampleIn(r, stream)
			if err != nil {
				t.Fatalf("region %d: %v", ri, err)
			}
			if !r.Contains(p) {
				t.Fatalf("region %d: sample %v outside", ri, p)
			}
		}
	}
}

func TestSampleInEmptyRegionFails(t *testing.T) {
	// Intersection of two disjoint rectangles is empty.
	empty := Intersect(NewRect(0, 0, 1, 1), NewRect(5, 5, 6, 6))
	if _, err := SampleIn(empty, rng.New(2)); err == nil {
		t.Fatal("sampling an empty region succeeded")
	}
}

func TestSampleN(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	pts, err := SampleN(r, 100, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Fatalf("point %v outside", p)
		}
	}
	if _, err := SampleN(Intersect(NewRect(0, 0, 1, 1), NewRect(5, 5, 6, 6)), 1, rng.New(4)); err == nil {
		t.Error("SampleN on empty region succeeded")
	}
}

func TestSampleUniformity(t *testing.T) {
	// Quadrant counts in the unit square should be ~equal.
	r := NewRect(0, 0, 1, 1)
	stream := rng.New(5)
	const n = 20000
	counts := [4]int{}
	for i := 0; i < n; i++ {
		p, err := SampleIn(r, stream)
		if err != nil {
			t.Fatal(err)
		}
		q := 0
		if p.X > 0.5 {
			q |= 1
		}
		if p.Y > 0.5 {
			q |= 2
		}
		counts[q]++
	}
	for q, c := range counts {
		if c < n/4-500 || c > n/4+500 {
			t.Errorf("quadrant %d count %d deviates from %d", q, c, n/4)
		}
	}
}

// Property: rejection-sampled points always lie inside the region they were
// drawn from, for randomly positioned circles inside a box.
func TestSamplePropertyCircles(t *testing.T) {
	stream := rng.New(6)
	f := func(seed uint64) bool {
		s := stream.Split(seed)
		c := Circle{
			Center: mathx.V2(s.Uniform(-50, 50), s.Uniform(-50, 50)),
			R:      s.Uniform(0.5, 10),
		}
		p, err := SampleIn(c, s)
		return err == nil && c.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
