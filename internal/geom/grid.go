package geom

import (
	"fmt"

	"wsnloc/internal/mathx"
)

// Grid discretizes a rectangle into NX×NY equal cells. It is the coordinate
// system for grid-based beliefs in internal/bayes: cell (i, j) covers
// [Min.X + i·CellW, Min.X + (i+1)·CellW) × [Min.Y + j·CellH, …), and its
// probability mass is attributed to the cell center.
type Grid struct {
	Origin mathx.Vec2 // lower-left corner of cell (0,0)
	CellW  float64    // cell width
	CellH  float64    // cell height
	NX, NY int        // number of cells along X and Y
}

// NewGrid covers rect with an nx×ny grid. It panics for non-positive
// dimensions or a degenerate rectangle.
func NewGrid(rect Rect, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic("geom: grid needs positive cell counts")
	}
	w, h := rect.Width(), rect.Height()
	if w <= 0 || h <= 0 {
		panic("geom: grid over a degenerate rectangle")
	}
	return &Grid{
		Origin: rect.Min,
		CellW:  w / float64(nx),
		CellH:  h / float64(ny),
		NX:     nx,
		NY:     ny,
	}
}

// Cells returns the total number of cells NX·NY.
func (g *Grid) Cells() int { return g.NX * g.NY }

// Index converts cell coordinates to a flat index j·NX + i.
func (g *Grid) Index(i, j int) int {
	if i < 0 || i >= g.NX || j < 0 || j >= g.NY {
		panic(fmt.Sprintf("geom: cell (%d,%d) out of %dx%d grid", i, j, g.NX, g.NY))
	}
	return j*g.NX + i
}

// Coords converts a flat index back to cell coordinates.
func (g *Grid) Coords(idx int) (i, j int) {
	if idx < 0 || idx >= g.Cells() {
		panic("geom: flat index out of range")
	}
	return idx % g.NX, idx / g.NX
}

// Center returns the center point of cell (i, j).
func (g *Grid) Center(i, j int) mathx.Vec2 {
	return mathx.V2(
		g.Origin.X+(float64(i)+0.5)*g.CellW,
		g.Origin.Y+(float64(j)+0.5)*g.CellH,
	)
}

// CenterIdx returns the center point of the cell with flat index idx.
func (g *Grid) CenterIdx(idx int) mathx.Vec2 {
	i, j := g.Coords(idx)
	return g.Center(i, j)
}

// CellOf returns the coordinates of the cell containing p, clamped to the
// grid, plus whether p was actually inside the grid extent.
func (g *Grid) CellOf(p mathx.Vec2) (i, j int, inside bool) {
	fi := (p.X - g.Origin.X) / g.CellW
	fj := (p.Y - g.Origin.Y) / g.CellH
	inside = fi >= 0 && fj >= 0 && fi < float64(g.NX) && fj < float64(g.NY)
	i = mathx.ClampInt(int(fi), 0, g.NX-1)
	j = mathx.ClampInt(int(fj), 0, g.NY-1)
	return i, j, inside
}

// IndexOf returns the flat index of the cell containing p (clamped).
func (g *Grid) IndexOf(p mathx.Vec2) int {
	i, j, _ := g.CellOf(p)
	return g.Index(i, j)
}

// Bounds returns the rectangle covered by the grid.
func (g *Grid) Bounds() Rect {
	return Rect{
		Min: g.Origin,
		Max: mathx.V2(g.Origin.X+float64(g.NX)*g.CellW, g.Origin.Y+float64(g.NY)*g.CellH),
	}
}

// CellArea returns the area of a single cell.
func (g *Grid) CellArea() float64 { return g.CellW * g.CellH }

// CellDiag returns the cell diagonal, the spatial resolution of the grid.
func (g *Grid) CellDiag() float64 {
	return mathx.V2(g.CellW, g.CellH).Norm()
}
