// Package geom provides 2-D regions, polygon predicates, and discretization
// grids. Regions express the "pre-knowledge" map information of wsnloc: the
// deployment area, obstacles nodes cannot occupy, and irregular deployment
// shapes (C, O, X, corridors) used in the evaluation.
package geom

import (
	"math"

	"wsnloc/internal/mathx"
)

// Region is a subset of the plane with a known bounding box. Contains must
// be consistent with Bounds: Contains(p) implies Bounds().Contains(p).
type Region interface {
	// Contains reports whether p lies inside the region.
	Contains(p mathx.Vec2) bool
	// Bounds returns an axis-aligned rectangle enclosing the region.
	Bounds() Rect
}

// Rect is an axis-aligned rectangle [Min.X, Max.X] × [Min.Y, Max.Y].
type Rect struct {
	Min, Max mathx.Vec2
}

// NewRect returns the rectangle spanned by (x0,y0)-(x1,y1), normalizing the
// corner order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: mathx.V2(x0, y0), Max: mathx.V2(x1, y1)}
}

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p mathx.Vec2) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Bounds returns the rectangle itself.
func (r Rect) Bounds() Rect { return r }

// Width returns the X extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns width × height.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle midpoint.
func (r Rect) Center() mathx.Vec2 {
	return mathx.V2((r.Min.X+r.Max.X)/2, (r.Min.Y+r.Max.Y)/2)
}

// Clamp returns the point of the rectangle closest to p.
func (r Rect) Clamp(p mathx.Vec2) mathx.Vec2 {
	return mathx.V2(mathx.Clamp(p.X, r.Min.X, r.Max.X), mathx.Clamp(p.Y, r.Min.Y, r.Max.Y))
}

// Expand returns the rectangle grown by margin on all sides.
func (r Rect) Expand(margin float64) Rect {
	return Rect{
		Min: mathx.V2(r.Min.X-margin, r.Min.Y-margin),
		Max: mathx.V2(r.Max.X+margin, r.Max.Y+margin),
	}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: mathx.V2(math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)),
		Max: mathx.V2(math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)),
	}
}

// Circle is a closed disk.
type Circle struct {
	Center mathx.Vec2
	R      float64
}

// Contains reports whether p lies in the closed disk.
func (c Circle) Contains(p mathx.Vec2) bool {
	return p.Dist2(c.Center) <= c.R*c.R
}

// Bounds returns the disk's bounding square.
func (c Circle) Bounds() Rect {
	return Rect{
		Min: mathx.V2(c.Center.X-c.R, c.Center.Y-c.R),
		Max: mathx.V2(c.Center.X+c.R, c.Center.Y+c.R),
	}
}

// Polygon is a simple polygon given by its vertices in order (either
// winding). The boundary is considered inside.
type Polygon struct {
	Verts []mathx.Vec2
	bb    Rect
	bbOK  bool
}

// NewPolygon constructs a polygon, precomputing its bounding box. It panics
// for fewer than 3 vertices.
func NewPolygon(verts []mathx.Vec2) *Polygon {
	if len(verts) < 3 {
		panic("geom: polygon needs at least 3 vertices")
	}
	p := &Polygon{Verts: append([]mathx.Vec2(nil), verts...)}
	bb := Rect{Min: verts[0], Max: verts[0]}
	for _, v := range verts[1:] {
		bb.Min.X = math.Min(bb.Min.X, v.X)
		bb.Min.Y = math.Min(bb.Min.Y, v.Y)
		bb.Max.X = math.Max(bb.Max.X, v.X)
		bb.Max.Y = math.Max(bb.Max.Y, v.Y)
	}
	p.bb, p.bbOK = bb, true
	return p
}

// Contains uses the even-odd ray-casting rule, with an on-edge check so the
// boundary is inside.
func (p *Polygon) Contains(pt mathx.Vec2) bool {
	if p.bbOK && !p.bb.Contains(pt) {
		return false
	}
	n := len(p.Verts)
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := p.Verts[j], p.Verts[i]
		if onSegment(pt, a, b) {
			return true
		}
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			xCross := a.X + (pt.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if pt.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Bounds returns the polygon's bounding box.
func (p *Polygon) Bounds() Rect { return p.bb }

// Area returns the absolute area of the polygon via the shoelace formula.
func (p *Polygon) Area() float64 {
	s := 0.0
	n := len(p.Verts)
	for i := 0; i < n; i++ {
		a, b := p.Verts[i], p.Verts[(i+1)%n]
		s += a.Cross(b)
	}
	return math.Abs(s) / 2
}

// onSegment reports whether pt lies on segment ab (within a small epsilon).
func onSegment(pt, a, b mathx.Vec2) bool {
	const eps = 1e-9
	ab := b.Sub(a)
	ap := pt.Sub(a)
	if math.Abs(ab.Cross(ap)) > eps*(1+ab.Norm()) {
		return false
	}
	d := ab.Dot(ap)
	return d >= -eps && d <= ab.Norm2()+eps
}

// union is the set-union of regions.
type union struct {
	regions []Region
	bb      Rect
}

// Union returns the region covering any of the given regions. It panics for
// an empty list.
func Union(regions ...Region) Region {
	if len(regions) == 0 {
		panic("geom: Union of no regions")
	}
	bb := regions[0].Bounds()
	for _, r := range regions[1:] {
		bb = bb.Union(r.Bounds())
	}
	return &union{regions: regions, bb: bb}
}

func (u *union) Contains(p mathx.Vec2) bool {
	for _, r := range u.regions {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

func (u *union) Bounds() Rect { return u.bb }

// difference is base minus holes.
type difference struct {
	base  Region
	holes []Region
}

// Difference returns the region base ∖ (hole₁ ∪ hole₂ ∪ …).
func Difference(base Region, holes ...Region) Region {
	return &difference{base: base, holes: holes}
}

func (d *difference) Contains(p mathx.Vec2) bool {
	if !d.base.Contains(p) {
		return false
	}
	for _, h := range d.holes {
		if h.Contains(p) {
			return false
		}
	}
	return true
}

func (d *difference) Bounds() Rect { return d.base.Bounds() }

// intersection is the set-intersection of regions.
type intersection struct {
	regions []Region
	bb      Rect
}

// Intersect returns the region contained in all given regions. It panics for
// an empty list.
func Intersect(regions ...Region) Region {
	if len(regions) == 0 {
		panic("geom: Intersect of no regions")
	}
	// The intersection's bounds are the overlap of all bounds; fall back to
	// the first region's bounds if boxes do not overlap (region is empty).
	bb := regions[0].Bounds()
	for _, r := range regions[1:] {
		o := r.Bounds()
		bb.Min.X = math.Max(bb.Min.X, o.Min.X)
		bb.Min.Y = math.Max(bb.Min.Y, o.Min.Y)
		bb.Max.X = math.Min(bb.Max.X, o.Max.X)
		bb.Max.Y = math.Min(bb.Max.Y, o.Max.Y)
	}
	if bb.Min.X > bb.Max.X || bb.Min.Y > bb.Max.Y {
		bb = Rect{Min: regions[0].Bounds().Min, Max: regions[0].Bounds().Min}
	}
	return &intersection{regions: regions, bb: bb}
}

func (x *intersection) Contains(p mathx.Vec2) bool {
	for _, r := range x.regions {
		if !r.Contains(p) {
			return false
		}
	}
	return true
}

func (x *intersection) Bounds() Rect { return x.bb }

// AreaEstimate estimates the area of an arbitrary region by deterministic
// grid quadrature over its bounding box with resolution n×n.
func AreaEstimate(r Region, n int) float64 {
	if n < 2 {
		n = 2
	}
	bb := r.Bounds()
	dx := bb.Width() / float64(n)
	dy := bb.Height() / float64(n)
	count := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := mathx.V2(bb.Min.X+(float64(i)+0.5)*dx, bb.Min.Y+(float64(j)+0.5)*dy)
			if r.Contains(p) {
				count++
			}
		}
	}
	return float64(count) * dx * dy
}
