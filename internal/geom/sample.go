package geom

import (
	"errors"

	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// ErrSamplingFailed is returned when rejection sampling cannot find a point
// inside a region, which indicates a (near-)empty region.
var ErrSamplingFailed = errors.New("geom: rejection sampling failed; region may be empty")

// SampleIn draws a uniform point inside r by rejection sampling from the
// bounding box. For the deployment shapes in this library the acceptance
// rate is well above 10%, so the default trial budget is generous.
func SampleIn(r Region, stream *rng.Stream) (mathx.Vec2, error) {
	bb := r.Bounds()
	const maxTrials = 10000
	for t := 0; t < maxTrials; t++ {
		p := mathx.V2(stream.Uniform(bb.Min.X, bb.Max.X), stream.Uniform(bb.Min.Y, bb.Max.Y))
		if r.Contains(p) {
			return p, nil
		}
	}
	return mathx.Vec2{}, ErrSamplingFailed
}

// SampleN draws n uniform points inside r.
func SampleN(r Region, n int, stream *rng.Stream) ([]mathx.Vec2, error) {
	out := make([]mathx.Vec2, 0, n)
	for i := 0; i < n; i++ {
		p, err := SampleIn(r, stream)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Shapes used by the irregular-topology experiments (E10). All are built
// from region algebra on the unit square scaled to the given rect.

// CShape returns rect minus a bite from its right side, leaving a C.
func CShape(rect Rect) Region {
	w, h := rect.Width(), rect.Height()
	bite := NewRect(
		rect.Min.X+0.33*w, rect.Min.Y+0.25*h,
		rect.Max.X+1, rect.Min.Y+0.75*h,
	)
	return Difference(rect, bite)
}

// OShape returns rect minus a centered hole, leaving an O (donut).
func OShape(rect Rect) Region {
	w, h := rect.Width(), rect.Height()
	hole := NewRect(
		rect.Min.X+0.3*w, rect.Min.Y+0.3*h,
		rect.Min.X+0.7*w, rect.Min.Y+0.7*h,
	)
	return Difference(rect, hole)
}

// XShape returns two crossing diagonal bars inside rect.
func XShape(rect Rect) Region {
	w, h := rect.Width(), rect.Height()
	// Two rotated bars approximated by polygons.
	halfT := 0.14 * (w + h) / 2
	mk := func(a, b mathx.Vec2) Region {
		dir := b.Sub(a).Unit()
		nrm := mathx.V2(-dir.Y, dir.X).Scale(halfT)
		return NewPolygon([]mathx.Vec2{
			a.Add(nrm), b.Add(nrm), b.Sub(nrm), a.Sub(nrm),
		})
	}
	bar1 := mk(rect.Min, rect.Max)
	bar2 := mk(mathx.V2(rect.Min.X, rect.Max.Y), mathx.V2(rect.Max.X, rect.Min.Y))
	return Intersect(Union(bar1, bar2), rect)
}

// Corridor returns a narrow horizontal band through the middle of rect,
// modeling a hallway or pipeline deployment.
func Corridor(rect Rect, fraction float64) Region {
	if fraction <= 0 || fraction > 1 {
		fraction = 0.2
	}
	h := rect.Height()
	mid := (rect.Min.Y + rect.Max.Y) / 2
	return NewRect(rect.Min.X, mid-fraction*h/2, rect.Max.X, mid+fraction*h/2)
}

// HShape returns two vertical bars joined by a horizontal bridge.
func HShape(rect Rect) Region {
	w, h := rect.Width(), rect.Height()
	left := NewRect(rect.Min.X, rect.Min.Y, rect.Min.X+0.25*w, rect.Max.Y)
	right := NewRect(rect.Max.X-0.25*w, rect.Min.Y, rect.Max.X, rect.Max.Y)
	bridge := NewRect(rect.Min.X, rect.Min.Y+0.4*h, rect.Max.X, rect.Min.Y+0.6*h)
	return Union(left, right, bridge)
}
