package geom

import (
	"testing"

	"wsnloc/internal/mathx"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 20), 5, 10)
	if g.Cells() != 50 {
		t.Fatalf("cells = %d", g.Cells())
	}
	if g.CellW != 2 || g.CellH != 2 {
		t.Fatalf("cell size = %v x %v", g.CellW, g.CellH)
	}
	if g.CellArea() != 4 {
		t.Error("cell area wrong")
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 10), 4, 3)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			idx := g.Index(i, j)
			ri, rj := g.Coords(idx)
			if ri != i || rj != j {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", i, j, idx, ri, rj)
			}
		}
	}
}

func TestGridCenterAndCellOf(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 10), 5, 5)
	c := g.Center(0, 0)
	if c != mathx.V2(1, 1) {
		t.Errorf("center(0,0) = %v", c)
	}
	// Center of every cell must map back to that cell.
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			ci, cj, inside := g.CellOf(g.Center(i, j))
			if !inside || ci != i || cj != j {
				t.Fatalf("center of (%d,%d) mapped to (%d,%d) inside=%v", i, j, ci, cj, inside)
			}
		}
	}
}

func TestGridCellOfClamping(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 10), 5, 5)
	i, j, inside := g.CellOf(mathx.V2(-3, 100))
	if inside {
		t.Error("outside point reported inside")
	}
	if i != 0 || j != 4 {
		t.Errorf("clamped cell = (%d,%d)", i, j)
	}
	if idx := g.IndexOf(mathx.V2(-3, 100)); idx != g.Index(0, 4) {
		t.Errorf("IndexOf clamp = %d", idx)
	}
}

func TestGridCenterIdxConsistency(t *testing.T) {
	g := NewGrid(NewRect(-5, -5, 5, 5), 7, 3)
	for idx := 0; idx < g.Cells(); idx++ {
		i, j := g.Coords(idx)
		if g.CenterIdx(idx) != g.Center(i, j) {
			t.Fatalf("CenterIdx mismatch at %d", idx)
		}
	}
}

func TestGridBounds(t *testing.T) {
	r := NewRect(2, 3, 12, 9)
	g := NewGrid(r, 10, 6)
	bb := g.Bounds()
	if !mathx.AlmostEqual(bb.Min.X, 2, 1e-12) || !mathx.AlmostEqual(bb.Max.X, 12, 1e-12) ||
		!mathx.AlmostEqual(bb.Min.Y, 3, 1e-12) || !mathx.AlmostEqual(bb.Max.Y, 9, 1e-12) {
		t.Errorf("bounds = %+v", bb)
	}
	if g.CellDiag() <= 0 {
		t.Error("cell diag not positive")
	}
}

func TestGridPanics(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 1, 1), 2, 2)
	cases := []func(){
		func() { NewGrid(NewRect(0, 0, 1, 1), 0, 5) },
		func() { NewGrid(NewRect(0, 0, 0, 1), 2, 2) },
		func() { g.Index(2, 0) },
		func() { g.Index(0, -1) },
		func() { g.Coords(4) },
		func() { g.Coords(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
