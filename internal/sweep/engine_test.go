package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"wsnloc/internal/alg"
	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

// executions counts how many cells a run actually computed (cached=false
// sweep.cell.done events) — the observable the resume guarantee is stated in.
func executions(m *obs.Memory) int {
	n := 0
	for _, e := range m.ByName("sweep.cell.done") {
		if cached, ok := e.Fields["cached"].(bool); ok && !cached {
			n++
		}
	}
	return n
}

func TestRunCollectsEveryCell(t *testing.T) {
	sw := twoByTwo()
	res, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 || res.Executed != 8 || res.Cached != 0 {
		t.Fatalf("cells=%d executed=%d cached=%d", len(res.Cells), res.Executed, res.Cached)
	}
	for i, c := range res.Cells {
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
		if c.Key == "" || c.Eval.Trials != 2 {
			t.Errorf("cell %d incomplete: key=%q trials=%d", i, c.Key, c.Eval.Trials)
		}
	}
}

// The headline guarantee: a completed sweep resumed against the same output
// directory re-runs zero cells, and its result is identical.
func TestResumeRerunsZeroCompletedCells(t *testing.T) {
	dir := t.TempDir()
	sw := twoByTwo()

	cold := obs.NewMemory()
	first, err := Run(sw, Options{OutDir: dir, Workers: 2, Tracer: cold})
	if err != nil {
		t.Fatal(err)
	}
	if got := executions(cold); got != 8 {
		t.Fatalf("cold run executed %d cells, want 8", got)
	}

	warm := obs.NewMemory()
	second, err := Run(sw, Options{OutDir: dir, Workers: 2, Resume: true, Tracer: warm})
	if err != nil {
		t.Fatal(err)
	}
	if got := executions(warm); got != 0 {
		t.Errorf("resume executed %d cells, want 0", got)
	}
	if second.Executed != 0 || second.Cached != 8 {
		t.Errorf("resume split = executed %d / cached %d", second.Executed, second.Cached)
	}
	for i := range first.Cells {
		a, b := first.Cells[i], second.Cells[i]
		if a.Key != b.Key || !reflect.DeepEqual(a.Eval, b.Eval) {
			t.Errorf("cell %d drifted across resume", i)
		}
	}
}

// cancelAfter cancels a context once n sweep.cell.done events have been
// emitted — a deterministic mid-sweep kill when Workers is 1.
type cancelAfter struct {
	mu     sync.Mutex
	left   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Enabled() bool { return true }
func (c *cancelAfter) Emit(e obs.Event) {
	if e.Name != "sweep.cell.done" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.left--
	if c.left == 0 {
		c.cancel()
	}
}

func TestKilledSweepResumesWithoutRecomputing(t *testing.T) {
	dir := t.TempDir()
	sw := twoByTwo()
	const completed = 3

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ca := &cancelAfter{left: completed, cancel: cancel}
	if _, err := RunCtx(ctx, sw, Options{OutDir: dir, Workers: 1, Tracer: ca}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Len(); got != completed {
		t.Fatalf("killed run cached %d cells, want %d", got, completed)
	}

	warm := obs.NewMemory()
	res, err := Run(sw, Options{OutDir: dir, Workers: 1, Resume: true, Tracer: warm})
	if err != nil {
		t.Fatal(err)
	}
	if got := executions(warm); got != 8-completed {
		t.Errorf("resume executed %d cells, want %d", got, 8-completed)
	}
	if res.Cached != completed || res.Executed != 8-completed {
		t.Errorf("resume split = executed %d / cached %d", res.Executed, res.Cached)
	}
}

// The merged summary is a pure function of the cell evaluations: a fully
// cached run must produce byte-identical summary output to the cold run.
func TestSummaryByteIdenticalColdVsCached(t *testing.T) {
	dir := t.TempDir()
	sw := twoByTwo()

	first, err := Run(sw, Options{OutDir: dir, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(sw, Options{OutDir: dir, Workers: 1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached != len(second.Cells) {
		t.Fatalf("second run not fully cached: %d/%d", second.Cached, len(second.Cells))
	}
	var a, b bytes.Buffer
	if err := first.Summary().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.Summary().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("summaries differ:\ncold:\n%s\ncached:\n%s", a.String(), b.String())
	}
}

// Worker count is a wall-clock knob: every pool size yields the same cells.
func TestWorkerCountInvariance(t *testing.T) {
	sw := twoByTwo()
	base, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		res, err := Run(sw, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Cells {
			if !reflect.DeepEqual(base.Cells[i].Eval, res.Cells[i].Eval) {
				t.Errorf("workers=%d: cell %d differs from sequential", w, i)
			}
		}
	}
}

func TestJournalRecordsProgress(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(twoByTwo(), Options{OutDir: dir, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(data, []byte("\n"))
	// sweep.start + 8 × (sweep.cell.start + sweep.cell.done) + sweep.done
	if lines != 18 {
		t.Errorf("journal lines = %d, want 18\n%s", lines, data)
	}
	if !bytes.Contains(data, []byte(`"event":"sweep.done"`)) {
		t.Error("journal missing sweep.done")
	}
}

func TestRunBadInputs(t *testing.T) {
	if _, err := Run(Spec{}, Options{}); !errors.Is(err, wsnerr.ErrBadSpec) {
		t.Errorf("empty sweep: err = %v, want ErrBadSpec", err)
	}
	if _, err := Run(twoByTwo(), Options{Workers: -2}); !errors.Is(err, wsnerr.ErrBadConfig) {
		t.Errorf("negative workers: err = %v, want ErrBadConfig", err)
	}
}

// The seed axis must actually vary the computation: different seeds,
// different per-cell error samples.
func TestSeedAxisVariesResults(t *testing.T) {
	sw := Spec{
		Scenarios:  []alg.Scenario{{N: 30, Field: 50, Seed: 1}},
		Algorithms: []string{"centroid"},
		Seeds:      []uint64{1, 2},
		Trials:     1,
	}
	res, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res.Cells[0].Eval.Errors, res.Cells[1].Eval.Errors) {
		t.Error("seed axis produced identical error samples")
	}
}
