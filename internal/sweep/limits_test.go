package sweep

import (
	"errors"
	"testing"

	"wsnloc/internal/alg"
	"wsnloc/internal/wsnerr"
)

// TestSweepValidateGridCeilings pins the size-guard satellite on the sweep
// axis product: a document whose grid expands past MaxCells (or whose trial
// count passes MaxTrials) fails validation with ErrBadSpec before the cell
// slice is allocated.
func TestSweepValidateGridCeilings(t *testing.T) {
	base := Spec{
		Scenarios:  []alg.Scenario{{N: 30}},
		Algorithms: []string{"centroid"},
	}

	t.Run("trials over ceiling", func(t *testing.T) {
		sw := base
		sw.Trials = MaxTrials + 1
		if err := sw.Validate(); !errors.Is(err, wsnerr.ErrBadSpec) {
			t.Fatalf("Validate() = %v, want ErrBadSpec", err)
		}
	})

	t.Run("cell product over ceiling", func(t *testing.T) {
		// 2050 seeds × 1025 option sets ≈ 2.1M cells > MaxCells, while each
		// individual axis stays modest — only the product trips the guard.
		sw := base
		sw.Seeds = make([]uint64, 2050)
		for i := range sw.Seeds {
			sw.Seeds[i] = uint64(i)
		}
		sw.AlgOpts = make([]alg.Opts, 1025)
		err := sw.Validate()
		if !errors.Is(err, wsnerr.ErrBadSpec) {
			t.Fatalf("Validate() = %v, want ErrBadSpec", err)
		}
		if _, err := sw.Cells(); !errors.Is(err, wsnerr.ErrBadSpec) {
			t.Fatalf("Cells() = %v, want ErrBadSpec", err)
		}
	})

	t.Run("cell product at ceiling passes", func(t *testing.T) {
		sw := base
		sw.Seeds = make([]uint64, 64)
		for i := range sw.Seeds {
			sw.Seeds[i] = uint64(i)
		}
		if err := sw.Validate(); err != nil {
			t.Fatalf("Validate() = %v, want nil", err)
		}
	})
}
