package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"wsnloc/internal/metrics"
)

// The merge step: pool the per-cell evaluations into the paper-style
// accuracy curves — error versus anchor fraction and versus ranging noise,
// one series per algorithm. Summaries are fully deterministic functions of
// the cell evaluations (no wall times, no timestamps), so a cached sweep's
// summary is byte-identical to a cold run's.

// finiteOr keeps the summary JSON-encodable: error statistics are +Inf when
// an algorithm localizes nothing, which encoding/json rejects.
func finiteOr(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}

// CellStats is one cell's scored outcome inside a summary. Error fields are
// -1 when the cell localized nothing.
type CellStats struct {
	Index       int     `json:"cell"`
	Algorithm   string  `json:"algorithm"`
	N           int     `json:"n"`
	AnchorFrac  float64 `json:"anchor_frac"`
	NoiseFrac   float64 `json:"noise_frac"`
	Seed        uint64  `json:"seed"`
	Trials      int     `json:"trials"`
	Key         string  `json:"key"`
	MeanErr     float64 `json:"mean_err_m"`
	MedianErr   float64 `json:"median_err_m"`
	RMSE        float64 `json:"rmse_m"`
	P95Err      float64 `json:"p95_err_m"`
	NormRMSE    float64 `json:"rmse_r"`
	Coverage    float64 `json:"coverage"`
	MsgsPerNode float64 `json:"msgs_per_node"`
}

// Point is one pooled point of a curve: every cell of the algorithm whose
// axis value is X, merged.
type Point struct {
	X        float64 `json:"x"`
	Cells    int     `json:"cells"`
	Trials   int     `json:"trials"`
	MeanErr  float64 `json:"mean_err_m"`
	RMSE     float64 `json:"rmse_m"`
	NormRMSE float64 `json:"rmse_r"`
	Coverage float64 `json:"coverage"`
}

// Curve is one algorithm's trajectory along one scenario axis.
type Curve struct {
	Algorithm string  `json:"algorithm"`
	// Axis is the swept scenario field: "anchor_frac" or "noise_frac".
	Axis   string  `json:"axis"`
	Points []Point `json:"points"`
}

// Summary is the merged outcome of a sweep.
type Summary struct {
	Name   string      `json:"name,omitempty"`
	Engine int         `json:"engine_version"`
	Cells  []CellStats `json:"cells"`
	Curves []Curve     `json:"curves"`
}

// axes lists the scenario fields summaries group by.
var axes = []struct {
	name string
	of   func(CellStats) float64
}{
	{"anchor_frac", func(c CellStats) float64 { return c.AnchorFrac }},
	{"noise_frac", func(c CellStats) float64 { return c.NoiseFrac }},
}

// Summary merges the result's cells into per-cell stats and per-algorithm
// curves. Deterministic: cells in index order, algorithms sorted, points
// sorted by axis value.
func (r *Result) Summary() *Summary {
	out := &Summary{Name: r.Spec.Name, Engine: EngineVersion}
	evals := make(map[int]metrics.Eval, len(r.Cells))
	for _, cr := range r.Cells {
		s := cr.Cell.Spec.Scenario.Defaults()
		e := cr.Eval
		out.Cells = append(out.Cells, CellStats{
			Index:       cr.Index,
			Algorithm:   cr.Cell.Spec.Algorithm,
			N:           s.N,
			AnchorFrac:  s.AnchorFrac,
			NoiseFrac:   s.NoiseFrac,
			Seed:        cr.Cell.Spec.Seed,
			Trials:      cr.Cell.Trials,
			Key:         cr.Key,
			MeanErr:     finiteOr(e.MeanErr(), -1),
			MedianErr:   finiteOr(e.MedianErr(), -1),
			RMSE:        finiteOr(e.RMSE(), -1),
			P95Err:      finiteOr(e.P95Err(), -1),
			NormRMSE:    finiteOr(e.NormRMSE(), -1),
			Coverage:    e.Coverage(),
			MsgsPerNode: e.MsgsPerNode(),
		})
		evals[cr.Index] = cr.Eval
	}
	sort.Slice(out.Cells, func(i, j int) bool { return out.Cells[i].Index < out.Cells[j].Index })

	algNames := map[string]bool{}
	for _, c := range out.Cells {
		algNames[c.Algorithm] = true
	}
	sorted := make([]string, 0, len(algNames))
	for n := range algNames {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	for _, axis := range axes {
		for _, name := range sorted {
			// Pool every cell of this algorithm sharing an axis value, in
			// cell-index order so the merge is deterministic.
			byX := map[float64][]metrics.Eval{}
			counts := map[float64][]int{} // cells, trials
			for _, c := range out.Cells {
				if c.Algorithm != name {
					continue
				}
				x := axis.of(c)
				byX[x] = append(byX[x], evals[c.Index])
				if counts[x] == nil {
					counts[x] = []int{0, 0}
				}
				counts[x][0]++
				counts[x][1] += c.Trials
			}
			xs := make([]float64, 0, len(byX))
			for x := range byX {
				xs = append(xs, x)
			}
			sort.Float64s(xs)
			cu := Curve{Algorithm: name, Axis: axis.name}
			for _, x := range xs {
				merged := metrics.Merge(byX[x]...)
				cu.Points = append(cu.Points, Point{
					X:        x,
					Cells:    counts[x][0],
					Trials:   counts[x][1],
					MeanErr:  finiteOr(merged.MeanErr(), -1),
					RMSE:     finiteOr(merged.RMSE(), -1),
					NormRMSE: finiteOr(merged.NormRMSE(), -1),
					Coverage: merged.Coverage(),
				})
			}
			out.Curves = append(out.Curves, cu)
		}
	}
	return out
}

// WriteJSON writes the summary as one indented JSON document. Equal
// summaries produce byte-identical output.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Table renders the curves as plain-text tables (one block per axis, one
// row per algorithm, one column per axis value) for CLI output.
func (s *Summary) Table() string {
	var b strings.Builder
	for _, axisName := range []string{"anchor_frac", "noise_frac"} {
		curves := make([]Curve, 0, len(s.Curves))
		xsSet := map[float64]bool{}
		for _, c := range s.Curves {
			if c.Axis != axisName {
				continue
			}
			curves = append(curves, c)
			for _, p := range c.Points {
				xsSet[p.X] = true
			}
		}
		if len(curves) == 0 || len(xsSet) < 2 {
			continue // a single value is not a curve worth a table
		}
		xs := make([]float64, 0, len(xsSet))
		for x := range xsSet {
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		fmt.Fprintf(&b, "rmse (R) vs %s\n", axisName)
		fmt.Fprintf(&b, "%-16s", "algorithm")
		for _, x := range xs {
			fmt.Fprintf(&b, " %8.3g", x)
		}
		b.WriteString("\n")
		for _, c := range curves {
			fmt.Fprintf(&b, "%-16s", c.Algorithm)
			at := map[float64]Point{}
			for _, p := range c.Points {
				at[p.X] = p
			}
			for _, x := range xs {
				if p, ok := at[x]; ok && p.NormRMSE >= 0 {
					fmt.Fprintf(&b, " %8.3f", p.NormRMSE)
				} else {
					fmt.Fprintf(&b, " %8s", "-")
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
