package sweep

import (
	"encoding/json"
	"errors"
	"testing"

	"wsnloc/internal/alg"
	"wsnloc/internal/wsnerr"
)

func twoByTwo() Spec {
	return Spec{
		Name: "t",
		Scenarios: []alg.Scenario{
			{N: 25, Field: 45, AnchorFrac: 0.2, Seed: 1},
			{N: 25, Field: 45, AnchorFrac: 0.4, Seed: 2},
		},
		Algorithms: []string{"centroid", "min-max"},
		Seeds:      []uint64{3, 4},
		Trials:     2,
	}
}

func TestNormalizeFillsAxes(t *testing.T) {
	sw := Spec{Scenarios: []alg.Scenario{{}}, Algorithms: []string{"centroid"}}.Normalize()
	if sw.Version != SpecVersion {
		t.Errorf("version = %d", sw.Version)
	}
	if len(sw.AlgOpts) != 1 || len(sw.Seeds) != 1 || sw.Seeds[0] != 1 || sw.Trials != 1 {
		t.Errorf("axes not defaulted: %+v", sw)
	}
}

func TestCellsExpansionOrder(t *testing.T) {
	cells, err := twoByTwo().Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	// Scenario-major, then algorithm, then seed.
	want := []struct {
		anchor float64
		name   string
		seed   uint64
	}{
		{0.2, "centroid", 3}, {0.2, "centroid", 4},
		{0.2, "min-max", 3}, {0.2, "min-max", 4},
		{0.4, "centroid", 3}, {0.4, "centroid", 4},
		{0.4, "min-max", 3}, {0.4, "min-max", 4},
	}
	for i, w := range want {
		c := cells[i]
		if c.Spec.Scenario.AnchorFrac != w.anchor || c.Spec.Algorithm != w.name ||
			c.Spec.Seed != w.seed || c.Trials != 2 {
			t.Errorf("cell %d = %v/%s/%d, want %v", i,
				c.Spec.Scenario.AnchorFrac, c.Spec.Algorithm, c.Spec.Seed, w)
		}
	}
}

func TestSweepValidate(t *testing.T) {
	cases := []struct {
		name string
		sw   Spec
	}{
		{"no scenarios", Spec{Algorithms: []string{"centroid"}}},
		{"no algorithms", Spec{Scenarios: []alg.Scenario{{}}}},
		{"unknown algorithm", Spec{Scenarios: []alg.Scenario{{}}, Algorithms: []string{"nope"}}},
		{"bad scenario", Spec{Scenarios: []alg.Scenario{{N: -4}}, Algorithms: []string{"centroid"}}},
		{"bad opts", Spec{Scenarios: []alg.Scenario{{}}, Algorithms: []string{"centroid"},
			AlgOpts: []alg.Opts{{GridN: -1}}}},
		{"negative trials", Spec{Scenarios: []alg.Scenario{{}}, Algorithms: []string{"centroid"},
			Trials: -2}},
		{"bad version", Spec{Version: 7, Scenarios: []alg.Scenario{{}}, Algorithms: []string{"centroid"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.sw.Validate(); !errors.Is(err, wsnerr.ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
			if _, err := tc.sw.Cells(); err == nil {
				t.Error("Cells accepted an invalid sweep")
			}
		})
	}
	if err := twoByTwo().Validate(); err != nil {
		t.Errorf("valid sweep rejected: %v", err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	doc := []byte(`{
		"name": "curves",
		"scenarios": [{"N": 30, "AnchorFrac": 0.1}, {"N": 30, "AnchorFrac": 0.3}],
		"algorithms": ["centroid", "dv-hop"],
		"seeds": [1, 2, 3],
		"trials": 4
	}`)
	sw, err := ParseSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Version != SpecVersion || sw.Trials != 4 || len(sw.Seeds) != 3 {
		t.Errorf("parsed = %+v", sw)
	}
	enc, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := ParseSpec(enc)
	if err != nil {
		t.Fatalf("round-trip: %v\n%s", err, enc)
	}
	c1, _ := sw.Cells()
	c2, _ := rt.Cells()
	if len(c1) != len(c2) {
		t.Fatalf("round-trip changed expansion: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		k1, err1 := c1[i].Key()
		k2, err2 := c2[i].Key()
		if err1 != nil || err2 != nil || k1 != k2 {
			t.Errorf("cell %d key drifted: %s vs %s (%v/%v)", i, k1, k2, err1, err2)
		}
	}
	if _, err := ParseSpec([]byte(`{"scenarios":`)); !errors.Is(err, wsnerr.ErrBadSpec) {
		t.Errorf("truncated doc: err = %v", err)
	}
}

// Cell keys inherit the Spec hash contract: execution knobs don't key,
// semantics (including the trial count and engine version domain) do.
func TestCellKeyProperties(t *testing.T) {
	base := Cell{
		Spec:   alg.Spec{Algorithm: "bncl-grid", Scenario: alg.Scenario{N: 40, Seed: 2}, Seed: 5},
		Trials: 3,
	}
	k, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	workers := base
	workers.Spec.AlgOpts.Workers = 16
	if kw, _ := workers.Key(); kw != k {
		t.Error("Workers changed the cell key")
	}
	filled := base
	filled.Spec.Scenario = filled.Spec.Scenario.Defaults()
	if kf, _ := filled.Key(); kf != k {
		t.Error("default-filled scenario changed the cell key")
	}
	trials := base
	trials.Trials = 4
	if kt, _ := trials.Key(); kt == k {
		t.Error("trial count did not change the cell key")
	}
	seed := base
	seed.Spec.Seed = 6
	if ks, _ := seed.Key(); ks == k {
		t.Error("seed did not change the cell key")
	}
	// A cell key is not a bare spec hash: the engine-version domain is in.
	if sh, _ := base.Spec.Hash(); sh == k {
		t.Error("cell key collides with the raw spec hash")
	}
}
