package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// summaryBytes renders a result's summary exactly as the CLI writes it.
func summaryBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Summary().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runShards executes every shard of an S-way split of sw against dir.
func runShards(t *testing.T, sw Spec, dir string, shards int) {
	t.Helper()
	for idx := 0; idx < shards; idx++ {
		if _, err := Run(sw, Options{
			OutDir: dir, Workers: 2, Resume: true, Shards: shards, ShardIndex: idx,
		}); err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
	}
}

// TestMergeShardedMatchesSingleProcess: a 3-shard run of the cheap sweep,
// merged, is byte-identical to one process walking the whole grid.
func TestMergeShardedMatchesSingleProcess(t *testing.T) {
	sw := cheapSweep()
	ref, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, ref)

	dir := t.TempDir()
	runShards(t, sw, dir, 3)
	merged, err := Merge(sw, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryBytes(t, merged); !bytes.Equal(got, want) {
		t.Errorf("merged summary drifted from single-process run\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMergeFromJournalsAlone: with the object cache deleted, the per-shard
// journals are sufficient to reconstruct the identical summary.
func TestMergeFromJournalsAlone(t *testing.T) {
	sw := cheapSweep()
	ref, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, ref)

	dir := t.TempDir()
	runShards(t, sw, dir, 3)
	if err := os.RemoveAll(filepath.Join(dir, "objects")); err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(sw, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryBytes(t, merged); !bytes.Equal(got, want) {
		t.Error("journal-only merge drifted from single-process run")
	}
}

// TestMergeFromCacheAlone: with every journal deleted, the content-addressed
// cache alone reconstructs the identical summary.
func TestMergeFromCacheAlone(t *testing.T) {
	sw := cheapSweep()
	ref, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, ref)

	dir := t.TempDir()
	runShards(t, sw, dir, 3)
	journals, err := filepath.Glob(filepath.Join(dir, "journal.*.jsonl"))
	if err != nil || len(journals) == 0 {
		t.Fatalf("journals: %v (%d found)", err, len(journals))
	}
	for _, j := range journals {
		if err := os.Remove(j); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(sw, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryBytes(t, merged); !bytes.Equal(got, want) {
		t.Error("cache-only merge drifted from single-process run")
	}
}

// TestMergeIncomplete: merging before every shard has run reports the typed
// incompleteness error, never a partial summary.
func TestMergeIncomplete(t *testing.T) {
	sw := cheapSweep()
	dir := t.TempDir()
	const shards = 3
	res, err := Run(sw, Options{OutDir: dir, Workers: 1, Shards: shards, ShardIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped == 0 {
		t.Skip("shard 0 owns the whole grid under this hash split")
	}
	if _, err := Merge(sw, dir); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("merge of one shard: got %v, want ErrIncomplete", err)
	}
	if _, err := Merge(sw, t.TempDir()); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("merge of empty dir: got %v, want ErrIncomplete", err)
	}
}

// TestMergeRejectsInconsistentJournal: an authentic record whose cell index
// or trial count contradicts the expanded grid — a journal from a different
// sweep document — is a typed ErrBadJournal, and so are two authentic
// records that disagree about one cell's result.
func TestMergeRejectsInconsistentJournal(t *testing.T) {
	sw := cheapSweep()
	ref, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	writeJournal := func(t *testing.T, dir string, recs []cellRecord) {
		t.Helper()
		var buf bytes.Buffer
		for _, r := range recs {
			sum, err := r.checksum()
			if err != nil {
				t.Fatal(err)
			}
			r.Sum = sum
			line, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(dir, ShardJournalName(0)), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	authentic := make([]cellRecord, len(ref.Cells))
	for i, cr := range ref.Cells {
		authentic[i] = cellRecord{
			V: journalVersion, Engine: EngineVersion,
			Cell: cr.Index, Key: cr.Key, Trials: cr.Cell.Trials, Eval: cr.Eval,
		}
	}

	t.Run("wrong cell index", func(t *testing.T) {
		recs := append([]cellRecord(nil), authentic...)
		recs[0].Cell = recs[0].Cell + 1
		dir := t.TempDir()
		writeJournal(t, dir, recs)
		if _, err := Merge(sw, dir); !errors.Is(err, ErrBadJournal) {
			t.Fatalf("got %v, want ErrBadJournal", err)
		}
	})
	t.Run("wrong trial count", func(t *testing.T) {
		recs := append([]cellRecord(nil), authentic...)
		recs[0].Trials = recs[0].Trials + 5
		dir := t.TempDir()
		writeJournal(t, dir, recs)
		if _, err := Merge(sw, dir); !errors.Is(err, ErrBadJournal) {
			t.Fatalf("got %v, want ErrBadJournal", err)
		}
	})
	t.Run("conflicting duplicate", func(t *testing.T) {
		recs := append([]cellRecord(nil), authentic...)
		forged := authentic[0]
		forged.Eval.Messages += 7
		recs = append(recs, forged)
		dir := t.TempDir()
		writeJournal(t, dir, recs)
		if _, err := Merge(sw, dir); !errors.Is(err, ErrBadJournal) {
			t.Fatalf("got %v, want ErrBadJournal", err)
		}
	})
	t.Run("foreign keys are ignored", func(t *testing.T) {
		recs := append([]cellRecord(nil), authentic...)
		foreign := authentic[0]
		foreign.Key = "feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"
		recs = append(recs, foreign)
		dir := t.TempDir()
		writeJournal(t, dir, recs)
		merged, err := Merge(sw, dir)
		if err != nil {
			t.Fatalf("foreign record broke the merge: %v", err)
		}
		if got, want := summaryBytes(t, merged), summaryBytes(t, ref); !bytes.Equal(got, want) {
			t.Error("foreign record changed the summary")
		}
	})
}

// TestGoldenSummaryShardedMerge is the acceptance gate: a 3-shard run of
// the golden sweep spec, merged, reproduces the committed single-process
// golden summary byte-for-byte.
func TestGoldenSummaryShardedMerge(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "summary.json"))
	if err != nil {
		t.Skipf("golden file not generated yet: %v", err)
	}
	sw := goldenSweep()
	dir := t.TempDir()
	runShards(t, sw, dir, 3)
	merged, err := Merge(sw, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryBytes(t, merged); !bytes.Equal(got, want) {
		t.Errorf("3-shard merged summary drifted from the committed golden\ngot:\n%s", got)
	}
}

// TestGoldenSummaryShardCrashResume is the crash-resume acceptance gate:
// one shard of the golden sweep is killed mid-journal — its journal
// truncated at a random byte (the torn partial line of a SIGKILL) and the
// cache objects of its unjournaled cells removed — then restarted with
// resume; the merged summary must still match the committed golden bytes.
func TestGoldenSummaryShardCrashResume(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "summary.json"))
	if err != nil {
		t.Skipf("golden file not generated yet: %v", err)
	}
	sw := goldenSweep()
	dir := t.TempDir()
	const shards = 3

	// Shard 0 completes cleanly.
	if _, err := Run(sw, Options{OutDir: dir, Workers: 2, Shards: shards, ShardIndex: 0}); err != nil {
		t.Fatal(err)
	}

	// Shard 1 completes, then we rewind its on-disk state to what a SIGKILL
	// mid-run would have left behind.
	res1, err := Run(sw, Options{OutDir: dir, Workers: 1, Shards: shards, ShardIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, ShardJournalName(1))
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	if len(lines) == 0 {
		t.Skip("shard 1 owns no cells under this hash split")
	}
	// Keep half the records whole and tear into the middle of the next line
	// at a (seeded) random byte — the torn partial write of a kill.
	r := rand.New(rand.NewSource(42))
	keep := len(lines) / 2
	torn := 0
	if keep < len(lines) {
		torn = 1 + r.Intn(len(lines[keep])-1)
	}
	cut := 0
	for _, l := range lines[:keep] {
		cut += len(l)
	}
	if err := os.Truncate(jpath, int64(cut+torn)); err != nil {
		t.Fatal(err)
	}
	// Cells journaled past the tear never finished as far as a resume can
	// trust the journal — but the torn line's own cell DID reach the cache
	// (store precedes journal). Model the worst case: drop the cache
	// objects of every record past the tear except the torn one.
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := keep + 1; i < len(lines); i++ {
		recs, _ := readJournalRecords(lines[i])
		for _, rec := range recs {
			if err := os.Remove(cache.path(rec.Key)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Merging now must refuse: the grid is incomplete (unless the tear
	// landed after shard 1's last cell and shard 2 owns nothing, which the
	// golden split does not produce).
	if _, err := Merge(sw, dir); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("merge of crashed state: got %v, want ErrIncomplete", err)
	}

	// Restart shard 1 (resume), then run shard 2.
	res1b, err := Run(sw, Options{OutDir: dir, Workers: 2, Resume: true, Shards: shards, ShardIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1b.Cells) != len(res1.Cells) {
		t.Fatalf("resumed shard resolved %d cells, first run %d", len(res1b.Cells), len(res1.Cells))
	}
	if _, err := Run(sw, Options{OutDir: dir, Workers: 2, Shards: shards, ShardIndex: 2}); err != nil {
		t.Fatal(err)
	}

	merged, err := Merge(sw, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryBytes(t, merged); !bytes.Equal(got, want) {
		t.Errorf("crash-resumed 3-shard merge drifted from the committed golden\ngot:\n%s", got)
	}
}

// TestShardConcurrentWorkersLeaseStealing races six worker "processes" over
// a 2-shard grid against one cache directory, with pre-planted stale leases
// so the takeover path executes, under the race detector in CI. Every
// worker must finish (possibly after ErrShardHeld retries), no two
// authentic journal records may disagree about a cell, and the merged
// summary must match the single-process run byte-for-byte.
func TestShardConcurrentWorkersLeaseStealing(t *testing.T) {
	sw := cheapSweep()
	ref, err := Run(sw, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, ref)

	dir := t.TempDir()
	const shards = 2
	// Plant stale leases: a previous fleet that died without releasing.
	old := time.Now().Add(-time.Hour)
	for i := 0; i < shards; i++ {
		if _, _, err := AcquireShardLease(dir, i, "corpse", time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(leasePath(dir, i), old, old); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 6
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 0; attempt < 200; attempt++ {
				_, err := Run(sw, Options{
					OutDir: dir, Workers: 2, Resume: true,
					Shards: shards, ShardIndex: g % shards,
					LeaseTTL: 250 * time.Millisecond,
					Owner:    fmt.Sprintf("worker-%d", g),
				})
				if errors.Is(err, ErrShardHeld) {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				errs[g] = err
				return
			}
			errs[g] = errors.New("shard held through every retry")
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", g, err)
		}
	}

	// No cell computed with conflicting results: every authentic record of
	// one key carries the same evaluation (Merge re-verifies this and would
	// fail with ErrBadJournal otherwise).
	journals, err := filepath.Glob(filepath.Join(dir, "journal.*.jsonl"))
	if err != nil || len(journals) != shards {
		t.Fatalf("journals: %v (%d found, want %d)", err, len(journals), shards)
	}
	merged, err := Merge(sw, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := summaryBytes(t, merged); !bytes.Equal(got, want) {
		t.Error("concurrent sharded run drifted from the single-process summary")
	}
}
