package sweep

import (
	"errors"
	"os"
	"testing"
	"time"
)

func TestLeaseExclusiveAcquire(t *testing.T) {
	dir := t.TempDir()
	l, stole, err := AcquireShardLease(dir, 0, "a", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if stole {
		t.Error("fresh acquire reported a steal")
	}
	defer l.Release()
	if _, _, err := AcquireShardLease(dir, 0, "b", time.Minute); !errors.Is(err, ErrShardHeld) {
		t.Fatalf("second acquire: got %v, want ErrShardHeld", err)
	}
	// A different shard of the same directory is independent.
	l1, _, err := AcquireShardLease(dir, 1, "b", time.Minute)
	if err != nil {
		t.Fatalf("sibling shard: %v", err)
	}
	l1.Release()
}

func TestLeaseReleaseThenReacquire(t *testing.T) {
	dir := t.TempDir()
	l, _, err := AcquireShardLease(dir, 0, "a", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	l2, stole, err := AcquireShardLease(dir, 0, "b", time.Minute)
	if err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	if stole {
		t.Error("reacquire after clean release reported a steal")
	}
	l2.Release()
}

// TestLeaseStaleTakeover is the crash recovery path: a lease whose holder
// stopped heartbeating longer than a TTL ago is stolen, and the dead
// holder's eventual Release must not delete the new holder's claim.
func TestLeaseStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	dead, _, err := AcquireShardLease(dir, 0, "dead", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: no heartbeat, mtime pushed past the TTL.
	old := time.Now().Add(-time.Second)
	if err := os.Chtimes(leasePath(dir, 0), old, old); err != nil {
		t.Fatal(err)
	}
	alive, stole, err := AcquireShardLease(dir, 0, "alive", 50*time.Millisecond)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if !stole {
		t.Error("takeover did not report the steal")
	}
	// The dead worker's Release is a no-op now: the file names "alive".
	dead.Release()
	if !alive.stillOwned() {
		t.Fatal("previous holder's Release removed the new holder's lease")
	}
	alive.Release()
}

// TestLeaseHeartbeatKeepsClaim: a held lease with a live heartbeat stays
// unstealable well past its TTL.
func TestLeaseHeartbeatKeepsClaim(t *testing.T) {
	dir := t.TempDir()
	ttl := 80 * time.Millisecond
	l, _, err := AcquireShardLease(dir, 0, "a", ttl)
	if err != nil {
		t.Fatal(err)
	}
	l.Heartbeat(10 * time.Millisecond)
	defer l.Release()
	deadline := time.Now().Add(4 * ttl)
	for time.Now().Before(deadline) {
		if _, _, err := AcquireShardLease(dir, 0, "b", ttl); !errors.Is(err, ErrShardHeld) {
			t.Fatalf("heartbeated lease stolen: %v", err)
		}
		time.Sleep(ttl / 4)
	}
	if l.Lost() {
		t.Error("holder believes the lease lost")
	}
}

// TestLeaseHeartbeatDetectsSteal: a holder whose lease is taken over (it
// went stale while the process was paused) notices via the heartbeat.
func TestLeaseHeartbeatDetectsSteal(t *testing.T) {
	dir := t.TempDir()
	l, _, err := AcquireShardLease(dir, 0, "victim", 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The steal happens before the victim's first heartbeat.
	old := time.Now().Add(-time.Second)
	if err := os.Chtimes(leasePath(dir, 0), old, old); err != nil {
		t.Fatal(err)
	}
	thief, _, err := AcquireShardLease(dir, 0, "thief", 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer thief.Release()
	l.Heartbeat(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for !l.Lost() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !l.Lost() {
		t.Fatal("victim never noticed the steal")
	}
	l.Release()
	if !thief.stillOwned() {
		t.Fatal("victim's Release removed the thief's lease")
	}
}
