package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"wsnloc/internal/metrics"
)

// Per-shard journals. A sharded run appends one self-validating JSON line
// per resolved cell (computed or cache-hit) to journal.<shard>.jsonl, so
// the output directory accumulates a durable, append-only record of every
// completed cell even when workers die between cache writes. Merge folds
// these journals — plus the content-addressed cache itself — back into the
// full sweep result; because every record carries the cell's key and a
// checksum over its own content, a merge either reproduces the canonical
// summary byte-for-byte or fails with a typed error, never silently drifts.
//
// Torn lines are expected, not exceptional: a SIGKILL mid-write leaves a
// partial record (possibly mid-file after a resume appends past it), which
// fails to parse or fails its checksum and is skipped — the cell it named
// is recovered from a duplicate record or from the cache.

// journalVersion is the per-shard journal line schema version.
const journalVersion = 1

// ShardJournalName returns the journal filename of one shard. (The
// unsharded engine's "journal.jsonl" is a different artifact — the obs
// trace-event checkpoint stream — and is ignored by Merge.)
func ShardJournalName(shard int) string {
	return fmt.Sprintf("journal.%d.jsonl", shard)
}

// cellRecord is one journal line: a completed cell's identity and pooled
// evaluation. Sum is the record's own checksum (sha-256 prefix over the
// canonical encoding with Sum empty), so corruption that still parses as
// JSON is detected rather than merged.
type cellRecord struct {
	V      int          `json:"v"`
	Engine int          `json:"engine"`
	Cell   int          `json:"cell"`
	Key    string       `json:"key"`
	Trials int          `json:"trials"`
	Eval   metrics.Eval `json:"eval"`
	Sum    string       `json:"sum,omitempty"`
}

// checksum returns the record's content checksum (16 hex digits).
func (r cellRecord) checksum() (string, error) {
	r.Sum = ""
	data, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("sweep: journal record: %w", err)
	}
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:8]), nil
}

// valid reports whether the record is an authentic line of the current
// journal schema: version and engine match and the checksum verifies.
func (r cellRecord) valid() bool {
	if r.V != journalVersion || r.Engine != EngineVersion || r.Sum == "" {
		return false
	}
	sum, err := r.checksum()
	return err == nil && sum == r.Sum
}

// shardJournal is the engine's append-only per-shard record writer. Safe
// for concurrent use by the cell workers. Like the obs journal, the first
// write error latches and fails the sweep at close.
type shardJournal struct {
	mu  sync.Mutex
	f   *os.File
	err error
}

// openShardJournal opens (creating or appending) one shard's journal. If a
// previous worker of this shard was killed mid-write, the file may end in
// a torn partial line; a newline is appended first so this run's records
// never glue onto the wreckage.
func openShardJournal(dir string, shard int) (*shardJournal, error) {
	path := filepath.Join(dir, ShardJournalName(shard))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening shard journal: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("sweep: repairing shard journal: %w", err)
			}
		}
	}
	return &shardJournal{f: f}, nil
}

// record appends one completed cell. Duplicates across resumed runs are
// fine: records are idempotent (equal key implies equal content) and Merge
// deduplicates by key.
func (j *shardJournal) record(index int, c Cell, key string, eval metrics.Eval) {
	r := cellRecord{
		V: journalVersion, Engine: EngineVersion,
		Cell: index, Key: key, Trials: c.Trials, Eval: eval,
	}
	sum, err := r.checksum()
	if err == nil {
		r.Sum = sum
	}
	var data []byte
	if err == nil {
		data, err = json.Marshal(r)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, werr := j.f.Write(append(data, '\n')); werr != nil {
		j.err = werr
	}
}

// Close flushes and reports the first record/write error, if any.
func (j *shardJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	cerr := j.f.Close()
	if j.err != nil {
		return j.err
	}
	return cerr
}

// readJournalRecords parses one journal file's bytes into its authentic
// records. Lines that fail to parse or fail their checksum — torn writes,
// corruption, foreign formats — are skipped and counted, never fatal: the
// consistency decisions belong to Merge, which can fall back to the cache.
func readJournalRecords(data []byte) (recs []cellRecord, skipped int) {
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var r cellRecord
		if err := json.Unmarshal(line, &r); err != nil || !r.valid() {
			skipped++
			continue
		}
		recs = append(recs, r)
	}
	return recs, skipped
}

// Merge folds the per-shard journals and the content-addressed cache of
// one or more output directories back into the sweep's full result. Every
// cell of the expanded grid is resolved journal-first (authentic records,
// deduplicated by key), then from the cache; the reconstructed result is a
// pure function of the cell evaluations, so its Summary is byte-identical
// to the one a single-process run of the same sweep document produces.
//
// Failure modes are typed: a journal record that contradicts the grid
// (wrong cell index or trial count for its key) or conflicts with another
// record of the same cell wraps ErrBadJournal; a grid with unresolved
// cells (some shard has not run or finished) wraps ErrIncomplete. Torn or
// corrupted journal lines are skipped — they are the expected residue of a
// killed worker, and their cells are recovered from duplicates or the
// cache. Merge never executes cells.
func Merge(sw Spec, dirs ...string) (*Result, error) {
	sw = sw.Normalize()
	cells, err := sw.Cells() // validates
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("sweep: %w: merge needs at least one output directory", ErrIncomplete)
	}

	keys := make([]string, len(cells))
	byKey := make(map[string]int, len(cells))
	for i, c := range cells {
		if keys[i], err = c.Key(); err != nil {
			return nil, fmt.Errorf("sweep: cell %d: %w", i, err)
		}
		byKey[keys[i]] = i
	}

	evals := make(map[int]metrics.Eval, len(cells))
	resolve := func(idx int, eval metrics.Eval, source string) error {
		if prev, ok := evals[idx]; ok {
			a, aerr := json.Marshal(prev)
			b, berr := json.Marshal(eval)
			if aerr != nil || berr != nil || !bytes.Equal(a, b) {
				return fmt.Errorf("%w: conflicting results for cell %d (key %.12s…, %s)",
					ErrBadJournal, idx, keys[idx], source)
			}
			return nil
		}
		evals[idx] = eval
		return nil
	}

	for _, dir := range dirs {
		paths, err := filepath.Glob(filepath.Join(dir, "journal.*.jsonl"))
		if err != nil {
			return nil, fmt.Errorf("sweep: merge: %w", err)
		}
		sort.Strings(paths)
		for _, path := range paths {
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("sweep: merge: %w", err)
			}
			recs, _ := readJournalRecords(data)
			for _, r := range recs {
				idx, ok := byKey[r.Key]
				if !ok {
					// A record for a cell outside this grid: another sweep's
					// journal sharing the directory. Harmless — it cannot
					// feed this summary — so skip rather than fail.
					continue
				}
				if r.Cell != idx || r.Trials != cells[idx].Trials {
					return nil, fmt.Errorf("%w: record in %s names key %.12s… as cell %d/%d trials, grid says cell %d/%d",
						ErrBadJournal, filepath.Base(path), r.Key, r.Cell, r.Trials, idx, cells[idx].Trials)
				}
				if err := resolve(idx, r.Eval, filepath.Base(path)); err != nil {
					return nil, err
				}
			}
		}
		// Cache fallback: cells whose journal record was torn away (or that
		// a worker cached but never journaled) are still durable as objects.
		cache, err := OpenCache(dir)
		if err != nil {
			return nil, err
		}
		for idx, key := range keys {
			if _, ok := evals[idx]; ok {
				continue
			}
			if e, ok := cache.Load(key); ok {
				if err := resolve(idx, e.Eval, "cache"); err != nil {
					return nil, err
				}
			}
		}
	}

	missing := 0
	first := -1
	for idx := range cells {
		if _, ok := evals[idx]; !ok {
			if first < 0 {
				first = idx
			}
			missing++
		}
	}
	if missing > 0 {
		return nil, fmt.Errorf("%w: %d of %d cells unresolved (first missing: cell %d, key %.12s…) — run the missing shards, then merge again",
			ErrIncomplete, missing, len(cells), first, keys[first])
	}

	out := &Result{Spec: sw, Cached: len(cells)}
	out.Cells = make([]CellResult, len(cells))
	for idx, c := range cells {
		out.Cells[idx] = CellResult{
			Index: idx, Cell: c, Key: keys[idx], Cached: true, Eval: evals[idx],
		}
	}
	return out, nil
}
