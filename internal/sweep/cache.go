package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wsnloc/internal/alg"
	"wsnloc/internal/metrics"
)

// Entry is one persisted cell result. The spec and trial count ride along so
// an entry is self-describing (auditable with jq, rebuildable into summaries
// without the original sweep document).
type Entry struct {
	Key    string       `json:"key"`
	Engine int          `json:"engine_version"`
	Spec   alg.Spec     `json:"spec"`
	Trials int          `json:"trials"`
	Eval   metrics.Eval `json:"eval"`
}

// Cache is a content-addressed result store on disk: one JSON file per cell
// under objects/<first two hash bytes>/<hash>.json. Writes are atomic
// (temp file + rename), so a killed sweep never leaves a truncated entry a
// resume could trust. Safe for concurrent use by the engine's workers —
// distinct cells touch distinct files, and duplicate keys write identical
// bytes.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) the cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	objects := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objects, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return &Cache{dir: objects}, nil
}

// path returns the object path for key (fan-out on the first hash byte
// keeps directories small on big sweeps).
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Load returns the entry stored under key, or ok=false when absent,
// unreadable, or inconsistent (wrong key or engine version — e.g. a file
// from an older engine or a corrupted write). A bad entry is a miss, never
// an error: the engine just recomputes and overwrites it.
func (c *Cache) Load(key string) (*Entry, bool) {
	if len(key) < 2 {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Key != key || e.Engine != EngineVersion {
		return nil, false
	}
	return &e, true
}

// Store persists the entry under its key atomically.
func (c *Cache) Store(e *Entry) error {
	if len(e.Key) < 2 {
		return fmt.Errorf("sweep: cache store: malformed key %q", e.Key)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: cache store: %w", err)
	}
	path := c.path(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: cache store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+e.Key[:8]+"-*")
	if err != nil {
		return fmt.Errorf("sweep: cache store: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache store: write %s: %v/%v", path, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache store: %w", err)
	}
	return nil
}

// Len reports how many entries the cache currently holds (test/diagnostic
// helper; walks the object tree).
func (c *Cache) Len() int {
	n := 0
	filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
