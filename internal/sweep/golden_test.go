package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wsnloc/internal/alg"
)

var update = flag.Bool("update", false, "regenerate golden files")

// goldenSweep is the fixed grid the golden summary pins down: 2 scenarios ×
// 3 algorithms (the paper's method plus two range-free baselines) × a fixed
// seed, 2 trials per cell. Small enough to run in every CI pass, wide
// enough that any change to scenario generation, trial seeding, algorithm
// numerics, evaluation, or summary merging shifts at least one byte.
func goldenSweep() Spec {
	return Spec{
		Name: "golden",
		Scenarios: []alg.Scenario{
			{N: 40, Field: 60, Seed: 11},
			{N: 40, Field: 60, AnchorFrac: 0.3, NoiseFrac: 0.25, Seed: 12},
		},
		Algorithms: []string{"bncl-grid", "centroid", "dv-hop"},
		AlgOpts:    []alg.Opts{{GridN: 20, BPRounds: 6}},
		Seeds:      []uint64{5},
		Trials:     2,
	}
}

// TestGoldenSummary guards bit-identical determinism of the whole pipeline:
// the summary of the fixed sweep must match the committed golden bytes.
// Regenerate intentionally with:
//
//	go test ./internal/sweep/ -run TestGoldenSummary -update
func TestGoldenSummary(t *testing.T) {
	res, err := Run(goldenSweep(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Summary().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "summary.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, got.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("summary drifted from %s — if the change is intentional, rerun with -update\ngot:\n%s",
			path, got.String())
	}
}

// TestGoldenSummaryConvEquivalent is the accuracy gate behind golden
// regeneration: the committed golden runs under the auto convolution
// dispatcher, and this test pins it to a sparse-only run of the same sweep.
// The paths agree to ~1e-9 per message, but the sparse path also trims the
// ≤SupportEps probability tail, so per-cell RMSE may drift by float noise —
// anything past 1e-3 m means a path computes the wrong message.
func TestGoldenSummaryConvEquivalent(t *testing.T) {
	run := func(conv string) *Summary {
		sw := goldenSweep()
		for i := range sw.AlgOpts {
			sw.AlgOpts[i].Conv = conv
		}
		res, err := Run(sw, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	auto, sparse := run("auto"), run("sparse")
	if len(auto.Cells) != len(sparse.Cells) {
		t.Fatalf("cell count mismatch: auto %d, sparse %d", len(auto.Cells), len(sparse.Cells))
	}
	for i, a := range auto.Cells {
		s := sparse.Cells[i]
		if a.Algorithm != s.Algorithm {
			t.Fatalf("cell %d: algorithm mismatch %s vs %s", i, a.Algorithm, s.Algorithm)
		}
		if d := a.RMSE - s.RMSE; d > 1e-3 || d < -1e-3 {
			t.Errorf("cell %d (%s): RMSE %.6f m under auto vs %.6f m sparse-only (Δ %.2e)",
				i, a.Algorithm, a.RMSE, s.RMSE, d)
		}
	}
}

// TestGoldenSummaryParallelMatches re-runs the golden sweep on a wide pool:
// worker scheduling must not leak into the committed bytes.
func TestGoldenSummaryParallelMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Run(goldenSweep(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Summary().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "summary.json"))
	if err != nil {
		t.Skip("golden file not generated yet")
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("parallel run drifted from the golden summary")
	}
}

// TestGoldenSummaryPruneEquivalent is the accuracy gate for the support
// pruning knob: at the default mild floor (1e-4 of the belief max) the
// pruned sweep must match the knobs-off golden per cell to within 1e-3 m
// RMSE. Pruning drops only cells carrying ≲0.01% of the peak probability, so
// any larger drift means the knob is removing mass the estimate depends on.
func TestGoldenSummaryPruneEquivalent(t *testing.T) {
	run := func(prune float64) *Summary {
		sw := goldenSweep()
		for i := range sw.AlgOpts {
			sw.AlgOpts[i].Prune = prune
		}
		res, err := Run(sw, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	base, pruned := run(0), run(1e-4)
	if len(base.Cells) != len(pruned.Cells) {
		t.Fatalf("cell count mismatch: base %d, pruned %d", len(base.Cells), len(pruned.Cells))
	}
	for i, a := range base.Cells {
		p := pruned.Cells[i]
		if a.Algorithm != p.Algorithm {
			t.Fatalf("cell %d: algorithm mismatch %s vs %s", i, a.Algorithm, p.Algorithm)
		}
		if d := a.RMSE - p.RMSE; d > 1e-3 || d < -1e-3 {
			t.Errorf("cell %d (%s): RMSE %.6f m knobs-off vs %.6f m pruned (Δ %.2e)",
				i, a.Algorithm, a.RMSE, p.RMSE, d)
		}
	}
}
