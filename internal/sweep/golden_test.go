package sweep

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wsnloc/internal/alg"
)

var update = flag.Bool("update", false, "regenerate golden files")

// goldenSweep is the fixed grid the golden summary pins down: 2 scenarios ×
// 3 algorithms (the paper's method plus two range-free baselines) × a fixed
// seed, 2 trials per cell. Small enough to run in every CI pass, wide
// enough that any change to scenario generation, trial seeding, algorithm
// numerics, evaluation, or summary merging shifts at least one byte.
func goldenSweep() Spec {
	return Spec{
		Name: "golden",
		Scenarios: []alg.Scenario{
			{N: 40, Field: 60, Seed: 11},
			{N: 40, Field: 60, AnchorFrac: 0.3, NoiseFrac: 0.25, Seed: 12},
		},
		Algorithms: []string{"bncl-grid", "centroid", "dv-hop"},
		AlgOpts:    []alg.Opts{{GridN: 20, BPRounds: 6}},
		Seeds:      []uint64{5},
		Trials:     2,
	}
}

// TestGoldenSummary guards bit-identical determinism of the whole pipeline:
// the summary of the fixed sweep must match the committed golden bytes.
// Regenerate intentionally with:
//
//	go test ./internal/sweep/ -run TestGoldenSummary -update
func TestGoldenSummary(t *testing.T) {
	res, err := Run(goldenSweep(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Summary().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "summary.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, got.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("summary drifted from %s — if the change is intentional, rerun with -update\ngot:\n%s",
			path, got.String())
	}
}

// TestGoldenSummaryParallelMatches re-runs the golden sweep on a wide pool:
// worker scheduling must not leak into the committed bytes.
func TestGoldenSummaryParallelMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Run(goldenSweep(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Summary().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "summary.json"))
	if err != nil {
		t.Skip("golden file not generated yet")
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("parallel run drifted from the golden summary")
	}
}
