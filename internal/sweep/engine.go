package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/core"
	"wsnloc/internal/exec"
	"wsnloc/internal/expt"
	"wsnloc/internal/metrics"
	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

// Options tunes one sweep execution.
type Options struct {
	// OutDir is the persistence root (cache objects + journal). Empty runs
	// fully in memory: nothing is cached and nothing can resume.
	OutDir string
	// Workers bounds how many cells execute concurrently (0 = NumCPU,
	// 1 = sequential). Purely a wall-clock knob: results and summaries are
	// identical for every value.
	Workers int
	// Resume reuses cached cell results instead of recomputing them. A cold
	// run (Resume false) ignores existing entries but still writes fresh
	// ones, so a subsequent resume sees them.
	Resume bool
	// Tracer, when non-nil and enabled, receives every sweep.* event the
	// journal gets, plus the per-trial events of executed cells. Must be
	// safe for concurrent use when Workers != 1 — every tracer in
	// internal/obs is.
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the engine's live instruments: cache
	// hit/miss counters (wsnloc_sweep_cache_{hits,misses}_total), the
	// in-flight cell gauge (wsnloc_sweep_inflight_cells), and the per-cell
	// execution-duration histogram (wsnloc_sweep_cell_seconds). Purely
	// observational: results are identical with or without it.
	Metrics *obs.Registry
	// Pool, when non-nil, is the shared execution plane cells fan out on
	// (the daemon passes its request pool here). Nil runs on a transient
	// pool scoped to this sweep. Results and summaries are identical either
	// way; Workers still bounds this sweep's concurrency.
	Pool *exec.Pool

	// Shards splits the cell grid across a fleet: a run with Shards > 1
	// executes only the cells whose spec-hash prefix maps to ShardIndex
	// (see ShardOf — deterministic, disjoint, covering), claims the shard
	// with a crash-safe lease in OutDir, and journals every resolved cell
	// to journal.<ShardIndex>.jsonl for Merge. 0 or 1 means unsharded.
	// Sharded runs require OutDir (the shared coordination substrate).
	Shards int
	// ShardIndex is this worker's shard in [0, Shards).
	ShardIndex int
	// LeaseTTL is the shard-lease staleness horizon (0 = DefaultLeaseTTL):
	// a holder that stops heartbeating for this long loses the shard to
	// the next claimant. Purely a liveness knob — duplicated execution
	// after a steal is idempotent and cannot change results.
	LeaseTTL time.Duration
	// Owner names this worker in shard leases (diagnostics only; empty
	// derives host:pid).
	Owner string
}

// engineMetrics is the nil-safe instrumentation facade over Options.Metrics.
type engineMetrics struct {
	hits, misses *obs.Counter
	inflight     *obs.Gauge
	cellSeconds  *obs.Histogram

	// Shard-plane instruments (only moved by sharded runs).
	shardCells     *obs.Counter
	leaseAcquired  *obs.Counter
	leaseStolen    *obs.Counter
	journalRecords *obs.Counter
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		hits:        reg.Counter("wsnloc_sweep_cache_hits_total"),
		misses:      reg.Counter("wsnloc_sweep_cache_misses_total"),
		inflight:    reg.Gauge("wsnloc_sweep_inflight_cells"),
		cellSeconds: reg.Histogram("wsnloc_sweep_cell_seconds", obs.DurationBuckets()),

		shardCells:     reg.Counter("wsnloc_sweep_shard_cells_total"),
		leaseAcquired:  reg.Counter("wsnloc_sweep_shard_lease_acquired_total"),
		leaseStolen:    reg.Counter("wsnloc_sweep_shard_lease_stolen_total"),
		journalRecords: reg.Counter("wsnloc_sweep_shard_journal_records_total"),
	}
}

func (m *engineMetrics) cellStart() {
	if m != nil {
		m.inflight.Add(1)
	}
}

func (m *engineMetrics) cellEnd() {
	if m != nil {
		m.inflight.Add(-1)
	}
}

func (m *engineMetrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}

// miss records one executed cell: a cache miss (or a cold run that never
// consulted the cache) and its execution wall time.
func (m *engineMetrics) miss(dur time.Duration) {
	if m != nil {
		m.misses.Inc()
		m.cellSeconds.Observe(dur.Seconds())
	}
}

// shardCell records one cell resolved (computed or cache-hit) by a sharded
// run, plus its journal record.
func (m *engineMetrics) shardCell() {
	if m != nil {
		m.shardCells.Inc()
		m.journalRecords.Inc()
	}
}

// leased records one shard-lease acquisition, stolen or clean.
func (m *engineMetrics) leased(stole bool) {
	if m != nil {
		m.leaseAcquired.Inc()
		if stole {
			m.leaseStolen.Inc()
		}
	}
}

// CellResult is one cell's outcome inside a completed sweep.
type CellResult struct {
	// Index is the cell's position in Spec.Cells order.
	Index int
	// Cell is the executed unit; Key its content address.
	Cell Cell
	Key  string
	// Cached reports whether the result came from the cache (true) or was
	// executed by this run (false).
	Cached bool
	// Eval is the pooled evaluation over the cell's trials.
	Eval metrics.Eval
}

// Result is a completed sweep: every cell's evaluation in deterministic
// (cell index) order plus the execute/reuse split. A sharded run's result
// is partial by design: Cells holds only this shard's cells (Index is
// still the global grid position), Skipped counts the cells other shards
// own, and Merge reassembles the full grid from the shared output
// directory.
type Result struct {
	Spec     Spec
	Cells    []CellResult
	Executed int
	Cached   int

	// Shards/Shard echo the partition of a sharded run (0/0 when
	// unsharded); Skipped is how many grid cells belong to other shards.
	Shards  int
	Shard   int
	Skipped int
}

// Run executes the sweep with background context. See RunCtx.
func Run(sw Spec, opts Options) (*Result, error) {
	return RunCtx(context.Background(), sw, opts)
}

// RunCtx expands the sweep into cells and executes them on the shared
// bounded execution plane (internal/exec). Each finished cell is persisted
// to the content-addressed cache and journaled before the next one starts,
// so a cancel or kill loses at most the in-flight cells; resuming with the
// same OutDir and Resume=true re-runs none of the completed ones.
// Cancellation stops handing out cells, aborts in-flight trials at round
// granularity, joins the fan-out, and returns ctx's error.
//
// With Shards > 1 the run executes only the cells ShardOf assigns to
// ShardIndex, under a crash-safe shard lease, journaling every resolved
// cell to journal.<ShardIndex>.jsonl in OutDir; Merge folds the shards'
// output back into the full grid.
func RunCtx(ctx context.Context, sw Spec, opts Options) (out *Result, err error) {
	sw = sw.Normalize()
	cells, err := sw.Cells() // validates
	if err != nil {
		return nil, err
	}
	if err := validateSharding(opts); err != nil {
		return nil, err
	}
	sharded := opts.Shards > 1

	// Partition. Keys are content addresses, so the assignment is a pure
	// function of the sweep document: every fleet member expanding the same
	// document computes the same disjoint, covering split, independent of
	// worker counts or scheduling.
	keys := make([]string, len(cells))
	local := make([]int, 0, len(cells))
	for i, c := range cells {
		if keys[i], err = c.Key(); err != nil {
			return nil, fmt.Errorf("sweep: cell %d: %w", i, err)
		}
		if !sharded || ShardOf(keys[i], opts.Shards) == opts.ShardIndex {
			local = append(local, i)
		}
	}

	workers := opts.Workers
	if workers < 0 {
		return nil, fmt.Errorf("sweep: %w: workers must be >= 0, got %d", wsnerr.ErrBadConfig, workers)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(local) {
		workers = len(local)
	}
	em := newEngineMetrics(opts.Metrics)

	var cache *Cache
	if opts.OutDir != "" {
		if cache, err = OpenCache(opts.OutDir); err != nil {
			return nil, err
		}
	}

	var journal *obs.JSONL
	var shardJ *shardJournal
	tracers := []obs.Tracer{}
	if sharded {
		// Claim the shard before touching its journal. A fresh lease held
		// by a live worker bounces this run (ErrShardHeld); a stale one is
		// taken over — safe, because every cell write below is
		// content-addressed and idempotent.
		owner := opts.Owner
		if owner == "" {
			owner = defaultOwner()
		}
		lease, stole, lerr := AcquireShardLease(opts.OutDir, opts.ShardIndex, owner, opts.LeaseTTL)
		if lerr != nil {
			return nil, lerr
		}
		em.leased(stole)
		lease.Heartbeat(0)
		defer lease.Release()

		// Sharded runs journal self-validating cell records — the Merge
		// substrate — one file per shard, so concurrent shards never
		// interleave one stream. (The obs event journal stays an
		// unsharded-only artifact.)
		if shardJ, err = openShardJournal(opts.OutDir, opts.ShardIndex); err != nil {
			return nil, err
		}
		defer func() {
			if jerr := shardJ.Close(); jerr != nil && err == nil {
				out, err = nil, fmt.Errorf("sweep: shard journal: %w", jerr)
			}
		}()
	} else if opts.OutDir != "" {
		jf, ferr := os.OpenFile(filepath.Join(opts.OutDir, "journal.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return nil, fmt.Errorf("sweep: opening journal: %w", ferr)
		}
		journal = obs.NewJSONL(jf)
		tracers = append(tracers, journal)
		// A failed journal write or close means the checkpoint stream is
		// incomplete — a later resume would silently recompute (or worse,
		// a reader would misjudge the run) — so it fails the sweep rather
		// than vanishing. Cell results already cached remain valid.
		defer func() {
			if jerr := journal.Err(); jerr != nil && err == nil {
				out, err = nil, fmt.Errorf("sweep: journal: %w", jerr)
			}
			if cerr := jf.Close(); cerr != nil && err == nil {
				out, err = nil, fmt.Errorf("sweep: closing journal: %w", cerr)
			}
		}()
	}
	if opts.Tracer != nil {
		tracers = append(tracers, opts.Tracer)
	}
	tr := obs.Multi(tracers...)

	sweepAttrs := map[string]interface{}{
		"name": sw.Name, "cells": len(cells), "workers": workers,
		"resume": opts.Resume, "engine_version": EngineVersion,
	}
	if sharded {
		sweepAttrs["shards"] = opts.Shards
		sweepAttrs["shard"] = opts.ShardIndex
	}
	sweepSpan := obs.StartSpan(tr, "sweep", sweepAttrs)
	cellTr := sweepSpan.Tracer() // cells become children of the sweep span

	var shardSpan *obs.Span
	if sharded {
		// sweep → sweep.shard → sweep.cell: shard progress rides the span
		// plane with its own scope.
		shardSpan = obs.StartSpan(cellTr, "sweep.shard", map[string]interface{}{
			"shard": opts.ShardIndex, "shards": opts.Shards,
			"cells": len(local), "skipped": len(cells) - len(local),
		})
		cellTr = shardSpan.Tracer()
	}
	endAs := func(status string, fields map[string]interface{}) {
		if shardSpan != nil {
			shardSpan.EndAs(status, fields)
		}
		sweepSpan.EndAs(status, fields)
	}

	pool := opts.Pool
	if pool == nil {
		// No shared plane supplied: a transient pool scoped to this sweep,
		// closed and fully joined before returning.
		var perr error
		pool, perr = exec.NewPool(exec.Config{Workers: workers})
		if perr != nil {
			endAs("error", map[string]interface{}{"err": perr.Error()})
			return nil, perr
		}
		defer func() {
			pool.Close()
			pool.Drain(context.Background())
		}()
	}

	results := make([]CellResult, len(cells))
	ferr := pool.ForEach(ctx, len(local), workers, func(ctx context.Context, i int) error {
		gi := local[i]
		var err error
		results[gi], err = runOne(ctx, gi, cells[gi], keys[gi], cache, shardJ, opts, cellTr, em)
		return err
	})
	if ferr != nil {
		if ctx.Err() != nil {
			endAs("canceled", nil)
		} else {
			endAs("error", map[string]interface{}{"err": ferr.Error()})
		}
		return nil, ferr
	}

	out = &Result{Spec: sw, Skipped: len(cells) - len(local)}
	if sharded {
		out.Shards, out.Shard = opts.Shards, opts.ShardIndex
	}
	out.Cells = make([]CellResult, 0, len(local))
	for _, gi := range local {
		r := results[gi]
		out.Cells = append(out.Cells, r)
		if r.Cached {
			out.Cached++
		} else {
			out.Executed++
		}
	}
	if shardSpan != nil {
		shardSpan.EndWith(map[string]interface{}{
			"executed": out.Executed, "cached": out.Cached, "skipped": out.Skipped,
		})
	}
	sweepSpan.EndWith(map[string]interface{}{
		"executed": out.Executed, "cached": out.Cached,
	})
	return out, nil
}

// runOne resolves one cell: cache hit (under Resume) or execution, then
// persistence and journaling. Each cell runs under its own span
// (sweep.cell.start / sweep.cell.done), a child of the sweep span, and the
// cell's trial events are parented to it. In a sharded run every resolved
// cell — hit or computed — is appended to the shard journal, so a resumed
// shard's journal is self-contained for Merge (duplicate records across
// attempts are idempotent and deduplicated there).
func runOne(ctx context.Context, i int, c Cell, key string, cache *Cache, shardJ *shardJournal, opts Options, tr obs.Tracer, em *engineMetrics) (CellResult, error) {
	res := CellResult{Index: i, Cell: c, Key: key}
	sp := obs.StartSpan(tr, "sweep.cell", map[string]interface{}{
		"cell": i, "alg": c.Spec.Algorithm, "key": key, "trials": c.Trials,
	})
	em.cellStart()
	defer em.cellEnd()
	record := func(eval metrics.Eval) {
		if shardJ != nil {
			shardJ.record(i, c, key, eval)
			em.shardCell()
		}
	}
	start := time.Now()
	if opts.Resume && cache != nil {
		if e, ok := cache.Load(key); ok {
			res.Cached = true
			res.Eval = e.Eval
			em.hit()
			record(e.Eval)
			endCell(sp, res)
			return res, nil
		}
	}
	eval, err := runCell(ctx, c, sp.Wrap(opts.Tracer))
	if err != nil {
		sp.EndAs("error", map[string]interface{}{"err": err.Error()})
		return CellResult{}, fmt.Errorf("sweep: cell %d (%s): %w", i, c.Spec.Algorithm, err)
	}
	em.miss(time.Since(start))
	res.Eval = eval
	if cache != nil {
		// Store before journaling: a journal record always implies a durable
		// cache object, so a tear between the two loses at most the record —
		// Merge recovers the cell from the cache.
		if err := cache.Store(&Entry{
			Key: key, Engine: EngineVersion, Spec: c.Spec, Trials: c.Trials, Eval: eval,
		}); err != nil {
			sp.EndAs("error", map[string]interface{}{"err": err.Error()})
			return CellResult{}, err
		}
	}
	record(eval)
	endCell(sp, res)
	return res, nil
}

// runCell executes the cell's Monte-Carlo trials sequentially (the sweep
// parallelizes across cells, not inside them) via the shared expt runner.
// The spec's Seed shifts the scenario seed base, so the sweep's seed axis
// deterministically varies both topology and algorithm streams per trial.
func runCell(ctx context.Context, c Cell, userTr obs.Tracer) (metrics.Eval, error) {
	if _, err := alg.New(c.Spec.Algorithm, c.Spec.AlgOpts); err != nil {
		return metrics.Eval{}, err
	}
	s := c.Spec.Scenario
	s.Seed ^= c.Spec.Seed * 0x9E3779B97F4A7C15
	newAlg := func() core.Algorithm {
		a, err := alg.New(c.Spec.Algorithm, c.Spec.AlgOpts)
		if err != nil {
			// Unreachable: the construction above already vetted name+opts.
			panic(err)
		}
		return a
	}
	return expt.RunTrialsOpts(ctx, s, newAlg, c.Trials, expt.RunOpts{Workers: 1, Tracer: userTr})
}

// endCell closes a cell span with the cell's pooled evaluation.
func endCell(sp *obs.Span, r CellResult) {
	e := r.Eval
	sp.EndWith(map[string]interface{}{
		"cached":   r.Cached,
		"mean_err": e.MeanErr(),
		"rmse":     e.RMSE(),
		"coverage": e.Coverage(),
		"msgs":     e.Messages,
		"bytes":    e.Bytes,
	})
}
