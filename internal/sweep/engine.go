package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/core"
	"wsnloc/internal/expt"
	"wsnloc/internal/metrics"
	"wsnloc/internal/obs"
	"wsnloc/internal/wsnerr"
)

// Options tunes one sweep execution.
type Options struct {
	// OutDir is the persistence root (cache objects + journal). Empty runs
	// fully in memory: nothing is cached and nothing can resume.
	OutDir string
	// Workers bounds how many cells execute concurrently (0 = NumCPU,
	// 1 = sequential). Purely a wall-clock knob: results and summaries are
	// identical for every value.
	Workers int
	// Resume reuses cached cell results instead of recomputing them. A cold
	// run (Resume false) ignores existing entries but still writes fresh
	// ones, so a subsequent resume sees them.
	Resume bool
	// Tracer, when non-nil and enabled, receives every sweep.* event the
	// journal gets, plus the per-trial events of executed cells. Must be
	// safe for concurrent use when Workers != 1 — every tracer in
	// internal/obs is.
	Tracer obs.Tracer
}

// CellResult is one cell's outcome inside a completed sweep.
type CellResult struct {
	// Index is the cell's position in Spec.Cells order.
	Index int
	// Cell is the executed unit; Key its content address.
	Cell Cell
	Key  string
	// Cached reports whether the result came from the cache (true) or was
	// executed by this run (false).
	Cached bool
	// Eval is the pooled evaluation over the cell's trials.
	Eval metrics.Eval
}

// Result is a completed sweep: every cell's evaluation in deterministic
// (cell index) order plus the execute/reuse split.
type Result struct {
	Spec     Spec
	Cells    []CellResult
	Executed int
	Cached   int
}

// Run executes the sweep with background context. See RunCtx.
func Run(sw Spec, opts Options) (*Result, error) {
	return RunCtx(context.Background(), sw, opts)
}

// RunCtx expands the sweep into cells and executes them on a bounded worker
// pool. Each finished cell is persisted to the content-addressed cache and
// journaled before the next one starts, so a cancel or kill loses at most
// the in-flight cells; resuming with the same OutDir and Resume=true
// re-runs none of the completed ones. Cancellation stops handing out cells,
// aborts in-flight trials at round granularity, joins the pool, and returns
// ctx's error.
func RunCtx(ctx context.Context, sw Spec, opts Options) (*Result, error) {
	sw = sw.Normalize()
	cells, err := sw.Cells() // validates
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 0 {
		return nil, fmt.Errorf("sweep: %w: workers must be >= 0, got %d", wsnerr.ErrBadConfig, workers)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	var cache *Cache
	var journal *obs.JSONL
	tracers := []obs.Tracer{}
	if opts.OutDir != "" {
		if cache, err = OpenCache(opts.OutDir); err != nil {
			return nil, err
		}
		jf, err := os.OpenFile(filepath.Join(opts.OutDir, "journal.jsonl"),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("sweep: opening journal: %w", err)
		}
		defer jf.Close()
		journal = obs.NewJSONL(jf)
		tracers = append(tracers, journal)
	}
	if opts.Tracer != nil {
		tracers = append(tracers, opts.Tracer)
	}
	tr := obs.Multi(tracers...)

	start := time.Now()
	obs.Emit(tr, "sweep.start", map[string]interface{}{
		"name": sw.Name, "cells": len(cells), "workers": workers,
		"resume": opts.Resume, "engine_version": EngineVersion,
	})

	results := make([]CellResult, len(cells))
	cellErrs := make([]error, len(cells))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					cellErrs[i] = err
					continue
				}
				results[i], cellErrs[i] = runOne(ctx, i, cells[i], cache, opts, tr)
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		obs.Emit(tr, "sweep.canceled", map[string]interface{}{
			"name": sw.Name, "cells": len(cells), "dur_ms": durMS(start),
		})
		return nil, err
	}
	for _, err := range cellErrs {
		if err != nil {
			return nil, err
		}
	}

	out := &Result{Spec: sw, Cells: results}
	for _, r := range results {
		if r.Cached {
			out.Cached++
		} else {
			out.Executed++
		}
	}
	obs.Emit(tr, "sweep.done", map[string]interface{}{
		"name": sw.Name, "cells": len(cells), "executed": out.Executed,
		"cached": out.Cached, "dur_ms": durMS(start),
	})
	if journal != nil {
		if err := journal.Err(); err != nil {
			return nil, fmt.Errorf("sweep: journal: %w", err)
		}
	}
	return out, nil
}

func durMS(start time.Time) float64 {
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// runOne resolves one cell: cache hit (under Resume) or execution, then
// persistence and journaling.
func runOne(ctx context.Context, i int, c Cell, cache *Cache, opts Options, tr obs.Tracer) (CellResult, error) {
	key, err := c.Key()
	if err != nil {
		return CellResult{}, fmt.Errorf("sweep: cell %d: %w", i, err)
	}
	res := CellResult{Index: i, Cell: c, Key: key}
	start := time.Now()
	if opts.Resume && cache != nil {
		if e, ok := cache.Load(key); ok {
			res.Cached = true
			res.Eval = e.Eval
			emitCell(tr, res, durMS(start))
			return res, nil
		}
	}
	eval, err := runCell(ctx, c, opts.Tracer)
	if err != nil {
		return CellResult{}, fmt.Errorf("sweep: cell %d (%s): %w", i, c.Spec.Algorithm, err)
	}
	res.Eval = eval
	if cache != nil {
		if err := cache.Store(&Entry{
			Key: key, Engine: EngineVersion, Spec: c.Spec, Trials: c.Trials, Eval: eval,
		}); err != nil {
			return CellResult{}, err
		}
	}
	emitCell(tr, res, durMS(start))
	return res, nil
}

// runCell executes the cell's Monte-Carlo trials sequentially (the sweep
// parallelizes across cells, not inside them) via the shared expt runner.
// The spec's Seed shifts the scenario seed base, so the sweep's seed axis
// deterministically varies both topology and algorithm streams per trial.
func runCell(ctx context.Context, c Cell, userTr obs.Tracer) (metrics.Eval, error) {
	if _, err := alg.New(c.Spec.Algorithm, c.Spec.AlgOpts); err != nil {
		return metrics.Eval{}, err
	}
	s := c.Spec.Scenario
	s.Seed ^= c.Spec.Seed * 0x9E3779B97F4A7C15
	newAlg := func() core.Algorithm {
		a, err := alg.New(c.Spec.Algorithm, c.Spec.AlgOpts)
		if err != nil {
			// Unreachable: the construction above already vetted name+opts.
			panic(err)
		}
		return a
	}
	return expt.RunTrialsOpts(ctx, s, newAlg, c.Trials, expt.RunOpts{Workers: 1, Tracer: userTr})
}

func emitCell(tr obs.Tracer, r CellResult, durMS float64) {
	if !obs.Enabled(tr) {
		return
	}
	e := r.Eval
	obs.Emit(tr, "sweep.cell", map[string]interface{}{
		"cell":     r.Index,
		"alg":      r.Cell.Spec.Algorithm,
		"key":      r.Key,
		"cached":   r.Cached,
		"trials":   r.Cell.Trials,
		"dur_ms":   durMS,
		"mean_err": e.MeanErr(),
		"rmse":     e.RMSE(),
		"coverage": e.Coverage(),
		"msgs":     e.Messages,
		"bytes":    e.Bytes,
	})
}
