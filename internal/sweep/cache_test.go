package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wsnloc/internal/alg"
	"wsnloc/internal/metrics"
)

func testEntry(t *testing.T) *Entry {
	t.Helper()
	// Normalized spec: MarshalJSON normalizes on write, so a non-normalized
	// one would (correctly) not round-trip field-for-field.
	c := Cell{
		Spec:   alg.Spec{Algorithm: "centroid", Scenario: alg.Scenario{N: 30, Seed: 1}, Seed: 2}.Normalize(),
		Trials: 2,
	}
	key, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	return &Entry{
		Key: key, Engine: EngineVersion, Spec: c.Spec, Trials: c.Trials,
		Eval: metrics.Eval{
			Errors: []float64{1.25, 3.5}, R: 15, Unknowns: 27, LocalizedCount: 2,
			Messages: 120, Bytes: 2400, Nodes: 30, Rounds: 4, Trials: 2,
		},
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t)
	if _, ok := c.Load(e.Key); ok {
		t.Fatal("hit before store")
	}
	if err := c.Store(e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(e.Key)
	if !ok {
		t.Fatal("miss after store")
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round-trip drifted:\n got %+v\nwant %+v", got, e)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

// A corrupt, truncated, or stale-engine entry must read as a miss (the
// engine recomputes and overwrites), never as an error or a bogus hit.
func TestCacheBadEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t)
	if err := c.Store(e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", e.Key[:2], e.Key+".json")

	if err := os.WriteFile(path, []byte(`{"key":"truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(e.Key); ok {
		t.Error("corrupt entry hit")
	}

	stale := *e
	stale.Engine = EngineVersion + 1
	if err := c.Store(&stale); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(e.Key); ok {
		t.Error("stale engine version hit")
	}

	mismatched := *e
	mismatched.Key = "00deadbeef"
	if err := c.Store(&mismatched); err != nil {
		t.Fatal(err)
	}
	// Stored under its claimed key; loading the original key still misses.
	if _, ok := c.Load(e.Key); ok {
		t.Error("mismatched entry hit")
	}

	// Re-storing the good entry heals the slot.
	if err := c.Store(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(e.Key); !ok {
		t.Error("healed entry missed")
	}
}

func TestCacheMalformedKey(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(""); ok {
		t.Error("empty key hit")
	}
	if err := c.Store(&Entry{Key: "x"}); err == nil {
		t.Error("malformed key stored")
	}
}
