package sweep

import (
	"errors"
	"fmt"

	"wsnloc/internal/wsnerr"
)

// Distributed sharding: a sweep's cell grid can be partitioned across a
// fleet of workers by spec-hash prefix. The partition is a pure function of
// the cell's content address, so it is deterministic, disjoint, and
// covering by construction — every worker that expands the same sweep
// document computes the same assignment, independent of worker counts,
// enumeration order, or scheduling. Workers coordinate only through the
// shared output directory: the content-addressed cache makes duplicated
// cell execution idempotent (same key, same bytes), per-shard journals
// record completed cells durably, and shard leases (lease.go) keep the
// fleet from re-walking each other's shards while everyone is alive.

// Typed errors of the sharding layer.
var (
	// ErrShardHeld reports that another live worker holds the shard's
	// lease (its heartbeat is fresher than the lease TTL). Retry later, or
	// pick another shard.
	ErrShardHeld = errors.New("sweep: shard lease held by another worker")
	// ErrBadJournal reports per-shard journal data that is inconsistent
	// with the sweep being merged: a record whose cell index or trial
	// count contradicts the expanded grid, or two authentic records that
	// disagree about one cell's result. (Torn or corrupted lines — the
	// residue of a killed worker — are skipped, not errors.)
	ErrBadJournal = errors.New("sweep: bad journal")
	// ErrIncomplete reports a merge over an output directory that does not
	// yet hold every cell of the grid — typically some shard has not run
	// (or not finished). Run the missing shards and merge again.
	ErrIncomplete = errors.New("sweep: incomplete sweep")
)

// ShardOf maps a cell key (the hex SHA-256 content address) to its shard in
// [0, shards). The shard is the leading 64 bits of the hash modulo the
// shard count: a pure function of the key, so the partition of a grid is
// deterministic, disjoint, and covering for every shard count, and stable
// across processes, hosts, and runs. Keys shorter than 16 hex digits (never
// produced by Cell.Key) hash whatever prefix parses.
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	var v uint64
	for i := 0; i < len(key) && i < 16; i++ {
		d := hexDigit(key[i])
		if d < 0 {
			break
		}
		v = v<<4 | uint64(d)
	}
	return int(v % uint64(shards))
}

func hexDigit(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// Shard returns the cell's shard assignment under the given shard count.
func (c Cell) Shard(shards int) (int, error) {
	key, err := c.Key()
	if err != nil {
		return 0, err
	}
	return ShardOf(key, shards), nil
}

// validateSharding vets the sharding knobs of one Options value.
func validateSharding(opts Options) error {
	if opts.Shards < 0 {
		return fmt.Errorf("sweep: %w: shards must be >= 0, got %d", wsnerr.ErrBadConfig, opts.Shards)
	}
	if opts.Shards <= 1 {
		return nil
	}
	if opts.ShardIndex < 0 || opts.ShardIndex >= opts.Shards {
		return fmt.Errorf("sweep: %w: shard index must be in [0,%d), got %d",
			wsnerr.ErrBadConfig, opts.Shards, opts.ShardIndex)
	}
	if opts.OutDir == "" {
		return fmt.Errorf("sweep: %w: sharded sweeps require OutDir (the shared cache, journals, and leases live there)", wsnerr.ErrBadConfig)
	}
	return nil
}
