// Package sweep is the experiment-grid engine: it expands a declarative
// multi-axis sweep (scenarios × algorithms × option sets × seeds) into
// individual alg.Spec cells, executes them on a bounded worker pool with
// context cancellation, and persists every cell's pooled metrics.Eval to a
// content-addressed on-disk cache keyed by the canonical Spec hash. A killed
// or repeated sweep resumed against the same output directory re-runs only
// the cells whose results are not already cached, and the merged summary —
// the paper-style RMSE-vs-anchor-fraction / RMSE-vs-noise curves — is
// byte-identical whether the cells came from the cache or from a cold run.
//
// Layout of an output directory:
//
//	out/
//	  objects/<hh>/<hash>.json   one cached cell result (content-addressed)
//	  journal.jsonl              JSONL checkpoint stream of sweep.* events
//	  summary.json               merged curves (written by the CLI)
//
// The cache key is SHA-256 over a domain string carrying EngineVersion, the
// cell spec's canonical JSON (see alg.Spec.Hash for the normalization
// contract: default-filled, Workers/Tracer stripped), and the trial count.
// Bumping EngineVersion invalidates every existing entry at once.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"wsnloc/internal/alg"
	"wsnloc/internal/wsnerr"

	// The comparison algorithms self-register into the shared registry;
	// importing them here guarantees sweep cells can name the full set.
	_ "wsnloc/internal/baseline"
)

// EngineVersion is baked into every cache key: a change to the execution
// semantics (trial seeding, evaluation, merge order) must bump it so stale
// results can never satisfy a resume.
const EngineVersion = 1

// SpecVersion is the sweep-document schema version.
const SpecVersion = 1

// Grid ceilings. Sweep documents arrive over the network (wsnlocd's
// POST /v1/sweep) as well as from the CLI, so an absurd cross product must
// be rejected by validation — before the cell slice is allocated — rather
// than discovered as an out-of-memory kill.
const (
	// MaxCells caps the expanded grid size (scenarios × algorithms ×
	// option sets × seeds).
	MaxCells = 1 << 20
	// MaxTrials caps the Monte-Carlo repetition count per cell.
	MaxTrials = 1 << 20
)

// Spec declares one experiment grid. Every axis is a list; the grid is the
// full cross product scenarios × algorithms × alg-opts × seeds, each cell
// running Trials Monte-Carlo repetitions. The zero value of the optional
// axes means "one default element", so a minimal document is just scenarios
// plus algorithms.
type Spec struct {
	// Version is the schema version (SpecVersion); zero is accepted as
	// current so hand-written documents stay terse.
	Version int `json:"version"`
	// Name labels the sweep in journals and summaries.
	Name string `json:"name,omitempty"`
	// Scenarios is the scenario axis (at least one).
	Scenarios []alg.Scenario `json:"scenarios"`
	// Algorithms is the algorithm-name axis (at least one registered name).
	Algorithms []string `json:"algorithms"`
	// AlgOpts is the tuning axis; empty means one default option set.
	AlgOpts []alg.Opts `json:"alg_opts,omitempty"`
	// Seeds is the seed axis; empty means [1].
	Seeds []uint64 `json:"seeds,omitempty"`
	// Trials is the Monte-Carlo repetition count per cell (0 = 1).
	Trials int `json:"trials,omitempty"`
}

// Cell is one executable unit of a sweep: a fully-specified run description
// plus its trial count. The cell's scenario seed base is Spec.Scenario.Seed
// shifted by Spec.Seed, so the seed axis varies every trial's topology and
// algorithm stream deterministically.
type Cell struct {
	Spec   alg.Spec `json:"spec"`
	Trials int      `json:"trials"`
}

// Key returns the cell's content address: hex SHA-256 over the engine
// version, the spec's canonical JSON, and the trial count. Equal keys mean
// "same computation, same result bytes".
func (c Cell) Key() (string, error) {
	data, err := c.Spec.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "wsnloc/sweep.Cell/v%d\n", EngineVersion)
	h.Write(data)
	fmt.Fprintf(h, "\ntrials=%d", c.Trials)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Normalize fills the defaulted axes: current Version, one zero Opts, the
// [1] seed list, and a single trial. Out-of-range values (negative trials)
// are preserved for Validate to reject.
func (sw Spec) Normalize() Spec {
	if sw.Version == 0 {
		sw.Version = SpecVersion
	}
	if len(sw.AlgOpts) == 0 {
		sw.AlgOpts = []alg.Opts{{}}
	}
	if len(sw.Seeds) == 0 {
		sw.Seeds = []uint64{1}
	}
	if sw.Trials == 0 {
		sw.Trials = 1
	}
	return sw
}

// Validate reports whether the sweep expands into runnable cells. Failures
// wrap wsnerr.ErrBadSpec (plus the sentinel of the failing part).
func (sw Spec) Validate() error {
	sw = sw.Normalize()
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("sweep: %w: %s", wsnerr.ErrBadSpec, fmt.Sprintf(format, args...))
	}
	if sw.Version != SpecVersion {
		return bad("unsupported version %d (current %d)", sw.Version, SpecVersion)
	}
	if len(sw.Scenarios) == 0 {
		return bad("at least one scenario is required")
	}
	if len(sw.Algorithms) == 0 {
		return bad("at least one algorithm is required")
	}
	if sw.Trials < 0 {
		return bad("trials must be >= 1, got %d", sw.Trials)
	}
	if sw.Trials > MaxTrials {
		return bad("trials must be <= %d, got %d", MaxTrials, sw.Trials)
	}
	// Guard the cross product in int64: four len() factors each bounded by
	// the document size cannot overflow int64, but their product can exceed
	// any sane grid long before it overflows.
	cells := int64(len(sw.Scenarios)) * int64(len(sw.Algorithms)) *
		int64(len(sw.AlgOpts)) * int64(len(sw.Seeds))
	if cells > MaxCells {
		return bad("grid expands to %d cells, max %d (scenarios %d × algorithms %d × alg_opts %d × seeds %d)",
			cells, MaxCells, len(sw.Scenarios), len(sw.Algorithms), len(sw.AlgOpts), len(sw.Seeds))
	}
	for i, s := range sw.Scenarios {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("sweep: %w: scenario %d: %v", wsnerr.ErrBadSpec, i, err)
		}
	}
	for i, o := range sw.AlgOpts {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("sweep: %w: alg_opts %d: %v", wsnerr.ErrBadSpec, i, err)
		}
	}
	for _, name := range sw.Algorithms {
		// Per-algorithm validation via a probe spec keeps the unknown-name
		// diagnostics identical to the single-run path.
		probe := alg.Spec{Algorithm: name}
		if err := probe.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON encodes the normalized sweep, so round-tripping a terse
// document yields the explicit axes.
func (sw Spec) MarshalJSON() ([]byte, error) {
	type plain Spec // shed the method set to avoid recursion
	return json.Marshal(plain(sw.Normalize()))
}

// ParseSpec decodes and validates one JSON sweep document.
func ParseSpec(data []byte) (Spec, error) {
	var sw Spec
	if err := json.Unmarshal(data, &sw); err != nil {
		return Spec{}, fmt.Errorf("sweep: %w: %v", wsnerr.ErrBadSpec, err)
	}
	sw = sw.Normalize()
	if err := sw.Validate(); err != nil {
		return Spec{}, err
	}
	return sw, nil
}

// Cells expands the grid into its execution units in deterministic order:
// scenario-major, then algorithm, option set, seed. The cell index is the
// position in the returned slice; summaries and journals refer to it.
func (sw Spec) Cells() ([]Cell, error) {
	sw = sw.Normalize()
	if err := sw.Validate(); err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(sw.Scenarios)*len(sw.Algorithms)*len(sw.AlgOpts)*len(sw.Seeds))
	for _, s := range sw.Scenarios {
		for _, name := range sw.Algorithms {
			for _, o := range sw.AlgOpts {
				for _, seed := range sw.Seeds {
					cells = append(cells, Cell{
						Spec: alg.Spec{
							Version:   alg.SpecVersion,
							Scenario:  s,
							Algorithm: name,
							AlgOpts:   o,
							Seed:      seed,
						},
						Trials: sw.Trials,
					})
				}
			}
		}
	}
	return cells, nil
}
