package sweep

import (
	"fmt"
	"math/rand"
	"testing"

	"wsnloc/internal/alg"
)

var shardCounts = []int{1, 2, 3, 7, 16}

// randomSweep builds a small but varied sweep document from a deterministic
// stream: random sizes, anchor/noise axes, algorithm subsets, seed lists.
// The cells are never executed — the partition properties are about keys.
func randomSweep(r *rand.Rand) Spec {
	algs := []string{"centroid", "min-max", "dv-hop", "bncl-grid", "w-centroid"}
	r.Shuffle(len(algs), func(i, j int) { algs[i], algs[j] = algs[j], algs[i] })
	nAlgs := 1 + r.Intn(3)
	scen := make([]alg.Scenario, 1+r.Intn(3))
	for i := range scen {
		scen[i] = alg.Scenario{
			N:          20 + r.Intn(60),
			Field:      40 + 10*float64(r.Intn(5)),
			AnchorFrac: 0.1 + 0.1*float64(r.Intn(4)),
			NoiseFrac:  0.05 * float64(1+r.Intn(4)),
			Seed:       r.Uint64()%1000 + 1,
		}
	}
	seeds := make([]uint64, 1+r.Intn(3))
	for i := range seeds {
		seeds[i] = r.Uint64()%10000 + 1
	}
	return Spec{
		Name:       fmt.Sprintf("prop-%d", r.Intn(1000)),
		Scenarios:  scen,
		Algorithms: algs[:nAlgs],
		Seeds:      seeds,
		Trials:     1 + r.Intn(3),
	}
}

// TestShardPartitionProperties is the partition-function property battery:
// for random sweep documents and Shards ∈ {1,2,3,7,16}, every cell lands in
// exactly one shard (disjoint), the union of the shards is the whole grid
// (covering), and the assignment is a stable pure function of the cell —
// identical across repeated computation, enumeration order, and (by
// construction, since it never sees them) worker counts.
func TestShardPartitionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		sw := randomSweep(r)
		cells, err := sw.Cells()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		keys := make([]string, len(cells))
		for i, c := range cells {
			if keys[i], err = c.Key(); err != nil {
				t.Fatalf("trial %d cell %d: %v", trial, i, err)
			}
		}
		for _, shards := range shardCounts {
			assigned := make([][]int, shards)
			for i, key := range keys {
				s := ShardOf(key, shards)
				if s < 0 || s >= shards {
					t.Fatalf("trial %d: ShardOf(%q, %d) = %d out of range", trial, key, shards, s)
				}
				// Stability: the same key maps to the same shard every time,
				// via both the key form and the Cell method.
				if again := ShardOf(key, shards); again != s {
					t.Fatalf("trial %d: ShardOf unstable: %d then %d", trial, s, again)
				}
				if cs, err := cells[i].Shard(shards); err != nil || cs != s {
					t.Fatalf("trial %d: Cell.Shard = %d/%v, ShardOf = %d", trial, cs, err, s)
				}
				assigned[s] = append(assigned[s], i)
			}
			// Disjoint + covering: each index appears exactly once overall.
			seen := make(map[int]int)
			total := 0
			for _, idxs := range assigned {
				for _, i := range idxs {
					seen[i]++
					total++
				}
			}
			if total != len(cells) || len(seen) != len(cells) {
				t.Fatalf("trial %d shards %d: %d assignments over %d distinct cells, want %d each",
					trial, shards, total, len(seen), len(cells))
			}
			for i, n := range seen {
				if n != 1 {
					t.Fatalf("trial %d shards %d: cell %d assigned %d times", trial, shards, i, n)
				}
			}
		}
	}
}

// TestShardOfDegenerateInputs pins the edges: one shard takes everything,
// and malformed keys still land in range rather than panicking.
func TestShardOfDegenerateInputs(t *testing.T) {
	for _, key := range []string{"", "zz", "0", "deadbeefdeadbeefdeadbeef", "DEADBEEF"} {
		if got := ShardOf(key, 1); got != 0 {
			t.Errorf("ShardOf(%q, 1) = %d, want 0", key, got)
		}
		if got := ShardOf(key, 0); got != 0 {
			t.Errorf("ShardOf(%q, 0) = %d, want 0", key, got)
		}
		for _, shards := range shardCounts {
			if got := ShardOf(key, shards); got < 0 || got >= shards {
				t.Errorf("ShardOf(%q, %d) = %d out of range", key, shards, got)
			}
		}
	}
	// Case-insensitive hex: the same address in either case, same shard.
	if ShardOf("ABCDEF12", 7) != ShardOf("abcdef12", 7) {
		t.Error("ShardOf is case-sensitive over hex digits")
	}
}

// cheapSweep is a fast all-baseline grid for engine-level sharding tests:
// 8 cells, no BP, milliseconds per cell.
func cheapSweep() Spec {
	return Spec{
		Name: "cheap",
		Scenarios: []alg.Scenario{
			{N: 30, Field: 50, Seed: 3},
			{N: 30, Field: 50, AnchorFrac: 0.3, Seed: 4},
		},
		Algorithms: []string{"centroid", "min-max"},
		Seeds:      []uint64{1, 2},
		Trials:     1,
	}
}

// TestEngineShardedDisjointCover runs every shard of a 3-way split against
// one directory and checks the engine-level contract: the shards' local
// cell sets are pairwise disjoint, their union is the full grid, and each
// result reports the complement as skipped.
func TestEngineShardedDisjointCover(t *testing.T) {
	dir := t.TempDir()
	sw := cheapSweep()
	cells, err := sw.Cells()
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	seen := map[int]int{}
	totalLocal := 0
	for idx := 0; idx < shards; idx++ {
		res, err := Run(sw, Options{
			OutDir: dir, Workers: 1, Shards: shards, ShardIndex: idx,
		})
		if err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		if res.Shards != shards || res.Shard != idx {
			t.Errorf("shard %d: result echoes %d/%d", idx, res.Shard, res.Shards)
		}
		if res.Skipped != len(cells)-len(res.Cells) {
			t.Errorf("shard %d: skipped %d with %d local of %d cells",
				idx, res.Skipped, len(res.Cells), len(cells))
		}
		for _, cr := range res.Cells {
			seen[cr.Index]++
			totalLocal++
			if got := ShardOf(cr.Key, shards); got != idx {
				t.Errorf("shard %d executed cell %d owned by shard %d", idx, cr.Index, got)
			}
		}
	}
	if totalLocal != len(cells) || len(seen) != len(cells) {
		t.Fatalf("union over shards: %d assignments, %d distinct, want %d",
			totalLocal, len(seen), len(cells))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("cell %d ran in %d shards", i, n)
		}
	}
}

// TestShardingBadOptions pins the validation surface.
func TestShardingBadOptions(t *testing.T) {
	sw := cheapSweep()
	dir := t.TempDir()
	cases := []Options{
		{Shards: -1},
		{OutDir: dir, Shards: 2, ShardIndex: -1},
		{OutDir: dir, Shards: 2, ShardIndex: 2},
		{Shards: 2, ShardIndex: 0}, // no OutDir
	}
	for i, opts := range cases {
		if _, err := Run(sw, opts); err == nil {
			t.Errorf("case %d: bad sharding options accepted", i)
		}
	}
}
