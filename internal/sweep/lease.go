package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Crash-safe shard claims. A fleet member claims its shard by atomically
// creating a lease file in the shared output directory and keeping its
// mtime fresh with a heartbeat goroutine. A worker that dies (SIGKILL,
// power loss) stops heartbeating, its lease goes stale after the TTL, and
// any other worker may take the shard over by removing the stale file and
// claiming it. The protocol is deliberately only an efficiency device, not
// a safety one: even if two workers briefly run the same shard (a steal
// racing a paused-but-alive holder), every cell write is content-addressed
// and idempotent, so duplicated execution produces byte-identical entries
// and the merged summary is unaffected.
//
// Layout: <out>/leases/shard.<I>.lease, content a small JSON document
// naming the holder (diagnostics only — liveness is the mtime).

// DefaultLeaseTTL is the staleness horizon when Options leaves LeaseTTL
// zero: a lease not heartbeated for this long is considered abandoned.
const DefaultLeaseTTL = 30 * time.Second

// leaseInfo is the lease file's content (diagnostic; ownership checks use
// Owner so a stolen lease is never deleted by its previous holder).
type leaseInfo struct {
	Owner    string `json:"owner"`
	Shard    int    `json:"shard"`
	Acquired int64  `json:"acquired_unix"`
}

// Lease is one held shard claim. Release it when the shard's cells are
// done (or the run is abandoned gracefully); a crash simply leaves the
// file to go stale.
type Lease struct {
	path  string
	owner string
	ttl   time.Duration

	mu   sync.Mutex
	lost bool

	stop chan struct{}
	done chan struct{}
}

// leasePath returns the lease file path for one shard of an output dir.
func leasePath(dir string, shard int) string {
	return filepath.Join(dir, "leases", fmt.Sprintf("shard.%d.lease", shard))
}

// AcquireShardLease claims shard `shard` of the sweep rooted at dir for
// owner, returning the held lease and whether a stale lease was taken over
// on the way in. A lease heartbeated within ttl by another owner reports
// ErrShardHeld (wrapped, holder named). The claim is atomic (O_EXCL
// create), so concurrent acquirers resolve to exactly one holder. The
// caller should start the heartbeat (Heartbeat) for runs longer than ttl.
func AcquireShardLease(dir string, shard int, owner string, ttl time.Duration) (lease *Lease, stole bool, err error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	path := leasePath(dir, shard)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, false, fmt.Errorf("sweep: lease: %w", err)
	}
	content, err := json.Marshal(leaseInfo{
		Owner: owner, Shard: shard, Acquired: time.Now().Unix(),
	})
	if err != nil {
		return nil, false, fmt.Errorf("sweep: lease: %w", err)
	}
	// Bounded retries: each loop either claims the file, observes a live
	// holder, or removes one stale lease. Two stealers racing resolve at
	// the O_EXCL create — exactly one wins, the loser sees the fresh file.
	for attempt := 0; attempt < 5; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := f.Write(append(content, '\n'))
			cerr := f.Close()
			if werr != nil || cerr != nil {
				os.Remove(path)
				return nil, false, fmt.Errorf("sweep: lease: writing %s: %v/%v", path, werr, cerr)
			}
			return &Lease{path: path, owner: owner, ttl: ttl}, stole, nil
		}
		if !os.IsExist(err) {
			return nil, false, fmt.Errorf("sweep: lease: %w", err)
		}
		st, serr := os.Stat(path)
		if serr != nil {
			continue // holder released (or a racing stealer removed it): retry the claim
		}
		if time.Since(st.ModTime()) <= ttl {
			holder := "unknown"
			if data, rerr := os.ReadFile(path); rerr == nil {
				var info leaseInfo
				if json.Unmarshal(data, &info) == nil && info.Owner != "" {
					holder = info.Owner
				}
			}
			return nil, false, fmt.Errorf("%w: shard %d leased to %s (heartbeat %s ago, ttl %s)",
				ErrShardHeld, shard, holder, time.Since(st.ModTime()).Round(time.Millisecond), ttl)
		}
		// Stale: the holder stopped heartbeating at least a TTL ago. Remove
		// and retry the exclusive create. If the removal races another
		// stealer's, both proceed to the create and exactly one wins.
		os.Remove(path)
		stole = true
	}
	return nil, false, fmt.Errorf("%w: shard %d lease contended, giving up", ErrShardHeld, shard)
}

// Heartbeat starts refreshing the lease's mtime every interval (<= 0 uses
// ttl/3) until Release. A refresh that finds the file gone or re-owned
// marks the lease lost (Lost reports it) and stops: the shard has been
// stolen, which is safe — this worker's remaining writes are idempotent —
// but worth surfacing.
func (l *Lease) Heartbeat(interval time.Duration) {
	if interval <= 0 {
		interval = l.ttl / 3
	}
	if interval <= 0 {
		interval = time.Second
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stop != nil {
		return // already beating
	}
	l.stop = make(chan struct{})
	l.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if !l.refresh() {
					return
				}
			}
		}
	}(l.stop, l.done)
}

// refresh bumps the lease mtime, reporting whether the lease is still ours.
func (l *Lease) refresh() bool {
	if !l.stillOwned() {
		l.mu.Lock()
		l.lost = true
		l.mu.Unlock()
		return false
	}
	now := time.Now()
	if err := os.Chtimes(l.path, now, now); err != nil {
		l.mu.Lock()
		l.lost = true
		l.mu.Unlock()
		return false
	}
	return true
}

// stillOwned reports whether the lease file still names this owner.
func (l *Lease) stillOwned() bool {
	data, err := os.ReadFile(l.path)
	if err != nil {
		return false
	}
	var info leaseInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return false
	}
	return info.Owner == l.owner
}

// Lost reports whether a heartbeat found the lease stolen or gone.
func (l *Lease) Lost() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost
}

// Owner returns the lease's owner id.
func (l *Lease) Owner() string { return l.owner }

// Release stops the heartbeat and removes the lease file — but only if the
// file still names this owner, so releasing after a steal never deletes
// the new holder's claim. Safe to call more than once.
func (l *Lease) Release() {
	l.mu.Lock()
	stop, done := l.stop, l.done
	l.stop, l.done = nil, nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if l.stillOwned() {
		os.Remove(l.path)
	}
}

// defaultOwner names this process in lease files: host:pid is unique per
// live worker on a shared filesystem and greppable in diagnostics.
func defaultOwner() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}
