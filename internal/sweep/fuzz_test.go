package sweep

import (
	"encoding/json"
	"errors"
	"testing"

	"wsnloc/internal/wsnerr"
)

// FuzzParseSweepSpec checks the sweep-document contract under arbitrary
// bytes: ParseSpec never panics, every rejection wraps wsnerr.ErrBadSpec,
// and every accepted document expands to cells whose keys survive a
// marshal/parse round trip unchanged — the invariant resume depends on.
func FuzzParseSweepSpec(f *testing.F) {
	f.Add([]byte(`{"scenarios":[{"N":30}],"algorithms":["centroid"]}`))
	f.Add([]byte(`{
		"name": "curves",
		"scenarios": [{"N": 25, "AnchorFrac": 0.1}, {"N": 25, "AnchorFrac": 0.3}],
		"algorithms": ["bncl-grid", "dv-hop"],
		"alg_opts": [{"GridN": 20}],
		"seeds": [1, 2],
		"trials": 3
	}`))
	f.Add([]byte(`{"scenarios":[],"algorithms":["centroid"]}`))
	f.Add([]byte(`{"scenarios":[{"N":-4}],"algorithms":["centroid"]}`))
	f.Add([]byte(`{"scenarios":[{"N":30}],"algorithms":["nope"]}`))
	f.Add([]byte(`{"version":99,"scenarios":[{"N":30}],"algorithms":["centroid"]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"scenarios":[{"NoiseFrac":1e309}],"algorithms":["centroid"]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sw, err := ParseSpec(data)
		if err != nil {
			if !errors.Is(err, wsnerr.ErrBadSpec) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		if err := sw.Validate(); err != nil {
			t.Fatalf("accepted sweep fails Validate: %v", err)
		}
		cells, err := sw.Cells()
		if err != nil {
			t.Fatalf("accepted sweep fails Cells: %v", err)
		}
		// Keep the expensive part bounded: keying is hashing, not solving,
		// but a hostile document can still declare a huge grid.
		if len(cells) > 512 {
			cells = cells[:512]
		}
		keys := make([]string, len(cells))
		for i, c := range cells {
			k, err := c.Key()
			if err != nil {
				t.Fatalf("cell %d of accepted sweep has no key: %v", i, err)
			}
			keys[i] = k
		}

		enc, err := json.Marshal(sw)
		if err != nil {
			t.Fatalf("accepted sweep does not marshal: %v", err)
		}
		rt, err := ParseSpec(enc)
		if err != nil {
			t.Fatalf("marshaled sweep does not re-parse: %v\n%s", err, enc)
		}
		rtCells, err := rt.Cells()
		if err != nil || len(rtCells) < len(keys) {
			t.Fatalf("round trip changed expansion: %d -> %d (%v)", len(keys), len(rtCells), err)
		}
		for i, k := range keys {
			if rk, _ := rtCells[i].Key(); rk != k {
				t.Fatalf("cell %d key drifted across round trip: %s vs %s", i, k, rk)
			}
		}
	})
}
