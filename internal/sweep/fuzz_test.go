package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"wsnloc/internal/alg"
	"wsnloc/internal/wsnerr"
)

// FuzzParseSweepSpec checks the sweep-document contract under arbitrary
// bytes: ParseSpec never panics, every rejection wraps wsnerr.ErrBadSpec,
// and every accepted document expands to cells whose keys survive a
// marshal/parse round trip unchanged — the invariant resume depends on.
func FuzzParseSweepSpec(f *testing.F) {
	f.Add([]byte(`{"scenarios":[{"N":30}],"algorithms":["centroid"]}`))
	f.Add([]byte(`{
		"name": "curves",
		"scenarios": [{"N": 25, "AnchorFrac": 0.1}, {"N": 25, "AnchorFrac": 0.3}],
		"algorithms": ["bncl-grid", "dv-hop"],
		"alg_opts": [{"GridN": 20}],
		"seeds": [1, 2],
		"trials": 3
	}`))
	f.Add([]byte(`{"scenarios":[],"algorithms":["centroid"]}`))
	f.Add([]byte(`{"scenarios":[{"N":-4}],"algorithms":["centroid"]}`))
	f.Add([]byte(`{"scenarios":[{"N":30}],"algorithms":["nope"]}`))
	f.Add([]byte(`{"version":99,"scenarios":[{"N":30}],"algorithms":["centroid"]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"scenarios":[{"NoiseFrac":1e309}],"algorithms":["centroid"]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sw, err := ParseSpec(data)
		if err != nil {
			if !errors.Is(err, wsnerr.ErrBadSpec) {
				t.Fatalf("untyped rejection: %v", err)
			}
			return
		}
		if err := sw.Validate(); err != nil {
			t.Fatalf("accepted sweep fails Validate: %v", err)
		}
		cells, err := sw.Cells()
		if err != nil {
			t.Fatalf("accepted sweep fails Cells: %v", err)
		}
		// Keep the expensive part bounded: keying is hashing, not solving,
		// but a hostile document can still declare a huge grid.
		if len(cells) > 512 {
			cells = cells[:512]
		}
		keys := make([]string, len(cells))
		for i, c := range cells {
			k, err := c.Key()
			if err != nil {
				t.Fatalf("cell %d of accepted sweep has no key: %v", i, err)
			}
			keys[i] = k
		}

		enc, err := json.Marshal(sw)
		if err != nil {
			t.Fatalf("accepted sweep does not marshal: %v", err)
		}
		rt, err := ParseSpec(enc)
		if err != nil {
			t.Fatalf("marshaled sweep does not re-parse: %v\n%s", err, enc)
		}
		rtCells, err := rt.Cells()
		if err != nil || len(rtCells) < len(keys) {
			t.Fatalf("round trip changed expansion: %d -> %d (%v)", len(keys), len(rtCells), err)
		}
		for i, k := range keys {
			if rk, _ := rtCells[i].Key(); rk != k {
				t.Fatalf("cell %d key drifted across round trip: %s vs %s", i, k, rk)
			}
		}
	})
}

// fuzzMergeSweep is the fixed two-cell grid FuzzMergeJournals merges
// against: small enough to execute once per fuzz process in milliseconds.
func fuzzMergeSweep() Spec {
	return Spec{
		Name:       "fuzz-merge",
		Scenarios:  []alg.Scenario{{N: 25, Field: 50, Seed: 9}},
		Algorithms: []string{"centroid", "min-max"},
		Seeds:      []uint64{1},
		Trials:     1,
	}
}

var fuzzMergeOnce struct {
	sync.Once
	canonical []byte // single-process summary bytes
	journal   []byte // the authentic journal both cells would produce
	recs      []cellRecord
	err       error
}

// fuzzMergeReference executes the fixed sweep once per process and renders
// the canonical summary plus an authentic journal of its cells.
func fuzzMergeReference() ([]byte, []byte, []cellRecord, error) {
	fuzzMergeOnce.Do(func() {
		res, err := Run(fuzzMergeSweep(), Options{Workers: 1})
		if err != nil {
			fuzzMergeOnce.err = err
			return
		}
		var sum bytes.Buffer
		if err := res.Summary().WriteJSON(&sum); err != nil {
			fuzzMergeOnce.err = err
			return
		}
		var j bytes.Buffer
		for _, cr := range res.Cells {
			r := cellRecord{
				V: journalVersion, Engine: EngineVersion,
				Cell: cr.Index, Key: cr.Key, Trials: cr.Cell.Trials, Eval: cr.Eval,
			}
			if r.Sum, err = r.checksum(); err != nil {
				fuzzMergeOnce.err = err
				return
			}
			line, err := json.Marshal(r)
			if err != nil {
				fuzzMergeOnce.err = err
				return
			}
			j.Write(line)
			j.WriteByte('\n')
			fuzzMergeOnce.recs = append(fuzzMergeOnce.recs, r)
		}
		fuzzMergeOnce.canonical = sum.Bytes()
		fuzzMergeOnce.journal = j.Bytes()
	})
	return fuzzMergeOnce.canonical, fuzzMergeOnce.journal, fuzzMergeOnce.recs, fuzzMergeOnce.err
}

// FuzzMergeJournals throws corrupted, duplicated, reordered, torn, and
// forged journal bytes at Merge (with no cache objects to fall back on) and
// checks the dichotomy the sharded-sweep design promises: Merge never
// panics, and it either reproduces the canonical single-process summary
// byte-for-byte or fails with a typed ErrBadJournal/ErrIncomplete — a
// damaged journal can never yield a silently drifted summary.
func FuzzMergeJournals(f *testing.F) {
	_, journal, recs, err := fuzzMergeReference()
	if err != nil {
		f.Fatal(err)
	}
	lines := bytes.SplitAfter(bytes.TrimSuffix(journal, []byte("\n")), []byte("\n"))

	// The authentic journal, and journal-shaped damage: duplication,
	// reordering, torn tails, checksum-breaking flips, blank noise.
	f.Add(journal)
	f.Add(append(append([]byte(nil), journal...), journal...))
	if len(lines) >= 2 {
		f.Add(append(append([]byte(nil), lines[len(lines)-1]...), lines[0]...))
	}
	f.Add(journal[:len(journal)/2])
	f.Add(journal[:len(journal)-3])
	flipped := append([]byte(nil), journal...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	f.Add([]byte("\n\n{}\nnot json\n"))
	f.Add([]byte(nil))
	// Authentic-but-inconsistent: a record whose checksum verifies but whose
	// cell index (or eval) contradicts the grid — must be ErrBadJournal.
	if len(recs) > 0 {
		forged := recs[0]
		forged.Cell++
		if forged.Sum, err = forged.checksum(); err == nil {
			if line, err := json.Marshal(forged); err == nil {
				f.Add(append(append([]byte(nil), journal...), append(line, '\n')...))
			}
		}
		conflict := recs[0]
		conflict.Eval.Messages += 3
		if conflict.Sum, err = conflict.checksum(); err == nil {
			if line, err := json.Marshal(conflict); err == nil {
				f.Add(append(append([]byte(nil), journal...), append(line, '\n')...))
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		canonical, _, _, err := fuzzMergeReference()
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ShardJournalName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Merge(fuzzMergeSweep(), dir)
		if err != nil {
			if !errors.Is(err, ErrBadJournal) && !errors.Is(err, ErrIncomplete) {
				t.Fatalf("untyped merge failure: %v", err)
			}
			return
		}
		var got bytes.Buffer
		if err := res.Summary().WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), canonical) {
			t.Fatalf("fuzzed journal merged into a drifted summary:\n%s", got.Bytes())
		}
	})
}
