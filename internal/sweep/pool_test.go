package sweep

import (
	"bytes"
	"context"
	"testing"

	"wsnloc/internal/alg"
	"wsnloc/internal/exec"
)

// TestSweepSharedPoolByteIdenticalSummary pins that a sweep scheduled on a
// caller-supplied shared pool writes the byte-identical summary of one run
// on its own transient pool — the cross-request guarantee wsnlocd relies on.
func TestSweepSharedPoolByteIdenticalSummary(t *testing.T) {
	sw := Spec{
		Name:       "pool-parity",
		Scenarios:  []alg.Scenario{{N: 30, Field: 50, AnchorFrac: 0.3, Seed: 1}},
		Algorithms: []string{"centroid", "dv-hop"},
		Seeds:      []uint64{1, 2},
		Trials:     2,
	}
	res, err := Run(sw, Options{Workers: 2})
	if err != nil {
		t.Fatalf("transient-pool sweep: %v", err)
	}
	var want bytes.Buffer
	if err := res.Summary().WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	pool, err := exec.NewPool(exec.Config{Workers: 2, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		pool.Close()
		pool.Drain(context.Background())
	}()
	res2, err := RunCtx(context.Background(), sw, Options{Workers: 2, Pool: pool})
	if err != nil {
		t.Fatalf("shared-pool sweep: %v", err)
	}
	var got bytes.Buffer
	if err := res2.Summary().WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("shared-pool summary differs:\nwant %s\ngot  %s", want.Bytes(), got.Bytes())
	}
}
