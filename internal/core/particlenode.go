package core

import (
	"math"

	"wsnloc/internal/bayes"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
	"wsnloc/internal/sim"
)

// particleNode is the per-sensor program of particle-mode BNCL (the
// nonparametric-BP variant). It mirrors gridNode's two-phase protocol but
// carries its posterior as weighted particles: each BP round it reweights
// its particles by the KDE of every cached neighbor's range message plus the
// pre-knowledge factors, then resamples with regularization jitter.
type particleNode struct {
	e      *env
	id     int
	anchor bool
	pos    mathx.Vec2
	stream *rng.Stream

	hopTable map[int]anchorHop
	improved []hopEntry

	pb     *bayes.ParticleBelief
	nbrPB  map[int]*bayes.ParticleBelief
	twoHop map[int]digest
	direct map[int]bool

	priorFactors []func(mathx.Vec2) float64
	// Scratch buffers reused across BP rounds (node-local, so safe under
	// the parallel engine).
	factorScratch []func(mathx.Vec2) float64
	keyScratch    []int

	prevMean   mathx.Vec2
	prevSpread float64
	stable     int
	censored   int // consecutive quiet rounds, for the censoring knob
	doneFlag   bool
	heardFrom  bool
}

func newParticleNode(e *env, id int) *particleNode {
	return &particleNode{
		e:        e,
		id:       id,
		anchor:   e.p.Deploy.Anchor[id],
		pos:      e.p.Deploy.Pos[id],
		stream:   e.nodeStreams[id],
		hopTable: make(map[int]anchorHop),
		nbrPB:    make(map[int]*bayes.ParticleBelief),
		twoHop:   make(map[int]digest),
	}
}

// Init implements sim.Node.
func (n *particleNode) Init(ctx *sim.Context) {
	n.direct = map[int]bool{n.id: true}
	for _, j := range ctx.Neighbors() {
		n.direct[j] = true
	}
	if n.anchor {
		n.hopTable[n.id] = anchorHop{pos: n.pos, hops: 0}
		ctx.Broadcast(kindHops, hopEntryBytes, []hopEntry{{anchor: n.id, pos: n.pos, hops: 0}})
	}
}

// Round implements sim.Node.
func (n *particleNode) Round(ctx *sim.Context, round int, inbox []sim.Message) {
	if round < n.e.cfg.HopRounds {
		n.floodRound(ctx, inbox)
		return
	}
	n.bpRound(ctx, round-n.e.cfg.HopRounds, inbox)
}

// Done implements sim.Node.
func (n *particleNode) Done() bool { return n.doneFlag }

func (n *particleNode) floodRound(ctx *sim.Context, inbox []sim.Message) {
	n.improved = n.improved[:0]
	for _, m := range inbox {
		entries, ok := m.Payload.([]hopEntry)
		if m.Kind != kindHops || !ok {
			continue
		}
		for _, e := range entries {
			cand := e.hops + 1
			cur, seen := n.hopTable[e.anchor]
			if !seen || cand < cur.hops {
				n.hopTable[e.anchor] = anchorHop{pos: e.pos, hops: cand}
				n.improved = append(n.improved, hopEntry{anchor: e.anchor, pos: e.pos, hops: cand})
				n.heardFrom = true
			}
		}
	}
	if len(n.improved) > 0 {
		out := make([]hopEntry, len(n.improved))
		copy(out, n.improved)
		ctx.Broadcast(kindHops, hopEntryBytes*len(out), out)
	}
}

func (n *particleNode) bpRound(ctx *sim.Context, t int, inbox []sim.Message) {
	if t == 0 {
		n.initParticles()
		n.broadcastBelief(ctx)
		return
	}

	n.ingest(inbox)

	if n.anchor {
		if t == 1 {
			n.broadcastBelief(ctx)
		}
		n.doneFlag = true
		return
	}

	n.update()

	mean, spread := n.pb.Mean(), n.pb.Spread()
	change := mean.Dist(n.prevMean) + math.Abs(spread-n.prevSpread)
	n.prevMean, n.prevSpread = mean, spread
	// Normalize by R so the recorded residual is on the same scale as the
	// grid mode's L1 change (both compare against Epsilon).
	n.e.recordResidual(n.id, t, change/n.e.p.R)
	n.e.recordESS(n.id, t, n.pb.ESS())

	if change < n.e.cfg.Epsilon*n.e.p.R {
		n.stable++
	} else {
		n.stable = 0
	}
	if n.stable >= 2 {
		if !n.doneFlag {
			n.e.recordDone(n.id, t)
		}
		n.doneFlag = true
		return
	}
	if n.censorRound(change) {
		ctx.Censored()
		return
	}
	n.broadcastBelief(ctx)
}

// censorRound mirrors gridNode.censorRound on the particle mode's change
// scale: Censor is compared against the mean/spread change normalized by R,
// exactly as Epsilon is. The node keeps updating (and consuming its RNG
// stream) while censored — only the broadcast is suppressed.
func (n *particleNode) censorRound(change float64) bool {
	c := n.e.cfg.Censor
	if c <= 0 {
		return false
	}
	if change < c*n.e.p.R {
		n.censored++
	} else {
		n.censored = 0
	}
	return n.censored >= censorK
}

// initParticles seeds the belief: anchors get a delta, unknowns sample from
// the pre-knowledge prior (region samples reweighted by hop annuli).
func (n *particleNode) initParticles() {
	m := n.e.cfg.Particles
	if n.anchor {
		n.pb = bayes.NewParticlesDelta(n.pos, m)
		return
	}

	region := n.samplingRegion()
	pb, err := bayes.NewParticlesUniform(region, m, n.stream)
	if err != nil {
		// Degenerate pre-knowledge region; fall back to the bounding box.
		pb, _ = bayes.NewParticlesUniform(n.e.grid.Bounds(), m, n.stream)
	}
	n.pb = pb
	n.priorFactors = n.buildPriorFactors(region)
	if len(n.priorFactors) > 0 {
		n.pb.ReweightBy(n.priorFactors, n.e.cfg.MessageFloor)
		n.pb.Resample(n.jitter(), n.stream)
	}
	n.prevMean, n.prevSpread = n.pb.Mean(), n.pb.Spread()
}

// samplingRegion returns the region particles are drawn from.
func (n *particleNode) samplingRegion() geom.Region {
	if n.e.cfg.PK.UseRegion && n.e.p.Deploy.Region != nil {
		return n.e.p.Deploy.Region
	}
	return n.e.grid.Bounds()
}

// buildPriorFactors assembles the per-round pre-knowledge reweighting
// factors. They are applied every round because resampling jitter can push
// particles out of the feasible set.
func (n *particleNode) buildPriorFactors(region geom.Region) []func(mathx.Vec2) float64 {
	var fs []func(mathx.Vec2) float64
	pk := n.e.cfg.PK
	if pk.UseRegion && region != nil {
		fs = append(fs, func(p mathx.Vec2) float64 {
			if !region.Contains(p) {
				return 0
			}
			if pk.DeployDensity != nil {
				return pk.DeployDensity(p)
			}
			return 1
		})
	} else if pk.DeployDensity != nil {
		fs = append(fs, pk.DeployDensity)
	}
	if pk.UseHopAnnuli {
		hops := sortedHopTable(n.hopTable)
		rUp, rLo := n.e.hopBounds()
		for _, ah := range selectAnnuli(hops, pk.maxAnnuli()) {
			fs = append(fs, annulusFactor(ah.pos, ah.hops, rUp, rLo))
		}
	}
	return fs
}

// jitter is the resampling regularization scale: a fraction of the ranging
// noise (or of R for range-free runs).
func (n *particleNode) jitter() float64 {
	s := 0.5 * n.e.p.Ranger.Sigma(n.e.p.R)
	if s <= 0 {
		s = 0.05 * n.e.p.R
	}
	return s
}

func (n *particleNode) ingest(inbox []sim.Message) {
	for _, m := range inbox {
		bm, ok := m.Payload.(*beliefMsg)
		if m.Kind != kindBelief || !ok || bm.particle == nil {
			continue
		}
		n.nbrPB[m.From] = bm.particle
		if n.e.p.Deploy.Anchor[m.From] {
			n.heardFrom = true
		}
		if n.e.cfg.PK.UseNegativeEvidence {
			for _, d := range bm.digests {
				if !n.direct[d.id] {
					n.twoHop[d.id] = d
				}
			}
		}
	}
}

// update reweights the particles by every evidence factor and resamples.
func (n *particleNode) update() {
	factors := append(n.factorScratch[:0], n.priorFactors...)

	n.keyScratch = sortedKeys(n.keyScratch, n.nbrPB)
	for _, j := range n.keyScratch {
		meas, ok := n.e.p.Graph.MeasBetween(n.id, j)
		if !ok {
			continue
		}
		sigma := n.e.p.Ranger.Sigma(meas)
		msg := n.nbrPB[j].MakeRangeMessage(meas, sigma, n.stream)
		factors = append(factors, msg.Eval)
	}

	if n.e.cfg.PK.UseNegativeEvidence {
		n.keyScratch = sortedKeys(n.keyScratch, n.twoHop)
		for _, k := range n.keyScratch {
			d := n.twoHop[k]
			f := negEvidenceFactor(d.mean, clampSpread(d.spread), n.e.p.R, n.e.p.Prop.PRR)
			if f != nil {
				factors = append(factors, f)
			}
		}
	}
	n.factorScratch = factors

	next := n.pb.Clone()
	next.ReweightBy(factors, n.e.cfg.MessageFloor)
	next.Resample(n.jitter(), n.stream)
	n.pb = next
}

func (n *particleNode) broadcastBelief(ctx *sim.Context) {
	msg := &beliefMsg{
		particle: n.pb, // immutable: update() replaces rather than mutates
		mean:     n.pb.Mean(),
		spread:   n.pb.Spread(),
	}
	if n.e.cfg.PK.UseNegativeEvidence {
		n.keyScratch = sortedKeys(n.keyScratch, n.nbrPB)
		for _, j := range n.keyScratch {
			pb := n.nbrPB[j]
			msg.digests = append(msg.digests, digest{id: j, mean: pb.Mean(), spread: pb.Spread()})
		}
	}
	ctx.Broadcast(kindBelief, msg.bytesOf(), msg)
}

// Estimate implements estimateReader.
func (n *particleNode) Estimate() (mathx.Vec2, float64, bool) {
	if n.pb == nil {
		c := n.e.grid.Bounds().Center()
		return c, math.Inf(1), false
	}
	return n.pb.Mean(), n.pb.Spread(), n.heardFrom
}
