package core

import (
	"context"
	"time"

	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
	"wsnloc/internal/sim"
)

// BNCL observability: node programs feed per-round convergence diagnostics
// into per-node buffers of the shared env — each buffer is written only by
// the goroutine executing that node's program, so the worker pool needs no
// locking — the sim.Config.OnRound hook attributes traffic and wall time to
// rounds, and Localize reduces both into Result.Convergence plus structured
// obs events when a tracer is attached.

// roundTrace aggregates one BP iteration's diagnostics across all nodes.
type roundTrace struct {
	resSum float64 // summed convergence residual over unknowns
	resMax float64
	resN   int
	essSum float64 // summed particle ESS over unknowns (particle mode)
	essN   int
	done   int // nodes that turned done this round
}

// nodeRound is one node's diagnostics for one BP iteration. The per-node
// slices are reduced in node-id order after the run, which is exactly the
// accumulation order of the sequential engine — so the aggregate
// floating-point sums are bit-identical for any worker count.
type nodeRound struct {
	res    float64
	ess    float64
	hasRes bool
	hasESS bool
	done   bool
}

// convStat counts one node's BP message convolutions per dispatch path.
// The nanosecond accumulators are filled only when env.timeConv is set, so
// the untraced hot path never touches the clock.
type convStat struct {
	sparse, fft     int
	sparseNS, fftNS int64
}

// pruneStat accumulates one node's support pruning: total mass removed and
// cells zeroed across the run.
type pruneStat struct {
	mass  float64
	cells int
}

// recordResidual adds node's convergence residual for BP iteration t.
func (e *env) recordResidual(node, t int, r float64) {
	nr := e.nodeRound(node, t)
	nr.res = r
	nr.hasRes = true
}

// recordESS adds node's effective sample size for BP iteration t.
func (e *env) recordESS(node, t int, v float64) {
	nr := e.nodeRound(node, t)
	nr.ess = v
	nr.hasESS = true
}

// recordDone notes node finishing at BP iteration t.
func (e *env) recordDone(node, t int) { e.nodeRound(node, t).done = true }

func (e *env) nodeRound(node, t int) *nodeRound {
	s := e.nodeTrace[node]
	for len(s) <= t {
		s = append(s, nodeRound{})
	}
	e.nodeTrace[node] = s
	return &e.nodeTrace[node][t]
}

// aggregateRound reduces BP iteration t's per-node diagnostics into one
// total; any reports whether any node recorded that far. Nodes contribute in
// id order — the accumulation order of the sequential engine — so the
// floating-point sums are bit-identical for any worker count, and identical
// whether computed live (between rounds) or after the run.
func (e *env) aggregateRound(t int) (rt roundTrace, any bool) {
	for node := range e.nodeTrace {
		if t >= len(e.nodeTrace[node]) {
			continue
		}
		any = true
		nr := e.nodeTrace[node][t]
		if nr.hasRes {
			rt.resSum += nr.res
			if nr.res > rt.resMax {
				rt.resMax = nr.res
			}
			rt.resN++
		}
		if nr.hasESS {
			rt.essSum += nr.ess
			rt.essN++
		}
		if nr.done {
			rt.done++
		}
	}
	return rt, any
}

// aggregate reduces the per-node diagnostics into per-round totals.
func (e *env) aggregate() []roundTrace {
	var out []roundTrace
	for t := 0; ; t++ {
		rt, any := e.aggregateRound(t)
		if !any {
			return out
		}
		out = append(out, rt)
	}
}

// convergence flattens the aggregated residuals into the Result.Convergence
// series: mean residual per BP iteration, in iteration order.
func (e *env) convergence() []float64 {
	var out []float64
	for _, rt := range e.trace {
		if rt.resN == 0 {
			continue
		}
		out = append(out, rt.resSum/float64(rt.resN))
	}
	return out
}

// roundSnap is one OnRound observation: cumulative traffic and the wall
// clock after the round executed.
type roundSnap struct {
	round int
	at    time.Time
	msgs  int
	bytes int
}

// runTrace drives the tracer side of one Localize call: it owns the run's
// span (bncl.run.start / bncl.run.done with span and parent IDs), and every
// event it emits goes through the span's tracer so rounds, phases, and
// convolution totals are parented to the run.
type runTrace struct {
	tr       obs.Tracer // the run span's tracer — children inherit its ID
	span     *obs.Span
	env      *env
	particle bool
	start    time.Time
	snaps    []roundSnap
	doneCum  int
}

// newRunTrace returns nil when the tracer records nothing, so call sites can
// gate on rt != nil. Otherwise it opens the run span immediately, so stream
// consumers see the solve the moment it starts, not when it finishes.
func newRunTrace(tr obs.Tracer, b *BNCL, p *Problem, e *env) *runTrace {
	if !obs.Enabled(tr) {
		return nil
	}
	sp := obs.StartSpan(tr, "bncl.run", map[string]interface{}{
		"alg":     b.Name(),
		"nodes":   p.Deploy.N(),
		"workers": sim.ResolveWorkers(b.Cfg.Workers, p.Deploy.N()),
	})
	return &runTrace{
		tr:       sp.Tracer(),
		span:     sp,
		env:      e,
		particle: e.cfg.Mode == ParticleMode,
		start:    time.Now(),
	}
}

// onRound is installed as the sim.Config.OnRound hook. It runs on the
// coordinating goroutine after the round's worker pool has joined, so the
// per-node trace buffers are quiescent — which is what makes emitting the
// round's aggregate live (rather than after the run) race-free. Live
// emission is the point of the ops plane: a long solve shows its per-round
// residuals on /events while it runs.
func (rt *runTrace) onRound(round int, stats sim.Stats) {
	rt.snaps = append(rt.snaps, roundSnap{round: round, at: time.Now(), msgs: stats.MessagesSent, bytes: stats.BytesSent})
	rt.emitRound(len(rt.snaps) - 1)
}

// emitRound emits the bncl.round event for snapshot i, joining the node-level
// aggregates of its BP iteration with the sim's traffic/time deltas.
func (rt *runTrace) emitRound(i int) {
	s := rt.snaps[i]
	t := s.round - rt.env.cfg.HopRounds // BP iteration; negative during hop flood
	if t < 0 {
		return
	}
	msgs, bytes, dur := rt.snapDelta(i)
	fields := map[string]interface{}{
		"round":  t,
		"msgs":   msgs,
		"bytes":  bytes,
		"dur_ms": durMS(dur),
	}
	if agg, any := rt.env.aggregateRound(t); any {
		rt.doneCum += agg.done
		if agg.resN > 0 {
			fields["residual_mean"] = agg.resSum / float64(agg.resN)
			fields["residual_max"] = agg.resMax
			fields["nodes"] = agg.resN
		}
		if rt.particle && agg.essN > 0 {
			fields["ess_mean"] = agg.essSum / float64(agg.essN)
		}
		fields["done"] = rt.doneCum
	}
	rt.tr.Emit(obs.Event{Time: s.at, Name: "bncl.round", Fields: fields})
}

// snapDelta returns the traffic/time deltas of snapshot i against its
// predecessor (or the run start).
func (rt *runTrace) snapDelta(i int) (msgs, bytes int, dur time.Duration) {
	s := rt.snaps[i]
	if i == 0 {
		return s.msgs, s.bytes, s.at.Sub(rt.start)
	}
	prev := rt.snaps[i-1]
	return s.msgs - prev.msgs, s.bytes - prev.bytes, s.at.Sub(prev.at)
}

// emitConv reports the run's convolution dispatch totals: the configured
// path, how many messages each path served, and (when timing was enabled)
// the wall time each spent. Per-node stats are summed in node-id order.
func (rt *runTrace) emitConv(e *env) {
	var total convStat
	for i := range e.convStats {
		cs := &e.convStats[i]
		total.sparse += cs.sparse
		total.fft += cs.fft
		total.sparseNS += cs.sparseNS
		total.fftNS += cs.fftNS
	}
	if total.sparse == 0 && total.fft == 0 {
		return
	}
	obs.Emit(rt.tr, "bncl.conv", map[string]interface{}{
		"path":      e.cfg.Conv.String(),
		"sparse":    total.sparse,
		"fft":       total.fft,
		"sparse_ms": float64(total.sparseNS) / 1e6,
		"fft_ms":    float64(total.fftNS) / 1e6,
	})
}

// emitPrune reports the run's support-pruning totals: the knob, the mass
// removed, and the cells zeroed, summed in node-id order. Silent when the
// knob is off or nothing was pruned, so knobs-off traces are unchanged.
func (rt *runTrace) emitPrune(e *env) {
	if e.cfg.Prune <= 0 {
		return
	}
	var total pruneStat
	for i := range e.pruneStats {
		total.mass += e.pruneStats[i].mass
		total.cells += e.pruneStats[i].cells
	}
	if total.cells == 0 {
		return
	}
	obs.Emit(rt.tr, "bncl.prune", map[string]interface{}{
		"rel":   e.cfg.Prune,
		"mass":  total.mass,
		"cells": total.cells,
	})
}

// emitPhase sums the snapshots in rounds [lo, hi) into one bncl.phase event.
func (rt *runTrace) emitPhase(phase string, lo, hi int) {
	var msgs, bytes, rounds int
	var dur time.Duration
	for i := range rt.snaps {
		if r := rt.snaps[i].round; r < lo || r >= hi {
			continue
		}
		m, b, d := rt.snapDelta(i)
		msgs += m
		bytes += b
		dur += d
		rounds++
	}
	if rounds == 0 {
		return
	}
	obs.Emit(rt.tr, "bncl.phase", map[string]interface{}{
		"phase": phase, "rounds": rounds, "msgs": msgs, "bytes": bytes, "dur_ms": durMS(dur),
	})
}

// emitRefine reports the zero-traffic local refinement pass.
func (rt *runTrace) emitRefine(dur time.Duration) {
	obs.Emit(rt.tr, "bncl.phase", map[string]interface{}{
		"phase": "refine", "rounds": 0, "msgs": 0, "bytes": 0, "dur_ms": durMS(dur),
	})
}

// emitCanceled ends the run span as "bncl.run.canceled": the rounds that
// completed before the cancel and the context's error. Rounds emitted live
// before the cancel are already on the stream.
func (rt *runTrace) emitCanceled(rounds int, err error) {
	rt.span.EndAs("canceled", map[string]interface{}{
		"rounds": rounds,
		"err":    err.Error(),
	})
}

// emitFailed ends the run span as "bncl.run.error" for non-cancellation
// failures (e.g. the traffic budget), so span pairs stay balanced on the
// stream.
func (rt *runTrace) emitFailed(rounds int, err error) {
	rt.span.EndAs("error", map[string]interface{}{
		"rounds": rounds,
		"err":    err.Error(),
	})
}

// emitRun ends the run span as "bncl.run.done" with the whole solve's totals.
// The censored counter appears only when censoring suppressed something, so
// knobs-off events keep their historical shape byte for byte.
func (rt *runTrace) emitRun(res *Result) {
	fields := map[string]interface{}{
		"rounds": res.Rounds,
		"msgs":   res.Stats.MessagesSent,
		"bytes":  res.Stats.BytesSent,
	}
	if res.Stats.MessagesCensored > 0 {
		fields["censored"] = res.Stats.MessagesCensored
	}
	rt.span.EndWith(fields)
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// TracerSetter is implemented by algorithms that accept a tracer; Traced and
// the experiment harness use it to inject observability without widening the
// Algorithm interface.
type TracerSetter interface {
	SetTracer(tr obs.Tracer)
}

// SetTracer implements TracerSetter.
func (b *BNCL) SetTracer(tr obs.Tracer) { b.Cfg.Tracer = tr }

// Traced wraps an algorithm so every Localize call emits an "algorithm"
// timing event; if the algorithm itself supports tracer injection (BNCL, the
// DV family), the tracer is also pushed down for phase/round events. A nil
// or no-op tracer returns the algorithm unchanged.
func Traced(alg Algorithm, tr obs.Tracer) Algorithm {
	if !obs.Enabled(tr) {
		return alg
	}
	if ts, ok := alg.(TracerSetter); ok {
		ts.SetTracer(tr)
	}
	return &tracedAlg{alg: alg, tr: tr}
}

type tracedAlg struct {
	alg Algorithm
	tr  obs.Tracer
}

// Name implements Algorithm.
func (t *tracedAlg) Name() string { return t.alg.Name() }

// Localize implements Algorithm.
func (t *tracedAlg) Localize(p *Problem, stream *rng.Stream) (*Result, error) {
	return t.LocalizeCtx(context.Background(), p, stream)
}

// LocalizeCtx implements ContextAlgorithm, delegating cancellation to the
// wrapped algorithm via LocalizeContext.
func (t *tracedAlg) LocalizeCtx(ctx context.Context, p *Problem, stream *rng.Stream) (*Result, error) {
	start := time.Now()
	res, err := LocalizeContext(ctx, t.alg, p, stream)
	fields := map[string]interface{}{
		"alg":    t.alg.Name(),
		"dur_ms": durMS(time.Since(start)),
		"ok":     err == nil,
	}
	if res != nil {
		fields["rounds"] = res.Rounds
		fields["msgs"] = res.Stats.MessagesSent
		fields["bytes"] = res.Stats.BytesSent
	}
	obs.Emit(t.tr, "algorithm", fields)
	return res, err
}
