package core

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"wsnloc/internal/bayes"
	"wsnloc/internal/geom"
	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
)

// The dual-path convolution engine must preserve the two BNCL invariants: for
// any fixed ConvPath the run is bit-identical across worker counts (dispatch
// is a pure function of the message, never of timing), and the FFT path
// changes estimates only within floating-point/support-trim noise.

func TestConvPathDeterministicAcrossWorkers(t *testing.T) {
	for _, path := range []bayes.ConvPath{bayes.ConvAuto, bayes.ConvSparse, bayes.ConvFFT} {
		t.Run(path.String(), func(t *testing.T) {
			run := func(workers int) *Result {
				p := testProblem(t, 55, 70, 0.15)
				p.Loss = 0.15
				cfg := quickCfg(GridMode, AllPreKnowledge())
				cfg.Conv = path
				cfg.Workers = workers
				res, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(77))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(1)
			for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
				if got := run(workers); !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: Result not byte-identical to sequential run", workers)
				}
			}
		})
	}
}

// TestConvPathsAccuracyEquivalent: forcing the FFT path (or letting auto
// dispatch) must not change localization quality — the paths compute the same
// message up to 1e-9 rounding plus the sparse path's ≤SupportEps tail trim.
func TestConvPathsAccuracyEquivalent(t *testing.T) {
	p := testProblem(t, 10, 80, 0.15)
	run := func(path bayes.ConvPath) float64 {
		cfg := quickCfg(GridMode, AllPreKnowledge())
		cfg.Conv = path
		res, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		errM, cov := meanError(p, res)
		if cov < 0.9 {
			t.Fatalf("path %v: coverage %.2f too low", path, cov)
		}
		return errM
	}
	base := run(bayes.ConvSparse)
	for _, path := range []bayes.ConvPath{bayes.ConvAuto, bayes.ConvFFT} {
		got := run(path)
		if d := math.Abs(got - base); d > 0.05 {
			t.Errorf("path %v: mean error %.4f m vs sparse %.4f m (Δ %.4f m)", path, got, base, d)
		}
	}
}

// TestAutoDispatchEmitsConvEvent: a traced auto run on a grid large enough
// for the FFT crossover must report both paths serving messages through the
// bncl.conv event — the early diffuse rounds go dense, the late concentrated
// rounds go sparse.
func TestAutoDispatchEmitsConvEvent(t *testing.T) {
	p := testProblem(t, 10, 80, 0.15)
	mem := obs.NewMemory()
	cfg := quickCfg(GridMode, AllPreKnowledge())
	cfg.GridNX, cfg.GridNY = 64, 64
	cfg.Tracer = mem
	if _, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(99)); err != nil {
		t.Fatal(err)
	}
	evs := mem.ByName("bncl.conv")
	if len(evs) != 1 {
		t.Fatalf("got %d bncl.conv events, want 1", len(evs))
	}
	e := evs[0]
	if path, _ := e.Fields["path"].(string); path != "auto" {
		t.Errorf("path field = %v, want auto", e.Fields["path"])
	}
	sparse, _ := e.Float("sparse")
	fft, _ := e.Float("fft")
	if sparse == 0 || fft == 0 {
		t.Errorf("auto dispatch used only one path: sparse=%v fft=%v", sparse, fft)
	}
	sms, _ := e.Float("sparse_ms")
	fms, _ := e.Float("fft_ms")
	if sms <= 0 || fms <= 0 {
		t.Errorf("traced run recorded no conv wall time: sparse_ms=%v fft_ms=%v", sms, fms)
	}
}

// TestForcedPathConvStats: forcing one side routes every message there.
func TestForcedPathConvStats(t *testing.T) {
	for _, tc := range []struct {
		path bayes.ConvPath
		zero string
	}{{bayes.ConvSparse, "fft"}, {bayes.ConvFFT, "sparse"}} {
		p := testProblem(t, 12, 40, 0.2)
		mem := obs.NewMemory()
		cfg := quickCfg(GridMode, AllPreKnowledge())
		cfg.Conv = tc.path
		cfg.Tracer = mem
		if _, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(4)); err != nil {
			t.Fatal(err)
		}
		evs := mem.ByName("bncl.conv")
		if len(evs) != 1 {
			t.Fatalf("path %v: got %d bncl.conv events, want 1", tc.path, len(evs))
		}
		if v, _ := evs[0].Float(tc.zero); v != 0 {
			t.Errorf("forced %v still ran %v %s convolutions", tc.path, v, tc.zero)
		}
		if v, _ := evs[0].Float(tc.path.String()); v == 0 {
			t.Errorf("forced %v ran no convolutions on its own path", tc.path)
		}
	}
}

// TestRecomputeClearsDirtyWithoutMeasurement is the regression test for the
// dirty-bit leak: a cached neighbor belief with no usable measurement must
// have its dirty flag cleared, not retried every remaining BP round.
func TestRecomputeClearsDirtyWithoutMeasurement(t *testing.T) {
	p := testProblem(t, 7, 30, 0.2)
	cfg := quickCfg(GridMode, NoPreKnowledge()).withDefaults()
	e := &env{
		p:         p,
		cfg:       cfg,
		grid:      geom.NewGrid(p.Deploy.Region.Bounds(), cfg.GridNX, cfg.GridNY),
		convStats: make([]convStat, p.Deploy.N()),
	}
	e.kernels = newKernelCache(e)

	id := p.Deploy.UnknownIDs()[0]
	n := newGridNode(e, id)
	n.initBelief()

	// Find a node with no measured link to id.
	stranger := -1
	for j := 0; j < p.Deploy.N(); j++ {
		if j == id {
			continue
		}
		if _, ok := p.Graph.MeasBetween(id, j); !ok {
			stranger = j
			break
		}
	}
	if stranger == -1 {
		t.Skip("scenario is fully connected; no unmeasured pair")
	}
	l := &nbrLink{pending: bayes.NewUniform(e.grid)}
	n.nbr[stranger] = l
	n.recompute()
	if !l.noMeas {
		t.Error("measurement miss not recorded for a neighbor without a link")
	}
	if l.pending != nil {
		t.Error("pending belief retained for a neighbor without a measurement")
	}
	if l.msg.Valid() {
		t.Error("message cached for a neighbor without a measurement")
	}
	// A second arrival must not retry the lookup's convolution path either.
	l.pending = bayes.NewUniform(e.grid)
	n.recompute()
	if l.pending != nil || l.msg.Valid() {
		t.Error("second arrival on a measurement-less link was not dropped")
	}
}
