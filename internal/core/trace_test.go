package core

import (
	"testing"

	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
)

// TestBNCLTraceEvents runs a traced grid solve against the in-memory sink and
// checks the event stream matches the schema the JSONL file would carry.
func TestBNCLTraceEvents(t *testing.T) {
	p := testProblem(t, 10, 80, 0.15)
	cfg := quickCfg(GridMode, AllPreKnowledge())
	mem := obs.NewMemory()
	cfg.Tracer = mem
	alg := &BNCL{Cfg: cfg}
	res, err := alg.Localize(p, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}

	rounds := mem.ByName("bncl.round")
	if len(rounds) == 0 {
		t.Fatal("no bncl.round events emitted")
	}
	withResidual := 0
	for _, e := range rounds {
		if _, ok := e.Float("round"); !ok {
			t.Errorf("bncl.round missing round field: %v", e.Fields)
		}
		if _, ok := e.Float("msgs"); !ok {
			t.Errorf("bncl.round missing msgs field: %v", e.Fields)
		}
		if _, ok := e.Float("dur_ms"); !ok {
			t.Errorf("bncl.round missing dur_ms field: %v", e.Fields)
		}
		if v, ok := e.Float("residual_mean"); ok {
			withResidual++
			if v < 0 {
				t.Errorf("negative residual %g", v)
			}
		}
	}
	if withResidual == 0 {
		t.Error("no bncl.round event carries residual_mean")
	}
	if withResidual != len(res.Convergence) {
		t.Errorf("events with residual_mean = %d, len(Convergence) = %d; want equal",
			withResidual, len(res.Convergence))
	}

	phases := map[string]bool{}
	for _, e := range mem.ByName("bncl.phase") {
		phase, _ := e.Fields["phase"].(string)
		phases[phase] = true
		if _, ok := e.Float("dur_ms"); !ok {
			t.Errorf("bncl.phase missing dur_ms: %v", e.Fields)
		}
	}
	for _, want := range []string{"hopflood", "bp"} {
		if !phases[want] {
			t.Errorf("missing bncl.phase %q (have %v)", want, phases)
		}
	}

	starts := mem.ByName("bncl.run.start")
	if len(starts) != 1 {
		t.Fatalf("got %d bncl.run.start events, want 1", len(starts))
	}
	runs := mem.ByName("bncl.run.done")
	if len(runs) != 1 {
		t.Fatalf("got %d bncl.run.done events, want 1", len(runs))
	}
	if msgs, _ := runs[0].Float("msgs"); int(msgs) != res.Stats.MessagesSent {
		t.Errorf("bncl.run.done msgs = %v, want %d", msgs, res.Stats.MessagesSent)
	}
	if rds, _ := runs[0].Float("rounds"); int(rds) != res.Rounds {
		t.Errorf("bncl.run.done rounds = %v, want %d", rds, res.Rounds)
	}
	// Span identity: the run span stamps itself on start/done, and every
	// plain event of the solve is parented to it.
	spanID, _ := runs[0].Fields["span_id"].(string)
	if spanID == "" {
		t.Fatal("bncl.run.done missing span_id")
	}
	if sid, _ := starts[0].Fields["span_id"].(string); sid != spanID {
		t.Errorf("bncl.run.start span_id = %q, done span_id = %q; want equal", sid, spanID)
	}
	for _, e := range rounds {
		if pid, _ := e.Fields["parent_id"].(string); pid != spanID {
			t.Errorf("bncl.round parent_id = %q, want run span %q", pid, spanID)
		}
	}
}

// TestBNCLParticleTraceESS checks particle mode reports effective sample
// sizes in its round events.
func TestBNCLParticleTraceESS(t *testing.T) {
	p := testProblem(t, 11, 60, 0.15)
	cfg := quickCfg(ParticleMode, AllPreKnowledge())
	mem := obs.NewMemory()
	cfg.Tracer = mem
	if _, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range mem.ByName("bncl.round") {
		if v, ok := e.Float("ess_mean"); ok {
			found = true
			// Allow float slop just above M: ESS = 1/Σw² is exactly M for
			// uniform weights up to rounding.
			if v <= 0 || v > float64(cfg.Particles)*(1+1e-9) {
				t.Errorf("ess_mean %g outside (0, %d]", v, cfg.Particles)
			}
		}
	}
	if !found {
		t.Error("no bncl.round event carries ess_mean in particle mode")
	}
}

// TestConvergenceHistory checks Result.Convergence is populated without a
// tracer, starts above the convergence threshold, and trends downward (BP
// residuals are noisy round-to-round, so the assertion compares the tail
// against the head rather than demanding monotonicity).
func TestConvergenceHistory(t *testing.T) {
	p := testProblem(t, 10, 80, 0.15)
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	conv := res.Convergence
	if len(conv) < 2 {
		t.Fatalf("Convergence has %d entries, want >= 2", len(conv))
	}
	t.Logf("convergence: %v", conv)
	for i, v := range conv {
		if v < 0 {
			t.Errorf("residual %d = %g, want >= 0", i, v)
		}
	}
	first, last := conv[0], conv[len(conv)-1]
	if last >= first {
		t.Errorf("residuals did not decrease: first %.4g, last %.4g", first, last)
	}
}

// TestEpsilonEarlyExit checks the Epsilon convergence test actually
// terminates the BP phase: with a loose threshold the run must stop well
// before the round cap, and the loose run must use no more rounds than a
// tight one.
func TestEpsilonEarlyExit(t *testing.T) {
	p := testProblem(t, 10, 80, 0.15)

	run := func(eps float64) *Result {
		cfg := quickCfg(GridMode, AllPreKnowledge())
		cfg.BPRounds = 30
		cfg.Epsilon = eps
		res, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cfg := quickCfg(GridMode, AllPreKnowledge())
	roundCap := cfg.HopRounds + 30 + 2
	loose := run(0.5)
	if loose.Rounds >= roundCap {
		t.Errorf("loose Epsilon ran %d rounds, cap %d — early exit never fired", loose.Rounds, roundCap)
	}
	tight := run(1e-9)
	if loose.Rounds > tight.Rounds {
		t.Errorf("loose Epsilon (%d rounds) outlasted tight (%d rounds)", loose.Rounds, tight.Rounds)
	}
	if len(loose.Convergence) > len(tight.Convergence) {
		t.Errorf("loose run recorded more residuals (%d) than tight (%d)",
			len(loose.Convergence), len(tight.Convergence))
	}
}

// TestTracedWrapper checks core.Traced emits algorithm events and passes the
// tracer down to TracerSetter implementations.
func TestTracedWrapper(t *testing.T) {
	p := testProblem(t, 10, 60, 0.15)
	mem := obs.NewMemory()
	alg := Traced(&BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}, mem)
	if _, err := alg.Localize(p, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	algs := mem.ByName("algorithm")
	if len(algs) != 1 {
		t.Fatalf("got %d algorithm events, want 1", len(algs))
	}
	if ok, _ := algs[0].Fields["ok"].(bool); !ok {
		t.Errorf("algorithm event ok = %v, want true", algs[0].Fields["ok"])
	}
	if len(mem.ByName("bncl.run.done")) != 1 {
		t.Error("tracer was not pushed down into BNCL")
	}

	// Nil / no-op tracers must return the algorithm unchanged.
	base := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	if Traced(base, nil) != Algorithm(base) {
		t.Error("Traced(alg, nil) should return alg")
	}
	if Traced(base, obs.Nop()) != Algorithm(base) {
		t.Error("Traced(alg, Nop) should return alg")
	}
}
