package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"wsnloc/internal/bayes"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
	"wsnloc/internal/sim"
	"wsnloc/internal/topology"
	"wsnloc/internal/wsnerr"
)

// Estimator selects how a point estimate is read from the posterior.
type Estimator int

const (
	// EstimatorMean reports the posterior mean (MMSE) — the default, and
	// the better choice under quadratic loss.
	EstimatorMean Estimator = iota
	// EstimatorMAP reports the highest-probability grid cell. Useful when
	// the posterior is multi-modal and the mean would fall between modes
	// (e.g. inside an obstacle). Grid mode only; particle mode always
	// reports the mean.
	EstimatorMAP
)

// Mode selects the belief representation of BNCL.
type Mode int

const (
	// GridMode discretizes the deployment area; robust to multi-modality.
	GridMode Mode = iota
	// ParticleMode uses weighted samples (nonparametric BP); scales to
	// large areas without grid-resolution cost.
	ParticleMode
)

// Config tunes the BNCL protocol. The zero value plus a PreKnowledge choice
// is a usable configuration; see the default* constants.
type Config struct {
	Mode Mode
	// GridNX/GridNY set the belief grid resolution (GridMode). Default 40.
	GridNX, GridNY int
	// Particles sets the particle count (ParticleMode). Default 150.
	Particles int
	// HopRounds is the length of the anchor hop-flood phase. Default 20.
	HopRounds int
	// BPRounds caps the belief-propagation phase. Default 15.
	BPRounds int
	// Epsilon is the per-node L1 belief-change convergence threshold.
	// Default 0.02.
	Epsilon float64
	// MessageFloor is the damping floor applied to incoming messages, as a
	// fraction of each message's max. Default 2e-3.
	MessageFloor float64
	// PK selects the pre-knowledge terms.
	PK PreKnowledge
	// Estimator selects the point-estimate rule (grid mode).
	Estimator Estimator
	// Refine enables post-convergence local grid refinement (grid mode):
	// each node re-solves its posterior on a fine grid around its coarse
	// estimate, at zero extra radio traffic. Breaks the grid-resolution
	// accuracy floor for ~1 extra local compute pass.
	Refine bool
	// Conv selects the message-convolution path (grid mode): ConvAuto (the
	// zero value) dispatches each message between the sparse row-run scatter
	// and the cached-spectrum FFT path via a deterministic cost model;
	// ConvSparse / ConvFFT force one side. Unlike Workers this is part of
	// the algorithm — the FFT path perturbs floating point — so it
	// participates in Spec hashing (internal/alg). For any fixed value,
	// results remain bit-identical across worker counts.
	Conv bayes.ConvPath
	// Censor, when > 0, enables message censoring: an unknown node whose
	// per-round belief change has stayed below Censor for censorK
	// consecutive BP rounds suppresses its broadcast (neighbors keep using
	// their cached convolved message), and resumes the moment a fresh
	// neighbor message moves its belief by Censor or more. Grid mode
	// compares against the L1 belief change, particle mode against the
	// mean/spread change normalized by R — the same scales Epsilon uses, so
	// useful values sit at or above Epsilon. Like Conv this is part of the
	// algorithm (it participates in Spec hashing); for any fixed value,
	// results stay bit-identical across worker counts. 0 disables.
	Censor float64
	// Prune, when > 0, prunes belief support after every recompute: cells
	// below Prune·max are zeroed and the survivors renormalized, shrinking
	// each subsequent support scan, convolution, and broadcast. The prior is
	// never pruned, so pruning is not sticky — mass can return to a pruned
	// cell on a later round. Must be in [0,1); part of the algorithm, like
	// Censor. 0 disables. Grid mode only.
	Prune float64
	// Workers sets the simulator's per-round worker-pool size: 0 uses
	// GOMAXPROCS, 1 forces the sequential engine. Results are bit-identical
	// for every value (see sim.Config.Workers); it is not part of the
	// algorithm.
	Workers int
	// Tracer receives structured per-round and per-phase events (see
	// internal/obs). Nil or the no-op tracer keeps the solver on its
	// untraced fast path; it is not part of the algorithm.
	Tracer obs.Tracer
}

// Exported defaults of the zero-value Config knobs. Spec canonicalization
// (internal/alg) fills them explicitly so a spec that spells out a default
// hashes identically to one that leaves the field zero.
const (
	DefaultGridN     = 40
	DefaultParticles = 150
	DefaultBPRounds  = 15
)

const (
	defaultGridN     = DefaultGridN
	defaultParticles = DefaultParticles
	defaultHopRounds = 20
	defaultBPRounds  = DefaultBPRounds
	defaultEpsilon   = 0.02
	defaultMsgFloor  = 2e-3
)

// censorK is how many consecutive quiet rounds (belief change below
// Config.Censor) a node waits before censoring its broadcast. Fixed rather
// than configurable: one quiet round is routinely followed by a correction,
// two in a row almost never.
const censorK = 2

// Validate rejects configuration values no BNCL instance can honor; zero
// means "use the default" throughout, so only explicitly negative knobs (or
// out-of-range probabilities) are invalid. Failures wrap wsnerr.ErrBadConfig.
func (c Config) Validate() error {
	bad := func(field string, v interface{}) error {
		return fmt.Errorf("core: %w: %s must be >= 0, got %v", wsnerr.ErrBadConfig, field, v)
	}
	switch {
	case c.GridNX < 0:
		return bad("GridNX", c.GridNX)
	case c.GridNY < 0:
		return bad("GridNY", c.GridNY)
	case c.Particles < 0:
		return bad("Particles", c.Particles)
	case c.HopRounds < 0:
		return bad("HopRounds", c.HopRounds)
	case c.BPRounds < 0:
		return bad("BPRounds", c.BPRounds)
	case c.Workers < 0:
		return bad("Workers", c.Workers)
	case c.Epsilon < 0:
		return bad("Epsilon", c.Epsilon)
	case c.MessageFloor < 0:
		return bad("MessageFloor", c.MessageFloor)
	case c.Censor < 0:
		return bad("Censor", c.Censor)
	case c.Prune < 0:
		return bad("Prune", c.Prune)
	}
	if c.Prune >= 1 {
		return fmt.Errorf("core: %w: Prune must be in [0,1), got %v", wsnerr.ErrBadConfig, c.Prune)
	}
	if !c.Conv.Valid() {
		return fmt.Errorf("core: %w: Conv must be auto, sparse or fft, got %d",
			wsnerr.ErrBadConfig, int(c.Conv))
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.GridNX <= 0 {
		c.GridNX = defaultGridN
	}
	if c.GridNY <= 0 {
		c.GridNY = defaultGridN
	}
	if c.Particles <= 0 {
		c.Particles = defaultParticles
	}
	if c.HopRounds <= 0 {
		c.HopRounds = defaultHopRounds
	}
	if c.BPRounds <= 0 {
		c.BPRounds = defaultBPRounds
	}
	if c.Epsilon <= 0 {
		c.Epsilon = defaultEpsilon
	}
	if c.MessageFloor <= 0 {
		c.MessageFloor = defaultMsgFloor
	}
	return c
}

// BNCL is the Bayesian-network cooperative localization algorithm.
type BNCL struct {
	Cfg Config
}

// NewGrid returns grid-mode BNCL with the given pre-knowledge.
func NewGrid(pk PreKnowledge) *BNCL {
	return &BNCL{Cfg: Config{Mode: GridMode, PK: pk}}
}

// NewParticle returns particle-mode BNCL with the given pre-knowledge.
func NewParticle(pk PreKnowledge) *BNCL {
	return &BNCL{Cfg: Config{Mode: ParticleMode, PK: pk}}
}

// Name implements Algorithm.
func (b *BNCL) Name() string {
	mode := "grid"
	if b.Cfg.Mode == ParticleMode {
		mode = "particle"
	}
	pk := "pk"
	if !b.Cfg.PK.UseRegion && !b.Cfg.PK.UseHopAnnuli && !b.Cfg.PK.UseNegativeEvidence {
		pk = "nopk"
	}
	return fmt.Sprintf("bncl-%s-%s", mode, pk)
}

// env is the shared context the node programs close over. Everything here is
// either immutable during the run, safe for concurrent use (kernels), or
// partitioned per node (nodeStreams, nodeTrace) — the invariants the parallel
// round engine relies on.
type env struct {
	p       *Problem
	cfg     Config
	grid    *geom.Grid
	kernels *kernelCache
	// nodeStreams[i] is node i's private randomness.
	nodeStreams []*rng.Stream
	// nodeTrace[i] collects node i's per-BP-round convergence diagnostics;
	// only node i's goroutine writes it (trace.go).
	nodeTrace [][]nodeRound
	// convStats[i] counts node i's convolutions per path (and, when timeConv
	// is set, their wall time); only node i's goroutine writes its slot.
	convStats []convStat
	// pruneStats[i] accumulates the mass and cells node i's support pruning
	// removed; only node i's goroutine writes its slot.
	pruneStats []pruneStat
	// timeConv enables per-convolution timing — only when a tracer consumes
	// it, so the untraced hot path never calls the clock.
	timeConv bool
	// trace is the deterministic node-id-order reduction of nodeTrace,
	// computed once after the run.
	trace []roundTrace
}

// Localize implements Algorithm: it wires one program per node onto the
// simulator, runs the two protocol phases (hop flood, then BP), and reads
// the posterior means back out.
func (b *BNCL) Localize(p *Problem, stream *rng.Stream) (*Result, error) {
	return b.LocalizeCtx(context.Background(), p, stream)
}

// LocalizeCtx implements ContextAlgorithm: Localize bounded by a context.
// The simulator checks ctx between protocol rounds, so a cancel or deadline
// returns ctx's error within one round, with the per-round worker pool fully
// drained (no leaked goroutines) and — when a tracer is attached — a final
// "canceled" trace event recording how far the run got. An uncanceled run is
// bit-identical to Localize for every worker count.
func (b *BNCL) LocalizeCtx(ctx context.Context, p *Problem, stream *rng.Stream) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := b.Cfg.Validate(); err != nil {
		return nil, err
	}
	cfg := b.Cfg.withDefaults()

	bounds := p.Deploy.Region.Bounds()
	e := &env{
		p:           p,
		cfg:         cfg,
		grid:        geom.NewGrid(bounds, cfg.GridNX, cfg.GridNY),
		nodeStreams: make([]*rng.Stream, p.Deploy.N()),
		nodeTrace:   make([][]nodeRound, p.Deploy.N()),
		convStats:   make([]convStat, p.Deploy.N()),
		pruneStats:  make([]pruneStat, p.Deploy.N()),
		timeConv:    obs.Enabled(cfg.Tracer),
	}
	e.kernels = newKernelCache(e)
	if cfg.Mode == GridMode {
		// Tabulate every measured link's kernel up front so the concurrent
		// BP phase runs against a read-mostly cache; when the FFT path can
		// engage, its kernel spectra are prewarmed for the same reason.
		e.kernels.prewarm(p.Graph.Links)
		if cfg.Conv != bayes.ConvSparse {
			e.kernels.prewarmSpectra()
		}
	}
	for i := range e.nodeStreams {
		e.nodeStreams[i] = stream.Split(uint64(i) + 1)
	}

	n := p.Deploy.N()
	programs := make([]sim.Node, n)
	readers := make([]estimateReader, n)
	for i := 0; i < n; i++ {
		var prog interface {
			sim.Node
			estimateReader
		}
		switch cfg.Mode {
		case ParticleMode:
			prog = newParticleNode(e, i)
		default:
			prog = newGridNode(e, i)
		}
		programs[i] = prog
		readers[i] = prog
	}

	simCfg := sim.Config{
		Workers:     cfg.Workers,
		Loss:        p.Loss,
		DelayJitter: p.Jitter,
		Energy:      sim.DefaultEnergy(),
		Seed:        stream.Uint64(),
	}
	rt := newRunTrace(cfg.Tracer, b, p, e)
	if rt != nil {
		simCfg.OnRound = rt.onRound
	}
	net, err := sim.NewNetwork(p.Graph, programs, simCfg)
	if err != nil {
		if rt != nil {
			rt.emitFailed(0, err)
		}
		return nil, err
	}
	stats, err := net.RunCtx(ctx, cfg.HopRounds+cfg.BPRounds+2)
	if err != nil {
		if rt != nil {
			if ctx.Err() != nil {
				rt.emitCanceled(stats.Rounds, err)
			} else {
				rt.emitFailed(stats.Rounds, err)
			}
		}
		return nil, err
	}

	res := NewResult(p)
	res.Rounds = stats.Rounds
	res.Stats = stats
	e.trace = e.aggregate()
	res.Convergence = e.convergence()
	readStart := time.Now()
	for i := 0; i < n; i++ {
		if p.Deploy.Anchor[i] {
			continue
		}
		est, conf, ok := readers[i].Estimate()
		res.Est[i] = est
		res.Confidence[i] = conf
		res.Localized[i] = ok
	}
	if rt != nil {
		rt.emitConv(e)
		rt.emitPrune(e)
		rt.emitPhase("hopflood", 0, cfg.HopRounds)
		rt.emitPhase("bp", cfg.HopRounds, cfg.HopRounds+cfg.BPRounds+2)
		if cfg.Refine && cfg.Mode == GridMode {
			rt.emitRefine(time.Since(readStart))
		}
		rt.emitRun(res)
	}
	return res, nil
}

// hopBounds returns the per-hop distance bounds for the annulus priors: the
// upper bound is the longest link the propagation model can form, the soft
// lower bound is gamma·R (expected flood progress per hop).
func (e *env) hopBounds() (rUp, rLo float64) {
	rUp = e.p.Prop.MaxRange()
	if rUp < e.p.R {
		rUp = e.p.R
	}
	return rUp, e.cfg.PK.hopGamma() * e.p.R
}

// estimateReader exposes a node program's final estimate.
type estimateReader interface {
	// Estimate returns the posterior-mean position, a confidence radius,
	// and whether the node considers itself localized (i.e. it heard from
	// at least one anchor).
	Estimate() (mathx.Vec2, float64, bool)
}

// Protocol message kinds and payloads.
const (
	kindHops   = "bncl/hops"
	kindBelief = "bncl/belief"
)

// hopEntry advertises "anchor a at pos is `hops` hops away from the sender".
type hopEntry struct {
	anchor int
	pos    mathx.Vec2
	hops   int
}

// hopEntryBytes is the on-air size of one hop entry: id(2) + pos(4) + hop(1).
const hopEntryBytes = 7

// digest is the compact summary of a node's belief relayed to two-hop
// neighbors for negative evidence: id(2) + mean(4) + spread(1) = 7 bytes.
type digest struct {
	id     int
	mean   mathx.Vec2
	spread float64
}

const digestBytes = 7

// beliefMsg is the per-round broadcast of a node's posterior summary.
type beliefMsg struct {
	grid     *bayes.Belief         // GridMode
	particle *bayes.ParticleBelief // ParticleMode
	mean     mathx.Vec2
	spread   float64
	digests  []digest
}

// bytesOf estimates the on-air size of the message: grid beliefs ship their
// support cells at 3 bytes each, particle beliefs 5 bytes per particle, plus
// the digest list and a 4-byte header.
func (m *beliefMsg) bytesOf() int {
	b := 4 + digestBytes*len(m.digests)
	if m.grid != nil {
		b += 3 * m.grid.SupportSize(bayes.SupportEps)
	}
	if m.particle != nil {
		b += 5 * m.particle.M()
	}
	return b
}

// kernelCache shares the radial message kernels across links: kernels depend
// only on the measured distance, so measurements are quantized to half a
// cell and the resulting kernels memoized. Lookups are safe under the
// parallel round engine: Localize prewarms the cache from the measurement
// graph so the BP phase is read-mostly, and the RWMutex covers any residual
// miss (duplicate builds are identical, so either copy may win).
type kernelCache struct {
	e     *env
	quant float64
	mu    sync.RWMutex
	table map[int]*bayes.RadialKernel
}

func newKernelCache(e *env) *kernelCache {
	q := e.grid.CellW / 2
	if e.grid.CellH < e.grid.CellW {
		q = e.grid.CellH / 2
	}
	return &kernelCache{e: e, quant: q, table: make(map[int]*bayes.RadialKernel)}
}

// prewarm tabulates the kernel of every measured link.
func (kc *kernelCache) prewarm(links []topology.Link) {
	for _, l := range links {
		kc.forMeasurement(l.Meas)
	}
}

// prewarmSpectra builds the FFT spectrum of every cached kernel, so the
// dense convolution path of the BP phase reads immutable spectra. Kernels
// built after prewarm (a cache miss under loss-mutated graphs) fall back to
// the kernel's own once-guarded lazy build.
func (kc *kernelCache) prewarmSpectra() {
	kc.mu.RLock()
	kernels := make([]*bayes.RadialKernel, 0, len(kc.table))
	for _, k := range kc.table {
		kernels = append(kernels, k)
	}
	kc.mu.RUnlock()
	for _, k := range kernels {
		k.PrewarmSpectrum()
	}
}

// forMeasurement returns the kernel k(d) = p(meas | d) tabulated out to
// meas + 4σ.
func (kc *kernelCache) forMeasurement(meas float64) *bayes.RadialKernel {
	key := int(math.Round(meas / kc.quant))
	kc.mu.RLock()
	k, ok := kc.table[key]
	kc.mu.RUnlock()
	if ok {
		return k
	}
	k = kc.build(key)
	kc.mu.Lock()
	if prev, ok := kc.table[key]; ok {
		k = prev
	} else {
		kc.table[key] = k
	}
	kc.mu.Unlock()
	return k
}

// build tabulates the kernel for one quantized-measurement key.
func (kc *kernelCache) build(key int) *bayes.RadialKernel {
	qMeas := float64(key) * kc.quant
	sigma := kc.e.p.Ranger.Sigma(qMeas)
	maxDist := qMeas + 4*sigma
	if hr := kc.e.p.R * 1.1; maxDist < hr && isFlatRanger(kc.e.p.Ranger) {
		maxDist = hr
	}
	return bayes.NewRadialKernel(kc.e.grid, func(d float64) float64 {
		return kc.e.p.Ranger.Likelihood(qMeas, d)
	}, maxDist, 0)
}

// isFlatRanger reports whether the ranger is the connectivity-only
// HopRanger, whose flat likelihood needs kernel support out to R regardless
// of the reported measurement.
func isFlatRanger(r interface{ Sigma(float64) float64 }) bool {
	type flat interface{ IsConnectivityOnly() bool }
	f, ok := r.(flat)
	return ok && f.IsConnectivityOnly()
}
