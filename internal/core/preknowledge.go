package core

import (
	"math"

	"wsnloc/internal/bayes"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
)

// PreKnowledge selects which prior information BNCL folds into the unary
// potentials. Everything here is available *before* any ranging — that is
// the paper's titular idea: deployment-time knowledge constrains the
// Bayesian network enough that sparse anchors and noisy ranging still yield
// accurate posteriors.
type PreKnowledge struct {
	// UseRegion zeroes prior mass outside the deployment region (the map of
	// the field, including obstacle holes).
	UseRegion bool `json:"use_region,omitempty"`
	// DeployDensity, if non-nil, is the relative deployment density over the
	// plane (e.g. heavier along a flight line). Evaluated only inside the
	// region when UseRegion is set. Excluded from JSON: function-valued
	// pre-knowledge cannot ride in a serialized Spec.
	DeployDensity func(mathx.Vec2) float64 `json:"-"`
	// UseHopAnnuli constrains each node to the annulus implied by its hop
	// count to each anchor: after h hops the distance is at most h·R and
	// (softly) at least (h−1)·R·HopGamma.
	UseHopAnnuli bool `json:"use_hop_annuli,omitempty"`
	// HopGamma scales the soft lower bound of the hop annulus; the expected
	// per-hop progress of greedy flooding is ≈ 0.7·R in dense networks.
	// Zero means the 0.5 default.
	HopGamma float64 `json:"hop_gamma,omitempty"`
	// UseNegativeEvidence applies "no link ⇒ probably far" potentials
	// between two-hop neighbor pairs.
	UseNegativeEvidence bool `json:"use_negative_evidence,omitempty"`
	// MaxAnnuliAnchors caps how many anchors contribute annulus priors;
	// zero means the default of 16. Selection takes the nearest half and
	// the farthest half of the hop table: near anchors carry tight upper
	// bounds, far anchors carry the lower bounds that break mirror
	// symmetries (without them, peripheral clusters can coherently lock
	// into a reflected mode).
	MaxAnnuliAnchors int `json:"max_annuli_anchors,omitempty"`
}

// AllPreKnowledge enables every pre-knowledge term with default parameters.
func AllPreKnowledge() PreKnowledge {
	return PreKnowledge{
		UseRegion:           true,
		UseHopAnnuli:        true,
		UseNegativeEvidence: true,
	}
}

// NoPreKnowledge disables every term — the ablation baseline. (The grid
// itself still spans the deployment bounding box: some spatial extent is
// unavoidable in any discretization.)
func NoPreKnowledge() PreKnowledge { return PreKnowledge{} }

func (pk PreKnowledge) hopGamma() float64 {
	if pk.HopGamma <= 0 {
		return 0.5
	}
	return pk.HopGamma
}

func (pk PreKnowledge) maxAnnuli() int {
	if pk.MaxAnnuliAnchors <= 0 {
		return 16
	}
	return pk.MaxAnnuliAnchors
}

// selectAnnuli picks which hop-table entries (sorted nearest-first)
// contribute annulus factors: the nearest half and the farthest half of the
// budget.
func selectAnnuli(sorted []anchorHop, budget int) []anchorHop {
	if len(sorted) <= budget {
		return sorted
	}
	nearN := (budget + 1) / 2
	farN := budget - nearN
	out := make([]anchorHop, 0, budget)
	out = append(out, sorted[:nearN]...)
	out = append(out, sorted[len(sorted)-farN:]...)
	return out
}

// anchorHop is one entry of a node's hop table: the position of an anchor
// and the hop distance to it.
type anchorHop struct {
	pos  mathx.Vec2
	hops int
}

// buildPrior assembles the unary prior belief for one unknown node on g:
// region mask × deployment density × hop annuli. It never returns a
// zero-mass belief: if the constraints annihilate each other (possible with
// inconsistent hop counts under packet loss), it falls back to the region
// prior, then to uniform.
//
// rUp is the per-hop distance upper bound: the longest link the propagation
// model can form (Propagation.MaxRange), NOT the median range — under
// shadowing, links longer than R exist and a bound of h·R would contradict
// the evidence. rLo is the per-hop soft lower bound (gamma·R).
func (pk PreKnowledge) buildPrior(g *geom.Grid, region geom.Region, hopTable []anchorHop, rUp, rLo float64) *bayes.Belief {
	prior := bayes.NewUniform(g)
	if pk.UseRegion && region != nil {
		prior.MulFunc(func(p mathx.Vec2) float64 {
			if !region.Contains(p) {
				return 0
			}
			if pk.DeployDensity != nil {
				return pk.DeployDensity(p)
			}
			return 1
		})
		if !prior.Normalize() {
			prior = bayes.NewUniform(g)
		}
	} else if pk.DeployDensity != nil {
		prior.MulFunc(pk.DeployDensity)
		if !prior.Normalize() {
			prior = bayes.NewUniform(g)
		}
	}

	if pk.UseHopAnnuli && len(hopTable) > 0 {
		regionPrior := prior.Clone()
		for _, ah := range selectAnnuli(hopTable, pk.maxAnnuli()) {
			prior.MulFunc(annulusFactor(ah.pos, ah.hops, rUp, rLo))
			if !prior.Normalize() {
				// Inconsistent hop info: drop annuli, keep region prior.
				prior = regionPrior
				break
			}
		}
	}
	return prior
}

// annulusFactor is the soft indicator that a node h hops from an anchor at
// a lies in the annulus (h−1)·rLo < ‖x−a‖ ≤ h·rUp. The upper bound is hard
// (hop-count paths cannot stretch beyond the longest possible link), the
// lower bound soft (greedy floods can make slow progress). Edges are
// smoothed over 10% of rUp so grid aliasing does not carve the posterior.
func annulusFactor(a mathx.Vec2, hops int, rUp, rLo float64) func(mathx.Vec2) float64 {
	upper := float64(hops) * rUp
	lower := float64(hops-1) * rLo
	soft := 0.1 * rUp
	return func(x mathx.Vec2) float64 {
		d := x.Dist(a)
		// Hard-ish upper bound with smoothed edge.
		var up float64
		switch {
		case d <= upper:
			up = 1
		case d >= upper+soft:
			up = 1e-6
		default:
			up = 1 - (1-1e-6)*(d-upper)/soft
		}
		// Soft lower bound: being much closer than (h−1)·γ·R is unlikely
		// but not impossible; floor at 0.05.
		var lo float64
		switch {
		case d >= lower:
			lo = 1
		case d <= lower-soft:
			lo = 0.05
		default:
			lo = 0.05 + 0.95*(1-(lower-d)/soft)
		}
		return up * lo
	}
}

// negEvidenceFactor is the unary approximation of the pairwise negative
// potential between node i and a two-hop node k whose belief is summarized
// by (mean, spread): P(no link | x_i) ≈ 1 − PRR(‖x_i − mean_k‖), floored and
// skipped when k's belief is too diffuse to carry information.
func negEvidenceFactor(meanK mathx.Vec2, spreadK, r float64, prr func(float64) float64) func(mathx.Vec2) float64 {
	// A diffuse summary (spread beyond half the radio range) would smear
	// the factor to uselessness; treat as uninformative.
	if spreadK > 0.5*r {
		return nil
	}
	return func(x mathx.Vec2) float64 {
		p := 1 - prr(x.Dist(meanK))
		if p < 0.05 {
			p = 0.05 // floor: never annihilate, the summary is approximate
		}
		return p
	}
}

// clampSpread sanitizes a digest spread value.
func clampSpread(s float64) float64 {
	if math.IsNaN(s) || s < 0 {
		return 0
	}
	return s
}
