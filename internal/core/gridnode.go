package core

import (
	"math"
	"sort"
	"time"

	"wsnloc/internal/bayes"
	"wsnloc/internal/mathx"
	"wsnloc/internal/sim"
)

// gridNode is the per-sensor program of grid-mode BNCL. Unknown nodes hold a
// discrete belief over the deployment grid; anchors hold a delta. The node
// participates in two phases switched by round number:
//
//	[0, HopRounds)            anchor hop flood (builds the hop table)
//	[HopRounds, +BPRounds)    loopy belief propagation
type gridNode struct {
	e      *env
	id     int
	anchor bool
	pos    mathx.Vec2 // anchors only

	// Hop-flood state.
	hopTable map[int]anchorHop
	improved []hopEntry

	// BP state.
	prior  *bayes.Belief
	belief *bayes.Belief
	// nbr holds one link record per neighbor heard from; see nbrLink. This
	// is the memory-lean layout: the steady-state footprint per neighbor is
	// one compact floored message (support-sized) plus two scalars, not a
	// dense grid.
	nbr map[int]*nbrLink
	// twoHop maps two-hop node id → latest digest, for negative evidence.
	twoHop map[int]digest
	// direct marks the node's one-hop neighborhood (including itself).
	direct map[int]bool

	// Scratch buffers reused across BP rounds so the steady-state hot path
	// (recompute + broadcast) does near-zero grid-sized allocations. They
	// never leave the node, so reuse is safe under the parallel engine.
	// msgScratch is the single dense convolution output shared by every
	// neighbor: the result is compacted into the link's FlooredMsg before
	// the next convolution reuses the buffer.
	conv       bayes.ConvScratch
	keyScratch []int
	msgScratch *bayes.Belief

	stable int
	// censored counts consecutive rounds with belief change below
	// cfg.Censor; at censorK the node suppresses its broadcast.
	censored int
	// recomputed and fresh drive the quiescent fast path: once the node has
	// recomputed at least once, a round in which no belief message (or
	// digest) arrived cannot change the posterior — recompute is a pure
	// function of the prior, the cached messages, and the digests — so the
	// round is skipped with an exact zero change.
	recomputed bool
	fresh      bool
	doneFlag   bool
	heardFrom  bool // received at least one anchor hop entry or anchor belief
}

// nbrLink is a gridNode's per-neighbor BP state.
type nbrLink struct {
	// pending is the latest received belief not yet convolved; it is
	// released (nil) the moment it is folded into msg, so the sender's
	// dense grid is only retained between its arrival and the next
	// recompute.
	pending *bayes.Belief
	// mean/spread echo the sender-computed summary shipped in the belief
	// message — bit-identical to recomputing them from the belief, since
	// the sender ran the same floats — and serve the two-hop digests.
	mean   mathx.Vec2
	spread float64
	// msg is the cached convolved message in compact floored form.
	msg bayes.FlooredMsg
	// last retains the latest received belief — only when Config.Refine is
	// set, whose post-run refinement re-projects neighbor beliefs through
	// the exact likelihood. Scale runs leave it nil so dense neighbor grids
	// are never retained past their convolution.
	last *bayes.Belief
	// noMeas records a failed measurement lookup: the graph is fixed for
	// the run, so the link can never produce a message.
	noMeas bool
	// sentMean/sentSpread record the digest last broadcast for this link.
	// With the censor knob on, an unchanged entry is censored out of later
	// broadcasts: every receiver already holds an identical copy (digest
	// ingestion is last-write-wins), so the resend carries no information.
	sentDigest bool
	sentMean   mathx.Vec2
	sentSpread float64
}

func newGridNode(e *env, id int) *gridNode {
	return &gridNode{
		e:        e,
		id:       id,
		anchor:   e.p.Deploy.Anchor[id],
		pos:      e.p.Deploy.Pos[id],
		hopTable: make(map[int]anchorHop),
		nbr:      make(map[int]*nbrLink),
		twoHop:   make(map[int]digest),
	}
}

// Init implements sim.Node: anchors seed the hop flood.
func (n *gridNode) Init(ctx *sim.Context) {
	n.direct = map[int]bool{n.id: true}
	for _, j := range ctx.Neighbors() {
		n.direct[j] = true
	}
	if n.anchor {
		n.hopTable[n.id] = anchorHop{pos: n.pos, hops: 0}
		ctx.Broadcast(kindHops, hopEntryBytes, []hopEntry{{anchor: n.id, pos: n.pos, hops: 0}})
	}
}

// Round implements sim.Node.
func (n *gridNode) Round(ctx *sim.Context, round int, inbox []sim.Message) {
	if round < n.e.cfg.HopRounds {
		n.floodRound(ctx, inbox)
		return
	}
	n.bpRound(ctx, round-n.e.cfg.HopRounds, inbox)
}

// Done implements sim.Node.
func (n *gridNode) Done() bool { return n.doneFlag }

// floodRound ingests hop advertisements and rebroadcasts improvements.
func (n *gridNode) floodRound(ctx *sim.Context, inbox []sim.Message) {
	n.improved = n.improved[:0]
	for _, m := range inbox {
		entries, ok := m.Payload.([]hopEntry)
		if m.Kind != kindHops || !ok {
			continue
		}
		for _, e := range entries {
			cand := e.hops + 1
			cur, seen := n.hopTable[e.anchor]
			if !seen || cand < cur.hops {
				n.hopTable[e.anchor] = anchorHop{pos: e.pos, hops: cand}
				n.improved = append(n.improved, hopEntry{anchor: e.anchor, pos: e.pos, hops: cand})
				n.heardFrom = true
			}
		}
	}
	if len(n.improved) > 0 {
		out := make([]hopEntry, len(n.improved))
		copy(out, n.improved)
		ctx.Broadcast(kindHops, hopEntryBytes*len(out), out)
	}
}

// bpRound runs one belief-propagation iteration.
func (n *gridNode) bpRound(ctx *sim.Context, t int, inbox []sim.Message) {
	if t == 0 {
		// Everyone — anchors included — announces its initial belief.
		n.initBelief()
		n.broadcastBelief(ctx)
		return
	}

	n.ingest(inbox)

	if n.anchor {
		// Re-send once at t == 1, then go quiet.
		if t == 1 {
			n.broadcastBelief(ctx)
		}
		n.doneFlag = true
		return
	}

	var change float64
	if n.recomputed && !n.fresh {
		// Quiescent fast path: nothing new arrived, so recompute would
		// rebuild the current posterior bit for bit and the L1 change is
		// exactly zero. Everything downstream (residual record, stable
		// counting, the broadcast payload) is identical to running it.
		change = 0
	} else {
		next := n.recompute()
		n.pruneBelief(next)
		change = next.L1Diff(n.belief)
		n.belief = next
		n.recomputed = true
	}
	n.fresh = false
	n.e.recordResidual(n.id, t, change)

	if change < n.e.cfg.Epsilon {
		n.stable++
	} else {
		n.stable = 0
	}
	if n.stable >= 2 {
		if !n.doneFlag {
			n.e.recordDone(n.id, t)
		}
		n.doneFlag = true
		return
	}
	if n.censorRound(change) {
		ctx.Censored()
		return
	}
	n.broadcastBelief(ctx)
}

// censorRound applies the censoring knob to this round's belief change and
// reports whether the broadcast should be suppressed. Purely a function of
// the node's own residual history, so it is deterministic across worker
// counts.
func (n *gridNode) censorRound(change float64) bool {
	c := n.e.cfg.Censor
	if c <= 0 {
		return false
	}
	if change < c {
		n.censored++
	} else {
		n.censored = 0
	}
	return n.censored >= censorK
}

// pruneBelief applies the support-pruning knob to a belief, accumulating the
// removed mass and cells in the env's per-node slot. It runs on the prior
// once at init and on each freshly recomputed posterior — never on a belief
// that is itself an input to the next recompute, so pruning cannot compound
// across rounds.
func (n *gridNode) pruneBelief(b *bayes.Belief) {
	rel := n.e.cfg.Prune
	if rel <= 0 {
		return
	}
	mass, cells := b.Prune(rel)
	if cells > 0 {
		ps := &n.e.pruneStats[n.id]
		ps.mass += mass
		ps.cells += cells
	}
}

// initBelief builds the prior and the initial belief.
func (n *gridNode) initBelief() {
	if n.anchor {
		n.belief = bayes.NewDelta(n.e.grid, n.pos)
		n.prior = n.belief
		return
	}
	hops := sortedHopTable(n.hopTable)
	rUp, rLo := n.e.hopBounds()
	n.prior = n.e.cfg.PK.buildPrior(n.e.grid, n.e.p.Deploy.Region, hops, rUp, rLo)
	// With the knob on, the prior is pruned ONCE here — every recompute
	// starts from this same support, so pruning still never compounds
	// across rounds. This is what makes per-round factor evaluation
	// support-sized: zeroed prior cells stay zero through the whole run
	// (messages and factors are multiplicative).
	n.pruneBelief(n.prior)
	n.belief = n.prior.Clone()
	n.pruneBelief(n.belief)
}

// sortedHopTable flattens a hop table nearest-anchor first with an anchor-id
// tie-break — a total order, so the prior's floating-point product order
// (and thus the whole run) is deterministic.
func sortedHopTable(table map[int]anchorHop) []anchorHop {
	type entry struct {
		id int
		ah anchorHop
	}
	es := make([]entry, 0, len(table))
	for id, ah := range table {
		es = append(es, entry{id, ah})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].ah.hops != es[j].ah.hops {
			return es[i].ah.hops < es[j].ah.hops
		}
		return es[i].id < es[j].id
	})
	out := make([]anchorHop, len(es))
	for i, e := range es {
		out[i] = e.ah
	}
	return out
}

// ingest caches incoming neighbor beliefs and two-hop digests. Any accepted
// belief marks the round fresh, which is what arms the next recompute.
func (n *gridNode) ingest(inbox []sim.Message) {
	for _, m := range inbox {
		bm, ok := m.Payload.(*beliefMsg)
		if m.Kind != kindBelief || !ok || bm.grid == nil {
			continue
		}
		l := n.nbr[m.From]
		if l == nil {
			l = &nbrLink{}
			n.nbr[m.From] = l
		}
		l.pending = bm.grid
		l.mean, l.spread = bm.mean, bm.spread
		if n.e.cfg.Refine {
			l.last = bm.grid
		}
		n.fresh = true
		if n.e.p.Deploy.Anchor[m.From] {
			n.heardFrom = true
		}
		if n.e.cfg.PK.UseNegativeEvidence {
			for _, d := range bm.digests {
				if !n.direct[d.id] {
					n.twoHop[d.id] = d
				}
			}
		}
	}
}

// recompute rebuilds the belief from the prior, the cached (convolved)
// neighbor messages, and the negative-evidence factors. The returned belief
// is freshly allocated — it is broadcast by pointer and retained by
// neighbors, so it cannot come from a recycled buffer; everything else
// (messages, support scans, key sorts) reuses node-local scratch.
func (n *gridNode) recompute() *bayes.Belief {
	b := n.prior.Clone()
	// Iterate neighbors in sorted order: map order would make the
	// floating-point product (and hence the whole run) nondeterministic.
	n.keyScratch = sortedKeys(n.keyScratch, n.nbr)
	for _, j := range n.keyScratch {
		l := n.nbr[j]
		if nb := l.pending; nb != nil {
			// Fold the pending belief into the compact message cache and
			// release the dense grid.
			l.pending = nil
			if !l.noMeas {
				meas, ok := n.measTo(j)
				if !ok {
					// No measurement for this neighbor means no message,
					// ever — the graph is fixed for the run. Remember the
					// miss so the lookup isn't retried each arrival.
					l.noMeas = true
				} else {
					if n.msgScratch == nil {
						n.msgScratch = &bayes.Belief{Grid: n.e.grid, W: make([]float64, n.e.grid.Cells())}
					}
					n.convolve(n.e.kernels.forMeasurement(meas), n.msgScratch, nb)
					// CompactFrom bakes in the same floor·max clamp
					// MulFlooredMax applied, so the product below is
					// bit-identical to multiplying the dense message.
					l.msg.CompactFrom(n.msgScratch, n.e.cfg.MessageFloor)
				}
			}
		}
		if !l.msg.Valid() {
			continue
		}
		l.msg.MulInto(b)
		if !b.Normalize() {
			b.CopyFrom(n.prior)
		}
	}
	if n.e.cfg.PK.UseNegativeEvidence {
		n.keyScratch = sortedKeys(n.keyScratch, n.twoHop)
		for _, k := range n.keyScratch {
			d := n.twoHop[k]
			f := negEvidenceFactor(d.mean, clampSpread(d.spread), n.e.p.R, n.e.p.Prop.PRR)
			if f == nil {
				continue
			}
			b.MulFunc(f)
			if !b.Normalize() {
				b.CopyFrom(n.prior)
			}
		}
	}
	return b
}

// sortedKeys fills dst with m's keys in ascending order, reusing dst's
// backing array (pass nil when no scratch is available). Sorted iteration
// keeps every floating-point product order — and hence the whole run —
// deterministic.
func sortedKeys[V any](dst []int, m map[int]V) []int {
	dst = dst[:0]
	for k := range m {
		dst = append(dst, k)
	}
	sort.Ints(dst)
	return dst
}

// convolve computes the BP message k ⊗ nb into msg on the configured
// convolution path and records which path served it (plus wall time when a
// tracer is consuming timings) in the node's convStats slot — written only by
// this node's goroutine, per the env partitioning invariant.
func (n *gridNode) convolve(k *bayes.RadialKernel, msg, nb *bayes.Belief) {
	var t0 time.Time
	if n.e.timeConv {
		t0 = time.Now()
	}
	used := k.ConvolveWith(msg, nb, n.e.cfg.Conv, &n.conv)
	cs := &n.e.convStats[n.id]
	if used == bayes.ConvFFT {
		cs.fft++
		if n.e.timeConv {
			cs.fftNS += time.Since(t0).Nanoseconds()
		}
	} else {
		cs.sparse++
		if n.e.timeConv {
			cs.sparseNS += time.Since(t0).Nanoseconds()
		}
	}
}

// measTo returns the measured range to neighbor j.
func (n *gridNode) measTo(j int) (float64, bool) {
	return n.e.p.Graph.MeasBetween(n.id, j)
}

// broadcastBelief ships the current belief summary plus neighbor digests.
func (n *gridNode) broadcastBelief(ctx *sim.Context) {
	msg := &beliefMsg{
		grid:   n.belief,
		mean:   n.belief.Mean(),
		spread: n.belief.Spread(),
	}
	if n.e.cfg.PK.UseNegativeEvidence {
		// Entry-level censoring: with the knob on, a digest identical to the
		// one last broadcast for that link is dropped from the payload —
		// receivers already hold it. Node-local state only, so the run stays
		// deterministic across worker counts.
		censorDigests := n.e.cfg.Censor > 0
		n.keyScratch = sortedKeys(n.keyScratch, n.nbr)
		for _, j := range n.keyScratch {
			l := n.nbr[j]
			if censorDigests {
				if l.sentDigest && l.sentMean == l.mean && l.sentSpread == l.spread {
					continue
				}
				l.sentDigest, l.sentMean, l.sentSpread = true, l.mean, l.spread
			}
			msg.digests = append(msg.digests, digest{id: j, mean: l.mean, spread: l.spread})
		}
	}
	ctx.Broadcast(kindBelief, msg.bytesOf(), msg)
}

// Estimate implements estimateReader.
func (n *gridNode) Estimate() (mathx.Vec2, float64, bool) {
	if n.belief == nil {
		// BP never started (e.g. zero BP rounds): report the region center.
		c := n.e.grid.Bounds().Center()
		return c, math.Inf(1), false
	}
	if n.e.cfg.Refine && !n.anchor {
		window := 2*n.belief.Spread() + 2*n.e.grid.CellDiag()
		if est, spread, ok := n.refineEstimate(window, 24); ok {
			return est, spread, n.heardFrom
		}
	}
	if n.e.cfg.Estimator == EstimatorMAP {
		return n.belief.MAP(), n.belief.Spread(), n.heardFrom
	}
	return n.belief.Mean(), n.belief.Spread(), n.heardFrom
}
