package core

import (
	"math"

	"wsnloc/internal/bayes"
	"wsnloc/internal/mathx"
	"wsnloc/internal/sim"
)

// gridNode is the per-sensor program of grid-mode BNCL. Unknown nodes hold a
// discrete belief over the deployment grid; anchors hold a delta. The node
// participates in two phases switched by round number:
//
//	[0, HopRounds)            anchor hop flood (builds the hop table)
//	[HopRounds, +BPRounds)    loopy belief propagation
type gridNode struct {
	e      *env
	id     int
	anchor bool
	pos    mathx.Vec2 // anchors only

	// Hop-flood state.
	hopTable map[int]anchorHop
	improved []hopEntry

	// BP state.
	prior  *bayes.Belief
	belief *bayes.Belief
	// nbrBelief caches the latest belief received from each neighbor;
	// nbrDirty marks which caches changed since the message was last
	// convolved; msgCache holds the convolved (unnormalized) messages.
	nbrBelief map[int]*bayes.Belief
	nbrDirty  map[int]bool
	msgCache  map[int]*bayes.Belief
	// twoHop maps two-hop node id → latest digest, for negative evidence.
	twoHop map[int]digest
	// direct marks the node's one-hop neighborhood (including itself).
	direct map[int]bool

	stable    int
	doneFlag  bool
	heardFrom bool // received at least one anchor hop entry or anchor belief
}

func newGridNode(e *env, id int) *gridNode {
	return &gridNode{
		e:         e,
		id:        id,
		anchor:    e.p.Deploy.Anchor[id],
		pos:       e.p.Deploy.Pos[id],
		hopTable:  make(map[int]anchorHop),
		nbrBelief: make(map[int]*bayes.Belief),
		nbrDirty:  make(map[int]bool),
		msgCache:  make(map[int]*bayes.Belief),
		twoHop:    make(map[int]digest),
	}
}

// Init implements sim.Node: anchors seed the hop flood.
func (n *gridNode) Init(ctx *sim.Context) {
	n.direct = map[int]bool{n.id: true}
	for _, j := range ctx.Neighbors() {
		n.direct[j] = true
	}
	if n.anchor {
		n.hopTable[n.id] = anchorHop{pos: n.pos, hops: 0}
		ctx.Broadcast(kindHops, hopEntryBytes, []hopEntry{{anchor: n.id, pos: n.pos, hops: 0}})
	}
}

// Round implements sim.Node.
func (n *gridNode) Round(ctx *sim.Context, round int, inbox []sim.Message) {
	if round < n.e.cfg.HopRounds {
		n.floodRound(ctx, inbox)
		return
	}
	n.bpRound(ctx, round-n.e.cfg.HopRounds, inbox)
}

// Done implements sim.Node.
func (n *gridNode) Done() bool { return n.doneFlag }

// floodRound ingests hop advertisements and rebroadcasts improvements.
func (n *gridNode) floodRound(ctx *sim.Context, inbox []sim.Message) {
	n.improved = n.improved[:0]
	for _, m := range inbox {
		entries, ok := m.Payload.([]hopEntry)
		if m.Kind != kindHops || !ok {
			continue
		}
		for _, e := range entries {
			cand := e.hops + 1
			cur, seen := n.hopTable[e.anchor]
			if !seen || cand < cur.hops {
				n.hopTable[e.anchor] = anchorHop{pos: e.pos, hops: cand}
				n.improved = append(n.improved, hopEntry{anchor: e.anchor, pos: e.pos, hops: cand})
				n.heardFrom = true
			}
		}
	}
	if len(n.improved) > 0 {
		out := make([]hopEntry, len(n.improved))
		copy(out, n.improved)
		ctx.Broadcast(kindHops, hopEntryBytes*len(out), out)
	}
}

// bpRound runs one belief-propagation iteration.
func (n *gridNode) bpRound(ctx *sim.Context, t int, inbox []sim.Message) {
	if t == 0 {
		n.initBelief()
		n.broadcastBelief(ctx)
		if n.anchor {
			// Anchors never change; one (re-sent once for loss robustness)
			// broadcast is all they contribute.
			return
		}
		return
	}

	n.ingest(inbox)

	if n.anchor {
		// Re-send once at t == 1, then go quiet.
		if t == 1 {
			n.broadcastBelief(ctx)
		}
		n.doneFlag = true
		return
	}

	next := n.recompute()
	change := next.L1Diff(n.belief)
	n.belief = next
	n.e.recordResidual(t, change)

	if change < n.e.cfg.Epsilon {
		n.stable++
	} else {
		n.stable = 0
	}
	if n.stable >= 2 {
		if !n.doneFlag {
			n.e.recordDone(t)
		}
		n.doneFlag = true
		return
	}
	n.broadcastBelief(ctx)
}

// initBelief builds the prior and the initial belief.
func (n *gridNode) initBelief() {
	if n.anchor {
		n.belief = bayes.NewDelta(n.e.grid, n.pos)
		n.prior = n.belief
		return
	}
	hops := sortedHopTable(n.hopTable)
	rUp, rLo := n.e.hopBounds()
	n.prior = n.e.cfg.PK.buildPrior(n.e.grid, n.e.p.Deploy.Region, hops, rUp, rLo)
	n.belief = n.prior.Clone()
}

// sortedHopTable flattens a hop table nearest-anchor first with a stable
// anchor-id tie-break, so the prior's floating-point product order (and thus
// the whole run) is deterministic.
func sortedHopTable(table map[int]anchorHop) []anchorHop {
	type entry struct {
		id int
		ah anchorHop
	}
	es := make([]entry, 0, len(table))
	for id, ah := range table {
		es = append(es, entry{id, ah})
	}
	for i := 1; i < len(es); i++ {
		for j := i; j > 0; j-- {
			a, b := es[j], es[j-1]
			if a.ah.hops < b.ah.hops || (a.ah.hops == b.ah.hops && a.id < b.id) {
				es[j], es[j-1] = b, a
			} else {
				break
			}
		}
	}
	out := make([]anchorHop, len(es))
	for i, e := range es {
		out[i] = e.ah
	}
	return out
}

// ingest caches incoming neighbor beliefs and two-hop digests.
func (n *gridNode) ingest(inbox []sim.Message) {
	for _, m := range inbox {
		bm, ok := m.Payload.(*beliefMsg)
		if m.Kind != kindBelief || !ok || bm.grid == nil {
			continue
		}
		n.nbrBelief[m.From] = bm.grid
		n.nbrDirty[m.From] = true
		if n.e.p.Deploy.Anchor[m.From] {
			n.heardFrom = true
		}
		if n.e.cfg.PK.UseNegativeEvidence {
			for _, d := range bm.digests {
				if !n.direct[d.id] {
					n.twoHop[d.id] = d
				}
			}
		}
	}
}

// recompute rebuilds the belief from the prior, the cached (convolved)
// neighbor messages, and the negative-evidence factors.
func (n *gridNode) recompute() *bayes.Belief {
	b := n.prior.Clone()
	// Iterate neighbors in sorted order: map order would make the
	// floating-point product (and hence the whole run) nondeterministic.
	for _, j := range sortedKeysBelief(n.nbrBelief) {
		nb := n.nbrBelief[j]
		if n.nbrDirty[j] {
			meas, ok := n.measTo(j)
			if !ok {
				continue
			}
			n.msgCache[j] = n.e.kernels.forMeasurement(meas).Convolve(nb)
			n.nbrDirty[j] = false
		}
		msg := n.msgCache[j]
		if msg == nil {
			continue
		}
		b.MulFloored(msg, n.e.cfg.MessageFloor)
		if !b.Normalize() {
			b = n.prior.Clone()
		}
	}
	if n.e.cfg.PK.UseNegativeEvidence {
		for _, k := range sortedKeysDigest(n.twoHop) {
			d := n.twoHop[k]
			f := negEvidenceFactor(d.mean, clampSpread(d.spread), n.e.p.R, n.e.p.Prop.PRR)
			if f == nil {
				continue
			}
			b.MulFunc(f)
			if !b.Normalize() {
				b = n.prior.Clone()
			}
		}
	}
	return b
}

func sortedKeysBelief(m map[int]*bayes.Belief) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

func sortedKeysDigest(m map[int]digest) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

// sortInts is a small insertion sort; key sets are node neighborhoods.
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// measTo returns the measured range to neighbor j.
func (n *gridNode) measTo(j int) (float64, bool) {
	return n.e.p.Graph.MeasBetween(n.id, j)
}

// broadcastBelief ships the current belief summary plus neighbor digests.
func (n *gridNode) broadcastBelief(ctx *sim.Context) {
	msg := &beliefMsg{
		grid:   n.belief,
		mean:   n.belief.Mean(),
		spread: n.belief.Spread(),
	}
	if n.e.cfg.PK.UseNegativeEvidence {
		for _, j := range sortedKeysBelief(n.nbrBelief) {
			nb := n.nbrBelief[j]
			msg.digests = append(msg.digests, digest{id: j, mean: nb.Mean(), spread: nb.Spread()})
		}
	}
	ctx.Broadcast(kindBelief, msg.bytesOf(), msg)
}

// Estimate implements estimateReader.
func (n *gridNode) Estimate() (mathx.Vec2, float64, bool) {
	if n.belief == nil {
		// BP never started (e.g. zero BP rounds): report the region center.
		c := n.e.grid.Bounds().Center()
		return c, math.Inf(1), false
	}
	if n.e.cfg.Refine && !n.anchor {
		window := 2*n.belief.Spread() + 2*n.e.grid.CellDiag()
		if est, spread, ok := n.refineEstimate(window, 24); ok {
			return est, spread, n.heardFrom
		}
	}
	if n.e.cfg.Estimator == EstimatorMAP {
		return n.belief.MAP(), n.belief.Spread(), n.heardFrom
	}
	return n.belief.Mean(), n.belief.Spread(), n.heardFrom
}
