package core

import (
	"math"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

func TestEKFValidation(t *testing.T) {
	sig := func(float64) float64 { return 1 }
	if _, err := NewEKFTracker(mathx.V2(0, 0), 0, 1, sig); err == nil {
		t.Error("zero startStd accepted")
	}
	if _, err := NewEKFTracker(mathx.V2(0, 0), 1, 0, sig); err == nil {
		t.Error("zero maxStep accepted")
	}
	if _, err := NewEKFTracker(mathx.V2(0, 0), 1, 1, nil); err == nil {
		t.Error("nil sigma accepted")
	}
}

func TestEKFConvergesOnStaticTarget(t *testing.T) {
	ranger := radio.TOAGaussian{R: 30, SigmaFrac: 0.03}
	k, err := NewEKFTracker(mathx.V2(50, 50), 30, 2, ranger.Sigma)
	if err != nil {
		t.Fatal(err)
	}
	truth := mathx.V2(30, 70)
	refs := []mathx.Vec2{{X: 10, Y: 10}, {X: 90, Y: 10}, {X: 50, Y: 90}, {X: 10, Y: 90}}
	stream := rng.New(1)
	var est mathx.Vec2
	var spread float64
	for i := 0; i < 15; i++ {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		est, spread = k.Step(obs)
	}
	if est.Dist(truth) > 2 {
		t.Errorf("EKF converged to %v, truth %v", est, truth)
	}
	if spread <= 0 || spread > 5 {
		t.Errorf("spread = %v", spread)
	}
}

func TestEKFTracksMovingTarget(t *testing.T) {
	ranger := radio.TOAGaussian{R: 30, SigmaFrac: 0.05}
	k, err := NewEKFTracker(mathx.V2(50, 50), 30, 3, ranger.Sigma)
	if err != nil {
		t.Fatal(err)
	}
	refs := []mathx.Vec2{{X: 10, Y: 10}, {X: 90, Y: 10}, {X: 50, Y: 90}, {X: 90, Y: 90}}
	stream := rng.New(2)
	rw := topology.RandomWaypoint{Region: geom.NewRect(15, 15, 85, 85), SpeedMin: 1, SpeedMax: 2.5}
	trace := rw.Trace(mathx.V2(50, 50), 60, stream.Split(1))
	var errSum float64
	count := 0
	for i, truth := range trace {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		est, _ := k.Step(obs)
		if i >= 5 {
			errSum += est.Dist(truth)
			count++
		}
	}
	mean := errSum / float64(count)
	t.Logf("EKF tracking error %.2f m", mean)
	if mean > 3 {
		t.Errorf("tracking error %.2f m", mean)
	}
}

func TestEKFSpreadGrowsWithoutObservations(t *testing.T) {
	k, _ := NewEKFTracker(mathx.V2(0, 0), 1, 2, func(float64) float64 { return 1 })
	_, s0 := k.Step(nil)
	_, s1 := k.Step(nil)
	if s1 <= s0 {
		t.Errorf("spread did not grow: %v then %v", s0, s1)
	}
}

func TestEKFGatesWildInnovation(t *testing.T) {
	ranger := radio.TOAGaussian{R: 30, SigmaFrac: 0.03}
	k, _ := NewEKFTracker(mathx.V2(50, 50), 5, 2, ranger.Sigma)
	truth := mathx.V2(50, 50)
	refs := []mathx.Vec2{{X: 10, Y: 10}, {X: 90, Y: 10}, {X: 50, Y: 90}}
	stream := rng.New(3)
	for i := 0; i < 10; i++ {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		k.Step(obs)
	}
	before, _ := k.Estimate()
	// A wildly wrong measurement must be gated out, not absorbed.
	est, _ := k.Step([]RangeObs{{From: mathx.V2(50, 10), Meas: 500}})
	if est.Dist(before) > 1 {
		t.Errorf("wild innovation moved estimate by %.2f m", est.Dist(before))
	}
	// Degenerate reference at the estimate itself is skipped.
	est2, _ := k.Step([]RangeObs{{From: est, Meas: 1}})
	if math.IsNaN(est2.X) {
		t.Error("NaN after zero-distance reference")
	}
}

// The grid tracker should beat the EKF when the map prior matters (corridor)
// while the EKF remains competitive in open space — the trade the tracking
// extension documents.
func TestEKFVsGridTrackerOnCorridor(t *testing.T) {
	region := geom.Corridor(geom.NewRect(0, 0, 100, 100), 0.16)
	ranger := radio.TOAGaussian{R: 40, SigmaFrac: 0.15}
	bounds := geom.NewRect(0, 0, 100, 100)
	grid, err := NewTracker(region, bounds, 50, 2.5, ranger)
	if err != nil {
		t.Fatal(err)
	}
	ekf, err := NewEKFTracker(mathx.V2(50, 50), 30, 2.5, ranger.Sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse references: only two, so the range-only posterior is
	// multi-modal and the corridor prior disambiguates.
	refs := []mathx.Vec2{{X: 20, Y: 50}, {X: 45, Y: 50}}
	stream := rng.New(4)
	rw := topology.RandomWaypoint{Region: geom.Corridor(geom.NewRect(5, 0, 95, 100), 0.16), SpeedMin: 1, SpeedMax: 2.5}
	trace := rw.Trace(mathx.V2(50, 50), 80, stream.Split(2))
	var gridSum, ekfSum float64
	count := 0
	for i, truth := range trace {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		g, _ := grid.Step(obs)
		e, _ := ekf.Step(obs)
		if i >= 10 {
			gridSum += g.Dist(truth)
			ekfSum += e.Dist(truth)
			count++
		}
	}
	gm, em := gridSum/float64(count), ekfSum/float64(count)
	t.Logf("corridor tracking: grid %.2f m vs EKF %.2f m", gm, em)
	if gm >= em {
		t.Errorf("map-aware grid tracker (%.2f) not better than EKF (%.2f) on corridor", gm, em)
	}
}
