package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"wsnloc/internal/rng"
)

// The parallel engine must be invisible: same seed ⇒ byte-identical Result
// regardless of worker count, even with packet loss and delivery jitter in
// play (their RNG draws depend on outbox order, which the engine's
// deterministic merge preserves). CI runs this package under -race, so these
// tests double as the data-race check for the concurrent node execution.

func localizeWithWorkers(t *testing.T, mode Mode, workers int) *Result {
	t.Helper()
	p := testProblem(t, 55, 70, 0.15)
	p.Loss = 0.15
	p.Jitter = 0.1
	cfg := quickCfg(mode, AllPreKnowledge())
	cfg.Workers = workers
	res, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLocalizeDeterministicAcrossWorkers(t *testing.T) {
	for _, mode := range []Mode{GridMode, ParticleMode} {
		name := "grid"
		if mode == ParticleMode {
			name = "particle"
		}
		t.Run(name, func(t *testing.T) {
			want := localizeWithWorkers(t, mode, 1)
			if len(want.Convergence) == 0 {
				t.Fatal("scenario produced no convergence trace")
			}
			for _, workers := range []int{2, runtime.GOMAXPROCS(0), 0} {
				got := localizeWithWorkers(t, mode, workers)
				if !reflect.DeepEqual(got.Est, want.Est) {
					t.Errorf("workers=%d: estimates diverged from sequential run", workers)
				}
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Errorf("workers=%d: stats diverged:\n got %+v\nwant %+v", workers, got.Stats, want.Stats)
				}
				if !reflect.DeepEqual(got.Convergence, want.Convergence) {
					t.Errorf("workers=%d: convergence history diverged:\n got %v\nwant %v",
						workers, got.Convergence, want.Convergence)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: Result not byte-identical to sequential run", workers)
				}
			}
		})
	}
}

// BenchmarkNetworkRun is the headline perf number: one full grid-mode BNCL
// localization of a 200-node network at increasing worker counts. The
// Workers=1 case is the sequential engine; the acceptance bar is ≥2× at
// Workers=4.
func BenchmarkNetworkRun(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := testProblem(b, 41, 200, 0.15)
			cfg := quickCfg(GridMode, AllPreKnowledge())
			cfg.GridNX, cfg.GridNY = 40, 40
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(77)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
