package core

import (
	"strconv"
	"testing"

	"wsnloc/internal/mathx"
)

// Micro-benchmarks for the map-ordering helpers on the per-round hot path.
// They replaced O(n²) insertion sorts; the insertion-sort variants are kept
// here (bench-only) as the comparison baseline.

func benchHopTable(n int) map[int]anchorHop {
	table := make(map[int]anchorHop, n)
	for i := 0; i < n; i++ {
		table[(i*7919)%2048] = anchorHop{pos: mathx.V2(float64(i), float64(n-i)), hops: (i * 13) % 9}
	}
	return table
}

func insertionSortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func BenchmarkSortedKeys(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		table := benchHopTable(n)
		b.Run(benchName("stdsort", n), func(b *testing.B) {
			var scratch []int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scratch = sortedKeys(scratch, table)
			}
		})
		b.Run(benchName("insertion", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				insertionSortedKeys(table)
			}
		})
	}
}

func BenchmarkSortedHopTable(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		table := benchHopTable(n)
		b.Run(benchName("stdsort", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sortedHopTable(table)
			}
		})
	}
}

func benchName(impl string, n int) string {
	return impl + "/n=" + strconv.Itoa(n)
}
