package core

import (
	"errors"
	"math"

	"wsnloc/internal/mathx"
)

// EKFTracker is the classical baseline for the Bayesian Tracker: an extended
// Kalman filter over the mobile node's position with a random-walk process
// model. It is cheaper than the grid filter but unimodal — it cannot
// represent the ring- and horseshoe-shaped posteriors that sparse ranging
// produces, and it has no way to use map pre-knowledge. The tracking
// example contrasts the two.
type EKFTracker struct {
	x       mathx.Vec2 // state estimate
	p11     float64    // covariance (symmetric 2×2)
	p12     float64
	p22     float64
	q       float64 // process noise: var of the per-step displacement
	sigmaOf func(d float64) float64
}

// NewEKFTracker starts the filter at start with standard deviation
// startStd in each axis. maxStep bounds the per-step motion (the process
// noise is sized to cover it); sigmaOf maps a measured distance to the
// ranging noise std.
func NewEKFTracker(start mathx.Vec2, startStd, maxStep float64, sigmaOf func(float64) float64) (*EKFTracker, error) {
	if startStd <= 0 || maxStep <= 0 {
		return nil, errors.New("core: EKF needs positive startStd and maxStep")
	}
	if sigmaOf == nil {
		return nil, errors.New("core: EKF needs a ranging-noise function")
	}
	return &EKFTracker{
		x:   start,
		p11: startStd * startStd,
		p22: startStd * startStd,
		// A uniform step in [−maxStep, maxStep] has variance maxStep²/3.
		q:       maxStep * maxStep / 3,
		sigmaOf: sigmaOf,
	}, nil
}

// Estimate returns the current state and its 1-σ radius.
func (k *EKFTracker) Estimate() (mathx.Vec2, float64) {
	return k.x, sqrtNonNeg(k.p11 + k.p22)
}

// Step runs one predict-update cycle with the given range observations.
func (k *EKFTracker) Step(obs []RangeObs) (mathx.Vec2, float64) {
	// Predict: random walk inflates the covariance.
	k.p11 += k.q
	k.p22 += k.q

	// Sequential scalar updates, one per observation.
	for _, o := range obs {
		diff := k.x.Sub(o.From)
		d := diff.Norm()
		if d < 1e-9 {
			continue // gradient undefined at the reference point
		}
		// H = ∂d/∂x = [diff.X/d, diff.Y/d].
		hx, hy := diff.X/d, diff.Y/d
		sigma := k.sigmaOf(o.Meas)
		r := sigma * sigma
		// Innovation covariance s = H·P·Hᵀ + r.
		phx := k.p11*hx + k.p12*hy
		phy := k.p12*hx + k.p22*hy
		s := hx*phx + hy*phy + r
		if s <= 0 {
			continue
		}
		// Gate wild innovations at 5σ: a corrupt reference position would
		// otherwise yank the unimodal filter far off.
		innov := o.Meas - d
		if innov*innov > 25*s {
			continue
		}
		kx, ky := phx/s, phy/s
		k.x = mathx.V2(k.x.X+kx*innov, k.x.Y+ky*innov)
		// Joseph-free covariance update P ← (I − K·H)·P.
		p11 := k.p11 - kx*phx
		p12 := k.p12 - kx*phy
		p22 := k.p22 - ky*phy
		k.p11, k.p12, k.p22 = p11, p12, p22
		// Keep the covariance from collapsing below numerical sanity.
		if k.p11 < 1e-9 {
			k.p11 = 1e-9
		}
		if k.p22 < 1e-9 {
			k.p22 = 1e-9
		}
	}
	return k.Estimate()
}

func sqrtNonNeg(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
