package core

import (
	"wsnloc/internal/bayes"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
)

// Local grid refinement: the global belief grid's cell size floors the
// achievable accuracy (E12). After BP converges, a node can re-evaluate its
// posterior on a fine grid spanning only the neighborhood of its coarse
// estimate — the pre-knowledge factors are evaluated directly and each
// cached neighbor belief is pushed through the exact measurement likelihood
// (no coarse kernel). This is a purely local computation: it costs zero
// additional radio traffic.

// refineEstimate recomputes the posterior of a grid node on a fine local
// grid centered at its current mean, returning the refined mean and spread.
// windowRadius sets the half-width of the local grid; fineN its resolution.
func (n *gridNode) refineEstimate(windowRadius float64, fineN int) (mathx.Vec2, float64, bool) {
	if n.belief == nil || n.anchor {
		return mathx.Vec2{}, 0, false
	}
	center := n.belief.Mean()
	bounds := geom.NewRect(
		center.X-windowRadius, center.Y-windowRadius,
		center.X+windowRadius, center.Y+windowRadius,
	)
	fine := geom.NewGrid(bounds, fineN, fineN)

	// Pre-knowledge factors, evaluated exactly on the fine grid.
	hops := sortedHopTable(n.hopTable)
	rUp, rLo := n.e.hopBounds()
	post := n.e.cfg.PK.buildPrior(fine, n.e.p.Deploy.Region, hops, rUp, rLo)

	// Neighbor messages: push each cached neighbor belief through the exact
	// likelihood at fine-cell resolution. Cost |support_j| × fineN² per
	// neighbor, done once.
	for _, j := range sortedKeys(nil, n.nbr) {
		nb := n.nbr[j].last // retained because Config.Refine is set
		if nb == nil {
			continue
		}
		meas, ok := n.measTo(j)
		if !ok {
			continue
		}
		msg := projectMessage(nb, fine, func(d float64) float64 {
			return n.e.p.Ranger.Likelihood(meas, d)
		})
		post.MulFloored(msg, n.e.cfg.MessageFloor)
		if !post.Normalize() {
			return center, n.belief.Spread(), true // keep the coarse answer
		}
	}
	if n.e.cfg.PK.UseNegativeEvidence {
		for _, k := range sortedKeys(nil, n.twoHop) {
			d := n.twoHop[k]
			f := negEvidenceFactor(d.mean, clampSpread(d.spread), n.e.p.R, n.e.p.Prop.PRR)
			if f == nil {
				continue
			}
			post.MulFunc(f)
			if !post.Normalize() {
				return center, n.belief.Spread(), true
			}
		}
	}
	return post.Mean(), post.Spread(), true
}

// projectMessage evaluates m(x) = Σ_c b[c] · lik(‖x − center_c‖) on the
// cells of the destination grid, using only the source belief's support.
func projectMessage(src *bayes.Belief, dst *geom.Grid, lik func(float64) float64) *bayes.Belief {
	out := &bayes.Belief{Grid: dst, W: make([]float64, dst.Cells())}
	support := src.Support(1e-3)
	for idx := range out.W {
		x := dst.CenterIdx(idx)
		s := 0.0
		for _, c := range support {
			s += src.W[c] * lik(x.Dist(src.Grid.CenterIdx(c)))
		}
		out.W[idx] = s
	}
	return out
}
