package core

import (
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// testProblem builds a reproducible medium-density scenario.
func testProblem(t testing.TB, seed uint64, n int, anchorFrac float64) *Problem {
	t.Helper()
	return buildProblem(t, seed, n, anchorFrac, geom.NewRect(0, 0, 100, 100))
}

func buildProblem(t testing.TB, seed uint64, n int, anchorFrac float64, region geom.Region) *Problem {
	t.Helper()
	stream := rng.New(seed)
	const r = 22.0
	dep, err := topology.Deploy(n, int(float64(n)*anchorFrac), topology.UniformGen{}, region, topology.AnchorsRandom, stream.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	prop := radio.UnitDisk{R: r}
	ranger := radio.TOAGaussian{R: r, SigmaFrac: 0.1}
	g := topology.BuildGraph(dep, prop, ranger, stream.Split(2))
	return &Problem{Deploy: dep, Graph: g, R: r, Prop: prop, Ranger: ranger}
}

func TestProblemValidate(t *testing.T) {
	p := testProblem(t, 1, 30, 0.2)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []func(*Problem){
		func(p *Problem) { p.Deploy = nil },
		func(p *Problem) { p.Graph = nil },
		func(p *Problem) { p.R = 0 },
		func(p *Problem) { p.Prop = nil },
		func(p *Problem) { p.Ranger = nil },
		func(p *Problem) { p.Loss = 1.0 },
		func(p *Problem) { p.Loss = -0.5 },
	}
	for i, mutate := range cases {
		q := *testProblem(t, 1, 30, 0.2)
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid problem accepted", i)
		}
	}
}

func TestAnchorPos(t *testing.T) {
	p := testProblem(t, 2, 40, 0.25)
	ap := p.AnchorPos()
	if len(ap) != p.Deploy.NumAnchors() {
		t.Fatalf("anchor table size %d", len(ap))
	}
	for id, pos := range ap {
		if !p.Deploy.Anchor[id] || p.Deploy.Pos[id] != pos {
			t.Fatalf("anchor %d table wrong", id)
		}
	}
}

func TestNewResultPrefillsAnchors(t *testing.T) {
	p := testProblem(t, 3, 30, 0.3)
	r := NewResult(p)
	for _, id := range p.Deploy.AnchorIDs() {
		if !r.Localized[id] || r.Est[id] != p.Deploy.Pos[id] {
			t.Fatalf("anchor %d not prefilled", id)
		}
	}
	for _, id := range p.Deploy.UnknownIDs() {
		if r.Localized[id] {
			t.Fatalf("unknown %d marked localized", id)
		}
	}
}

func TestAnnulusFactor(t *testing.T) {
	a := mathx.V2(0, 0)
	f := annulusFactor(a, 2, 10, 5) // annulus ~ (5, 20]
	if f(mathx.V2(12, 0)) != 1 {
		t.Error("inside annulus not 1")
	}
	if got := f(mathx.V2(30, 0)); got > 1e-5 {
		t.Errorf("far outside = %v", got)
	}
	// Below soft lower bound: floored at 0.05, not zero.
	if got := f(mathx.V2(1, 0)); got < 0.04 || got > 0.06 {
		t.Errorf("inner floor = %v", got)
	}
	// Monotone decay across the upper edge.
	if f(mathx.V2(20.2, 0)) <= f(mathx.V2(20.9, 0)) {
		t.Error("upper edge not monotone")
	}
}

func TestNegEvidenceFactor(t *testing.T) {
	prr := radio.UnitDisk{R: 10}.PRR
	f := negEvidenceFactor(mathx.V2(0, 0), 1.0, 10, prr)
	if f == nil {
		t.Fatal("informative digest rejected")
	}
	// Close to the two-hop node: unlikely (floored at 0.05).
	if got := f(mathx.V2(2, 0)); got > 0.06 {
		t.Errorf("near factor = %v", got)
	}
	// Far: likely.
	if got := f(mathx.V2(30, 0)); got < 0.99 {
		t.Errorf("far factor = %v", got)
	}
	// Diffuse digest is ignored.
	if negEvidenceFactor(mathx.V2(0, 0), 6, 10, prr) != nil {
		t.Error("diffuse digest not rejected")
	}
}

func TestBuildPriorRespectsRegionAndAnnuli(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 25, 25)
	region := geom.OShape(geom.NewRect(0, 0, 100, 100))
	pk := AllPreKnowledge()
	hops := []anchorHop{{pos: mathx.V2(10, 50), hops: 1}}
	prior := pk.buildPrior(g, region, hops, 20, 10)
	if !mathx.AlmostEqual(prior.Mass(), 1, 1e-9) {
		t.Fatal("prior not normalized")
	}
	// Mass inside the O hole must be zero.
	holeMass := 0.0
	ringFarMass := 0.0
	for idx, w := range prior.W {
		p := g.CenterIdx(idx)
		if p.X > 35 && p.X < 65 && p.Y > 35 && p.Y < 65 {
			holeMass += w
		}
		if p.Dist(mathx.V2(10, 50)) > 25 {
			ringFarMass += w
		}
	}
	if holeMass > 1e-9 {
		t.Errorf("hole mass = %v", holeMass)
	}
	// One hop from the anchor: almost all mass within ~R (+soft edge).
	if ringFarMass > 0.05 {
		t.Errorf("mass beyond 1-hop annulus = %v", ringFarMass)
	}
}

func TestBuildPriorFallsBackOnContradiction(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 20, 20)
	pk := AllPreKnowledge()
	// Two 1-hop anchors 90m apart with R=20: annuli are disjoint.
	hops := []anchorHop{
		{pos: mathx.V2(5, 5), hops: 1},
		{pos: mathx.V2(95, 95), hops: 1},
	}
	prior := pk.buildPrior(g, geom.NewRect(0, 0, 100, 100), hops, 20, 10)
	if !mathx.AlmostEqual(prior.Mass(), 1, 1e-9) {
		t.Fatal("contradictory prior not recovered")
	}
}

func TestBuildPriorNoPK(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 10, 10)
	prior := NoPreKnowledge().buildPrior(g, geom.OShape(geom.NewRect(0, 0, 100, 100)), nil, 20, 10)
	// Without pre-knowledge the prior must be uniform, hole included.
	u := 1.0 / 100
	for _, w := range prior.W {
		if !mathx.AlmostEqual(w, u, 1e-9) {
			t.Fatalf("no-PK prior not uniform: %v", w)
		}
	}
}

func TestBuildPriorDeployDensity(t *testing.T) {
	g := geom.NewGrid(geom.NewRect(0, 0, 100, 100), 20, 20)
	pk := PreKnowledge{
		UseRegion:     true,
		DeployDensity: func(p mathx.Vec2) float64 { return p.X }, // heavier to the east
	}
	prior := pk.buildPrior(g, geom.NewRect(0, 0, 100, 100), nil, 20, 10)
	if m := prior.Mean(); m.X <= 55 {
		t.Errorf("density prior mean = %v, want east of center", m)
	}
	// Density-only (no region) path.
	pk2 := PreKnowledge{DeployDensity: func(p mathx.Vec2) float64 { return p.Y }}
	prior2 := pk2.buildPrior(g, nil, nil, 20, 10)
	if m := prior2.Mean(); m.Y <= 55 {
		t.Errorf("region-free density prior mean = %v", m)
	}
}

func TestPreKnowledgeDefaults(t *testing.T) {
	pk := PreKnowledge{}
	if pk.hopGamma() != 0.5 {
		t.Errorf("default gamma = %v", pk.hopGamma())
	}
	if pk.maxAnnuli() != 16 {
		t.Errorf("default max annuli = %v", pk.maxAnnuli())
	}
	pk.HopGamma = 0.7
	pk.MaxAnnuliAnchors = 3
	if pk.hopGamma() != 0.7 || pk.maxAnnuli() != 3 {
		t.Error("overrides ignored")
	}
	if clampSpread(-1) != 0 || clampSpread(2) != 2 {
		t.Error("clampSpread wrong")
	}
}
