package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
)

// countdownCtx is a Context whose Err flips to context.Canceled after a fixed
// number of Err checks. The engine polls ctx.Err() once per protocol round, so
// this cancels mid-run at an exact round — deterministic, no timers racing the
// scheduler.
type countdownCtx struct {
	context.Context
	remaining atomic.Int32
}

func newCountdownCtx(checks int32) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(checks)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func waitGoroutines(want int) int {
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestLocalizeCtxCancelMidRun cancels a 200-node run after its first BP round,
// for both belief representations, with the parallel round engine on. The
// call must return context.Canceled, leak no goroutines, and leave a
// "canceled" trace event recording how far it got.
func TestLocalizeCtxCancelMidRun(t *testing.T) {
	for _, mode := range []Mode{GridMode, ParticleMode} {
		mode := mode
		name := "grid"
		if mode == ParticleMode {
			name = "particle"
		}
		t.Run(name, func(t *testing.T) {
			p := testProblem(t, 11, 200, 0.1)
			before := runtime.NumGoroutine()

			// One check before Init, then one per round: cancellation lands
			// at the round-5 check, mid protocol.
			ctx := newCountdownCtx(6)
			mem := obs.NewMemory()
			b := &BNCL{Cfg: Config{Mode: mode, PK: AllPreKnowledge(), Workers: 4, Tracer: mem}}

			res, err := b.LocalizeCtx(ctx, p, rng.New(5))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Errorf("canceled run returned a result")
			}
			if after := waitGoroutines(before); after > before {
				t.Errorf("goroutines leaked: %d before, %d after", before, after)
			}
			evs := mem.ByName("bncl.run.canceled")
			if len(evs) != 1 {
				t.Fatalf("got %d bncl.run.canceled events, want 1", len(evs))
			}
			if rounds, ok := evs[0].Float("rounds"); !ok || rounds < 1 {
				t.Errorf("canceled event rounds = %v %v, want >= 1", rounds, ok)
			}
		})
	}
}

func TestLocalizeCtxPreCanceled(t *testing.T) {
	p := testProblem(t, 3, 40, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := NewGrid(AllPreKnowledge())
	if _, err := b.LocalizeCtx(ctx, p, rng.New(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// plainAlg is an Algorithm without LocalizeCtx, to exercise the
// LocalizeContext fallback path.
type plainAlg struct{ calls int }

func (a *plainAlg) Name() string { return "plain" }

func (a *plainAlg) Localize(p *Problem, _ *rng.Stream) (*Result, error) {
	a.calls++
	return NewResult(p), nil
}

func TestLocalizeContextFallback(t *testing.T) {
	p := testProblem(t, 4, 30, 0.2)
	a := &plainAlg{}

	if _, err := LocalizeContext(context.Background(), a, p, rng.New(1)); err != nil {
		t.Fatalf("uncanceled fallback failed: %v", err)
	}
	if a.calls != 1 {
		t.Fatalf("algorithm ran %d times, want 1", a.calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LocalizeContext(ctx, a, p, rng.New(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a.calls != 1 {
		t.Errorf("pre-canceled context still ran the algorithm")
	}
}
