package core

import (
	"math"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// meanError returns the mean localization error of unknowns (normalized by
// nothing — raw meters) for localized nodes, plus the localized fraction.
func meanError(p *Problem, r *Result) (float64, float64) {
	sum, count, total := 0.0, 0, 0
	for _, id := range p.Deploy.UnknownIDs() {
		total++
		if !r.Localized[id] {
			continue
		}
		sum += r.Est[id].Dist(p.Deploy.Pos[id])
		count++
	}
	if count == 0 {
		return math.Inf(1), 0
	}
	return sum / float64(count), float64(count) / float64(total)
}

func quickCfg(mode Mode, pk PreKnowledge) Config {
	return Config{
		Mode:      mode,
		GridNX:    30,
		GridNY:    30,
		Particles: 120,
		HopRounds: 12,
		BPRounds:  10,
		PK:        pk,
	}
}

func TestBNCLGridLocalizes(t *testing.T) {
	p := testProblem(t, 10, 80, 0.15)
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	errM, cov := meanError(p, res)
	t.Logf("grid BNCL: mean error %.2f m, coverage %.2f, rounds %d, msgs %d",
		errM, cov, res.Rounds, res.Stats.MessagesSent)
	// A random guess in a 100x100 field averages ~52 m; the algorithm must
	// do far better with 15% anchors and 10% ranging noise.
	if errM > 8 {
		t.Errorf("mean error %.2f m too high", errM)
	}
	if cov < 0.9 {
		t.Errorf("coverage %.2f too low", cov)
	}
	if res.Stats.MessagesSent == 0 {
		t.Error("no traffic recorded for a distributed protocol")
	}
}

func TestBNCLParticleLocalizes(t *testing.T) {
	p := testProblem(t, 11, 80, 0.15)
	alg := &BNCL{Cfg: quickCfg(ParticleMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	errM, cov := meanError(p, res)
	t.Logf("particle BNCL: mean error %.2f m, coverage %.2f", errM, cov)
	if errM > 10 {
		t.Errorf("mean error %.2f m too high", errM)
	}
	if cov < 0.9 {
		t.Errorf("coverage %.2f too low", cov)
	}
}

func TestBNCLPreKnowledgeHelps(t *testing.T) {
	// With sparse anchors, pre-knowledge must reduce the error.
	var withPK, withoutPK float64
	trials := 3
	for trial := 0; trial < trials; trial++ {
		p := testProblem(t, 20+uint64(trial), 90, 0.08)
		a1 := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
		r1, err := a1.Localize(p, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		a2 := &BNCL{Cfg: quickCfg(GridMode, NoPreKnowledge())}
		r2, err := a2.Localize(p, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		e1, _ := meanError(p, r1)
		e2, _ := meanError(p, r2)
		withPK += e1
		withoutPK += e2
	}
	withPK /= float64(trials)
	withoutPK /= float64(trials)
	t.Logf("with PK: %.2f m, without: %.2f m", withPK, withoutPK)
	if withPK >= withoutPK {
		t.Errorf("pre-knowledge did not help: %.2f vs %.2f", withPK, withoutPK)
	}
}

func TestBNCLDeterministic(t *testing.T) {
	p := testProblem(t, 30, 60, 0.15)
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	r1, err := alg.Localize(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := alg.Localize(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Est {
		if r1.Est[i] != r2.Est[i] {
			t.Fatalf("node %d: %v vs %v", i, r1.Est[i], r2.Est[i])
		}
	}
	if r1.Stats.MessagesSent != r2.Stats.MessagesSent {
		t.Error("traffic differs between identical runs")
	}
}

func TestBNCLParticleDeterministic(t *testing.T) {
	p := testProblem(t, 31, 50, 0.2)
	alg := &BNCL{Cfg: quickCfg(ParticleMode, AllPreKnowledge())}
	r1, _ := alg.Localize(p, rng.New(6))
	r2, _ := alg.Localize(p, rng.New(6))
	for i := range r1.Est {
		if r1.Est[i] != r2.Est[i] {
			t.Fatalf("node %d differs", i)
		}
	}
}

func TestBNCLSurvivesPacketLoss(t *testing.T) {
	p := testProblem(t, 40, 70, 0.15)
	p.Loss = 0.2
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	errM, cov := meanError(p, res)
	t.Logf("20%% loss: error %.2f m, coverage %.2f", errM, cov)
	if errM > 12 {
		t.Errorf("error under loss = %.2f m", errM)
	}
	if res.Stats.Dropped == 0 {
		t.Error("no packets dropped at 20% loss")
	}
}

func TestBNCLZeroAnchors(t *testing.T) {
	// With no anchors nothing can anchor the posterior; the algorithm must
	// not panic and must report nodes as unlocalized.
	p := testProblem(t, 50, 40, 0)
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p.Deploy.UnknownIDs() {
		if res.Localized[id] {
			t.Fatalf("node %d claims localization without anchors", id)
		}
		if !res.Est[id].IsFinite() {
			t.Fatalf("node %d produced non-finite estimate", id)
		}
	}
}

func TestBNCLDisconnectedNodes(t *testing.T) {
	// Sparse network: some nodes are isolated from every anchor. They must
	// be reported unlocalized, the rest must still work.
	stream := rng.New(60)
	p := testProblem(t, 60, 40, 0.15)
	// Shrink the radio range to fragment the network.
	rebuild := buildProblem(t, 61, 40, 0.15, geom.NewRect(0, 0, 200, 200))
	_ = stream
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(rebuild, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	comps, compOf := rebuild.Graph.Components()
	_ = comps
	// Nodes in components without anchors must be unlocalized.
	anchoredComp := map[int]bool{}
	for _, id := range rebuild.Deploy.AnchorIDs() {
		anchoredComp[compOf[id]] = true
	}
	for _, id := range rebuild.Deploy.UnknownIDs() {
		if !anchoredComp[compOf[id]] && res.Localized[id] {
			t.Errorf("node %d localized in anchor-free component", id)
		}
	}
	_ = p
}

func TestBNCLIrregularRegionPK(t *testing.T) {
	// On a C-shaped deployment, region pre-knowledge must keep estimates
	// inside (or very near) the C.
	region := geom.CShape(geom.NewRect(0, 0, 100, 100))
	p := buildProblem(t, 70, 90, 0.15, region)
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	outside := 0
	localized := 0
	for _, id := range p.Deploy.UnknownIDs() {
		if !res.Localized[id] {
			continue
		}
		localized++
		if !region.Contains(res.Est[id]) {
			outside++
		}
	}
	if localized == 0 {
		t.Fatal("nothing localized on C-shape")
	}
	// Posterior means of a C-shaped support can land in the bite, but the
	// vast majority should not.
	if frac := float64(outside) / float64(localized); frac > 0.25 {
		t.Errorf("%.0f%% of estimates escaped the C-shape", 100*frac)
	}
}

func TestBNCLNames(t *testing.T) {
	if NewGrid(AllPreKnowledge()).Name() != "bncl-grid-pk" {
		t.Error("grid name wrong")
	}
	if NewParticle(NoPreKnowledge()).Name() != "bncl-particle-nopk" {
		t.Error("particle name wrong")
	}
}

func TestBNCLInvalidProblem(t *testing.T) {
	p := testProblem(t, 80, 30, 0.2)
	p.R = 0
	if _, err := NewGrid(AllPreKnowledge()).Localize(p, rng.New(1)); err == nil {
		t.Error("invalid problem accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.GridNX != defaultGridN || c.Particles != defaultParticles ||
		c.HopRounds != defaultHopRounds || c.BPRounds != defaultBPRounds ||
		c.Epsilon != defaultEpsilon || c.MessageFloor != defaultMsgFloor {
		t.Errorf("defaults wrong: %+v", c)
	}
	c2 := Config{GridNX: 10, Particles: 7}.withDefaults()
	if c2.GridNX != 10 || c2.Particles != 7 {
		t.Error("overrides clobbered")
	}
}

func TestBNCLUnderDelayJitter(t *testing.T) {
	p := testProblem(t, 90, 70, 0.15)
	p.Jitter = 0.3
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	errM, cov := meanError(p, res)
	t.Logf("30%% jitter: error %.2f m, coverage %.2f", errM, cov)
	if errM > 12 {
		t.Errorf("error under jitter = %.2f m", errM)
	}
	if res.Stats.Delayed == 0 {
		t.Error("no deliveries delayed at 30% jitter")
	}
	// Invalid jitter rejected.
	p.Jitter = 1.0
	if _, err := alg.Localize(p, rng.New(12)); err == nil {
		t.Error("jitter=1 accepted")
	}
}

func TestBNCLRangeFree(t *testing.T) {
	// Connectivity-only operation: replace the ranger with HopRanger so
	// every link reports R with a flat in-range likelihood. BNCL must still
	// beat the prior substantially.
	p := testProblem(t, 91, 90, 0.15)
	hopRanger := radio.HopRanger{R: p.R}
	// Rebuild measurements under the hop ranger so Meas == R everywhere.
	p.Graph = topology.BuildGraph(p.Deploy, p.Prop, hopRanger, rng.New(91))
	p.Ranger = hopRanger
	alg := &BNCL{Cfg: quickCfg(GridMode, AllPreKnowledge())}
	res, err := alg.Localize(p, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	errM, cov := meanError(p, res)
	t.Logf("range-free BNCL: error %.2f m (R=%.0f), coverage %.2f", errM, p.R, cov)
	// Range-free bounds: should land well under the radio range.
	if errM > 0.75*p.R {
		t.Errorf("range-free error %.2f m too high", errM)
	}
	if cov < 0.9 {
		t.Errorf("coverage %.2f", cov)
	}
}

func TestBNCLMAPEstimator(t *testing.T) {
	p := testProblem(t, 92, 70, 0.15)
	cfg := quickCfg(GridMode, AllPreKnowledge())
	cfg.Estimator = EstimatorMAP
	res, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	errMAP, _ := meanError(p, res)
	cfg.Estimator = EstimatorMean
	res2, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	errMean, _ := meanError(p, res2)
	t.Logf("MAP %.2f m vs mean %.2f m", errMAP, errMean)
	// Both must be sane; on unimodal posteriors they should be close.
	if errMAP > 2*errMean+2 {
		t.Errorf("MAP estimator far worse than mean: %.2f vs %.2f", errMAP, errMean)
	}
	// MAP estimates land exactly on grid cell centers; means generally not.
	grid := geomGridForTest(p, cfg)
	onCenter := 0
	checked := 0
	for _, id := range p.Deploy.UnknownIDs() {
		if !res.Localized[id] {
			continue
		}
		checked++
		if res.Est[id] == grid.CenterIdx(grid.IndexOf(res.Est[id])) {
			onCenter++
		}
	}
	if checked > 0 && onCenter != checked {
		t.Errorf("%d/%d MAP estimates off cell centers", checked-onCenter, checked)
	}
}

func geomGridForTest(p *Problem, cfg Config) *geom.Grid {
	c := cfg.withDefaults()
	return geom.NewGrid(p.Deploy.Region.Bounds(), c.GridNX, c.GridNY)
}

func TestBNCLRefinementImprovesCoarseGrid(t *testing.T) {
	// On a deliberately coarse grid (cells ~5.5 m), refinement must recover
	// most of the resolution loss — at zero extra messages.
	var coarse, refined float64
	var coarseMsgs, refinedMsgs int
	for trial := uint64(0); trial < 2; trial++ {
		p := testProblem(t, 300+trial, 80, 0.15)
		cfg := quickCfg(GridMode, AllPreKnowledge())
		cfg.GridNX, cfg.GridNY = 18, 18
		r1, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Refine = true
		r2, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		e1, _ := meanError(p, r1)
		e2, _ := meanError(p, r2)
		coarse += e1
		refined += e2
		coarseMsgs += r1.Stats.MessagesSent
		refinedMsgs += r2.Stats.MessagesSent
	}
	t.Logf("coarse grid: %.2f m, refined: %.2f m", coarse/2, refined/2)
	if refined >= coarse {
		t.Errorf("refinement did not improve: %.2f vs %.2f", refined/2, coarse/2)
	}
	if refinedMsgs != coarseMsgs {
		t.Errorf("refinement changed traffic: %d vs %d msgs", refinedMsgs, coarseMsgs)
	}
}
