// Package core implements the paper's contribution: cooperative localization
// with pre-knowledge using a Bayesian network (BNCL).
//
// The network of sensor positions is modeled as a pairwise Markov random
// field: each node's position X_i is a random variable, each measured radio
// link contributes the pairwise evidence p(d̂_ij | ‖x_i − x_j‖), and
// pre-knowledge (deployment region and density, anchor hop-count annuli,
// negative evidence from missing links) enters as unary priors. Inference is
// loopy belief propagation executed as a distributed round-based protocol on
// the internal/sim substrate, with beliefs represented either on a discrete
// grid or as weighted particles.
//
// Package baseline implements the comparison algorithms against the same
// Problem/Result contract defined here.
package core

import (
	"context"
	"fmt"

	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/sim"
	"wsnloc/internal/topology"
	"wsnloc/internal/wsnerr"
)

// Problem is everything a localization algorithm may legitimately observe:
// the connectivity graph with its noisy range measurements, anchor
// positions, the radio models (known calibration), and the environment's
// packet-loss rate. True positions of unknowns live in Deploy but are only
// for scoring — algorithms must not read them.
type Problem struct {
	Deploy *topology.Deployment
	Graph  *topology.Graph
	// R is the nominal radio range used for hop-based bounds.
	R float64
	// Prop supplies PRR(d), the link-probability curve (negative evidence).
	Prop radio.Propagation
	// Ranger supplies the measurement likelihood model.
	Ranger radio.Ranger
	// Loss is the packet-loss probability the distributed protocols face.
	Loss float64
	// Jitter is the per-delivery probability a message slips to the next
	// round (MAC backoff / clock skew).
	Jitter float64
}

// Validate checks the problem is internally consistent. Failures wrap
// wsnerr.ErrBadProblem.
func (p *Problem) Validate() error {
	bad := func(msg string) error {
		return fmt.Errorf("core: %w: %s", wsnerr.ErrBadProblem, msg)
	}
	switch {
	case p == nil:
		return bad("nil problem")
	case p.Deploy == nil || p.Graph == nil:
		return bad("problem missing deployment or graph")
	case p.Graph.N != p.Deploy.N():
		return bad("graph and deployment size mismatch")
	case p.R <= 0:
		return bad("nominal range must be positive")
	case p.Prop == nil || p.Ranger == nil:
		return bad("problem missing radio models")
	case p.Loss < 0 || p.Loss >= 1:
		return bad("loss must be in [0,1)")
	case p.Jitter < 0 || p.Jitter >= 1:
		return bad("jitter must be in [0,1)")
	}
	return nil
}

// AnchorPos returns the anchor id → position table visible to algorithms.
func (p *Problem) AnchorPos() map[int]mathx.Vec2 {
	out := make(map[int]mathx.Vec2, p.Deploy.NumAnchors())
	for _, id := range p.Deploy.AnchorIDs() {
		out[id] = p.Deploy.Pos[id]
	}
	return out
}

// Result is a localization outcome over all nodes.
type Result struct {
	// Est[i] is the position estimate for node i; anchors carry their known
	// position. Only meaningful where Localized[i].
	Est []mathx.Vec2
	// Localized[i] reports whether the algorithm produced an estimate for
	// node i (anchors always count).
	Localized []bool
	// Confidence[i] is an algorithm-specific uncertainty radius (meters);
	// ≤ 0 means "not reported".
	Confidence []float64
	// Rounds is the number of protocol rounds executed (0 for centralized
	// baselines).
	Rounds int
	// Stats is the simulated radio traffic (zero for centralized baselines
	// except where they model their flood phases).
	Stats sim.Stats
	// Convergence is the per-BP-iteration mean belief residual of BNCL runs
	// (empty for baselines): grid mode records the mean L1 belief change,
	// particle mode the mean estimate shift normalized by R — both on the
	// same scale the Config.Epsilon early-exit threshold tests. Entry k is
	// BP iteration k+1 (iteration 0 only initializes beliefs).
	Convergence []float64
}

// NewResult allocates a result for n nodes with anchors pre-filled from the
// problem.
func NewResult(p *Problem) *Result {
	n := p.Deploy.N()
	r := &Result{
		Est:        make([]mathx.Vec2, n),
		Localized:  make([]bool, n),
		Confidence: make([]float64, n),
	}
	for _, id := range p.Deploy.AnchorIDs() {
		r.Est[id] = p.Deploy.Pos[id]
		r.Localized[id] = true
	}
	return r
}

// Algorithm is a localization method under evaluation.
type Algorithm interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Localize solves the problem. Randomized algorithms must draw all
	// randomness from stream so runs are reproducible.
	Localize(p *Problem, stream *rng.Stream) (*Result, error)
}

// ContextAlgorithm is implemented by algorithms whose runs can be canceled
// or deadline-bounded mid-protocol. Long-running algorithms (BNCL, the DV
// family, MDS-MAP) implement it; instantaneous baselines need not.
type ContextAlgorithm interface {
	Algorithm
	// LocalizeCtx is Localize bounded by ctx: cancellation returns ctx's
	// error within one protocol round with no goroutine leaks, and an
	// uncanceled run is identical to Localize.
	LocalizeCtx(ctx context.Context, p *Problem, stream *rng.Stream) (*Result, error)
}

// LocalizeContext runs alg under ctx: algorithms implementing
// ContextAlgorithm are canceled mid-run at round granularity; for the rest
// (sub-millisecond centralized baselines) the context is checked before and
// after the uninterruptible solve, so a canceled context always yields
// ctx.Err() rather than a result computed after the caller gave up.
func LocalizeContext(ctx context.Context, alg Algorithm, p *Problem, stream *rng.Stream) (*Result, error) {
	if ca, ok := alg.(ContextAlgorithm); ok {
		return ca.LocalizeCtx(ctx, p, stream)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := alg.Localize(p, stream)
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	return res, err
}
