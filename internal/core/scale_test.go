package core

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/rng"
)

// Scale features — message censoring and belief support pruning — must obey
// the same contract as every other knob: for a fixed setting the run is
// bit-identical across worker counts (censoring is a pure function of the
// node-local residual history, pruning of the freshly recomputed posterior),
// and with both knobs off the engine is byte-identical to the pre-knob code.
// CI runs this package under -race, so the determinism tests double as the
// data-race check for the censored/pruned concurrent paths.

func localizeScaled(t *testing.T, mode Mode, workers int, censor, prune float64) *Result {
	t.Helper()
	p := testProblem(t, 55, 70, 0.15)
	p.Loss = 0.15
	p.Jitter = 0.1
	cfg := quickCfg(mode, AllPreKnowledge())
	cfg.Workers = workers
	cfg.Censor = censor
	cfg.Prune = prune
	res, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCensorPruneDeterministicAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		name          string
		mode          Mode
		censor, prune float64
	}{
		{"grid censor", GridMode, 0.05, 0},
		{"grid prune", GridMode, 0, 1e-3},
		{"grid both", GridMode, 0.05, 1e-3},
		{"particle censor", ParticleMode, 0.05, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := localizeScaled(t, tc.mode, 1, tc.censor, tc.prune)
			for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
				got := localizeScaled(t, tc.mode, workers, tc.censor, tc.prune)
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Errorf("workers=%d: stats diverged:\n got %+v\nwant %+v", workers, got.Stats, want.Stats)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: Result not byte-identical to sequential run", workers)
				}
			}
		})
	}
}

// TestCensoringReducesTraffic: with a censoring threshold in play, some
// broadcasts are suppressed (and counted), total traffic drops, and accuracy
// stays close to the knobs-off run.
func TestCensoringReducesTraffic(t *testing.T) {
	base := localizeScaled(t, GridMode, 1, 0, 0)
	cen := localizeScaled(t, GridMode, 1, 0.05, 0)

	if base.Stats.MessagesCensored != 0 {
		t.Errorf("knobs-off run censored %d messages, want 0", base.Stats.MessagesCensored)
	}
	if cen.Stats.MessagesCensored == 0 {
		t.Error("censored run suppressed no broadcasts")
	}
	if cen.Stats.MessagesSent >= base.Stats.MessagesSent {
		t.Errorf("censoring did not reduce traffic: %d msgs vs %d knobs-off",
			cen.Stats.MessagesSent, base.Stats.MessagesSent)
	}
	if cen.Stats.BytesSent >= base.Stats.BytesSent {
		t.Errorf("censoring did not reduce bytes: %d vs %d knobs-off",
			cen.Stats.BytesSent, base.Stats.BytesSent)
	}
	p := testProblem(t, 55, 70, 0.15)
	eBase, _ := meanError(p, base)
	eCen, cov := meanError(p, cen)
	if cov < 0.9 {
		t.Fatalf("censored run coverage %.2f too low", cov)
	}
	if d := math.Abs(eCen - eBase); d > 1.0 {
		t.Errorf("censoring moved mean error by %.2f m (%.2f vs %.2f)", d, eCen, eBase)
	}
}

// TestPruneAccuracyClose: mild support pruning must not change localization
// quality beyond grid-resolution noise.
func TestPruneAccuracyClose(t *testing.T) {
	base := localizeScaled(t, GridMode, 1, 0, 0)
	pr := localizeScaled(t, GridMode, 1, 0, 1e-3)
	p := testProblem(t, 55, 70, 0.15)
	eBase, _ := meanError(p, base)
	ePr, cov := meanError(p, pr)
	if cov < 0.9 {
		t.Fatalf("pruned run coverage %.2f too low", cov)
	}
	if d := math.Abs(ePr - eBase); d > 0.5 {
		t.Errorf("pruning moved mean error by %.2f m (%.2f vs %.2f)", d, ePr, eBase)
	}
}

// TestCensorRoundReactivation exercises the censor counter directly: a node
// goes quiet only after censorK consecutive sub-threshold rounds, and one
// above-threshold residual (a fresh message moved the belief) re-activates it
// immediately.
func TestCensorRoundReactivation(t *testing.T) {
	p := testProblem(t, 7, 30, 0.2)
	cfg := quickCfg(GridMode, NoPreKnowledge()).withDefaults()
	cfg.Censor = 0.05
	e := &env{
		p:    p,
		cfg:  cfg,
		grid: geom.NewGrid(p.Deploy.Region.Bounds(), cfg.GridNX, cfg.GridNY),
	}
	n := newGridNode(e, p.Deploy.UnknownIDs()[0])

	quiet, loud := 0.01, 0.2
	if n.censorRound(quiet) {
		t.Error("censored after one quiet round, want after", censorK)
	}
	if !n.censorRound(quiet) {
		t.Errorf("not censored after %d quiet rounds", censorK)
	}
	if !n.censorRound(quiet) {
		t.Error("censoring did not persist while quiet")
	}
	if n.censorRound(loud) {
		t.Error("above-threshold residual did not re-activate the node")
	}
	if n.censored != 0 {
		t.Errorf("loud round left censor counter at %d, want 0", n.censored)
	}
	if n.censorRound(quiet) {
		t.Error("re-censored after a single quiet round post-reactivation")
	}
}

// scaleProblem builds an n-node network at constant density (mean degree ≈ 10
// under the r=22 test radio), with ~2% anchors — the regime of the 20k–100k
// scale target, where the field grows as √n.
func scaleProblem(tb testing.TB, n int) *Problem {
	tb.Helper()
	side := 22.0 * math.Sqrt(float64(n)*math.Pi/10)
	return buildProblem(tb, uint64(1000+n), n, 0.02, geom.NewRect(0, 0, side, side))
}

// scaleCfg is the memory-lean configuration of the scale benchmark: a coarse
// grid and short schedules, the regime the censoring/pruning knobs target.
func scaleCfg(censor, prune float64) Config {
	return Config{
		Mode:      GridMode,
		GridNX:    24,
		GridNY:    24,
		HopRounds: 8,
		BPRounds:  10,
		PK:        AllPreKnowledge(),
		Censor:    censor,
		Prune:     prune,
	}
}

// BenchmarkNetworkScale is the headline scale number: full grid-mode BNCL
// localizations of constant-density networks from 1k to 20k nodes, knobs off
// vs the censor+prune setting. Custom metrics report the per-node costs the
// acceptance bar is written against: ns/node/round, bytes/node, and
// censored/node. The 20k case runs only with the knobs on — that is the
// configuration the scale target ships with.
func BenchmarkNetworkScale(b *testing.B) {
	type knob struct {
		name          string
		censor, prune float64
	}
	off := knob{"censor=off", 0, 0}
	on := knob{"censor=on", 0.5, 5e-2}
	cases := []struct {
		n     int
		knobs []knob
	}{
		{1000, []knob{off, on}},
		{5000, []knob{off, on}},
		{20000, []knob{on}},
	}
	for _, c := range cases {
		p := scaleProblem(b, c.n)
		for _, k := range c.knobs {
			b.Run(fmt.Sprintf("n=%d/%s", c.n, k.name), func(b *testing.B) {
				cfg := scaleCfg(k.censor, k.prune)
				b.ReportAllocs()
				b.ResetTimer()
				var rounds, bytes, censored int
				for i := 0; i < b.N; i++ {
					res, err := (&BNCL{Cfg: cfg}).Localize(p, rng.New(77))
					if err != nil {
						b.Fatal(err)
					}
					rounds += res.Rounds
					bytes += res.Stats.BytesSent
					censored += res.Stats.MessagesCensored
				}
				nodes := float64(c.n)
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(nodes*float64(rounds)), "ns/node/round")
				b.ReportMetric(float64(bytes)/(nodes*float64(b.N)), "bytes/node")
				b.ReportMetric(float64(censored)/(nodes*float64(b.N)), "censored/node")
			})
		}
	}
}
