package core

import (
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

func trackerFixture(t *testing.T, region geom.Region) (*Tracker, radio.Ranger) {
	t.Helper()
	ranger := radio.TOAGaussian{R: 20, SigmaFrac: 0.05}
	bounds := geom.NewRect(0, 0, 100, 100)
	tr, err := NewTracker(region, bounds, 50, 3, ranger)
	if err != nil {
		t.Fatal(err)
	}
	return tr, ranger
}

func TestTrackerValidation(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	rg := radio.TOAGaussian{R: 5, SigmaFrac: 0.1}
	if _, err := NewTracker(nil, bounds, 1, 1, rg); err == nil {
		t.Error("gridN=1 accepted")
	}
	if _, err := NewTracker(nil, bounds, 10, 0, rg); err == nil {
		t.Error("maxStep=0 accepted")
	}
	if _, err := NewTracker(nil, bounds, 10, 1, nil); err == nil {
		t.Error("nil ranger accepted")
	}
	// Region disjoint from bounds.
	far := geom.NewRect(500, 500, 600, 600)
	if _, err := NewTracker(far, bounds, 10, 1, rg); err == nil {
		t.Error("disjoint region accepted")
	}
}

func TestTrackerFollowsTarget(t *testing.T) {
	tr, ranger := trackerFixture(t, nil)
	refs := []mathx.Vec2{{X: 10, Y: 10}, {X: 90, Y: 10}, {X: 10, Y: 90}, {X: 90, Y: 90}, {X: 50, Y: 50}}
	stream := rng.New(1)
	rw := topology.RandomWaypoint{Region: geom.NewRect(10, 10, 90, 90), SpeedMin: 1, SpeedMax: 2.5}
	trace := rw.Trace(mathx.V2(50, 50), 60, stream.Split(1))

	var errSum float64
	var steps int
	for i, truth := range trace {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		est, spread := tr.Step(obs)
		if spread < 0 {
			t.Fatal("negative spread")
		}
		if i >= 5 { // allow burn-in
			errSum += est.Dist(truth)
			steps++
		}
	}
	mean := errSum / float64(steps)
	t.Logf("tracking mean error %.2f m", mean)
	if mean > 3 {
		t.Errorf("tracking error %.2f m too high", mean)
	}
}

func TestTrackerDiffusesWithoutObservations(t *testing.T) {
	tr, ranger := trackerFixture(t, nil)
	stream := rng.New(2)
	truth := mathx.V2(40, 60)
	refs := []mathx.Vec2{{X: 10, Y: 10}, {X: 90, Y: 10}, {X: 50, Y: 90}}
	for i := 0; i < 8; i++ {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		tr.Step(obs)
	}
	_, s0 := tr.Step(nil) // no observations: spread must grow
	_, s1 := tr.Step(nil)
	_, s2 := tr.Step(nil)
	if !(s2 > s1 && s1 > s0) {
		t.Errorf("spread did not grow: %v, %v, %v", s0, s1, s2)
	}
}

func TestTrackerRegionPriorConstrains(t *testing.T) {
	region := geom.Corridor(geom.NewRect(0, 0, 100, 100), 0.2)
	tr, _ := trackerFixture(t, region)
	// With no observations at all, the estimate must stay in the corridor.
	est, _ := tr.Step(nil)
	if est.Y < 35 || est.Y > 65 {
		t.Errorf("estimate %v escaped corridor prior", est)
	}
	// Even after updates the belief respects the mask.
	ranger := radio.TOAGaussian{R: 20, SigmaFrac: 0.05}
	truth := mathx.V2(30, 50)
	stream := rng.New(3)
	refs := []mathx.Vec2{{X: 10, Y: 50}, {X: 60, Y: 50}, {X: 30, Y: 42}}
	for i := 0; i < 5; i++ {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		tr.Step(obs)
	}
	b := tr.Belief()
	outMass := 0.0
	for idx, w := range b.W {
		if !region.Contains(b.Grid.CenterIdx(idx)) {
			outMass += w
		}
	}
	if outMass > 1e-9 {
		t.Errorf("posterior mass outside region: %v", outMass)
	}
}

func TestTrackerRecoversFromContradiction(t *testing.T) {
	tr, ranger := trackerFixture(t, nil)
	stream := rng.New(4)
	truth := mathx.V2(50, 50)
	refs := []mathx.Vec2{{X: 10, Y: 10}, {X: 90, Y: 10}, {X: 50, Y: 90}}
	for i := 0; i < 5; i++ {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		tr.Step(obs)
	}
	// A wildly contradictory observation must not wipe out the belief.
	est, _ := tr.Step([]RangeObs{{From: mathx.V2(50, 50), Meas: 500}})
	if !est.IsFinite() {
		t.Fatal("non-finite estimate after contradiction")
	}
	if est.Dist(truth) > 15 {
		t.Errorf("estimate jumped to %v after contradictory obs", est)
	}
}

func TestTrackerReset(t *testing.T) {
	tr, ranger := trackerFixture(t, nil)
	stream := rng.New(5)
	truth := mathx.V2(20, 20)
	refs := []mathx.Vec2{{X: 10, Y: 10}, {X: 90, Y: 10}, {X: 50, Y: 90}}
	for i := 0; i < 5; i++ {
		var obs []RangeObs
		for _, ref := range refs {
			obs = append(obs, RangeObs{From: ref, Meas: ranger.Measure(truth.Dist(ref), stream)})
		}
		tr.Step(obs)
	}
	concentrated := tr.Belief().Spread()
	tr.Reset()
	if tr.Belief().Spread() <= concentrated {
		t.Error("reset did not restore the diffuse prior")
	}
}
