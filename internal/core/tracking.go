package core

import (
	"errors"

	"wsnloc/internal/bayes"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
)

// Tracker is the sequential (single-target) extension of the Bayesian
// localization model: a mobile node's position is tracked by a grid-based
// Bayesian filter that alternates a random-walk motion prediction with a
// ranging-measurement update against reference nodes (anchors, or statics
// previously localized by BNCL). Pre-knowledge enters exactly as in BNCL:
// the deployment region masks the belief at every step.
type Tracker struct {
	grid    *geom.Grid
	region  geom.Region
	ranger  radio.Ranger
	motion  *bayes.RadialKernel
	belief  *bayes.Belief
	prior   *bayes.Belief
	maxStep float64
}

// RangeObs is one ranging observation from a reference node at a (believed)
// position.
type RangeObs struct {
	From mathx.Vec2
	Meas float64
}

// NewTracker builds a tracker over the region discretized at gridN×gridN.
// maxStep is the mobile's maximum displacement per step (meters); ranger is
// the measurement model. region may be nil to disable the map prior (the
// grid then spans bounds).
func NewTracker(region geom.Region, bounds geom.Rect, gridN int, maxStep float64, ranger radio.Ranger) (*Tracker, error) {
	if gridN <= 1 {
		return nil, errors.New("core: tracker needs gridN > 1")
	}
	if maxStep <= 0 {
		return nil, errors.New("core: tracker needs positive maxStep")
	}
	if ranger == nil {
		return nil, errors.New("core: tracker needs a ranging model")
	}
	g := geom.NewGrid(bounds, gridN, gridN)
	t := &Tracker{grid: g, region: region, ranger: ranger, maxStep: maxStep}

	// Random-walk motion kernel: near-uniform within one step, Gaussian
	// shoulder beyond (the mobile occasionally overshoots its nominal max).
	sigma := maxStep / 2
	t.motion = bayes.NewRadialKernel(g, func(d float64) float64 {
		if d <= maxStep {
			return 1
		}
		return mathx.NormalPDF(d-maxStep, 0, sigma) / mathx.NormalPDF(0, 0, sigma)
	}, maxStep+3*sigma, 0)

	prior := bayes.NewUniform(g)
	if region != nil {
		prior.MulFunc(func(p mathx.Vec2) float64 {
			if region.Contains(p) {
				return 1
			}
			return 0
		})
		if !prior.Normalize() {
			return nil, errors.New("core: tracking region has no overlap with bounds")
		}
	}
	t.prior = prior
	t.belief = prior.Clone()
	return t, nil
}

// Reset returns the tracker to its prior (e.g. after losing the target).
func (t *Tracker) Reset() { t.belief = t.prior.Clone() }

// Belief exposes the current posterior (read-only).
func (t *Tracker) Belief() *bayes.Belief { return t.belief }

// Step advances one time step: motion prediction followed by a measurement
// update with the given observations (which may be empty — the filter then
// just diffuses). It returns the posterior-mean estimate and its spread.
func (t *Tracker) Step(obs []RangeObs) (est mathx.Vec2, spread float64) {
	// Predict: diffuse by the motion kernel, re-apply the map prior.
	pred := t.motion.Convolve(t.belief)
	if t.region != nil {
		pred.MulFunc(func(p mathx.Vec2) float64 {
			if t.region.Contains(p) {
				return 1
			}
			return 0
		})
	}
	if !pred.Normalize() {
		pred = t.prior.Clone()
	}

	// Update: multiply in each ranging likelihood.
	for _, o := range obs {
		o := o
		pred.MulFunc(func(p mathx.Vec2) float64 {
			return t.ranger.Likelihood(o.Meas, p.Dist(o.From))
		})
		if !pred.Normalize() {
			// Contradictory measurement (e.g. reference position is badly
			// wrong): drop the update, keep the prediction.
			pred = t.motion.Convolve(t.belief)
			pred.Normalize()
		}
	}
	t.belief = pred
	return t.belief.Mean(), t.belief.Spread()
}
