package core

import (
	"testing"

	"wsnloc/internal/bayes"
	"wsnloc/internal/geom"
	"wsnloc/internal/radio"
)

func testEnv(t *testing.T) *env {
	t.Helper()
	p := testProblem(t, 200, 40, 0.2)
	return &env{
		p:    p,
		cfg:  Config{}.withDefaults(),
		grid: geom.NewGrid(p.Deploy.Region.Bounds(), 40, 40),
	}
}

func TestKernelCacheQuantizesAndShares(t *testing.T) {
	e := testEnv(t)
	kc := newKernelCache(e)
	// Measurements within half a cell map to the same kernel object.
	k1 := kc.forMeasurement(10.0)
	k2 := kc.forMeasurement(10.0 + kc.quant/4)
	if k1 != k2 {
		t.Error("nearby measurements did not share a kernel")
	}
	// Distant measurements get distinct kernels.
	k3 := kc.forMeasurement(15.0)
	if k1 == k3 {
		t.Error("distinct measurements shared a kernel")
	}
	if len(kc.table) != 2 {
		t.Errorf("cache size = %d", len(kc.table))
	}
	// Repeated lookups do not grow the cache.
	kc.forMeasurement(10.0)
	kc.forMeasurement(15.0)
	if len(kc.table) != 2 {
		t.Errorf("cache grew on repeat lookups: %d", len(kc.table))
	}
}

func TestKernelCacheKernelShape(t *testing.T) {
	e := testEnv(t)
	kc := newKernelCache(e)
	k := kc.forMeasurement(12.0)
	if k.Size() == 0 {
		t.Fatal("empty kernel")
	}
	// The kernel support must cover at least the measured ring: radius in
	// cells ≈ meas/cellW; its offset count is roughly the ring area.
	if k.Size() < 8 {
		t.Errorf("kernel suspiciously small: %d offsets", k.Size())
	}
}

func TestKernelCacheHopRangerWidens(t *testing.T) {
	// For a connectivity-only ranger the kernel must span the whole radio
	// range even though Sigma is small relative to R.
	p := testProblem(t, 201, 40, 0.2)
	hop := radio.HopRanger{R: p.R}
	p.Ranger = hop
	e := &env{p: p, cfg: Config{}.withDefaults(), grid: geom.NewGrid(p.Deploy.Region.Bounds(), 40, 40)}
	kc := newKernelCache(e)
	kHop := kc.forMeasurement(p.R)

	// Compare against a sharp TOA kernel at the same distance.
	p2 := testProblem(t, 201, 40, 0.2)
	e2 := &env{p: p2, cfg: Config{}.withDefaults(), grid: geom.NewGrid(p2.Deploy.Region.Bounds(), 40, 40)}
	kc2 := newKernelCache(e2)
	kTOA := kc2.forMeasurement(p2.R)

	// The hop kernel is a filled disk (any in-range distance is plausible):
	// convolving an anchor delta must leave mass near the anchor. The TOA
	// kernel is a ring: near-anchor mass must be negligible.
	center := e.grid.Bounds().Center()
	nearMass := func(k *bayes.RadialKernel, g *geom.Grid) float64 {
		msg := k.Convolve(bayes.NewDelta(g, center))
		if !msg.Normalize() {
			t.Fatal("empty message")
		}
		m := 0.0
		for idx, w := range msg.W {
			if g.CenterIdx(idx).Dist(center) < 0.25*p.R {
				m += w
			}
		}
		return m
	}
	if got := nearMass(kHop, e.grid); got < 0.005 {
		t.Errorf("hop kernel near-anchor mass = %v, want disk coverage", got)
	}
	if got := nearMass(kTOA, e2.grid); got > 1e-4 {
		t.Errorf("TOA kernel near-anchor mass = %v, want ring", got)
	}
}

func TestIsFlatRanger(t *testing.T) {
	if !isFlatRanger(radio.HopRanger{R: 10}) {
		t.Error("HopRanger not detected as flat")
	}
	if isFlatRanger(radio.TOAGaussian{R: 10, SigmaFrac: 0.1}) {
		t.Error("TOA detected as flat")
	}
}
