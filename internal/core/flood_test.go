package core

import (
	"testing"

	"wsnloc/internal/geom"
	"wsnloc/internal/rng"
	"wsnloc/internal/sim"
)

// buildFloodNodes wires gridNodes onto a network without running BP, so the
// flood phase can be inspected in isolation.
func buildFloodNodes(t *testing.T, p *Problem, hopRounds int, loss float64) []*gridNode {
	t.Helper()
	cfg := Config{HopRounds: hopRounds, BPRounds: 1, GridNX: 10, GridNY: 10, PK: AllPreKnowledge()}.withDefaults()
	cfg.HopRounds = hopRounds
	e := &env{
		p:           p,
		cfg:         cfg,
		grid:        geom.NewGrid(p.Deploy.Region.Bounds(), cfg.GridNX, cfg.GridNY),
		nodeStreams: make([]*rng.Stream, p.Deploy.N()),
	}
	e.kernels = newKernelCache(e)
	stream := rng.New(55)
	for i := range e.nodeStreams {
		e.nodeStreams[i] = stream.Split(uint64(i))
	}
	nodes := make([]*gridNode, p.Deploy.N())
	programs := make([]sim.Node, p.Deploy.N())
	for i := range nodes {
		nodes[i] = newGridNode(e, i)
		programs[i] = nodes[i]
	}
	net, err := sim.NewNetwork(p.Graph, programs, sim.Config{Loss: loss, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Run the flood phase only.
	if _, err := net.Run(hopRounds); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestFloodMatchesBFS(t *testing.T) {
	p := testProblem(t, 400, 90, 0.12)
	nodes := buildFloodNodes(t, p, 25, 0)

	anchorIDs := p.Deploy.AnchorIDs()
	want := p.Graph.HopCounts(anchorIDs)
	for i, node := range nodes {
		for k, a := range anchorIDs {
			bfs := want[i][k]
			got, ok := node.hopTable[a]
			switch {
			case bfs == -1:
				if ok {
					t.Fatalf("node %d learned unreachable anchor %d", i, a)
				}
			case i == a:
				if got.hops != 0 {
					t.Fatalf("anchor %d self-hop = %d", a, got.hops)
				}
			default:
				if !ok {
					t.Fatalf("node %d missing anchor %d (bfs %d)", i, a, bfs)
				}
				if got.hops != bfs {
					t.Fatalf("node %d anchor %d: flood %d vs BFS %d", i, a, got.hops, bfs)
				}
				if got.pos != p.Deploy.Pos[a] {
					t.Fatalf("node %d anchor %d: position corrupted", i, a)
				}
			}
		}
	}
}

func TestFloodUnderLossIsConservative(t *testing.T) {
	// With packet loss the flood may learn longer-than-BFS hop counts or
	// miss anchors entirely, but must never report a count SHORTER than the
	// true BFS distance (that would fabricate information).
	p := testProblem(t, 401, 70, 0.15)
	nodes := buildFloodNodes(t, p, 25, 0.3)
	anchorIDs := p.Deploy.AnchorIDs()
	want := p.Graph.HopCounts(anchorIDs)
	for i, node := range nodes {
		for k, a := range anchorIDs {
			got, ok := node.hopTable[a]
			if !ok {
				continue
			}
			if bfs := want[i][k]; bfs >= 0 && got.hops < bfs && i != a {
				t.Fatalf("node %d anchor %d: flood %d < BFS %d under loss", i, a, got.hops, bfs)
			}
		}
	}
}

func TestFloodQuiescesEarly(t *testing.T) {
	// The flood's traffic must stop once hop counts stabilize: running many
	// extra rounds adds no messages.
	p := testProblem(t, 402, 60, 0.15)
	cfgRounds := 40
	nodes := buildFloodNodes(t, p, cfgRounds, 0)
	// Count total flood transmissions: every node broadcast at most once
	// per improvement; with n nodes and a anchors, improvements are bounded
	// by n·a.
	_ = nodes
	// Rebuild with a tight round budget and verify identical tables.
	nodesTight := buildFloodNodes(t, p, 14, 0)
	for i := range nodes {
		if len(nodes[i].hopTable) != len(nodesTight[i].hopTable) {
			t.Fatalf("node %d: %d vs %d anchors between budgets", i,
				len(nodes[i].hopTable), len(nodesTight[i].hopTable))
		}
		for a, ah := range nodes[i].hopTable {
			if nodesTight[i].hopTable[a].hops != ah.hops {
				t.Fatalf("node %d anchor %d differs between budgets", i, a)
			}
		}
	}
}
