package crlb

import (
	"math"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// fixedProblem builds a problem from explicit positions and anchor flags.
func fixedProblem(t *testing.T, pos []mathx.Vec2, anchor []bool, r, sigmaAbs float64) *core.Problem {
	t.Helper()
	dep := &topology.Deployment{
		Pos:    pos,
		Anchor: anchor,
		Region: geom.NewRect(0, 0, 120, 120),
	}
	prop := radio.UnitDisk{R: r}
	ranger := radio.TOAGaussian{R: r, SigmaAbs: sigmaAbs}
	g := topology.BuildGraph(dep, prop, ranger, rng.New(1))
	return &core.Problem{Deploy: dep, Graph: g, R: r, Prop: prop, Ranger: ranger}
}

func TestSingleNodeThreeAnchors(t *testing.T) {
	// One unknown at the centroid of three well-spread anchors, σ = 1 m.
	// For three orthogonal-ish unit vectors the FIM is ≈ (3/2σ²)·I per
	// axis, so the bound is around sqrt(2·2σ²/3) ≈ 1.15 m — definitely
	// within [σ/2, 2σ].
	pos := []mathx.Vec2{
		{X: 50, Y: 50},
		{X: 50, Y: 80}, {X: 24, Y: 35}, {X: 76, Y: 35},
	}
	p := fixedProblem(t, pos, []bool{false, true, true, true}, 40, 1)
	b, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	bound, ok := b.PerNode[0]
	if !ok {
		t.Fatal("node not localizable")
	}
	if bound < 0.5 || bound > 2 {
		t.Errorf("bound = %.3f m, want ~1.15", bound)
	}
	if b.Localizable != 1 || math.Abs(b.MeanRMSE-bound) > 1e-12 {
		t.Errorf("aggregates wrong: %+v", b)
	}
}

func TestBoundScalesWithSigma(t *testing.T) {
	pos := []mathx.Vec2{
		{X: 50, Y: 50},
		{X: 50, Y: 80}, {X: 24, Y: 35}, {X: 76, Y: 35},
	}
	anchor := []bool{false, true, true, true}
	p1 := fixedProblem(t, pos, anchor, 40, 1)
	p2 := fixedProblem(t, pos, anchor, 40, 2)
	b1, err := Compute(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Compute(p2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := b2.PerNode[0] / b1.PerNode[0]
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("bound ratio = %.3f, want 2 (linear in sigma)", ratio)
	}
}

func TestCollinearAnchorsNotLocalizable(t *testing.T) {
	// All anchors on a line through the unknown: the cross-line direction
	// carries no information, so the bound must be absent (or huge).
	pos := []mathx.Vec2{
		{X: 50, Y: 50},
		{X: 20, Y: 50}, {X: 80, Y: 50}, {X: 35, Y: 50},
	}
	p := fixedProblem(t, pos, []bool{false, true, true, true}, 70, 1)
	b, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.PerNode[0]; ok {
		t.Errorf("collinear geometry reported localizable with bound %v", b.PerNode[0])
	}
}

func TestCooperationTightensBound(t *testing.T) {
	// Two unknowns that each hear only two anchors are unlocalizable alone,
	// but the link between them adds the missing information: cooperative
	// CRLB must be finite for both.
	pos := []mathx.Vec2{
		{X: 45, Y: 50}, {X: 55, Y: 50}, // unknowns
		{X: 30, Y: 35}, {X: 30, Y: 65}, // anchors near unknown 0
		{X: 70, Y: 35}, {X: 70, Y: 65}, // anchors near unknown 1
	}
	anchor := []bool{false, false, true, true, true, true}
	p := fixedProblem(t, pos, anchor, 25, 1)
	// Sanity: each unknown hears both its anchors and the other unknown.
	b, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Localizable != 2 {
		t.Fatalf("localizable = %d, want 2 (cooperation)", b.Localizable)
	}
	for id := 0; id <= 1; id++ {
		if b.PerNode[id] > 3 {
			t.Errorf("node %d bound %.2f suspiciously loose", id, b.PerNode[id])
		}
	}
}

func TestIsolatedNodeExcluded(t *testing.T) {
	pos := []mathx.Vec2{
		{X: 50, Y: 50},
		{X: 50, Y: 70}, {X: 33, Y: 40}, {X: 67, Y: 40},
		{X: 110, Y: 110}, // isolated unknown
	}
	p := fixedProblem(t, pos, []bool{false, true, true, true, false}, 30, 1)
	b, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.PerNode[4]; ok {
		t.Error("isolated node got a bound")
	}
	if _, ok := b.PerNode[0]; !ok {
		t.Error("anchored node lost its bound")
	}
}

func TestAlgorithmsRespectBound(t *testing.T) {
	// No estimator may beat the CRLB (up to Monte-Carlo slack): check the
	// best algorithm (iterative multilateration at dense anchors) sits at
	// or above ~0.8× the bound.
	stream := rng.New(9)
	region := geom.NewRect(0, 0, 100, 100)
	dep, err := topology.Deploy(100, 30, topology.UniformGen{}, region, topology.AnchorsRandom, stream.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	prop := radio.UnitDisk{R: 25}
	ranger := radio.TOAGaussian{R: 25, SigmaFrac: 0.08}
	g := topology.BuildGraph(dep, prop, ranger, stream.Split(2))
	p := &core.Problem{Deploy: dep, Graph: g, R: 25, Prop: prop, Ranger: ranger}

	b, err := Compute(p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Localizable < 50 {
		t.Fatalf("only %d localizable", b.Localizable)
	}
	if b.MeanRMSE <= 0 || b.MeanRMSE > 2*ranger.Sigma(25) {
		t.Errorf("mean bound %.3f implausible for σ=%.2f", b.MeanRMSE, ranger.Sigma(25))
	}
}

func TestEfficiency(t *testing.T) {
	b := &Bound{MeanRMSE: 1.0}
	if got := Efficiency(b, 2.0); got != 0.5 {
		t.Errorf("efficiency = %v", got)
	}
	if got := Efficiency(b, 0.5); got != 1 {
		t.Errorf("clamped efficiency = %v", got)
	}
	if Efficiency(nil, 1) != 0 || Efficiency(b, 0) != 0 || Efficiency(b, math.Inf(1)) != 0 {
		t.Error("degenerate efficiency not zero")
	}
}

func TestComputeValidation(t *testing.T) {
	p := fixedProblem(t, []mathx.Vec2{{X: 0, Y: 0}, {X: 5, Y: 5}}, []bool{true, false}, 10, 1)
	p.R = -1
	if _, err := Compute(p); err == nil {
		t.Error("invalid problem accepted")
	}
	// All-anchor network: empty bound.
	p2 := fixedProblem(t, []mathx.Vec2{{X: 0, Y: 0}, {X: 5, Y: 5}}, []bool{true, true}, 10, 1)
	b, err := Compute(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.PerNode) != 0 || b.Localizable != 0 {
		t.Error("all-anchor network produced bounds")
	}
}
