// Package crlb computes the Cramér-Rao lower bound for cooperative
// localization: the best RMSE any unbiased estimator can achieve on a given
// network, measurement model, and anchor set. The evaluation uses it as the
// gold-standard reference curve — an algorithm's gap to the CRLB is the
// honest measure of its statistical efficiency.
//
// Model: for a measured link (i, j) with distance likelihood of standard
// deviation σ(d), the Fisher information about the positions is the rank-one
// block (1/σ²)·u·uᵀ on the 2×2 diagonal blocks of i and j and its negative
// on the cross blocks, where u is the unit vector from j to i (Patwari et
// al. 2003). Anchors have no uncertainty, so their rows and columns are
// removed. The bound for unknown i is sqrt(trace of the 2×2 block of F⁻¹).
package crlb

import (
	"fmt"
	"math"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
	"wsnloc/internal/wsnerr"
)

// Bound holds the per-node and aggregate lower bounds, in meters.
type Bound struct {
	// PerNode maps each unknown node id to its position-error lower bound
	// sqrt(CRLB_x + CRLB_y); nodes whose information matrix is singular
	// (not localizable even in principle) are absent.
	PerNode map[int]float64
	// MeanRMSE is the average of the per-node bounds.
	MeanRMSE float64
	// Localizable is the count of unknowns with a finite bound.
	Localizable int
}

// Compute evaluates the CRLB for the problem's ranging graph. It uses the
// true positions (a bound is a property of the geometry, not of any
// estimator) and the ranging model's σ(d).
//
// Unknowns in components without enough anchor information make the global
// FIM singular; Compute handles this by computing the bound per connected
// localizable subproblem and reporting only nodes with finite bounds.
func Compute(p *core.Problem) (*Bound, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	unknowns := p.Deploy.UnknownIDs()
	if len(unknowns) == 0 {
		return &Bound{PerNode: map[int]float64{}}, nil
	}
	// Index unknowns into the FIM.
	idx := make(map[int]int, len(unknowns))
	for k, id := range unknowns {
		idx[id] = k
	}
	dim := 2 * len(unknowns)
	f := mathx.NewMat(dim, dim)

	for _, l := range p.Graph.Links {
		d := l.TrueDist
		if d <= 0 {
			continue
		}
		sigma := p.Ranger.Sigma(d)
		if sigma <= 0 {
			continue
		}
		w := 1 / (sigma * sigma)
		u := p.Deploy.Pos[l.A].Sub(p.Deploy.Pos[l.B]).Scale(1 / d)
		j11 := w * u.X * u.X
		j12 := w * u.X * u.Y
		j22 := w * u.Y * u.Y

		ia, aUnknown := idx[l.A]
		ib, bUnknown := idx[l.B]
		if aUnknown {
			addBlock(f, 2*ia, 2*ia, j11, j12, j22, +1)
		}
		if bUnknown {
			addBlock(f, 2*ib, 2*ib, j11, j12, j22, +1)
		}
		if aUnknown && bUnknown {
			addBlock(f, 2*ia, 2*ib, j11, j12, j22, -1)
			addBlock(f, 2*ib, 2*ia, j11, j12, j22, -1)
		}
	}

	// Regularize the singular directions so inversion succeeds, then detect
	// unbounded nodes by their (huge) inflated variance. The regularizer
	// corresponds to an extremely weak prior (σ₀ = 10⁴ m) that perturbs
	// well-determined nodes by < 10⁻⁴ m.
	const priorVar = 1e8
	for i := 0; i < dim; i++ {
		f.AddAt(i, i, 1/priorVar)
	}
	inv, err := mathx.InvertSPD(f)
	if err != nil {
		return nil, fmt.Errorf("crlb: %w: information matrix not invertible", wsnerr.ErrDisconnected)
	}

	b := &Bound{PerNode: make(map[int]float64, len(unknowns))}
	sum := 0.0
	for _, id := range unknowns {
		k := idx[id]
		v := inv.At(2*k, 2*k) + inv.At(2*k+1, 2*k+1)
		if v <= 0 || math.IsNaN(v) {
			continue
		}
		bound := math.Sqrt(v)
		// A bound within an order of magnitude of the prior's scale means
		// the geometry, not the measurements, is doing the work: the node
		// is not localizable.
		if bound > 0.01*math.Sqrt(priorVar) {
			continue
		}
		b.PerNode[id] = bound
		sum += bound
		b.Localizable++
	}
	if b.Localizable > 0 {
		b.MeanRMSE = sum / float64(b.Localizable)
	}
	return b, nil
}

// addBlock accumulates sign·J into the 2×2 block at (r, c).
func addBlock(f *mathx.Mat, r, c int, j11, j12, j22 float64, sign float64) {
	f.AddAt(r, c, sign*j11)
	f.AddAt(r, c+1, sign*j12)
	f.AddAt(r+1, c, sign*j12)
	f.AddAt(r+1, c+1, sign*j22)
}

// Efficiency returns the ratio bound/actual ∈ (0, 1] for an algorithm's
// measured RMSE against the scenario's mean CRLB; 1 means the estimator is
// statistically efficient. Returns 0 when either input is degenerate.
func Efficiency(bound *Bound, actualRMSE float64) float64 {
	if bound == nil || bound.MeanRMSE <= 0 || actualRMSE <= 0 || math.IsInf(actualRMSE, 0) {
		return 0
	}
	e := bound.MeanRMSE / actualRMSE
	if e > 1 {
		e = 1
	}
	return e
}
