package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/exec"
	"wsnloc/internal/obs"
	"wsnloc/internal/sweep"
)

// testServer builds a Server plus an httptest front end; both are torn down
// with the test.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var testSpecJSON = []byte(`{"scenario":{"N":40,"Field":60,"AnchorFrac":0.25,"Seed":3},"algorithm":"centroid","seed":7}`)

// TestSolveByteIdenticalToRunSpec pins the service contract: the bytes
// POST /v1/solve returns are exactly EncodeSolveResponse over a direct
// in-process run of the same spec.
func TestSolveByteIdenticalToRunSpec(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}})
	resp := postJSON(t, ts.URL+"/v1/solve", testSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, readBody(t, resp))
	}
	if got := resp.Header.Get("X-Wsnloc-Cache"); got != "miss" {
		t.Errorf("first request cache header = %q, want miss", got)
	}
	got := readBody(t, resp)

	sp, hash, err := decodeSolveBody(testSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	p, res, err := sp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeSolveResponse(hash, sp, p, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service bytes differ from direct run:\ngot  %s\nwant %s", got, want)
	}
}

// TestSolveMemoHitByteIdentical pins the cross-request memo: resubmitting
// an identical spec — even formatted differently — returns the exact bytes
// of the first response, flagged as a cache hit.
func TestSolveMemoHitByteIdentical(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}})
	first := postJSON(t, ts.URL+"/v1/solve", testSpecJSON)
	firstBytes := readBody(t, first)

	// Same content, different JSON formatting and key order.
	reformatted := []byte(`{"seed":7,"algorithm":"centroid","scenario":{"Seed":3,"N":40,"AnchorFrac":0.25,"Field":60}}`)
	second := postJSON(t, ts.URL+"/v1/solve", reformatted)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", second.StatusCode)
	}
	if got := second.Header.Get("X-Wsnloc-Cache"); got != "hit" {
		t.Errorf("second request cache header = %q, want hit", got)
	}
	if got := readBody(t, second); !bytes.Equal(got, firstBytes) {
		t.Fatalf("memo hit returned different bytes:\nfirst  %s\nsecond %s", firstBytes, got)
	}
}

var testSweepJSON = []byte(`{"scenarios":[{"N":30,"Field":50,"AnchorFrac":0.3,"Seed":1}],"algorithms":["centroid","dv-hop"],"seeds":[1,2],"trials":2}`)

// TestSweepMemoHitByteIdentical is the acceptance criterion: a repeated
// sweep spec answers from the memo with byte-identical cached bytes.
func TestSweepMemoHitByteIdentical(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, CacheDir: t.TempDir()})
	first := postJSON(t, ts.URL+"/v1/sweep", testSweepJSON)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", first.StatusCode, readBody(t, first))
	}
	if got := first.Header.Get("X-Wsnloc-Cache"); got != "miss" {
		t.Errorf("first sweep cache header = %q, want miss", got)
	}
	firstBytes := readBody(t, first)

	var doc SweepResponse
	if err := json.Unmarshal(firstBytes, &doc); err != nil {
		t.Fatalf("sweep response is not valid JSON: %v", err)
	}
	if len(doc.Summary.Cells) != 4 {
		t.Errorf("summary cells = %d, want 4 (2 algorithms × 2 seeds)", len(doc.Summary.Cells))
	}

	second := postJSON(t, ts.URL+"/v1/sweep", testSweepJSON)
	if got := second.Header.Get("X-Wsnloc-Cache"); got != "hit" {
		t.Errorf("second sweep cache header = %q, want hit", got)
	}
	if got := readBody(t, second); !bytes.Equal(got, firstBytes) {
		t.Fatal("repeated sweep returned different bytes")
	}
}

// TestSweepMatchesDirectRun pins that the service's sweep summary equals a
// direct in-process sweep of the same document.
func TestSweepMatchesDirectRun(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}})
	resp := postJSON(t, ts.URL+"/v1/sweep", testSweepJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	got := readBody(t, resp)

	sw, err := sweep.ParseSpec(testSweepJSON)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(sw, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := sweepHash(sw)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeSweepResponse(hash, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service sweep bytes differ from direct run:\ngot  %s\nwant %s", got, want)
	}
}

// TestQueueFull429 pins the backpressure contract: with every worker busy
// and the admission queue full, a new request is refused with 429 and a
// Retry-After header — not buffered, not hung.
func TestQueueFull429(t *testing.T) {
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 1, QueueDepth: 1}})

	// Saturate: one blocking job occupies the worker, one more fills the
	// FIFO queue.
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := func(ctx context.Context, tr obs.Tracer) error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil
	}
	defer close(release)
	j1, err := s.Pool().Submit(context.Background(), "blocker", nil, blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now occupied
	j2, err := s.Pool().Submit(context.Background(), "queued", nil, blocker)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/solve", testSpecJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("429 without Retry-After header")
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
		t.Errorf("429 body is not an error envelope: %s", body)
	}

	// Draining the saturation restores service.
	release <- struct{}{}
	release <- struct{}{}
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.URL+"/v1/solve", testSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: status = %d, want 200", resp.StatusCode)
	}
	readBody(t, resp)
}

// TestShutdownRefusesNewWork pins the drain semantics: after Shutdown
// begins, new requests get 503 while already-accepted jobs complete.
func TestShutdownRefusesNewWork(t *testing.T) {
	s, err := New(Config{Pool: exec.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	started := make(chan struct{}, 1)
	job, err := s.Pool().Submit(context.Background(), "inflight", nil, func(ctx context.Context, tr obs.Tracer) error {
		started <- struct{}{}
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.Closing() })

	resp := postJSON(t, ts.URL+"/v1/solve", testSpecJSON)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status during drain = %d, want 503", resp.StatusCode)
	}
	readBody(t, resp)

	close(release) // let the accepted job finish; Shutdown must return nil
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatalf("in-flight job: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAsyncJobFlow exercises ?async=1: 202 with a job id, then polling
// GET /v1/jobs/{id} until done, with the result document embedded.
func TestAsyncJobFlow(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}})
	resp := postJSON(t, ts.URL+"/v1/solve?async=1", testSpecJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202; body %s", resp.StatusCode, body)
	}
	var acc struct {
		JobID     string `json:"job_id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &acc); err != nil || acc.JobID == "" {
		t.Fatalf("202 body: %s", body)
	}

	var st JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + acc.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readBody(t, r), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" || st.State == "error" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job state = %q (%s), want done", st.State, st.Error)
	}
	var doc SolveResponse
	if err := json.Unmarshal(st.Result, &doc); err != nil {
		t.Fatalf("job result is not a solve response: %v", err)
	}
	if doc.Algorithm != "centroid" {
		t.Errorf("result algorithm = %q, want centroid", doc.Algorithm)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}, MaxBodyBytes: 512})
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", "/v1/solve", `{"algorithm":`, http.StatusBadRequest},
		{"unknown algorithm", "/v1/solve", `{"algorithm":"nope"}`, http.StatusBadRequest},
		{"absurd node count", "/v1/solve", fmt.Sprintf(`{"algorithm":"centroid","scenario":{"N":%d}}`, alg.MaxNodes+1), http.StatusBadRequest},
		{"oversized body", "/v1/solve", `{"pad":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge},
		{"sweep without algorithms", "/v1/sweep", `{"scenarios":[{"N":30}]}`, http.StatusBadRequest},
		{"get on solve", "/v1/solve", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.name == "get on solve" {
				resp, err = http.Get(ts.URL + tc.path)
			} else {
				resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			body := readBody(t, resp)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.want, body)
			}
			var env struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
				t.Errorf("error body is not an envelope: %s", body)
			}
		})
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}})
	resp, err := http.Get(ts.URL + "/v1/jobs/not-a-job")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	readBody(t, resp)
}

func TestAlgorithmsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}})
	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.Unmarshal(readBody(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range doc.Algorithms {
		if a == "bncl-grid" {
			found = true
		}
	}
	if !found {
		t.Errorf("algorithms list %v missing bncl-grid", doc.Algorithms)
	}
}

// TestClientRoundTrip drives the typed client end to end: solve, cache-hit
// solve, sweep, and the busy sentinel.
func TestClientRoundTrip(t *testing.T) {
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 1, QueueDepth: 1}})
	c := NewClient(ts.URL)

	sp, err := alg.ParseSpec(testSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Solve(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first solve reported cached")
	}
	if first.Algorithm != "centroid" {
		t.Errorf("algorithm = %q", first.Algorithm)
	}
	second, err := c.Solve(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second solve not cached")
	}
	if !bytes.Equal(first.Raw, second.Raw) {
		t.Error("cached solve bytes differ")
	}

	sw, err := sweep.ParseSpec(testSweepJSON)
	if err != nil {
		t.Fatal(err)
	}
	swRes, err := c.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(swRes.Summary.Cells) != 4 {
		t.Errorf("sweep cells = %d, want 4", len(swRes.Summary.Cells))
	}

	// Saturate the pool; the client must surface ErrBusy with a backoff.
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	blocker := func(ctx context.Context, tr obs.Tracer) error {
		started <- struct{}{}
		<-release
		return nil
	}
	j1, err := s.Pool().Submit(context.Background(), "b1", nil, blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := s.Pool().Submit(context.Background(), "b2", nil, blocker)
	if err != nil {
		t.Fatal(err)
	}
	fresh := sp
	fresh.Seed = 99 // distinct hash so the memo cannot answer
	_, err = c.Solve(context.Background(), fresh)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated solve err = %v, want ErrBusy", err)
	}
	if RetryAfter(err) <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", RetryAfter(err))
	}
	close(release)
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSolveSpanChain pins the observability thread: one solve emits
// serve.request → exec.job → algorithm spans with intact parent links.
func TestSolveSpanChain(t *testing.T) {
	mem := obs.NewMemory()
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}, Tracer: mem})
	resp := postJSON(t, ts.URL+"/v1/solve", testSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	readBody(t, resp)

	var reqID, jobID, jobParent string
	for _, e := range mem.Events() {
		switch e.Name {
		case "serve.request.done":
			reqID, _ = e.Fields["span_id"].(string)
		case "exec.job.done":
			jobID, _ = e.Fields["span_id"].(string)
			jobParent, _ = e.Fields["parent_id"].(string)
		}
	}
	if reqID == "" || jobID == "" {
		t.Fatalf("missing spans: request %q, job %q", reqID, jobID)
	}
	if jobParent != reqID {
		t.Errorf("exec.job parent = %q, want serve.request %q", jobParent, reqID)
	}
	// The algorithm's own event must be parented somewhere under the job.
	foundChild := false
	for _, e := range mem.Events() {
		if e.Fields["parent_id"] == jobID {
			foundChild = true
			break
		}
	}
	if !foundChild {
		t.Error("no event parented under the exec.job span")
	}
}

// TestServeMetrics pins the instrument wiring: requests, memo hits, and
// rejections land in the registry alongside the pool gauges.
func TestServeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}, Registry: reg})
	readBody(t, postJSON(t, ts.URL+"/v1/solve", testSpecJSON))
	readBody(t, postJSON(t, ts.URL+"/v1/solve", testSpecJSON))

	if got := reg.Counter("wsnloc_serve_requests_total").Value(); got != 2 {
		t.Errorf("requests_total = %v, want 2", got)
	}
	if got := reg.Counter("wsnloc_serve_memo_hits_total").Value(); got != 1 {
		t.Errorf("memo_hits_total = %v, want 1", got)
	}
	if got := reg.Counter("wsnloc_exec_jobs_total").Value(); got != 1 {
		t.Errorf("exec_jobs_total = %v, want 1 (memo hit must not submit)", got)
	}
}

// TestAsyncSweepViaClient drives the async sweep branch through the typed
// client: 202 with a job id, polled to completion with Client.Job, and a
// resubmitted async sweep answered from the memo as an already-done job.
func TestAsyncSweepViaClient(t *testing.T) {
	_, ts := testServer(t, Config{CacheDir: t.TempDir()})
	client := NewClient(ts.URL)
	ctx := context.Background()

	resp := postJSON(t, ts.URL+"/v1/sweep?async=1", testSweepJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async sweep status = %d, body %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil || accepted.JobID == "" {
		t.Fatalf("bad accepted document %s: %v", body, err)
	}

	var st *JobStatus
	waitFor(t, func() bool {
		var err error
		st, err = client.Job(ctx, accepted.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "error" {
			t.Fatalf("async sweep failed: %s", st.Error)
		}
		return st.State == "done"
	})
	if st.Cached {
		t.Error("first async sweep reported cached")
	}
	if len(st.Result) == 0 {
		t.Fatal("done job has no result document")
	}

	// Resubmitted: the memo answers, so the job is done on arrival.
	resp2 := postJSON(t, ts.URL+"/v1/sweep?async=1", testSweepJSON)
	body2 := readBody(t, resp2)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("async resubmit status = %d", resp2.StatusCode)
	}
	var accepted2 struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body2, &accepted2); err != nil {
		t.Fatal(err)
	}
	st2, err := client.Job(ctx, accepted2.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != "done" || !st2.Cached {
		t.Errorf("memo-backed async job: state %q cached %v, want done/true", st2.State, st2.Cached)
	}
	if string(st2.Result) != string(st.Result) {
		t.Error("memo-backed async result bytes differ")
	}

	if _, err := client.Job(ctx, "no-such-job"); err == nil {
		t.Error("unknown job id did not error through the client")
	}
}

// TestAsyncQueuedJobExpiredReportsError is the REVIEW regression: an
// async job whose context expires while it is still queued is skipped by
// the pool without running the serve-layer fn, and the status entry must
// still reach a terminal "error" state instead of reporting "queued"
// forever to a polling client.
func TestAsyncQueuedJobExpiredReportsError(t *testing.T) {
	s, ts := testServer(t, Config{
		Pool:           exec.Config{Workers: 1, QueueDepth: 4},
		RequestTimeout: time.Nanosecond,
	})
	// Occupy the only worker so the async job sits in the queue past its
	// (instant) deadline.
	release := make(chan struct{})
	started := make(chan struct{})
	defer close(release)
	if _, err := s.Pool().Submit(context.Background(), "blocker", nil, func(ctx context.Context, tr obs.Tracer) error {
		close(started)
		<-release
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	resp := postJSON(t, ts.URL+"/v1/solve?async=1", testSpecJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	release <- struct{}{} // free the worker; it dequeues and skips the dead job

	var st JobStatus
	waitFor(t, func() bool {
		r, err := http.Get(ts.URL + acc.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(readBody(t, r), &st); err != nil {
			t.Fatal(err)
		}
		return st.State != "queued" && st.State != "running"
	})
	if st.State != "error" {
		t.Fatalf("expired queued job state = %q, want error", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("error = %q, want the context deadline in it", st.Error)
	}
}

// TestRejectedSubmissionLeavesNoJob pins the REVIEW cleanup: a 429 must
// not leave a phantom "queued" entry in the job table.
func TestRejectedSubmissionLeavesNoJob(t *testing.T) {
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 1, QueueDepth: 1}})
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	blocker := func(ctx context.Context, tr obs.Tracer) error {
		started <- struct{}{}
		<-release
		return nil
	}
	defer close(release)
	j1, err := s.Pool().Submit(context.Background(), "b1", nil, blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := s.Pool().Submit(context.Background(), "b2", nil, blocker)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/v1/solve?async=1", testSpecJSON)
	readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	s.jobsMu.Lock()
	n := len(s.jobs)
	s.jobsMu.Unlock()
	if n != 0 {
		t.Fatalf("job table holds %d entries after a reject, want 0", n)
	}

	release <- struct{}{}
	release <- struct{}{}
	if err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSolveMemoBounded pins the LRU bound: with MemoEntries=1, a second
// distinct spec evicts the first, whose resubmission is a miss again.
func TestSolveMemoBounded(t *testing.T) {
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, MemoEntries: 1})
	specB := bytes.Replace(testSpecJSON, []byte(`"seed":7`), []byte(`"seed":8`), 1)

	for i, tc := range []struct {
		body []byte
		want string
	}{
		{testSpecJSON, "miss"},
		{testSpecJSON, "hit"},
		{specB, "miss"}, // evicts the first spec
		{testSpecJSON, "miss"},
	} {
		resp := postJSON(t, ts.URL+"/v1/solve", tc.body)
		readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Wsnloc-Cache"); got != tc.want {
			t.Errorf("request %d: cache header = %q, want %q", i, got, tc.want)
		}
	}
	if got := s.solveMemo.mem.Len(); got != 1 {
		t.Errorf("memo entries = %d, want 1", got)
	}
}

// TestFinishedJobsEvicted pins job-table retention: a finished entry older
// than JobRetention is expired by the next admission, answering 404.
func TestFinishedJobsEvicted(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, JobRetention: time.Millisecond})
	resp := postJSON(t, ts.URL+"/v1/solve?async=1", testSpecJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var acc struct {
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		r, err := http.Get(ts.URL + acc.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.Unmarshal(readBody(t, r), &st); err != nil {
			t.Fatal(err)
		}
		return st.State == "done"
	})

	time.Sleep(20 * time.Millisecond) // outlive the retention window
	// Any new admission sweeps expired entries (memo hit included).
	readBody(t, postJSON(t, ts.URL+"/v1/solve?async=1", testSpecJSON))
	r, err := http.Get(ts.URL + acc.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, r)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("expired job status = %d, want 404", r.StatusCode)
	}
}

// TestSolveDeadline504 pins the timeout rung of the error ladder: a
// request timeout that expires before the job runs surfaces as 504.
func TestSolveDeadline504(t *testing.T) {
	_, ts := testServer(t, Config{RequestTimeout: time.Nanosecond})
	spec := []byte(`{"scenario":{"N":40,"Field":60,"AnchorFrac":0.25,"Seed":3},"algorithm":"centroid","seed":504}`)
	resp := postJSON(t, ts.URL+"/v1/solve", spec)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", resp.StatusCode, body)
	}
}

// TestMethodNotAllowed sweeps the remaining non-POST/non-GET rungs.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, url := range []string{ts.URL + "/v1/sweep", ts.URL + "/v1/algorithms"} {
		var resp *http.Response
		var err error
		if strings.HasSuffix(url, "/sweep") {
			resp, err = http.Get(url)
		} else {
			resp, err = http.Post(url, "application/json", nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s: status = %d, want 405", url, resp.StatusCode)
		}
	}
}

// TestBusyErrorSurface pins the client-side busy sentinel: message,
// unwrap target, and default retry hint.
func TestBusyErrorSurface(t *testing.T) {
	be := &busyError{retryAfter: 2 * time.Second}
	if be.Error() == "" || !errors.Is(be, ErrBusy) {
		t.Errorf("busyError: %q, Is(ErrBusy)=%v", be.Error(), errors.Is(be, ErrBusy))
	}
	if got := RetryAfter(be); got != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s", got)
	}
	if got := RetryAfter(errors.New("other")); got != 0 {
		t.Errorf("RetryAfter(non-busy) = %v, want 0", got)
	}
}

// TestSweepShardedThenMerge drives the distributed sweep through the HTTP
// API: two shard requests over the server's cache directory, then ?merge=1,
// whose summary must equal a direct in-process run of the same document.
// The shard responses echo their split and never hit the response memo.
func TestSweepShardedThenMerge(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, CacheDir: t.TempDir()})

	totalCells := 0
	for idx := 0; idx < 2; idx++ {
		resp := postJSON(t, fmt.Sprintf("%s/v1/sweep?shards=2&shard=%d", ts.URL, idx), testSweepJSON)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d: status = %d, body %s", idx, resp.StatusCode, readBody(t, resp))
		}
		if got := resp.Header.Get("X-Wsnloc-Cache"); got != "miss" {
			t.Errorf("shard %d went through the memo: cache header %q", idx, got)
		}
		var doc SweepResponse
		if err := json.Unmarshal(readBody(t, resp), &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Shards != 2 || doc.Shard == nil || *doc.Shard != idx {
			t.Errorf("shard %d response echoes shards=%d shard=%v", idx, doc.Shards, doc.Shard)
		}
		totalCells += len(doc.Summary.Cells)
	}
	if totalCells != 4 {
		t.Errorf("shards covered %d cells, want 4", totalCells)
	}

	resp := postJSON(t, ts.URL+"/v1/sweep?merge=1", testSweepJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge: status = %d, body %s", resp.StatusCode, readBody(t, resp))
	}
	var merged SweepResponse
	if err := json.Unmarshal(readBody(t, resp), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Shards != 0 || merged.Shard != nil {
		t.Errorf("merged response carries shard fields: shards=%d shard=%v", merged.Shards, merged.Shard)
	}

	sw, err := sweep.ParseSpec(testSweepJSON)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.Run(sw, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct.Summary())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(merged.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged summary differs from direct run:\ngot  %s\nwant %s", got, want)
	}
}

// TestSweepMergeIncompleteConflicts: merging before every shard has run
// answers 409, the retry-once-the-state-changes status.
func TestSweepMergeIncompleteConflicts(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, CacheDir: t.TempDir()})
	resp := postJSON(t, ts.URL+"/v1/sweep?shards=3&shard=0", testSweepJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard 0: status = %d, body %s", resp.StatusCode, readBody(t, resp))
	}
	var doc SweepResponse
	if err := json.Unmarshal(readBody(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Summary.Cells) == 4 {
		t.Skip("shard 0 owns the whole grid under this hash split")
	}
	resp = postJSON(t, ts.URL+"/v1/sweep?merge=1", testSweepJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusConflict || !bytes.Contains(body, []byte("unresolved")) {
		t.Errorf("incomplete merge: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestSweepShardQueryValidation pins the 400 surface of the distributed
// parameters.
func TestSweepShardQueryValidation(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}, CacheDir: t.TempDir()})
	_, noCache := testServer(t, Config{Pool: exec.Config{Workers: 1}})
	for _, tc := range []struct {
		url  string
		want string
	}{
		{ts.URL + "/v1/sweep?shards=0&shard=0", "positive integer"},
		{ts.URL + "/v1/sweep?shards=nope", "positive integer"},
		{ts.URL + "/v1/sweep?shards=2&shard=2", "shard must be in [0, 2)"},
		{ts.URL + "/v1/sweep?shard=1", "shard requires shards"},
		{ts.URL + "/v1/sweep?merge=1&shards=2", "mutually exclusive"},
		{ts.URL + "/v1/sweep?merge=maybe", "merge must be 1"},
		{noCache.URL + "/v1/sweep?shards=2&shard=0", "cache directory"},
		{noCache.URL + "/v1/sweep?merge=1", "cache directory"},
	} {
		resp := postJSON(t, tc.url, testSweepJSON)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(body, []byte(tc.want)) {
			t.Errorf("%s: status = %d, body %s (want 400 mentioning %q)", tc.url, resp.StatusCode, body, tc.want)
		}
	}
}

// TestSweepShardHeldConflicts: a sharded request against a shard whose lease
// a live worker holds answers 409.
func TestSweepShardHeldConflicts(t *testing.T) {
	cacheDir := t.TempDir()
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}, CacheDir: cacheDir})
	lease, _, err := sweep.AcquireShardLease(cacheDir, 1, "other-host", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	resp := postJSON(t, ts.URL+"/v1/sweep?shards=2&shard=1", testSweepJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusConflict || !bytes.Contains(body, []byte("lease")) {
		t.Errorf("held shard: status = %d, body %s", resp.StatusCode, body)
	}
}
