package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// diskMemo is the second response-cache tier: a content-addressed store of
// exact response bytes under <dir>/<kind>/<first two hash bytes>/<hash>.resp,
// so a daemon restart keeps hot results warm. It follows the sweep cache's
// discipline — atomic writes (temp file + rename) and self-validating
// entries — with one addition: each file carries a SHA-256 of its body, so
// a corrupted or foreign file is a miss, never a wrong answer served as a
// cache hit.
//
// The file format is one JSON header line followed by the raw response
// bytes:
//
//	{"key":"<hash>","sha256":"<hex of body>","version":1}\n
//	<response bytes>
//
// Like the in-memory memo, a nil *diskMemo misses every Get and drops every
// Put, so the disk tier is optional without call-site branching.
type diskMemo struct {
	dir string
}

// diskMemoVersion is bumped whenever the response wire format changes in a
// way that makes old cached bytes wrong to serve.
const diskMemoVersion = 1

// diskMemoHeader is the self-validation preamble of one entry.
type diskMemoHeader struct {
	Key     string `json:"key"`
	SHA256  string `json:"sha256"`
	Version int    `json:"version"`
}

// openDiskMemo opens (creating if needed) the disk tier for one endpoint
// kind ("solve" | "sweep") rooted at dir. Empty dir disables the tier.
func openDiskMemo(dir, kind string) (*diskMemo, error) {
	if dir == "" {
		return nil, nil
	}
	root := filepath.Join(dir, kind)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("serve: opening response memo: %w", err)
	}
	return &diskMemo{dir: root}, nil
}

func (d *diskMemo) path(key string) string {
	return filepath.Join(d.dir, key[:2], key+".resp")
}

// Get returns the bytes stored under key. Absent, truncated, corrupted, or
// version-mismatched entries are misses — the serving path just re-executes
// and overwrites them.
func (d *diskMemo) Get(key string) ([]byte, bool) {
	if d == nil || len(key) < 2 {
		return nil, false
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	var hdr diskMemoHeader
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, false
	}
	body := data[nl+1:]
	if hdr.Version != diskMemoVersion || hdr.Key != key {
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hdr.SHA256 != hex.EncodeToString(sum[:]) {
		return nil, false
	}
	return body, true
}

// Put persists val under key atomically. Best-effort: a full disk or
// permission problem costs the warm restart, not the request — the error is
// returned for logging/metrics but the caller keeps serving.
func (d *diskMemo) Put(key string, val []byte) error {
	if d == nil || len(key) < 2 {
		return nil
	}
	sum := sha256.Sum256(val)
	hdr, err := json.Marshal(diskMemoHeader{
		Key: key, SHA256: hex.EncodeToString(sum[:]), Version: diskMemoVersion,
	})
	if err != nil {
		return fmt.Errorf("serve: response memo store: %w", err)
	}
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("serve: response memo store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:8]+"-*")
	if err != nil {
		return fmt.Errorf("serve: response memo store: %w", err)
	}
	_, werr := tmp.Write(append(append(hdr, '\n'), val...))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: response memo store: write %s: %v/%v", path, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: response memo store: %w", err)
	}
	return nil
}

// Cache tiers reported in the X-Wsnloc-Cache-Tier header and the per-tier
// hit counters.
const (
	tierMem  = "mem"
	tierDisk = "disk"
)

// tieredMemo layers the in-memory LRU over the optional disk store: Get
// checks memory first, falls back to disk (promoting hits into memory so
// the next duplicate skips the file read), and Put writes through to both.
type tieredMemo struct {
	mem  *memo
	disk *diskMemo
}

// Get returns the cached bytes and the tier that answered ("mem" | "disk").
func (t *tieredMemo) Get(key string) ([]byte, string, bool) {
	if v, ok := t.mem.Get(key); ok {
		return v, tierMem, true
	}
	if v, ok := t.disk.Get(key); ok {
		t.mem.Put(key, v)
		return v, tierDisk, true
	}
	return nil, "", false
}

// Put stores the bytes in every tier.
func (t *tieredMemo) Put(key string, val []byte) {
	t.mem.Put(key, val)
	t.disk.Put(key, val) // best-effort; a failed write is a cold restart, not an error
}
