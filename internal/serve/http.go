package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HTTP plumbing shared by every handler: pooled encode buffers (a response
// costs one buffer checkout, not a fresh allocation per write), pooled gzip
// writers, strong-ETag conditional requests, and the hardened http.Server
// constructor.

// Slow-client defaults for HTTPServer. ReadHeaderTimeout is the slowloris
// defense; ReadTimeout additionally bounds the body (safe for long-running
// handlers — net/http clears the read deadline once the body is consumed);
// IdleTimeout reaps idle keep-alive connections; MaxHeaderBytes caps header
// memory per connection.
const (
	DefaultReadHeaderTimeout = 10 * time.Second
	DefaultReadTimeout       = 2 * time.Minute
	DefaultIdleTimeout       = 2 * time.Minute
	DefaultMaxHeaderBytes    = 1 << 16
)

// HTTPServer builds an http.Server over handler with the Config's
// slow-client protections applied (zero fields take the defaults above,
// negative durations disable that timeout). Every daemon front end should
// go through this: an unconfigured http.Server lets one stalled header hold
// a connection — and its goroutine — forever.
func (cfg Config) HTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: timeoutOrDefault(cfg.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		ReadTimeout:       timeoutOrDefault(cfg.ReadTimeout, DefaultReadTimeout),
		IdleTimeout:       timeoutOrDefault(cfg.IdleTimeout, DefaultIdleTimeout),
		MaxHeaderBytes:    maxHeaderOrDefault(cfg.MaxHeaderBytes),
	}
}

func timeoutOrDefault(d, def time.Duration) time.Duration {
	switch {
	case d < 0:
		return 0 // explicit opt-out
	case d == 0:
		return def
	default:
		return d
	}
}

func maxHeaderOrDefault(n int) int {
	switch {
	case n < 0:
		return 0 // stdlib default (1 MiB)
	case n == 0:
		return DefaultMaxHeaderBytes
	default:
		return n
	}
}

// --- pooled encoding ------------------------------------------------------

// bufPool recycles response encode buffers. Buffers that grew past
// maxPooledBuf (an outlier sweep document) are dropped instead of pinned.
var bufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// writeJSON is the single JSON response writer: it encodes v into a pooled
// buffer (checking the encode error before any byte reaches the wire, so an
// unencodable value becomes a clean 500 instead of a torn 200), sets
// Content-Length, and writes. Every handler routes through it or
// writeBytes — no per-call json.NewEncoder allocations, no unchecked
// Encode errors.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

// --- gzip -----------------------------------------------------------------

// gzipMinBytes is the smallest body worth compressing: below it the gzip
// framing eats the savings.
const gzipMinBytes = 512

// gzipLevel is fixed so the negotiated bytes are a deterministic function
// of the identity bytes: the same hash always yields the same gzip stream
// (gzip.Writer emits no timestamp by default).
const gzipLevel = gzip.BestSpeed

var gzipPool = sync.Pool{
	New: func() interface{} {
		zw, _ := gzip.NewWriterLevel(nil, gzipLevel)
		return zw
	},
}

// acceptsGzip reports whether the request negotiates gzip. Token scan over
// Accept-Encoding; a q=0 opt-out ("gzip;q=0") is honored, finer q-value
// ranking is not (gzip is our only alternative coding).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(coding), "gzip") {
			continue
		}
		if q := strings.TrimSpace(params); strings.HasPrefix(q, "q=0") && !strings.HasPrefix(q, "q=0.") {
			return false
		}
		return true
	}
	return false
}

// gzipBytes compresses body into a pooled buffer using a pooled writer. The
// returned buffer must be released with putBuf.
func gzipBytes(body []byte) (*bytes.Buffer, error) {
	buf := getBuf()
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(buf)
	_, werr := zw.Write(body)
	cerr := zw.Close()
	gzipPool.Put(zw)
	if werr != nil || cerr != nil {
		putBuf(buf)
		if werr != nil {
			return nil, werr
		}
		return nil, cerr
	}
	return buf, nil
}

// --- conditional requests -------------------------------------------------

// etagOf renders the strong entity tag of a content hash. The response
// bytes are a pure function of the hash (the content address of the
// normalized spec), so the hash IS the validator — no body digest needed.
func etagOf(hash string) string { return `"` + hash + `"` }

// ifNoneMatchHas reports whether the request's If-None-Match header matches
// etag: either the wildcard or the tag itself anywhere in the
// comma-separated list (weak-comparison W/ prefixes are accepted — byte
// identity per hash makes weak and strong equivalent here).
func ifNoneMatchHas(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || cand == etag || cand == "W/"+etag {
			return true
		}
	}
	return false
}

// writeBytes serves preassembled response bytes with the zero-waste
// contract: Content-Length always set, gzip when negotiated and worthwhile
// (compressed into a pooled buffer by a pooled writer), and no marshal work
// at all — cached hits reach the socket without touching encoding/json.
func writeBytes(w http.ResponseWriter, r *http.Request, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if len(body) >= gzipMinBytes && acceptsGzip(r) {
		if zbuf, err := gzipBytes(body); err == nil {
			defer putBuf(zbuf)
			h.Set("Content-Encoding", "gzip")
			h.Set("Content-Length", strconv.Itoa(zbuf.Len()))
			w.WriteHeader(http.StatusOK)
			w.Write(zbuf.Bytes())
			return
		}
		// Compression failure falls through to identity — never a 500 for
		// bytes we already have.
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}
