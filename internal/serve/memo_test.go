package serve

import (
	"bytes"
	"fmt"
	"testing"
)

func TestMemoLRUEviction(t *testing.T) {
	m := newMemo(2)
	m.Put("a", []byte("A"))
	m.Put("b", []byte("B"))
	// Touching "a" makes "b" the eviction candidate.
	if v, ok := m.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	m.Put("c", []byte("C"))
	if _, ok := m.Get("b"); ok {
		t.Error("least-recently-used entry b survived eviction")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("recently-used entry a was evicted")
	}
	if got := m.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	// Re-putting an existing key updates in place, no eviction.
	m.Put("a", []byte("A2"))
	if v, _ := m.Get("a"); !bytes.Equal(v, []byte("A2")) {
		t.Errorf("Get(a) after update = %q, want A2", v)
	}
	if got := m.Len(); got != 2 {
		t.Errorf("Len after update = %d, want 2", got)
	}
}

func TestMemoDisabled(t *testing.T) {
	m := newMemo(-1)
	m.Put("a", []byte("A"))
	if _, ok := m.Get("a"); ok {
		t.Error("disabled memo answered a Get")
	}
	if got := m.Len(); got != 0 {
		t.Errorf("disabled memo Len = %d, want 0", got)
	}
}

func TestMemoBoundHolds(t *testing.T) {
	m := newMemo(4)
	for i := 0; i < 100; i++ {
		m.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if got := m.Len(); got != 4 {
		t.Fatalf("Len after 100 puts = %d, want 4", got)
	}
	// The survivors are exactly the four most recent.
	for i := 96; i < 100; i++ {
		if _, ok := m.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("recent key k%d missing", i)
		}
	}
}
