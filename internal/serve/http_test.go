package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"wsnloc/internal/exec"
	"wsnloc/internal/obs"
)

// postConditional posts body with an If-None-Match header.
func postConditional(t *testing.T, url string, body []byte, etag string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSolveETag304 pins the conditional-request contract on /v1/solve: the
// response carries a strong ETag equal to the quoted content hash, and
// replaying the spec with If-None-Match yields 304 with an empty body —
// without a cache lookup or execution.
func TestSolveETag304(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, Registry: reg})

	resp := postJSON(t, ts.URL+"/v1/solve", testSpecJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || etag[0] != '"' || etag[len(etag)-1] != '"' {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}
	var doc struct {
		Hash string `json:"spec_hash"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if want := etagOf(doc.Hash); etag != want {
		t.Errorf("ETag = %q, want %q (the content hash)", etag, want)
	}

	jobs0 := s.Pool().CompletedJobs()
	resp304 := postConditional(t, ts.URL+"/v1/solve", testSpecJSON, etag)
	b := readBody(t, resp304)
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional replay: %d %s, want 304", resp304.StatusCode, b)
	}
	if len(b) != 0 {
		t.Errorf("304 body = %q, want empty", b)
	}
	if got := resp304.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}
	if got := s.Pool().CompletedJobs() - jobs0; got != 0 {
		t.Errorf("304 ran %d jobs, want 0", got)
	}
	if got := reg.Counter("wsnloc_serve_not_modified_total").Value(); got != 1 {
		t.Errorf("not-modified counter = %v, want 1", got)
	}

	// A stale validator misses the fast path and gets the full bytes back.
	respFull := postConditional(t, ts.URL+"/v1/solve", testSpecJSON, `"somethingelse"`)
	full := readBody(t, respFull)
	if respFull.StatusCode != http.StatusOK || !bytes.Equal(full, body) {
		t.Errorf("stale validator: %d, byte-identical=%v", respFull.StatusCode, bytes.Equal(full, body))
	}

	// The wildcard matches any representation.
	respStar := postConditional(t, ts.URL+"/v1/solve", testSpecJSON, "*")
	readBody(t, respStar)
	if respStar.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match: * → %d, want 304", respStar.StatusCode)
	}
}

func TestSweepETag304(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}})

	resp := postJSON(t, ts.URL+"/v1/sweep", testSweepJSON)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("sweep response missing ETag")
	}
	resp304 := postConditional(t, ts.URL+"/v1/sweep", testSweepJSON, etag)
	b := readBody(t, resp304)
	if resp304.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("sweep conditional replay: %d body=%q, want 304 empty", resp304.StatusCode, b)
	}
}

// TestGzipNegotiation pins the encoding tiers: gzip when negotiated and the
// body clears the floor, identity otherwise — and the gzip stream decodes to
// exactly the identity bytes.
func TestGzipNegotiation(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}})

	// Identity baseline. (Go's default client auto-negotiates gzip and
	// transparently decodes; send an explicit identity request instead.)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(testSpecJSON))
	req.Header.Set("Accept-Encoding", "identity")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	identity := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identity solve: %d %s", resp.StatusCode, identity)
	}
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity request got Content-Encoding %q", enc)
	}
	if len(identity) < gzipMinBytes {
		t.Fatalf("test body too small (%dB) to exercise gzip; grow testSpecJSON", len(identity))
	}

	// Explicit gzip negotiation, transparent decoding disabled.
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(testSpecJSON))
	req2.Header.Set("Accept-Encoding", "gzip")
	resp2, err := (&http.Client{Transport: tr}).Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	zbody := readBody(t, resp2)
	if enc := resp2.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(bytes.NewReader(zbody))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, identity) {
		t.Error("gzip stream does not decode to the identity bytes")
	}

	// Determinism: the same hash yields the same gzip stream, byte for byte
	// (this is a memo hit — encoded fresh from the same identity bytes).
	req3, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(testSpecJSON))
	req3.Header.Set("Accept-Encoding", "gzip")
	resp3, err := (&http.Client{Transport: tr}).Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	zbody2 := readBody(t, resp3)
	if !bytes.Equal(zbody2, zbody) {
		t.Error("gzip bytes differ across identical requests")
	}

	// q=0 opts out.
	req4, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(testSpecJSON))
	req4.Header.Set("Accept-Encoding", "gzip;q=0")
	resp4, err := (&http.Client{Transport: tr}).Do(req4)
	if err != nil {
		t.Fatal(err)
	}
	plain := readBody(t, resp4)
	if enc := resp4.Header.Get("Content-Encoding"); enc != "" {
		t.Errorf("q=0 opt-out got Content-Encoding %q", enc)
	}
	if !bytes.Equal(plain, identity) {
		t.Error("q=0 response not byte-identical to identity baseline")
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"gzip", true},
		{"GZIP", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip;q=1.0", true},
		{"gzip;q=0", false},
		{"gzip;q=0.5", true},
		{"identity", false},
		{"br;q=1.0, gzip;q=0.8", true},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodGet, "/", nil)
		if c.header != "" {
			r.Header.Set("Accept-Encoding", c.header)
		}
		if got := acceptsGzip(r); got != c.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

func TestIfNoneMatchHas(t *testing.T) {
	cases := []struct {
		header string
		etag   string
		want   bool
	}{
		{"", `"abc"`, false},
		{`"abc"`, `"abc"`, true},
		{`"xyz"`, `"abc"`, false},
		{`"xyz", "abc"`, `"abc"`, true},
		{`W/"abc"`, `"abc"`, true},
		{"*", `"abc"`, true},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodPost, "/", nil)
		if c.header != "" {
			r.Header.Set("If-None-Match", c.header)
		}
		if got := ifNoneMatchHas(r, c.etag); got != c.want {
			t.Errorf("ifNoneMatchHas(%q, %s) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}

// TestAlgorithmsPrecomputedETag pins satellite (a): the algorithms document
// is one construction-time byte slice served with its own validator.
func TestAlgorithmsPrecomputedETag(t *testing.T) {
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}})

	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("algorithms: %d %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, s.algBytes) {
		t.Error("served bytes differ from the precomputed document")
	}
	etag := resp.Header.Get("ETag")
	if etag != s.algETag || etag == "" {
		t.Fatalf("ETag = %q, want precomputed %q", etag, s.algETag)
	}
	var doc struct {
		Algorithms []string `json:"algorithms"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || len(doc.Algorithms) == 0 {
		t.Fatalf("bad algorithms document %s: %v", body, err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/algorithms", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b := readBody(t, resp2)
	if resp2.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Errorf("conditional algorithms: %d body=%q, want 304 empty", resp2.StatusCode, b)
	}
}

// TestWriteJSONEncodeError pins the torn-200 guard: an unencodable value
// becomes a clean 500, not a 200 with a half-written body.
func TestWriteJSONEncodeError(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]interface{}{"bad": func() {}})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("code = %d, want 500", rec.Code)
	}

	rec2 := httptest.NewRecorder()
	writeJSON(rec2, http.StatusCreated, map[string]string{"ok": "yes"})
	if rec2.Code != http.StatusCreated {
		t.Errorf("code = %d, want 201", rec2.Code)
	}
	if got := rec2.Header().Get("Content-Length"); got != strconv.Itoa(rec2.Body.Len()) {
		t.Errorf("Content-Length = %q, want %d", got, rec2.Body.Len())
	}
}

// TestHTTPServerDefaults pins the hardening knobs' zero/negative semantics.
func TestHTTPServerDefaults(t *testing.T) {
	srv := Config{}.HTTPServer(nil)
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		srv.ReadTimeout != DefaultReadTimeout ||
		srv.IdleTimeout != DefaultIdleTimeout ||
		srv.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Errorf("zero config: got %v/%v/%v/%d", srv.ReadHeaderTimeout, srv.ReadTimeout, srv.IdleTimeout, srv.MaxHeaderBytes)
	}

	srv = Config{ReadHeaderTimeout: -1, ReadTimeout: -1, IdleTimeout: -1, MaxHeaderBytes: -1}.HTTPServer(nil)
	if srv.ReadHeaderTimeout != 0 || srv.ReadTimeout != 0 || srv.IdleTimeout != 0 || srv.MaxHeaderBytes != 0 {
		t.Error("negative config should disable (zero) every knob")
	}

	srv = Config{ReadHeaderTimeout: 3 * time.Second, MaxHeaderBytes: 4096}.HTTPServer(nil)
	if srv.ReadHeaderTimeout != 3*time.Second || srv.MaxHeaderBytes != 4096 {
		t.Error("explicit values should pass through")
	}
}

// TestStalledHeaderConnectionReaped is the slowloris regression test: a
// client that opens a connection and never finishes its request header is
// cut off by ReadHeaderTimeout instead of holding its goroutine forever.
func TestStalledHeaderConnectionReaped(t *testing.T) {
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 1}})
	cfg := Config{ReadHeaderTimeout: 150 * time.Millisecond}
	srv := cfg.HTTPServer(ts.Config.Handler)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial request line, then silence — the classic slowloris hold.
	if _, err := conn.Write([]byte("POST /v1/solve HT")); err != nil {
		t.Fatal(err)
	}
	// The server must terminate the hold: Go answers a 4xx (408 or 400 for
	// the torn request line) and closes. Reading to EOF within the deadline
	// is the proof; a read timeout here means the connection was never
	// reaped and the goroutine is pinned.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, rerr := io.ReadAll(conn)
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		t.Fatal("connection still open after ReadHeaderTimeout — slowloris hold not reaped")
	}
	if len(got) > 0 && !bytes.HasPrefix(got, []byte("HTTP/1.1 4")) {
		t.Errorf("unexpected server bytes before close: %q", got)
	}
}
