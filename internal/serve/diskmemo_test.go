package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"wsnloc/internal/exec"
	"wsnloc/internal/obs"
)

func TestDiskMemoRoundtrip(t *testing.T) {
	dm, err := openDiskMemo(t.TempDir(), "solve")
	if err != nil {
		t.Fatal(err)
	}
	key := "abc123def456"
	body := []byte(`{"answer":42}`)
	if _, ok := dm.Get(key); ok {
		t.Fatal("hit before Put")
	}
	if err := dm.Put(key, body); err != nil {
		t.Fatal(err)
	}
	got, ok := dm.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, want %q", got, body)
	}
	// Overwrite with the same key is a no-op rewrite, still byte-stable.
	if err := dm.Put(key, body); err != nil {
		t.Fatal(err)
	}
	if got, ok := dm.Get(key); !ok || !bytes.Equal(got, body) {
		t.Fatal("entry unstable after re-Put")
	}
}

func TestDiskMemoNilWhenUnconfigured(t *testing.T) {
	dm, err := openDiskMemo("", "solve")
	if err != nil {
		t.Fatal(err)
	}
	if dm != nil {
		t.Fatal("empty dir should yield a nil disk tier")
	}
	// The tiered wrapper must tolerate the nil tier.
	tm := &tieredMemo{mem: newMemo(4), disk: dm}
	tm.Put("k", []byte("v"))
	if got, tier, ok := tm.Get("k"); !ok || tier != tierMem || string(got) != "v" {
		t.Fatalf("Get = %q,%q,%v", got, tier, ok)
	}
}

// TestDiskMemoCorruptionIsMiss pins the self-validating read: flipped body
// bytes, a wrong key, or a truncated file must read as a miss, never as a
// wrong answer.
func TestDiskMemoCorruptionIsMiss(t *testing.T) {
	dir := t.TempDir()
	dm, err := openDiskMemo(dir, "solve")
	if err != nil {
		t.Fatal(err)
	}
	key := "deadbeef0011"
	if err := dm.Put(key, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	path := dm.path(key)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := dm.Get(key); ok {
				t.Fatalf("corrupted entry served as hit: %q", got)
			}
		})
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	corrupt("flipped-body-byte", func(b []byte) []byte {
		b[len(b)-1] ^= 0xff
		return b
	})
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt("garbage-header", func(b []byte) []byte { return append([]byte("not json\n"), b...) })
	corrupt("empty", func([]byte) []byte { return nil })

	// Sanity: the restored original still hits.
	if _, ok := dm.Get(key); !ok {
		t.Fatal("restored entry should hit")
	}

	// A key whose stored header names a different key is a miss too.
	otherPath := dm.path("feedface2233")
	if err := os.MkdirAll(filepath.Dir(otherPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(otherPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dm.Get("feedface2233"); ok {
		t.Fatal("entry with mismatched header key served as hit")
	}
}

// TestDiskMemoSurvivesRestart is the acceptance test for the disk tier: a
// solve answered by one server instance is a warm cache hit — served from
// the disk tier, byte-identical — on a fresh instance sharing the memo dir,
// with no execution.
func TestDiskMemoSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Pool: exec.Config{Workers: 2}, MemoDir: dir}

	_, ts1 := testServer(t, cfg)
	resp := postJSON(t, ts1.URL+"/v1/solve", testSpecJSON)
	cold := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: %d %s", resp.StatusCode, cold)
	}
	if v := resp.Header.Get("X-Wsnloc-Cache"); v != cacheMiss {
		t.Fatalf("cold verdict = %q, want miss", v)
	}
	ts1.Close()

	// "Restart": a brand-new server over the same memo dir. Its in-memory
	// LRU is empty, so the answer must come off disk.
	s2, ts2 := testServer(t, cfg)
	jobs0 := s2.Pool().CompletedJobs()
	resp = postJSON(t, ts2.URL+"/v1/solve", testSpecJSON)
	warm := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: %d %s", resp.StatusCode, warm)
	}
	if v := resp.Header.Get("X-Wsnloc-Cache"); v != cacheHit {
		t.Errorf("warm verdict = %q, want hit", v)
	}
	if tier := resp.Header.Get("X-Wsnloc-Cache-Tier"); tier != tierDisk {
		t.Errorf("warm tier = %q, want %q", tier, tierDisk)
	}
	if !bytes.Equal(warm, cold) {
		t.Errorf("restart broke byte identity:\n%s\nvs\n%s", warm, cold)
	}
	if got := s2.Pool().CompletedJobs() - jobs0; got != 0 {
		t.Errorf("warm hit ran %d jobs, want 0", got)
	}

	// The disk hit promoted the entry into memory: next hit is the mem tier.
	resp = postJSON(t, ts2.URL+"/v1/solve", testSpecJSON)
	readBody(t, resp)
	if tier := resp.Header.Get("X-Wsnloc-Cache-Tier"); tier != tierMem {
		t.Errorf("post-promotion tier = %q, want %q", tier, tierMem)
	}
}

// TestDiskMemoSweepRestart covers the sweep endpoint's disk tier the same
// way, and checks the per-tier observability counters move.
func TestDiskMemoSweepRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Pool: exec.Config{Workers: 2}, MemoDir: dir, Registry: obs.NewRegistry()}

	_, ts1 := testServer(t, cfg)
	resp := postJSON(t, ts1.URL+"/v1/sweep", testSweepJSON)
	cold := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold sweep: %d %s", resp.StatusCode, cold)
	}
	ts1.Close()

	// Fresh registry so the second instance's counters start at zero.
	cfg.Registry = obs.NewRegistry()
	s2, ts2 := testServer(t, cfg)
	resp = postJSON(t, ts2.URL+"/v1/sweep", testSweepJSON)
	warm := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sweep: %d %s", resp.StatusCode, warm)
	}
	if v, tier := resp.Header.Get("X-Wsnloc-Cache"), resp.Header.Get("X-Wsnloc-Cache-Tier"); v != cacheHit || tier != tierDisk {
		t.Errorf("warm sweep verdict/tier = %q/%q, want hit/disk", v, tier)
	}
	if !bytes.Equal(warm, cold) {
		t.Error("sweep restart broke byte identity")
	}
	if got := s2.m.diskHits.Value(); got != 1 {
		t.Errorf("disk-hit counter = %v, want 1", got)
	}
	if got := s2.m.memMisses.Value(); got < 1 {
		t.Errorf("mem-miss counter = %v, want >= 1 (disk hit implies mem miss)", got)
	}
}
