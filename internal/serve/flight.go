package serve

import (
	"sync"
	"sync/atomic"
)

// In-flight request coalescing (singleflight). The response memo only
// amortizes *sequential* duplicates: N clients posting the same spec at the
// same instant all miss the memo and burn N full runs. The flight group
// closes that window — the first request with a given content hash becomes
// the leader and executes; every concurrent duplicate becomes a follower
// that waits on the leader's call and receives the leader's byte-identical
// bytes. One spec, one execution, at any concurrency.
//
// Leadership is decided under the group lock, so exactly one request per
// key can be the leader at a time. The leader's execution runs on a context
// detached from any single client connection (the server's lifetime bounded
// by the request timeout): a follower hanging up must not cancel the leader,
// and once followers exist the leader's own client hanging up must not
// cancel them either. The only things that stop a shared execution are the
// per-request deadline and server drain.

// flightCall is one shared execution: the leader resolves it exactly once,
// then every waiter reads the immutable result.
type flightCall struct {
	done chan struct{} // closed after result/err are set

	// Written by the leader's completion path before done closes; read-only
	// afterwards.
	result []byte
	err    error

	followers atomic.Int64 // coalesced requests riding this call
}

// wait returns the call's outcome; valid only after done is closed.
func (c *flightCall) outcome() ([]byte, error) { return c.result, c.err }

// flightGroup deduplicates concurrent executions by content-hash key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join returns the flight for key. leader reports whether the caller owns
// the execution (it MUST eventually call complete, on every path, or
// followers wait until their own contexts expire). A non-leader caller has
// been counted as a follower already.
func (g *flightGroup) join(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		c.followers.Add(1)
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// complete resolves the leader's call — result and err become visible to
// every follower — and retires the key so the next request starts a fresh
// flight (normally it will hit the memo instead). Idempotent per call: only
// the first completion publishes.
func (g *flightGroup) complete(key string, c *flightCall, result []byte, err error) {
	g.mu.Lock()
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	select {
	case <-c.done:
		// Already completed (defensive; the leader completes exactly once).
	default:
		c.result = result
		c.err = err
		close(c.done)
	}
}

// inFlight reports the live flight count (test/diagnostic helper).
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
