package serve

import (
	"container/list"
	"sync"
)

// memo is a bounded most-recently-used response cache: canonical spec hash
// → the exact bytes served before. The bound is what makes it safe to face
// the network: without one, every distinct spec a client ever posts would
// retain its full response bytes for the life of the daemon, an easy
// memory-exhaustion vector at the default 1 MiB body limit.
type memo struct {
	mu    sync.Mutex
	max   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // key → element whose Value is *memoItem
}

type memoItem struct {
	key string
	val []byte
}

// newMemo builds a memo bounded to max entries. max < 0 disables
// memoization entirely: the returned nil memo misses every Get and drops
// every Put.
func newMemo(max int) *memo {
	if max < 0 {
		return nil
	}
	return &memo{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the bytes stored under key, refreshing its recency.
func (m *memo) Get(key string) ([]byte, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memoItem).val, true
}

// Put stores bytes under key, evicting least-recently-used entries beyond
// the bound.
func (m *memo) Put(key string, val []byte) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		el.Value.(*memoItem).val = val
		m.order.MoveToFront(el)
		return
	}
	m.items[key] = m.order.PushFront(&memoItem{key: key, val: val})
	for m.order.Len() > m.max {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.items, oldest.Value.(*memoItem).key)
	}
}

// Len reports the live entry count.
func (m *memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}
