// Package serve turns the localization library into a long-running
// service: a stdlib net/http API that accepts alg.Spec and sweep-spec JSON,
// executes them on the shared bounded execution plane (internal/exec), and
// memoizes results content-addressed by canonical spec hash, so identical
// specs from different clients return byte-identical cached bytes
// instantly.
//
// API (all JSON):
//
//	POST /v1/solve        body: alg.Spec     → SolveResponse
//	POST /v1/sweep        body: sweep spec   → SweepResponse
//	GET  /v1/jobs/{id}                       → JobStatus (async submissions)
//	GET  /v1/algorithms                      → registered algorithm names
//
// Both POST endpoints run synchronously by default and accept ?async=1 to
// enqueue and return 202 with a job id. Admission is bounded: a full
// execution queue answers 429 with a Retry-After header (the backpressure
// contract), an oversized body 413, an invalid spec 400, and a draining
// server 503. Every request threads a span chain
// serve.request → exec.job → bncl.run into the configured tracer.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/exec"
	"wsnloc/internal/obs"
	"wsnloc/internal/sweep"
	"wsnloc/internal/wsnerr"
)

// DefaultMaxBodyBytes bounds request bodies when Config leaves MaxBodyBytes
// zero: far above any legitimate spec, far below an allocation attack.
const DefaultMaxBodyBytes = 1 << 20

// DefaultRequestTimeout bounds one request's execution when Config leaves
// RequestTimeout zero.
const DefaultRequestTimeout = 5 * time.Minute

// DefaultMemoEntries bounds each response memo (solve and sweep
// separately) when Config leaves MemoEntries zero.
const DefaultMemoEntries = 256

// DefaultJobRetention is how long a finished job's status stays queryable
// when Config leaves JobRetention zero.
const DefaultJobRetention = 15 * time.Minute

// maxDoneJobs caps how many finished job entries the table retains even
// inside the retention window, so a submission burst cannot pin an
// unbounded number of result documents in memory.
const maxDoneJobs = 4096

// Config tunes a Server.
type Config struct {
	// Pool configures the shared bounded execution plane every request runs
	// on: Workers solver goroutines and a FIFO admission queue of
	// Pool.QueueDepth requests, beyond which submissions get 429.
	Pool exec.Config
	// CacheDir, when non-empty, is the content-addressed sweep cache
	// directory: cells persist across requests (and daemon restarts), so a
	// repeated sweep spec re-executes nothing. Empty keeps the memo
	// in-memory only. Sharded sweep requests (?shards=N&shard=I) and merges
	// (?merge=1) require it — the shards' journals and leases live there.
	CacheDir string
	// MemoDir, when non-empty, adds a disk tier behind the in-memory
	// response memo: exact response bytes persist content-addressed (atomic
	// writes, checksummed entries) so a daemon restart keeps hot results
	// warm. Ignored when MemoEntries is negative (memoization disabled).
	MemoDir string
	// SweepLeaseTTL is the shard-lease time-to-live for sharded sweep
	// requests: a shard silent this long is presumed dead and its lease
	// stolen (0 = the sweep engine's default).
	SweepLeaseTTL time.Duration
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's execution, queued wait included
	// (0 = DefaultRequestTimeout; negative = no limit).
	RequestTimeout time.Duration
	// MemoEntries bounds each response memo (solve and sweep separately) to
	// this many most-recently-used specs (0 = DefaultMemoEntries; negative
	// disables response memoization entirely).
	MemoEntries int
	// JobRetention is how long a finished job's status — result bytes
	// included — stays queryable via GET /v1/jobs/{id} before eviction
	// (0 = DefaultJobRetention; negative retains forever).
	JobRetention time.Duration
	// Slow-client protections applied by HTTPServer (zero = the package
	// defaults, negative = disabled). They guard the daemon's front door:
	// ReadHeaderTimeout bounds how long a connection may dribble its header
	// (the slowloris defense), ReadTimeout bounds the whole request read,
	// IdleTimeout reaps idle keep-alives, MaxHeaderBytes caps per-connection
	// header memory.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	MaxHeaderBytes    int
	// Registry, when non-nil, receives the exec-pool and serve instruments
	// (it is also what the ops mux exposes on /metrics).
	Registry *obs.Registry
	// Tracer, when non-nil and enabled, receives the serve.request /
	// exec.job / solver span hierarchy of every request.
	Tracer obs.Tracer
}

// Server is the localization service: an http.Handler plus the execution
// plane behind it.
type Server struct {
	cfg    Config
	pool   *exec.Pool
	tr     obs.Tracer
	mux    *http.ServeMux
	closed atomic.Bool

	jobsMu sync.Mutex
	jobs   map[string]*jobEntry // job id → entry, finished ones expiring
	nextID atomic.Uint64

	// Response memos: canonical spec hash → exact bytes served before. Two
	// tiers: a bounded in-memory LRU (Config.MemoEntries) over an optional
	// content-addressed disk store (Config.MemoDir) that survives restarts.
	solveMemo *tieredMemo
	sweepMemo *tieredMemo

	// flights deduplicates concurrent identical requests: one execution per
	// content hash, shared by every request in flight with that hash.
	flights *flightGroup

	// The /v1/algorithms response, computed once at construction — the
	// registry is frozen after init, so re-deriving it per request was pure
	// waste.
	algBytes []byte
	algETag  string

	m *serveMetrics
}

type serveMetrics struct {
	requests    *obs.Counter
	memoHits    *obs.Counter // any-tier hits (the pre-tiering instrument)
	memHits     *obs.Counter
	memMisses   *obs.Counter
	diskHits    *obs.Counter
	diskMisses  *obs.Counter
	coalesced   *obs.Counter
	notModified *obs.Counter
	rejected    *obs.Counter
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	if reg == nil {
		return nil
	}
	return &serveMetrics{
		requests:    reg.Counter("wsnloc_serve_requests_total"),
		memoHits:    reg.Counter("wsnloc_serve_memo_hits_total"),
		memHits:     reg.Counter("wsnloc_serve_memo_mem_hits_total"),
		memMisses:   reg.Counter("wsnloc_serve_memo_mem_misses_total"),
		diskHits:    reg.Counter("wsnloc_serve_memo_disk_hits_total"),
		diskMisses:  reg.Counter("wsnloc_serve_memo_disk_misses_total"),
		coalesced:   reg.Counter("wsnloc_serve_coalesced_total"),
		notModified: reg.Counter("wsnloc_serve_not_modified_total"),
		rejected:    reg.Counter("wsnloc_serve_rejected_total"),
	}
}

func (m *serveMetrics) request() {
	if m != nil {
		m.requests.Inc()
	}
}

// memoHit records a cache hit on the given tier. A disk hit is also a miss
// on the memory tier above it, so per-tier hit rates stay honest.
func (m *serveMetrics) memoHit(tier string) {
	if m == nil {
		return
	}
	m.memoHits.Inc()
	switch tier {
	case tierMem:
		m.memHits.Inc()
	case tierDisk:
		m.memMisses.Inc()
		m.diskHits.Inc()
	}
}

// memoMiss records a full cache miss (every configured tier consulted).
func (m *serveMetrics) memoMiss(hasDisk bool) {
	if m == nil {
		return
	}
	m.memMisses.Inc()
	if hasDisk {
		m.diskMisses.Inc()
	}
}

func (m *serveMetrics) coalesce() {
	if m != nil {
		m.coalesced.Inc()
	}
}

func (m *serveMetrics) cond304() {
	if m != nil {
		m.notModified.Inc()
	}
}

func (m *serveMetrics) reject() {
	if m != nil {
		m.rejected.Inc()
	}
}

// New builds a Server and starts its execution pool. Invalid configuration
// wraps wsnerr.ErrBadConfig.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("serve: %w: MaxBodyBytes must be >= 0, got %d", wsnerr.ErrBadConfig, cfg.MaxBodyBytes)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MemoEntries == 0 {
		cfg.MemoEntries = DefaultMemoEntries
	}
	if cfg.JobRetention == 0 {
		cfg.JobRetention = DefaultJobRetention
	}
	// The disk tier rides behind the LRU only while memoization is on; a
	// negative MemoEntries disables the response memo entirely.
	var solveDisk, sweepDisk *diskMemo
	if cfg.MemoEntries > 0 {
		var err error
		if solveDisk, err = openDiskMemo(cfg.MemoDir, "solve"); err != nil {
			return nil, err
		}
		if sweepDisk, err = openDiskMemo(cfg.MemoDir, "sweep"); err != nil {
			return nil, err
		}
	}
	// The registry is frozen after init, so the /v1/algorithms document is a
	// constant: compute its bytes and validator once instead of re-deriving
	// and re-marshaling per request.
	algBytes, err := json.Marshal(map[string]interface{}{"algorithms": alg.Names()})
	if err != nil {
		return nil, fmt.Errorf("serve: encoding algorithm list: %w", err)
	}
	algSum := sha256.Sum256(algBytes)
	poolCfg := cfg.Pool
	if poolCfg.Metrics == nil {
		poolCfg.Metrics = cfg.Registry
	}
	pool, err := exec.NewPool(poolCfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		pool:      pool,
		tr:        cfg.Tracer,
		jobs:      make(map[string]*jobEntry),
		solveMemo: &tieredMemo{mem: newMemo(cfg.MemoEntries), disk: solveDisk},
		sweepMemo: &tieredMemo{mem: newMemo(cfg.MemoEntries), disk: sweepDisk},
		flights:   newFlightGroup(),
		algBytes:  algBytes,
		algETag:   etagOf(hex.EncodeToString(algSum[:])),
		m:         newServeMetrics(cfg.Registry),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	s.mux = mux
	return s, nil
}

// Handler returns the /v1 API handler. Mount obs.NewOpsMux alongside it for
// the ops plane (wsnlocd does).
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the server's execution plane (exposed so callers can share
// it with embedded engines).
func (s *Server) Pool() *exec.Pool { return s.pool }

// Shutdown drains the service: new requests are refused with 503, admission
// closes, and every accepted job — queued or in flight — runs to completion
// before Shutdown returns, unless ctx expires first (its error is returned
// with work still in flight). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.pool.Close()
	return s.pool.Drain(ctx)
}

// Closing returns whether Shutdown has begun.
func (s *Server) Closing() bool { return s.closed.Load() }

// --- request plumbing ---------------------------------------------------

// apiError is the uniform JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeReject maps an admission failure to the backpressure contract:
// queue full → 429 + Retry-After, draining → 503.
func (s *Server) writeReject(w http.ResponseWriter, err error) {
	s.m.reject()
	switch {
	case errors.Is(err, exec.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "execution queue full, retry later")
	case errors.Is(err, exec.ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// readBody reads the size-capped request body. A body over the limit
// reports (nil, false) after answering 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		} else {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// requestCtx derives the execution context of one request: the server's
// lifetime for async jobs (the client may hang up), the client's connection
// for sync ones, both bounded by the configured per-request timeout.
func (s *Server) requestCtx(r *http.Request, async bool) (context.Context, context.CancelFunc) {
	base := r.Context()
	if async {
		base = context.Background()
	}
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(base, s.cfg.RequestTimeout)
	}
	return context.WithCancel(base)
}

// --- jobs ---------------------------------------------------------------

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "solve" | "sweep"
	Hash  string `json:"hash"`
	State string `json:"state"` // "queued" | "running" | "done" | "error"
	Error string `json:"error,omitempty"`
	// Result is the endpoint's response document, present when done.
	Result json.RawMessage `json:"result,omitempty"`
	// Cached reports whether the result came from the cross-request memo.
	Cached bool `json:"cached"`
}

type jobEntry struct {
	id   string
	kind string
	hash string

	mu      sync.Mutex
	running bool
	done    bool
	doneAt  time.Time
	err     string
	result  []byte
	cached  bool
}

func (e *jobEntry) status() JobStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := JobStatus{ID: e.id, Kind: e.kind, Hash: e.hash, Cached: e.cached}
	switch {
	case e.done && e.err != "":
		st.State = "error"
		st.Error = e.err
	case e.done:
		st.State = "done"
		st.Result = json.RawMessage(e.result)
	case e.running:
		st.State = "running"
	default:
		st.State = "queued"
	}
	return st
}

func (e *jobEntry) start() {
	e.mu.Lock()
	e.running = true
	e.mu.Unlock()
}

func (e *jobEntry) finish(result []byte, cached bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done = true
	e.doneAt = time.Now()
	e.running = false
	e.result = result
	e.cached = cached
	if err != nil {
		e.err = err.Error()
	}
}

// abandon records a terminal state for a job whose fn never got to run —
// typically a context that expired while the job sat in the admission
// queue, which exec skips without executing. An entry that already
// finished is left untouched. Without this transition GET /v1/jobs/{id}
// would report "queued" forever for a job the pool has already discarded.
func (e *jobEntry) abandon(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return
	}
	e.done = true
	e.doneAt = time.Now()
	e.running = false
	if err == nil {
		err = errors.New("job abandoned before completion")
	}
	e.err = err.Error()
}

// doneSince reports whether the entry is terminal and when it got there.
func (e *jobEntry) doneSince() (bool, time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done, e.doneAt
}

// resultBytes returns the finished entry's response document (nil on
// error or before completion).
func (e *jobEntry) resultBytes() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.result
}

// newJob registers a job entry for one admitted request, expiring stale
// finished entries on the way in.
func (s *Server) newJob(kind, hash string) *jobEntry {
	id := fmt.Sprintf("%s-%06d-%.12s", kind, s.nextID.Add(1), hash)
	e := &jobEntry{id: id, kind: kind, hash: hash}
	s.jobsMu.Lock()
	s.evictJobsLocked(time.Now())
	s.jobs[id] = e
	s.jobsMu.Unlock()
	return e
}

// dropJob removes an entry whose submission was rejected, so a 429/503
// answer does not leave a phantom "queued" job behind.
func (s *Server) dropJob(id string) {
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
}

// evictJobsLocked expires terminal job entries: anything finished longer
// than the retention window ago goes, and if a burst leaves more than
// maxDoneJobs finished entries inside the window the oldest go too. Queued
// and running entries are never touched, so a polling client can only lose
// a status it stopped asking about for a whole retention window.
func (s *Server) evictJobsLocked(now time.Time) {
	if s.cfg.JobRetention < 0 {
		return
	}
	type doneJob struct {
		id string
		at time.Time
	}
	finished := make([]doneJob, 0, len(s.jobs))
	for id, e := range s.jobs {
		done, at := e.doneSince()
		if !done {
			continue
		}
		if now.Sub(at) > s.cfg.JobRetention {
			delete(s.jobs, id)
			continue
		}
		finished = append(finished, doneJob{id, at})
	}
	if len(finished) <= maxDoneJobs {
		return
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].at.Before(finished[j].at) })
	for _, d := range finished[:len(finished)-maxDoneJobs] {
		delete(s.jobs, d.id)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.jobsMu.Lock()
	e, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, e.status())
}

// handleAlgorithms serves the construction-time algorithm document with the
// same validator contract as the result endpoints: a strong ETag and an
// If-None-Match fast path to 304.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	h := w.Header()
	h.Set("ETag", s.algETag)
	h.Set("Vary", "Accept-Encoding")
	if ifNoneMatchHas(r, s.algETag) {
		s.m.cond304()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeBytes(w, r, s.algBytes)
}

// --- solve --------------------------------------------------------------

// decodeSolveBody parses one POST /v1/solve body into a validated spec and
// its content hash. It is the surface FuzzServeSolveBody exercises.
func decodeSolveBody(body []byte) (alg.Spec, string, error) {
	sp, err := alg.ParseSpec(body)
	if err != nil {
		return alg.Spec{}, "", err
	}
	hash, err := sp.Hash()
	if err != nil {
		return alg.Spec{}, "", err
	}
	return sp, hash, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.m.request()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sp, hash, err := decodeSolveBody(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	async := r.URL.Query().Get("async") == "1"

	// Conditional fast path: a client that already holds these bytes (the
	// ETag is the content address) gets 304 before any cache or pool work.
	if !async && s.answer304(w, r, hash) {
		return
	}

	// Cross-request memo: an identical spec already answered returns the
	// exact bytes it got, instantly, at any queue depth.
	if cached, tier, ok := s.solveMemo.Get(hash); ok {
		s.m.memoHit(tier)
		if async {
			e := s.newJob("solve", hash)
			e.finish(cached, true, nil)
			s.writeAccepted(w, e)
			return
		}
		s.writeResult(w, r, hash, cached, cacheHit, tier)
		return
	}
	s.m.memoMiss(s.solveMemo.disk != nil)

	// In-flight coalescing: a concurrent identical request is already
	// executing — ride it instead of burning a second run.
	call, leader := s.flights.join("solve/" + hash)
	if !leader {
		s.followFlight(w, r, "solve", hash, call, async)
		return
	}
	// Leadership double-check: a previous leader's memo fill precedes its
	// flight retirement, so a memo hit here means the bytes landed between
	// our miss and taking leadership. Serve them and resolve the flight for
	// any followers that raced in with us — this is what makes "one
	// execution per hash" airtight rather than merely likely.
	if cached, tier, ok := s.solveMemo.Get(hash); ok {
		s.flights.complete("solve/"+hash, call, cached, nil)
		s.m.memoHit(tier)
		if async {
			e := s.newJob("solve", hash)
			e.finish(cached, true, nil)
			s.writeAccepted(w, e)
			return
		}
		s.writeResult(w, r, hash, cached, cacheHit, tier)
		return
	}

	reqSpan := obs.StartSpan(s.tr, "serve.request", map[string]interface{}{
		"endpoint": "/v1/solve", "hash": hash, "async": async,
	})
	e := s.newJob("solve", hash)
	// The shared execution is detached from any single client connection —
	// followers may be riding it, so only the per-request timeout and
	// server drain can stop it. A follower (or even the leader's client)
	// hanging up leaves the run, the memo fill, and everyone else's
	// response intact.
	ctx, cancel := s.requestCtx(r, true)
	job, err := s.pool.Submit(ctx, "solve", reqSpan.Tracer(), func(ctx context.Context, tr obs.Tracer) error {
		e.start()
		// The job-span tracer rides into the algorithm, so bncl.run and its
		// rounds parent under serve.request → exec.job.
		run := sp
		run.AlgOpts.Tracer = tr
		p, res, err := run.Run(ctx)
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		out, err := EncodeSolveResponse(hash, run, p, res)
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		s.solveMemo.Put(hash, out)
		e.finish(out, false, nil)
		return nil
	})
	if err != nil {
		cancel()
		s.dropJob(e.id)
		s.flights.complete("solve/"+hash, call, nil, err)
		reqSpan.EndAs("rejected", map[string]interface{}{"err": err.Error()})
		s.writeReject(w, err)
		return
	}
	s.watchJob(job, e, "solve/"+hash, call, cancel, reqSpan, async)
	if async {
		s.writeAccepted(w, e)
		return
	}
	if err := job.Wait(r.Context()); err != nil {
		if r.Context().Err() != nil {
			// Client hung up. The execution keeps running — followers and
			// the memo still want its result; the watcher releases the
			// context when the job finishes.
			reqSpan.EndAs("canceled", nil)
			return
		}
		reqSpan.EndAs("error", map[string]interface{}{"err": err.Error()})
		writeRunError(w, err)
		return
	}
	reqSpan.End()
	s.writeResult(w, r, hash, e.resultBytes(), cacheMiss, "")
}

// followFlight serves one coalesced request: wait for the leader's shared
// execution and answer with its byte-identical result. The follower's
// context bounds only its own wait — hanging up abandons the response, not
// the leader's run.
func (s *Server) followFlight(w http.ResponseWriter, r *http.Request, kind, hash string, call *flightCall, async bool) {
	s.m.coalesce()
	if async {
		e := s.newJob(kind, hash)
		go func() {
			<-call.done
			res, err := call.outcome()
			e.finish(res, err == nil, err)
		}()
		s.writeAccepted(w, e)
		return
	}
	select {
	case <-call.done:
	case <-r.Context().Done():
		return // follower hung up; the leader keeps running
	}
	res, err := call.outcome()
	switch {
	case err == nil:
		s.writeResult(w, r, hash, res, cacheCoalesced, "")
	case errors.Is(err, exec.ErrQueueFull), errors.Is(err, exec.ErrPoolClosed):
		// The leader never got admitted; followers share its rejection.
		s.writeReject(w, err)
	default:
		writeRunError(w, err)
	}
}

// watchJob is the terminal-state watcher every admitted job gets: once the
// pool is done with the job — ran, failed, or skipped because its context
// died while queued — the entry reaches a terminal state (without this a
// queued-then-expired job would report "queued" forever), the flight
// resolves so followers unblock with the result or the real typed error,
// and the detached context is released. For async jobs it also owns the
// span end; sync leaders end their span on the response path.
func (s *Server) watchJob(job *exec.Job, e *jobEntry, key string, call *flightCall, cancel context.CancelFunc, reqSpan *obs.Span, async bool) {
	go func() {
		<-job.Done()
		err := job.Err()
		e.abandon(err)
		if call != nil {
			s.flights.complete(key, call, e.resultBytes(), err)
		}
		cancel()
		if async {
			if err != nil {
				reqSpan.EndAs("error", map[string]interface{}{"err": err.Error()})
			} else {
				reqSpan.End()
			}
		}
	}()
}

// --- sweep --------------------------------------------------------------

// sweepHash is the content address of one sweep request: SHA-256 over the
// normalized sweep document (axes expanded, defaults explicit).
func sweepHash(sw sweep.Spec) (string, error) {
	data, err := json.Marshal(sw.Normalize())
	if err != nil {
		return "", fmt.Errorf("serve: encoding sweep: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("wsnloc/serve.sweep/v1\n"))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// parseSweepShardQuery reads the distributed-sweep parameters of one
// POST /v1/sweep request: ?shards=N&shard=I runs one shard of an N-way
// split, ?merge=1 folds a directory of finished shards into the full
// summary. The two are mutually exclusive.
func parseSweepShardQuery(r *http.Request) (shards, shard int, merge bool, err error) {
	q := r.URL.Query()
	if v := q.Get("merge"); v != "" {
		if v != "1" && v != "true" {
			return 0, 0, false, fmt.Errorf("merge must be 1, got %q", v)
		}
		merge = true
	}
	if v := q.Get("shards"); v != "" {
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 1 {
			return 0, 0, false, fmt.Errorf("shards must be a positive integer, got %q", v)
		}
		shards = n
	}
	if v := q.Get("shard"); v != "" {
		if shards == 0 {
			return 0, 0, false, fmt.Errorf("shard requires shards")
		}
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 || n >= shards {
			return 0, 0, false, fmt.Errorf("shard must be in [0, %d), got %q", shards, v)
		}
		shard = n
	}
	if merge && shards > 0 {
		return 0, 0, false, fmt.Errorf("merge and shards are mutually exclusive")
	}
	return shards, shard, merge, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.m.request()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sw, err := sweep.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := sweepHash(sw)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	async := r.URL.Query().Get("async") == "1"
	shards, shardIdx, mergeReq, err := parseSweepShardQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sharded := shards > 1 || mergeReq
	if sharded && s.cfg.CacheDir == "" {
		writeError(w, http.StatusBadRequest,
			"sharded sweeps and merges need a server-side cache directory (start the daemon with a cache dir)")
		return
	}

	// Sharded requests and merges bypass the response memo, the flight
	// group, and the ETag contract in both directions: a shard's response
	// covers only its slice of the grid, and a merge's answer depends on
	// what other workers have written to the cache directory since —
	// neither is the cacheable full-grid document the hash addresses.
	var call *flightCall
	if !sharded {
		if !async && s.answer304(w, r, hash) {
			return
		}
		if cached, tier, ok := s.sweepMemo.Get(hash); ok {
			s.m.memoHit(tier)
			if async {
				e := s.newJob("sweep", hash)
				e.finish(cached, true, nil)
				s.writeAccepted(w, e)
				return
			}
			s.writeResult(w, r, hash, cached, cacheHit, tier)
			return
		}
		s.m.memoMiss(s.sweepMemo.disk != nil)
		var leader bool
		call, leader = s.flights.join("sweep/" + hash)
		if !leader {
			s.followFlight(w, r, "sweep", hash, call, async)
			return
		}
		// Same leadership double-check as handleSolve: a fill that landed
		// between our miss and leadership serves everyone without a run.
		if cached, tier, ok := s.sweepMemo.Get(hash); ok {
			s.flights.complete("sweep/"+hash, call, cached, nil)
			s.m.memoHit(tier)
			if async {
				e := s.newJob("sweep", hash)
				e.finish(cached, true, nil)
				s.writeAccepted(w, e)
				return
			}
			s.writeResult(w, r, hash, cached, cacheHit, tier)
			return
		}
	}

	spanAttrs := map[string]interface{}{
		"endpoint": "/v1/sweep", "hash": hash, "async": async,
	}
	if mergeReq {
		spanAttrs["merge"] = true
	} else if sharded {
		spanAttrs["shards"] = shards
		spanAttrs["shard"] = shardIdx
	}
	reqSpan := obs.StartSpan(s.tr, "serve.request", spanAttrs)
	e := s.newJob("sweep", hash)
	// Unsharded executions are shared (followers may coalesce onto them) and
	// therefore detached from the leader's connection; sharded slices and
	// merges stay bound to their own client as before.
	ctx, cancel := s.requestCtx(r, async || !sharded)
	job, err := s.pool.Submit(ctx, "sweep", reqSpan.Tracer(), func(ctx context.Context, tr obs.Tracer) error {
		e.start()
		var res *sweep.Result
		var err error
		if mergeReq {
			// Merge only folds journals and cache objects — no cells execute,
			// so it runs directly on the job goroutine.
			res, err = sweep.Merge(sw, s.cfg.CacheDir)
		} else {
			// Cells fan out on the same shared pool; the caller-participating
			// scatter means this job makes progress even when the pool is
			// saturated with other requests.
			res, err = sweep.RunCtx(ctx, sw, sweep.Options{
				OutDir:     s.cfg.CacheDir,
				Resume:     s.cfg.CacheDir != "",
				Workers:    s.pool.Workers(),
				Shards:     shards,
				ShardIndex: shardIdx,
				LeaseTTL:   s.cfg.SweepLeaseTTL,
				Tracer:     tr,
				Metrics:    s.cfg.Registry,
				Pool:       s.pool,
			})
		}
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		out, err := EncodeSweepResponse(hash, res)
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		if !sharded {
			s.sweepMemo.Put(hash, out)
		}
		e.finish(out, false, nil)
		return nil
	})
	if err != nil {
		cancel()
		s.dropJob(e.id)
		if call != nil {
			s.flights.complete("sweep/"+hash, call, nil, err)
		}
		reqSpan.EndAs("rejected", map[string]interface{}{"err": err.Error()})
		s.writeReject(w, err)
		return
	}
	// Same terminal-state watcher as handleSolve: a job skipped by its
	// dead context must not leave the entry "queued" forever, and unsharded
	// flights must resolve for their followers.
	s.watchJob(job, e, "sweep/"+hash, call, cancel, reqSpan, async)
	if async {
		s.writeAccepted(w, e)
		return
	}
	if err := job.Wait(r.Context()); err != nil {
		if r.Context().Err() != nil {
			reqSpan.EndAs("canceled", nil)
			return
		}
		reqSpan.EndAs("error", map[string]interface{}{"err": err.Error()})
		writeRunError(w, err)
		return
	}
	reqSpan.End()
	if sharded {
		// The hash does not address a shard slice or merge outcome — no
		// validator, no memo, exact bytes as computed.
		s.writeResult(w, r, "", e.resultBytes(), cacheMiss, "")
		return
	}
	s.writeResult(w, r, hash, e.resultBytes(), cacheMiss, "")
}

// --- responses ----------------------------------------------------------

// writeAccepted answers an async submission: 202 plus the job's status URL.
func (s *Server) writeAccepted(w http.ResponseWriter, e *jobEntry) {
	w.Header().Set("Location", "/v1/jobs/"+e.id)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"job_id":     e.id,
		"status_url": "/v1/jobs/" + e.id,
	})
}

// Values of the X-Wsnloc-Cache response header: "miss" executed here,
// "hit" answered from the response memo (tier in X-Wsnloc-Cache-Tier), and
// "coalesced" rode a concurrent identical request's execution.
const (
	cacheMiss      = "miss"
	cacheHit       = "hit"
	cacheCoalesced = "coalesced"
)

// writeResult serves a completed result document. The identity bytes are
// written exactly as stored — a memo hit or coalesced response is
// byte-identical to the execution that produced it — with the hash as a
// strong ETag and gzip when the client negotiates it. hash may be empty
// (sharded sweep slices, whose bytes the request hash does not address), in
// which case no validator is sent.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, hash string, body []byte, cache, tier string) {
	h := w.Header()
	if hash != "" {
		h.Set("ETag", etagOf(hash))
	}
	h.Set("Vary", "Accept-Encoding")
	h.Set("X-Wsnloc-Cache", cache)
	if tier != "" {
		h.Set("X-Wsnloc-Cache-Tier", tier)
	}
	writeBytes(w, r, body)
}

// answer304 short-circuits a conditional request: when If-None-Match
// carries the hash's ETag the client already holds the exact bytes this
// content address resolves to — the response is a pure function of the
// hash — so not even a cache lookup, let alone an execution, is spent on
// it.
func (s *Server) answer304(w http.ResponseWriter, r *http.Request, hash string) bool {
	et := etagOf(hash)
	if !ifNoneMatchHas(r, et) {
		return false
	}
	s.m.cond304()
	w.Header().Set("ETag", et)
	w.WriteHeader(http.StatusNotModified)
	return true
}

// writeRunError maps an execution failure: spec problems the validators
// missed → 400, a shard lease another worker holds or a merge over a grid
// with unfinished shards → 409 (the resource's current state conflicts,
// retry once it changes), timeouts → 504, anything else → 500.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request timed out: %v", err)
	case errors.Is(err, sweep.ErrShardHeld), errors.Is(err, sweep.ErrIncomplete),
		errors.Is(err, sweep.ErrBadJournal):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, wsnerr.ErrBadSpec), errors.Is(err, wsnerr.ErrBadScenario),
		errors.Is(err, wsnerr.ErrBadConfig), errors.Is(err, wsnerr.ErrUnknownAlgorithm):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
