// Package serve turns the localization library into a long-running
// service: a stdlib net/http API that accepts alg.Spec and sweep-spec JSON,
// executes them on the shared bounded execution plane (internal/exec), and
// memoizes results content-addressed by canonical spec hash, so identical
// specs from different clients return byte-identical cached bytes
// instantly.
//
// API (all JSON):
//
//	POST /v1/solve        body: alg.Spec     → SolveResponse
//	POST /v1/sweep        body: sweep spec   → SweepResponse
//	GET  /v1/jobs/{id}                       → JobStatus (async submissions)
//	GET  /v1/algorithms                      → registered algorithm names
//
// Both POST endpoints run synchronously by default and accept ?async=1 to
// enqueue and return 202 with a job id. Admission is bounded: a full
// execution queue answers 429 with a Retry-After header (the backpressure
// contract), an oversized body 413, an invalid spec 400, and a draining
// server 503. Every request threads a span chain
// serve.request → exec.job → bncl.run into the configured tracer.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/exec"
	"wsnloc/internal/obs"
	"wsnloc/internal/sweep"
	"wsnloc/internal/wsnerr"
)

// DefaultMaxBodyBytes bounds request bodies when Config leaves MaxBodyBytes
// zero: far above any legitimate spec, far below an allocation attack.
const DefaultMaxBodyBytes = 1 << 20

// DefaultRequestTimeout bounds one request's execution when Config leaves
// RequestTimeout zero.
const DefaultRequestTimeout = 5 * time.Minute

// DefaultMemoEntries bounds each response memo (solve and sweep
// separately) when Config leaves MemoEntries zero.
const DefaultMemoEntries = 256

// DefaultJobRetention is how long a finished job's status stays queryable
// when Config leaves JobRetention zero.
const DefaultJobRetention = 15 * time.Minute

// maxDoneJobs caps how many finished job entries the table retains even
// inside the retention window, so a submission burst cannot pin an
// unbounded number of result documents in memory.
const maxDoneJobs = 4096

// Config tunes a Server.
type Config struct {
	// Pool configures the shared bounded execution plane every request runs
	// on: Workers solver goroutines and a FIFO admission queue of
	// Pool.QueueDepth requests, beyond which submissions get 429.
	Pool exec.Config
	// CacheDir, when non-empty, is the content-addressed sweep cache
	// directory: cells persist across requests (and daemon restarts), so a
	// repeated sweep spec re-executes nothing. Empty keeps the memo
	// in-memory only. Sharded sweep requests (?shards=N&shard=I) and merges
	// (?merge=1) require it — the shards' journals and leases live there.
	CacheDir string
	// SweepLeaseTTL is the shard-lease time-to-live for sharded sweep
	// requests: a shard silent this long is presumed dead and its lease
	// stolen (0 = the sweep engine's default).
	SweepLeaseTTL time.Duration
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's execution, queued wait included
	// (0 = DefaultRequestTimeout; negative = no limit).
	RequestTimeout time.Duration
	// MemoEntries bounds each response memo (solve and sweep separately) to
	// this many most-recently-used specs (0 = DefaultMemoEntries; negative
	// disables response memoization entirely).
	MemoEntries int
	// JobRetention is how long a finished job's status — result bytes
	// included — stays queryable via GET /v1/jobs/{id} before eviction
	// (0 = DefaultJobRetention; negative retains forever).
	JobRetention time.Duration
	// Registry, when non-nil, receives the exec-pool and serve instruments
	// (it is also what the ops mux exposes on /metrics).
	Registry *obs.Registry
	// Tracer, when non-nil and enabled, receives the serve.request /
	// exec.job / solver span hierarchy of every request.
	Tracer obs.Tracer
}

// Server is the localization service: an http.Handler plus the execution
// plane behind it.
type Server struct {
	cfg    Config
	pool   *exec.Pool
	tr     obs.Tracer
	mux    *http.ServeMux
	closed atomic.Bool

	jobsMu sync.Mutex
	jobs   map[string]*jobEntry // job id → entry, finished ones expiring
	nextID atomic.Uint64

	// Response memos: canonical spec hash → exact bytes served before,
	// bounded LRU (Config.MemoEntries).
	solveMemo *memo
	sweepMemo *memo

	m *serveMetrics
}

type serveMetrics struct {
	requests *obs.Counter
	memoHits *obs.Counter
	rejected *obs.Counter
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	if reg == nil {
		return nil
	}
	return &serveMetrics{
		requests: reg.Counter("wsnloc_serve_requests_total"),
		memoHits: reg.Counter("wsnloc_serve_memo_hits_total"),
		rejected: reg.Counter("wsnloc_serve_rejected_total"),
	}
}

func (m *serveMetrics) request() {
	if m != nil {
		m.requests.Inc()
	}
}

func (m *serveMetrics) memoHit() {
	if m != nil {
		m.memoHits.Inc()
	}
}

func (m *serveMetrics) reject() {
	if m != nil {
		m.rejected.Inc()
	}
}

// New builds a Server and starts its execution pool. Invalid configuration
// wraps wsnerr.ErrBadConfig.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes < 0 {
		return nil, fmt.Errorf("serve: %w: MaxBodyBytes must be >= 0, got %d", wsnerr.ErrBadConfig, cfg.MaxBodyBytes)
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MemoEntries == 0 {
		cfg.MemoEntries = DefaultMemoEntries
	}
	if cfg.JobRetention == 0 {
		cfg.JobRetention = DefaultJobRetention
	}
	poolCfg := cfg.Pool
	if poolCfg.Metrics == nil {
		poolCfg.Metrics = cfg.Registry
	}
	pool, err := exec.NewPool(poolCfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		pool:      pool,
		tr:        cfg.Tracer,
		jobs:      make(map[string]*jobEntry),
		solveMemo: newMemo(cfg.MemoEntries),
		sweepMemo: newMemo(cfg.MemoEntries),
		m:         newServeMetrics(cfg.Registry),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	s.mux = mux
	return s, nil
}

// Handler returns the /v1 API handler. Mount obs.NewOpsMux alongside it for
// the ops plane (wsnlocd does).
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the server's execution plane (exposed so callers can share
// it with embedded engines).
func (s *Server) Pool() *exec.Pool { return s.pool }

// Shutdown drains the service: new requests are refused with 503, admission
// closes, and every accepted job — queued or in flight — runs to completion
// before Shutdown returns, unless ctx expires first (its error is returned
// with work still in flight). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	s.pool.Close()
	return s.pool.Drain(ctx)
}

// Closing returns whether Shutdown has begun.
func (s *Server) Closing() bool { return s.closed.Load() }

// --- request plumbing ---------------------------------------------------

// apiError is the uniform JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...)})
}

// writeReject maps an admission failure to the backpressure contract:
// queue full → 429 + Retry-After, draining → 503.
func (s *Server) writeReject(w http.ResponseWriter, err error) {
	s.m.reject()
	switch {
	case errors.Is(err, exec.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "execution queue full, retry later")
	case errors.Is(err, exec.ErrPoolClosed):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// readBody reads the size-capped request body. A body over the limit
// reports (nil, false) after answering 413.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		} else {
			writeError(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return body, true
}

// requestCtx derives the execution context of one request: the server's
// lifetime for async jobs (the client may hang up), the client's connection
// for sync ones, both bounded by the configured per-request timeout.
func (s *Server) requestCtx(r *http.Request, async bool) (context.Context, context.CancelFunc) {
	base := r.Context()
	if async {
		base = context.Background()
	}
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(base, s.cfg.RequestTimeout)
	}
	return context.WithCancel(base)
}

// --- jobs ---------------------------------------------------------------

// JobStatus is the GET /v1/jobs/{id} response.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "solve" | "sweep"
	Hash  string `json:"hash"`
	State string `json:"state"` // "queued" | "running" | "done" | "error"
	Error string `json:"error,omitempty"`
	// Result is the endpoint's response document, present when done.
	Result json.RawMessage `json:"result,omitempty"`
	// Cached reports whether the result came from the cross-request memo.
	Cached bool `json:"cached"`
}

type jobEntry struct {
	id   string
	kind string
	hash string

	mu      sync.Mutex
	running bool
	done    bool
	doneAt  time.Time
	err     string
	result  []byte
	cached  bool
}

func (e *jobEntry) status() JobStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := JobStatus{ID: e.id, Kind: e.kind, Hash: e.hash, Cached: e.cached}
	switch {
	case e.done && e.err != "":
		st.State = "error"
		st.Error = e.err
	case e.done:
		st.State = "done"
		st.Result = json.RawMessage(e.result)
	case e.running:
		st.State = "running"
	default:
		st.State = "queued"
	}
	return st
}

func (e *jobEntry) start() {
	e.mu.Lock()
	e.running = true
	e.mu.Unlock()
}

func (e *jobEntry) finish(result []byte, cached bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done = true
	e.doneAt = time.Now()
	e.running = false
	e.result = result
	e.cached = cached
	if err != nil {
		e.err = err.Error()
	}
}

// abandon records a terminal state for a job whose fn never got to run —
// typically a context that expired while the job sat in the admission
// queue, which exec skips without executing. An entry that already
// finished is left untouched. Without this transition GET /v1/jobs/{id}
// would report "queued" forever for a job the pool has already discarded.
func (e *jobEntry) abandon(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return
	}
	e.done = true
	e.doneAt = time.Now()
	e.running = false
	if err == nil {
		err = errors.New("job abandoned before completion")
	}
	e.err = err.Error()
}

// doneSince reports whether the entry is terminal and when it got there.
func (e *jobEntry) doneSince() (bool, time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done, e.doneAt
}

// newJob registers a job entry for one admitted request, expiring stale
// finished entries on the way in.
func (s *Server) newJob(kind, hash string) *jobEntry {
	id := fmt.Sprintf("%s-%06d-%.12s", kind, s.nextID.Add(1), hash)
	e := &jobEntry{id: id, kind: kind, hash: hash}
	s.jobsMu.Lock()
	s.evictJobsLocked(time.Now())
	s.jobs[id] = e
	s.jobsMu.Unlock()
	return e
}

// dropJob removes an entry whose submission was rejected, so a 429/503
// answer does not leave a phantom "queued" job behind.
func (s *Server) dropJob(id string) {
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
}

// evictJobsLocked expires terminal job entries: anything finished longer
// than the retention window ago goes, and if a burst leaves more than
// maxDoneJobs finished entries inside the window the oldest go too. Queued
// and running entries are never touched, so a polling client can only lose
// a status it stopped asking about for a whole retention window.
func (s *Server) evictJobsLocked(now time.Time) {
	if s.cfg.JobRetention < 0 {
		return
	}
	type doneJob struct {
		id string
		at time.Time
	}
	finished := make([]doneJob, 0, len(s.jobs))
	for id, e := range s.jobs {
		done, at := e.doneSince()
		if !done {
			continue
		}
		if now.Sub(at) > s.cfg.JobRetention {
			delete(s.jobs, id)
			continue
		}
		finished = append(finished, doneJob{id, at})
	}
	if len(finished) <= maxDoneJobs {
		return
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].at.Before(finished[j].at) })
	for _, d := range finished[:len(finished)-maxDoneJobs] {
		delete(s.jobs, d.id)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.jobsMu.Lock()
	e, ok := s.jobs[id]
	s.jobsMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(e.status())
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{"algorithms": alg.Names()})
}

// --- solve --------------------------------------------------------------

// decodeSolveBody parses one POST /v1/solve body into a validated spec and
// its content hash. It is the surface FuzzServeSolveBody exercises.
func decodeSolveBody(body []byte) (alg.Spec, string, error) {
	sp, err := alg.ParseSpec(body)
	if err != nil {
		return alg.Spec{}, "", err
	}
	hash, err := sp.Hash()
	if err != nil {
		return alg.Spec{}, "", err
	}
	return sp, hash, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.m.request()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sp, hash, err := decodeSolveBody(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	async := r.URL.Query().Get("async") == "1"

	// Cross-request memo: an identical spec already answered returns the
	// exact bytes it got, instantly, at any queue depth.
	if cached, ok := s.solveMemo.Get(hash); ok {
		s.m.memoHit()
		if async {
			e := s.newJob("solve", hash)
			e.finish(cached, true, nil)
			s.writeAccepted(w, e)
			return
		}
		writeResult(w, cached, true)
		return
	}

	reqSpan := obs.StartSpan(s.tr, "serve.request", map[string]interface{}{
		"endpoint": "/v1/solve", "hash": hash, "async": async,
	})
	e := s.newJob("solve", hash)
	ctx, cancel := s.requestCtx(r, async)
	job, err := s.pool.Submit(ctx, "solve", reqSpan.Tracer(), func(ctx context.Context, tr obs.Tracer) error {
		e.start()
		// The job-span tracer rides into the algorithm, so bncl.run and its
		// rounds parent under serve.request → exec.job.
		run := sp
		run.AlgOpts.Tracer = tr
		p, res, err := run.Run(ctx)
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		out, err := EncodeSolveResponse(hash, run, p, res)
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		s.solveMemo.Put(hash, out)
		e.finish(out, false, nil)
		return nil
	})
	if err != nil {
		cancel()
		s.dropJob(e.id)
		reqSpan.EndAs("rejected", map[string]interface{}{"err": err.Error()})
		s.writeReject(w, err)
		return
	}
	// Whatever path the request takes, the entry must reach a terminal
	// state once the pool is done with the job: a context that expires
	// while the job is still queued skips fn entirely, and without this
	// watcher the entry would report "queued" forever. For async jobs the
	// watcher also owns the context release and the span end.
	go func() {
		<-job.Done()
		e.abandon(job.Err())
		if async {
			cancel()
			if err := job.Err(); err != nil {
				reqSpan.EndAs("error", map[string]interface{}{"err": err.Error()})
			} else {
				reqSpan.End()
			}
		}
	}()
	if async {
		s.writeAccepted(w, e)
		return
	}
	defer cancel()
	if err := job.Wait(r.Context()); err != nil {
		if r.Context().Err() != nil {
			// Client hung up; the job's ctx is canceled via cancel() above.
			reqSpan.EndAs("canceled", nil)
			return
		}
		reqSpan.EndAs("error", map[string]interface{}{"err": err.Error()})
		writeRunError(w, err)
		return
	}
	reqSpan.End()
	st := e.status()
	writeResult(w, []byte(st.Result), false)
}

// --- sweep --------------------------------------------------------------

// sweepHash is the content address of one sweep request: SHA-256 over the
// normalized sweep document (axes expanded, defaults explicit).
func sweepHash(sw sweep.Spec) (string, error) {
	data, err := json.Marshal(sw.Normalize())
	if err != nil {
		return "", fmt.Errorf("serve: encoding sweep: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("wsnloc/serve.sweep/v1\n"))
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// parseSweepShardQuery reads the distributed-sweep parameters of one
// POST /v1/sweep request: ?shards=N&shard=I runs one shard of an N-way
// split, ?merge=1 folds a directory of finished shards into the full
// summary. The two are mutually exclusive.
func parseSweepShardQuery(r *http.Request) (shards, shard int, merge bool, err error) {
	q := r.URL.Query()
	if v := q.Get("merge"); v != "" {
		if v != "1" && v != "true" {
			return 0, 0, false, fmt.Errorf("merge must be 1, got %q", v)
		}
		merge = true
	}
	if v := q.Get("shards"); v != "" {
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 1 {
			return 0, 0, false, fmt.Errorf("shards must be a positive integer, got %q", v)
		}
		shards = n
	}
	if v := q.Get("shard"); v != "" {
		if shards == 0 {
			return 0, 0, false, fmt.Errorf("shard requires shards")
		}
		n, aerr := strconv.Atoi(v)
		if aerr != nil || n < 0 || n >= shards {
			return 0, 0, false, fmt.Errorf("shard must be in [0, %d), got %q", shards, v)
		}
		shard = n
	}
	if merge && shards > 0 {
		return 0, 0, false, fmt.Errorf("merge and shards are mutually exclusive")
	}
	return shards, shard, merge, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.m.request()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	sw, err := sweep.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := sweepHash(sw)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	async := r.URL.Query().Get("async") == "1"
	shards, shardIdx, mergeReq, err := parseSweepShardQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sharded := shards > 1 || mergeReq
	if sharded && s.cfg.CacheDir == "" {
		writeError(w, http.StatusBadRequest,
			"sharded sweeps and merges need a server-side cache directory (start the daemon with a cache dir)")
		return
	}

	// Sharded requests and merges bypass the response memo in both
	// directions: a shard's response covers only its slice of the grid, and
	// a merge's answer depends on what other workers have written to the
	// cache directory since — neither is the cacheable full-grid document.
	if !sharded {
		if cached, ok := s.sweepMemo.Get(hash); ok {
			s.m.memoHit()
			if async {
				e := s.newJob("sweep", hash)
				e.finish(cached, true, nil)
				s.writeAccepted(w, e)
				return
			}
			writeResult(w, cached, true)
			return
		}
	}

	spanAttrs := map[string]interface{}{
		"endpoint": "/v1/sweep", "hash": hash, "async": async,
	}
	if mergeReq {
		spanAttrs["merge"] = true
	} else if sharded {
		spanAttrs["shards"] = shards
		spanAttrs["shard"] = shardIdx
	}
	reqSpan := obs.StartSpan(s.tr, "serve.request", spanAttrs)
	e := s.newJob("sweep", hash)
	ctx, cancel := s.requestCtx(r, async)
	job, err := s.pool.Submit(ctx, "sweep", reqSpan.Tracer(), func(ctx context.Context, tr obs.Tracer) error {
		e.start()
		var res *sweep.Result
		var err error
		if mergeReq {
			// Merge only folds journals and cache objects — no cells execute,
			// so it runs directly on the job goroutine.
			res, err = sweep.Merge(sw, s.cfg.CacheDir)
		} else {
			// Cells fan out on the same shared pool; the caller-participating
			// scatter means this job makes progress even when the pool is
			// saturated with other requests.
			res, err = sweep.RunCtx(ctx, sw, sweep.Options{
				OutDir:     s.cfg.CacheDir,
				Resume:     s.cfg.CacheDir != "",
				Workers:    s.pool.Workers(),
				Shards:     shards,
				ShardIndex: shardIdx,
				LeaseTTL:   s.cfg.SweepLeaseTTL,
				Tracer:     tr,
				Metrics:    s.cfg.Registry,
				Pool:       s.pool,
			})
		}
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		out, err := EncodeSweepResponse(hash, res)
		if err != nil {
			e.finish(nil, false, err)
			return err
		}
		if !sharded {
			s.sweepMemo.Put(hash, out)
		}
		e.finish(out, false, nil)
		return nil
	})
	if err != nil {
		cancel()
		s.dropJob(e.id)
		reqSpan.EndAs("rejected", map[string]interface{}{"err": err.Error()})
		s.writeReject(w, err)
		return
	}
	// Same terminal-state watcher as handleSolve: a job skipped by its
	// dead context must not leave the entry "queued" forever.
	go func() {
		<-job.Done()
		e.abandon(job.Err())
		if async {
			cancel()
			if err := job.Err(); err != nil {
				reqSpan.EndAs("error", map[string]interface{}{"err": err.Error()})
			} else {
				reqSpan.End()
			}
		}
	}()
	if async {
		s.writeAccepted(w, e)
		return
	}
	defer cancel()
	if err := job.Wait(r.Context()); err != nil {
		if r.Context().Err() != nil {
			reqSpan.EndAs("canceled", nil)
			return
		}
		reqSpan.EndAs("error", map[string]interface{}{"err": err.Error()})
		writeRunError(w, err)
		return
	}
	reqSpan.End()
	st := e.status()
	writeResult(w, []byte(st.Result), false)
}

// --- responses ----------------------------------------------------------

// writeAccepted answers an async submission: 202 plus the job's status URL.
func (s *Server) writeAccepted(w http.ResponseWriter, e *jobEntry) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+e.id)
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{
		"job_id":     e.id,
		"status_url": "/v1/jobs/" + e.id,
	})
}

// writeResult serves a completed result document, flagging memo hits in
// the X-Wsnloc-Cache header. The bytes are written exactly as stored, so a
// memo hit is byte-identical to the response that populated it.
func writeResult(w http.ResponseWriter, body []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Wsnloc-Cache", "hit")
	} else {
		w.Header().Set("X-Wsnloc-Cache", "miss")
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// writeRunError maps an execution failure: spec problems the validators
// missed → 400, a shard lease another worker holds or a merge over a grid
// with unfinished shards → 409 (the resource's current state conflicts,
// retry once it changes), timeouts → 504, anything else → 500.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request timed out: %v", err)
	case errors.Is(err, sweep.ErrShardHeld), errors.Is(err, sweep.ErrIncomplete),
		errors.Is(err, sweep.ErrBadJournal):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, wsnerr.ErrBadSpec), errors.Is(err, wsnerr.ErrBadScenario),
		errors.Is(err, wsnerr.ErrBadConfig), errors.Is(err, wsnerr.ErrUnknownAlgorithm):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
