package serve

import (
	"encoding/json"
	"testing"
)

// FuzzServeSolveBody fuzzes the network-facing decode path of POST
// /v1/solve: arbitrary bytes must either produce a validated spec with a
// stable content hash or a clean error — never a panic, and never a spec
// that validation would reject. Execution is deliberately out of scope (a
// fuzzer finding slow inputs is not a bug; the size guards bound them).
func FuzzServeSolveBody(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"algorithm":"centroid"}`))
	f.Add(testSpecJSON)
	f.Add(testSweepJSON) // wrong document type on the right endpoint
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"scenario":{"N":-5}}`))
	f.Add([]byte(`{"scenario":{"N":999999999999}}`))
	f.Add([]byte(`{"alg_opts":{"grid_n":1073741824}}`))
	f.Add([]byte(`{"scenario":{"NoiseFrac":1e309}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		sp, hash, err := decodeSolveBody(body)
		if err != nil {
			return
		}
		if len(hash) != 64 {
			t.Fatalf("hash %q is not hex SHA-256", hash)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("decodeSolveBody accepted a spec its own validation rejects: %v", err)
		}
		// The accepted spec must round-trip: hashing is canonical, so
		// re-encoding and re-decoding yields the same content address.
		enc, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		_, hash2, err := decodeSolveBody(enc)
		if err != nil {
			t.Fatalf("re-encoded spec rejected: %v", err)
		}
		if hash2 != hash {
			t.Fatalf("hash not stable across round-trip: %s vs %s", hash, hash2)
		}
	})
}
