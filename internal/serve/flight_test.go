package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/core"
	"wsnloc/internal/exec"
	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
)

// The "test-gate" algorithm: a centroid run that first blocks on a
// test-controlled gate, so a test can hold an execution open while it
// arranges concurrent duplicates around it. Registered once — the registry
// is process-global — and steered through package-level state.
var (
	gateOnce sync.Once
	gateMu   sync.Mutex
	gateCh   chan struct{} // non-nil: executions block until it closes
	gateRuns atomic.Int64  // how many times the algorithm actually ran
)

type gateAlg struct {
	opts alg.Opts
}

func (g gateAlg) Name() string { return "test-gate" }

func (g gateAlg) Localize(p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	return g.LocalizeCtx(context.Background(), p, stream)
}

func (g gateAlg) LocalizeCtx(ctx context.Context, p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	gateRuns.Add(1)
	gateMu.Lock()
	ch := gateCh
	gateMu.Unlock()
	if ch != nil {
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	inner, err := alg.New("centroid", g.opts)
	if err != nil {
		return nil, err
	}
	return inner.Localize(p, stream)
}

func registerGateAlg() {
	gateOnce.Do(func() {
		alg.Register("test-gate", func(o alg.Opts) core.Algorithm { return gateAlg{opts: o} })
	})
}

// closeGate opens a gate: executions block until the returned release func
// runs (idempotent; also installed as a cleanup so a failing test cannot
// wedge the pool's drain).
func closeGate(t *testing.T) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	gateMu.Lock()
	gateCh = ch
	gateMu.Unlock()
	var once sync.Once
	release = func() {
		once.Do(func() {
			gateMu.Lock()
			gateCh = nil
			gateMu.Unlock()
			close(ch)
		})
	}
	t.Cleanup(release)
	return release
}

func gateSpec(seed int) []byte {
	return []byte(fmt.Sprintf(
		`{"scenario":{"N":30,"Field":50,"AnchorFrac":0.3,"Seed":2},"algorithm":"test-gate","seed":%d}`, seed))
}

func waitCounter(t *testing.T, c *obs.Counter, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %v, want >= %v", c.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescing32IdenticalSolves is the tentpole acceptance test: 32
// concurrent identical solve requests share ONE execution — the exec pool's
// completed-job counter moves by exactly one — and every response is
// byte-identical, with exactly one "miss" and 31 coalesced/hit answers.
func TestCoalescing32IdenticalSolves(t *testing.T) {
	registerGateAlg()
	reg := obs.NewRegistry()
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, Registry: reg})
	release := closeGate(t)

	runs0 := gateRuns.Load()
	jobs0 := s.Pool().CompletedJobs()

	const n = 32
	spec := gateSpec(7)
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	verdicts := make([]string, n)
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(spec))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			statuses[i] = resp.StatusCode
			verdicts[i] = resp.Header.Get("X-Wsnloc-Cache")
			bodies[i] = readBody(t, resp)
		}(i)
	}

	// Every handler bumps the request counter before touching memo or
	// flight, so counter == 32 with the gate still closed means all 32 are
	// committed: one leader blocked in the run, 31 riding its flight (the
	// memo cannot answer while the leader is still executing).
	waitCounter(t, reg.Counter("wsnloc_serve_requests_total"), n)
	release()
	wg.Wait()

	if got := gateRuns.Load() - runs0; got != 1 {
		t.Errorf("algorithm executions = %d, want exactly 1", got)
	}
	if got := s.Pool().CompletedJobs() - jobs0; got != 1 {
		t.Errorf("exec pool completed jobs = %d, want exactly 1", got)
	}
	misses := 0
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	for i, v := range verdicts {
		if statuses[i] != http.StatusOK {
			t.Errorf("request %d: status = %d", i, statuses[i])
		}
		switch v {
		case cacheMiss:
			misses++
		case cacheCoalesced, cacheHit:
		default:
			t.Errorf("request %d: unexpected cache verdict %q", i, v)
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (the leader)", misses)
	}
	if got := reg.Counter("wsnloc_serve_coalesced_total").Value(); got != n-1 {
		t.Errorf("coalesced counter = %v, want %d", got, n-1)
	}
}

// TestFollowerCancelLeavesLeaderRunning pins the disconnect contract: a
// follower hanging up abandons only its own response — the shared execution
// keeps running, completes, and populates the memo.
func TestFollowerCancelLeavesLeaderRunning(t *testing.T) {
	registerGateAlg()
	reg := obs.NewRegistry()
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, Registry: reg})
	release := closeGate(t)
	runs0 := gateRuns.Load()

	spec := gateSpec(11)
	_, hash, err := decodeSolveBody(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Leader: fires and blocks on the gate.
	leaderDone := make(chan []byte, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(spec))
		if err != nil {
			t.Errorf("leader: %v", err)
			leaderDone <- nil
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("leader status = %d", resp.StatusCode)
		}
		leaderDone <- readBody(t, resp)
	}()
	waitCounter(t, reg.Counter("wsnloc_serve_requests_total"), 1)

	// Follower: joins the flight, then hangs up.
	fctx, fcancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(fctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	followerDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		followerDone <- err
	}()
	waitCounter(t, reg.Counter("wsnloc_serve_coalesced_total"), 1)
	fcancel()
	if err := <-followerDone; err == nil {
		t.Error("follower request succeeded despite cancellation")
	}

	// The leader must still be blocked inside its single execution: the
	// follower's disconnect canceled nothing.
	if got := gateRuns.Load() - runs0; got != 1 {
		t.Fatalf("executions after follower cancel = %d, want 1 (still running)", got)
	}
	select {
	case <-leaderDone:
		t.Fatal("leader finished while the gate was closed")
	case <-time.After(50 * time.Millisecond):
	}

	release()
	body := <-leaderDone
	if body == nil {
		t.Fatal("leader failed")
	}
	if cached, tier, ok := s.solveMemo.Get(hash); !ok {
		t.Error("memo not populated after leader completion")
	} else {
		if !bytes.Equal(cached, body) {
			t.Error("memo bytes differ from the leader's response")
		}
		if tier != tierMem {
			t.Errorf("memo tier = %q, want %q", tier, tierMem)
		}
	}
	if got := gateRuns.Load() - runs0; got != 1 {
		t.Errorf("total executions = %d, want 1", got)
	}
}

// TestMemoCoalesceChurnStress hammers the memo + flight path with
// concurrent identical and distinct specs (run under -race in CI): every
// response must be byte-identical per content hash, and each distinct hash
// must execute exactly once — the leadership double-check makes that
// airtight, not probabilistic.
func TestMemoCoalesceChurnStress(t *testing.T) {
	registerGateAlg()
	s, ts := testServer(t, Config{Pool: exec.Config{Workers: 4}})

	const (
		goroutines = 8
		iterations = 24
		hashes     = 4
	)
	runs0 := gateRuns.Load()

	var mu sync.Mutex
	firstSeen := make(map[int][]byte) // seed → first response bytes

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				seed := (g + i) % hashes
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(gateSpec(seed)))
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				body := readBody(t, resp)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("g%d i%d: status %d: %s", g, i, resp.StatusCode, body)
					return
				}
				mu.Lock()
				if want, ok := firstSeen[seed]; !ok {
					firstSeen[seed] = body
				} else if !bytes.Equal(body, want) {
					t.Errorf("g%d i%d: bytes diverged for seed %d", g, i, seed)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	if got := gateRuns.Load() - runs0; got != hashes {
		t.Errorf("executions = %d, want exactly %d (one per distinct hash)", got, hashes)
	}
	if got := s.flights.inFlight(); got != 0 {
		t.Errorf("flights still open after drain: %d", got)
	}
	if len(firstSeen) != hashes {
		t.Errorf("distinct specs seen = %d, want %d", len(firstSeen), hashes)
	}
}

// TestAsyncCoalescedFollower pins the async flavor: an async duplicate of
// an in-flight spec is accepted immediately and its job resolves to the
// leader's bytes once the shared execution lands.
func TestAsyncCoalescedFollower(t *testing.T) {
	registerGateAlg()
	reg := obs.NewRegistry()
	_, ts := testServer(t, Config{Pool: exec.Config{Workers: 2}, Registry: reg})
	release := closeGate(t)

	spec := gateSpec(23)
	leaderDone := make(chan []byte, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(spec))
		if err != nil {
			t.Errorf("leader: %v", err)
			leaderDone <- nil
			return
		}
		leaderDone <- readBody(t, resp)
	}()
	waitCounter(t, reg.Counter("wsnloc_serve_requests_total"), 1)

	resp := postJSON(t, ts.URL+"/v1/solve?async=1", spec)
	accepted := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async follower status = %d, body %s", resp.StatusCode, accepted)
	}
	var acc struct {
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(accepted, &acc); err != nil {
		t.Fatal(err)
	}

	release()
	leaderBytes := <-leaderDone
	if leaderBytes == nil {
		t.Fatal("leader failed")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jr := getJSON(t, ts.URL+acc.StatusURL)
		if jr.State == "done" {
			if !bytes.Equal([]byte(jr.Result), leaderBytes) {
				t.Fatalf("async follower result differs from leader:\n%s\nvs\n%s", jr.Result, leaderBytes)
			}
			if !jr.Cached {
				t.Error("async follower not flagged cached")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower job stuck in state %q", jr.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string) JobStatus {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad job status %s: %v", body, err)
	}
	return st
}
