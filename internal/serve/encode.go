package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"wsnloc/internal/alg"
	"wsnloc/internal/core"
	"wsnloc/internal/metrics"
	"wsnloc/internal/sweep"
)

// The wire documents. Both encoders are deterministic functions of the run
// outcome — no wall times, no timestamps, stable field order — so the memo's
// byte-identity guarantee holds: re-encoding the same result yields the same
// bytes the first request served.

// SolveStats is the evaluation block of a SolveResponse. Error statistics
// are -1 when the algorithm localized nothing (+Inf is not JSON).
type SolveStats struct {
	MeanErr   float64 `json:"mean_err_m"`
	MedianErr float64 `json:"median_err_m"`
	RMSE      float64 `json:"rmse_m"`
	P95Err    float64 `json:"p95_err_m"`
	NormRMSE  float64 `json:"rmse_r"`
	Coverage  float64 `json:"coverage"`
	Localized int     `json:"localized"`
	Unknowns  int     `json:"unknowns"`
	Messages  int     `json:"messages"`
	Bytes     int     `json:"bytes"`
	Rounds    int     `json:"rounds"`
}

// SolveResponse is the POST /v1/solve result document.
type SolveResponse struct {
	SpecHash  string `json:"spec_hash"`
	Algorithm string `json:"algorithm"`
	// Spec echoes the normalized spec that ran (defaults made explicit).
	Spec  alg.Spec   `json:"spec"`
	Stats SolveStats `json:"stats"`
	// Est holds per-node [x, y] estimates in node-id order; null for nodes
	// the algorithm did not localize. Anchors carry their known position.
	Est []*[2]float64 `json:"est"`
}

// SweepResponse is the POST /v1/sweep result document. For a sharded
// request (?shards=N&shard=I) Shards/Shard echo the split and Summary
// covers only the shard's local cells; both fields are absent from an
// unsharded response, whose bytes are unchanged from before sharding
// existed.
type SweepResponse struct {
	SweepHash string         `json:"sweep_hash"`
	Shards    int            `json:"shards,omitempty"`
	Shard     *int           `json:"shard,omitempty"`
	Summary   *sweep.Summary `json:"summary"`
}

// finite keeps error statistics JSON-encodable: +Inf (nothing localized)
// and NaN become -1.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return -1
	}
	return v
}

// EncodeSolveResponse renders one completed solve as its canonical response
// bytes. The tracer is stripped from the echoed spec (it is process-local
// state, not content).
func EncodeSolveResponse(hash string, sp alg.Spec, p *core.Problem, res *core.Result) ([]byte, error) {
	e := metrics.Evaluate(p, res)
	sp = sp.Normalize()
	sp.AlgOpts.Tracer = nil
	doc := SolveResponse{
		SpecHash:  hash,
		Algorithm: sp.Algorithm,
		Spec:      sp,
		Stats: SolveStats{
			MeanErr:   finite(e.MeanErr()),
			MedianErr: finite(e.MedianErr()),
			RMSE:      finite(e.RMSE()),
			P95Err:    finite(e.P95Err()),
			NormRMSE:  finite(e.NormRMSE()),
			Coverage:  e.Coverage(),
			Localized: e.LocalizedCount,
			Unknowns:  e.Unknowns,
			Messages:  e.Messages,
			Bytes:     e.Bytes,
			Rounds:    res.Rounds,
		},
		Est: make([]*[2]float64, len(res.Est)),
	}
	for i, v := range res.Est {
		if i < len(res.Localized) && res.Localized[i] {
			doc.Est[i] = &[2]float64{v.X, v.Y}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding solve response: %w", err)
	}
	return out, nil
}

// EncodeSweepResponse renders one completed sweep as its canonical response
// bytes: the content hash plus the deterministic summary. The execute/reuse
// split is deliberately excluded — it reflects cache temperature, not
// content, and would break byte-identity between a cold run and a resumed
// one. It travels in the X-Wsnloc-Executed / X-Wsnloc-Cached headers
// instead.
func EncodeSweepResponse(hash string, res *sweep.Result) ([]byte, error) {
	doc := SweepResponse{SweepHash: hash, Summary: res.Summary()}
	if res.Shards > 1 {
		doc.Shards = res.Shards
		shard := res.Shard
		doc.Shard = &shard
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding sweep response: %w", err)
	}
	return out, nil
}
