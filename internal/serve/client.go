package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"wsnloc/internal/alg"
	"wsnloc/internal/sweep"
)

// ErrBusy reports a 429 from the daemon: the execution queue was full. The
// request was not accepted; retry after the interval in RetryAfter.
var ErrBusy = errors.New("serve: server busy, retry later")

// ErrUnavailable reports a 503: the daemon is draining for shutdown.
var ErrUnavailable = errors.New("serve: server unavailable")

// Client is a typed client for a wsnlocd daemon.
type Client struct {
	// Base is the daemon's root URL (e.g. "http://127.0.0.1:8080").
	Base string
	// HTTP is the transport (nil = http.DefaultClient). Set its Timeout to
	// bound synchronous calls; solve/sweep block until the daemon answers.
	HTTP *http.Client
}

// NewClient builds a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// SolveResult is a solve response plus its transport-level cache verdict.
type SolveResult struct {
	SolveResponse
	// Cached reports whether the daemon answered from its cross-request
	// memo (the X-Wsnloc-Cache header).
	Cached bool
	// Raw is the exact response body, byte-identical across memo hits.
	Raw []byte
}

// SweepResult is a sweep response plus its cache verdict and raw bytes.
type SweepResult struct {
	SweepResponse
	Cached bool
	Raw    []byte
}

// Solve submits a spec to POST /v1/solve and blocks for the result.
func (c *Client) Solve(ctx context.Context, sp alg.Spec) (*SolveResult, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding spec: %w", err)
	}
	raw, cached, err := c.post(ctx, "/v1/solve", body)
	if err != nil {
		return nil, err
	}
	out := &SolveResult{Cached: cached, Raw: raw}
	if err := json.Unmarshal(raw, &out.SolveResponse); err != nil {
		return nil, fmt.Errorf("serve: decoding solve response: %w", err)
	}
	return out, nil
}

// Sweep submits a sweep spec to POST /v1/sweep and blocks for the summary.
func (c *Client) Sweep(ctx context.Context, sw sweep.Spec) (*SweepResult, error) {
	body, err := json.Marshal(sw)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding sweep: %w", err)
	}
	raw, cached, err := c.post(ctx, "/v1/sweep", body)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Cached: cached, Raw: raw}
	if err := json.Unmarshal(raw, &out.SweepResponse); err != nil {
		return nil, fmt.Errorf("serve: decoding sweep response: %w", err)
	}
	return out, nil
}

// Job fetches GET /v1/jobs/{id}.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiErrorOf(resp, raw)
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("serve: decoding job status: %w", err)
	}
	return &st, nil
}

// post runs one POST round-trip, mapping the backpressure statuses to their
// sentinels and returning the exact body bytes plus the memo verdict.
func (c *Client) post(ctx context.Context, path string, body []byte) (raw []byte, cached bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, apiErrorOf(resp, raw)
	}
	// Both memo hits and coalesced responses were served without a fresh
	// execution — the caller's signal that the daemon did no new work.
	verdict := resp.Header.Get("X-Wsnloc-Cache")
	return raw, verdict == "hit" || verdict == "coalesced", nil
}

// RetryAfter extracts a 429's suggested backoff (zero when absent or err is
// not ErrBusy).
func RetryAfter(err error) time.Duration {
	var be *busyError
	if errors.As(err, &be) {
		return be.retryAfter
	}
	return 0
}

type busyError struct {
	retryAfter time.Duration
}

func (e *busyError) Error() string { return ErrBusy.Error() }
func (e *busyError) Unwrap() error { return ErrBusy }

// apiErrorOf maps a non-200 response to a typed error.
func apiErrorOf(resp *http.Response, raw []byte) error {
	var env apiError
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		msg = env.Error
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		after := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			var secs int
			if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return &busyError{retryAfter: after}
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, msg)
	default:
		return fmt.Errorf("serve: %s: %s", resp.Status, msg)
	}
}
