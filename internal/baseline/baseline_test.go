package baseline

import (
	"math"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

// nearExactProblem builds a dense scenario with near-noiseless ranging so
// range-based baselines should be near-exact.
func nearExactProblem(t *testing.T, seed uint64, n int, anchorFrac float64) *core.Problem {
	t.Helper()
	return mkProblem(t, seed, n, anchorFrac, 1e-6)
}

func mkProblem(t *testing.T, seed uint64, n int, anchorFrac float64, sigmaFrac float64) *core.Problem {
	t.Helper()
	stream := rng.New(seed)
	const r = 25.0
	region := geom.NewRect(0, 0, 100, 100)
	dep, err := topology.Deploy(n, int(float64(n)*anchorFrac), topology.UniformGen{}, region, topology.AnchorsRandom, stream.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	prop := radio.UnitDisk{R: r}
	ranger := radio.TOAGaussian{R: r, SigmaFrac: sigmaFrac}
	g := topology.BuildGraph(dep, prop, ranger, stream.Split(2))
	return &core.Problem{Deploy: dep, Graph: g, R: r, Prop: prop, Ranger: ranger}
}

func meanErr(p *core.Problem, r *core.Result) (float64, float64) {
	sum, cnt, tot := 0.0, 0, 0
	for _, id := range p.Deploy.UnknownIDs() {
		tot++
		if !r.Localized[id] {
			continue
		}
		sum += r.Est[id].Dist(p.Deploy.Pos[id])
		cnt++
	}
	if cnt == 0 {
		return math.Inf(1), 0
	}
	return sum / float64(cnt), float64(cnt) / float64(tot)
}

func TestCentroidBasic(t *testing.T) {
	p := nearExactProblem(t, 1, 80, 0.3)
	res, err := Centroid{}.Localize(p, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e, cov := meanErr(p, res)
	t.Logf("centroid: err %.2f m, cov %.2f", e, cov)
	// Range-free one-hop scheme: error bounded by roughly the radio range.
	if e > p.R {
		t.Errorf("centroid error %.2f above R", e)
	}
	if cov < 0.7 {
		t.Errorf("coverage %.2f", cov)
	}
	// Localized nodes must have at least one anchor neighbor.
	for _, id := range p.Deploy.UnknownIDs() {
		hasAnchorNbr := false
		for _, j := range p.Graph.Neighbors(id) {
			if p.Deploy.Anchor[j] {
				hasAnchorNbr = true
			}
		}
		if res.Localized[id] && !hasAnchorNbr {
			t.Fatalf("node %d localized without anchor neighbor", id)
		}
		if !res.Localized[id] && hasAnchorNbr {
			t.Fatalf("node %d not localized despite anchor neighbor", id)
		}
	}
}

func TestWeightedCentroidCoversFloodReach(t *testing.T) {
	p := nearExactProblem(t, 2, 80, 0.1)
	res, err := WeightedCentroid{}.Localize(p, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	eW, covW := meanErr(p, res)
	resC, _ := Centroid{}.Localize(p, rng.New(2))
	_, covC := meanErr(p, resC)
	t.Logf("w-centroid: err %.2f cov %.2f (centroid cov %.2f)", eW, covW, covC)
	if covW < covC {
		t.Error("multi-hop centroid covers fewer nodes than one-hop")
	}
	if covW < 0.95 {
		t.Errorf("coverage %.2f", covW)
	}
	if res.Stats.MessagesSent == 0 {
		t.Error("flood traffic not accounted")
	}
}

func TestMinMaxBounded(t *testing.T) {
	p := nearExactProblem(t, 3, 100, 0.15)
	res, err := MinMax{}.Localize(p, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	e, cov := meanErr(p, res)
	t.Logf("min-max: err %.2f cov %.2f", e, cov)
	if e > p.R {
		t.Errorf("min-max error %.2f", e)
	}
	if cov < 0.95 {
		t.Errorf("coverage %.2f", cov)
	}
}

func TestMinMaxSingleAnchorStillEstimates(t *testing.T) {
	// A node hearing one anchor gets that anchor's box center: the anchor
	// position itself. Crude but defined.
	dep := &topology.Deployment{
		Pos:    []mathx.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}},
		Anchor: []bool{true, false},
		Region: geom.NewRect(0, 0, 50, 50),
	}
	prop := radio.UnitDisk{R: 15}
	ranger := radio.TOAGaussian{R: 15, SigmaAbs: 1e-9}
	g := topology.BuildGraph(dep, prop, ranger, rng.New(4))
	p := &core.Problem{Deploy: dep, Graph: g, R: 15, Prop: prop, Ranger: ranger}
	res, err := MinMax{}.Localize(p, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Localized[1] {
		t.Fatal("single-anchor node not localized")
	}
	if res.Est[1].Dist(mathx.V2(0, 0)) > 1e-6 {
		t.Errorf("est = %v, want anchor position", res.Est[1])
	}
}

func TestDVHopLine(t *testing.T) {
	// Anchors at both ends of a uniform line: hop-size correction equals
	// the spacing exactly, so interior estimates are near-exact in X.
	n := 8
	dep := &topology.Deployment{
		Pos:    make([]mathx.Vec2, n),
		Anchor: make([]bool, n),
		Region: geom.NewRect(0, 0, 80, 10),
	}
	for i := 0; i < n; i++ {
		dep.Pos[i] = mathx.V2(float64(i)*10, 5)
	}
	dep.Anchor[0] = true
	dep.Anchor[n-1] = true
	dep.Anchor[3] = true // third anchor so multilateration has 3 refs
	prop := radio.UnitDisk{R: 12}
	ranger := radio.TOAGaussian{R: 12, SigmaAbs: 1e-9}
	g := topology.BuildGraph(dep, prop, ranger, rng.New(5))
	p := &core.Problem{Deploy: dep, Graph: g, R: 12, Prop: prop, Ranger: ranger}

	res, err := DVHop{}.Localize(p, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p.Deploy.UnknownIDs() {
		if !res.Localized[id] {
			t.Fatalf("node %d not localized", id)
		}
		if dx := math.Abs(res.Est[id].X - dep.Pos[id].X); dx > 3 {
			t.Errorf("node %d X error %.2f", id, dx)
		}
	}
}

func TestDVHopDense(t *testing.T) {
	p := mkProblem(t, 6, 120, 0.15, 0.1)
	res, err := DVHop{}.Localize(p, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	e, cov := meanErr(p, res)
	t.Logf("dv-hop: err %.2f cov %.2f msgs %d", e, cov, res.Stats.MessagesSent)
	if e > p.R {
		t.Errorf("dv-hop error %.2f above R", e)
	}
	if cov < 0.9 {
		t.Errorf("coverage %.2f", cov)
	}
	if res.Stats.MessagesSent == 0 {
		t.Error("no flood traffic accounted")
	}
}

func TestDVDistanceBeatsDVHopWithGoodRanging(t *testing.T) {
	sumHop, sumDist := 0.0, 0.0
	for s := uint64(0); s < 3; s++ {
		p := mkProblem(t, 7+s, 120, 0.15, 0.02)
		rh, err := DVHop{}.Localize(p, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := DVDistance{}.Localize(p, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		eh, _ := meanErr(p, rh)
		ed, _ := meanErr(p, rd)
		sumHop += eh
		sumDist += ed
	}
	t.Logf("dv-hop %.2f vs dv-distance %.2f", sumHop/3, sumDist/3)
	if sumDist >= sumHop {
		t.Errorf("dv-distance (%.2f) not better than dv-hop (%.2f) at 2%% noise", sumDist/3, sumHop/3)
	}
}

func TestIterativeMultilaterationNearExact(t *testing.T) {
	p := nearExactProblem(t, 8, 100, 0.2)
	res, err := IterativeMultilateration{}.Localize(p, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	e, cov := meanErr(p, res)
	t.Logf("ls-multilat: err %.4f cov %.2f", e, cov)
	if e > 0.5 {
		t.Errorf("near-noiseless LS error %.4f m", e)
	}
	if cov < 0.9 {
		t.Errorf("coverage %.2f", cov)
	}
}

func TestIterativeMultilaterationPropagates(t *testing.T) {
	// A chain where only the far end has anchors: estimates must propagate
	// through solved unknowns.
	dep := &topology.Deployment{
		Pos: []mathx.Vec2{
			{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, // anchors cluster
			{X: 8, Y: 8}, {X: 16, Y: 12}, {X: 24, Y: 16},
		},
		Anchor: []bool{true, true, true, false, false, false},
		Region: geom.NewRect(0, 0, 40, 30),
	}
	prop := radio.UnitDisk{R: 14}
	ranger := radio.TOAGaussian{R: 14, SigmaAbs: 1e-9}
	g := topology.BuildGraph(dep, prop, ranger, rng.New(9))
	p := &core.Problem{Deploy: dep, Graph: g, R: 14, Prop: prop, Ranger: ranger}
	res, err := IterativeMultilateration{}.Localize(p, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Localized[3] {
		t.Fatal("first-tier node not localized")
	}
	if res.Est[3].Dist(dep.Pos[3]) > 0.5 {
		t.Errorf("node 3 err %.3f", res.Est[3].Dist(dep.Pos[3]))
	}
}

func TestMDSMAPNearExact(t *testing.T) {
	p := nearExactProblem(t, 10, 90, 0.1)
	res, err := MDSMAP{}.Localize(p, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	e, cov := meanErr(p, res)
	t.Logf("mds-map: err %.2f cov %.2f", e, cov)
	// Shortest-path distances overestimate Euclidean ones, so MDS-MAP is
	// not exact even without noise; it must still beat half the range.
	if e > 0.6*p.R {
		t.Errorf("mds-map error %.2f", e)
	}
	if cov < 0.9 {
		t.Errorf("coverage %.2f", cov)
	}
}

func TestMDSMAPSubsampling(t *testing.T) {
	p := nearExactProblem(t, 11, 120, 0.15)
	res, err := MDSMAP{MaxComponentSize: 40}.Localize(p, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	e, cov := meanErr(p, res)
	t.Logf("mds-map (subsampled): err %.2f cov %.2f", e, cov)
	if cov < 0.8 {
		t.Errorf("coverage after subsampling %.2f", cov)
	}
	if e > p.R {
		t.Errorf("subsampled error %.2f", e)
	}
}

func TestMDSMAPNeedsThreeAnchors(t *testing.T) {
	p := nearExactProblem(t, 12, 50, 0)
	// Mark exactly two anchors: registration impossible.
	p.Deploy.Anchor[0] = true
	p.Deploy.Anchor[1] = true
	res, err := MDSMAP{}.Localize(p, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range p.Deploy.UnknownIDs() {
		if res.Localized[id] {
			t.Fatal("localized with two anchors")
		}
	}
}

func TestProcrustes2D(t *testing.T) {
	// A known similarity transform must be recovered exactly.
	src := []mathx.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 2, Y: 2}}
	theta, scale := 0.7, 2.5
	tr := mathx.V2(10, -3)
	dst := make([]mathx.Vec2, len(src))
	for i, s := range src {
		dst[i] = s.Rotate(theta).Scale(scale).Add(tr)
	}
	f, ok := procrustes2D(src, dst)
	if !ok {
		t.Fatal("fit failed")
	}
	for i, s := range src {
		if f(s).Dist(dst[i]) > 1e-9 {
			t.Fatalf("point %d: %v vs %v", i, f(s), dst[i])
		}
	}
	// Reflection case.
	for i, s := range src {
		dst[i] = mathx.V2(s.X, -s.Y).Rotate(theta).Scale(scale).Add(tr)
	}
	f, ok = procrustes2D(src, dst)
	if !ok {
		t.Fatal("reflected fit failed")
	}
	for i, s := range src {
		if f(s).Dist(dst[i]) > 1e-9 {
			t.Fatalf("reflected point %d off by %v", i, f(s).Dist(dst[i]))
		}
	}
	// Degenerate inputs.
	if _, ok := procrustes2D(src[:2], dst[:2]); ok {
		t.Error("two points accepted")
	}
	same := []mathx.Vec2{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	if _, ok := procrustes2D(same, same); ok {
		t.Error("coincident points accepted")
	}
}

func TestBaselinesHandleZeroAnchors(t *testing.T) {
	p := nearExactProblem(t, 13, 40, 0)
	algs := []core.Algorithm{
		Centroid{}, WeightedCentroid{}, MinMax{}, DVHop{}, DVDistance{},
		IterativeMultilateration{}, MDSMAP{},
	}
	for _, alg := range algs {
		res, err := alg.Localize(p, rng.New(13))
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for _, id := range p.Deploy.UnknownIDs() {
			if res.Localized[id] {
				t.Fatalf("%s localized node %d with zero anchors", alg.Name(), id)
			}
		}
	}
}

func TestBaselinesRejectInvalidProblem(t *testing.T) {
	p := nearExactProblem(t, 14, 30, 0.2)
	p.R = -1
	algs := []core.Algorithm{
		Centroid{}, WeightedCentroid{}, MinMax{}, DVHop{}, DVDistance{},
		IterativeMultilateration{}, MDSMAP{},
	}
	for _, alg := range algs {
		if _, err := alg.Localize(p, rng.New(14)); err == nil {
			t.Errorf("%s accepted invalid problem", alg.Name())
		}
	}
}

func TestMultilaterateDegenerate(t *testing.T) {
	if _, ok := multilaterate([]mathx.Vec2{{X: 0, Y: 0}}, []float64{1}, nil, mathx.Vec2{}); ok {
		t.Error("two few references accepted")
	}
	refs := []mathx.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}}
	truth := mathx.V2(3, 4)
	dists := make([]float64, 3)
	for i, a := range refs {
		dists[i] = truth.Dist(a)
	}
	est, ok := multilaterate(refs, dists, nil, mathx.V2(5, 5))
	if !ok || est.Dist(truth) > 1e-5 {
		t.Errorf("est = %v", est)
	}
}

func TestEstimateInit(t *testing.T) {
	refs := []mathx.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}}
	init := estimateInit(refs, []float64{5, 5}, mathx.V2(50, 50))
	if init.Dist(mathx.V2(5, 0)) > 1e-9 {
		t.Errorf("box init = %v", init)
	}
	// Empty refs: fall back to the supplied center.
	if estimateInit(nil, nil, mathx.V2(7, 7)) != mathx.V2(7, 7) {
		t.Error("empty fallback wrong")
	}
	// Inconsistent boxes fall back to centroid.
	bad := estimateInit(refs, []float64{1, 1}, mathx.V2(50, 50))
	if bad.Dist(mathx.V2(5, 0)) > 1e-9 {
		t.Errorf("inconsistent fallback = %v", bad)
	}
}
