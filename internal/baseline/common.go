// Package baseline implements the comparison localization algorithms the
// evaluation measures BNCL against: the range-free classics (Centroid,
// Weighted Centroid, Min-Max, DV-Hop), the range-based classics
// (DV-Distance, iterative least-squares multilateration), and the
// centralized MDS-MAP. All run against the same core.Problem/core.Result
// contract as BNCL so the experiment harness can sweep them uniformly.
package baseline

import (
	"context"
	"math"
	"time"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
	"wsnloc/internal/obs"
	"wsnloc/internal/sim"
	"wsnloc/internal/topology"
)

// canceled reports ctx's error, emitting a "canceled" trace event when the
// run was cut short. Phased baselines call it between phases so a deadline
// or cancel returns promptly instead of running the remaining phases.
func canceled(ctx context.Context, tr obs.Tracer, alg string) error {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	obs.Emit(tr, "canceled", map[string]interface{}{"alg": alg, "err": err.Error()})
	return err
}

// emitPhase reports one named phase of a baseline run, measured from start.
// The no-op/nil tracer makes this free, so baselines call it unconditionally.
func emitPhase(tr obs.Tracer, alg, phase string, start time.Time) {
	if !obs.Enabled(tr) {
		return
	}
	obs.Emit(tr, "baseline.phase", map[string]interface{}{
		"alg": alg, "phase": phase,
		"dur_ms": float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

// multilaterate solves min Σ wᵢ(‖x − refᵢ‖ − dᵢ)² by damped Gauss-Newton
// from the given initial guess. It returns the estimate and whether the
// solve was healthy (enough references, finite answer).
func multilaterate(refs []mathx.Vec2, dists, weights []float64, init mathx.Vec2) (mathx.Vec2, bool) {
	if len(refs) < 3 || len(refs) != len(dists) {
		return mathx.Vec2{}, false
	}
	prob := &rangeLSQ{refs: refs, dists: dists, weights: weights}
	x, _, _, err := mathx.GaussNewton(prob, []float64{init.X, init.Y}, mathx.GNOptions{MaxIter: 60, Damping: 1e-3})
	if err != nil {
		return mathx.Vec2{}, false
	}
	est := mathx.V2(x[0], x[1])
	if !est.IsFinite() {
		return mathx.Vec2{}, false
	}
	return est, true
}

// rangeLSQ is the weighted range-residual problem for mathx.GaussNewton.
type rangeLSQ struct {
	refs    []mathx.Vec2
	dists   []float64
	weights []float64
}

func (p *rangeLSQ) Dims() (int, int) { return len(p.refs), 2 }

func (p *rangeLSQ) Eval(x []float64, r []float64, jac *mathx.Mat) {
	pos := mathx.V2(x[0], x[1])
	for i, a := range p.refs {
		w := 1.0
		if p.weights != nil {
			w = math.Sqrt(math.Max(p.weights[i], 0))
		}
		d := pos.Dist(a)
		r[i] = w * (d - p.dists[i])
		if d < 1e-9 {
			jac.Set(i, 0, 0)
			jac.Set(i, 1, 0)
			continue
		}
		jac.Set(i, 0, w*(pos.X-a.X)/d)
		jac.Set(i, 1, w*(pos.Y-a.Y)/d)
	}
}

// anchorFloodTraffic simulates the anchor hop flood on the sim substrate so
// distributed baselines report honest message costs (every hop-flood based
// algorithm pays at least this much). It returns the simulated stats; the
// only error it reports is ctx's, checked by the engine between rounds.
func anchorFloodTraffic(ctx context.Context, p *core.Problem, seed uint64) (sim.Stats, error) {
	n := p.Deploy.N()
	nodes := make([]sim.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = &floodNode{id: i, isAnchor: p.Deploy.Anchor[i], pos: p.Deploy.Pos[i]}
	}
	net, err := sim.NewNetwork(p.Graph, nodes, sim.Config{Loss: p.Loss, Energy: sim.DefaultEnergy(), Seed: seed})
	if err != nil {
		return sim.Stats{}, nil
	}
	stats, err := net.RunCtx(ctx, 4*diameterBound(p))
	if err != nil && ctx.Err() != nil {
		return stats, ctx.Err()
	}
	return stats, nil
}

// diameterBound is a loose hop-diameter bound used to size flood phases.
func diameterBound(p *core.Problem) int {
	bb := p.Deploy.Region.Bounds()
	d := int((bb.Width()+bb.Height())/p.R) + 4
	if d < 8 {
		d = 8
	}
	return d
}

// floodNode is the plain anchor-advertisement flood (the first phase of
// DV-Hop and friends).
type floodNode struct {
	id       int
	isAnchor bool
	pos      mathx.Vec2
	table    map[int]int
	done     bool
}

type floodEntry struct {
	anchor int
	pos    mathx.Vec2
	hops   int
}

func (f *floodNode) Init(ctx *sim.Context) {
	f.table = map[int]int{}
	if f.isAnchor {
		f.table[f.id] = 0
		ctx.Broadcast("flood", 7, []floodEntry{{f.id, f.pos, 0}})
	}
	f.done = true // done unless an improvement arrives
}

func (f *floodNode) Round(ctx *sim.Context, _ int, inbox []sim.Message) {
	var improved []floodEntry
	for _, m := range inbox {
		entries, ok := m.Payload.([]floodEntry)
		if !ok {
			continue
		}
		for _, e := range entries {
			cand := e.hops + 1
			if cur, seen := f.table[e.anchor]; !seen || cand < cur {
				f.table[e.anchor] = cand
				improved = append(improved, floodEntry{e.anchor, e.pos, cand})
			}
		}
	}
	if len(improved) > 0 {
		ctx.Broadcast("flood", 7*len(improved), improved)
	}
}

func (f *floodNode) Done() bool { return f.done }

// hopsToAnchors returns hops[node][k] for the problem's anchors (BFS on the
// true connectivity graph — what a loss-free flood would converge to).
func hopsToAnchors(p *core.Problem) (anchorIDs []int, hops [][]int) {
	anchorIDs = p.Deploy.AnchorIDs()
	return anchorIDs, p.Graph.HopCounts(anchorIDs)
}

// estimateInit produces a robust initial guess for iterative solvers: the
// Min-Max box center of the given references and bounds.
func estimateInit(refs []mathx.Vec2, bounds []float64, region mathx.Vec2) mathx.Vec2 {
	if len(refs) == 0 {
		return region
	}
	lo := mathx.V2(math.Inf(-1), math.Inf(-1))
	hi := mathx.V2(math.Inf(1), math.Inf(1))
	for i, a := range refs {
		b := bounds[i]
		lo.X = math.Max(lo.X, a.X-b)
		lo.Y = math.Max(lo.Y, a.Y-b)
		hi.X = math.Min(hi.X, a.X+b)
		hi.Y = math.Min(hi.Y, a.Y+b)
	}
	if lo.X > hi.X || lo.Y > hi.Y {
		// Inconsistent boxes (noise): fall back to the centroid.
		return mathx.Centroid(refs)
	}
	return mathx.V2((lo.X+hi.X)/2, (lo.Y+hi.Y)/2)
}

// nodesByComponent groups node ids by connected component (used by MDS-MAP).
func nodesByComponent(g *topology.Graph) [][]int {
	comps, _ := g.Components()
	return comps
}
