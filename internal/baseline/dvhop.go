package baseline

import (
	"context"
	"math"
	"time"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
)

// DVHop is Niculescu & Nath's classic: anchors flood hop counts; each anchor
// then computes its average per-hop distance against the other anchors
// (true inter-anchor distance / hop count) and floods that correction; each
// unknown turns hop counts into distance estimates with its nearest anchor's
// correction and multilaterates.
type DVHop struct {
	// Tracer receives baseline.phase timing events; nil disables tracing.
	Tracer obs.Tracer
}

// Name implements core.Algorithm.
func (DVHop) Name() string { return "dv-hop" }

// SetTracer implements core.TracerSetter.
func (a *DVHop) SetTracer(tr obs.Tracer) { a.Tracer = tr }

// Localize implements core.Algorithm.
func (a DVHop) Localize(p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	return dvLocalize(context.Background(), p, stream, false, a.Tracer)
}

// LocalizeCtx implements core.ContextAlgorithm: the context is checked
// between the flood, solve, and flood-simulation phases.
func (a DVHop) LocalizeCtx(ctx context.Context, p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	return dvLocalize(ctx, p, stream, false, a.Tracer)
}

// DVDistance accumulates measured per-link distances along the flood paths
// instead of hop counts — more accurate with good ranging, noisier with bad.
type DVDistance struct {
	// Tracer receives baseline.phase timing events; nil disables tracing.
	Tracer obs.Tracer
}

// Name implements core.Algorithm.
func (DVDistance) Name() string { return "dv-distance" }

// SetTracer implements core.TracerSetter.
func (a *DVDistance) SetTracer(tr obs.Tracer) { a.Tracer = tr }

// Localize implements core.Algorithm.
func (a DVDistance) Localize(p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	return dvLocalize(context.Background(), p, stream, true, a.Tracer)
}

// LocalizeCtx implements core.ContextAlgorithm: the context is checked
// between the flood, solve, and flood-simulation phases.
func (a DVDistance) LocalizeCtx(ctx context.Context, p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	return dvLocalize(ctx, p, stream, true, a.Tracer)
}

func dvLocalize(ctx context.Context, p *core.Problem, stream *rng.Stream, useDistance bool, tr obs.Tracer) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	name := "dv-hop"
	if useDistance {
		name = "dv-distance"
	}
	if err := canceled(ctx, tr, name); err != nil {
		return nil, err
	}
	res := core.NewResult(p)
	anchorIDs := p.Deploy.AnchorIDs()
	if len(anchorIDs) == 0 {
		return res, nil
	}
	phaseStart := time.Now()
	hops := p.Graph.HopCounts(anchorIDs)
	var pathDist [][]float64
	if useDistance {
		pathDist = p.Graph.ShortestPathDist(anchorIDs)
	}

	// Per-anchor correction factor: true inter-anchor distance divided by
	// the propagated metric (hops or accumulated measured distance).
	correction := make([]float64, len(anchorIDs))
	for k, a := range anchorIDs {
		num, den := 0.0, 0.0
		for k2, b := range anchorIDs {
			if k == k2 {
				continue
			}
			var metric float64
			if useDistance {
				metric = pathDist[b][k]
				if math.IsInf(metric, 1) {
					continue
				}
			} else {
				h := hops[b][k]
				if h <= 0 {
					continue
				}
				metric = float64(h)
			}
			num += p.Deploy.Pos[a].Dist(p.Deploy.Pos[b])
			den += metric
		}
		if den > 0 {
			correction[k] = num / den
		} else {
			// Isolated anchor: fall back to the textbook expectation of
			// ~0.7·R progress per hop (1.0 for distance accumulation).
			if useDistance {
				correction[k] = 1
			} else {
				correction[k] = 0.7 * p.R
			}
		}
	}

	emitPhase(tr, name, "flood", phaseStart)
	if err := canceled(ctx, tr, name); err != nil {
		return nil, err
	}

	phaseStart = time.Now()
	bbCenter := p.Deploy.Region.Bounds().Center()
	for _, id := range p.Deploy.UnknownIDs() {
		var refs []mathx.Vec2
		var dists, weights []float64
		bestK, bestMetric := -1, math.Inf(1)
		for k, a := range anchorIDs {
			var metric float64
			if useDistance {
				metric = pathDist[id][k]
				if math.IsInf(metric, 1) {
					continue
				}
			} else {
				h := hops[id][k]
				if h <= 0 {
					continue
				}
				metric = float64(h)
			}
			if metric < bestMetric {
				bestMetric, bestK = metric, k
			}
			refs = append(refs, p.Deploy.Pos[a])
			dists = append(dists, metric) // corrected below
			weights = append(weights, 1/(metric*metric))
		}
		if bestK < 0 || len(refs) < 3 {
			continue
		}
		// DV-hop applies the nearest anchor's correction to every estimate.
		c := correction[bestK]
		for i := range dists {
			dists[i] *= c
		}
		init := estimateInit(refs, dists, bbCenter)
		est, ok := multilaterate(refs, dists, weights, init)
		if !ok {
			est = init
		}
		res.Est[id] = est
		res.Localized[id] = true
		res.Confidence[id] = bestMetric * c * 0.5
	}

	emitPhase(tr, name, "solve", phaseStart)
	if err := canceled(ctx, tr, name); err != nil {
		return nil, err
	}

	// Traffic: the anchor flood runs twice (hop counts, then corrections).
	phaseStart = time.Now()
	s, err := anchorFloodTraffic(ctx, p, stream.Uint64())
	if err != nil {
		canceled(ctx, tr, name)
		return nil, err
	}
	s.MessagesSent *= 2
	s.MessagesRecvd *= 2
	s.BytesSent *= 2
	s.BytesRecvd *= 2
	s.EnergyMicroJ *= 2
	res.Stats = s
	emitPhase(tr, name, "floodsim", phaseStart)
	return res, nil
}
