package baseline

import (
	"context"
	"math"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// Centroid is the classic range-free scheme of Bulusu et al.: each unknown
// estimates its position as the centroid of the anchors it hears directly.
// Nodes without an anchor neighbor stay unlocalized.
type Centroid struct{}

// Name implements core.Algorithm.
func (Centroid) Name() string { return "centroid" }

// Localize implements core.Algorithm.
func (Centroid) Localize(p *core.Problem, _ *rng.Stream) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := core.NewResult(p)
	for _, id := range p.Deploy.UnknownIDs() {
		var refs []mathx.Vec2
		for _, j := range p.Graph.Neighbors(id) {
			if p.Deploy.Anchor[j] {
				refs = append(refs, p.Deploy.Pos[j])
			}
		}
		if len(refs) == 0 {
			continue
		}
		res.Est[id] = mathx.Centroid(refs)
		res.Localized[id] = true
		res.Confidence[id] = p.R // one-hop uncertainty
	}
	// Traffic: every anchor beacons once.
	res.Stats.MessagesSent = p.Deploy.NumAnchors()
	res.Stats.BytesSent = 7 * p.Deploy.NumAnchors()
	return res, nil
}

// WeightedCentroid extends Centroid across multiple hops: every anchor the
// flood reaches contributes with weight 1/hops², so distant anchors pull
// less. All flood-connected nodes get an estimate.
type WeightedCentroid struct{}

// Name implements core.Algorithm.
func (WeightedCentroid) Name() string { return "w-centroid" }

// Localize implements core.Algorithm.
func (WeightedCentroid) Localize(p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := core.NewResult(p)
	anchorIDs, hops := hopsToAnchors(p)
	for _, id := range p.Deploy.UnknownIDs() {
		var refs []mathx.Vec2
		var w []float64
		minHops := math.MaxInt32
		for k, a := range anchorIDs {
			h := hops[id][k]
			if h < 0 {
				continue
			}
			refs = append(refs, p.Deploy.Pos[a])
			w = append(w, 1/float64(h*h))
			if h < minHops {
				minHops = h
			}
		}
		if len(refs) == 0 {
			continue
		}
		res.Est[id] = mathx.WeightedCentroid(refs, w)
		res.Localized[id] = true
		res.Confidence[id] = float64(minHops) * p.R
	}
	// Sub-millisecond traffic accounting: never errs with Background.
	res.Stats, _ = anchorFloodTraffic(context.Background(), p, stream.Uint64())
	return res, nil
}
