package baseline

import (
	"context"
	"math"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// MinMax is the bounding-box scheme of Savvides et al.: every anchor bounds
// the node inside a square of half-width (measured distance) for one-hop
// anchors or hops·R for multi-hop anchors; the estimate is the center of the
// intersection of the boxes.
type MinMax struct{}

// Name implements core.Algorithm.
func (MinMax) Name() string { return "min-max" }

// Localize implements core.Algorithm.
func (MinMax) Localize(p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := core.NewResult(p)
	anchorIDs, hops := hopsToAnchors(p)
	for _, id := range p.Deploy.UnknownIDs() {
		loX, loY := math.Inf(-1), math.Inf(-1)
		hiX, hiY := math.Inf(1), math.Inf(1)
		heard := 0
		for k, a := range anchorIDs {
			var bound float64
			if meas, ok := p.Graph.MeasBetween(id, a); ok {
				bound = meas
			} else if h := hops[id][k]; h > 0 {
				bound = float64(h) * p.R
			} else {
				continue
			}
			heard++
			pos := p.Deploy.Pos[a]
			loX = math.Max(loX, pos.X-bound)
			loY = math.Max(loY, pos.Y-bound)
			hiX = math.Min(hiX, pos.X+bound)
			hiY = math.Min(hiY, pos.Y+bound)
		}
		if heard == 0 {
			continue
		}
		if loX > hiX || loY > hiY {
			// Noise made the boxes inconsistent; shrink to the crossover.
			loX, hiX = (loX+hiX)/2, (loX+hiX)/2
			loY, hiY = (loY+hiY)/2, (loY+hiY)/2
		}
		res.Est[id] = mathx.V2((loX+hiX)/2, (loY+hiY)/2)
		res.Localized[id] = true
		res.Confidence[id] = mathx.V2(hiX-loX, hiY-loY).Norm() / 2
	}
	// Sub-millisecond traffic accounting: never errs with Background.
	res.Stats, _ = anchorFloodTraffic(context.Background(), p, stream.Uint64())
	return res, nil
}
