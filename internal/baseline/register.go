package baseline

import (
	"wsnloc/internal/alg"
	"wsnloc/internal/core"
)

// Self-registration into the shared algorithm registry: importing baseline
// makes every comparison algorithm resolvable by name through alg.New.
func init() {
	alg.Register("centroid", func(alg.Opts) core.Algorithm { return Centroid{} })
	alg.Register("w-centroid", func(alg.Opts) core.Algorithm { return WeightedCentroid{} })
	alg.Register("min-max", func(alg.Opts) core.Algorithm { return MinMax{} })
	alg.Register("dv-hop", func(o alg.Opts) core.Algorithm { return DVHop{Tracer: o.Tracer} })
	alg.Register("dv-distance", func(o alg.Opts) core.Algorithm { return DVDistance{Tracer: o.Tracer} })
	alg.Register("ls-multilat", func(alg.Opts) core.Algorithm { return IterativeMultilateration{} })
	alg.Register("mds-map", func(o alg.Opts) core.Algorithm { return MDSMAP{Tracer: o.Tracer} })
}
