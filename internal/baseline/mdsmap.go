package baseline

import (
	"context"
	"math"
	"time"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
	"wsnloc/internal/obs"
	"wsnloc/internal/rng"
)

// MDSMAP is Shang et al.'s centralized algorithm: build the matrix of
// pairwise shortest-path distances, recover relative coordinates by
// classical multidimensional scaling (double centering + top-2
// eigendecomposition), and register the relative map onto the anchors with
// a similarity (Procrustes) transform. Components with fewer than three
// anchors cannot be registered and stay unlocalized.
type MDSMAP struct {
	// MaxComponentSize caps the per-component MDS problem (the
	// eigendecomposition is O(n³)); larger components are localized from a
	// subsampled core and the rest interpolated by multilateration. Zero
	// means the 220 default.
	MaxComponentSize int
	// Tracer receives baseline.phase timing events; nil disables tracing.
	Tracer obs.Tracer
}

// Name implements core.Algorithm.
func (MDSMAP) Name() string { return "mds-map" }

// SetTracer implements core.TracerSetter.
func (a *MDSMAP) SetTracer(tr obs.Tracer) { a.Tracer = tr }

// Localize implements core.Algorithm.
func (a MDSMAP) Localize(p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	return a.LocalizeCtx(context.Background(), p, stream)
}

// LocalizeCtx implements core.ContextAlgorithm: the context is checked
// before each component's embedding — the O(n³) unit of work — so a cancel
// or deadline returns between components rather than after the full map.
func (a MDSMAP) LocalizeCtx(ctx context.Context, p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	phaseStart := time.Now()
	maxSize := a.MaxComponentSize
	if maxSize <= 0 {
		maxSize = 220
	}
	res := core.NewResult(p)

	for _, comp := range nodesByComponent(p.Graph) {
		if err := canceled(ctx, a.Tracer, "mds-map"); err != nil {
			return nil, err
		}
		anchorsIn := 0
		for _, id := range comp {
			if p.Deploy.Anchor[id] {
				anchorsIn++
			}
		}
		if anchorsIn < 3 || len(comp) < 3 {
			continue
		}
		members := comp
		if len(members) > maxSize {
			members = subsampleWithAnchors(p, comp, maxSize, stream)
		}
		coords, ok := classicalMDS(p, members)
		if !ok {
			continue
		}
		// Procrustes registration on the anchors of the subproblem.
		var src, dst []mathx.Vec2
		for i, id := range members {
			if p.Deploy.Anchor[id] {
				src = append(src, coords[i])
				dst = append(dst, p.Deploy.Pos[id])
			}
		}
		xform, ok := procrustes2D(src, dst)
		if !ok {
			continue
		}
		for i, id := range members {
			if p.Deploy.Anchor[id] {
				continue
			}
			res.Est[id] = xform(coords[i])
			res.Localized[id] = true
			res.Confidence[id] = p.R
		}
		// Interpolate members dropped by subsampling via multilateration
		// against localized neighbors.
		if len(members) < len(comp) {
			interpolateRest(p, comp, res)
		}
	}

	// Traffic: centralized collection ≈ every node reports its neighbor
	// list to a sink over an average of half the diameter hops.
	halfDiam := diameterBound(p) / 2
	if halfDiam < 1 {
		halfDiam = 1
	}
	res.Stats.MessagesSent = p.Deploy.N() * halfDiam
	res.Stats.BytesSent = res.Stats.MessagesSent * 16
	emitPhase(a.Tracer, "mds-map", "embed+register", phaseStart)
	return res, nil
}

// classicalMDS embeds the members from their pairwise shortest-path
// distances. It returns relative 2-D coordinates.
func classicalMDS(p *core.Problem, members []int) ([]mathx.Vec2, bool) {
	n := len(members)
	dist := p.Graph.ShortestPathDist(members)
	// Squared-distance matrix restricted to members.
	d2 := mathx.NewMat(n, n)
	for i, a := range members {
		for j := range members {
			d := dist[a][j]
			if math.IsInf(d, 1) {
				// Members of one component are mutually reachable, but be
				// defensive: cap at the component's max finite distance.
				d = 0
			}
			d2.Set(i, j, d*d)
		}
	}
	// Double centering: B = −½·J·D²·J.
	rowMean := make([]float64, n)
	colMean := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := d2.At(i, j)
			rowMean[i] += v
			colMean[j] += v
			total += v
		}
	}
	for i := range rowMean {
		rowMean[i] /= float64(n)
		colMean[i] /= float64(n)
	}
	total /= float64(n * n)
	b := mathx.NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, -0.5*(d2.At(i, j)-rowMean[i]-colMean[j]+total))
		}
	}
	// Symmetrize against floating-point drift before the eigensolve.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := (b.At(i, j) + b.At(j, i)) / 2
			b.Set(i, j, m)
			b.Set(j, i, m)
		}
	}
	vals, vecs, err := mathx.TopEig(b, 2)
	if err != nil || len(vals) < 2 || vals[0] <= 0 {
		return nil, false
	}
	coords := make([]mathx.Vec2, n)
	s0, s1 := math.Sqrt(vals[0]), math.Sqrt(vals[1])
	for i := 0; i < n; i++ {
		coords[i] = mathx.V2(vecs.At(i, 0)*s0, vecs.At(i, 1)*s1)
	}
	return coords, true
}

// procrustes2D fits the similarity transform (scale, rotation, optional
// reflection, translation) mapping src points onto dst, returning the
// transform. It needs at least three non-degenerate pairs.
func procrustes2D(src, dst []mathx.Vec2) (func(mathx.Vec2) mathx.Vec2, bool) {
	if len(src) < 3 || len(src) != len(dst) {
		return nil, false
	}
	cs, cd := mathx.Centroid(src), mathx.Centroid(dst)
	fit := func(reflect bool) (theta, scale float64, ok bool) {
		a, b, norm := 0.0, 0.0, 0.0
		for i := range src {
			x := src[i].Sub(cs)
			if reflect {
				x.Y = -x.Y
			}
			y := dst[i].Sub(cd)
			a += x.Dot(y)
			b += x.Cross(y)
			norm += x.Norm2()
		}
		if norm < 1e-12 {
			return 0, 0, false
		}
		theta = math.Atan2(b, a)
		scale = math.Hypot(a, b) / norm
		return theta, scale, true
	}
	residual := func(reflect bool, theta, scale float64) float64 {
		s := 0.0
		for i := range src {
			x := src[i].Sub(cs)
			if reflect {
				x.Y = -x.Y
			}
			y := x.Rotate(theta).Scale(scale).Add(cd)
			s += y.Dist2(dst[i])
		}
		return s
	}
	t0, s0, ok0 := fit(false)
	t1, s1, ok1 := fit(true)
	if !ok0 && !ok1 {
		return nil, false
	}
	useReflect := false
	theta, scale := t0, s0
	if ok1 && (!ok0 || residual(true, t1, s1) < residual(false, t0, s0)) {
		useReflect, theta, scale = true, t1, s1
	}
	return func(p mathx.Vec2) mathx.Vec2 {
		x := p.Sub(cs)
		if useReflect {
			x.Y = -x.Y
		}
		return x.Rotate(theta).Scale(scale).Add(cd)
	}, true
}

// subsampleWithAnchors keeps every anchor of the component plus a random
// subset of unknowns up to maxSize.
func subsampleWithAnchors(p *core.Problem, comp []int, maxSize int, stream *rng.Stream) []int {
	var anchors, unknowns []int
	for _, id := range comp {
		if p.Deploy.Anchor[id] {
			anchors = append(anchors, id)
		} else {
			unknowns = append(unknowns, id)
		}
	}
	room := maxSize - len(anchors)
	if room < 0 {
		room = 0
	}
	if room > len(unknowns) {
		room = len(unknowns)
	}
	picked := stream.SampleK(len(unknowns), room)
	out := append([]int(nil), anchors...)
	for _, k := range picked {
		out = append(out, unknowns[k])
	}
	return out
}

// interpolateRest localizes component members missed by subsampling using
// multilateration against already-localized neighbors.
func interpolateRest(p *core.Problem, comp []int, res *core.Result) {
	bbCenter := p.Deploy.Region.Bounds().Center()
	for sweep := 0; sweep < 5; sweep++ {
		progress := false
		for _, id := range comp {
			if res.Localized[id] || p.Deploy.Anchor[id] {
				continue
			}
			var refs []mathx.Vec2
			var dists []float64
			for _, j := range p.Graph.Neighbors(id) {
				if !res.Localized[j] {
					continue
				}
				meas, _ := p.Graph.MeasBetween(id, j)
				refs = append(refs, res.Est[j])
				dists = append(dists, meas)
			}
			if len(refs) < 3 {
				continue
			}
			est, ok := multilaterate(refs, dists, nil, estimateInit(refs, dists, bbCenter))
			if !ok {
				continue
			}
			res.Est[id] = est
			res.Localized[id] = true
			res.Confidence[id] = p.R
			progress = true
		}
		if !progress {
			break
		}
	}
}
