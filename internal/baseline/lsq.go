package baseline

import (
	"math"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
	"wsnloc/internal/rng"
)

// IterativeMultilateration is Savvides-style collaborative multilateration:
// any unknown with ≥3 localized references (anchors at first, then
// previously solved unknowns) solves a weighted nonlinear least squares on
// its measured ranges; solved nodes become references for their neighbors
// and the sweep repeats until a fixed point.
type IterativeMultilateration struct {
	// MaxSweeps caps the outer iterations; zero means the 10 default.
	MaxSweeps int
	// RefConfidencePenalty down-weights non-anchor references relative to
	// anchors (solved positions carry error); zero means the 0.5 default.
	RefConfidencePenalty float64
}

// Name implements core.Algorithm.
func (IterativeMultilateration) Name() string { return "ls-multilat" }

// Localize implements core.Algorithm.
func (a IterativeMultilateration) Localize(p *core.Problem, stream *rng.Stream) (*core.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxSweeps := a.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 10
	}
	penalty := a.RefConfidencePenalty
	if penalty <= 0 {
		penalty = 0.5
	}

	res := core.NewResult(p)
	bbCenter := p.Deploy.Region.Bounds().Center()
	messages := 0

	for sweep := 0; sweep < maxSweeps; sweep++ {
		progress := false
		for _, id := range p.Deploy.UnknownIDs() {
			var refs []mathx.Vec2
			var dists, weights []float64
			for _, j := range p.Graph.Neighbors(id) {
				if !res.Localized[j] {
					continue
				}
				meas, _ := p.Graph.MeasBetween(id, j)
				refs = append(refs, res.Est[j])
				dists = append(dists, meas)
				w := 1.0
				if !p.Deploy.Anchor[j] {
					w = penalty
				}
				weights = append(weights, w)
			}
			if len(refs) < 3 || !geometryOK(refs, 0.1*p.R) {
				continue
			}
			init := res.Est[id]
			if !res.Localized[id] {
				init = estimateInit(refs, dists, bbCenter)
			}
			est, ok := multilaterate(refs, dists, weights, init)
			if !ok {
				continue
			}
			if !res.Localized[id] || est.Dist(res.Est[id]) > 1e-6 {
				progress = true
			}
			if !res.Localized[id] {
				// A newly solved node announces itself: one broadcast.
				messages++
			}
			res.Est[id] = est
			res.Localized[id] = true
			res.Confidence[id] = p.Ranger.Sigma(p.R)
		}
		if !progress {
			break
		}
	}

	// Traffic: anchors beacon once; each solved unknown announces once per
	// sweep it changed (approximated by the announce count above).
	res.Stats.MessagesSent = p.Deploy.NumAnchors() + messages
	res.Stats.BytesSent = 7 * res.Stats.MessagesSent
	_ = stream
	return res, nil
}

// geometryOK rejects reference sets that are too close to collinear: with
// (near-)collinear references the mirrored solution fits the ranges equally
// well, and iterative multilateration would lock in and propagate the flip.
// The test is that the smaller principal spread of the references exceeds
// minSpread.
func geometryOK(refs []mathx.Vec2, minSpread float64) bool {
	c := mathx.Centroid(refs)
	var sxx, syy, sxy float64
	for _, r := range refs {
		d := r.Sub(c)
		sxx += d.X * d.X
		syy += d.Y * d.Y
		sxy += d.X * d.Y
	}
	n := float64(len(refs))
	sxx, syy, sxy = sxx/n, syy/n, sxy/n
	// Smaller eigenvalue of the 2x2 covariance.
	tr, det := sxx+syy, sxx*syy-sxy*sxy
	disc := tr*tr/4 - det
	if disc < 0 {
		disc = 0
	}
	lMin := tr/2 - math.Sqrt(disc)
	return lMin > minSpread*minSpread
}
