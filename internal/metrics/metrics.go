// Package metrics scores localization results: error statistics normalized
// by the radio range (the standard unit of the WSN localization literature),
// coverage, and communication cost. Evaluations pool across Monte-Carlo
// trials by concatenating per-node errors, so percentiles stay exact.
package metrics

import (
	"math"

	"wsnloc/internal/core"
	"wsnloc/internal/mathx"
)

// Eval is the scored outcome of one or more localization runs.
type Eval struct {
	// Errors holds the per-node localization error in meters for every
	// localized unknown across all pooled runs.
	Errors []float64
	// R is the nominal radio range errors are normalized by.
	R float64
	// Unknowns and LocalizedCount track coverage across pooled runs.
	Unknowns       int
	LocalizedCount int
	// Traffic totals across pooled runs. Censored counts broadcasts that
	// message censoring suppressed (no traffic or energy was charged for
	// them); it is 0 unless the algorithm ran with censoring enabled.
	Messages int
	Bytes    int
	Censored int
	EnergyuJ float64
	Nodes    int
	Rounds   int
	// Trials is how many runs were pooled.
	Trials int
}

// Evaluate scores one result against the ground truth.
func Evaluate(p *core.Problem, r *core.Result) Eval {
	e := Eval{R: p.R, Trials: 1, Nodes: p.Deploy.N(), Rounds: r.Rounds}
	for _, id := range p.Deploy.UnknownIDs() {
		e.Unknowns++
		if !r.Localized[id] {
			continue
		}
		e.LocalizedCount++
		e.Errors = append(e.Errors, r.Est[id].Dist(p.Deploy.Pos[id]))
	}
	e.Messages = r.Stats.MessagesSent
	e.Bytes = r.Stats.BytesSent
	e.Censored = r.Stats.MessagesCensored
	e.EnergyuJ = r.Stats.EnergyMicroJ
	return e
}

// Merge pools evaluations (e.g. Monte-Carlo trials of the same scenario).
// All inputs must share R.
func Merge(evals ...Eval) Eval {
	var out Eval
	for i, e := range evals {
		if i == 0 {
			out.R = e.R
		}
		out.Errors = append(out.Errors, e.Errors...)
		out.Unknowns += e.Unknowns
		out.LocalizedCount += e.LocalizedCount
		out.Messages += e.Messages
		out.Bytes += e.Bytes
		out.Censored += e.Censored
		out.EnergyuJ += e.EnergyuJ
		out.Nodes += e.Nodes
		out.Rounds += e.Rounds
		out.Trials += e.Trials
	}
	return out
}

// Coverage returns the fraction of unknowns that were localized.
func (e Eval) Coverage() float64 {
	if e.Unknowns == 0 {
		return 0
	}
	return float64(e.LocalizedCount) / float64(e.Unknowns)
}

// MeanErr returns the mean error in meters (+Inf if nothing localized).
func (e Eval) MeanErr() float64 {
	if len(e.Errors) == 0 {
		return math.Inf(1)
	}
	return mathx.Mean(e.Errors)
}

// MedianErr returns the median error in meters.
func (e Eval) MedianErr() float64 {
	if len(e.Errors) == 0 {
		return math.Inf(1)
	}
	return mathx.Median(e.Errors)
}

// RMSE returns the root-mean-square error in meters.
func (e Eval) RMSE() float64 {
	if len(e.Errors) == 0 {
		return math.Inf(1)
	}
	return mathx.RMS(e.Errors)
}

// P90Err returns the 90th-percentile error in meters.
func (e Eval) P90Err() float64 {
	return e.PercentileErr(90)
}

// P95Err returns the 95th-percentile error in meters (the tail statistic
// the benchmark summary tracks).
func (e Eval) P95Err() float64 {
	return e.PercentileErr(95)
}

// PercentileErr returns the p-th percentile error in meters (+Inf if nothing
// localized).
func (e Eval) PercentileErr(p float64) float64 {
	if len(e.Errors) == 0 {
		return math.Inf(1)
	}
	return mathx.Percentile(e.Errors, p)
}

// NormMean returns the mean error as a fraction of the radio range — the
// figure localization papers plot.
func (e Eval) NormMean() float64 { return e.MeanErr() / e.R }

// NormMedian returns the median error normalized by R.
func (e Eval) NormMedian() float64 { return e.MedianErr() / e.R }

// NormRMSE returns the RMSE normalized by R.
func (e Eval) NormRMSE() float64 { return e.RMSE() / e.R }

// CoverageWithin returns the fraction of unknowns localized to within
// thresh meters (unlocalized nodes count as failures).
func (e Eval) CoverageWithin(thresh float64) float64 {
	if e.Unknowns == 0 {
		return 0
	}
	n := 0
	for _, err := range e.Errors {
		if err <= thresh {
			n++
		}
	}
	return float64(n) / float64(e.Unknowns)
}

// CDF evaluates the empirical error CDF at the given thresholds (meters),
// counting unlocalized nodes as never-covered.
func (e Eval) CDF(thresholds []float64) []float64 {
	out := mathx.CDF(e.Errors, thresholds)
	if e.Unknowns == 0 {
		return out
	}
	scale := float64(len(e.Errors)) / float64(e.Unknowns)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// MsgsPerNode returns the mean transmissions per node per trial.
func (e Eval) MsgsPerNode() float64 {
	if e.Nodes == 0 {
		return 0
	}
	return float64(e.Messages) / float64(e.Nodes)
}

// BytesPerNode returns the mean transmitted bytes per node per trial.
func (e Eval) BytesPerNode() float64 {
	if e.Nodes == 0 {
		return 0
	}
	return float64(e.Bytes) / float64(e.Nodes)
}

// EnergyPerNode returns the mean energy per node in microjoules.
func (e Eval) EnergyPerNode() float64 {
	if e.Nodes == 0 {
		return 0
	}
	return e.EnergyuJ / float64(e.Nodes)
}

// AvgRounds returns the mean protocol rounds per trial.
func (e Eval) AvgRounds() float64 {
	if e.Trials == 0 {
		return 0
	}
	return float64(e.Rounds) / float64(e.Trials)
}
