package metrics

import (
	"math"
	"testing"

	"wsnloc/internal/core"
	"wsnloc/internal/geom"
	"wsnloc/internal/mathx"
	"wsnloc/internal/radio"
	"wsnloc/internal/rng"
	"wsnloc/internal/topology"
)

func tinyProblem(t *testing.T) *core.Problem {
	t.Helper()
	dep := &topology.Deployment{
		Pos: []mathx.Vec2{
			{X: 0, Y: 0},  // anchor
			{X: 10, Y: 0}, // unknown
			{X: 20, Y: 0}, // unknown
			{X: 30, Y: 0}, // unknown
		},
		Anchor: []bool{true, false, false, false},
		Region: geom.NewRect(0, 0, 40, 10),
	}
	prop := radio.UnitDisk{R: 12}
	ranger := radio.TOAGaussian{R: 12, SigmaAbs: 1e-9}
	g := topology.BuildGraph(dep, prop, ranger, rng.New(1))
	return &core.Problem{Deploy: dep, Graph: g, R: 12, Prop: prop, Ranger: ranger}
}

func mkResult(p *core.Problem, errs []float64, localized []bool) *core.Result {
	r := core.NewResult(p)
	for i, id := range p.Deploy.UnknownIDs() {
		r.Localized[id] = localized[i]
		r.Est[id] = p.Deploy.Pos[id].Add(mathx.V2(errs[i], 0))
	}
	return r
}

func TestEvaluateBasic(t *testing.T) {
	p := tinyProblem(t)
	r := mkResult(p, []float64{3, 4, 0}, []bool{true, true, false})
	r.Stats.MessagesSent = 40
	r.Stats.BytesSent = 400
	e := Evaluate(p, r)

	if e.Unknowns != 3 || e.LocalizedCount != 2 {
		t.Fatalf("counts: %d unknowns, %d localized", e.Unknowns, e.LocalizedCount)
	}
	if !mathx.AlmostEqual(e.Coverage(), 2.0/3, 1e-12) {
		t.Errorf("coverage = %v", e.Coverage())
	}
	if !mathx.AlmostEqual(e.MeanErr(), 3.5, 1e-12) {
		t.Errorf("mean = %v", e.MeanErr())
	}
	if !mathx.AlmostEqual(e.MedianErr(), 3.5, 1e-12) {
		t.Errorf("median = %v", e.MedianErr())
	}
	if !mathx.AlmostEqual(e.RMSE(), math.Sqrt(12.5), 1e-12) {
		t.Errorf("rmse = %v", e.RMSE())
	}
	if !mathx.AlmostEqual(e.NormMean(), 3.5/12, 1e-12) {
		t.Errorf("norm mean = %v", e.NormMean())
	}
	if !mathx.AlmostEqual(e.MsgsPerNode(), 10, 1e-12) {
		t.Errorf("msgs/node = %v", e.MsgsPerNode())
	}
	if !mathx.AlmostEqual(e.BytesPerNode(), 100, 1e-12) {
		t.Errorf("bytes/node = %v", e.BytesPerNode())
	}
}

func TestEvaluateAnchorsExcluded(t *testing.T) {
	p := tinyProblem(t)
	r := mkResult(p, []float64{0, 0, 0}, []bool{true, true, true})
	e := Evaluate(p, r)
	// Anchors never appear in the error pool.
	if len(e.Errors) != 3 {
		t.Fatalf("error pool size %d", len(e.Errors))
	}
	if e.MeanErr() != 0 {
		t.Errorf("mean = %v", e.MeanErr())
	}
}

func TestEmptyEval(t *testing.T) {
	p := tinyProblem(t)
	r := mkResult(p, []float64{0, 0, 0}, []bool{false, false, false})
	e := Evaluate(p, r)
	if !math.IsInf(e.MeanErr(), 1) || !math.IsInf(e.RMSE(), 1) ||
		!math.IsInf(e.MedianErr(), 1) || !math.IsInf(e.P90Err(), 1) {
		t.Error("empty eval must report +Inf errors")
	}
	if e.Coverage() != 0 {
		t.Error("coverage must be zero")
	}
	var zero Eval
	if zero.Coverage() != 0 || zero.MsgsPerNode() != 0 || zero.AvgRounds() != 0 {
		t.Error("zero eval accessors must be 0")
	}
}

func TestMerge(t *testing.T) {
	p := tinyProblem(t)
	e1 := Evaluate(p, mkResult(p, []float64{1, 1, 1}, []bool{true, true, true}))
	e2 := Evaluate(p, mkResult(p, []float64{3, 3, 3}, []bool{true, true, false}))
	m := Merge(e1, e2)
	if m.Trials != 2 {
		t.Fatalf("trials = %d", m.Trials)
	}
	if len(m.Errors) != 5 {
		t.Fatalf("pooled errors = %d", len(m.Errors))
	}
	if !mathx.AlmostEqual(m.MeanErr(), (3*1+2*3)/5.0, 1e-12) {
		t.Errorf("pooled mean = %v", m.MeanErr())
	}
	if !mathx.AlmostEqual(m.Coverage(), 5.0/6, 1e-12) {
		t.Errorf("pooled coverage = %v", m.Coverage())
	}
	if m.R != p.R {
		t.Error("R lost in merge")
	}
}

func TestCoverageWithin(t *testing.T) {
	p := tinyProblem(t)
	e := Evaluate(p, mkResult(p, []float64{1, 5, 20}, []bool{true, true, true}))
	if got := e.CoverageWithin(6); !mathx.AlmostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("coverage@6 = %v", got)
	}
	if got := e.CoverageWithin(0.5); got != 0 {
		t.Errorf("coverage@0.5 = %v", got)
	}
	// Unlocalized nodes count as failures.
	e2 := Evaluate(p, mkResult(p, []float64{1, 1, 0}, []bool{true, true, false}))
	if got := e2.CoverageWithin(2); !mathx.AlmostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("coverage with unlocalized = %v", got)
	}
}

func TestCDFCountsUnlocalized(t *testing.T) {
	p := tinyProblem(t)
	e := Evaluate(p, mkResult(p, []float64{1, 2, 0}, []bool{true, true, false}))
	cdf := e.CDF([]float64{0.5, 1.5, 3, 100})
	want := []float64{0, 1.0 / 3, 2.0 / 3, 2.0 / 3}
	for i := range want {
		if !mathx.AlmostEqual(cdf[i], want[i], 1e-12) {
			t.Fatalf("cdf = %v, want %v", cdf, want)
		}
	}
}

func TestAvgRoundsAndEnergy(t *testing.T) {
	p := tinyProblem(t)
	r1 := mkResult(p, []float64{0, 0, 0}, []bool{true, true, true})
	r1.Rounds = 10
	r1.Stats.EnergyMicroJ = 100
	r2 := mkResult(p, []float64{0, 0, 0}, []bool{true, true, true})
	r2.Rounds = 20
	r2.Stats.EnergyMicroJ = 300
	m := Merge(Evaluate(p, r1), Evaluate(p, r2))
	if m.AvgRounds() != 15 {
		t.Errorf("avg rounds = %v", m.AvgRounds())
	}
	if !mathx.AlmostEqual(m.EnergyPerNode(), 400.0/8, 1e-12) {
		t.Errorf("energy/node = %v", m.EnergyPerNode())
	}
}

// TestMergeTrafficTotals checks every traffic aggregate (messages, bytes,
// energy, rounds, node counts) sums across pooled trials — the invariant the
// per-trial trace events rely on.
func TestMergeTrafficTotals(t *testing.T) {
	p := tinyProblem(t)
	r1 := mkResult(p, []float64{1, 2, 3}, []bool{true, true, true})
	r1.Rounds = 7
	r1.Stats.MessagesSent = 40
	r1.Stats.BytesSent = 800
	r1.Stats.EnergyMicroJ = 50
	r2 := mkResult(p, []float64{2, 4, 6}, []bool{true, true, false})
	r2.Rounds = 9
	r2.Stats.MessagesSent = 60
	r2.Stats.BytesSent = 1200
	r2.Stats.EnergyMicroJ = 75
	m := Merge(Evaluate(p, r1), Evaluate(p, r2))

	if m.Messages != 100 {
		t.Errorf("Messages = %d, want 100", m.Messages)
	}
	if m.Bytes != 2000 {
		t.Errorf("Bytes = %d, want 2000", m.Bytes)
	}
	if m.EnergyuJ != 125 {
		t.Errorf("EnergyuJ = %g, want 125", m.EnergyuJ)
	}
	if m.Rounds != 16 {
		t.Errorf("Rounds = %d, want 16", m.Rounds)
	}
	if m.Nodes != 8 {
		t.Errorf("Nodes = %d, want 8", m.Nodes)
	}
	if m.Unknowns != 6 || m.LocalizedCount != 5 {
		t.Errorf("coverage counts = %d/%d, want 5/6", m.LocalizedCount, m.Unknowns)
	}
	// Per-node and per-trial views divide the pooled totals.
	if !mathx.AlmostEqual(m.MsgsPerNode(), 100.0/8, 1e-12) {
		t.Errorf("MsgsPerNode = %v", m.MsgsPerNode())
	}
	if !mathx.AlmostEqual(m.BytesPerNode(), 2000.0/8, 1e-12) {
		t.Errorf("BytesPerNode = %v", m.BytesPerNode())
	}
	if m.AvgRounds() != 8 {
		t.Errorf("AvgRounds = %v", m.AvgRounds())
	}
}

// TestPercentiles exercises the P95 accessor the benchmark summary reports.
func TestPercentiles(t *testing.T) {
	e := Eval{R: 10}
	for i := 1; i <= 100; i++ {
		e.Errors = append(e.Errors, float64(i))
	}
	if p := e.P95Err(); p < 94 || p > 96 {
		t.Errorf("P95Err = %v, want ~95", p)
	}
	if p := e.P90Err(); p < 89 || p > 91 {
		t.Errorf("P90Err = %v, want ~90", p)
	}
	if p := e.PercentileErr(50); p < 49 || p > 51 {
		t.Errorf("PercentileErr(50) = %v, want ~50", p)
	}
	if !math.IsInf(Eval{}.P95Err(), 1) {
		t.Error("empty eval P95 must be +Inf")
	}
}
